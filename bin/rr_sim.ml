(* rr-sim — command-line front end for the Robust-Recovery reproduction.

   One sub-command per paper artifact (fig5, fig6, fig7, table5), plus
   the RR design ablations, a free-form [run] command for ad-hoc
   dumbbell scenarios, and [all] to regenerate everything. *)

open Cmdliner

let seed_arg =
  let doc = "Random seed for stochastic components (RED, loss injection)." in
  Arg.(value & opt int64 7L & info [ "seed" ] ~docv:"SEED" ~doc)

(* Every engine created below (including in forked sweep workers) picks
   up the process-wide default, so setting it once at command start is
   enough. Both schedulers produce byte-identical output; the flag
   exists for performance comparison and as an escape hatch. *)
let scheduler_arg =
  let scheduler_conv = Arg.enum [ ("calendar", `Calendar); ("heap", `Heap) ] in
  let doc =
    "Event scheduler backing the simulation engines: the ns-2-style calendar \
     queue (calendar, default) or the binary heap (heap). Results are \
     byte-identical either way."
  in
  Arg.(
    value
    & opt scheduler_conv (Sim.Engine.default_scheduler ())
    & info [ "scheduler" ] ~docv:"SCHED" ~doc)

let variant_conv =
  let parse s =
    Result.map_error (fun message -> `Msg message) (Core.Variant.of_string s)
  in
  let print ppf v = Format.pp_print_string ppf (Core.Variant.name v) in
  Arg.conv ~docv:"VARIANT" (parse, print)

let csv_arg =
  let doc =
    "Directory to write per-flow CSV traces into (created if missing)."
  in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR" ~doc)

let write_csv dir name contents =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir name in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Printf.printf "wrote %s\n" path

(* fig5 *)

let fig5_term =
  let drops =
    let doc = "Number of packets dropped within the window (3 or 6)." in
    Arg.(value & opt int 3 & info [ "drops" ] ~docv:"N" ~doc)
  in
  let window =
    let doc = "Measurement window in seconds, starting at the first drop." in
    Arg.(value & opt float 3.0 & info [ "window" ] ~docv:"SECONDS" ~doc)
  in
  let background =
    let doc =
      "Run the paper's literal 3-flow setup (losses from competition) \
       instead of the controlled forced-drop mode."
    in
    Arg.(value & flag & info [ "background" ] ~doc)
  in
  let run scheduler drops window background seed =
    Sim.Engine.set_default_scheduler scheduler;
    if background then
      print_string
        (Experiments.Fig5.report_background (Experiments.Fig5.run_background ~seed ()))
    else
      print_string
        (Experiments.Fig5.report (Experiments.Fig5.run ~drops ~measure_window:window ~seed ()))
  in
  Term.(const run $ scheduler_arg $ drops $ window $ background $ seed_arg)

let fig5_cmd =
  Cmd.v
    (Cmd.info "fig5"
       ~doc:
         "Figure 5: effective throughput during recovery from bursty loss \
          under drop-tail gateways.")
    fig5_term

(* fig6 *)

let fig6_term =
  let plots =
    let doc = "Also print the flow-1 sequence-number ASCII plots." in
    Arg.(value & flag & info [ "plots" ] ~doc)
  in
  let duration =
    let doc = "Simulation length in seconds." in
    Arg.(value & opt float 6.0 & info [ "duration" ] ~docv:"SECONDS" ~doc)
  in
  let only_variant =
    let doc = "Restrict to one TCP variant." in
    Arg.(value & opt (some variant_conv) None & info [ "variant" ] ~doc)
  in
  let run scheduler plots duration only_variant seed csv =
    Sim.Engine.set_default_scheduler scheduler;
    let variants =
      match only_variant with
      | Some v -> Some [ v ]
      | None -> None
    in
    let outcome = Experiments.Fig6.run ?variants ~seed ~duration () in
    print_string (Experiments.Fig6.report outcome);
    if plots then
      List.iter
        (fun result ->
          Printf.printf "\n-- %s --\n%s\n%s"
            (Core.Variant.name result.Experiments.Fig6.variant)
            (Experiments.Fig6.plot result)
            (Experiments.Fig6.plot_cwnd result))
        outcome.Experiments.Fig6.results;
    Option.iter
      (fun dir ->
        List.iter
          (fun result ->
            let name =
              Printf.sprintf "fig6_%s_flow1.csv"
                (Core.Variant.name result.Experiments.Fig6.variant)
            in
            let buffer = Buffer.create 4096 in
            Buffer.add_string buffer "time,seq,kind\n";
            List.iter
              (fun (t, s) ->
                Buffer.add_string buffer (Printf.sprintf "%.6f,%.0f,send\n" t s))
              result.Experiments.Fig6.sends;
            List.iter
              (fun (t, s) ->
                Buffer.add_string buffer (Printf.sprintf "%.6f,%.0f,ack\n" t s))
              result.Experiments.Fig6.acks;
            write_csv dir name (Buffer.contents buffer))
          outcome.Experiments.Fig6.results)
      csv
  in
  Term.(const run $ scheduler_arg $ plots $ duration $ only_variant $ seed_arg $ csv_arg)

let fig6_cmd =
  Cmd.v
    (Cmd.info "fig6"
       ~doc:
         "Figure 6: sequence-number dynamics and effective throughput under \
          RED gateways with ten staggered flows.")
    fig6_term

(* fig7 *)

let fig7_term =
  let duration =
    let doc = "Per-point simulation length in seconds." in
    Arg.(value & opt float 100.0 & info [ "duration" ] ~docv:"SECONDS" ~doc)
  in
  let runs =
    let doc = "Number of random seeds averaged per point." in
    Arg.(value & opt int 5 & info [ "runs" ] ~docv:"N" ~doc)
  in
  let delack =
    let doc =
      "Receivers delay ACKs (extension; compares against the C = sqrt(3/4) \
       model)."
    in
    Arg.(value & flag & info [ "delack" ] ~doc)
  in
  let run scheduler duration runs delack seed =
    Sim.Engine.set_default_scheduler scheduler;
    let seeds = List.init runs (fun i -> Int64.add seed (Int64.of_int i)) in
    let outcome = Experiments.Fig7.run ~seeds ~duration ~delayed_ack:delack () in
    print_string (Experiments.Fig7.report outcome);
    print_newline ();
    print_string (Experiments.Fig7.plot outcome)
  in
  Term.(const run $ scheduler_arg $ duration $ runs $ delack $ seed_arg)

let fig7_cmd =
  Cmd.v
    (Cmd.info "fig7"
       ~doc:
         "Figure 7: fitness of RR and SACK to the square-root throughput \
          model under uniform random loss.")
    fig7_term

(* table5 *)

let table5_term =
  let run scheduler seed =
    Sim.Engine.set_default_scheduler scheduler;
    print_string (Experiments.Table5.report (Experiments.Table5.run ~seed ()))
  in
  Term.(const run $ scheduler_arg $ seed_arg)

let table5_cmd =
  Cmd.v
    (Cmd.info "table5"
       ~doc:
         "Table 5: fairness of RR against TCP Reno (transfer delay and loss \
          rate of a 100 KB flow).")
    table5_term

(* ablation *)

let ablation_term =
  let drops =
    let doc = "Loss-burst size for the ablation scenario." in
    Arg.(value & opt int 6 & info [ "drops" ] ~docv:"N" ~doc)
  in
  let run scheduler drops =
    Sim.Engine.set_default_scheduler scheduler;
    print_string (Experiments.Ablation.report (Experiments.Ablation.run ~drops ()))
  in
  Term.(const run $ scheduler_arg $ drops)

let ablation_cmd =
  Cmd.v
    (Cmd.info "ablation" ~doc:"RR design-decision ablation benchmarks.")
    ablation_term

(* extension experiments *)

let ack_loss_cmd =
  Cmd.v
    (Cmd.info "ackloss"
       ~doc:
         "ACK-loss robustness of recovery (paper section 2.3): burst recovery \
          under reverse-path drops.")
    Term.(
       const (fun scheduler ->
           Sim.Engine.set_default_scheduler scheduler;
           print_string (Experiments.Ack_loss.report (Experiments.Ack_loss.run ())))
       $ scheduler_arg)

let sync_cmd =
  Cmd.v
    (Cmd.info "sync"
       ~doc:
         "Global synchronization and fairness: drop-tail vs RED gateways \
          (paper section 3.3 motivation).")
    Term.(
       const (fun scheduler ->
           Sim.Engine.set_default_scheduler scheduler;
           print_string (Experiments.Sync.report (Experiments.Sync.run ())))
       $ scheduler_arg)

let smooth_cmd =
  Cmd.v
    (Cmd.info "smooth"
       ~doc:
         "Smooth-Start extension (paper reference [21]): slow-start overshoot \
          control.")
    Term.(
       const (fun scheduler ->
           Sim.Engine.set_default_scheduler scheduler;
           print_string (Experiments.Smooth.report (Experiments.Smooth.run ())))
       $ scheduler_arg)

let rtt_cmd =
  Cmd.v
    (Cmd.info "rtt"
       ~doc:
         "RTT fairness: AIMD convergence with equal RTTs (paper section 5) \
          and the short-RTT bias with unequal ones.")
    Term.(
       const (fun scheduler ->
           Sim.Engine.set_default_scheduler scheduler;
           print_string (Experiments.Rtt_fairness.report (Experiments.Rtt_fairness.run ())))
       $ scheduler_arg)

let sensitivity_cmd =
  Cmd.v
    (Cmd.info "sensitivity"
       ~doc:
         "Robustness sweep: the Figure 5 ordering across gateway buffer sizes \
          and propagation delays.")
    Term.(
       const (fun scheduler ->
           Sim.Engine.set_default_scheduler scheduler;
           print_string (Experiments.Sensitivity.report (Experiments.Sensitivity.run ())))
       $ scheduler_arg)

let two_way_cmd =
  Cmd.v
    (Cmd.info "twoway"
       ~doc:
         "Two-way traffic (paper reference [22]): ACK compression and loss \
          when data flows in both directions.")
    Term.(
       const (fun scheduler ->
           Sim.Engine.set_default_scheduler scheduler;
           print_string (Experiments.Two_way.report (Experiments.Two_way.run ())))
       $ scheduler_arg)

let vegas_cmd =
  Cmd.v
    (Cmd.info "vegas"
       ~doc:
         "Vegas decomposition (paper reference [8]): does Vegas' gain come \
          from recovery or congestion avoidance?")
    Term.(
       const (fun scheduler ->
           Sim.Engine.set_default_scheduler scheduler;
           print_string (Experiments.Vegas_claim.report (Experiments.Vegas_claim.run ())))
       $ scheduler_arg)

(* audit: invariant sweep over every variant and scenario shape *)

let audit_sweep seed =
  let gateways =
    [
      ("drop-tail", Net.Dumbbell.Droptail { capacity = 8 });
      ("red", Net.Dumbbell.Red { capacity = 25; params = Net.Red.paper_params });
    ]
  in
  let burst n =
    List.init n (fun i -> { Net.Loss.flow = 0; seq = 33 + i; occurrence = 1 })
  in
  (* (name, forced drops, uniform data loss, ACK loss) *)
  let patterns =
    [
      ("clean", [], 0.0, 0.0);
      ("burst3", burst 3, 0.0, 0.0);
      ("burst6", burst 6, 0.0, 0.0);
      ("uniform 2%", [], 0.02, 0.0);
      ("loss 5% + ack 5%", [], 0.05, 0.05);
    ]
  in
  let total_violations = ref 0 in
  let total_checks = ref 0 in
  let rows = ref [] in
  List.iter
    (fun variant ->
      List.iter
        (fun (gateway_name, gateway) ->
          List.iter
            (fun (pattern, forced_drops, uniform_loss, ack_loss) ->
              let config =
                { (Net.Dumbbell.paper_config ~flows:2) with gateway }
              in
              let spec =
                Experiments.Scenario.make ~topology:(Experiments.Scenario.dumbbell config)
                  ~flows:
                    [
                      Experiments.Scenario.flow variant;
                      Experiments.Scenario.flow variant;
                    ]
                  ~params:
                    { Tcp.Params.default with rwnd = 20; initial_ssthresh = 16.0 }
                  ~seed ~duration:20.0 ~forced_drops ~uniform_loss ~ack_loss ()
              in
              let t = Experiments.Scenario.run spec in
              let auditor = t.Experiments.Scenario.auditor in
              let violations = Audit.Auditor.violation_count auditor in
              total_violations := !total_violations + violations;
              total_checks := !total_checks + Audit.Auditor.checks_run auditor;
              rows :=
                [
                  Core.Variant.name variant;
                  gateway_name;
                  pattern;
                  string_of_int (Audit.Auditor.checks_run auditor);
                  string_of_int violations;
                ]
                :: !rows)
            patterns)
        gateways)
    Core.Variant.all;
  let header = [ "variant"; "gateway"; "pattern"; "checks"; "violations" ] in
  print_string (Stats.Text_table.render ~header (List.rev !rows));
  Printf.printf "\naudit sweep: %d checks across %d runs, %d violation(s)\n"
    !total_checks (List.length !rows) !total_violations;
  if !total_violations > 0 then exit 1

let audit_cmd =
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "Run the invariant auditor over every TCP variant under drop-tail \
          and RED gateways and a range of loss patterns; exit non-zero on \
          any violation.")
    Term.(
      const (fun scheduler seed ->
          Sim.Engine.set_default_scheduler scheduler;
          audit_sweep seed)
      $ scheduler_arg $ seed_arg)

(* run: ad-hoc scenario *)

let faults_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Faults.Spec.of_string s) in
  let print ppf spec = Format.pp_print_string ppf (Faults.Spec.to_string spec) in
  Arg.conv ~docv:"SPEC" (parse, print)

let timeline_conv =
  let parse s =
    Result.map_error (fun m -> `Msg m) (Faults.Timeline.of_string s)
  in
  let print ppf t = Format.pp_print_string ppf (Faults.Timeline.to_string t) in
  Arg.conv ~docv:"STEPS" (parse, print)

let rto_conv =
  let parse s =
    Result.map_error (fun m -> `Msg m) (Tcp.Rto.estimator_of_string s)
  in
  let print ppf e = Format.pp_print_string ppf (Tcp.Rto.estimator_name e) in
  Arg.conv ~docv:"ESTIMATOR" (parse, print)

let cross_conv =
  let parse s =
    let invalid () =
      Error
        (`Msg
          (Printf.sprintf
             "invalid cross-traffic %S (expected BPS[:BYTES][:reverse])" s))
    in
    let build ?packet_bytes ?(reverse = false) rate =
      match float_of_string_opt rate with
      | Some rate_bps when rate_bps > 0.0 ->
        let direction =
          if reverse then Net.Dumbbell.Backward else Net.Dumbbell.Forward
        in
        Ok (Experiments.Scenario.cbr ?packet_bytes ~direction ~rate_bps ())
      | _ -> invalid ()
    in
    match String.split_on_char ':' (String.trim s) with
    | [ rate ] -> build rate
    | [ rate; "reverse" ] -> build ~reverse:true rate
    | [ rate; bytes ] -> (
      match int_of_string_opt bytes with
      | Some packet_bytes when packet_bytes > 0 -> build ~packet_bytes rate
      | _ -> invalid ())
    | [ rate; bytes; "reverse" ] -> (
      match int_of_string_opt bytes with
      | Some packet_bytes when packet_bytes > 0 ->
        build ~packet_bytes ~reverse:true rate
      | _ -> invalid ())
    | _ -> invalid ()
  in
  let print ppf (c : Experiments.Scenario.cross) =
    Format.fprintf ppf "%g:%d%s" c.Experiments.Scenario.rate_bps
      c.Experiments.Scenario.packet_bytes
      (match c.Experiments.Scenario.cross_direction with
      | Net.Dumbbell.Backward -> ":reverse"
      | Net.Dumbbell.Forward -> "")
  in
  Arg.conv ~docv:"BPS[:BYTES][:reverse]" (parse, print)

type run_topology =
  | Run_dumbbell
  | Run_parking_lot of int  (* hops *)
  | Run_fat_tree of int  (* pods *)
  | Run_many_flow

let topology_conv =
  let parse s =
    let invalid () =
      Error
        (`Msg
          (Printf.sprintf
             "invalid topology %S (expected dumbbell, parking-lot[:HOPS], \
              fat-tree[:PODS] or many-flow)"
             s))
    in
    match String.split_on_char ':' (String.lowercase_ascii (String.trim s)) with
    | [ "dumbbell" ] -> Ok Run_dumbbell
    | [ "parking-lot" ] -> Ok (Run_parking_lot 2)
    | [ "parking-lot"; hops ] -> (
      match int_of_string_opt hops with
      | Some h when h >= 1 -> Ok (Run_parking_lot h)
      | _ -> invalid ())
    | [ "fat-tree" ] -> Ok (Run_fat_tree 2)
    | [ "fat-tree"; pods ] -> (
      match int_of_string_opt pods with
      | Some p when p >= 2 -> Ok (Run_fat_tree p)
      | _ -> invalid ())
    | [ "many-flow" ] -> Ok Run_many_flow
    | _ -> invalid ()
  in
  let print ppf t =
    Format.pp_print_string ppf
      (match t with
      | Run_dumbbell -> "dumbbell"
      | Run_parking_lot hops -> Printf.sprintf "parking-lot:%d" hops
      | Run_fat_tree pods -> Printf.sprintf "fat-tree:%d" pods
      | Run_many_flow -> "many-flow")
  in
  Arg.conv ~docv:"TOPOLOGY" (parse, print)

let run_term =
  let variant =
    let doc =
      "TCP variant (tahoe, reno, newreno, sack, fack, vegas, rr, relentless, \
       rrr)."
    in
    Arg.(value & opt variant_conv Core.Variant.Rr & info [ "variant" ] ~doc)
  in
  let rrr_level =
    let doc =
      "Target congestion level for the rrr variant: each congestion event \
       multiplies the window by 1 - LEVEL (0.5 = the Reno half-cut). Other \
       variants ignore it."
    in
    Arg.(value & opt float 0.5 & info [ "rrr-level" ] ~docv:"LEVEL" ~doc)
  in
  let topology =
    let doc =
      "Network topology: dumbbell (the paper's Figure 4, default), \
       parking-lot[:HOPS] (--flows long flows across HOPS chained \
       bottlenecks plus one cross flow per hop), fat-tree[:PODS] (--flows \
       hosts per pod, one flow per host, striped across pods), or many-flow \
       (the flat-array flock scale path; honours --flows, --duration, \
       --rwnd, --buffer and --seed only)."
    in
    Arg.(value & opt topology_conv Run_dumbbell & info [ "topology" ] ~docv:"TOPOLOGY" ~doc)
  in
  let flows =
    let doc = "Number of concurrent flows of that variant." in
    Arg.(value & opt int 1 & info [ "flows" ] ~docv:"N" ~doc)
  in
  let duration =
    let doc = "Simulation length in seconds." in
    Arg.(value & opt float 20.0 & info [ "duration" ] ~docv:"SECONDS" ~doc)
  in
  let red =
    let doc = "Use a RED gateway (Table 4 parameters) instead of drop-tail." in
    Arg.(value & flag & info [ "red" ] ~doc)
  in
  let buffer =
    let doc = "Gateway buffer size in packets." in
    Arg.(value & opt int 8 & info [ "buffer" ] ~docv:"PACKETS" ~doc)
  in
  let loss =
    let doc = "Uniform random data-loss rate injected at R1." in
    Arg.(value & opt float 0.0 & info [ "loss" ] ~docv:"RATE" ~doc)
  in
  let rwnd =
    let doc = "Receiver advertised window in segments." in
    Arg.(value & opt int 20 & info [ "rwnd" ] ~docv:"SEGMENTS" ~doc)
  in
  let ack_loss =
    let doc = "Uniform random ACK-loss rate on the reverse path." in
    Arg.(value & opt float 0.0 & info [ "ack-loss" ] ~docv:"RATE" ~doc)
  in
  let delack =
    let doc = "Enable delayed ACKs at the receivers." in
    Arg.(value & flag & info [ "delack" ] ~doc)
  in
  let limited_transmit =
    let doc = "Enable RFC 3042 limited transmit at the senders." in
    Arg.(value & flag & info [ "limited-transmit" ] ~doc)
  in
  let rto =
    let doc =
      "RTO estimator at the senders: jacobson (classic mean+variance, \
       default), fixed (no adaptation), rfc793 (mean-only, RTO = 2*srtt) or \
       agile (mean+variance with faster gains)."
    in
    Arg.(value & opt rto_conv Tcp.Rto.Jacobson & info [ "rto" ] ~docv:"ESTIMATOR" ~doc)
  in
  let tracefile =
    let doc = "Write an ns-2-style event trace of the whole run to FILE." in
    Arg.(value & opt (some string) None & info [ "tracefile" ] ~docv:"FILE" ~doc)
  in
  let trace =
    let doc =
      "Write a structured JSONL event trace (sends, ACKs, recovery \
       transitions, timeouts, queue enqueue/drop/dequeue) to FILE."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let trace_format =
    let format_conv = Arg.enum [ ("jsonl", `Jsonl); ("binary", `Binary) ] in
    let doc =
      "Encoding for --trace: $(b,jsonl) (one JSON object per line) or \
       $(b,binary) (compact length-prefixed records; convert back with \
       $(b,rr-sim trace export))."
    in
    Arg.(
      value & opt format_conv `Jsonl & info [ "trace-format" ] ~docv:"FORMAT" ~doc)
  in
  let audit =
    let doc = "Print the invariant-audit report; exit non-zero on violations." in
    Arg.(value & flag & info [ "audit" ] ~doc)
  in
  let audit_sample =
    let doc =
      "Audit 1-in-$(docv) events instead of every one. The auditor's shadow \
       state stays exact, so sampled checks never report false positives; \
       the two rules that need the full event stream (queue-fifo and the \
       dequeued-but-never-enqueued arm of queue-conservation) are active \
       only at the default of 1. 0 disables auditing entirely."
    in
    Arg.(value & opt int 1 & info [ "audit-sample" ] ~docv:"N" ~doc)
  in
  let faults =
    let doc =
      "Inject faults, as a comma-separated clause list: flap:PERIOD+DOWN \
       (periodic trunk outage), flap:rand:UP+DOWN (random outages, \
       exponential holding times), drop|hold (queued-backlog policy at cut \
       time), reorder:PROB[:MAXEXTRA] (bounded random extra delay), \
       jitter:MAX (FIFO-preserving delay noise), reverse (reorder/jitter the \
       ACK path too). Example: --faults flap:4+0.5,drop,reorder:0.05"
    in
    Arg.(value & opt faults_conv Faults.Spec.none & info [ "faults" ] ~docv:"SPEC" ~doc)
  in
  let link_schedule =
    let doc =
      "Step the bottleneck link's conditions over time: '@'-prefixed steps \
       @T+RATE[+DELAY] (absolute bps / seconds, '-' = keep), applied at \
       packet boundaries. Example: --link-schedule @2+400000@5+-+0.25 halves \
       the trunk rate at t=2 and raises its one-way delay to 250 ms at t=5. \
       Composes with --faults (relative fade:/handover:/asym: clauses)."
    in
    Arg.(
      value
      & opt (some timeline_conv) None
      & info [ "link-schedule" ] ~docv:"STEPS" ~doc)
  in
  let cross =
    let doc =
      "Add an unresponsive CBR cross-traffic source of RATE bits per second \
       (repeatable): BPS[:BYTES][:reverse], e.g. 200000:1000 or \
       100000:reverse for the ACK path."
    in
    Arg.(value & opt_all cross_conv [] & info [ "cross-traffic" ] ~docv:"BPS[:BYTES][:reverse]" ~doc)
  in
  let run scheduler variant rrr_level topology flows duration red buffer loss
      rwnd ack_loss delack limited_transmit rto tracefile trace trace_format
      audit audit_sample faults link_schedule cross seed csv =
    Sim.Engine.set_default_scheduler scheduler;
    (if audit_sample < 0 then begin
       Printf.eprintf "rr-sim: --audit-sample must be >= 0\n";
       exit 2
     end);
    (if rrr_level <= 0.0 || rrr_level >= 1.0 then begin
       Printf.eprintf "rr-sim: --rrr-level must be inside (0, 1)\n";
       exit 2
     end);
    if topology = Run_many_flow then begin
      (if link_schedule <> None then begin
         Printf.eprintf
           "rr-sim: --link-schedule does not apply to --topology many-flow\n";
         exit 2
       end);
      (* The flock scale path: flat arrays and streaming statistics, no
         per-flow agents — most scenario knobs do not apply. *)
      print_string
        (Experiments.Many_flow.report
           (Experiments.Many_flow.run ~flows ~duration ~seed ~buffer
              ~params:{ Tcp.Params.default with rwnd }
              ()))
    end
    else begin
    let gateway =
      if red then
        Net.Dumbbell.Red { capacity = buffer; params = Net.Red.paper_params }
      else Net.Dumbbell.Droptail { capacity = buffer }
    in
    (if topology <> Run_dumbbell && cross <> [] then begin
       Printf.eprintf "rr-sim: --cross-traffic requires --topology dumbbell\n";
       exit 2
     end);
    let tcp_flows, scenario_topology =
      match topology with
      | Run_many_flow -> assert false
      | Run_dumbbell ->
        ( flows,
          Experiments.Scenario.dumbbell
            {
              (Net.Dumbbell.paper_config ~flows:(flows + List.length cross)) with
              gateway;
            } )
      | Run_parking_lot hops ->
        let total = flows + hops in
        let config =
          { (Net.Dumbbell.paper_config ~flows:total) with gateway }
        in
        let spec, endpoints =
          Net.Topology.parking_lot ~hops ~long_flows:flows ~cross_per_hop:1
            ~config ()
        in
        ( total,
          Experiments.Scenario.graph ~bottleneck:"bottleneck0"
            ~loss_link:"bottleneck0"
            ~ack_loss_link:(Printf.sprintf "rbottleneck%d" (hops - 1))
            ~flap_links:[ "bottleneck0"; "rbottleneck0" ]
            ~spec ~endpoints () )
      | Run_fat_tree pods ->
        let total = pods * flows in
        let config =
          { (Net.Dumbbell.paper_config ~flows:total) with gateway }
        in
        let spec, endpoints =
          Net.Topology.fat_tree ~pods ~hosts_per_pod:flows ~config ()
        in
        ( total,
          Experiments.Scenario.graph ~bottleneck:"up0" ~loss_link:"up0"
            ~ack_loss_link:"down0" ~flap_links:[ "up0"; "down0" ] ~spec
            ~endpoints () )
    in
    let trace_channel = Option.map open_out trace in
    (* Close (and thereby flush) the JSONL trace on every exit path,
       including a raising run — otherwise the tail of the trace is
       lost exactly when it is most needed. *)
    let t =
      Fun.protect
        ~finally:(fun () -> Option.iter close_out_noerr trace_channel)
        (fun () ->
          let spec =
            Experiments.Scenario.make ~topology:scenario_topology
              ~flows:(List.init tcp_flows (fun _ -> Experiments.Scenario.flow variant))
              ~params:
                {
                  Tcp.Params.default with
                  rwnd;
                  limited_transmit;
                  rto_estimator = rto;
                  rrr_level;
                }
              ~seed ~duration ~uniform_loss:loss ~ack_loss ~delayed_ack:delack
              ~monitor_queue:0.1 ?trace_out:trace_channel ~trace_format
              ~audit_sample ~faults ?link_schedule ~cross ()
          in
          Experiments.Scenario.run spec)
    in
    Option.iter (fun path -> Printf.printf "wrote %s\n" path) trace;
    let mss = Tcp.Params.default.Tcp.Params.mss in
    let header =
      [ "flow"; "goodput (Kbps)"; "drops"; "timeouts"; "retransmits" ]
    in
    let rows =
      List.init tcp_flows (fun flow ->
          let result = t.Experiments.Scenario.results.(flow) in
          let counters =
            result.Experiments.Scenario.agent.Tcp.Agent.base
              .Tcp.Sender_common.counters
          in
          let goodput =
            Stats.Metrics.effective_throughput_bps
              result.Experiments.Scenario.trace ~mss ~t0:0.0 ~t1:duration
          in
          [
            string_of_int flow;
            Printf.sprintf "%.1f" (goodput /. 1000.0);
            string_of_int (Experiments.Scenario.drops t ~flow);
            string_of_int counters.Tcp.Counters.timeouts;
            string_of_int counters.Tcp.Counters.retransmits;
          ])
    in
    Printf.printf "%d %s flow(s), %s gateway (buffer %d), %.0f s\n\n%s"
      tcp_flows
      (Core.Variant.name variant)
      (if red then "RED" else "drop-tail")
      buffer duration
      (Stats.Text_table.render ~header rows);
    Array.iter
      (fun cr ->
        let sent = Workload.Cbr.sent cr.Experiments.Scenario.source in
        Printf.printf
          "cross flow %d (%s, %.0f bps): %d packet(s) sent, %d delivered\n"
          cr.Experiments.Scenario.cross_flow
          cr.Experiments.Scenario.cross.Experiments.Scenario.cross_label
          cr.Experiments.Scenario.cross.Experiments.Scenario.rate_bps sent
          cr.Experiments.Scenario.received)
      t.Experiments.Scenario.cross_results;
    Option.iter
      (fun injector ->
        (* The rate/delay suffix appears only when a timeline actually
           stepped, so pre-timeline fault runs print their exact
           historical line. *)
        let steps =
          match
            ( Faults.Injector.rate_changes injector,
              Faults.Injector.delay_changes injector )
          with
          | 0, 0 -> ""
          | rates, 0 -> Printf.sprintf ", %d rate step(s)" rates
          | 0, delays -> Printf.sprintf ", %d delay step(s)" delays
          | rates, delays ->
            Printf.sprintf ", %d rate step(s), %d delay step(s)" rates delays
        in
        Printf.printf
          "faults: %d link down(s), %d queued packet(s) dropped, %d \
           reordered, %d jittered%s\n"
          (Faults.Injector.downs injector)
          (Faults.Injector.fault_drops injector)
          (Faults.Injector.reordered injector)
          (Faults.Injector.jittered injector)
          steps)
      t.Experiments.Scenario.injector;
    Option.iter
      (fun dir ->
        List.iteri
          (fun flow result ->
            write_csv dir
              (Printf.sprintf "run_flow%d_una.csv" flow)
              (Stats.Series.to_csv
                 result.Experiments.Scenario.trace.Stats.Flow_trace.una))
          (Array.to_list t.Experiments.Scenario.results);
        Option.iter
          (fun series ->
            write_csv dir "run_queue.csv" (Stats.Series.to_csv series))
          t.Experiments.Scenario.queue_occupancy)
      csv;
    Option.iter
      (fun path ->
        let oc = open_out path in
        output_string oc (Experiments.Scenario.tracefile t);
        close_out oc;
        Printf.printf "wrote %s\n" path)
      tracefile;
    if audit then begin
      print_newline ();
      print_string (Audit.Auditor.report t.Experiments.Scenario.auditor);
      if not (Audit.Auditor.ok t.Experiments.Scenario.auditor) then exit 1
    end
    end
  in
  Term.(
    const run $ scheduler_arg $ variant $ rrr_level $ topology $ flows
    $ duration $ red $ buffer $ loss $ rwnd $ ack_loss $ delack
    $ limited_transmit $ rto $ tracefile $ trace $ trace_format $ audit
    $ audit_sample $ faults $ link_schedule $ cross $ seed_arg $ csv_arg)

let run_cmd =
  Cmd.v
    (Cmd.info "run" ~doc:"Run an ad-hoc dumbbell scenario and print per-flow stats.")
    run_term

(* sweep: parallel campaign over a grid of scenario points *)

let gateway_conv =
  let parse s =
    let invalid () =
      Error
        (`Msg
          (Printf.sprintf
             "invalid gateway %S (expected droptail[:BUFFER] or red[:BUFFER])" s))
    in
    match String.split_on_char ':' (String.lowercase_ascii (String.trim s)) with
    | [ "droptail" ] -> Ok (Campaign.Job.Droptail 8)
    | [ "red" ] -> Ok (Campaign.Job.Red 25)
    | [ "droptail"; buffer ] -> (
      match int_of_string_opt buffer with
      | Some b when b > 0 -> Ok (Campaign.Job.Droptail b)
      | _ -> invalid ())
    | [ "red"; buffer ] -> (
      match int_of_string_opt buffer with
      | Some b when b > 0 -> Ok (Campaign.Job.Red b)
      | _ -> invalid ())
    | _ -> invalid ()
  in
  let print ppf g = Format.pp_print_string ppf (Campaign.Job.gateway_name g) in
  Arg.conv ~docv:"GATEWAY" (parse, print)

let job_topology_conv =
  let parse s =
    let invalid () =
      Error
        (`Msg
          (Printf.sprintf
             "invalid topology %S (expected dumbbell or parking-lot[:HOPS])" s))
    in
    match String.split_on_char ':' (String.lowercase_ascii (String.trim s)) with
    | [ "dumbbell" ] -> Ok Campaign.Job.Dumbbell
    | [ "parking-lot" ] -> Ok (Campaign.Job.Parking_lot 2)
    | [ "parking-lot"; hops ] -> (
      match int_of_string_opt hops with
      | Some h when h >= 1 -> Ok (Campaign.Job.Parking_lot h)
      | _ -> invalid ())
    | _ -> invalid ()
  in
  let print ppf t = Format.pp_print_string ppf (Campaign.Job.topology_name t) in
  Arg.conv ~docv:"TOPOLOGY" (parse, print)

let sweep_term =
  let variants =
    let doc = "Comma-separated TCP variants to sweep." in
    Arg.(
      value
      & opt (list ~sep:',' variant_conv) Core.Variant.[ Reno; Newreno; Sack; Rr ]
      & info [ "variants" ] ~docv:"V,V,..." ~doc)
  in
  let gateways =
    let doc =
      "Comma-separated gateway disciplines, each droptail[:BUFFER] or \
       red[:BUFFER]."
    in
    Arg.(
      value
      & opt (list ~sep:',' gateway_conv) [ Campaign.Job.Droptail 8 ]
      & info [ "gateways" ] ~docv:"G,G,..." ~doc)
  in
  let topologies =
    let doc =
      "Comma-separated topologies to sweep, each dumbbell or \
       parking-lot[:HOPS] (flows run end to end over HOPS chained \
       bottlenecks)."
    in
    Arg.(
      value
      & opt (list ~sep:',' job_topology_conv) [ Campaign.Job.Dumbbell ]
      & info [ "topologies" ] ~docv:"T,T,..." ~doc)
  in
  let losses =
    let doc = "Comma-separated uniform data-loss rates injected at R1." in
    Arg.(value & opt (list ~sep:',' float) [ 0.02 ] & info [ "loss" ] ~docv:"RATES" ~doc)
  in
  let ack_losses =
    let doc = "Comma-separated reverse-path ACK-loss rates." in
    Arg.(value & opt (list ~sep:',' float) [ 0.0 ] & info [ "ack-loss" ] ~docv:"RATES" ~doc)
  in
  let reorders =
    let doc =
      "Comma-separated packet-reordering probabilities at the bottleneck (0 \
       = off)."
    in
    Arg.(value & opt (list ~sep:',' float) [ 0.0 ] & info [ "reorder" ] ~docv:"PROBS" ~doc)
  in
  let flap_periods =
    let doc =
      "Comma-separated trunk-outage periods in seconds (0 = off; each outage \
       lasts 300 ms)."
    in
    Arg.(value & opt (list ~sep:',' float) [ 0.0 ] & info [ "flap-period" ] ~docv:"SECONDS" ~doc)
  in
  let cbr_shares =
    let doc =
      "Comma-separated CBR cross-traffic loads as fractions of the \
       bottleneck capacity (0 = off)."
    in
    Arg.(value & opt (list ~sep:',' float) [ 0.0 ] & info [ "cbr-share" ] ~docv:"SHARES" ~doc)
  in
  let rtos =
    let doc =
      "Comma-separated RTO estimators to sweep (jacobson, fixed, rfc793, \
       agile)."
    in
    Arg.(
      value
      & opt (list ~sep:',' rto_conv) [ Tcp.Rto.Jacobson ]
      & info [ "rto" ] ~docv:"E,E,..." ~doc)
  in
  let rrr_levels =
    let doc =
      "Comma-separated rrr congestion levels; the axis multiplies only the \
       rrr variant (others ignore the field). 0.5 = the Reno half-cut."
    in
    Arg.(
      value
      & opt (list ~sep:',' float) [ 0.5 ]
      & info [ "rrr-levels" ] ~docv:"LEVELS" ~doc)
  in
  let asym_ratios =
    let doc =
      "Comma-separated forward:reverse trunk rate ratios (0 = off; the \
       asym: spec clause; dumbbell topology only)."
    in
    Arg.(
      value
      & opt (list ~sep:',' float) [ 0.0 ]
      & info [ "asym-ratios" ] ~docv:"RATIOS" ~doc)
  in
  let handover_periods =
    let doc =
      "Comma-separated cellular-handover periods in seconds (0 = off; each \
       handover darkens the trunk for 400 ms, burst-drops the backlog and \
       resumes at the next cell rate)."
    in
    Arg.(
      value
      & opt (list ~sep:',' float) [ 0.0 ]
      & info [ "handover-period" ] ~docv:"SECONDS" ~doc)
  in
  let seed_count =
    let doc = "Seeds per grid point (SEED, SEED+1, ...)." in
    Arg.(value & opt int 6 & info [ "seeds" ] ~docv:"N" ~doc)
  in
  let duration =
    let doc = "Per-job simulation length in seconds." in
    Arg.(value & opt float 20.0 & info [ "duration" ] ~docv:"SECONDS" ~doc)
  in
  let flows =
    let doc = "Concurrent same-variant flows per job." in
    Arg.(value & opt int 2 & info [ "flows" ] ~docv:"N" ~doc)
  in
  let rwnd =
    let doc = "Receiver advertised window in segments." in
    Arg.(value & opt int 20 & info [ "rwnd" ] ~docv:"SEGMENTS" ~doc)
  in
  let jobs =
    let doc = "Worker processes (0 = number of cores)." in
    Arg.(value & opt int 0 & info [ "jobs"; "j" ] ~docv:"N" ~doc)
  in
  let pool =
    let pool_conv =
      Arg.enum
        [
          ("serial", Some Campaign.Pool.Serial);
          ("fork", Some Campaign.Pool.Forked);
          ("domains", Some Campaign.Pool.Domains);
        ]
    in
    let doc =
      "Worker pool backend: $(b,fork) (one process per job attempt; full \
       isolation, SIGKILL-enforced deadlines), $(b,domains) (shared-memory \
       OCaml domains; no fork/marshal overhead, deadlines abandon rather \
       than kill the worker) or $(b,serial) (in-process loop). Default: \
       fork when more than one worker, serial otherwise."
    in
    Arg.(value & opt pool_conv None & info [ "pool" ] ~docv:"BACKEND" ~doc)
  in
  let cache_dir =
    let doc = "Result-cache directory (content-addressed JSON entries)." in
    Arg.(value & opt string "_campaign" & info [ "cache-dir" ] ~docv:"DIR" ~doc)
  in
  let no_cache =
    let doc = "Disable the on-disk result cache (always run every job)." in
    Arg.(value & flag & info [ "no-cache" ] ~doc)
  in
  let json =
    let doc = "Emit the campaign (points and per-job results) as JSON." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let timeout =
    let doc =
      "Per-job wall-clock deadline in seconds (0 = wait forever). A worker \
       past its deadline is SIGKILLed and reaped, and its job counted as \
       timed out (retried while --retries allows, quarantined after)."
    in
    Arg.(value & opt float 0.0 & info [ "timeout" ] ~docv:"SECONDS" ~doc)
  in
  let retries =
    let doc =
      "Extra attempts for a crashed or timed-out job, with deterministic \
       exponential backoff (see --backoff). A job that fails every attempt \
       is quarantined in the report instead of aborting the sweep."
    in
    Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let backoff =
    let doc = "Base retry backoff in seconds: retry N waits backoff * 2^(N-1)." in
    Arg.(value & opt float 0.5 & info [ "backoff" ] ~docv:"SECONDS" ~doc)
  in
  let resume =
    let doc =
      "Resume an interrupted or partially failed campaign: validate the run \
       journal under the cache directory and re-execute only unfinished or \
       failed jobs — settled ones are served from the cache, byte-identical."
    in
    Arg.(value & flag & info [ "resume" ] ~doc)
  in
  let run scheduler variants gateways topologies losses ack_losses reorders
      flap_periods cbr_shares rtos rrr_levels asym_ratios handover_periods
      seed_count duration flows rwnd
      jobs pool cache_dir no_cache json timeout retries backoff resume seed =
    Sim.Engine.set_default_scheduler scheduler;
    (if List.exists (fun l -> l <= 0.0 || l >= 1.0) rrr_levels then begin
       Printf.eprintf "rr-sim: --rrr-levels must all be inside (0, 1)\n";
       exit 2
     end);
    (if List.exists (fun r -> r <> 0.0 && r < 1.0) asym_ratios then begin
       Printf.eprintf "rr-sim: --asym-ratios must be 0 (off) or >= 1\n";
       exit 2
     end);
    (if
       List.exists (fun r -> r > 0.0) asym_ratios
       && List.exists (fun t -> t <> Campaign.Job.Dumbbell) topologies
     then begin
       Printf.eprintf "rr-sim: --asym-ratios requires --topologies dumbbell\n";
       exit 2
     end);
    (if
       List.exists
         (fun p -> p <> 0.0 && p <= Campaign.Job.handover_gap)
         handover_periods
     then begin
       Printf.eprintf
         "rr-sim: --handover-period values must be 0 (off) or > %g s\n"
         Campaign.Job.handover_gap;
       exit 2
     end);
    (* Fail fast on an unparseable chaos spec instead of aborting
       mid-sweep from inside the pool. *)
    (match Sys.getenv_opt Campaign.Pool.chaos_env with
    | Some spec when !Campaign.Pool.chaos = None -> (
      match Campaign.Pool.chaos_of_string spec with
      | Ok _ -> ()
      | Error message ->
        Printf.eprintf "rr-sim: %s: %s\n" Campaign.Pool.chaos_env message;
        exit 2)
    | _ -> ());
    let grid =
      Campaign.Sweep.grid ~variants ~gateways ~topologies
        ~uniform_losses:losses ~ack_losses ~reorders ~flap_periods ~cbr_shares
        ~estimators:rtos ~rrr_levels ~asym_ratios ~handover_periods ~seed
        ~seed_count ~duration ~flows ~rwnd ()
    in
    if resume && no_cache then begin
      Printf.eprintf
        "rr-sim: --resume needs the result cache (drop --no-cache)\n";
      exit 2
    end;
    let cache =
      if no_cache then None else Some (Campaign.Cache.create ~dir:cache_dir ())
    in
    let sweep_digest = Campaign.Sweep.sweep_digest grid in
    let journal_path = Filename.concat cache_dir "journal.jsonl" in
    let journal =
      match cache with
      | None -> None
      | Some _ ->
        if resume then (
          match
            Campaign.Journal.resume ~path:journal_path ~sweep:sweep_digest
          with
          | Ok (journal, previous) ->
            Printf.eprintf
              "resume: journal records %d settled and %d failed job(s); \
               re-running the rest\n"
              (List.length previous.Campaign.Journal.settled)
              (List.length previous.Campaign.Journal.failed);
            Some journal
          | Error message ->
            Printf.eprintf "rr-sim: cannot resume: %s\n" message;
            exit 2)
        else
          Some
            (Campaign.Journal.start ~path:journal_path ~sweep:sweep_digest
               ~total:(List.length (Campaign.Sweep.jobs_of_grid grid)))
    in
    let policy =
      {
        Campaign.Pool.timeout = (if timeout > 0.0 then Some timeout else None);
        retries = max 0 retries;
        backoff =
          (if backoff > 0.0 then backoff
           else Campaign.Pool.default_policy.Campaign.Pool.backoff);
      }
    in
    let jobs = if jobs <= 0 then Campaign.Pool.default_jobs () else jobs in
    let on_progress ~completed ~total =
      if not json then begin
        Printf.eprintf "\rsweep: %d/%d job(s)%s" completed total
          (if completed = total then "\n" else "");
        flush stderr
      end
    in
    (* Graceful shutdown: the first SIGINT/SIGTERM stops the collect
       loop, which SIGKILLs and reaps the children; the journal is
       flushed and a partial summary printed with a conventional
       128+signal exit code. *)
    let interrupted_by = ref None in
    let install signal =
      Sys.signal signal (Sys.Signal_handle (fun _ -> interrupted_by := Some signal))
    in
    let previous_int = install Sys.sigint in
    let previous_term = install Sys.sigterm in
    let outcome =
      Fun.protect
        ~finally:(fun () ->
          Sys.set_signal Sys.sigint previous_int;
          Sys.set_signal Sys.sigterm previous_term;
          Option.iter Campaign.Journal.close journal)
        (fun () ->
          Campaign.Sweep.run ?cache ?journal ~policy
            ~stop:(fun () -> !interrupted_by <> None)
            ~jobs ?backend:pool ~on_progress grid)
    in
    if (not json) && outcome.Campaign.Sweep.interrupted then
      prerr_newline ();
    if json then print_string (Campaign.Sweep.report_json outcome)
    else print_string (Campaign.Sweep.report outcome);
    match !interrupted_by with
    | Some signal -> exit (if signal = Sys.sigterm then 143 else 130)
    | None ->
      if outcome.Campaign.Sweep.quarantined <> [] then exit 3
      else if Campaign.Sweep.total_violations outcome > 0 then exit 1
  in
  Term.(
    const run $ scheduler_arg $ variants $ gateways $ topologies $ losses
    $ ack_losses $ reorders $ flap_periods $ cbr_shares $ rtos $ rrr_levels
    $ asym_ratios $ handover_periods
    $ seed_count $ duration $ flows $ rwnd $ jobs $ pool $ cache_dir
    $ no_cache $ json $ timeout $ retries $ backoff $ resume $ seed_arg)

let sweep_cmd =
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Run a variants x gateways x loss-rates x seeds campaign on a \
          supervised forked worker pool (per-job deadlines, bounded retries, \
          crash quarantine) with an incremental result cache and run \
          journal. Always completes with partial results; exits 3 if any \
          job was quarantined, 1 on auditor violations, 128+signal when \
          interrupted (resume with --resume).")
    sweep_term

(* list / all: the experiment registry *)

let list_cmd =
  let run () =
    print_string
      (Stats.Text_table.render ~header:[ "name"; "synopsis" ]
         (List.map
            (fun e ->
              [ e.Experiments.Registry.name; e.Experiments.Registry.synopsis ])
            Experiments.Registry.all))
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List every registered experiment with its synopsis.")
    Term.(const run $ const ())

let all_term =
  let only =
    let doc =
      "Restrict to a comma-separated subset of registry names (see the list \
       command)."
    in
    Arg.(value & opt (some (list ~sep:',' string)) None & info [ "only" ] ~docv:"NAMES" ~doc)
  in
  let run scheduler only seed =
    Sim.Engine.set_default_scheduler scheduler;
    let experiments =
      match only with
      | None -> Experiments.Registry.all
      | Some names ->
        List.map
          (fun name ->
            match Experiments.Registry.find name with
            | Some e -> e
            | None ->
              Printf.eprintf "unknown experiment %S; try: rr-sim list\n" name;
              exit 2)
          names
    in
    List.iteri
      (fun i e ->
        if i > 0 then print_newline ();
        Printf.printf "-- %s: %s\n\n" e.Experiments.Registry.name
          e.Experiments.Registry.synopsis;
        print_string (e.Experiments.Registry.run ~seed))
      experiments
  in
  Term.(const run $ scheduler_arg $ only $ seed_arg)

let all_cmd =
  Cmd.v
    (Cmd.info "all"
       ~doc:
         "Regenerate every table and figure of the paper (every registered \
          experiment, or a subset via --only).")
    all_term

(* modelcheck: model-vs-measured validation of the modeled variants *)

let modelcheck_term =
  let variants =
    let doc =
      "Comma-separated variants to validate (default: every modeled one)."
    in
    Arg.(
      value
      & opt (list ~sep:',' variant_conv) Experiments.Modelcheck.default_variants
      & info [ "variants" ] ~docv:"V,V,..." ~doc)
  in
  let losses =
    let doc = "Comma-separated uniform loss rates to validate at." in
    Arg.(
      value
      & opt (list ~sep:',' float) Experiments.Modelcheck.default_loss_rates
      & info [ "loss" ] ~docv:"RATES" ~doc)
  in
  let seeds =
    let doc = "Number of seeds averaged per cell (1-5)." in
    Arg.(value & opt int 5 & info [ "seeds" ] ~docv:"N" ~doc)
  in
  let duration =
    let doc = "Per-run simulation length in seconds." in
    Arg.(value & opt float 100.0 & info [ "duration" ] ~docv:"SECONDS" ~doc)
  in
  let rrr_level =
    let doc = "Congestion level the rrr variant (and its model) runs at." in
    Arg.(value & opt float 0.5 & info [ "rrr-level" ] ~docv:"LEVEL" ~doc)
  in
  let check =
    let doc =
      "Exit non-zero if any cell's |deviation| exceeds $(docv) (e.g. 0.15). \
       Without it the report is informational."
    in
    Arg.(value & opt (some float) None & info [ "check" ] ~docv:"TOL" ~doc)
  in
  let run scheduler variants losses seeds duration rrr_level check =
    Sim.Engine.set_default_scheduler scheduler;
    (if rrr_level <= 0.0 || rrr_level >= 1.0 then begin
       Printf.eprintf "rr-sim: --rrr-level must be inside (0, 1)\n";
       exit 2
     end);
    let all_seeds = [ 3L; 17L; 29L; 101L; 2048L ] in
    (if seeds < 1 || seeds > List.length all_seeds then begin
       Printf.eprintf "rr-sim: --seeds must be 1-%d\n" (List.length all_seeds);
       exit 2
     end);
    let seeds = List.filteri (fun i _ -> i < seeds) all_seeds in
    let outcome =
      Experiments.Modelcheck.run ~variants ~loss_rates:losses ~seeds ~duration
        ~rrr_level ()
    in
    print_string (Experiments.Modelcheck.report outcome);
    Option.iter
      (fun tolerance ->
        let over =
          List.concat_map
            (fun point ->
              List.filter_map
                (fun row ->
                  if Float.abs row.Experiments.Modelcheck.deviation > tolerance
                  then
                    Some
                      (Printf.sprintf "%s at p=%g: %+.1f%%"
                         (Core.Variant.name row.Experiments.Modelcheck.variant)
                         point.Experiments.Modelcheck.loss_rate
                         (100.0 *. row.Experiments.Modelcheck.deviation))
                  else None)
                point.Experiments.Modelcheck.rows)
            outcome.Experiments.Modelcheck.points
        in
        if over <> [] then begin
          Printf.printf "\n%d cell(s) beyond the %.0f%% tolerance:\n%s\n"
            (List.length over) (100.0 *. tolerance)
            (String.concat "\n" over);
          exit 1
        end)
      check
  in
  Term.(
    const run $ scheduler_arg $ variants $ losses $ seeds $ duration
    $ rrr_level $ check)

let modelcheck_cmd =
  Cmd.v
    (Cmd.info "modelcheck"
       ~doc:
         "Validate each modeled variant's measured steady-state window \
          against its own analytical model (Mathis square-root, Relentless \
          1/p, RRR generalised AIMD) on the clean uniform-loss dumbbell.")
    modelcheck_term

(* -- trace: offline tooling for recorded event traces -- *)

let trace_export_term =
  let input =
    let doc = "Binary trace file to convert (as written by --trace-format binary)." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc)
  in
  let output =
    let doc = "Write the JSONL to $(docv) instead of standard output." in
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let export input output =
    let convert out_channel =
      In_channel.with_open_bin input (fun in_channel ->
          Audit.Trace.export ~input:in_channel ~output:out_channel)
    in
    match
      match output with
      | Some path -> Out_channel.with_open_bin path convert
      | None -> convert stdout
    with
    | () -> `Ok ()
    | exception Audit.Trace.Corrupt reason ->
      `Error (false, Printf.sprintf "%s: %s" input reason)
  in
  Term.(ret (const export $ input $ output))

let trace_cmd =
  Cmd.group
    (Cmd.info "trace" ~doc:"Offline tooling for recorded event traces.")
    [
      Cmd.v
        (Cmd.info "export"
           ~doc:
             "Convert a binary event trace to JSONL, byte-identical to what \
              --trace-format jsonl would have written during the run.")
        trace_export_term;
    ]

let main_cmd =
  let doc =
    "reproduction of Robust TCP Congestion Recovery (Wang & Shin, ICDCS 2001)"
  in
  (* Top-level [--audit] is a synonym for the [audit] sub-command, so the
     whole-suite invariant sweep is one flag away. *)
  let default =
    let audit =
      let doc = "Run the invariant-audit sweep (same as the audit command)." in
      Arg.(value & flag & info [ "audit" ] ~doc)
    in
    Term.(
      ret
        (const (fun audit seed ->
             if audit then `Ok (audit_sweep seed) else `Help (`Pager, None))
        $ audit $ seed_arg))
  in
  Cmd.group ~default
    (Cmd.info "rr-sim" ~version:"1.0.0" ~doc)
    [
      fig5_cmd;
      fig6_cmd;
      fig7_cmd;
      table5_cmd;
      ablation_cmd;
      ack_loss_cmd;
      sync_cmd;
      smooth_cmd;
      vegas_cmd;
      rtt_cmd;
      two_way_cmd;
      sensitivity_cmd;
      audit_cmd;
      run_cmd;
      sweep_cmd;
      modelcheck_cmd;
      trace_cmd;
      list_cmd;
      all_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
