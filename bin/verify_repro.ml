(* verify-repro — executable scorecard for the reproduction.

   Runs every experiment and checks each shape claim EXPERIMENTS.md
   makes, printing PASS/FAIL per claim and exiting non-zero if any
   fails. This is the one-command answer to "does this repo still
   reproduce the paper?".

     dune exec bin/verify_repro.exe *)

let checks : (string * string * (unit -> bool * string)) list ref = ref []

let claim ~section ~name check = checks := (section, name, check) :: !checks

let fig5_bw outcome variant =
  let row =
    List.find
      (fun r -> r.Experiments.Fig5.variant = variant)
      outcome.Experiments.Fig5.rows
  in
  row.Experiments.Fig5.throughput_bps

let fig5_row outcome variant =
  List.find
    (fun r -> r.Experiments.Fig5.variant = variant)
    outcome.Experiments.Fig5.rows

let kbps x = Printf.sprintf "%.1f Kbps" (x /. 1000.0)

let () =
  (* Re-record the settled-artifact digest table (below) after an
     intentional report change: paste this output over the list. *)
  if Array.exists (( = ) "--print-artifact-digests") Sys.argv then begin
    List.iter
      (fun e ->
        Printf.printf "      (%S, %S);\n" e.Experiments.Registry.name
          (Digest.to_hex
             (Digest.string (e.Experiments.Registry.run ~seed:7L))))
      Experiments.Registry.all;
    exit 0
  end;
  (* -- Figure 5 -- *)
  let fig5_3 = Experiments.Fig5.run ~drops:3 () in
  let fig5_6 = Experiments.Fig5.run ~drops:6 () in
  claim ~section:"fig5" ~name:"RR > New-Reno at 3 drops" (fun () ->
      let rr = fig5_bw fig5_3 Core.Variant.Rr in
      let nr = fig5_bw fig5_3 Core.Variant.Newreno in
      (rr > nr, Printf.sprintf "%s vs %s" (kbps rr) (kbps nr)));
  claim ~section:"fig5" ~name:"RR > New-Reno at 6 drops, gap widens" (fun () ->
      let ratio d o = fig5_bw o Core.Variant.Rr /. fig5_bw o Core.Variant.Newreno |> fun r -> (d, r) in
      let _, r3 = ratio 3 fig5_3 and _, r6 = ratio 6 fig5_6 in
      (r6 > r3 && r3 > 1.0, Printf.sprintf "x%.2f -> x%.2f" r3 r6));
  claim ~section:"fig5" ~name:"RR within 25% of SACK (receiver-assisted)"
    (fun () ->
      let worst =
        List.fold_left
          (fun acc outcome ->
            Float.min acc
              (fig5_bw outcome Core.Variant.Rr /. fig5_bw outcome Core.Variant.Sack))
          infinity [ fig5_3; fig5_6 ]
      in
      (worst > 0.75, Printf.sprintf "worst ratio %.2f" worst));
  claim ~section:"fig5" ~name:"Tahoe > New-Reno at 6 drops" (fun () ->
      let t = fig5_bw fig5_6 Core.Variant.Tahoe in
      let nr = fig5_bw fig5_6 Core.Variant.Newreno in
      (t > nr, Printf.sprintf "%s vs %s" (kbps t) (kbps nr)));
  claim ~section:"fig5" ~name:"RR absorbs 6 losses: no timeout, 6 retx"
    (fun () ->
      let row = fig5_row fig5_6 Core.Variant.Rr in
      ( row.Experiments.Fig5.timeouts = 0 && row.Experiments.Fig5.retransmits = 6,
        Printf.sprintf "%d timeouts, %d retx" row.Experiments.Fig5.timeouts
          row.Experiments.Fig5.retransmits ));
  claim ~section:"fig5" ~name:"Reno worst (multi-loss forces its RTO)"
    (fun () ->
      let reno = fig5_row fig5_6 Core.Variant.Reno in
      let worst =
        List.for_all
          (fun v -> fig5_bw fig5_6 Core.Variant.Reno <= fig5_bw fig5_6 v)
          Core.Variant.[ Tahoe; Newreno; Sack; Rr ]
      in
      (worst && reno.Experiments.Fig5.timeouts > 0, "Reno lowest, with timeout"));

  (* -- Figure 6 -- *)
  let fig6 = Experiments.Fig6.run () in
  let fig6_bw variant =
    let r =
      List.find
        (fun r -> r.Experiments.Fig6.variant = variant)
        fig6.Experiments.Fig6.results
    in
    r.Experiments.Fig6.throughput_bps
  in
  claim ~section:"fig6" ~name:"RR >> New-Reno under RED" (fun () ->
      let rr = fig6_bw Core.Variant.Rr and nr = fig6_bw Core.Variant.Newreno in
      (rr > 1.3 *. nr, Printf.sprintf "%s vs %s" (kbps rr) (kbps nr)));
  claim ~section:"fig6" ~name:"RR ~ SACK under RED (within 15%)" (fun () ->
      let ratio = fig6_bw Core.Variant.Rr /. fig6_bw Core.Variant.Sack in
      (ratio > 0.85, Printf.sprintf "ratio %.2f" ratio));

  (* -- Figure 7 -- *)
  let fig7 = Experiments.Fig7.run ~seeds:[ 3L; 17L; 29L ] () in
  let measured point variant =
    let _, window, _ =
      List.find (fun (v, _, _) -> v = variant) point.Experiments.Fig7.measured
    in
    window
  in
  let point p =
    List.find
      (fun pt -> Float.abs (pt.Experiments.Fig7.loss_rate -. p) < 1e-9)
      fig7.Experiments.Fig7.points
  in
  claim ~section:"fig7" ~name:"RR tracks the model at p = 0.01" (fun () ->
      let pt = point 0.01 in
      let model = Float.min pt.Experiments.Fig7.model_window 20.0 in
      let rr = measured pt Core.Variant.Rr in
      (Float.abs (rr -. model) /. model < 0.3,
       Printf.sprintf "window %.1f vs model %.1f" rr model));
  claim ~section:"fig7" ~name:"droop below the model at p = 0.1 (timeouts)"
    (fun () ->
      let pt = point 0.1 in
      let rr = measured pt Core.Variant.Rr in
      ( rr < 0.8 *. pt.Experiments.Fig7.model_window,
        Printf.sprintf "window %.1f vs model %.1f" rr
          pt.Experiments.Fig7.model_window ));
  claim ~section:"fig7" ~name:"RR fits as well as SACK (p <= 0.03)" (fun () ->
      let ok =
        List.for_all
          (fun p ->
            let pt = point p in
            measured pt Core.Variant.Rr > 0.75 *. measured pt Core.Variant.Sack)
          [ 0.005; 0.01; 0.02; 0.03 ]
      in
      (ok, "RR within 25% of SACK at every small-p point"));

  (* -- Table 5 -- *)
  let table5 = Experiments.Table5.run () in
  let case outcome label =
    List.find (fun c -> c.Experiments.Table5.label = label)
      outcome.Experiments.Table5.cases
  in
  let delay c =
    match c.Experiments.Table5.transfer_delay with
    | Some d -> d
    | None -> infinity
  in
  claim ~section:"table5" ~name:"RR background helps a Reno target (case 2 < 1)"
    (fun () ->
      let c1 = case table5 "case 1" and c2 = case table5 "case 2" in
      ( delay c2 < delay c1
        && c2.Experiments.Table5.loss_rate <= c1.Experiments.Table5.loss_rate,
        Printf.sprintf "%.1fs/%.0f%% vs %.1fs/%.0f%%" (delay c2)
          (100. *. c2.Experiments.Table5.loss_rate)
          (delay c1)
          (100. *. c1.Experiments.Table5.loss_rate) ));
  claim ~section:"table5" ~name:"background bandwidth unharmed by RR" (fun () ->
      let c1 = case table5 "case 1" and c2 = case table5 "case 2" in
      let r =
        c2.Experiments.Table5.mean_background_bandwidth_bps
        /. c1.Experiments.Table5.mean_background_bandwidth_bps
      in
      (r > 0.95, Printf.sprintf "bg ratio %.2f" r));
  let table5_lt = Experiments.Table5.run ~limited_transmit:true () in
  claim ~section:"table5" ~name:"lone RR wins with RFC 3042 (case 4 < 1)"
    (fun () ->
      let c1 = case table5_lt "case 1" and c4 = case table5_lt "case 4" in
      ( delay c4 < delay c1,
        Printf.sprintf "%.1fs vs %.1fs" (delay c4) (delay c1) ));

  (* -- extensions -- *)
  let sync = Experiments.Sync.run ~variants:[ Core.Variant.Reno ] () in
  claim ~section:"ext" ~name:"drop-tail synchronizes losses; RED does not"
    (fun () ->
      match sync.Experiments.Sync.rows with
      | [ droptail; red ] ->
        ( droptail.Experiments.Sync.sync_index
          > 2.0 *. red.Experiments.Sync.sync_index,
          Printf.sprintf "sync %.2f vs %.2f" droptail.Experiments.Sync.sync_index
            red.Experiments.Sync.sync_index )
      | _ -> (false, "unexpected rows"));
  let vegas = Experiments.Vegas_claim.run () in
  claim ~section:"ext" ~name:"Vegas' gain is its recovery (ref [8])" (fun () ->
      let g label =
        (List.find (fun r -> r.Experiments.Vegas_claim.label = label)
           vegas.Experiments.Vegas_claim.rows)
          .Experiments.Vegas_claim.throughput_bps
      in
      ( g "vegas recovery only" > 0.8 *. g "vegas (full)"
        && g "vegas (full)" > g "reno"
        && g "vegas avoidance only" < g "vegas (full)",
        "recovery-only ~ full; avoidance-only ~ reno" ));
  let rtt = Experiments.Rtt_fairness.run ~variants:[ Core.Variant.Rr ] () in
  claim ~section:"ext" ~name:"equal-RTT RR converges to fair share (section 5)"
    (fun () ->
      match rtt.Experiments.Rtt_fairness.rows with
      | [ row ] ->
        ( row.Experiments.Rtt_fairness.equal_rtt_jain > 0.95,
          Printf.sprintf "Jain %.3f" row.Experiments.Rtt_fairness.equal_rtt_jain )
      | _ -> (false, "unexpected rows"));
  let two_way = Experiments.Two_way.run () in
  claim ~section:"ext" ~name:"two-way traffic hurts; RR degrades less (ref [22])"
    (fun () ->
      let penalty variant =
        let row =
          List.find (fun r -> r.Experiments.Two_way.variant = variant)
            two_way.Experiments.Two_way.rows
        in
        1.0
        -. (row.Experiments.Two_way.two_way_goodput_bps
           /. row.Experiments.Two_way.one_way_goodput_bps)
      in
      let reno = penalty Core.Variant.Reno and rr = penalty Core.Variant.Rr in
      ( reno > 0.05 && rr > 0.05 && rr <= reno,
        Printf.sprintf "penalty reno %.0f%%, rr %.0f%%" (100. *. reno)
          (100. *. rr) ));
  let smooth = Experiments.Smooth.run ~variants:[ Core.Variant.Rr ] () in
  claim ~section:"ext" ~name:"Smooth-Start sheds start-up losses (ref [21])"
    (fun () ->
      match smooth.Experiments.Smooth.rows with
      | [ plain; damped ] ->
        ( damped.Experiments.Smooth.startup_drops
          <= plain.Experiments.Smooth.startup_drops,
          Printf.sprintf "%d -> %d drops" plain.Experiments.Smooth.startup_drops
            damped.Experiments.Smooth.startup_drops )
      | _ -> (false, "unexpected rows"));

  let sensitivity = Experiments.Sensitivity.run () in
  claim ~section:"ext" ~name:"RR > New-Reno across the buffer x delay grid"
    (fun () ->
      ( Experiments.Sensitivity.ordering_holds sensitivity,
        Printf.sprintf "%d cells"
          (List.length sensitivity.Experiments.Sensitivity.cells) ));

  (* -- settled registry artifacts: byte identity --

     MD5 of every settled artifact's report at seed 7 under the default
     scheduler (exactly what [rr-sim all --only NAME --seed 7] prints
     below its banner). New code must not perturb these outputs; an
     *intentional* report change re-records the table with
     [verify-repro --print-artifact-digests]. Artifacts introduced in
     the same change as their experiment are deliberately absent — a
     digest is only pinned once the output has shipped. *)
  let artifact_digests =
    [
      ("fig5", "deebd3e7e9f1a37d2aa8fd4ab720f09c");
      ("fig5-background", "1ff8374888ea7fa34b560b3717314dd8");
      ("fig6", "27603b4556f71e596a9a41a5512b6f0c");
      ("fig7", "b9907e289aaf2b825656be8a3dd7258e");
      ("fig7-delack", "aae6712b53bf00c29c6a2e09a39350fe");
      ("table5", "c7fd0e0aded2aff1156f316283268af7");
      ("table5-lt", "36785269f4c737dcf3e991d23a5272f0");
      ("ablation", "f8ec343583fe8fd38143426e83014896");
      ("ackloss", "236e5b5cbc28c91a6c2f15810ecebe2d");
      ("sync", "1723da87ef788f73ca9845cf7def402e");
      ("smooth", "b47929a5ecde04626a1cc90645980c29");
      ("fig5-fack", "db7e9ea6d5d1283de52f4381d47b62c1");
      ("vegas", "410f4f52062ecf801366d1c19952a4c3");
      ("rtt", "156ede56a22281e2608b7ef8f28f2e57");
      ("twoway", "3ad8059d1df2231f0b1c7b921761d899");
      ("reorder", "294870b576b384fba0be729c114efcb4");
      ("flaps", "0d206a9b14b75baef2818e2673301bf1");
      ("cross", "db8340468e2de769087d5df2c0c97d83");
      ("mice", "fb01f0951ae4e1e86466d1137f8fa335");
      ("sensitivity", "5e067d7c957f737e497ba81d3570313b");
      ("rtodiv", "6a5a44af3f56a60774fbf42eba45b9cf");
      ("parkinglot", "a9172cf53346b03bb293a574b7f2aca8");
      ("manyflow", "cf962a38e5af6da4e281ac7bbca54849");
      ("modelcheck", "087bd91644691177fd3f3fe083bc3531");
      ("fig5-bench", "1a7f1ad1781586e34b5758bcd4a17771");
      ("fig6-bench", "7d28f21654afa18bdcf8212733e3cf3d");
      ("fig7-bench", "f3b3946e903ddedd96c3dd451d16cd3b");
      ("table5-bench", "ef49df8c898794ba8fae61ed3505fa1c");
      ("sync-bench", "d30ec05b75fe53b5aff4e5ec4f0cb81a");
      ("flaps-bench", "d91fe00e29711d7175ed2b7bf9631a8f");
      ("cross-bench", "ddab0e07396676c86b3cca6a1a798c0b");
    ]
  in
  let artifact_digest name =
    match Experiments.Registry.find name with
    | None -> None
    | Some e ->
      Some (Digest.to_hex (Digest.string (e.Experiments.Registry.run ~seed:7L)))
  in
  List.iter
    (fun (name, expected) ->
      claim ~section:"artifact" ~name:(name ^ " byte-identical") (fun () ->
          match artifact_digest name with
          | None -> (false, "not in the registry")
          | Some actual ->
            ( actual = expected,
              if actual = expected then "md5 " ^ actual
              else Printf.sprintf "md5 %s, expected %s" actual expected )))
    artifact_digests;

  (* -- run them all -- *)
  let failures = ref 0 in
  Printf.printf "reproduction scorecard\n%s\n" (String.make 72 '-');
  List.iter
    (fun (section, name, check) ->
      let ok, detail =
        try check () with exn -> (false, Printexc.to_string exn)
      in
      if not ok then incr failures;
      Printf.printf "[%s] %-8s %-52s %s\n"
        (if ok then "PASS" else "FAIL")
        section name detail)
    (List.rev !checks);
  Printf.printf "%s\n%d claims checked, %d failed\n" (String.make 72 '-')
    (List.length !checks) !failures;
  exit (if !failures = 0 then 0 else 1)
