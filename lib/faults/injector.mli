(** Schedule-driven fault injection for links and paths.

    One injector per run collects every fault the run suffers — link
    flaps, packet reordering, delay jitter — behind a single multicast
    event stream, so tracers ({!Audit.Trace}) and reports see each
    injected fault as it happens. All randomness is drawn from explicit
    {!Sim.Rng.t} streams and all timing from the run's engine, so a
    faulted run is byte-reproducible from its seed.

    The four mechanisms:

    - {!flap_link} applies a {!Schedule} to a {!Net.Link}: at each
      transition the link is cut or restored ({!Net.Link.set_up}).
      Going down, the queued backlog is either dropped ([`Drop_queued],
      the outage model — think route withdrawal) or held in place
      ([`Hold_queued], the handoff model — the buffer survives and
      drains on restore).
    - {!vary_link} applies a {!Timeline} to a {!Net.Link}: at each step
      the link's serialization rate and/or propagation delay changes
      ({!Net.Link.set_rate} / {!Net.Link.set_delay}), binding at packet
      boundaries — the fading/handover model.
    - {!reorder} wraps a packet consumer: each packet is independently
      held back for a bounded random extra delay with probability
      [prob]; unheld packets overtake held ones, producing genuine
      reordering with a bounded reordering depth.
    - {!jitter} wraps a packet consumer with a random per-packet extra
      delay that {e preserves} FIFO order (each delivery is clamped to
      be no earlier than the previous one), modelling delay variance
      without reordering. *)

(** What happened. [Link_down]/[Link_up] are schedule transitions;
    [Fault_drop] is a queued packet discarded by a [`Drop_queued] flap;
    [Reordered] is a packet held back by {!reorder} for [extra]
    seconds. [Rate_change]/[Delay_change] are timeline steps executed by
    {!vary_link}, carrying the *new* value. Jitter is counted
    ({!jittered}) but not evented — it touches every packet, and the
    per-packet story is already told by the queue events around it. *)
type event =
  | Link_down of { link : string }
  | Link_up of { link : string }
  | Fault_drop of { link : string; packet : Net.Packet.t }
  | Reordered of { path : string; packet : Net.Packet.t; extra : float }
  | Rate_change of { link : string; bps : float }
  | Delay_change of { link : string; delay : float }

type t

(** [create ~engine ()] builds an injector stamping events with
    [engine]'s clock. *)
val create : engine:Sim.Engine.t -> unit -> t

(** [subscribe t f] adds [f] to the event multicast; every subscriber
    sees every event, in subscription order, after the injector's own
    counters are updated. Subscriptions cannot be removed. *)
val subscribe : t -> (time:float -> event -> unit) -> unit

(** {1 Mechanisms} *)

(** [flap_link t ~name ~policy ?on_drop link schedule] schedules every
    transition of [schedule] on the engine against [link]. With
    [`Drop_queued], each down-transition drains the link's queue and
    reports every drained packet to [on_drop] (for drop ledgers) and as
    a {!Fault_drop} event. Must be called before the engine passes the
    schedule's first transition time. *)
val flap_link :
  t ->
  name:string ->
  policy:[ `Drop_queued | `Hold_queued ] ->
  ?on_drop:(Net.Packet.t -> unit) ->
  Net.Link.t ->
  Schedule.t ->
  unit

(** [vary_link t ~name link timeline] schedules every step of
    [timeline] on the engine against [link], setting the new rate
    and/or delay and announcing {!Rate_change}/{!Delay_change}. When a
    rate step coincides with a flap restore (the handover pattern),
    call [vary_link] before [flap_link]: same-time events fire in
    scheduling order, so restored service starts at the new rate. Must
    be called before the engine passes the timeline's first step. *)
val vary_link : t -> name:string -> Net.Link.t -> Timeline.t -> unit

(** [reorder t ~path ~rng ~prob ~max_extra next] is a consumer feeding
    [next], holding each packet with probability [prob] for a uniform
    extra delay in [(0, max_extra]]. [path] labels the wrap point in
    events (e.g. ["bottleneck"]).

    @raise Invalid_argument unless [prob] is in [[0, 1]] and
    [max_extra > 0]. *)
val reorder :
  t ->
  path:string ->
  rng:Sim.Rng.t ->
  prob:float ->
  max_extra:float ->
  (Net.Packet.t -> unit) ->
  Net.Packet.t ->
  unit

(** [jitter t ~rng ~max_jitter next] is a consumer feeding [next] after
    a uniform extra delay in [[0, max_jitter)], clamped so deliveries
    stay in arrival order.

    @raise Invalid_argument unless [max_jitter > 0]. *)
val jitter :
  t ->
  rng:Sim.Rng.t ->
  max_jitter:float ->
  (Net.Packet.t -> unit) ->
  Net.Packet.t ->
  unit

(** {1 Counters} *)

(** [downs t] counts down-transitions executed so far. *)
val downs : t -> int

(** [fault_drops t] counts packets discarded by [`Drop_queued] flaps. *)
val fault_drops : t -> int

(** [reordered t] counts packets held back by {!reorder}. *)
val reordered : t -> int

(** [jittered t] counts packets delayed by {!jitter}. *)
val jittered : t -> int

(** [rate_changes t] counts rate steps executed by {!vary_link}. *)
val rate_changes : t -> int

(** [delay_changes t] counts delay steps executed by {!vary_link}. *)
val delay_changes : t -> int
