type step = { at : float; rate : float option; delay : float option }

type t = { steps : step list }

let steps t = t.steps

let is_empty t = t.steps = []

let of_steps steps =
  let rec validate last = function
    | [] -> ()
    | { at; rate; delay } :: rest ->
      if at < 0.0 then invalid_arg "Timeline.of_steps: negative time";
      if at <= last then
        invalid_arg "Timeline.of_steps: steps not strictly increasing";
      if rate = None && delay = None then
        invalid_arg "Timeline.of_steps: step changes neither rate nor delay";
      (match rate with
      | Some bps when bps <= 0.0 -> invalid_arg "Timeline.of_steps: rate <= 0"
      | _ -> ());
      (match delay with
      | Some d when d < 0.0 -> invalid_arg "Timeline.of_steps: negative delay"
      | _ -> ());
      validate at rest
  in
  validate (-1.0) steps;
  { steps }

(* The textual form mirrors the Spec DSL's explicit-flap syntax: one
   '@'-prefixed step per change, fields '+'-separated, '-' for an
   unchanged field. "@2+500000@5+-+0.25" = rate to 500 kbps at t=2,
   delay to 250 ms at t=5. *)
let to_string t =
  let field = function None -> "-" | Some v -> Printf.sprintf "%g" v in
  String.concat ""
    (List.map
       (fun { at; rate; delay } ->
         match delay with
         | None -> Printf.sprintf "@%g+%s" at (field rate)
         | Some _ -> Printf.sprintf "@%g+%s+%s" at (field rate) (field delay))
       t.steps)

let of_string s =
  let s = String.trim s in
  if s = "" then Ok { steps = [] }
  else if s.[0] <> '@' then
    Error
      (Printf.sprintf
         "invalid timeline %S (expected @T+RATE[+DELAY] steps, '-' = keep)" s)
  else
    let field name v =
      if v = "-" then Ok None
      else
        match float_of_string_opt v with
        | Some f -> Ok (Some f)
        | None -> Error (Printf.sprintf "invalid timeline %s %S" name v)
    in
    let ( let* ) = Result.bind in
    let rec parse acc = function
      | [] -> Ok (List.rev acc)
      | chunk :: rest -> (
        match String.split_on_char '+' chunk with
        | [ at; rate ] | [ at; rate; _ ] as parts -> (
          match float_of_string_opt at with
          | None -> Error (Printf.sprintf "invalid timeline time %S" at)
          | Some at ->
            let* rate = field "rate" rate in
            let* delay =
              match parts with
              | [ _; _; d ] -> field "delay" d
              | _ -> Ok None
            in
            parse ({ at; rate; delay } :: acc) rest)
        | _ ->
          Error
            (Printf.sprintf "invalid timeline step %S (expected T+RATE[+DELAY])"
               chunk))
    in
    match String.split_on_char '@' s with
    | "" :: chunks -> (
      let* steps = parse [] chunks in
      match of_steps steps with
      | t -> Ok t
      | exception Invalid_argument msg -> Error msg)
    | _ -> Error (Printf.sprintf "invalid timeline %S" s)

let fading ?first ~period ~base_bps ~levels ~until () =
  if period <= 0.0 then invalid_arg "Timeline.fading: period <= 0";
  if base_bps <= 0.0 then invalid_arg "Timeline.fading: base_bps <= 0";
  if levels = [] then invalid_arg "Timeline.fading: no levels";
  List.iter
    (fun level ->
      if level <= 0.0 then invalid_arg "Timeline.fading: level <= 0")
    levels;
  let first = Option.value first ~default:period in
  if first < 0.0 then invalid_arg "Timeline.fading: negative first";
  let levels = Array.of_list levels in
  let rec build i at =
    if at >= until then []
    else
      { at; rate = Some (base_bps *. levels.(i mod Array.length levels));
        delay = None }
      :: build (i + 1) (at +. period)
  in
  of_steps (build 0 first)

(* A handover is an outage plus a rate step: the link cuts for [gap]
   seconds every [period] (queued packets are burst-lost under the
   usual `Drop_queued policy), and comes back at the *next cell's* rate
   — the level cycle evaluated at the restore instant. Both halves are
   plain data here; [Injector.flap_link] and [Injector.vary_link]
   compose them on a live link. Restores (and their rate steps) that
   straddle [until] are clamped exactly as in {!Schedule.periodic}. *)
let handover ?first ~period ~gap ~base_bps ~levels ~until () =
  if gap <= 0.0 || gap >= period then
    invalid_arg "Timeline.handover: need 0 < gap < period";
  if base_bps <= 0.0 then invalid_arg "Timeline.handover: base_bps <= 0";
  if levels = [] then invalid_arg "Timeline.handover: no levels";
  List.iter
    (fun level ->
      if level <= 0.0 then invalid_arg "Timeline.handover: level <= 0")
    levels;
  let schedule =
    Schedule.periodic ?first ~period ~down_for:gap ~until ()
  in
  let levels = Array.of_list levels in
  let steps =
    List.filteri (fun i _ -> i mod 2 = 1) (Schedule.transitions schedule)
    |> List.mapi (fun i { Schedule.at; _ } ->
           { at;
             rate = Some (base_bps *. levels.(i mod Array.length levels));
             delay = None })
  in
  (of_steps steps, schedule)
