(** Deterministic time-varying link conditions.

    Where a {!Schedule} flips a link's administrative state, a timeline
    steps its *value* state: serialization rate and/or propagation
    delay, as first-class time-varying quantities. A timeline is a
    finite, strictly time-ordered list of steps; each step changes the
    rate, the delay, or both, taking effect at packet boundaries (see
    {!Net.Link.set_rate}). Timelines are pure data and draw no RNG —
    applying one to a live link is {!Injector.vary_link}'s job, and a
    spec without timelines schedules no events at all, so clean runs
    stay byte-identical. *)

type step = { at : float; rate : float option; delay : float option }

type t

(** [steps t] lists the steps, strictly increasing in [at]. *)
val steps : t -> step list

(** [is_empty t] reports whether the timeline has no steps. *)
val is_empty : t -> bool

(** [of_steps steps] validates and packages explicit steps.

    @raise Invalid_argument unless times are non-negative and strictly
    increasing, every step changes at least one of rate/delay, rates
    are positive and delays non-negative. *)
val of_steps : step list -> t

(** [of_string s] parses the textual step form used by
    [rr-sim run --link-schedule]: one ['@']-prefixed step per change,
    ['+']-separated fields, e.g. ["@2+500000@5+-+0.25@8+1000000+0.1"] —
    at [T], set the rate to [RATE] bps and the delay to [DELAY]
    seconds, ["-"] (or an omitted trailing delay) leaving that field
    unchanged. The empty string is the empty timeline. Values are
    absolute, unlike the Spec DSL's relative fade/handover factors. *)
val of_string : string -> (t, string) result

(** [to_string t] renders the canonical textual form; a round-trip
    through {!of_string} is the identity. *)
val to_string : t -> string

(** [fading ?first ~period ~base_bps ~levels ~until ()] models a
    multi-level fading channel: every [period] seconds (starting at
    [first], default [period]) the rate steps to
    [base_bps *. l] for the next [l] in the cyclic [levels] list.
    Delays are untouched.

    @raise Invalid_argument unless [period > 0], [base_bps > 0], and
    [levels] is a non-empty list of positive factors. *)
val fading :
  ?first:float ->
  period:float ->
  base_bps:float ->
  levels:float list ->
  until:float ->
  unit ->
  t

(** [handover ?first ~period ~gap ~base_bps ~levels ~until ()] models a
    cellular handover: every [period] seconds the link cuts for [gap]
    seconds (the returned {!Schedule.t}, normally applied with
    [`Drop_queued] for burst loss) and service resumes at the next
    cell's rate — [base_bps] scaled by the cyclic [levels] list, the
    rate step placed at the restore instant (the returned timeline).
    Restores straddling [until] are clamped as in {!Schedule.periodic}.

    @raise Invalid_argument unless [0 < gap < period], [base_bps > 0],
    and [levels] is a non-empty list of positive factors. *)
val handover :
  ?first:float ->
  period:float ->
  gap:float ->
  base_bps:float ->
  levels:float list ->
  until:float ->
  unit ->
  t * Schedule.t
