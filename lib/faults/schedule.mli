(** Deterministic link up/down timelines.

    A schedule is a finite, strictly time-ordered list of administrative
    transitions for one link, built either from explicit down/up pairs,
    from a periodic flap pattern (the handoff model), or from an
    RNG-driven alternating-renewal process with exponential holding
    times (the outage model). Random schedules draw from an explicit
    {!Sim.Rng.t} stream, so a schedule — and therefore the whole faulted
    run — is reproducible from the simulation seed alone.

    Schedules are pure data: applying one to a live link is
    {!Injector.flap_link}'s job. *)

type transition = { at : float; up : bool }

type t

(** [transitions t] lists the transitions, strictly increasing in
    [at]. The first transition of a non-empty schedule is always a
    down (links start up). *)
val transitions : t -> transition list

(** [is_empty t] reports whether the schedule has no transitions. *)
val is_empty : t -> bool

(** [of_flaps pairs] builds a schedule from explicit
    [(down_at, up_at)] outages, e.g. [[ (2.0, 2.5); (8.0, 9.0) ]].

    @raise Invalid_argument unless each [down_at < up_at], the pairs
    are strictly increasing, and all times are non-negative. *)
val of_flaps : (float * float) list -> t

(** [periodic ?first ~period ~down_for ~until ()] takes the link down
    for [down_for] seconds once every [period] seconds, starting at
    [first] (default [period]), until [until] — e.g. a cellular handoff
    every few seconds. No outage *starts* at or after [until]; an
    outage that straddles [until] still emits its matching restore,
    clamped to [until] itself, so a driver that runs the engine to the
    schedule horizon always executes it — the link never ends a
    schedule administratively down.

    @raise Invalid_argument unless [0 < down_for < period] and
    [first >= 0]. *)
val periodic :
  ?first:float -> period:float -> down_for:float -> until:float -> unit -> t

(** [random ~rng ~mean_up:u ~mean_down:d ~until ()] alternates
    exponentially distributed up times (mean [u]) and down times (mean
    [d]), starting up at time 0, truncated as in {!periodic}. Equal
    RNG states yield equal schedules.

    @raise Invalid_argument unless both means are positive. *)
val random :
  rng:Sim.Rng.t -> mean_up:float -> mean_down:float -> until:float -> unit -> t
