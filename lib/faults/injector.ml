type event =
  | Link_down of { link : string }
  | Link_up of { link : string }
  | Fault_drop of { link : string; packet : Net.Packet.t }
  | Reordered of { path : string; packet : Net.Packet.t; extra : float }
  | Rate_change of { link : string; bps : float }
  | Delay_change of { link : string; delay : float }

type t = {
  engine : Sim.Engine.t;
  mutable hooks : (time:float -> event -> unit) list;  (* reversed *)
  mutable downs : int;
  mutable fault_drops : int;
  mutable reordered : int;
  mutable jittered : int;
  mutable rate_changes : int;
  mutable delay_changes : int;
}

let create ~engine () =
  {
    engine;
    hooks = [];
    downs = 0;
    fault_drops = 0;
    reordered = 0;
    jittered = 0;
    rate_changes = 0;
    delay_changes = 0;
  }

let subscribe t f = t.hooks <- f :: t.hooks

let emit t event =
  let time = Sim.Engine.now t.engine in
  List.iter (fun f -> f ~time event) (List.rev t.hooks)

let downs t = t.downs

let fault_drops t = t.fault_drops

let reordered t = t.reordered

let jittered t = t.jittered

let rate_changes t = t.rate_changes

let delay_changes t = t.delay_changes

let flap_link t ~name ~policy ?(on_drop = fun _ -> ()) link schedule =
  let drain () =
    match policy with
    | `Hold_queued -> ()
    | `Drop_queued ->
      let queue = Net.Link.queue link in
      let rec drop () =
        match queue.Net.Queue_disc.dequeue () with
        | None -> ()
        | Some packet ->
          t.fault_drops <- t.fault_drops + 1;
          on_drop packet;
          emit t (Fault_drop { link = name; packet });
          drop ()
      in
      drop ()
  in
  List.iter
    (fun { Schedule.at; up } ->
      Sim.Engine.schedule_unit_at t.engine ~time:at (fun () ->
          Net.Link.set_up link up;
          if up then emit t (Link_up { link = name })
          else begin
            t.downs <- t.downs + 1;
            emit t (Link_down { link = name });
            drain ()
          end))
    (Schedule.transitions schedule)

(* Apply a value timeline to a live link. Each step is one scheduled
   event that sets the new rate and/or delay (packet-boundary binding
   is the link's own contract) and announces the change. When a rate
   step coincides with a flap restore — the handover pattern — apply
   [vary_link] before [flap_link]: same-time events fire in scheduling
   order, so the restarted service then serializes at the new rate. *)
let vary_link t ~name link timeline =
  List.iter
    (fun { Timeline.at; rate; delay } ->
      Sim.Engine.schedule_unit_at t.engine ~time:at (fun () ->
          (match rate with
          | Some bps ->
            Net.Link.set_rate link bps;
            t.rate_changes <- t.rate_changes + 1;
            emit t (Rate_change { link = name; bps })
          | None -> ());
          match delay with
          | Some d ->
            Net.Link.set_delay link d;
            t.delay_changes <- t.delay_changes + 1;
            emit t (Delay_change { link = name; delay = d })
          | None -> ()))
    (Timeline.steps timeline)

let reorder t ~path ~rng ~prob ~max_extra next =
  if prob < 0.0 || prob > 1.0 then invalid_arg "Injector.reorder: bad prob";
  if max_extra <= 0.0 then invalid_arg "Injector.reorder: max_extra <= 0";
  fun packet ->
    if Sim.Rng.bernoulli rng prob then begin
      (* (0, max_extra]: a zero hold would not reorder anything. *)
      let extra = max_extra *. (1.0 -. Sim.Rng.float rng) in
      t.reordered <- t.reordered + 1;
      emit t (Reordered { path; packet; extra });
      Sim.Engine.schedule_unit t.engine ~delay:extra (fun () -> next packet)
    end
    else next packet

let jitter t ~rng ~max_jitter next =
  if max_jitter <= 0.0 then invalid_arg "Injector.jitter: max_jitter <= 0";
  (* Latest delivery time scheduled so far; clamping to it keeps the
     wrapped path FIFO while still spreading inter-arrival gaps. *)
  let horizon = ref 0.0 in
  fun packet ->
    let now = Sim.Engine.now t.engine in
    let at = Float.max (now +. Sim.Rng.float_range rng ~lo:0.0 ~hi:max_jitter) !horizon in
    horizon := at;
    t.jittered <- t.jittered + 1;
    Sim.Engine.schedule_unit_at t.engine ~time:at (fun () -> next packet)
