type transition = { at : float; up : bool }

type t = { transitions : transition list }

let transitions t = t.transitions

let is_empty t = t.transitions = []

let of_flaps pairs =
  let rec build last = function
    | [] -> []
    | (down_at, up_at) :: rest ->
      if down_at < 0.0 then invalid_arg "Schedule.of_flaps: negative time";
      if down_at <= last then
        invalid_arg "Schedule.of_flaps: flaps not strictly increasing";
      if up_at <= down_at then invalid_arg "Schedule.of_flaps: up_at <= down_at";
      { at = down_at; up = false }
      :: { at = up_at; up = true }
      :: build up_at rest
  in
  { transitions = build (-1.0) pairs }

let periodic ?first ~period ~down_for ~until () =
  if period <= 0.0 then invalid_arg "Schedule.periodic: period <= 0";
  if down_for <= 0.0 || down_for >= period then
    invalid_arg "Schedule.periodic: need 0 < down_for < period";
  let first = Option.value first ~default:period in
  if first < 0.0 then invalid_arg "Schedule.periodic: negative first";
  (* An outage straddling [until] still emits its restore, clamped to
     [until]: a driver that runs the engine exactly to the schedule
     horizon (Scenario runs [run_until ~time:duration]) then executes
     the restore as its last event, so the link never ends a schedule
     administratively down. A restore strictly past the horizon would
     be emitted but never fire. *)
  let rec build down_at =
    if down_at >= until then []
    else
      (down_at, Float.min (down_at +. down_for) until)
      :: build (down_at +. period)
  in
  of_flaps (build first)

let random ~rng ~mean_up ~mean_down ~until () =
  if mean_up <= 0.0 || mean_down <= 0.0 then
    invalid_arg "Schedule.random: means must be positive";
  let rec build now =
    let down_at = now +. Sim.Rng.exponential rng ~mean:mean_up in
    if down_at >= until then []
    else
      let up_at = down_at +. Sim.Rng.exponential rng ~mean:mean_down in
      (* Clamp a straddling restore as in [periodic]; recursion on the
         unclamped time ends the schedule either way. *)
      (down_at, Float.min up_at until) :: build up_at
  in
  of_flaps (build 0.0)
