type flap =
  | Periodic of { period : float; down_for : float }
  | Random of { mean_up : float; mean_down : float }
  | Explicit of (float * float) list

type reorder = { prob : float; max_extra : float }

type fade = { fade_period : float; fade_levels : float list }

type handover = { ho_period : float; ho_gap : float; ho_levels : float list }

type t = {
  flaps : flap option;
  flap_policy : [ `Drop_queued | `Hold_queued ];
  reorder : reorder option;
  jitter : float option;
  reverse : bool;
  fade : fade option;
  handover : handover option;
  asym : float option;
}

let none =
  {
    flaps = None;
    flap_policy = `Hold_queued;
    reorder = None;
    jitter = None;
    reverse = false;
    fade = None;
    handover = None;
    asym = None;
  }

let is_none t =
  t.flaps = None && t.reorder = None && t.jitter = None && t.fade = None
  && t.handover = None && t.asym = None

let has_timeline t = t.fade <> None || t.handover <> None || t.asym <> None

let default_reorder_extra = 0.05

let default_handover_levels = [ 1.0; 0.5 ]

let flap_schedule t ~rng ~until =
  match t.flaps with
  | None -> None
  | Some (Periodic { period; down_for }) ->
    Some (Schedule.periodic ~period ~down_for ~until ())
  | Some (Random { mean_up; mean_down }) ->
    Some (Schedule.random ~rng ~mean_up ~mean_down ~until ())
  | Some (Explicit pairs) -> Some (Schedule.of_flaps pairs)

(* Render floats compactly ("4" not "4.") so labels and cache keys stay
   tidy, while keeping enough digits to round-trip typical CLI values. *)
let float_str f = Printf.sprintf "%.12g" f

let to_string t =
  let clauses = ref [] in
  let add c = clauses := c :: !clauses in
  (* New hostile-network clauses are added first so they render *after*
     every pre-existing clause: specs without them keep their exact
     historical string (labels, cache keys). *)
  (match t.asym with
  | Some ratio -> add (Printf.sprintf "asym:%s" (float_str ratio))
  | None -> ());
  (match t.handover with
  | Some { ho_period; ho_gap; ho_levels } ->
    let levels =
      if ho_levels = default_handover_levels then ""
      else
        String.concat ""
          (List.map (fun l -> "+" ^ float_str l) ho_levels)
    in
    add
      (Printf.sprintf "handover:%s+%s%s" (float_str ho_period)
         (float_str ho_gap) levels)
  | None -> ());
  (match t.fade with
  | Some { fade_period; fade_levels } ->
    add
      (Printf.sprintf "fade:%s%s" (float_str fade_period)
         (String.concat ""
            (List.map (fun l -> "+" ^ float_str l) fade_levels)))
  | None -> ());
  if t.reverse then add "reverse";
  (match t.jitter with
  | Some m -> add (Printf.sprintf "jitter:%s" (float_str m))
  | None -> ());
  (match t.reorder with
  | Some { prob; max_extra } ->
    if max_extra = default_reorder_extra then
      add (Printf.sprintf "reorder:%s" (float_str prob))
    else
      add (Printf.sprintf "reorder:%s:%s" (float_str prob) (float_str max_extra))
  | None -> ());
  (match t.flaps with
  | None -> ()
  | Some f ->
    (match t.flap_policy with `Drop_queued -> add "drop" | `Hold_queued -> ());
    (match f with
    | Periodic { period; down_for } ->
      add (Printf.sprintf "flap:%s+%s" (float_str period) (float_str down_for))
    | Random { mean_up; mean_down } ->
      add
        (Printf.sprintf "flap:rand:%s+%s" (float_str mean_up)
           (float_str mean_down))
    | Explicit pairs ->
      let body =
        List.map
          (fun (d, u) -> Printf.sprintf "@%s+%s" (float_str d) (float_str u))
          pairs
        |> String.concat ""
      in
      add (Printf.sprintf "flap:%s" body)));
  String.concat "," !clauses

let ( let* ) = Result.bind

let parse_float ~what s =
  match float_of_string_opt s with
  | Some f when f = f (* not nan *) -> Ok f
  | _ -> Error (Printf.sprintf "faults: bad %s %S" what s)

let parse_pair ~what s =
  match String.split_on_char '+' s with
  | [ a; b ] ->
    let* a = parse_float ~what a in
    let* b = parse_float ~what b in
    Ok (a, b)
  | _ -> Error (Printf.sprintf "faults: expected A+B in %s, got %S" what s)

let parse_explicit body =
  (* body looks like "@2+2.5@8+9": leading '@', '@'-separated pairs. *)
  match String.split_on_char '@' body with
  | "" :: pairs when pairs <> [] ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest ->
        let* pair = parse_pair ~what:"flap outage" p in
        go (pair :: acc) rest
    in
    let* pairs = go [] pairs in
    Ok (Explicit pairs)
  | _ -> Error (Printf.sprintf "faults: bad explicit flap list %S" body)

let parse_floats ~what s =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | part :: rest ->
      let* f = parse_float ~what part in
      go (f :: acc) rest
  in
  go [] (String.split_on_char '+' s)

let parse_levels ~what levels =
  if levels = [] then Error (Printf.sprintf "faults: %s needs levels" what)
  else if List.exists (fun l -> l <= 0.0) levels then
    Error (Printf.sprintf "faults: %s levels must be > 0" what)
  else Ok levels

let parse_clause spec clause =
  match String.split_on_char ':' clause with
  | [ "" ] -> Ok spec
  | [ "drop" ] -> Ok { spec with flap_policy = `Drop_queued }
  | [ "hold" ] -> Ok { spec with flap_policy = `Hold_queued }
  | [ "reverse" ] -> Ok { spec with reverse = true }
  | [ "jitter"; m ] ->
    let* m = parse_float ~what:"jitter bound" m in
    if m <= 0.0 then Error "faults: jitter bound must be > 0"
    else Ok { spec with jitter = Some m }
  | [ "reorder"; p ] ->
    let* prob = parse_float ~what:"reorder prob" p in
    if prob < 0.0 || prob > 1.0 then Error "faults: reorder prob not in [0,1]"
    else
      Ok { spec with reorder = Some { prob; max_extra = default_reorder_extra } }
  | [ "reorder"; p; m ] ->
    let* prob = parse_float ~what:"reorder prob" p in
    let* max_extra = parse_float ~what:"reorder max extra" m in
    if prob < 0.0 || prob > 1.0 then Error "faults: reorder prob not in [0,1]"
    else if max_extra <= 0.0 then Error "faults: reorder max extra must be > 0"
    else Ok { spec with reorder = Some { prob; max_extra } }
  | [ "flap"; "rand"; pair ] ->
    let* mean_up, mean_down = parse_pair ~what:"flap:rand means" pair in
    if mean_up <= 0.0 || mean_down <= 0.0 then
      Error "faults: flap:rand means must be > 0"
    else Ok { spec with flaps = Some (Random { mean_up; mean_down }) }
  | [ "flap"; body ] when String.length body > 0 && body.[0] = '@' ->
    let* flaps = parse_explicit body in
    Ok { spec with flaps = Some flaps }
  | [ "flap"; pair ] ->
    let* period, down_for = parse_pair ~what:"flap period" pair in
    if not (0.0 < down_for && down_for < period) then
      Error "faults: flap needs 0 < DOWN < PERIOD"
    else Ok { spec with flaps = Some (Periodic { period; down_for }) }
  | [ "fade"; body ] -> (
    let* parts = parse_floats ~what:"fade" body in
    match parts with
    | period :: levels ->
      if period <= 0.0 then Error "faults: fade period must be > 0"
      else
        let* fade_levels = parse_levels ~what:"fade" levels in
        Ok { spec with fade = Some { fade_period = period; fade_levels } }
    | [] -> Error "faults: fade needs PERIOD+L1[+L2...]")
  | [ "handover"; body ] -> (
    let* parts = parse_floats ~what:"handover" body in
    match parts with
    | period :: gap :: levels ->
      if not (0.0 < gap && gap < period) then
        Error "faults: handover needs 0 < GAP < PERIOD"
      else
        let* ho_levels =
          match levels with
          | [] -> Ok default_handover_levels
          | levels -> parse_levels ~what:"handover" levels
        in
        Ok
          {
            spec with
            handover = Some { ho_period = period; ho_gap = gap; ho_levels };
          }
    | _ -> Error "faults: handover needs PERIOD+GAP[+L1+L2...]")
  | [ "asym"; ratio ] ->
    let* ratio = parse_float ~what:"asym ratio" ratio in
    if ratio < 1.0 then Error "faults: asym ratio must be >= 1"
    else Ok { spec with asym = Some ratio }
  | _ -> Error (Printf.sprintf "faults: unknown clause %S" clause)

let of_string s =
  let rec go spec = function
    | [] -> Ok spec
    | clause :: rest ->
      let* spec = parse_clause spec (String.trim clause) in
      go spec rest
  in
  go none (String.split_on_char ',' s)
