(** Declarative fault configuration.

    A [Spec.t] names {e which} faults a run suffers without touching any
    live object: it is what scenarios store, campaign jobs hash, and the
    CLI parses. Turning a spec into scheduled events against a concrete
    topology is the caller's job (see [Experiments.Scenario]), using
    {!flap_schedule} for the link timeline and {!Injector.reorder} /
    {!Injector.jitter} for the path wrappers.

    The textual form ({!of_string} / {!to_string}) is a comma-separated
    clause list, e.g. ["flap:4+0.5,drop,reorder:0.05,jitter:0.01"]:

    - ["flap:PERIOD+DOWN"] — cut the trunk for [DOWN] s every
      [PERIOD] s ({!Schedule.periodic});
    - ["flap:rand:UP+DOWN"] — exponential on/off outages with mean up
      time [UP] and mean down time [DOWN] ({!Schedule.random});
    - ["drop"] / ["hold"] — what happens to the queued backlog at each
      down transition (default ["hold"]);
    - ["reorder:PROB"] or ["reorder:PROB:MAXEXTRA"] — hold each packet
      with probability [PROB] for up to [MAXEXTRA] s (default
      {!default_reorder_extra});
    - ["jitter:MAX"] — FIFO-preserving uniform extra delay in
      [[0, MAX)) s;
    - ["reverse"] — apply reorder/jitter to the reverse (ACK) path as
      well as the forward data path. *)

type flap =
  | Periodic of { period : float; down_for : float }
  | Random of { mean_up : float; mean_down : float }
  | Explicit of (float * float) list  (** (down_at, up_at) outages *)

type reorder = { prob : float; max_extra : float }

type t = {
  flaps : flap option;
  flap_policy : [ `Drop_queued | `Hold_queued ];
  reorder : reorder option;
  jitter : float option;  (** max extra delay, seconds *)
  reverse : bool;  (** reorder/jitter the ACK path too *)
}

(** [none] has every fault disabled — the default of every scenario. *)
val none : t

(** [is_none t] reports whether [t] injects nothing. *)
val is_none : t -> bool

(** [default_reorder_extra] is the reorder hold-back bound used when
    the textual form omits [MAXEXTRA]: 50 ms, a quarter RTT of the
    paper's topology. *)
val default_reorder_extra : float

(** [flap_schedule t ~rng ~until] realizes the spec's flap description
    as a concrete {!Schedule.t} over [[0, until]]. [rng] is consumed
    only by [Random] flaps. [None] when the spec has no flaps. *)
val flap_schedule : t -> rng:Sim.Rng.t -> until:float -> Schedule.t option

(** [of_string s] parses the textual form. The empty string is
    {!none}. *)
val of_string : string -> (t, string) result

(** [to_string t] renders the canonical textual form; a round-trip
    through {!of_string} is the identity on parseable specs.
    [Explicit] flaps render as ["flap:@D1+U1@D2+U2..."] (absolute
    down/up times), which {!of_string} also accepts. *)
val to_string : t -> string
