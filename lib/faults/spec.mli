(** Declarative fault configuration.

    A [Spec.t] names {e which} faults a run suffers without touching any
    live object: it is what scenarios store, campaign jobs hash, and the
    CLI parses. Turning a spec into scheduled events against a concrete
    topology is the caller's job (see [Experiments.Scenario]), using
    {!flap_schedule} for the link timeline and {!Injector.reorder} /
    {!Injector.jitter} for the path wrappers.

    The textual form ({!of_string} / {!to_string}) is a comma-separated
    clause list, e.g. ["flap:4+0.5,drop,reorder:0.05,jitter:0.01"]:

    - ["flap:PERIOD+DOWN"] — cut the trunk for [DOWN] s every
      [PERIOD] s ({!Schedule.periodic});
    - ["flap:rand:UP+DOWN"] — exponential on/off outages with mean up
      time [UP] and mean down time [DOWN] ({!Schedule.random});
    - ["drop"] / ["hold"] — what happens to the queued backlog at each
      down transition (default ["hold"]);
    - ["reorder:PROB"] or ["reorder:PROB:MAXEXTRA"] — hold each packet
      with probability [PROB] for up to [MAXEXTRA] s (default
      {!default_reorder_extra});
    - ["jitter:MAX"] — FIFO-preserving uniform extra delay in
      [[0, MAX)) s;
    - ["reverse"] — apply reorder/jitter to the reverse (ACK) path as
      well as the forward data path.

    The hostile-network clauses (time-varying link conditions, realized
    through {!Timeline} and {!Injector.vary_link}; factors are relative
    to the target link's configured rate):

    - ["fade:PERIOD+L1[+L2...]"] — multi-level fading: every [PERIOD] s
      the trunk rate steps to the next factor in the cyclic level list;
    - ["handover:PERIOD+GAP[+L1+L2...]"] — cellular handover: every
      [PERIOD] s the trunk cuts for [GAP] s (queued packets burst-lost)
      and resumes at the next level factor (default
      {!default_handover_levels});
    - ["asym:R"] — asymmetric ACK channel: the reverse trunk runs at
      [1/R] of the forward bottleneck rate ([R >= 1]). *)

type flap =
  | Periodic of { period : float; down_for : float }
  | Random of { mean_up : float; mean_down : float }
  | Explicit of (float * float) list  (** (down_at, up_at) outages *)

type reorder = { prob : float; max_extra : float }

type fade = {
  fade_period : float;
  fade_levels : float list;  (** cyclic rate factors, each > 0 *)
}

type handover = {
  ho_period : float;
  ho_gap : float;  (** outage length at each handover, seconds *)
  ho_levels : float list;  (** cyclic post-handover rate factors *)
}

type t = {
  flaps : flap option;
  flap_policy : [ `Drop_queued | `Hold_queued ];
  reorder : reorder option;
  jitter : float option;  (** max extra delay, seconds *)
  reverse : bool;  (** reorder/jitter the ACK path too *)
  fade : fade option;
  handover : handover option;
  asym : float option;  (** forward:reverse trunk rate ratio, >= 1 *)
}

(** [none] has every fault disabled — the default of every scenario. *)
val none : t

(** [is_none t] reports whether [t] injects nothing. *)
val is_none : t -> bool

(** [has_timeline t] reports whether [t] carries any time-varying link
    condition (fade, handover or asym) — the clauses a runner realizes
    through {!Injector.vary_link}. *)
val has_timeline : t -> bool

(** [default_reorder_extra] is the reorder hold-back bound used when
    the textual form omits [MAXEXTRA]: 50 ms, a quarter RTT of the
    paper's topology. *)
val default_reorder_extra : float

(** [default_handover_levels] is the post-handover rate-factor cycle
    used when ["handover:"] omits levels: alternate full-rate and
    half-rate cells. *)
val default_handover_levels : float list

(** [flap_schedule t ~rng ~until] realizes the spec's flap description
    as a concrete {!Schedule.t} over [[0, until]]. [rng] is consumed
    only by [Random] flaps. [None] when the spec has no flaps. *)
val flap_schedule : t -> rng:Sim.Rng.t -> until:float -> Schedule.t option

(** [of_string s] parses the textual form. The empty string is
    {!none}. *)
val of_string : string -> (t, string) result

(** [to_string t] renders the canonical textual form; a round-trip
    through {!of_string} is the identity on parseable specs.
    [Explicit] flaps render as ["flap:@D1+U1@D2+U2..."] (absolute
    down/up times), which {!of_string} also accepts. *)
val to_string : t -> string
