open Tcp.Sender_common

type stage = Retreat | Probe

type probe_view = {
  stage : stage;
  exit_point : int;
  actnum : int;
  ndup : int;
  further_losses : int;
}

type recovery = {
  mutable r_stage : stage;
  mutable exit_point : int;
  mutable actnum : int;
  mutable ndup : int;
  mutable retreat_sent : int;  (* new segments sent during retreat *)
  mutable further_losses : int;
}

type state = {
  mutable recovery : recovery option;
  mutable completed_recoveries : int;
}

type handle = state

type ablation = {
  retreat_per_dupack : bool;
  multiplicative_backoff : bool;
  exit_to_ssthresh : bool;
}

let paper_design =
  {
    retreat_per_dupack = false;
    multiplicative_backoff = false;
    exit_to_ssthresh = false;
  }

let inspect state =
  Option.map
    (fun r ->
      {
        stage = r.r_stage;
        exit_point = r.exit_point;
        actnum = r.actnum;
        ndup = r.ndup;
        further_losses = r.further_losses;
      })
    state.recovery

let recoveries state = state.completed_recoveries

(* Fast retransmit: freeze cwnd, halve ssthresh, and start the retreat
   sub-phase. actnum stays 0 until the first non-duplicate ACK. *)
let enter_recovery base state =
  base.counters.Tcp.Counters.fast_retransmits <-
    base.counters.Tcp.Counters.fast_retransmits + 1;
  base.recover_mark <- base.maxseq;
  notify_recovery_enter base;
  state.recovery <-
    Some
      {
        r_stage = Retreat;
        exit_point = base.maxseq;
        actnum = 0;
        ndup = 0;
        retreat_sent = 0;
        further_losses = 0;
      };
  ignore (halve_ssthresh base : float);
  base.phase <- Recovery;
  base.timed <- None;
  send_segment base ~seq:(base.una + 1) ~retx:true;
  restart_rtx_timer base

(* Leaving recovery: cwnd takes back control, set to the accurate
   in-flight count so the terminating ACK clocks out just one segment
   (no big-ACK burst). *)
let exit_recovery ~ablation base state r ~ackno =
  advance_una base ~ackno;
  set_cwnd base
    (if ablation.exit_to_ssthresh then ssthresh base
     else float_of_int (max r.actnum 1));
  base.dupacks <- 0;
  base.phase <-
    (if cwnd base < ssthresh base then Slow_start else Congestion_avoidance);
  state.recovery <- None;
  state.completed_recoveries <- state.completed_recoveries + 1;
  notify_recovery_exit base;
  send_much base

(* A partial ACK: the RTT boundary of the probe sub-phase. Detect
   further losses by ndup-vs-actnum, adjust actnum and the exit point,
   and retransmit the hole the ACK exposes. *)
let probe_rtt_boundary ~ablation base r ~ackno =
  let further = r.ndup < r.actnum in
  if further then begin
    r.further_losses <- r.further_losses + (r.actnum - r.ndup);
    r.actnum <-
      (if ablation.multiplicative_backoff then max (r.actnum / 2) 0
       else r.ndup);
    (* Extend the exit to cover everything sent up to the detection. *)
    r.exit_point <- base.maxseq
  end
  else begin
    (* Loss-free RTT: grow linearly, like congestion avoidance. *)
    r.actnum <- r.actnum + 1;
    ignore (send_new_data base ~count:1 : int)
  end;
  r.ndup <- 0;
  advance_una base ~ackno;
  send_segment base ~seq:(base.una + 1) ~retx:true;
  restart_rtx_timer base

let recv_ack ~ablation base state ~ackno =
  match state.recovery with
  | None ->
    if ackno > base.una then begin
      base.dupacks <- 0;
      advance_una base ~ackno;
      open_cwnd base;
      send_much base
    end
    else if ackno = base.una && outstanding base > 0 then begin
      note_dupack base;
      base.dupacks <- base.dupacks + 1;
      if
        base.dupacks = base.params.Tcp.Params.dupack_threshold
        && may_fast_retransmit base
      then enter_recovery base state
      else limited_transmit base
    end
  | Some r ->
    if ackno = base.una then begin
      note_dupack base;
      r.ndup <- r.ndup + 1;
      match r.r_stage with
      | Retreat ->
        let clock = if ablation.retreat_per_dupack then 1 else 2 in
        if r.ndup mod clock = 0 then
          r.retreat_sent <- r.retreat_sent + send_new_data base ~count:1
      | Probe -> ignore (send_new_data base ~count:1 : int)
    end
    else if ackno > base.una then begin
      match r.r_stage with
      | Retreat ->
        (* First non-duplicate ACK: retreat is over; actnum assumes
           congestion control, seeded with the retreat's send count. *)
        r.actnum <- r.retreat_sent;
        r.r_stage <- Probe;
        r.ndup <- 0;
        if ackno >= r.exit_point then
          exit_recovery ~ablation base state r ~ackno
        else begin
          advance_una base ~ackno;
          send_segment base ~seq:(base.una + 1) ~retx:true;
          restart_rtx_timer base
        end
      | Probe ->
        if ackno >= r.exit_point then
          exit_recovery ~ablation base state r ~ackno
        else probe_rtt_boundary ~ablation base r ~ackno
    end

let timeout state base =
  (* Retransmission loss: fall back to the standard coarse timeout. *)
  state.recovery <- None;
  timeout_common base

let make ~engine ~params ~flow ~emit ~ablation () =
  let state = { recovery = None; completed_recoveries = 0 } in
  let base =
    create ~engine ~params ~flow ~emit ~timeout_action:(timeout state) ()
  in
  let deliver_ack packet =
    if Net.Packet.is_data packet then
      invalid_arg "Rr: data packet delivered to sender"
    else if not base.completed then
      recv_ack ~ablation base state ~ackno:(Net.Packet.ackno_exn packet)
  in
  ( { Tcp.Agent.name = "rr"; flow; deliver_ack; base; wants_sack = false },
    state )

let create_with_handle ~engine ~params ~flow ~emit () =
  make ~engine ~params ~flow ~emit ~ablation:paper_design ()

let create ~engine ~params ~flow ~emit () =
  fst (make ~engine ~params ~flow ~emit ~ablation:paper_design ())

let create_ablated ~engine ~params ~flow ~emit ~ablation () =
  fst (make ~engine ~params ~flow ~emit ~ablation ())

let create_ablated_with_handle ~engine ~params ~flow ~emit ~ablation () =
  make ~engine ~params ~flow ~emit ~ablation ()
