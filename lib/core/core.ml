(** Public facade of the Robust-Recovery reproduction.

    [Core.Rr] is the paper's contribution; [Core.Variant] selects among
    RR and the baseline TCPs; the substrate libraries are re-exported so
    downstream code can depend on [core] alone:

    {[
      let engine = Core.Sim.Engine.create () in
      let agent =
        Core.Rr.create ~engine ~params:Core.Tcp.Params.default ~flow:0
          ~emit ()
      in
      ...
    ]} *)

module Rr = Rr
module Variant = Variant
module Sim = Sim
module Net = Net
module Tcp = Tcp
