type t = Tahoe | Reno | Newreno | Sack | Fack | Vegas | Rr | Relentless | Rrr

let all = [ Tahoe; Reno; Newreno; Sack; Fack; Vegas; Rr; Relentless; Rrr ]

let name = function
  | Tahoe -> "tahoe"
  | Reno -> "reno"
  | Newreno -> "newreno"
  | Sack -> "sack"
  | Fack -> "fack"
  | Vegas -> "vegas"
  | Rr -> "rr"
  | Relentless -> "relentless"
  | Rrr -> "rrr"

let of_string s =
  match String.lowercase_ascii s with
  | "tahoe" -> Ok Tahoe
  | "reno" -> Ok Reno
  | "newreno" | "new-reno" -> Ok Newreno
  | "sack" -> Ok Sack
  | "fack" -> Ok Fack
  | "vegas" -> Ok Vegas
  | "rr" | "robust" | "robust-recovery" -> Ok Rr
  | "relentless" -> Ok Relentless
  | "rrr" | "relative-rate-reduction" -> Ok Rrr
  | other -> Error (Printf.sprintf "unknown TCP variant %S" other)

let create t ~engine ~params ~flow ~emit () =
  match t with
  | Tahoe -> Tcp.Tahoe.create ~engine ~params ~flow ~emit ()
  | Reno -> Tcp.Reno.create ~engine ~params ~flow ~emit ()
  | Newreno -> Tcp.Newreno.create ~engine ~params ~flow ~emit ()
  | Sack -> Tcp.Sack.create ~engine ~params ~flow ~emit ()
  | Fack -> Tcp.Fack.create ~engine ~params ~flow ~emit ()
  | Vegas -> Tcp.Vegas.create ~engine ~params ~flow ~emit ()
  | Rr -> Rr.create ~engine ~params ~flow ~emit ()
  | Relentless -> Tcp.Relentless.create ~engine ~params ~flow ~emit ()
  | Rrr -> Tcp.Rrr.create ~engine ~params ~flow ~emit ()

let create_inspected t ~engine ~params ~flow ~emit () =
  match t with
  | Rr ->
    let agent, handle = Rr.create_with_handle ~engine ~params ~flow ~emit () in
    (agent, Some handle)
  | Tahoe | Reno | Newreno | Sack | Fack | Vegas | Relentless | Rrr ->
    (create t ~engine ~params ~flow ~emit (), None)
