(** Robust Recovery (RR) — the congestion-recovery algorithm of
    "Robust TCP Congestion Recovery" (Wang & Shin, ICDCS 2001).

    RR treats all losses within one window as a single congestion
    signal. It is sender-side only: it needs neither SACK nor any
    receiver modification, relying on the receiver's standard immediate
    duplicate ACKs.

    During recovery, [cwnd] is frozen and transmission control passes to
    [actnum], an accurate count of data in flight (the paper's §2.1
    point: [cwnd] over-counts because it includes {e dormant} packets
    queued at the receiver and {e dropped} packets, neither of which is
    in the path any more).

    Phases, per the paper's Figure 1/2:

    - {b Retreat} (the first RTT, entered by fast retransmit):
      exponential back-off — one new segment per {e two} duplicate ACKs;
      [ssthresh <- window/2]; [actnum = 0].
    - {b Probe} (started by the first non-duplicate ACK, which also sets
      [actnum] to the number of new segments sent in retreat): each RTT
      is delimited by a partial ACK, which triggers the immediate
      retransmission of the next hole; every duplicate ACK clocks out
      one new segment. At each RTT boundary the sender compares [ndup]
      (dup ACKs received this RTT — i.e. new segments from last RTT that
      arrived) against [actnum] (new segments sent last RTT):
      {ul
      {- [ndup = actnum]: no further loss — [actnum <- actnum + 1] and
         one extra segment is sent, mirroring congestion avoidance;}
      {- [ndup < actnum]: further losses — [actnum <- ndup] (linear
         back-off) and the recovery exit point advances to the current
         [snd.nxt] so the new holes are repaired before leaving.}}
    - {b Exit} (cumulative ACK reaches the exit point):
      [cwnd <- actnum] segments — the true in-flight amount — so the big
      ACK releases just one new segment (packet conservation, no burst),
      and control returns to the ordinary congestion machinery.

    Retransmission losses are still repaired by timeout, as usual. *)

(** [create ~engine ~params ~flow ~emit ()] builds an RR sender. *)
val create :
  engine:Sim.Engine.t ->
  params:Tcp.Params.t ->
  flow:int ->
  emit:(Net.Packet.t -> unit) ->
  unit ->
  Tcp.Agent.t

(** {1 Introspection}

    White-box observation points used by tests and by the ablation
    benchmarks. *)

type stage = Retreat | Probe

type probe_view = {
  stage : stage;
  exit_point : int;  (** recovery ends when the cumulative ACK reaches it *)
  actnum : int;  (** new segments sent last RTT (0 in retreat) *)
  ndup : int;  (** duplicate ACKs seen this RTT *)
  further_losses : int;  (** total further losses detected so far *)
}

(** Handle onto an RR sender's live recovery state. *)
type handle

(** [create_with_handle] is {!create} plus an introspection handle. *)
val create_with_handle :
  engine:Sim.Engine.t ->
  params:Tcp.Params.t ->
  flow:int ->
  emit:(Net.Packet.t -> unit) ->
  unit ->
  Tcp.Agent.t * handle

(** [inspect handle] is the live recovery state, or [None] outside
    recovery. *)
val inspect : handle -> probe_view option

(** [recoveries handle] counts completed recovery episodes (exits, not
    timeouts). *)
val recoveries : handle -> int

(** {1 Ablation variants}

    The paper motivates three design decisions; these constructors build
    RR with one decision flipped, for the ablation benchmarks DESIGN.md
    calls out. *)

type ablation = {
  retreat_per_dupack : bool;
      (** send one new segment per dup ACK in retreat (right-edge
          recovery style) instead of per two *)
  multiplicative_backoff : bool;
      (** on further loss, halve [actnum] instead of setting it to
          [ndup] *)
  exit_to_ssthresh : bool;
      (** on exit, set [cwnd <- ssthresh] (New-Reno style) instead of
          [cwnd <- actnum] *)
}

(** The paper's design: all three flags off. *)
val paper_design : ablation

(** [create_ablated ~ablation] is [create] with design decisions
    flipped per [ablation]. *)
val create_ablated :
  engine:Sim.Engine.t ->
  params:Tcp.Params.t ->
  flow:int ->
  emit:(Net.Packet.t -> unit) ->
  ablation:ablation ->
  unit ->
  Tcp.Agent.t

(** [create_ablated_with_handle] is {!create_ablated} plus the
    introspection handle, so ablation runs stay auditable. *)
val create_ablated_with_handle :
  engine:Sim.Engine.t ->
  params:Tcp.Params.t ->
  flow:int ->
  emit:(Net.Packet.t -> unit) ->
  ablation:ablation ->
  unit ->
  Tcp.Agent.t * handle
