(** Uniform selection of TCP congestion-control variants.

    The paper compares RR against Tahoe, (New-)Reno and SACK; the bench
    adds Relentless (exact decrease-by-losses, {!Tcp.Relentless}) and
    Relative Rate Reduction (adjustable backoff, {!Tcp.Rrr}). This
    module gives experiments, examples and the CLI one switch point for
    all of them. *)

type t = Tahoe | Reno | Newreno | Sack | Fack | Vegas | Rr | Relentless | Rrr

(** All variants: the paper's, in presentation order, then the
    bench additions. *)
val all : t list

(** [name t] is the lowercase identifier (["rr"], ["newreno"], …). *)
val name : t -> string

(** [of_string s] parses {!name} output (case-insensitive). *)
val of_string : string -> (t, string) result

(** [create t ~engine ~params ~flow ~emit ()] builds a sender agent of
    the given variant. Check the agent's [wants_sack] to configure the
    peer receiver. *)
val create :
  t ->
  engine:Sim.Engine.t ->
  params:Tcp.Params.t ->
  flow:int ->
  emit:(Net.Packet.t -> unit) ->
  unit ->
  Tcp.Agent.t

(** [create_inspected t …] is {!create} plus the RR introspection handle
    when [t] is {!Rr} ([None] otherwise) — the hook auditors need to
    check RR's recovery invariants ([actnum], [ndup], exit point). *)
val create_inspected :
  t ->
  engine:Sim.Engine.t ->
  params:Tcp.Params.t ->
  flow:int ->
  emit:(Net.Packet.t -> unit) ->
  unit ->
  Tcp.Agent.t * Rr.handle option
