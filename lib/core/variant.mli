(** Uniform selection of TCP congestion-control variants.

    The paper compares RR against Tahoe, (New-)Reno and SACK; this
    module gives experiments, examples and the CLI one switch point for
    all five. *)

type t = Tahoe | Reno | Newreno | Sack | Fack | Vegas | Rr

(** All variants, in the paper's presentation order. *)
val all : t list

(** [name t] is the lowercase identifier (["rr"], ["newreno"], …). *)
val name : t -> string

(** [of_string s] parses {!name} output (case-insensitive). *)
val of_string : string -> (t, string) result

(** [create t ~engine ~params ~flow ~emit ()] builds a sender agent of
    the given variant. Check the agent's [wants_sack] to configure the
    peer receiver. *)
val create :
  t ->
  engine:Sim.Engine.t ->
  params:Tcp.Params.t ->
  flow:int ->
  emit:(Net.Packet.t -> unit) ->
  unit ->
  Tcp.Agent.t

(** [create_inspected t …] is {!create} plus the RR introspection handle
    when [t] is {!Rr} ([None] otherwise) — the hook auditors need to
    check RR's recovery invariants ([actnum], [ndup], exit point). *)
val create_inspected :
  t ->
  engine:Sim.Engine.t ->
  params:Tcp.Params.t ->
  flow:int ->
  emit:(Net.Packet.t -> unit) ->
  unit ->
  Tcp.Agent.t * Rr.handle option
