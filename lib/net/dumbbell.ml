type gateway = Dumbbell_config.gateway =
  | Droptail of { capacity : int }
  | Red of { capacity : int; params : Red.params }

type direction = Dumbbell_config.direction = Forward | Backward

type config = Dumbbell_config.t = {
  flows : int;
  side_bandwidth_bps : float;
  side_delay : float;
  bottleneck_bandwidth_bps : float;
  bottleneck_delay : float;
  gateway : gateway;
  access_capacity : int;
  reverse_capacity : int;
}

let paper_config = Dumbbell_config.paper

type backend = Graph | Legacy_closures

let backend_ref = ref Graph

let set_default_backend backend = backend_ref := backend

let default_backend () = !backend_ref

(* -- legacy backend -------------------------------------------------

   The original hand-wired closure web, kept verbatim so the
   test_topology_diff suite can prove the graph realization
   byte-identical against it. New capabilities (taps on arbitrary
   links, non-dumbbell graphs) exist only on the {!Topology} path. *)

type legacy = {
  l_config : config;
  l_directions : direction array;
  forward_access : Link.t array;  (* S_i -> R1 *)
  reverse_access : Link.t array;  (* K_i -> R2 *)
  data_handlers : (Packet.t -> unit) ref array;
  ack_handlers : (Packet.t -> unit) ref array;
  bottleneck : Link.t;
  reverse_bottleneck : Link.t;
  l_red_stats : Red.drop_stats option;
  l_drops : int array;  (* per-flow drop ledger *)
  l_queues : (string * Queue_disc.t) list;  (* every disc, gateway first *)
}

let legacy_count_drop t packet =
  let flow = packet.Packet.flow in
  if flow >= 0 && flow < Array.length t.l_drops then
    t.l_drops.(flow) <- t.l_drops.(flow) + 1

let create_legacy ~engine ~config ~rng ?(wrap_bottleneck = fun next -> next)
    ?(wrap_reverse = fun next -> next) ?(on_drop = fun _ -> ()) ?side_delays
    ?directions () =
  if config.flows < 1 then invalid_arg "Dumbbell.create: flows < 1";
  (match side_delays with
  | Some delays when Array.length delays <> config.flows ->
    invalid_arg "Dumbbell.create: side_delays length mismatch"
  | Some _ | None -> ());
  let directions =
    match directions with
    | Some array ->
      if Array.length array <> config.flows then
        invalid_arg "Dumbbell.create: directions length mismatch";
      array
    | None -> Array.make config.flows Forward
  in
  let side_delay_of flow =
    match side_delays with
    | Some delays -> delays.(flow)
    | None -> config.side_delay
  in
  let drops = Array.make config.flows 0 in
  let record_drop packet =
    let flow = packet.Packet.flow in
    if flow >= 0 && flow < config.flows then drops.(flow) <- drops.(flow) + 1;
    on_drop packet
  in
  let data_handlers =
    Array.init config.flows (fun flow ->
        ref (fun (_ : Packet.t) ->
            failwith (Printf.sprintf "no data handler for flow %d" flow)))
  in
  let ack_handlers =
    Array.init config.flows (fun flow ->
        ref (fun (_ : Packet.t) ->
            failwith (Printf.sprintf "no ack handler for flow %d" flow)))
  in
  let droptail capacity =
    Droptail.create ~capacity ~on_drop:record_drop ()
  in
  (* Delivery fan-out off each trunk: one exit link per host so
     concurrent flows do not serialize behind each other. The forward
     trunk carries a Forward flow's data (to its receiver) but a
     Backward flow's ACKs (to its sender); the reverse trunk is the
     mirror image. *)
  let exit_forward_trunk =
    Array.init config.flows (fun flow ->
        Link.create ~engine ~bandwidth_bps:config.side_bandwidth_bps
          ~delay:(side_delay_of flow)
          ~queue:(droptail config.access_capacity)
          ~dst:(fun packet ->
            match directions.(flow) with
            | Forward -> !(data_handlers.(flow)) packet
            | Backward -> !(ack_handlers.(flow)) packet)
          ())
  in
  let exit_reverse_trunk =
    Array.init config.flows (fun flow ->
        Link.create ~engine ~bandwidth_bps:config.side_bandwidth_bps
          ~delay:(side_delay_of flow)
          ~queue:(droptail config.reverse_capacity)
          ~dst:(fun packet ->
            match directions.(flow) with
            | Forward -> !(ack_handlers.(flow)) packet
            | Backward -> !(data_handlers.(flow)) packet)
          ())
  in
  let route_to array packet =
    let flow = packet.Packet.flow in
    if flow < 0 || flow >= config.flows then
      invalid_arg "Dumbbell: packet with unknown flow id"
    else Link.send array.(flow) packet
  in
  let gateway_queue, red_stats =
    match config.gateway with
    | Droptail { capacity } -> (droptail capacity, None)
    | Red { capacity; params } ->
      let disc, stats =
        Red.create ~engine ~capacity ~params ~rng:(Sim.Rng.split rng)
          ~bandwidth_bps:config.bottleneck_bandwidth_bps ~on_drop:record_drop
          ()
      in
      (disc, Some stats)
  in
  let bottleneck =
    Link.create ~engine ~bandwidth_bps:config.bottleneck_bandwidth_bps
      ~delay:config.bottleneck_delay ~queue:gateway_queue
      ~dst:(route_to exit_forward_trunk) ()
  in
  let reverse_bottleneck =
    Link.create ~engine ~bandwidth_bps:config.bottleneck_bandwidth_bps
      ~delay:config.bottleneck_delay
      ~queue:(droptail config.reverse_capacity)
      ~dst:(route_to exit_reverse_trunk) ()
  in
  let bottleneck_entry = wrap_bottleneck (fun p -> Link.send bottleneck p) in
  let forward_access =
    Array.init config.flows (fun flow ->
        Link.create ~engine ~bandwidth_bps:config.side_bandwidth_bps
          ~delay:(side_delay_of flow)
          ~queue:(droptail config.access_capacity)
          ~dst:bottleneck_entry ())
  in
  let reverse_entry = wrap_reverse (fun p -> Link.send reverse_bottleneck p) in
  let reverse_access =
    Array.init config.flows (fun flow ->
        Link.create ~engine ~bandwidth_bps:config.side_bandwidth_bps
          ~delay:(side_delay_of flow)
          ~queue:(droptail config.reverse_capacity)
          ~dst:reverse_entry ())
  in
  let named prefix links =
    Array.to_list
      (Array.mapi
         (fun flow link -> (Printf.sprintf "%s%d" prefix flow, Link.queue link))
         links)
  in
  let queues =
    (("gateway", Link.queue bottleneck)
    :: ("reverse_gateway", Link.queue reverse_bottleneck)
    :: named "access_fwd" forward_access)
    @ named "access_rev" reverse_access
    @ named "exit_fwd" exit_forward_trunk
    @ named "exit_rev" exit_reverse_trunk
  in
  {
    l_config = config;
    l_directions = directions;
    forward_access;
    reverse_access;
    data_handlers;
    ack_handlers;
    bottleneck;
    reverse_bottleneck;
    l_red_stats = red_stats;
    l_drops = drops;
    l_queues = queues;
  }

(* -- graph backend -------------------------------------------------- *)

type graph = {
  topo : Topology.t;
  g_queues : (string * Queue_disc.t) list;  (* legacy naming order *)
}

type t = G of graph | L of legacy

let create ~engine ~config ~rng ?wrap_bottleneck ?wrap_reverse ?(taps = [])
    ?on_drop ?side_delays ?directions () =
  match !backend_ref with
  | Legacy_closures ->
    if taps <> [] then
      invalid_arg "Dumbbell.create: taps require the Graph backend";
    L
      (create_legacy ~engine ~config ~rng ?wrap_bottleneck ?wrap_reverse
         ?on_drop ?side_delays ?directions ())
  | Graph ->
    let spec, endpoints = Topology.dumbbell ~config ?side_delays ?directions () in
    (* Deprecated shims first, in the legacy invocation order (bottleneck
       wrap before reverse wrap), so RNG draws inside wrap construction
       stay in the historical sequence; explicit taps follow. *)
    let shims =
      (match wrap_bottleneck with Some w -> [ ("gateway", w) ] | None -> [])
      @ match wrap_reverse with Some w -> [ ("reverse_gateway", w) ] | None -> []
    in
    let topo =
      Topology.create ~engine ~spec ~rng ~taps:(shims @ taps) ?on_drop
        ~flows:endpoints ()
    in
    let per prefix =
      List.init config.flows (fun i -> Printf.sprintf "%s%d" prefix i)
    in
    let names =
      ("gateway" :: "reverse_gateway" :: per "access_fwd")
      @ per "access_rev" @ per "exit_fwd" @ per "exit_rev"
    in
    let g_queues = List.map (fun name -> (name, Topology.queue topo name)) names in
    G { topo; g_queues }

let topology = function G g -> Some g.topo | L _ -> None

let count_drop t packet =
  match t with
  | G g -> Topology.count_drop g.topo packet
  | L l -> legacy_count_drop l packet

let drops_of_flow t flow =
  match t with
  | G g -> Topology.drops_of_flow g.topo flow
  | L l -> l.l_drops.(flow)

let total_drops = function
  | G g -> Topology.total_drops g.topo
  | L l -> Array.fold_left ( + ) 0 l.l_drops

let inject_data t ~flow packet =
  match t with
  | G g -> Topology.inject_data g.topo ~flow packet
  | L l -> (
    match l.l_directions.(flow) with
    | Forward -> Link.send l.forward_access.(flow) packet
    | Backward -> Link.send l.reverse_access.(flow) packet)

let inject_ack t ~flow packet =
  match t with
  | G g -> Topology.inject_ack g.topo ~flow packet
  | L l -> (
    match l.l_directions.(flow) with
    | Forward -> Link.send l.reverse_access.(flow) packet
    | Backward -> Link.send l.forward_access.(flow) packet)

let on_data t ~flow handler =
  match t with
  | G g -> Topology.on_data g.topo ~flow handler
  | L l -> l.data_handlers.(flow) := handler

let on_ack t ~flow handler =
  match t with
  | G g -> Topology.on_ack g.topo ~flow handler
  | L l -> l.ack_handlers.(flow) := handler

let bottleneck_queue = function
  | G g -> Topology.queue g.topo "gateway"
  | L l -> Link.queue l.bottleneck

let bottleneck_link = function
  | G g -> Topology.link g.topo "gateway"
  | L l -> l.bottleneck

let reverse_trunk_link = function
  | G g -> Topology.link g.topo "reverse_gateway"
  | L l -> l.reverse_bottleneck

let queues = function G g -> g.g_queues | L l -> l.l_queues

let red_stats = function
  | G g -> Topology.red_stats g.topo "gateway"
  | L l -> l.l_red_stats
