type gateway =
  | Droptail of { capacity : int }
  | Red of { capacity : int; params : Red.params }

type direction = Forward | Backward

type config = {
  flows : int;
  side_bandwidth_bps : float;
  side_delay : float;
  bottleneck_bandwidth_bps : float;
  bottleneck_delay : float;
  gateway : gateway;
  access_capacity : int;
  reverse_capacity : int;
}

let paper_config ~flows =
  {
    flows;
    side_bandwidth_bps = Sim.Units.mbps 10.0;
    side_delay = Sim.Units.ms 1.0;
    bottleneck_bandwidth_bps = Sim.Units.mbps 0.8;
    bottleneck_delay = Sim.Units.ms 96.0;
    gateway = Droptail { capacity = 8 };
    access_capacity = 1000;
    reverse_capacity = 1000;
  }

type t = {
  config : config;
  directions : direction array;
  forward_access : Link.t array;  (* S_i -> R1 *)
  reverse_access : Link.t array;  (* K_i -> R2 *)
  data_handlers : (Packet.t -> unit) ref array;
  ack_handlers : (Packet.t -> unit) ref array;
  bottleneck : Link.t;
  reverse_bottleneck : Link.t;
  red_stats : Red.drop_stats option;
  drops : int array;  (* per-flow drop ledger *)
  queues : (string * Queue_disc.t) list;  (* every disc, gateway first *)
}

let count_drop t packet =
  let flow = packet.Packet.flow in
  if flow >= 0 && flow < Array.length t.drops then
    t.drops.(flow) <- t.drops.(flow) + 1

let drops_of_flow t flow = t.drops.(flow)

let total_drops t = Array.fold_left ( + ) 0 t.drops

let create ~engine ~config ~rng ?(wrap_bottleneck = fun next -> next)
    ?(wrap_reverse = fun next -> next) ?(on_drop = fun _ -> ()) ?side_delays
    ?directions () =
  if config.flows < 1 then invalid_arg "Dumbbell.create: flows < 1";
  (match side_delays with
  | Some delays when Array.length delays <> config.flows ->
    invalid_arg "Dumbbell.create: side_delays length mismatch"
  | Some _ | None -> ());
  let directions =
    match directions with
    | Some array ->
      if Array.length array <> config.flows then
        invalid_arg "Dumbbell.create: directions length mismatch";
      array
    | None -> Array.make config.flows Forward
  in
  let side_delay_of flow =
    match side_delays with
    | Some delays -> delays.(flow)
    | None -> config.side_delay
  in
  let drops = Array.make config.flows 0 in
  let record_drop packet =
    let flow = packet.Packet.flow in
    if flow >= 0 && flow < config.flows then drops.(flow) <- drops.(flow) + 1;
    on_drop packet
  in
  let data_handlers =
    Array.init config.flows (fun flow ->
        ref (fun (_ : Packet.t) ->
            failwith (Printf.sprintf "no data handler for flow %d" flow)))
  in
  let ack_handlers =
    Array.init config.flows (fun flow ->
        ref (fun (_ : Packet.t) ->
            failwith (Printf.sprintf "no ack handler for flow %d" flow)))
  in
  let droptail capacity =
    Droptail.create ~capacity ~on_drop:record_drop ()
  in
  (* Delivery fan-out off each trunk: one exit link per host so
     concurrent flows do not serialize behind each other. The forward
     trunk carries a Forward flow's data (to its receiver) but a
     Backward flow's ACKs (to its sender); the reverse trunk is the
     mirror image. *)
  let exit_forward_trunk =
    Array.init config.flows (fun flow ->
        Link.create ~engine ~bandwidth_bps:config.side_bandwidth_bps
          ~delay:(side_delay_of flow)
          ~queue:(droptail config.access_capacity)
          ~dst:(fun packet ->
            match directions.(flow) with
            | Forward -> !(data_handlers.(flow)) packet
            | Backward -> !(ack_handlers.(flow)) packet)
          ())
  in
  let exit_reverse_trunk =
    Array.init config.flows (fun flow ->
        Link.create ~engine ~bandwidth_bps:config.side_bandwidth_bps
          ~delay:(side_delay_of flow)
          ~queue:(droptail config.reverse_capacity)
          ~dst:(fun packet ->
            match directions.(flow) with
            | Forward -> !(ack_handlers.(flow)) packet
            | Backward -> !(data_handlers.(flow)) packet)
          ())
  in
  let route_to array packet =
    let flow = packet.Packet.flow in
    if flow < 0 || flow >= config.flows then
      invalid_arg "Dumbbell: packet with unknown flow id"
    else Link.send array.(flow) packet
  in
  let gateway_queue, red_stats =
    match config.gateway with
    | Droptail { capacity } -> (droptail capacity, None)
    | Red { capacity; params } ->
      let disc, stats =
        Red.create ~engine ~capacity ~params ~rng:(Sim.Rng.split rng)
          ~bandwidth_bps:config.bottleneck_bandwidth_bps ~on_drop:record_drop
          ()
      in
      (disc, Some stats)
  in
  let bottleneck =
    Link.create ~engine ~bandwidth_bps:config.bottleneck_bandwidth_bps
      ~delay:config.bottleneck_delay ~queue:gateway_queue
      ~dst:(route_to exit_forward_trunk) ()
  in
  let reverse_bottleneck =
    Link.create ~engine ~bandwidth_bps:config.bottleneck_bandwidth_bps
      ~delay:config.bottleneck_delay
      ~queue:(droptail config.reverse_capacity)
      ~dst:(route_to exit_reverse_trunk) ()
  in
  let bottleneck_entry = wrap_bottleneck (fun p -> Link.send bottleneck p) in
  let forward_access =
    Array.init config.flows (fun flow ->
        Link.create ~engine ~bandwidth_bps:config.side_bandwidth_bps
          ~delay:(side_delay_of flow)
          ~queue:(droptail config.access_capacity)
          ~dst:bottleneck_entry ())
  in
  let reverse_entry = wrap_reverse (fun p -> Link.send reverse_bottleneck p) in
  let reverse_access =
    Array.init config.flows (fun flow ->
        Link.create ~engine ~bandwidth_bps:config.side_bandwidth_bps
          ~delay:(side_delay_of flow)
          ~queue:(droptail config.reverse_capacity)
          ~dst:reverse_entry ())
  in
  let named prefix links =
    Array.to_list
      (Array.mapi
         (fun flow link -> (Printf.sprintf "%s%d" prefix flow, Link.queue link))
         links)
  in
  let queues =
    (("gateway", Link.queue bottleneck)
    :: ("reverse_gateway", Link.queue reverse_bottleneck)
    :: named "access_fwd" forward_access)
    @ named "access_rev" reverse_access
    @ named "exit_fwd" exit_forward_trunk
    @ named "exit_rev" exit_reverse_trunk
  in
  {
    config;
    directions;
    forward_access;
    reverse_access;
    data_handlers;
    ack_handlers;
    bottleneck;
    reverse_bottleneck;
    red_stats;
    drops;
    queues;
  }

let inject_data t ~flow packet =
  match t.directions.(flow) with
  | Forward -> Link.send t.forward_access.(flow) packet
  | Backward -> Link.send t.reverse_access.(flow) packet

let inject_ack t ~flow packet =
  match t.directions.(flow) with
  | Forward -> Link.send t.reverse_access.(flow) packet
  | Backward -> Link.send t.forward_access.(flow) packet

let on_data t ~flow handler = t.data_handlers.(flow) := handler

let on_ack t ~flow handler = t.ack_handlers.(flow) := handler

let bottleneck_queue t = Link.queue t.bottleneck

let bottleneck_link t = t.bottleneck

let reverse_trunk_link t = t.reverse_bottleneck

let queues t = t.queues

let red_stats t = t.red_stats
