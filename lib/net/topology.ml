type queue_spec =
  | Droptail of { capacity : int }
  | Red of { capacity : int; params : Red.params }

type link_spec = {
  from_node : string;
  to_node : string;
  bandwidth_bps : float;
  delay : float;
  queue : queue_spec;
}

type route = { target : string; via : string }

type node_spec = {
  node : string;
  routes : route list;
  default_route : string option;
}

type spec = {
  nodes : node_spec list;
  links : (string * link_spec) list;
}

type endpoint = { src : string; dst : string }

type wrap = (Packet.t -> unit) -> Packet.t -> unit

(* Compiled per-node forwarding state: explicit entries in [exceptions]
   (destination node id -> link id), everything else on [default_link]
   (-1 = no default). Defaults-plus-exceptions keeps a gateway's table
   O(attached hosts) rather than O(nodes^2). *)
type node_state = {
  name : string;
  default_link : int;
  exceptions : (int, int) Hashtbl.t;
}

type t = {
  link_of_name : (string, int) Hashtbl.t;
  link_names : string array;
  nodes : node_state array;
  links : Link.t option array;  (* filled during realization, in order *)
  entries : (Packet.t -> unit) array;  (* tap-wrapped link entry points *)
  flow_src : int array;  (* node id per flow *)
  flow_dst : int array;
  endpoints : endpoint array;
  data_handlers : (Packet.t -> unit) array;
  ack_handlers : (Packet.t -> unit) array;
  mutable data_dispatch : Packet.t -> unit;
  mutable ack_dispatch : Packet.t -> unit;
  drops : int array;
  mutable queue_list : (string * Queue_disc.t) list;  (* link order *)
  red : (int, Red.drop_stats) Hashtbl.t;  (* link id -> stats *)
}

(* -- validation ----------------------------------------------------- *)

let invalid fmt = Printf.ksprintf invalid_arg fmt

let index_names ~what names =
  let table = Hashtbl.create (List.length names) in
  List.iteri
    (fun i name ->
      if Hashtbl.mem table name then invalid "Topology: duplicate %s %S" what name;
      Hashtbl.add table name i)
    names;
  table

let compile_spec (spec : spec) =
  let node_of_name =
    index_names ~what:"node" (List.map (fun n -> n.node) spec.nodes)
  in
  let link_of_name =
    index_names ~what:"link" (List.map fst spec.links)
  in
  let node_id name =
    match Hashtbl.find_opt node_of_name name with
    | Some id -> id
    | None -> invalid "Topology: undeclared node %S" name
  in
  let link_id name =
    match Hashtbl.find_opt link_of_name name with
    | Some id -> id
    | None -> invalid "Topology: undeclared link %S" name
  in
  let links = Array.of_list spec.links in
  Array.iter
    (fun (name, l) ->
      ignore (node_id l.from_node);
      ignore (node_id l.to_node);
      if l.bandwidth_bps <= 0.0 then
        invalid "Topology: link %S bandwidth <= 0" name;
      if l.delay < 0.0 then invalid "Topology: link %S negative delay" name;
      match l.queue with
      | Droptail { capacity } | Red { capacity; _ } ->
        if capacity < 1 then invalid "Topology: link %S capacity < 1" name)
    links;
  let attached = Array.make (List.length spec.nodes) false in
  Array.iter
    (fun (_, l) ->
      attached.(node_id l.from_node) <- true;
      attached.(node_id l.to_node) <- true)
    links;
  let nodes =
    Array.of_list
      (List.map
         (fun n ->
           let here = node_id n.node in
           let exceptions = Hashtbl.create (max 4 (List.length n.routes)) in
           List.iter
             (fun { target; via } ->
               let target = node_id target in
               let via = link_id via in
               let _, l = links.(via) in
               if node_id l.from_node <> here then
                 invalid "Topology: route at %S via %S does not leave %S"
                   n.node (fst links.(via)) n.node;
               if Hashtbl.mem exceptions target then
                 invalid "Topology: duplicate route at %S" n.node;
               Hashtbl.add exceptions target via)
             n.routes;
           let default_link =
             match n.default_route with
             | None -> -1
             | Some via ->
               let via = link_id via in
               let _, l = links.(via) in
               if node_id l.from_node <> here then
                 invalid "Topology: default route at %S via %S does not leave %S"
                   n.node (fst links.(via)) n.node;
               via
           in
           { name = n.node; default_link; exceptions })
         spec.nodes)
  in
  Array.iteri
    (fun i ok -> if not ok then invalid "Topology: node %S attached to no link" nodes.(i).name)
    attached;
  (node_of_name, link_of_name, links, nodes)

let next_hop nodes ~node ~dst =
  let state = nodes.(node) in
  match Hashtbl.find_opt state.exceptions dst with
  | Some link -> Some link
  | None -> if state.default_link >= 0 then Some state.default_link else None
  [@@inline]

let validate spec ~flows =
  let node_of_name, _, links, nodes = compile_spec spec in
  let node_id name =
    match Hashtbl.find_opt node_of_name name with
    | Some id -> id
    | None -> invalid "Topology: flow endpoint at undeclared node %S" name
  in
  let n_nodes = Array.length nodes in
  (* Paths are shared across flows; check each distinct (src, dst) node
     pair once, in both directions. *)
  let checked = Hashtbl.create 64 in
  let walk ~src ~dst =
    let key = (src * n_nodes) + dst in
    if not (Hashtbl.mem checked key) then begin
      Hashtbl.add checked key ();
      let rec step node hops =
        if node <> dst then
          if hops > n_nodes then
            invalid "Topology: route from %S to %S loops" nodes.(src).name
              nodes.(dst).name
          else
            match next_hop nodes ~node ~dst with
            | None ->
              invalid "Topology: no route toward %S at %S" nodes.(dst).name
                nodes.(node).name
            | Some link ->
              let _, l = links.(link) in
              step (Hashtbl.find node_of_name l.to_node) (hops + 1)
      in
      step src 0
    end
  in
  Array.iter
    (fun { src; dst } ->
      let src = node_id src and dst = node_id dst in
      if src = dst then
        invalid "Topology: flow source and destination coincide at %S"
          nodes.(src).name;
      walk ~src ~dst;
      walk ~src:dst ~dst:src)
    flows

(* -- realization ---------------------------------------------------- *)

let count_drop t packet =
  let flow = packet.Packet.flow in
  if flow >= 0 && flow < Array.length t.drops then
    t.drops.(flow) <- t.drops.(flow) + 1

let drops_of_flow t flow = t.drops.(flow)

let total_drops t = Array.fold_left ( + ) 0 t.drops

(* Destination node of a packet: data travels to the flow's [dst],
   ACKs back to its [src]. *)
let destination t packet =
  let flow = packet.Packet.flow in
  if flow < 0 || flow >= Array.length t.flow_src then
    invalid_arg "Topology: packet with unknown flow id"
  else
    if Packet.is_data packet then t.flow_dst.(flow) else t.flow_src.(flow)
  [@@inline]

let forward t ~node ~dst packet =
  match next_hop t.nodes ~node ~dst with
  | Some link -> t.entries.(link) packet
  | None ->
    invalid "Topology: no route toward %S at %S" t.nodes.(dst).name
      t.nodes.(node).name

let arrive t ~node packet =
  let dst = destination t packet in
  if dst = node then
    if Packet.is_data packet then t.data_dispatch packet
    else t.ack_dispatch packet
  else forward t ~node ~dst packet

let create ~engine ~spec ~rng ?(taps = []) ?(on_drop = fun _ -> ())
    ~flows:flow_endpoints () =
  validate spec ~flows:flow_endpoints;
  let node_of_name, link_of_name, link_specs, nodes = compile_spec spec in
  let n_links = Array.length link_specs in
  let n_flows = Array.length flow_endpoints in
  let flow_src = Array.make n_flows 0 and flow_dst = Array.make n_flows 0 in
  Array.iteri
    (fun i { src; dst } ->
      flow_src.(i) <- Hashtbl.find node_of_name src;
      flow_dst.(i) <- Hashtbl.find node_of_name dst)
    flow_endpoints;
  (* One shared placeholder handler: per-flow closures only exist once
     the caller installs them. *)
  let no_data (p : Packet.t) =
    failwith (Printf.sprintf "no data handler for flow %d" p.Packet.flow)
  in
  let no_ack (p : Packet.t) =
    failwith (Printf.sprintf "no ack handler for flow %d" p.Packet.flow)
  in
  let t =
    {
      link_of_name;
      link_names = Array.map fst link_specs;
      nodes;
      links = Array.make (max 1 n_links) None;
      entries = Array.make (max 1 n_links) ignore;
      flow_src;
      flow_dst;
      endpoints = Array.copy flow_endpoints;
      data_handlers = Array.make (max 1 n_flows) no_data;
      ack_handlers = Array.make (max 1 n_flows) no_ack;
      data_dispatch = ignore;
      ack_dispatch = ignore;
      drops = Array.make n_flows 0;
      queue_list = [];
      red = Hashtbl.create 2;
    }
  in
  t.data_dispatch <- (fun p -> t.data_handlers.(p.Packet.flow) p);
  t.ack_dispatch <- (fun p -> t.ack_handlers.(p.Packet.flow) p);
  let record_drop packet =
    count_drop t packet;
    on_drop packet
  in
  (* Realize links in spec order; RED queues split the rng stream here,
     so the draw order is part of the reproducibility contract. *)
  Array.iteri
    (fun i (name, l) ->
      let queue =
        match l.queue with
        | Droptail { capacity } ->
          Droptail.create ~capacity ~on_drop:record_drop ()
        | Red { capacity; params } ->
          let disc, stats =
            Red.create ~engine ~capacity ~params ~rng:(Sim.Rng.split rng)
              ~bandwidth_bps:l.bandwidth_bps ~on_drop:record_drop ()
          in
          Hashtbl.replace t.red i stats;
          disc
      in
      let to_node = Hashtbl.find node_of_name l.to_node in
      let link =
        Link.create ~engine ~bandwidth_bps:l.bandwidth_bps ~delay:l.delay
          ~queue
          ~dst:(fun packet -> arrive t ~node:to_node packet)
          ()
      in
      t.links.(i) <- Some link;
      t.entries.(i) <- Link.send link;
      t.queue_list <- (name, queue) :: t.queue_list)
    link_specs;
  t.queue_list <- List.rev t.queue_list;
  (* Taps wrap after every queue exists: applied in list order, each
     around the current entry (later taps outermost). *)
  let tapped = Hashtbl.create (max 1 (List.length taps)) in
  List.iter
    (fun (name, wrap) ->
      match Hashtbl.find_opt link_of_name name with
      | None -> invalid "Topology: tap on undeclared link %S" name
      | Some i ->
        if Hashtbl.mem tapped i then invalid "Topology: duplicate tap on %S" name;
        Hashtbl.add tapped i ();
        t.entries.(i) <- wrap t.entries.(i))
    taps;
  t

(* -- traffic -------------------------------------------------------- *)

let check_flow t flow =
  if flow < 0 || flow >= Array.length t.flow_src then
    invalid_arg "Topology: packet with unknown flow id"

let inject_data t ~flow packet =
  check_flow t flow;
  forward t ~node:t.flow_src.(flow) ~dst:t.flow_dst.(flow) packet

let inject_ack t ~flow packet =
  check_flow t flow;
  forward t ~node:t.flow_dst.(flow) ~dst:t.flow_src.(flow) packet

let on_data t ~flow handler =
  t.data_handlers.(flow) <- handler;
  t.data_dispatch <- (fun p -> t.data_handlers.(p.Packet.flow) p)

let on_ack t ~flow handler =
  t.ack_handlers.(flow) <- handler;
  t.ack_dispatch <- (fun p -> t.ack_handlers.(p.Packet.flow) p)

let set_data_dispatch t f = t.data_dispatch <- f

let set_ack_dispatch t f = t.ack_dispatch <- f

(* -- introspection -------------------------------------------------- *)

let flows t = Array.length t.flow_src

let endpoint t ~flow =
  check_flow t flow;
  t.endpoints.(flow)

let queues t = t.queue_list

let link_index t name =
  match Hashtbl.find_opt t.link_of_name name with
  | Some i -> i
  | None -> invalid "Topology: undeclared link %S" name

let queue t name = List.assoc t.link_names.(link_index t name) t.queue_list

let link t name =
  match t.links.(link_index t name) with
  | Some link -> link
  | None -> assert false

let link_names t = Array.to_list t.link_names

let red_stats t name = Hashtbl.find_opt t.red (link_index t name)

(* -- builders ------------------------------------------------------- *)

let droptail capacity = Droptail { capacity }

let gateway_queue (config : Dumbbell_config.t) =
  match config.gateway with
  | Dumbbell_config.Droptail { capacity } -> Droptail { capacity }
  | Dumbbell_config.Red { capacity; params } -> Red { capacity; params }

let dumbbell ~(config : Dumbbell_config.t) ?side_delays ?directions () =
  if config.flows < 1 then invalid_arg "Dumbbell.create: flows < 1";
  (match side_delays with
  | Some delays when Array.length delays <> config.flows ->
    invalid_arg "Dumbbell.create: side_delays length mismatch"
  | Some _ | None -> ());
  let directions =
    match directions with
    | Some array ->
      if Array.length array <> config.flows then
        invalid_arg "Dumbbell.create: directions length mismatch";
      array
    | None -> Array.make config.flows Dumbbell_config.Forward
  in
  let side_delay_of flow =
    match side_delays with
    | Some delays -> delays.(flow)
    | None -> config.side_delay
  in
  let n = config.flows in
  let s i = Printf.sprintf "s%d" i and k i = Printf.sprintf "k%d" i in
  let per_flow f = List.init n f in
  let side ~from_node ~to_node ~delay capacity =
    {
      from_node;
      to_node;
      bandwidth_bps = config.side_bandwidth_bps;
      delay;
      queue = droptail capacity;
    }
  in
  (* Realization order mirrors the legacy builder's queue-creation
     order — exits, gateway (the only possible RNG consumer), reverse
     gateway, accesses — so RED draws the same stream. Link names are
     the legacy queue names. *)
  let links =
    per_flow (fun i ->
        ( Printf.sprintf "exit_fwd%d" i,
          side ~from_node:"r2" ~to_node:(k i) ~delay:(side_delay_of i)
            config.access_capacity ))
    @ per_flow (fun i ->
          ( Printf.sprintf "exit_rev%d" i,
            side ~from_node:"r1" ~to_node:(s i) ~delay:(side_delay_of i)
              config.reverse_capacity ))
    @ [
        ( "gateway",
          {
            from_node = "r1";
            to_node = "r2";
            bandwidth_bps = config.bottleneck_bandwidth_bps;
            delay = config.bottleneck_delay;
            queue = gateway_queue config;
          } );
        ( "reverse_gateway",
          {
            from_node = "r2";
            to_node = "r1";
            bandwidth_bps = config.bottleneck_bandwidth_bps;
            delay = config.bottleneck_delay;
            queue = droptail config.reverse_capacity;
          } );
      ]
    @ per_flow (fun i ->
          ( Printf.sprintf "access_fwd%d" i,
            side ~from_node:(s i) ~to_node:"r1" ~delay:(side_delay_of i)
              config.access_capacity ))
    @ per_flow (fun i ->
          ( Printf.sprintf "access_rev%d" i,
            side ~from_node:(k i) ~to_node:"r2" ~delay:(side_delay_of i)
              config.reverse_capacity ))
  in
  let nodes =
    per_flow (fun i ->
        {
          node = s i;
          routes = [];
          default_route = Some (Printf.sprintf "access_fwd%d" i);
        })
    @ per_flow (fun i ->
          {
            node = k i;
            routes = [];
            default_route = Some (Printf.sprintf "access_rev%d" i);
          })
    @ [
        {
          node = "r1";
          routes =
            per_flow (fun i ->
                { target = s i; via = Printf.sprintf "exit_rev%d" i });
          default_route = Some "gateway";
        };
        {
          node = "r2";
          routes =
            per_flow (fun i ->
                { target = k i; via = Printf.sprintf "exit_fwd%d" i });
          default_route = Some "reverse_gateway";
        };
      ]
  in
  let endpoints =
    Array.init n (fun i ->
        match directions.(i) with
        | Dumbbell_config.Forward -> { src = s i; dst = k i }
        | Dumbbell_config.Backward -> { src = k i; dst = s i })
  in
  ({ nodes; links }, endpoints)

let parking_lot ~hops ~long_flows ~cross_per_hop ~(config : Dumbbell_config.t)
    () =
  if hops < 1 then invalid_arg "Topology.parking_lot: hops < 1";
  if long_flows < 1 then invalid_arg "Topology.parking_lot: long_flows < 1";
  if cross_per_hop < 0 then
    invalid_arg "Topology.parking_lot: cross_per_hop < 0";
  let g j = Printf.sprintf "g%d" j in
  (* Hosts: long flow i sources at ls<i> (on g0), sinks at lk<i> (on
     g<hops>); cross flow c of hop j sources at cs<j>_<c> (on g<j>),
     sinks at ck<j>_<c> (on g<j+1>). *)
  let hosts =
    List.init long_flows (fun i ->
        [
          (Printf.sprintf "ls%d" i, 0, Printf.sprintf "long%d" i);
          (Printf.sprintf "lk%d" i, hops, Printf.sprintf "long%d" i);
        ])
    @ List.concat
        (List.init hops (fun j ->
             List.init cross_per_hop (fun c ->
                 [
                   (Printf.sprintf "cs%d_%d" j c, j, Printf.sprintf "cross%d_%d" j c);
                   (Printf.sprintf "ck%d_%d" j c, j + 1, Printf.sprintf "cross%d_%d" j c);
                 ])))
  in
  let hosts = List.concat hosts in
  (* Bottlenecks first so RED (when configured) draws splits in hop
     order, then the reverse trunks, then per-host access/exit pairs. *)
  let trunk_links =
    List.init hops (fun j ->
        ( Printf.sprintf "bottleneck%d" j,
          {
            from_node = g j;
            to_node = g (j + 1);
            bandwidth_bps = config.bottleneck_bandwidth_bps;
            delay = config.bottleneck_delay;
            queue = gateway_queue config;
          } ))
    @ List.init hops (fun j ->
          ( Printf.sprintf "rbottleneck%d" j,
            {
              from_node = g (j + 1);
              to_node = g j;
              bandwidth_bps = config.bottleneck_bandwidth_bps;
              delay = config.bottleneck_delay;
              queue = droptail config.reverse_capacity;
            } ))
  in
  let host_links =
    List.concat_map
      (fun (host, at, _) ->
        [
          ( "acc_" ^ host,
            {
              from_node = host;
              to_node = g at;
              bandwidth_bps = config.side_bandwidth_bps;
              delay = config.side_delay;
              queue = droptail config.access_capacity;
            } );
          ( "exit_" ^ host,
            {
              from_node = g at;
              to_node = host;
              bandwidth_bps = config.side_bandwidth_bps;
              delay = config.side_delay;
              queue = droptail config.access_capacity;
            } );
        ])
      hosts
  in
  let host_nodes =
    List.map
      (fun (host, _, _) ->
        { node = host; routes = []; default_route = Some ("acc_" ^ host) })
      hosts
  in
  let gateway_nodes =
    List.init (hops + 1) (fun j ->
        let routes =
          List.filter_map
            (fun (host, at, _) ->
              if at = j then Some { target = host; via = "exit_" ^ host }
              else if at < j then
                Some { target = host; via = Printf.sprintf "rbottleneck%d" (j - 1) }
              else None (* at > j: forward default *))
            hosts
        in
        let default_route =
          if j < hops then Some (Printf.sprintf "bottleneck%d" j)
          else Some (Printf.sprintf "rbottleneck%d" (j - 1))
        in
        { node = g j; routes; default_route })
  in
  let endpoints =
    Array.of_list
      (List.init long_flows (fun i ->
           { src = Printf.sprintf "ls%d" i; dst = Printf.sprintf "lk%d" i })
      @ List.concat
          (List.init hops (fun j ->
               List.init cross_per_hop (fun c ->
                   {
                     src = Printf.sprintf "cs%d_%d" j c;
                     dst = Printf.sprintf "ck%d_%d" j c;
                   }))))
  in
  ( { nodes = host_nodes @ gateway_nodes; links = trunk_links @ host_links },
    endpoints )

let fat_tree ~pods ~hosts_per_pod ~(config : Dumbbell_config.t) () =
  if pods < 2 then invalid_arg "Topology.fat_tree: pods < 2";
  if hosts_per_pod < 1 then invalid_arg "Topology.fat_tree: hosts_per_pod < 1";
  let agg p = Printf.sprintf "agg%d" p in
  let host p h = Printf.sprintf "h%d_%d" p h in
  let pod_list f = List.init pods f in
  let trunk_links =
    pod_list (fun p ->
        ( Printf.sprintf "up%d" p,
          {
            from_node = agg p;
            to_node = "core";
            bandwidth_bps = config.bottleneck_bandwidth_bps;
            delay = config.bottleneck_delay;
            queue = gateway_queue config;
          } ))
    @ pod_list (fun p ->
          ( Printf.sprintf "down%d" p,
            {
              from_node = "core";
              to_node = agg p;
              bandwidth_bps = config.bottleneck_bandwidth_bps;
              delay = config.bottleneck_delay;
              queue = gateway_queue config;
            } ))
  in
  let host_links =
    List.concat
      (pod_list (fun p ->
           List.concat
             (List.init hosts_per_pod (fun h ->
                  [
                    ( Printf.sprintf "hacc%d_%d" p h,
                      {
                        from_node = host p h;
                        to_node = agg p;
                        bandwidth_bps = config.side_bandwidth_bps;
                        delay = config.side_delay;
                        queue = droptail config.access_capacity;
                      } );
                    ( Printf.sprintf "hexit%d_%d" p h,
                      {
                        from_node = agg p;
                        to_node = host p h;
                        bandwidth_bps = config.side_bandwidth_bps;
                        delay = config.side_delay;
                        queue = droptail config.access_capacity;
                      } );
                  ]))))
  in
  let nodes =
    ({ node = "core"; routes = []; default_route = None }
    |> fun core ->
     {
       core with
       routes =
         List.concat
           (pod_list (fun p ->
                List.init hosts_per_pod (fun h ->
                    { target = host p h; via = Printf.sprintf "down%d" p })));
     })
    :: pod_list (fun p ->
           {
             node = agg p;
             routes =
               List.init hosts_per_pod (fun h ->
                   { target = host p h; via = Printf.sprintf "hexit%d_%d" p h });
             default_route = Some (Printf.sprintf "up%d" p);
           })
    @ List.concat
        (pod_list (fun p ->
             List.init hosts_per_pod (fun h ->
                 {
                   node = host p h;
                   routes = [];
                   default_route = Some (Printf.sprintf "hacc%d_%d" p h);
                 })))
  in
  let endpoints =
    Array.of_list
      (List.concat
         (pod_list (fun p ->
              List.init hosts_per_pod (fun h ->
                  { src = host p h; dst = host ((p + 1) mod pods) h }))))
  in
  ({ nodes; links = trunk_links @ host_links }, endpoints)
