type params = {
  min_th : float;
  max_th : float;
  max_p : float;
  wq : float;
  mean_packet_size : int;
}

let paper_params =
  { min_th = 5.0; max_th = 20.0; max_p = 0.02; wq = 0.002; mean_packet_size = 1000 }

type drop_stats = {
  mutable early : int;
  mutable forced : int;
  mutable buffer_full : int;
}

type state = {
  engine : Sim.Engine.t;
  capacity : int;
  params : params;
  rng : Sim.Rng.t;
  fifo : Packet.t Queue.t;
  mutable bytes : int;
  mutable avg : float;
  (* Inter-drop packet count since the last early/forced drop; -1 outside
     the [min_th, max_th) band, per Floyd & Jacobson Fig. 2. *)
  mutable count : int;
  mutable idle_since : float option;  (* time the queue went empty *)
  mean_service_time : float;  (* per mean-size packet, for idle decay *)
  drop_stats : drop_stats;
  queue_stats : Queue_disc.stats;
  on_drop : Packet.t -> unit;
}

let validate params =
  if params.min_th <= 0.0 || params.max_th <= params.min_th then
    invalid_arg "Red.create: need 0 < min_th < max_th";
  if params.max_p <= 0.0 || params.max_p > 1.0 then
    invalid_arg "Red.create: need 0 < max_p <= 1";
  if params.wq <= 0.0 || params.wq >= 1.0 then
    invalid_arg "Red.create: need 0 < wq < 1"

let drop t packet ~cause =
  t.queue_stats.dropped <- t.queue_stats.dropped + 1;
  t.queue_stats.bytes_dropped <-
    t.queue_stats.bytes_dropped + packet.Packet.size_bytes;
  (match cause with
  | `Early -> t.drop_stats.early <- t.drop_stats.early + 1
  | `Forced -> t.drop_stats.forced <- t.drop_stats.forced + 1
  | `Buffer_full -> t.drop_stats.buffer_full <- t.drop_stats.buffer_full + 1);
  t.on_drop packet;
  false

let accept t packet =
  Queue.push packet t.fifo;
  t.bytes <- t.bytes + packet.Packet.size_bytes;
  t.queue_stats.enqueued <- t.queue_stats.enqueued + 1;
  true

(* Decay the average across an idle period as if [m] mean-size packets
   had been serviced from an empty queue. *)
let update_average t =
  (match t.idle_since with
  | Some went_idle ->
    let idle = Sim.Engine.now t.engine -. went_idle in
    let m = idle /. t.mean_service_time in
    if m > 0.0 then t.avg <- t.avg *. ((1.0 -. t.params.wq) ** m);
    t.idle_since <- None
  | None -> ());
  let q = float_of_int (Queue.length t.fifo) in
  t.avg <- ((1.0 -. t.params.wq) *. t.avg) +. (t.params.wq *. q)

let enqueue t packet =
  update_average t;
  let p = t.params in
  if t.avg >= p.max_th then begin
    t.count <- 0;
    drop t packet ~cause:`Forced
  end
  else if t.avg >= p.min_th then begin
    t.count <- t.count + 1;
    let pb = p.max_p *. (t.avg -. p.min_th) /. (p.max_th -. p.min_th) in
    let denominator = 1.0 -. (float_of_int t.count *. pb) in
    let pa = if denominator <= 0.0 then 1.0 else pb /. denominator in
    if Sim.Rng.bernoulli t.rng pa then begin
      t.count <- 0;
      drop t packet ~cause:`Early
    end
    else if Queue.length t.fifo >= t.capacity then begin
      t.count <- 0;
      drop t packet ~cause:`Buffer_full
    end
    else accept t packet
  end
  else begin
    t.count <- -1;
    if Queue.length t.fifo >= t.capacity then
      drop t packet ~cause:`Buffer_full
    else accept t packet
  end

let dequeue t () =
  match Queue.take_opt t.fifo with
  | None -> None
  | Some packet ->
    t.bytes <- t.bytes - packet.Packet.size_bytes;
    t.queue_stats.dequeued <- t.queue_stats.dequeued + 1;
    if Queue.is_empty t.fifo then
      t.idle_since <- Some (Sim.Engine.now t.engine);
    Some packet

let create_with_probe ~engine ~capacity ~params ~rng ~bandwidth_bps
    ?(on_drop = fun _ -> ()) () =
  if capacity < 1 then invalid_arg "Red.create: capacity < 1";
  validate params;
  if bandwidth_bps <= 0.0 then invalid_arg "Red.create: bandwidth <= 0";
  let mean_service_time =
    Sim.Units.transmission_time ~size_bytes:params.mean_packet_size
      ~bandwidth_bps
  in
  let t =
    {
      engine;
      capacity;
      params;
      rng;
      fifo = Queue.create ();
      bytes = 0;
      avg = 0.0;
      count = -1;
      idle_since = None;
      mean_service_time;
      drop_stats = { early = 0; forced = 0; buffer_full = 0 };
      queue_stats = Queue_disc.fresh_stats ();
      on_drop;
    }
  in
  let disc =
    Queue_disc.make ~name:"red"
      ~enqueue:(fun packet -> enqueue t packet)
      ~dequeue:(dequeue t)
      ~length:(fun () -> Queue.length t.fifo)
      ~byte_length:(fun () -> t.bytes)
      ~stats:t.queue_stats ()
  in
  (disc, t.drop_stats, fun () -> t.avg)

let create ~engine ~capacity ~params ~rng ~bandwidth_bps ?on_drop () =
  let disc, drops, _probe =
    create_with_probe ~engine ~capacity ~params ~rng ~bandwidth_bps ?on_drop ()
  in
  (disc, drops)
