(** General directed-graph topology.

    Where {!Dumbbell} hard-codes the paper's Figure 4, this module
    describes an arbitrary network as data: named nodes, named
    unidirectional links (each with a bandwidth, a propagation delay and
    a queue discipline), per-node static routing tables, and named
    attachment points — flows attach to a (source, destination) node
    pair, and loss/fault wrappers attach to any link by name
    ({!create}'s [taps]). {!Dumbbell} is re-expressed as a thin wrapper
    over this module; the {!parking_lot} and {!fat_tree} builders cover
    the multi-bottleneck paths the related work needs.

    Scale: a topology holds per-flow state in flat arrays (endpoints,
    drop ledger, delivery handlers), so a run with tens of thousands of
    flows costs O(flows) memory with no per-flow closure web beyond the
    handlers the caller installs. For many-flow runs, install a single
    shared dispatch function with {!set_data_dispatch} /
    {!set_ack_dispatch} instead of one handler per flow. *)

(** Queue discipline attached to a link's entry. *)
type queue_spec =
  | Droptail of { capacity : int }
  | Red of { capacity : int; params : Red.params }

type link_spec = {
  from_node : string;
  to_node : string;
  bandwidth_bps : float;
  delay : float;  (** one-way propagation, seconds *)
  queue : queue_spec;
}

(** One static routing entry at a node: packets whose destination node
    is [target] leave on link [via]. *)
type route = { target : string; via : string }

(** A node's forwarding state: explicit [routes] first, then the
    [default_route] link for everything else ([None] = packets for
    unlisted destinations are a routing error). Keeping defaults +
    exceptions makes gateway tables O(attached hosts), not O(nodes²). *)
type node_spec = {
  node : string;
  routes : route list;
  default_route : string option;
}

type spec = {
  nodes : node_spec list;
  links : (string * link_spec) list;
      (** named links, in realization order (the order queues are
          created — RED queues draw their RNG stream in this order) *)
}

(** A flow's attachment: data packets travel [src] → [dst]; its ACKs
    travel [dst] → [src]. *)
type endpoint = { src : string; dst : string }

(** A tap interposes on every packet entering a link (injected there or
    forwarded into it), exactly like the old [wrap_bottleneck]: it
    either calls the continuation or swallows the packet. *)
type wrap = (Packet.t -> unit) -> Packet.t -> unit

(** [validate spec ~flows] checks well-formedness and raises
    [Invalid_argument] with a [Topology: ...] message instead of letting
    a malformed graph fail mid-run: node/link names must be unique and
    declared, rates positive, delays non-negative, capacities >= 1,
    every node attached to some link, route entries resolvable, and
    every flow's data and ACK path must reach its destination without
    looping. {!create} calls this. *)
val validate : spec -> flows:endpoint array -> unit

type t

(** [create ~engine ~spec ~rng ?taps ?on_drop ~flows ()] realizes the
    graph. [rng] seeds RED gateways (split once per RED link, in link
    order). [taps] wraps the named links' entries, applied in list
    order after all queues exist — so the RNG-draw order is: RED
    queues (link order), then tap construction side effects (list
    order). [on_drop] observes every queue drop in addition to the
    per-flow ledger.

    @raise Invalid_argument on a malformed spec (see {!validate}), an
    unknown tap link, or a tap listed twice. *)
val create :
  engine:Sim.Engine.t ->
  spec:spec ->
  rng:Sim.Rng.t ->
  ?taps:(string * wrap) list ->
  ?on_drop:(Packet.t -> unit) ->
  flows:endpoint array ->
  unit ->
  t

(** {1 Traffic} *)

(** [inject_data t ~flow packet] puts a data packet on the flow's first
    hop toward its destination node; [inject_ack] likewise toward its
    source node. Routing is by packet kind: data packets are forwarded
    toward [flows.(flow).dst], ACKs toward [flows.(flow).src].

    @raise Invalid_argument on a flow id outside the endpoint table. *)
val inject_data : t -> flow:int -> Packet.t -> unit

val inject_ack : t -> flow:int -> Packet.t -> unit

(** [on_data t ~flow handler] registers the delivery callback invoked
    when a data packet of [flow] reaches its destination node. *)
val on_data : t -> flow:int -> (Packet.t -> unit) -> unit

(** [on_ack t ~flow handler] registers the callback for ACKs of [flow]
    arriving back at its source node. *)
val on_ack : t -> flow:int -> (Packet.t -> unit) -> unit

(** [set_data_dispatch t f] replaces the per-flow handler table with a
    single shared function — the many-flow path: one closure for the
    whole topology instead of one per flow. Calling {!on_data} after
    this reinstates the table. *)
val set_data_dispatch : t -> (Packet.t -> unit) -> unit

val set_ack_dispatch : t -> (Packet.t -> unit) -> unit

(** {1 Introspection} *)

(** [flows t] is the number of attached flows. *)
val flows : t -> int

(** [endpoint t ~flow] is the flow's attachment pair. *)
val endpoint : t -> flow:int -> endpoint

(** [queues t] names every queue discipline, in link order, for
    auditors and tracers to subscribe to. *)
val queues : t -> (string * Queue_disc.t) list

(** [queue t name] is the named link's discipline.

    @raise Invalid_argument on an unknown link name. *)
val queue : t -> string -> Queue_disc.t

(** [link t name] is the named {!Link}, the attachment point for
    link-level fault injection ({!Link.set_up}).

    @raise Invalid_argument on an unknown link name. *)
val link : t -> string -> Link.t

(** [link_names t] lists link names in realization order. *)
val link_names : t -> string list

(** [red_stats t name] classifies the named link's RED drops, when that
    link's queue is RED. *)
val red_stats : t -> string -> Red.drop_stats option

(** {1 Drop ledger} *)

(** [count_drop t packet] records a drop against the packet's flow.
    Queue drops are recorded automatically; pass this as [on_drop] to
    {!Loss} wrappers so injected losses land in the same ledger. *)
val count_drop : t -> Packet.t -> unit

val drops_of_flow : t -> int -> int

val total_drops : t -> int

(** {1 Builders} *)

(** [dumbbell ~config ?side_delays ?directions ()] is the paper's
    Figure 4 as a graph: senders [s<i>] and receivers [k<i>] joined by
    gateways [r1], [r2], with link names matching the legacy queue
    names ([gateway], [reverse_gateway], [access_fwd<i>],
    [access_rev<i>], [exit_fwd<i>], [exit_rev<i>]). The returned
    endpoints honour [directions] (a [Backward] flow's data rides the
    reverse trunk). Array lengths must equal [config.flows]; violations
    raise [Invalid_argument] with the legacy [Dumbbell.create] messages
    so existing callers keep their contract. *)
val dumbbell :
  config:Dumbbell_config.t ->
  ?side_delays:float array ->
  ?directions:Dumbbell_config.direction array ->
  unit ->
  spec * endpoint array

(** [parking_lot ~hops ~long_flows ~cross_per_hop ~config ()] chains
    [hops] bottleneck links [bottleneck0 .. bottleneck<hops-1>] between
    gateways [g0 .. g<hops>]. [long_flows] flows cross every bottleneck
    end to end; each hop [j] additionally carries [cross_per_hop] local
    flows entering at [g<j>] and leaving at [g<j+1>]. Endpoint order:
    long flows first, then hop-0 cross flows, hop-1, ... Bottleneck
    [j]'s entry queue is the named tap/fault point [bottleneck<j>]. *)
val parking_lot :
  hops:int ->
  long_flows:int ->
  cross_per_hop:int ->
  config:Dumbbell_config.t ->
  unit ->
  spec * endpoint array

(** [fat_tree ~pods ~hosts_per_pod ~config ()] is a shallow two-level
    tree: one [core] node, [pods] aggregation nodes [agg<p>], and
    [hosts_per_pod] hosts per pod. Up/down links [up<p>]/[down<p>]
    carry the bottleneck bandwidth; host access links are generous.
    One flow per host, destination striped to a host in the next pod,
    so every flow crosses two aggregation links and the core. *)
val fat_tree :
  pods:int ->
  hosts_per_pod:int ->
  config:Dumbbell_config.t ->
  unit ->
  spec * endpoint array
