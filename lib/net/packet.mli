(** Simulated packets.

    Following ns-2's one-way TCP agents — the substrate the paper's
    evaluation ran on — sequence numbers count fixed-size segments rather
    than bytes: data segment [seq] carries bytes
    [seq * mss .. (seq+1) * mss - 1] of the flow. An ACK with [ackno = k]
    acknowledges all segments [0..k] cumulatively; duplicate ACKs repeat
    the same [ackno]. SACK blocks are half-open segment ranges
    [(first, last_plus_one)] describing out-of-order data held by the
    receiver, most recent first. *)

type kind =
  | Data of { seq : int }
  | Ack of { ackno : int; sack : (int * int) list }

type t = {
  uid : int;  (** unique per simulation, for tracing *)
  flow : int;  (** flow (connection) identifier *)
  kind : kind;
  size_bytes : int;  (** on-the-wire size, drives transmission delay *)
  born : float;  (** creation time, for end-to-end delay tracing *)
}

(** [data ~uid ~flow ~seq ~size_bytes ~born] builds a data segment. *)
val data : uid:int -> flow:int -> seq:int -> size_bytes:int -> born:float -> t

(** [ack ~uid ~flow ~ackno ?sack ~size_bytes ~born ()] builds an ACK. *)
val ack :
  uid:int ->
  flow:int ->
  ackno:int ->
  ?sack:(int * int) list ->
  size_bytes:int ->
  born:float ->
  unit ->
  t

(** [is_data t] reports whether [t] carries data. *)
val is_data : t -> bool

(** [seq_exn t] is the sequence number of a data packet.

    @raise Invalid_argument on an ACK. *)
val seq_exn : t -> int

(** [pp] formats a packet for debugging and traces. *)
val pp : Format.formatter -> t -> unit
