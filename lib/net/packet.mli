(** Simulated packets.

    Following ns-2's one-way TCP agents — the substrate the paper's
    evaluation ran on — sequence numbers count fixed-size segments rather
    than bytes: data segment [seq] carries bytes
    [seq * mss .. (seq+1) * mss - 1] of the flow. An ACK with [ackno = k]
    acknowledges all segments [0..k] cumulatively; duplicate ACKs repeat
    the same [ackno]. SACK blocks are half-open segment ranges
    [(first, last_plus_one)] describing out-of-order data held by the
    receiver, most recent first.

    Packets are represented as a single all-immediate record: the
    direction tag and sequence number share one packed [info] word and
    the creation timestamp is stored in {!Sim.Timebits} encoding, so
    building a packet costs one allocation and per-packet hot paths
    ({!is_data}, {!seq_exn}, {!ackno_exn}) never allocate. {!kind}
    materializes the pattern-matchable view for cold paths. *)

(** Pattern-matchable view of a packet's payload, built on demand by
    {!kind}. *)
type kind =
  | Data of { seq : int }
  | Ack of { ackno : int; sack : (int * int) list }

type t = private {
  uid : int;  (** unique per simulation, for tracing *)
  flow : int;  (** flow (connection) identifier *)
  info : int;
      (** packed payload word: bit 0 is the data tag, bits 1..62 the
          (seqno|ackno) + 1 — see {!is_data}, {!seq_exn},
          {!ackno_exn} for decoded access *)
  sack : (int * int) list;  (** SACK ranges; [[]] for data packets *)
  size_bytes : int;  (** on-the-wire size, drives transmission delay *)
  born_bits : int;
      (** creation time in {!Sim.Timebits} encoding — {!born} decodes *)
}

(** [data ~uid ~flow ~seq ~size_bytes ~born] builds a data segment. *)
val data : uid:int -> flow:int -> seq:int -> size_bytes:int -> born:float -> t

(** [ack ~uid ~flow ~ackno ?sack ~size_bytes ~born ()] builds an ACK. *)
val ack :
  uid:int ->
  flow:int ->
  ackno:int ->
  ?sack:(int * int) list ->
  size_bytes:int ->
  born:float ->
  unit ->
  t

(** [is_data t] reports whether [t] carries data. Allocation-free. *)
val is_data : t -> bool

(** [seq_exn t] is the sequence number of a data packet.
    Allocation-free.

    @raise Invalid_argument on an ACK. *)
val seq_exn : t -> int

(** [ackno_exn t] is the cumulative acknowledgement number of an ACK.
    Allocation-free.

    @raise Invalid_argument on a data packet. *)
val ackno_exn : t -> int

(** [sack t] is the SACK block list; [[]] for data packets. *)
val sack : t -> (int * int) list

(** [born t] is the creation timestamp. *)
val born : t -> float

(** [kind t] materializes the pattern-matchable payload view.
    Allocates; prefer the flat accessors on per-packet paths. *)
val kind : t -> kind

(** [pp] formats a packet for debugging and traces. *)
val pp : Format.formatter -> t -> unit
