(** The paper's experimental topology (Figure 4): [n] senders S_i and
    receivers K_i joined by two gateways R1, R2. Every flow crosses its
    own side links and the shared bottleneck between the gateways; ACKs
    return over a symmetric reverse path. Congestion is engineered at
    R1's outbound (forward bottleneck) queue, which is the gateway
    discipline under test; all other queues are generously provisioned
    drop-tails. *)

type gateway = Dumbbell_config.gateway =
  | Droptail of { capacity : int }
  | Red of { capacity : int; params : Red.params }

(** Which way a flow's data travels. [Forward] is the paper's S→K
    direction; [Backward] flows send data K→S over the reverse trunk,
    their ACKs returning on the forward trunk — the two-way traffic of
    the paper's reference [22], whose data packets queue behind (and
    compress) the forward flows' ACKs. *)
type direction = Dumbbell_config.direction = Forward | Backward

type config = Dumbbell_config.t = {
  flows : int;
  side_bandwidth_bps : float;
  side_delay : float;
  bottleneck_bandwidth_bps : float;
  bottleneck_delay : float;  (** one-way *)
  gateway : gateway;
  access_capacity : int;  (** per-flow access-link buffers *)
  reverse_capacity : int;  (** reverse-trunk buffer (ACKs, and data of
                               [Backward] flows) *)
}

(** Table 3 parameters: 10 Mbps / 1 ms side links, 0.8 Mbps bottleneck,
    96 ms one-way bottleneck delay (giving the ~200 ms RTT of §4),
    8-packet drop-tail gateway. *)
val paper_config : flows:int -> config

(** Which realization backs {!create}. [Graph] (the default) builds the
    dumbbell as a {!Topology} graph; [Legacy_closures] keeps the
    original hand-wired closure web. Both produce byte-identical runs
    (proven by the [test_topology_diff] suite); the legacy backend
    exists only as the reference for that proof and will be removed
    once it has served a release. *)
type backend = Graph | Legacy_closures

(** [set_default_backend b] selects the backend used by subsequent
    {!create} calls, in the mold of
    {!Sim.Engine.set_default_scheduler}. *)
val set_default_backend : backend -> unit

val default_backend : unit -> backend

type t

(** [create ~engine ~config ~rng ?taps ?on_drop ()] builds the
    topology. [taps] interposes {!Topology.wrap} functions on the named
    links — the bottleneck entry at R1 is link ["gateway"] (the paper's
    loss-injection point; compose wraps from {!Loss}) and the ACK-path
    entry at R2 is ["reverse_gateway"] (the §2.3 ACK-loss experiments);
    any other link name from {!Topology.dumbbell} works too. [rng]
    seeds the RED gateway when one is configured. [on_drop] observes
    every queue drop in the topology (in addition to the per-flow
    ledger). [side_delays] overrides [config.side_delay] per flow
    (applied to all four of that flow's access links), giving flows
    heterogeneous RTTs; its length must be [config.flows]. [directions]
    assigns each flow a {!direction} (default all [Forward]); a
    [Backward] flow's [inject_data] rides the reverse trunk and its
    [inject_ack] the forward trunk, so two-way experiments share queues
    exactly as in the paper's [22].

    [wrap_bottleneck] and [wrap_reverse] are deprecated shims for
    [taps] on ["gateway"] / ["reverse_gateway"], kept for one release;
    they are applied before any explicit [taps], preserving the
    historical wrap-construction order. Naming a link both ways raises.

    @raise Invalid_argument on array-length mismatches, [flows < 1], or
    (on the [Legacy_closures] backend) a non-empty [taps]. *)
val create :
  engine:Sim.Engine.t ->
  config:config ->
  rng:Sim.Rng.t ->
  ?wrap_bottleneck:((Packet.t -> unit) -> Packet.t -> unit) ->
  ?wrap_reverse:((Packet.t -> unit) -> Packet.t -> unit) ->
  ?taps:(string * Topology.wrap) list ->
  ?on_drop:(Packet.t -> unit) ->
  ?side_delays:float array ->
  ?directions:direction array ->
  unit ->
  t

(** [topology t] is the underlying graph when [t] was built by the
    [Graph] backend — the attachment point for capabilities the legacy
    surface never had (taps or faults on arbitrary links). *)
val topology : t -> Topology.t option

(** [inject_data t ~flow packet] is sender [flow] putting a packet on
    its access link. *)
val inject_data : t -> flow:int -> Packet.t -> unit

(** [inject_ack t ~flow packet] is receiver [flow] sending an ACK back. *)
val inject_ack : t -> flow:int -> Packet.t -> unit

(** [on_data t ~flow handler] registers the receiver-side delivery
    callback for [flow]. *)
val on_data : t -> flow:int -> (Packet.t -> unit) -> unit

(** [on_ack t ~flow handler] registers the sender-side ACK delivery
    callback for [flow]. *)
val on_ack : t -> flow:int -> (Packet.t -> unit) -> unit

(** [bottleneck_queue t] is the gateway discipline under test. *)
val bottleneck_queue : t -> Queue_disc.t

(** [bottleneck_link t] is the forward trunk link R1→R2 (the link that
    serves the gateway queue) — the attachment point for link-level
    fault injection ({!Link.set_up}). *)
val bottleneck_link : t -> Link.t

(** [reverse_trunk_link t] is the reverse trunk R2→R1 carrying ACKs
    (and [Backward] flows' data). An outage of the physical trunk cuts
    both this and {!bottleneck_link}. *)
val reverse_trunk_link : t -> Link.t

(** [queues t] names every queue discipline in the topology — the
    gateway under test first ("gateway"), then the reverse gateway and
    the per-flow access/exit buffers — so auditors and tracers can
    {!Queue_disc.subscribe} to all of them. *)
val queues : t -> (string * Queue_disc.t) list

(** [red_stats t] classifies RED drops when the gateway is RED. *)
val red_stats : t -> Red.drop_stats option

(** [count_drop t packet] records a drop of [packet] against its flow in
    the topology-wide ledger. Queue drops are recorded automatically;
    pass this as [on_drop] to {!Loss} wrappers so injected losses land
    in the same ledger. *)
val count_drop : t -> Packet.t -> unit

(** [drops_of_flow t flow] is the number of that flow's packets dropped
    anywhere in the topology (including injected losses). *)
val drops_of_flow : t -> int -> int

(** [total_drops t] sums {!drops_of_flow} over all flows. *)
val total_drops : t -> int
