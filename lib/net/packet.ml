type kind =
  | Data of { seq : int }
  | Ack of { ackno : int; sack : (int * int) list }

type t = {
  uid : int;
  flow : int;
  kind : kind;
  size_bytes : int;
  born : float;
}

let data ~uid ~flow ~seq ~size_bytes ~born =
  { uid; flow; kind = Data { seq }; size_bytes; born }

let ack ~uid ~flow ~ackno ?(sack = []) ~size_bytes ~born () =
  { uid; flow; kind = Ack { ackno; sack }; size_bytes; born }

let is_data t = match t.kind with Data _ -> true | Ack _ -> false

let seq_exn t =
  match t.kind with
  | Data { seq } -> seq
  | Ack _ -> invalid_arg "Packet.seq_exn: ACK packet"

let pp ppf t =
  match t.kind with
  | Data { seq } ->
    Format.fprintf ppf "data[flow=%d seq=%d uid=%d %dB]" t.flow seq t.uid
      t.size_bytes
  | Ack { ackno; sack } ->
    Format.fprintf ppf "ack[flow=%d ackno=%d sack=%a uid=%d]" t.flow ackno
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
         (fun ppf (a, b) -> Format.fprintf ppf "%d-%d" a b))
      sack t.uid
