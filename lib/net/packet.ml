type kind =
  | Data of { seq : int }
  | Ack of { ackno : int; sack : (int * int) list }

(* All-immediate representation: one 7-word block per packet (plus the
   SACK list when an ACK carries ranges), no variant box, no boxed
   float. [info] packs tag and sequence number in one word:

     bit 0        1 = data, 0 = ack
     bits 1..62   seqno (data) or ackno (ack), biased by +1 so the
                  pre-handshake cumulative point -1 encodes as 0

   [born_bits] is the order-preserving Timebits encoding of the
   creation timestamp, kept as an int so the record stays float-free
   (a [float] field in a mixed record is a pointer to a 2-word box). *)
type t = {
  uid : int;
  flow : int;
  info : int;
  sack : (int * int) list;
  size_bytes : int;
  born_bits : int;
}

let[@inline] data ~uid ~flow ~seq ~size_bytes ~born =
  {
    uid;
    flow;
    info = ((seq + 1) lsl 1) lor 1;
    sack = [];
    size_bytes;
    born_bits = Sim.Timebits.of_time born;
  }

let[@inline] ack ~uid ~flow ~ackno ?(sack = []) ~size_bytes ~born () =
  {
    uid;
    flow;
    info = (ackno + 1) lsl 1;
    sack;
    size_bytes;
    born_bits = Sim.Timebits.of_time born;
  }

let[@inline] is_data t = t.info land 1 = 1
let[@inline] seqno t = (t.info lsr 1) - 1
let[@inline] born t = Sim.Timebits.to_time t.born_bits

let seq_exn t =
  if is_data t then seqno t else invalid_arg "Packet.seq_exn: ACK packet"

let ackno_exn t =
  if is_data t then invalid_arg "Packet.ackno_exn: data packet" else seqno t

let[@inline] sack t = t.sack

let kind t =
  if is_data t then Data { seq = seqno t }
  else Ack { ackno = seqno t; sack = t.sack }

let pp ppf t =
  if is_data t then
    Format.fprintf ppf "data[flow=%d seq=%d uid=%d %dB]" t.flow (seqno t) t.uid
      t.size_bytes
  else
    Format.fprintf ppf "ack[flow=%d ackno=%d sack=%a uid=%d]" t.flow (seqno t)
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
         (fun ppf (a, b) -> Format.fprintf ppf "%d-%d" a b))
      t.sack t.uid
