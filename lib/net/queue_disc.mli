(** Common interface for queueing disciplines attached to links.

    A discipline decides, per arriving packet, whether to accept or drop
    it, and hands packets back to the link in its service order. Concrete
    disciplines ({!Droptail}, {!Red}) construct values of this closure
    record; the record style keeps links independent of the discipline's
    internal state type. *)

type stats = {
  mutable enqueued : int;  (** packets accepted *)
  mutable dropped : int;  (** packets refused (all causes) *)
  mutable dequeued : int;  (** packets handed to the link *)
  mutable bytes_dropped : int;
}

type t = {
  name : string;
  enqueue : Packet.t -> bool;
      (** [enqueue p] accepts [p] into the queue, returning [false] when
          the discipline drops it instead. *)
  dequeue : unit -> Packet.t option;
      (** next packet to transmit, [None] when empty *)
  length : unit -> int;  (** packets currently queued *)
  byte_length : unit -> int;  (** bytes currently queued *)
  stats : stats;
}

(** [fresh_stats ()] is an all-zero counter record. *)
val fresh_stats : unit -> stats
