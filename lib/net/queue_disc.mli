(** Common interface for queueing disciplines attached to links.

    A discipline decides, per arriving packet, whether to accept or drop
    it, and hands packets back to the link in its service order. Concrete
    disciplines ({!Droptail}, {!Red}) construct values of this closure
    record via {!make}; the record style keeps links independent of the
    discipline's internal state type.

    Every discipline built with {!make} carries a multicast observer
    list: auditors and tracers {!subscribe} to see each accept, drop and
    departure as it happens, without wrapping the queue. *)

type stats = {
  mutable enqueued : int;  (** packets accepted *)
  mutable dropped : int;  (** packets refused (all causes) *)
  mutable dequeued : int;  (** packets handed to the link *)
  mutable bytes_dropped : int;
}

(** One queue transition. [Dropped] packets were refused at enqueue and
    never entered the queue. *)
type event = Enqueued of Packet.t | Dropped of Packet.t | Dequeued of Packet.t

type t = {
  name : string;
  enqueue : Packet.t -> bool;
      (** [enqueue p] accepts [p] into the queue, returning [false] when
          the discipline drops it instead. *)
  dequeue : unit -> Packet.t option;
      (** next packet to transmit, [None] when empty *)
  length : unit -> int;  (** packets currently queued *)
  byte_length : unit -> int;  (** bytes currently queued *)
  stats : stats;
  observers : (event -> unit) list ref;  (** managed via {!subscribe} *)
}

(** [fresh_stats ()] is an all-zero counter record. *)
val fresh_stats : unit -> stats

(** [make ~name ~enqueue ~dequeue ~length ~byte_length ~stats ()] wraps
    a discipline implementation so every enqueue outcome and dequeue is
    broadcast to subscribers. Concrete disciplines must build their
    record through this. *)
val make :
  name:string ->
  enqueue:(Packet.t -> bool) ->
  dequeue:(unit -> Packet.t option) ->
  length:(unit -> int) ->
  byte_length:(unit -> int) ->
  stats:stats ->
  unit ->
  t

(** [subscribe t f] adds [f] to the observer list; events are delivered
    in subscription order, after the discipline's own state and [stats]
    are updated. Subscriptions cannot be removed. *)
val subscribe : t -> (event -> unit) -> unit
