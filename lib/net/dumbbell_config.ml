type gateway =
  | Droptail of { capacity : int }
  | Red of { capacity : int; params : Red.params }

type direction = Forward | Backward

type t = {
  flows : int;
  side_bandwidth_bps : float;
  side_delay : float;
  bottleneck_bandwidth_bps : float;
  bottleneck_delay : float;
  gateway : gateway;
  access_capacity : int;
  reverse_capacity : int;
}

let paper ~flows =
  {
    flows;
    side_bandwidth_bps = Sim.Units.mbps 10.0;
    side_delay = Sim.Units.ms 1.0;
    bottleneck_bandwidth_bps = Sim.Units.mbps 0.8;
    bottleneck_delay = Sim.Units.ms 96.0;
    gateway = Droptail { capacity = 8 };
    access_capacity = 1000;
    reverse_capacity = 1000;
  }
