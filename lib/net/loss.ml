let uniform ~rng ~rate ?(data_only = true) ?(on_drop = fun _ -> ()) next =
  if rate < 0.0 || rate > 1.0 then invalid_arg "Loss.uniform: bad rate";
  fun packet ->
    let eligible = (not data_only) || Packet.is_data packet in
    if eligible && Sim.Rng.bernoulli rng rate then on_drop packet
    else next packet

type rule = { flow : int; seq : int; occurrence : int }

let drop_list ~rules ?(on_drop = fun _ -> ()) next =
  (* (flow, seq) -> number of times seen so far. *)
  let seen : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let rules_tbl : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun { flow; seq; occurrence } ->
      if occurrence < 1 then invalid_arg "Loss.drop_list: occurrence < 1";
      Hashtbl.replace rules_tbl (flow, seq) occurrence)
    rules;
  fun packet ->
    if not (Packet.is_data packet) then next packet
    else begin
      let key = (packet.Packet.flow, Packet.seq_exn packet) in
      let count = 1 + Option.value ~default:0 (Hashtbl.find_opt seen key) in
      Hashtbl.replace seen key count;
      match Hashtbl.find_opt rules_tbl key with
      | Some occurrence when occurrence = count ->
        Hashtbl.remove rules_tbl key;
        on_drop packet
      | Some _ | None -> next packet
    end
