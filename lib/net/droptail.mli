(** Drop-tail (FIFO, finite buffer) queueing discipline.

    The widely-deployed gateway discipline the paper's §3.2 evaluates
    under: packets are served first-in first-out and arrivals that find
    the buffer full are discarded. Capacity is counted in packets, as in
    the paper's simulations. *)

(** [create ~capacity ?on_drop ()] returns a drop-tail queue holding at
    most [capacity] packets. [on_drop] is invoked for every discarded
    packet (used for per-flow loss accounting).

    @raise Invalid_argument if [capacity < 1]. *)
val create :
  capacity:int -> ?on_drop:(Packet.t -> unit) -> unit -> Queue_disc.t
