type stats = {
  mutable enqueued : int;
  mutable dropped : int;
  mutable dequeued : int;
  mutable bytes_dropped : int;
}

type event = Enqueued of Packet.t | Dropped of Packet.t | Dequeued of Packet.t

type t = {
  name : string;
  enqueue : Packet.t -> bool;
  dequeue : unit -> Packet.t option;
  length : unit -> int;
  byte_length : unit -> int;
  stats : stats;
  observers : (event -> unit) list ref;
}

let fresh_stats () =
  { enqueued = 0; dropped = 0; dequeued = 0; bytes_dropped = 0 }

let subscribe t f = t.observers := !(t.observers) @ [ f ]

let notify observers event = List.iter (fun f -> f event) !observers

(* The smart constructor owns event dispatch, so concrete disciplines
   only implement accept/drop/service policy and every discipline gets
   the same observer semantics for free. *)
let make ~name ~enqueue ~dequeue ~length ~byte_length ~stats () =
  let observers = ref [] in
  let enqueue packet =
    let accepted = enqueue packet in
    notify observers (if accepted then Enqueued packet else Dropped packet);
    accepted
  in
  let dequeue () =
    match dequeue () with
    | None -> None
    | Some packet ->
      notify observers (Dequeued packet);
      Some packet
  in
  { name; enqueue; dequeue; length; byte_length; stats; observers }
