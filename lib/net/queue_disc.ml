type stats = {
  mutable enqueued : int;
  mutable dropped : int;
  mutable dequeued : int;
  mutable bytes_dropped : int;
}

type t = {
  name : string;
  enqueue : Packet.t -> bool;
  dequeue : unit -> Packet.t option;
  length : unit -> int;
  byte_length : unit -> int;
  stats : stats;
}

let fresh_stats () =
  { enqueued = 0; dropped = 0; dequeued = 0; bytes_dropped = 0 }
