let create ~capacity ?(on_drop = fun _ -> ()) () =
  if capacity < 1 then invalid_arg "Droptail.create: capacity < 1";
  let fifo : Packet.t Queue.t = Queue.create () in
  let bytes = ref 0 in
  let stats = Queue_disc.fresh_stats () in
  let enqueue packet =
    if Queue.length fifo >= capacity then begin
      stats.dropped <- stats.dropped + 1;
      stats.bytes_dropped <- stats.bytes_dropped + packet.Packet.size_bytes;
      on_drop packet;
      false
    end
    else begin
      Queue.push packet fifo;
      bytes := !bytes + packet.Packet.size_bytes;
      stats.enqueued <- stats.enqueued + 1;
      true
    end
  in
  let dequeue () =
    match Queue.take_opt fifo with
    | None -> None
    | Some packet ->
      bytes := !bytes - packet.Packet.size_bytes;
      stats.dequeued <- stats.dequeued + 1;
      Some packet
  in
  Queue_disc.make ~name:"droptail" ~enqueue ~dequeue
    ~length:(fun () -> Queue.length fifo)
    ~byte_length:(fun () -> !bytes)
    ~stats ()
