(** Unidirectional point-to-point link.

    A link serializes packets at its bandwidth out of an attached queue
    discipline, then delivers each packet to the downstream consumer
    after the propagation delay. Transmission and propagation overlap as
    on a real wire: the next packet starts serializing as soon as the
    previous one has left the interface, so a link of bandwidth [b] and
    delay [d] delivers back-to-back packets [size/b] apart, each [d]
    after its transmission completes. *)

type t

(** [create ~engine ~bandwidth_bps ~delay ~queue ~dst ()] builds a link
    that serves [queue] and delivers to [dst].

    @raise Invalid_argument if [bandwidth_bps <= 0] or [delay < 0]. *)
val create :
  engine:Sim.Engine.t ->
  bandwidth_bps:float ->
  delay:float ->
  queue:Queue_disc.t ->
  dst:(Packet.t -> unit) ->
  unit ->
  t

(** [send t packet] offers [packet] to the link's queue; the queue
    discipline may drop it. Transmission starts immediately when the
    link is idle. *)
val send : t -> Packet.t -> unit

(** [queue t] exposes the attached discipline (for stats and tests). *)
val queue : t -> Queue_disc.t

(** [busy t] reports whether a packet is currently being serialized. *)
val busy : t -> bool

(** [delivered t] is the number of packets handed to [dst] so far. *)
val delivered : t -> int

(** {1 Administrative state (fault injection)}

    A link is created up. While down, no new serialization starts: the
    interface is silent and arriving packets accumulate in (or are
    dropped by) the queue discipline as usual. The packet being
    serialized when the link goes down finishes its transmission and is
    delivered — transitions take effect at packet boundaries — and
    packets already propagating are likewise unaffected, so taking a
    link down never un-sends bits that left the interface. Bringing the
    link back up resumes service of whatever the queue then holds.
    [Faults.Injector] drives these from a deterministic schedule. *)

(** [set_up t up] raises ([true]) or cuts ([false]) the interface.
    Idempotent; [set_up t true] on a non-empty queue restarts service
    immediately. *)
val set_up : t -> bool -> unit

(** [is_up t] reports the current administrative state. *)
val is_up : t -> bool

(** {1 Time-varying conditions (hostile-network scenarios)}

    A link's rate and propagation delay may change while it runs —
    fading radio channels, cellular handover, path migration.  Changes
    bind at packet boundaries, mirroring [set_up]: the packet being
    serialized when [set_rate] is called finishes its transmission at
    the rate in force when it started, and [set_delay] applies to
    packets entering the wire from that moment on.  Bits already
    propagating are never re-timed, so delivery order per link is
    preserved under any step pattern.  [Faults.Injector] drives these
    from a deterministic {!Faults.Timeline}. *)

(** [rate_bps t] is the current serialization rate. *)
val rate_bps : t -> float

(** [delay t] is the current one-way propagation delay. *)
val delay : t -> float

(** [set_rate t bps] changes the serialization rate for packets whose
    transmission starts after this call.

    @raise Invalid_argument if [bps <= 0]. *)
val set_rate : t -> float -> unit

(** [set_delay t d] changes the propagation delay for packets entering
    the wire after this call.

    @raise Invalid_argument if [d < 0]. *)
val set_delay : t -> float -> unit
