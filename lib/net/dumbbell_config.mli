(** Shared parameter record for dumbbell-shaped topologies.

    Extracted from {!Dumbbell} so both the legacy wrapper and the
    {!Topology} builders (which express the dumbbell, the parking lot
    and the fat tree in terms of the same link-parameter vocabulary)
    can consume it without a dependency cycle. {!Dumbbell} re-exports
    these types under their historical names. *)

(** The gateway discipline under test at each bottleneck entry. *)
type gateway =
  | Droptail of { capacity : int }
  | Red of { capacity : int; params : Red.params }

(** Which way a flow's data travels across a dumbbell. [Forward] is the
    paper's S→K direction; [Backward] flows send data K→S over the
    reverse trunk, their ACKs returning on the forward trunk. *)
type direction = Forward | Backward

type t = {
  flows : int;
  side_bandwidth_bps : float;
  side_delay : float;
  bottleneck_bandwidth_bps : float;
  bottleneck_delay : float;  (** one-way *)
  gateway : gateway;
  access_capacity : int;  (** per-flow access-link buffers *)
  reverse_capacity : int;
      (** reverse-trunk buffer (ACKs, and data of [Backward] flows) *)
}

(** Table 3 parameters: 10 Mbps / 1 ms side links, 0.8 Mbps bottleneck,
    96 ms one-way bottleneck delay, 8-packet drop-tail gateway. *)
val paper : flows:int -> t
