(** Random Early Detection gateway discipline (Floyd & Jacobson 1993).

    RED tracks an exponentially-weighted moving average of the queue
    length and probabilistically drops arrivals once the average exceeds
    [min_th], dropping every arrival above [max_th] or when the physical
    buffer is full. The inter-drop spacing is uniformized with the
    standard [count] mechanism, and the average decays during idle
    periods as if small packets had been serviced.

    Default parameters are the paper's Table 4. *)

type params = {
  min_th : float;  (** average-queue threshold where early drops begin *)
  max_th : float;  (** average-queue threshold where all arrivals drop *)
  max_p : float;  (** drop probability as the average reaches [max_th] *)
  wq : float;  (** EWMA weight for the average queue size *)
  mean_packet_size : int;  (** bytes; calibrates idle-time decay *)
}

(** The paper's Table 4 configuration: min 5, max 20, max_p 0.02,
    wq 0.002, 1000-byte packets. *)
val paper_params : params

type drop_stats = {
  mutable early : int;  (** probabilistic drops below [max_th] *)
  mutable forced : int;  (** drops with average above [max_th] *)
  mutable buffer_full : int;  (** physical-buffer overflows *)
}

(** [create ~engine ~capacity ~params ~rng ~bandwidth_bps ?on_drop ()]
    returns a RED queue with a physical buffer of [capacity] packets.
    [bandwidth_bps] is the outgoing link rate, used with
    [params.mean_packet_size] to decay the average across idle periods.
    The returned [drop_stats] classifies drops by cause.

    @raise Invalid_argument on non-sensical parameters. *)
val create :
  engine:Sim.Engine.t ->
  capacity:int ->
  params:params ->
  rng:Sim.Rng.t ->
  bandwidth_bps:float ->
  ?on_drop:(Packet.t -> unit) ->
  unit ->
  Queue_disc.t * drop_stats

(** [average_queue queue_disc] would be ambiguous on the closure record,
    so the running average is exposed through a side channel: *)

(** [create_with_probe] is [create] extended with an accessor for the
    current average queue estimate, used by white-box tests. *)
val create_with_probe :
  engine:Sim.Engine.t ->
  capacity:int ->
  params:params ->
  rng:Sim.Rng.t ->
  bandwidth_bps:float ->
  ?on_drop:(Packet.t -> unit) ->
  unit ->
  Queue_disc.t * drop_stats * (unit -> float)
