(** Loss-injection modules.

    Both experiments that need engineered loss are expressed as wrappers
    around a packet consumer: the wrapper either forwards the packet or
    silently discards it (invoking [on_drop] for accounting).

    - {!uniform} reproduces the paper's §4 setup, where "artificial
      losses are introduced at the gateway R1" with a uniform random
      per-packet probability.
    - {!drop_list} forces a deterministic loss pattern — e.g. Figure 5's
      "3 (6) packet losses within a window of data" — by dropping listed
      (flow, seq) pairs on a chosen transmission occurrence, letting
      retransmissions through. *)

(** [uniform ~rng ~rate ?data_only ?on_drop next] drops each packet with
    probability [rate] before handing survivors to [next]. With
    [data_only] (default [true]) ACKs always pass.

    @raise Invalid_argument if [rate] is outside [\[0, 1\]]. *)
val uniform :
  rng:Sim.Rng.t ->
  rate:float ->
  ?data_only:bool ->
  ?on_drop:(Packet.t -> unit) ->
  (Packet.t -> unit) ->
  Packet.t ->
  unit

(** A deterministic drop rule: drop the [occurrence]-th time (1-based)
    that data segment [seq] of flow [flow] passes this point. With
    [occurrence = 1] the first transmission is lost and retransmissions
    pass — the Figure 5 pattern. *)
type rule = { flow : int; seq : int; occurrence : int }

(** [drop_list ~rules ?on_drop next] applies the rules; packets matching
    no rule are forwarded. Each rule fires at most once. *)
val drop_list :
  rules:rule list ->
  ?on_drop:(Packet.t -> unit) ->
  (Packet.t -> unit) ->
  Packet.t ->
  unit
