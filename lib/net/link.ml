type t = {
  engine : Sim.Engine.t;
  bandwidth_bps : float;
  delay : float;
  queue : Queue_disc.t;
  dst : Packet.t -> unit;
  mutable busy : bool;
  mutable delivered : int;
}

let create ~engine ~bandwidth_bps ~delay ~queue ~dst () =
  if bandwidth_bps <= 0.0 then invalid_arg "Link.create: bandwidth <= 0";
  if delay < 0.0 then invalid_arg "Link.create: negative delay";
  { engine; bandwidth_bps; delay; queue; dst; busy = false; delivered = 0 }

let queue t = t.queue

let busy t = t.busy

let delivered t = t.delivered

(* Serve the queue head: serialize for size/bandwidth, then put the
   packet on the wire (delivery [delay] later) and start on the next
   queued packet, if any. *)
let rec transmit_next t =
  match t.queue.Queue_disc.dequeue () with
  | None -> t.busy <- false
  | Some packet ->
    t.busy <- true;
    let tx_time =
      Sim.Units.transmission_time ~size_bytes:packet.Packet.size_bytes
        ~bandwidth_bps:t.bandwidth_bps
    in
    ignore
      (Sim.Engine.schedule_after t.engine ~delay:tx_time (fun () ->
           ignore
             (Sim.Engine.schedule_after t.engine ~delay:t.delay (fun () ->
                  t.delivered <- t.delivered + 1;
                  t.dst packet));
           transmit_next t)
        : Sim.Engine.handle)

let send t packet =
  if t.queue.Queue_disc.enqueue packet && not t.busy then transmit_next t
