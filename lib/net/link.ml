(* Each in-flight packet is tracked by one [delivery] record that fires
   twice: once when serialization completes (put the packet on the wire,
   start serving the next one) and once when propagation completes (hand
   the packet to [dst]). The record and its single closure are recycled
   through a per-link free list, so the steady-state per-packet cost is
   two no-handle engine events and zero link-side allocations — where it
   used to be two fresh nested closures plus two cancellable handles. *)

type delivery = {
  mutable packet : Packet.t;
  (* false: awaiting end of serialization; true: on the wire. *)
  mutable in_flight : bool;
  mutable fire : unit -> unit;
  mutable next_free : delivery option;
}

(* A one-field all-float record is stored flat: updating [v] is a plain
   float store, where a float field in the mixed link record below
   would allocate a box per write — and [last_arrival] is written once
   per packet. *)
type fcell = { mutable v : float }

type t = {
  engine : Sim.Engine.t;
  mutable bandwidth_bps : float;
  mutable delay : float;
  queue : Queue_disc.t;
  dst : Packet.t -> unit;
  mutable busy : bool;
  mutable up : bool;
  mutable delivered : int;
  (* Latest wire-exit time scheduled so far. A delay *decrease* mid-run
     could otherwise let a packet entering the wire overtake one already
     propagating; clamping to this keeps deliveries FIFO per link. With
     a constant delay the clamp never binds, so static links schedule
     exactly the times they always did. *)
  last_arrival : fcell;
  mutable free : delivery option;
}

let create ~engine ~bandwidth_bps ~delay ~queue ~dst () =
  if bandwidth_bps <= 0.0 then invalid_arg "Link.create: bandwidth <= 0";
  if delay < 0.0 then invalid_arg "Link.create: negative delay";
  {
    engine;
    bandwidth_bps;
    delay;
    queue;
    dst;
    busy = false;
    up = true;
    delivered = 0;
    last_arrival = { v = neg_infinity };
    free = None;
  }

let queue t = t.queue

let busy t = t.busy

let delivered t = t.delivered

(* Serve the queue head: serialize for size/bandwidth, then put the
   packet on the wire (delivery [delay] later) and start on the next
   queued packet, if any. A down link refuses to start serializing —
   administrative transitions bind at packet boundaries. *)
let rec transmit_next t =
  if not t.up then t.busy <- false
  else
    match t.queue.Queue_disc.dequeue () with
    | None -> t.busy <- false
    | Some packet ->
    t.busy <- true;
    let tx_time =
      Sim.Units.transmission_time ~size_bytes:packet.Packet.size_bytes
        ~bandwidth_bps:t.bandwidth_bps
    in
    let d =
      match t.free with
      | Some d ->
        t.free <- d.next_free;
        d.next_free <- None;
        d.packet <- packet;
        d.in_flight <- false;
        d
      | None ->
        let d = { packet; in_flight = false; fire = ignore; next_free = None } in
        d.fire <- (fun () -> fire_delivery t d);
        d
    in
    Sim.Engine.schedule_unit t.engine ~delay:tx_time d.fire

and fire_delivery t d =
  if not d.in_flight then begin
    d.in_flight <- true;
    (* Open-coded [Float.max]: a function call would box per packet.
       Neither operand is ever NaN. *)
    let exit = Sim.Engine.now t.engine +. t.delay in
    let at = if exit > t.last_arrival.v then exit else t.last_arrival.v in
    t.last_arrival.v <- at;
    Sim.Engine.schedule_unit_at t.engine ~time:at d.fire;
    transmit_next t
  end
  else begin
    let packet = d.packet in
    d.next_free <- t.free;
    t.free <- Some d;
    t.delivered <- t.delivered + 1;
    t.dst packet
  end

let send t packet =
  if t.queue.Queue_disc.enqueue packet && not t.busy then transmit_next t

let is_up t = t.up

let set_up t up =
  if t.up <> up then begin
    t.up <- up;
    if up && not t.busy then transmit_next t
  end

(* Rate and delay changes bind at packet boundaries, like [set_up]: the
   serialization time of the packet currently on the interface was
   computed when it started, so it finishes at the old rate; [t.delay]
   is read the moment a packet leaves the interface, so a delay change
   applies from the next wire entry on. Neither setter reschedules
   anything, which keeps the setters O(1) and the event stream of an
   unchanged link byte-identical. *)

let rate_bps t = t.bandwidth_bps

let delay t = t.delay

let set_rate t bandwidth_bps =
  if bandwidth_bps <= 0.0 then invalid_arg "Link.set_rate: bandwidth <= 0";
  t.bandwidth_bps <- bandwidth_bps

let set_delay t delay =
  if delay < 0.0 then invalid_arg "Link.set_delay: negative delay";
  t.delay <- delay
