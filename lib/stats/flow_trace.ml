type t = {
  sends : Series.t;
  retransmissions : Series.t;
  acks : Series.t;
  una : Series.t;
  cwnd : Series.t;
  (* Highest cumulative ACK recorded into [una]; tracked as an int so
     the per-ack monotonicity test allocates nothing (Series.last
     builds an option per call). *)
  mutable last_una : int;
  mutable recovery_entries : float list;
  mutable recovery_exits : float list;
  mutable timeouts : float list;
}

let attach agent =
  let t =
    {
      sends = Series.create ();
      retransmissions = Series.create ();
      acks = Series.create ();
      una = Series.create ();
      cwnd = Series.create ();
      last_una = min_int;
      recovery_entries = [];
      recovery_exits = [];
      timeouts = [];
    }
  in
  let base = agent.Tcp.Agent.base in
  Tcp.Sender_common.on_send base (fun ~time ~seq ~retx ->
      Series.add t.sends ~time ~value:(float_of_int seq);
      if retx then Series.add t.retransmissions ~time ~value:(float_of_int seq));
  Tcp.Sender_common.on_ack base (fun ~time ~ackno ->
      Series.add t.acks ~time ~value:(float_of_int ackno);
      Series.add t.cwnd ~time ~value:(Tcp.Sender_common.cwnd base);
      if ackno > t.last_una then begin
        t.last_una <- ackno;
        Series.add t.una ~time ~value:(float_of_int ackno)
      end);
  Tcp.Sender_common.on_recovery_enter base (fun ~time ->
      t.recovery_entries <- time :: t.recovery_entries);
  Tcp.Sender_common.on_recovery_exit base (fun ~time ->
      t.recovery_exits <- time :: t.recovery_exits);
  Tcp.Sender_common.on_timeout base (fun ~time ->
      t.timeouts <- time :: t.timeouts);
  t

let recovery_episodes t =
  let entries = List.rev t.recovery_entries in
  let exits = List.rev t.recovery_exits in
  let rec pair entries exits acc =
    match (entries, exits) with
    | entry :: more_entries, exit :: more_exits ->
      if exit >= entry then pair more_entries more_exits ((entry, exit) :: acc)
      else pair entries more_exits acc
    | _, _ -> List.rev acc
  in
  pair entries exits []
