(** Per-flow event recorder.

    Attaches to a sender's hooks and records the transmission and ACK
    histories as time series, plus recovery-episode and timeout
    timestamps — everything the paper's figures are drawn from. *)

type t = {
  sends : Series.t;  (** (time, seq) of every transmission *)
  retransmissions : Series.t;  (** (time, seq) of retransmissions only *)
  acks : Series.t;  (** (time, ackno), duplicates included *)
  una : Series.t;  (** (time, ackno) of cumulative progress only *)
  cwnd : Series.t;
      (** (time, cwnd in segments), sampled at every ACK event — the
          window trajectory behind statements like the paper's "bursty
          packet losses occur after cwnd reaches 16" *)
  mutable last_una : int;
      (** highest cumulative ACK recorded into [una] ([min_int] before
          the first) — lets the per-ack monotonicity check avoid
          allocating *)
  mutable recovery_entries : float list;  (** newest first *)
  mutable recovery_exits : float list;
  mutable timeouts : float list;
}

(** [attach agent] subscribes observers on the agent's sender state —
    other observers (auditors, tracers) can coexist — and returns the
    live recorder. *)
val attach : Tcp.Agent.t -> t

(** [recovery_episodes t] pairs up entry/exit times, oldest first;
    an unfinished episode is dropped. *)
val recovery_episodes : t -> (float * float) list
