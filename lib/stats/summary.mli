(** Cross-run summary statistics for campaign aggregation.

    A sweep runs the same scenario point under several seeds; each
    group of per-seed measurements is collapsed into a mean, a sample
    standard deviation and a 95% confidence half-width (Student's t
    for small samples), which is what the campaign reporters print. *)

type t = {
  n : int;  (** sample count *)
  mean : float;  (** [nan] when [n = 0] *)
  stddev : float;  (** sample (n-1) standard deviation; 0 when [n < 2] *)
  ci95 : float;
      (** 95% confidence half-width of the mean, [t·s/√n]; 0 when
          [n < 2] *)
}

(** [of_list values] summarises the sample. *)
val of_list : float list -> t

(** [t_critical df] is the two-sided 95% Student-t critical value for
    [df] degrees of freedom (normal quantile beyond the table), shared
    with the streaming {!Welford} accumulator. *)
val t_critical : int -> float

(** [to_string ?scale t] renders ["mean +- ci95"] with both values
    multiplied by [scale] (default 1), e.g. [scale:0.001] for
    Kbps-from-bps columns. *)
val to_string : ?scale:float -> t -> string
