type t = { n : int; mean : float; stddev : float; ci95 : float }

(* Two-sided 95% Student's t critical values by degrees of freedom;
   beyond the table the normal quantile is close enough. *)
let t_critical df =
  let table =
    [|
      12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228;
      2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086;
      2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045; 2.042;
    |]
  in
  if df < 1 then 0.0
  else if df <= Array.length table then table.(df - 1)
  else 1.96

let of_list values =
  let n = List.length values in
  if n = 0 then { n = 0; mean = nan; stddev = 0.0; ci95 = 0.0 }
  else begin
    let nf = float_of_int n in
    let mean = List.fold_left ( +. ) 0.0 values /. nf in
    if n < 2 then { n; mean; stddev = 0.0; ci95 = 0.0 }
    else begin
      let sum_sq =
        List.fold_left (fun acc v -> acc +. ((v -. mean) ** 2.0)) 0.0 values
      in
      let stddev = sqrt (sum_sq /. (nf -. 1.0)) in
      let ci95 = t_critical (n - 1) *. stddev /. sqrt nf in
      { n; mean; stddev; ci95 }
    end
  end

let to_string ?(scale = 1.0) t =
  if t.n = 0 then "-"
  else if t.n < 2 then Printf.sprintf "%.1f" (t.mean *. scale)
  else Printf.sprintf "%.1f +- %.1f" (t.mean *. scale) (t.ci95 *. scale)
