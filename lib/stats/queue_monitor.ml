let sample ~engine ~probe ~interval ~until =
  if interval <= 0.0 then invalid_arg "Queue_monitor.sample: interval <= 0";
  let series = Series.create () in
  let rec tick () =
    let now = Sim.Engine.now engine in
    Series.add series ~time:now ~value:(float_of_int (probe ()));
    if now +. interval <= until then
      Sim.Engine.schedule_unit engine ~delay:interval tick
  in
  Sim.Engine.schedule_unit engine ~delay:0.0 tick;
  series
