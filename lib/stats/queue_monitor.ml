let sample ~engine ~probe ~interval ~until =
  if interval <= 0.0 then invalid_arg "Queue_monitor.sample: interval <= 0";
  let series = Series.create () in
  let rec tick () =
    let now = Sim.Engine.now engine in
    Series.add series ~time:now ~value:(float_of_int (probe ()));
    if now +. interval <= until then
      ignore (Sim.Engine.schedule_after engine ~delay:interval tick
               : Sim.Engine.handle)
  in
  ignore (Sim.Engine.schedule_after engine ~delay:0.0 tick : Sim.Engine.handle);
  series
