(** Streaming mean/variance (Welford's online algorithm).

    The many-flow runs summarise tens of thousands of per-flow
    measurements; collecting them into lists for {!Summary.of_list}
    would cost O(samples) memory per metric. A [Welford.t] holds the
    running count, mean and squared-deviation sum in O(1) space, is
    numerically stable for long streams, and matches [Summary.of_list]
    on the same sample (up to float rounding of the two algorithms). *)

type t

(** [create ()] is an empty accumulator. *)
val create : unit -> t

(** [add t x] folds in one observation. NaN observations are counted
    and poison the moments, as they would a list summary. *)
val add : t -> float -> unit

(** [count t] is the number of observations folded in. *)
val count : t -> int

(** [mean t] is the running mean; [nan] when empty. *)
val mean : t -> float

(** [stddev t] is the sample (n-1) standard deviation; [0.] when
    [count t < 2]. *)
val stddev : t -> float

(** [min t] / [max t]; [nan] when empty. *)
val min : t -> float

val max : t -> float

(** [summary t] collapses the accumulator into the record the campaign
    reporters print, with the same Student-t confidence half-width as
    {!Summary.of_list}. *)
val summary : t -> Summary.t

(** [merge a b] is an accumulator equivalent to having folded both
    streams into one (Chan's parallel update). *)
val merge : t -> t -> t
