(** Terminal scatter plots, for the sequence-number-vs-time figures.

    Multiple series share one canvas; each series draws with its own
    glyph, later series overwriting earlier ones where they collide. *)

type spec = { label : string; glyph : char; points : (float * float) list }

(** [render ~width ~height ~x_label ~y_label specs] draws the series
    onto a [width]×[height] character canvas with axes, ranges inferred
    from the data, and a legend line per series. Returns the multi-line
    string ready for printing. Empty input yields a note instead. *)
val render :
  width:int ->
  height:int ->
  x_label:string ->
  y_label:string ->
  spec list ->
  string
