(** Fixed-size reservoir sampling for streaming quantiles.

    Exact quantiles over a 50k-flow run would mean retaining every
    observation; a reservoir (Vitter's algorithm R) keeps a uniform
    random sample of bounded size instead, giving quantile estimates
    whose error shrinks with the reservoir, in O(capacity) memory.
    Randomness comes from an explicit {!Sim.Rng.t} stream, so a run's
    quantiles are as reproducible as the run itself. *)

type t

(** [create ~capacity ~rng ()] is an empty reservoir retaining at most
    [capacity] observations.

    @raise Invalid_argument when [capacity < 1]. *)
val create : capacity:int -> rng:Sim.Rng.t -> unit -> t

(** [add t x] offers one observation; once [capacity] observations have
    been seen, each subsequent one replaces a random slot with
    probability [capacity/seen]. *)
val add : t -> float -> unit

(** [count t] is the number of observations offered (not retained). *)
val count : t -> int

(** [quantile t q] estimates the [q]-quantile ([0 <= q <= 1]) from the
    retained sample by nearest-rank on the sorted reservoir; [nan] when
    empty.

    @raise Invalid_argument when [q] is outside [0, 1]. *)
val quantile : t -> float -> float

(** [quantiles t qs] sorts once and reads each rank — use this for a
    percentile table. *)
val quantiles : t -> float list -> float list
