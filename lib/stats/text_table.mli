(** Aligned plain-text tables for experiment reports. *)

(** [render ~header rows] lays the table out with column widths fitted
    to content, a separator under the header, and two-space gutters.
    Rows shorter than the header are padded with empty cells. *)
val render : header:string list -> string list list -> string
