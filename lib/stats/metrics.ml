let effective_throughput_bps trace ~mss ~t0 ~t1 =
  if t1 <= t0 then 0.0
  else begin
    let una = trace.Flow_trace.una in
    let at time = Option.value ~default:(-1.0) (Series.value_at una ~time) in
    let delivered_segments = at t1 -. at t0 in
    if delivered_segments <= 0.0 then 0.0
    else delivered_segments *. float_of_int (8 * mss) /. (t1 -. t0)
  end

let recovery_completion_time trace ~target_seq =
  Series.first_time_at_or_above trace.Flow_trace.una
    ~value:(float_of_int target_seq)

let loss_rate ~drops ~transmissions =
  if transmissions <= 0 then 0.0
  else float_of_int drops /. float_of_int transmissions

let transmissions counters =
  counters.Tcp.Counters.segments_sent + counters.Tcp.Counters.retransmits

let jain_index allocations =
  match allocations with
  | [] -> 1.0
  | _ ->
    let n = float_of_int (List.length allocations) in
    let sum = List.fold_left ( +. ) 0.0 allocations in
    let sum_sq = List.fold_left (fun acc x -> acc +. (x *. x)) 0.0 allocations in
    if sum_sq = 0.0 then 1.0 else sum *. sum /. (n *. sum_sq)

let mean values =
  match values with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0.0 values /. float_of_int (List.length values)

let coefficient_of_variation values =
  match values with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean values in
    if m = 0.0 then 0.0
    else begin
      let variance =
        mean (List.map (fun x -> (x -. m) *. (x -. m)) values)
      in
      sqrt variance /. m
    end
