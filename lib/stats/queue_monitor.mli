(** Periodic sampling of a queue-occupancy (or any integer-valued)
    probe into a time series — the data behind queue-dynamics plots and
    the oscillation statistics of the synchronization experiment. *)

(** [sample ~engine ~probe ~interval ~until] schedules probe reads every
    [interval] seconds from the current time up to and including
    [until], returning the series that will fill as the simulation
    runs.

    @raise Invalid_argument if [interval <= 0]. *)
val sample :
  engine:Sim.Engine.t ->
  probe:(unit -> int) ->
  interval:float ->
  until:float ->
  Series.t
