type spec = { label : string; glyph : char; points : (float * float) list }

let bounds specs =
  let fold f init =
    List.fold_left
      (fun acc spec ->
        List.fold_left (fun acc point -> f acc point) acc spec.points)
      init specs
  in
  let x_min = fold (fun acc (x, _) -> Float.min acc x) infinity in
  let x_max = fold (fun acc (x, _) -> Float.max acc x) neg_infinity in
  let y_min = fold (fun acc (_, y) -> Float.min acc y) infinity in
  let y_max = fold (fun acc (_, y) -> Float.max acc y) neg_infinity in
  (x_min, x_max, y_min, y_max)

let render ~width ~height ~x_label ~y_label specs =
  let populated = List.filter (fun spec -> spec.points <> []) specs in
  if populated = [] then "(no data to plot)\n"
  else begin
    let x_min, x_max, y_min, y_max = bounds populated in
    let x_span = if x_max > x_min then x_max -. x_min else 1.0 in
    let y_span = if y_max > y_min then y_max -. y_min else 1.0 in
    let canvas = Array.make_matrix height width ' ' in
    let place (x, y) glyph =
      let column =
        int_of_float ((x -. x_min) /. x_span *. float_of_int (width - 1))
      in
      let row =
        height - 1
        - int_of_float ((y -. y_min) /. y_span *. float_of_int (height - 1))
      in
      if row >= 0 && row < height && column >= 0 && column < width then
        canvas.(row).(column) <- glyph
    in
    List.iter
      (fun spec -> List.iter (fun point -> place point spec.glyph) spec.points)
      populated;
    let buffer = Buffer.create (width * height * 2) in
    Buffer.add_string buffer
      (Printf.sprintf "%s  (%.4g .. %.4g)\n" y_label y_min y_max);
    Array.iter
      (fun row ->
        Buffer.add_string buffer "  |";
        Array.iter (Buffer.add_char buffer) row;
        Buffer.add_char buffer '\n')
      canvas;
    Buffer.add_string buffer "  +";
    Buffer.add_string buffer (String.make width '-');
    Buffer.add_char buffer '\n';
    Buffer.add_string buffer
      (Printf.sprintf "   %s  (%.4g .. %.4g)\n" x_label x_min x_max);
    List.iter
      (fun spec ->
        Buffer.add_string buffer
          (Printf.sprintf "   %c = %s\n" spec.glyph spec.label))
      populated;
    Buffer.contents buffer
  end
