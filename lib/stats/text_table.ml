let render ~header rows =
  let columns = List.length header in
  let pad row =
    let missing = columns - List.length row in
    if missing > 0 then row @ List.init missing (fun _ -> "") else row
  in
  let rows = List.map pad rows in
  let widths = Array.of_list (List.map String.length header) in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if i < columns then widths.(i) <- max widths.(i) (String.length cell))
        row)
    rows;
  let render_row row =
    String.concat "  "
      (List.mapi
         (fun i cell ->
           cell ^ String.make (widths.(i) - String.length cell) ' ')
         row)
  in
  let separator =
    String.concat "  "
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer (render_row header);
  Buffer.add_char buffer '\n';
  Buffer.add_string buffer separator;
  Buffer.add_char buffer '\n';
  List.iter
    (fun row ->
      Buffer.add_string buffer (render_row row);
      Buffer.add_char buffer '\n')
    rows;
  Buffer.contents buffer
