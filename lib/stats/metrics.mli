(** Performance metrics computed from flow traces.

    "Effective throughput" follows the paper's usage: the rate at which
    data is cumulatively acknowledged at the sender — i.e. goodput, not
    counting retransmissions of data the receiver already holds. *)

(** [effective_throughput_bps trace ~mss ~t0 ~t1] is the goodput in bits
    per second over the window [\[t0, t1\]], from the cumulative-ACK
    trajectory. Zero when the window is empty or degenerate. *)
val effective_throughput_bps :
  Flow_trace.t -> mss:int -> t0:float -> t1:float -> float

(** [recovery_completion_time trace ~target_seq] is the earliest time
    the cumulative ACK reaches [target_seq] — when every segment of a
    loss window has been repaired. *)
val recovery_completion_time : Flow_trace.t -> target_seq:int -> float option

(** [loss_rate ~drops ~transmissions] is the fraction of this flow's
    transmissions that were dropped (Table 5's "packet loss rate"). *)
val loss_rate : drops:int -> transmissions:int -> float

(** [transmissions counters] is first transmissions plus retransmissions. *)
val transmissions : Tcp.Counters.t -> int

(** [jain_index allocations] is Jain's fairness index
    [(Σx)² / (n·Σx²)] — 1.0 when all [n] allocations are equal, 1/n
    when one flow takes everything. Empty input yields 1.0. *)
val jain_index : float list -> float

(** [mean values] is the arithmetic mean ([nan] on empty input). *)
val mean : float list -> float

(** [coefficient_of_variation values] is stddev/mean, a scale-free
    oscillation measure used for queue-length traces. *)
val coefficient_of_variation : float list -> float
