type t = {
  sample : float array;
  rng : Sim.Rng.t;
  mutable seen : int;
  mutable sorted : bool;  (* sample.[0..min seen cap) is sorted *)
}

let create ~capacity ~rng () =
  if capacity < 1 then invalid_arg "Reservoir.create: capacity < 1";
  { sample = Array.make capacity 0.0; rng; seen = 0; sorted = true }

let add t x =
  let capacity = Array.length t.sample in
  if t.seen < capacity then begin
    t.sample.(t.seen) <- x;
    t.seen <- t.seen + 1;
    t.sorted <- false
  end
  else begin
    t.seen <- t.seen + 1;
    (* Algorithm R: the new observation survives with probability
       capacity/seen, landing in a uniformly chosen slot. Drawing the
       slot index first keeps the rng consumption one draw per
       observation, which pins the stream layout. *)
    let slot = Sim.Rng.int t.rng t.seen in
    if slot < capacity then begin
      t.sample.(slot) <- x;
      t.sorted <- false
    end
  end

let count t = t.seen

let retained t = Stdlib.min t.seen (Array.length t.sample)

let ensure_sorted t =
  if not t.sorted then begin
    let n = retained t in
    let prefix = Array.sub t.sample 0 n in
    Array.sort compare prefix;
    Array.blit prefix 0 t.sample 0 n;
    t.sorted <- true
  end

let rank_of n q =
  let rank = int_of_float (ceil (q *. float_of_int n)) - 1 in
  Stdlib.max 0 (Stdlib.min (n - 1) rank)

let quantile t q =
  if q < 0.0 || q > 1.0 then invalid_arg "Reservoir.quantile: q outside [0, 1]";
  let n = retained t in
  if n = 0 then nan
  else begin
    ensure_sorted t;
    t.sample.(rank_of n q)
  end

let quantiles t qs = List.map (quantile t) qs
