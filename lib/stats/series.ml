type t = {
  mutable times : float array;
  mutable values : float array;
  mutable size : int;
}

let create () = { times = [||]; values = [||]; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let grow t =
  let capacity = max 64 (2 * Array.length t.times) in
  let times = Array.make capacity 0.0 in
  let values = Array.make capacity 0.0 in
  Array.blit t.times 0 times 0 t.size;
  Array.blit t.values 0 values 0 t.size;
  t.times <- times;
  t.values <- values

let add t ~time ~value =
  if t.size > 0 && time < t.times.(t.size - 1) then
    invalid_arg "Series.add: time going backwards";
  if t.size = Array.length t.times then grow t;
  t.times.(t.size) <- time;
  t.values.(t.size) <- value;
  t.size <- t.size + 1

let to_list t =
  List.init t.size (fun i -> (t.times.(i), t.values.(i)))

(* Index of the latest sample with time <= [time], or -1. *)
let index_at t ~time =
  let rec bisect lo hi =
    (* Invariant: times.(lo) <= time < times.(hi) conceptually, with
       sentinels lo = -1 and hi = size. *)
    if hi - lo <= 1 then lo
    else
      let mid = (lo + hi) / 2 in
      if t.times.(mid) <= time then bisect mid hi else bisect lo mid
  in
  if t.size = 0 || time < t.times.(0) then -1 else bisect 0 t.size

let value_at t ~time =
  let i = index_at t ~time in
  if i < 0 then None else Some t.values.(i)

let last t =
  if t.size = 0 then None
  else Some (t.times.(t.size - 1), t.values.(t.size - 1))

let first_time_at_or_above t ~value =
  let rec scan i =
    if i >= t.size then None
    else if t.values.(i) >= value then Some t.times.(i)
    else scan (i + 1)
  in
  scan 0

let between t ~t0 ~t1 =
  let rec collect i acc =
    if i < 0 || t.times.(i) < t0 then acc
    else collect (i - 1) ((t.times.(i), t.values.(i)) :: acc)
  in
  collect (index_at t ~time:t1) []

let to_csv t =
  let buffer = Buffer.create (16 * t.size) in
  Buffer.add_string buffer "time,value\n";
  for i = 0 to t.size - 1 do
    Buffer.add_string buffer (Printf.sprintf "%.6f,%g\n" t.times.(i) t.values.(i))
  done;
  Buffer.contents buffer
