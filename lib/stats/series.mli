(** Append-only time series of [(time, value)] samples.

    Backs the sequence-number-vs-time plots (paper Figure 6) and the
    cumulative-ACK trajectories the throughput metrics are computed
    from. Samples must be appended in non-decreasing time order, which
    is what a simulation naturally produces. *)

type t

(** [create ()] is an empty series. *)
val create : unit -> t

(** [add t ~time ~value] appends a sample.

    @raise Invalid_argument if [time] precedes the last sample. *)
val add : t -> time:float -> value:float -> unit

(** [length t] is the sample count. *)
val length : t -> int

(** [is_empty t] is [length t = 0]. *)
val is_empty : t -> bool

(** [to_list t] returns samples oldest first. *)
val to_list : t -> (float * float) list

(** [value_at t ~time] is the value of the latest sample at or before
    [time], or [None] if the series starts later. *)
val value_at : t -> time:float -> float option

(** [last t] is the most recent sample. *)
val last : t -> (float * float) option

(** [first_time_at_or_above t ~value] is the earliest sample time whose
    value reaches [value], if any — e.g. "when did the cumulative ACK
    pass the loss window". *)
val first_time_at_or_above : t -> value:float -> float option

(** [between t ~t0 ~t1] lists samples with [t0 <= time <= t1]. *)
val between : t -> t0:float -> t1:float -> (float * float) list

(** [to_csv t] renders "time,value" lines. *)
val to_csv : t -> string
