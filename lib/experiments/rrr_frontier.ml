type point = {
  level : float;
  aggregate_bps : float;
  jain : float;
  rrr_bps : float;
  reno_bps : float;
  share : float;
}

type outcome = { duration : float; loss : float; points : point list }

let duration = 30.0

let loss = 0.01

let homogeneous_flows = 4

let reno_competitors = 3

let params ~level = { Tcp.Params.default with rwnd = 20; rrr_level = level }

let goodputs t n =
  List.init n (fun flow ->
      Stats.Metrics.effective_throughput_bps
        t.Scenario.results.(flow).Scenario.trace
        ~mss:Tcp.Params.default.Tcp.Params.mss ~t0:2.0 ~t1:duration)

(* Intra-protocol: a pod of RRR flows at the same level — aggregate
   throughput and Jain fairness across the pod. *)
let run_homogeneous ~seed ~level =
  let t =
    Scenario.run
      (Scenario.make
         ~topology:
           (Scenario.dumbbell
              (Net.Dumbbell.paper_config ~flows:homogeneous_flows))
         ~flows:
           (List.init homogeneous_flows (fun flow ->
                {
                  (Scenario.flow Core.Variant.Rrr) with
                  Scenario.start = 0.2 *. float_of_int flow;
                }))
         ~params:(params ~level) ~seed ~duration ~uniform_loss:loss ())
  in
  let rates = goodputs t homogeneous_flows in
  (List.fold_left ( +. ) 0.0 rates, Stats.Metrics.jain_index rates)

(* Inter-protocol: one RRR flow among Renos — how much more (or less)
   than a fair share does its gentler backoff take? *)
let run_mixed ~seed ~level =
  let flows = 1 + reno_competitors in
  let t =
    Scenario.run
      (Scenario.make
         ~topology:(Scenario.dumbbell (Net.Dumbbell.paper_config ~flows))
         ~flows:
           (List.init flows (fun flow ->
                let variant =
                  if flow = 0 then Core.Variant.Rrr else Core.Variant.Reno
                in
                {
                  (Scenario.flow variant) with
                  Scenario.start = 0.2 *. float_of_int flow;
                }))
         ~params:(params ~level) ~seed ~duration ~uniform_loss:loss ())
  in
  match goodputs t flows with
  | rrr :: renos -> (rrr, Stats.Metrics.mean renos)
  | [] -> assert false

let run ?(levels = [ 0.1; 0.3; 0.5; 0.7; 0.9 ]) ?(seeds = [ 7L; 29L ]) () =
  let mean = Stats.Metrics.mean in
  let points =
    List.map
      (fun level ->
        let pods = List.map (fun seed -> run_homogeneous ~seed ~level) seeds in
        let mixed = List.map (fun seed -> run_mixed ~seed ~level) seeds in
        let rrr_bps = mean (List.map fst mixed)
        and reno_bps = mean (List.map snd mixed) in
        {
          level;
          aggregate_bps = mean (List.map fst pods);
          jain = mean (List.map snd pods);
          rrr_bps;
          reno_bps;
          share = rrr_bps /. reno_bps;
        })
      levels
  in
  { duration; loss; points }

let report outcome =
  let header =
    [
      "level";
      "4-rrr aggregate (Kbps)";
      "Jain";
      "rrr among renos (Kbps)";
      "reno mean (Kbps)";
      "rrr/reno";
    ]
  in
  let rows =
    List.map
      (fun p ->
        [
          Printf.sprintf "%.1f" p.level;
          Printf.sprintf "%.1f" (p.aggregate_bps /. 1000.0);
          Printf.sprintf "%.3f" p.jain;
          Printf.sprintf "%.1f" (p.rrr_bps /. 1000.0);
          Printf.sprintf "%.1f" (p.reno_bps /. 1000.0);
          Printf.sprintf "%.2f" p.share;
        ])
      outcome.points
  in
  Printf.sprintf
    "RRR fairness-vs-throughput frontier across the backoff level\n\
     each congestion event multiplies the window by 1 - level (0.5 = Reno)\n\
     left: a pod of 4 RRR flows; right: one RRR among %d Renos (%.0f%% loss)\n\n\
     %s"
    reno_competitors (100.0 *. outcome.loss)
    (Stats.Text_table.render ~header rows)
