(** RRR's fairness-vs-throughput frontier across its backoff level
    (ROADMAP item 3 remaining depth).

    RRR (relative rate reduction, arxiv 1707.07218) parameterizes the
    multiplicative decrease: each congestion event scales the window by
    [1 - level], so [0.5] is the Reno half-cut and smaller levels back
    off more gently. The model predicts steady-state throughput
    [sqrt((2-l)/(2*l*p))] — monotone in gentleness — but gentleness is
    exactly what competing Reno-style flows pay for. This experiment
    quantifies both sides of that trade per level: aggregate throughput
    and Jain fairness inside a homogeneous RRR pod, and the
    goodput share one RRR flow takes against Reno competitors. *)

type point = {
  level : float;  (** the backoff level l, [Tcp.Params.rrr_level] *)
  aggregate_bps : float;  (** summed goodput of the 4-flow RRR pod *)
  jain : float;  (** Jain fairness index inside the pod *)
  rrr_bps : float;  (** the lone RRR flow's goodput among Renos *)
  reno_bps : float;  (** its Reno competitors' mean goodput *)
  share : float;  (** rrr_bps / reno_bps; 1.0 = perfectly fair *)
}

type outcome = { duration : float; loss : float; points : point list }

(** [run ()] sweeps levels 0.1, 0.3, 0.5, 0.7 and 0.9. *)
val run : ?levels:float list -> ?seeds:int64 list -> unit -> outcome

(** [report outcome] renders the frontier. *)
val report : outcome -> string
