(** §1's Vegas decomposition claim (Hengartner, Bolliger & Gross — the
    paper's reference [8]): "the performance gain of TCP Vegas over TCP
    Reno is due mainly to TCP Vegas' new techniques for slow-start and
    congestion recovery … not the innovative congestion-avoidance
    mechanism."

    The Vegas implementation exposes its three mechanisms independently,
    so the claim is directly testable: a 3-loss burst recovery scenario
    is run for Reno, full Vegas, Vegas with only the recovery mechanism
    (fine-grained retransmission), and Vegas with only the
    congestion-avoidance mechanism. If [8] is right — and the paper's
    premise holds — the recovery-only configuration captures most of
    full Vegas' gain over Reno, while the avoidance-only one behaves
    like Reno. *)

type row = {
  label : string;
  throughput_bps : float;  (** over the recovery window *)
  recovery_seconds : float option;
  timeouts : int;
}

type outcome = { drops : int; rows : row list }

(** [run ()] executes the four configurations on the Figure 5-style
    burst scenario. *)
val run : ?drops:int -> ?seed:int64 -> unit -> outcome

(** [report outcome] renders the decomposition. *)
val report : outcome -> string
