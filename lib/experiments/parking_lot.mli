(** Parking-lot (multi-bottleneck) experiment (beyond the paper).

    Chains k bottleneck links with {!Net.Topology.parking_lot} and runs
    long flows end to end against per-hop cross traffic — the first
    {!Scenario} instance on a general graph topology. Long flows pay
    every hop's loss rate, so their goodput falls below the single-hop
    flows' share as hops grow. *)

type row = {
  variant : Core.Variant.t;
  hops : int;
  long_goodput_bps : float;  (** mean over the long flows *)
  cross_goodput_bps : float;  (** mean over all cross flows *)
  ratio : float;  (** long over cross *)
  long_drops : int;
  cross_drops : int;
}

type outcome = { duration : float; rows : row list }

(** [topology ~hops] is the {!Scenario.topology} value for a [hops]-
    bottleneck parking lot carrying 2 long and 2-per-hop cross flows,
    with the runner's knobs attached to the first bottleneck. *)
val topology : hops:int -> Scenario.topology

(** [run ()] measures each variant on each hop count. Defaults:
    NewReno, SACK and RR on 1 and 3 hops, 30 s, seed 7. *)
val run :
  ?variants:Core.Variant.t list ->
  ?hop_counts:int list ->
  ?seed:int64 ->
  ?duration:float ->
  unit ->
  outcome

val report : outcome -> string
