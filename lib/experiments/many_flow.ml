(* Many-flow scale scenario: one Tcp.Flock over an aggregate graph
   topology, summarised with streaming statistics.

   The per-flow Scenario machinery allocates agents, receivers and
   trace series per flow — fine for the paper's 1..20 flows, hopeless
   for 50 000. This scenario instead drives a flat-array flock through
   a six-link aggregate dumbbell (every flow shares the same src and
   dst hosts), so the whole run is O(flows) memory: flock slots, the
   topology's flow tables, a Welford accumulator and one bounded
   reservoir for quantiles. *)

type outcome = {
  flows : int;
  duration : float;
  bottleneck_bps : float;
  aggregate_goodput_bps : float;
  goodput : Stats.Welford.t;  (* per-flow goodput stream, bps *)
  quantiles : (float * float) list;  (* (q, goodput bps), ascending q *)
  jain : float;
  delivered_segments : int;
  retransmits : int;
  timeouts : int;
  drops : int;
}

(* The aggregate dumbbell: src -> r1 -> r2 -> dst with a reverse path
   for ACKs. Access and exit links run at [access_factor] times the
   bottleneck so only the two trunks shape the traffic. *)
let spec ~bottleneck_bps ~buffer =
  let open Net.Topology in
  let fast = 4.0 *. bottleneck_bps in
  let side ~from_node ~to_node =
    {
      from_node;
      to_node;
      bandwidth_bps = fast;
      delay = 0.001;
      queue = Droptail { capacity = 65_536 };
    }
  in
  let trunk ~from_node ~to_node =
    {
      from_node;
      to_node;
      bandwidth_bps = bottleneck_bps;
      delay = 0.010;
      queue = Droptail { capacity = buffer };
    }
  in
  {
    nodes =
      [
        { node = "src"; routes = []; default_route = Some "acc_fwd" };
        {
          node = "r1";
          routes = [ { target = "src"; via = "exit_rev" } ];
          default_route = Some "gateway";
        };
        {
          node = "r2";
          routes = [ { target = "dst"; via = "exit_fwd" } ];
          default_route = Some "reverse_gateway";
        };
        { node = "dst"; routes = []; default_route = Some "acc_rev" };
      ];
    links =
      [
        ("acc_fwd", side ~from_node:"src" ~to_node:"r1");
        ("gateway", trunk ~from_node:"r1" ~to_node:"r2");
        ("exit_fwd", side ~from_node:"r2" ~to_node:"dst");
        ("acc_rev", side ~from_node:"dst" ~to_node:"r2");
        ("reverse_gateway", trunk ~from_node:"r2" ~to_node:"r1");
        ("exit_rev", side ~from_node:"r1" ~to_node:"src");
      ];
  }

let quantile_points = [ 0.10; 0.50; 0.90; 0.99 ]

let run ?(flows = 50_000) ?(duration = 60.0) ?(seed = 7L)
    ?(bottleneck_bps = Sim.Units.mbps 100.0) ?(buffer = 1024)
    ?(stagger = 1.0) ?(params = { Tcp.Params.default with rwnd = 20 }) () =
  if flows < 1 then invalid_arg "Many_flow.run: flows < 1";
  if duration <= 0.0 then invalid_arg "Many_flow.run: duration <= 0";
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create seed in
  let topo =
    Net.Topology.create ~engine
      ~spec:(spec ~bottleneck_bps ~buffer)
      ~rng
      ~flows:(Array.make flows { Net.Topology.src = "src"; dst = "dst" })
      ()
  in
  let flock =
    Tcp.Flock.create ~engine ~params ~flows
      ~inject_data:(fun ~flow packet ->
        Net.Topology.inject_data topo ~flow packet)
      ~inject_ack:(fun ~flow packet -> Net.Topology.inject_ack topo ~flow packet)
      ()
  in
  (* One shared dispatch closure for the whole flock, not a handler per
     flow — the point of the flat path. *)
  Net.Topology.set_data_dispatch topo (Tcp.Flock.deliver_data flock);
  Net.Topology.set_ack_dispatch topo (Tcp.Flock.deliver_ack flock);
  Tcp.Flock.start flock ~stagger ();
  Sim.Engine.run_until engine ~time:duration;
  let welford = Stats.Welford.create () in
  let reservoir =
    Stats.Reservoir.create ~capacity:2048 ~rng:(Sim.Rng.split rng) ()
  in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for flow = 0 to flows - 1 do
    let goodput = Tcp.Flock.goodput_bps flock flow ~duration in
    Stats.Welford.add welford goodput;
    Stats.Reservoir.add reservoir goodput;
    sum := !sum +. goodput;
    sumsq := !sumsq +. (goodput *. goodput)
  done;
  let jain =
    if !sumsq = 0.0 then 1.0
    else !sum *. !sum /. (float_of_int flows *. !sumsq)
  in
  {
    flows;
    duration;
    bottleneck_bps;
    aggregate_goodput_bps = !sum;
    goodput = welford;
    quantiles =
      List.combine quantile_points
        (Stats.Reservoir.quantiles reservoir quantile_points);
    jain;
    delivered_segments = Tcp.Flock.total_acked_segments flock;
    retransmits = Tcp.Flock.total_retransmits flock;
    timeouts = Tcp.Flock.total_timeouts flock;
    drops = Net.Topology.total_drops topo;
  }

let report outcome =
  let buffer = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buffer) fmt in
  add "many-flow: %d flocked NewReno-shaped flows, %.0f Mbps bottleneck, %g s\n"
    outcome.flows
    (outcome.bottleneck_bps /. 1e6)
    outcome.duration;
  add "  aggregate goodput : %.2f Mbps (%.1f%% of bottleneck)\n"
    (outcome.aggregate_goodput_bps /. 1e6)
    (100.0 *. outcome.aggregate_goodput_bps /. outcome.bottleneck_bps);
  add "  per-flow goodput  : mean %.2f Kbps, stddev %.2f Kbps\n"
    (Stats.Welford.mean outcome.goodput /. 1e3)
    (Stats.Welford.stddev outcome.goodput /. 1e3);
  add "  quantiles (Kbps)  : %s\n"
    (String.concat ", "
       (List.map
          (fun (q, v) -> Printf.sprintf "p%.0f %.2f" (100.0 *. q) (v /. 1e3))
          outcome.quantiles));
  add "  fairness (Jain)   : %.4f\n" outcome.jain;
  add "  delivered %d segment(s), %d retransmit(s), %d timeout(s), %d drop(s)\n"
    outcome.delivered_segments outcome.retransmits outcome.timeouts
    outcome.drops;
  Buffer.contents buffer
