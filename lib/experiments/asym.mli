(** Asymmetric ACK channels (beyond the paper; ROADMAP item 4,
    PAPERS.md cs/9809066).

    Satellite and cable downlinks commonly pair a fast forward path
    with a reverse channel tens of times slower. TCP's self-clock rides
    the ACK stream: once the reverse trunk serializes ACKs slower than
    the forward trunk emits segments, the reverse queue fills, ACKs are
    dropped wholesale, and the sender's window grows in lurches driven
    by cumulative ACKs (compression) rather than a smooth clock. This
    experiment re-rates the dumbbell's reverse trunk to [1/R] of the
    forward bottleneck through the [asym:R] spec clause (ratios 1:1 →
    50:1) and extends the §2.3 ACK-loss and two-way experiments, whose
    reverse-path stress was binary. *)

type cell = {
  variant : Core.Variant.t;
  throughput_bps : float;  (** mean per-flow goodput over seeds *)
  timeouts : float;  (** total RTO expiries across flows, mean over seeds *)
  ack_drops : float;  (** reverse-gateway ACK drops, mean over seeds *)
}

type point = { ratio : float; cells : cell list }

type outcome = { duration : float; points : point list }

(** [run ()] measures New-Reno, SACK and RR across forward:reverse
    ratios 1 to 200 (the paper-path collapse point sits past 50:1,
    where even cumulative-ACK thinning can no longer cover the
    reverse-channel deficit). *)
val run :
  ?ratios:float list ->
  ?variants:Core.Variant.t list ->
  ?seeds:int64 list ->
  unit ->
  outcome

(** [report outcome] renders the comparison. *)
val report : outcome -> string
