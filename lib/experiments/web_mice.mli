(** Bulk transfer among short-flow "web mice" (beyond the paper).

    The paper's background load is persistent FTPs; real bottlenecks
    mostly carry short, bursty web transfers ({!Workload.Mice}) whose
    slow-start bursts arrive at random and keep the queue churning.
    This experiment runs one bulk flow of each variant through a
    mice-dominated bottleneck and reports both sides of the bargain:
    the bulk flow's goodput {e and} the mice's mean completion time —
    a recovery scheme that monopolizes the queue would win the first
    while inflating the second. *)

type cell = {
  variant : Core.Variant.t;  (** the bulk flow's variant *)
  throughput_bps : float;  (** mean bulk goodput over seeds *)
  timeouts : float;  (** mean bulk RTO expiries *)
  mice_finished : float;  (** mean bursts completed across all mice *)
  mice_completion : float;  (** mean burst completion time, seconds *)
}

type outcome = { mice_flows : int; cells : cell list }

(** [run ()] measures each variant as the bulk flow against
    [mice_flows] (default 2) New-Reno mice sources. *)
val run :
  ?mice_flows:int ->
  ?variants:Core.Variant.t list ->
  ?seeds:int64 list ->
  unit ->
  outcome

(** [report outcome] renders the comparison. *)
val report : outcome -> string
