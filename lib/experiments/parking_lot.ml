(* Parking-lot topology experiment: long flows crossing k bottlenecks
   against per-hop cross traffic.

   The classic multi-bottleneck result: a flow traversing every hop
   pays the loss rate of each bottleneck and so falls below the
   single-hop cross flows' share — increasingly so with more hops.
   This is the first experiment to use a general {!Net.Topology} graph
   through {!Scenario} rather than the paper's dumbbell. *)

type row = {
  variant : Core.Variant.t;
  hops : int;
  long_goodput_bps : float;  (* mean over the long flows *)
  cross_goodput_bps : float;  (* mean over all cross flows *)
  ratio : float;  (* long / cross *)
  long_drops : int;
  cross_drops : int;
}

type outcome = { duration : float; rows : row list }

let long_flows = 2

let cross_per_hop = 2

let topology ~hops =
  let config =
    {
      (Net.Dumbbell.paper_config ~flows:(long_flows + (hops * cross_per_hop))) with
      Net.Dumbbell.bottleneck_delay = Sim.Units.ms 16.0;
    }
  in
  let spec, endpoints =
    Net.Topology.parking_lot ~hops ~long_flows ~cross_per_hop ~config ()
  in
  Scenario.graph ~bottleneck:"bottleneck0" ~loss_link:"bottleneck0"
    ~ack_loss_link:(Printf.sprintf "rbottleneck%d" (hops - 1))
    ~flap_links:[ "bottleneck0"; "rbottleneck0" ]
    ~spec ~endpoints ()

let run_case ~seed ~duration ~hops variant =
  let flows = long_flows + (hops * cross_per_hop) in
  let t =
    Scenario.run
      (Scenario.make
         ~topology:(topology ~hops)
         ~flows:(List.init flows (fun _ -> Scenario.flow variant))
         ~params:{ Tcp.Params.default with rwnd = 20 }
         ~seed ~duration ())
  in
  let mss = Tcp.Params.default.Tcp.Params.mss in
  let goodput flow =
    Stats.Metrics.effective_throughput_bps t.Scenario.results.(flow).Scenario.trace
      ~mss ~t0:0.0 ~t1:duration
  in
  let mean_over lo hi =
    let n = hi - lo in
    let sum = ref 0.0 in
    for flow = lo to hi - 1 do
      sum := !sum +. goodput flow
    done;
    !sum /. float_of_int n
  in
  let drops_over lo hi =
    let sum = ref 0 in
    for flow = lo to hi - 1 do
      sum := !sum + Scenario.drops t ~flow
    done;
    !sum
  in
  let long_goodput_bps = mean_over 0 long_flows in
  let cross_goodput_bps = mean_over long_flows flows in
  {
    variant;
    hops;
    long_goodput_bps;
    cross_goodput_bps;
    ratio = long_goodput_bps /. cross_goodput_bps;
    long_drops = drops_over 0 long_flows;
    cross_drops = drops_over long_flows flows;
  }

let run ?(variants = Core.Variant.[ Newreno; Sack; Rr ]) ?(hop_counts = [ 1; 3 ])
    ?(seed = 7L) ?(duration = 30.0) () =
  {
    duration;
    rows =
      List.concat_map
        (fun variant ->
          List.map (fun hops -> run_case ~seed ~duration ~hops variant) hop_counts)
        variants;
  }

let report outcome =
  let header =
    [
      "variant";
      "hops";
      "long (Kbps)";
      "cross (Kbps)";
      "long/cross";
      "long drops";
      "cross drops";
    ]
  in
  let rows =
    List.map
      (fun row ->
        [
          Core.Variant.name row.variant;
          string_of_int row.hops;
          Printf.sprintf "%.1f" (row.long_goodput_bps /. 1e3);
          Printf.sprintf "%.1f" (row.cross_goodput_bps /. 1e3);
          Printf.sprintf "%.2f" row.ratio;
          string_of_int row.long_drops;
          string_of_int row.cross_drops;
        ])
      outcome.rows
  in
  Stats.Text_table.render ~header rows
  ^ Printf.sprintf
      "\n%d long flow(s) over every bottleneck vs %d cross flow(s) per hop, \
       %.0f s: multi-hop flows pay every bottleneck's loss rate, so their \
       share falls as hops grow.\n"
      long_flows cross_per_hop outcome.duration
