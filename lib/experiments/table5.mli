(** Table 5 — fairness and interoperability with TCP Reno.

    Twenty connections share the 0.8 Mbps drop-tail bottleneck
    (buffer 25). Nineteen are persistent background flows whose starts
    are staggered 0.5 s apart from t = 0; the targeted connection sends
    a 100 KB file starting at t = 4.8 s. Four cases vary which variant
    the background and the target run (paper §5):

    + Case 1: Reno background, Reno target
    + Case 2: RR background, Reno target
    + Case 3: RR background, RR target
    + Case 4: Reno background, RR target

    Paper shape: a Reno target does {e better} with RR background than
    with Reno background (cases 2 vs 1) — RR does not bully less
    aggressive TCPs; a single RR among Renos (case 4) gets a shorter
    transfer delay and lower loss rate, consuming only bandwidth Reno
    leaves unused (its ≈44 Kbps vs the 40 Kbps fair share, while Reno
    flows each consume ≈24 Kbps of the 800 Kbps). *)

type case = {
  label : string;
  background : Core.Variant.t;
  target : Core.Variant.t;
  transfer_delay : float option;  (** None: unfinished by the deadline *)
  loss_rate : float;  (** target's drops / transmissions *)
  target_bandwidth_bps : float option;  (** 100 KB / delay *)
  mean_background_bandwidth_bps : float;
      (** per-background-flow goodput over the steady-state window *)
  target_timeouts : int;
}

type outcome = { cases : case list; fair_share_bps : float }

(** [run ()] executes all four cases, each averaged over eight
    target-start phases (drop-tail networks of equal-RTT flows are
    deterministic and strongly phase-biased — see DESIGN.md). With
    [limited_transmit], all senders use RFC 3042, which restores
    fast-retransmit viability at the tiny per-flow windows this
    20-flow scenario forces. [cases] overrides the paper's four
    (label, background variant, target variant) combinations — the
    bench artifacts reuse the same 20-flow fairness machinery for
    Relentless and RRR against Reno. *)
val run :
  ?seed:int64 ->
  ?deadline:float ->
  ?limited_transmit:bool ->
  ?cases:(string * Core.Variant.t * Core.Variant.t) list ->
  unit ->
  outcome

(** [report outcome] renders the table plus the §5 bandwidth notes. *)
val report : outcome -> string
