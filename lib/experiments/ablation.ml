type row = {
  label : string;
  ablation : Core.Rr.ablation;
  throughput_bps : float;
  recovery_seconds : float option;
  timeouts : int;
}

type outcome = { drops : int; measure_window : float; rows : row list }

let designs =
  [
    ("paper design", Core.Rr.paper_design);
    ( "retreat: 1 pkt per dupack",
      { Core.Rr.paper_design with retreat_per_dupack = true } );
    ( "backoff: halve actnum",
      { Core.Rr.paper_design with multiplicative_backoff = true } );
    ( "exit: cwnd <- ssthresh",
      { Core.Rr.paper_design with exit_to_ssthresh = true } );
  ]

let run ?(drops = 6) ?(measure_window = 3.0) () =
  let drop_seqs = List.init drops (fun i -> 33 + i) in
  let last_drop = List.fold_left max 0 drop_seqs in
  let rules =
    List.map (fun seq -> { Net.Loss.flow = 0; seq; occurrence = 1 }) drop_seqs
  in
  let params =
    { Tcp.Params.default with initial_ssthresh = 16.0; rwnd = 20 }
  in
  let rows =
    List.map
      (fun (label, ablation) ->
        let make ~engine ~params ~flow ~emit () =
          let agent, handle =
            Core.Rr.create_ablated_with_handle ~engine ~params ~flow ~emit
              ~ablation ()
          in
          Scenario.build ~rr:handle agent
        in
        let t =
          Scenario.run
            (Scenario.make
               ~topology:(Scenario.dumbbell (Net.Dumbbell.paper_config ~flows:1))
               ~flows:
                 [ { Scenario.label; make; start = 0.0; source = Scenario.Infinite;
                    direction = Net.Dumbbell.Forward } ]
               ~params ~forced_drops:rules ())
        in
        let result = t.Scenario.results.(0) in
        let trace = result.Scenario.trace in
        let t0 =
          match Scenario.first_drop_time t ~flow:0 with
          | Some time -> time
          | None -> failwith "Ablation: forced drops did not occur"
        in
        {
          label;
          ablation;
          throughput_bps =
            Stats.Metrics.effective_throughput_bps trace
              ~mss:params.Tcp.Params.mss ~t0 ~t1:(t0 +. measure_window);
          recovery_seconds =
            Option.map
              (fun finish -> finish -. t0)
              (Stats.Metrics.recovery_completion_time trace
                 ~target_seq:last_drop);
          timeouts =
            result.Scenario.agent.Tcp.Agent.base.Tcp.Sender_common.counters
              .Tcp.Counters.timeouts;
        })
      designs
  in
  { drops; measure_window; rows }

let report outcome =
  let header =
    [ "design"; "eff. throughput (Kbps)"; "recovery time (s)"; "timeouts" ]
  in
  let rows =
    List.map
      (fun row ->
        [
          row.label;
          Printf.sprintf "%.1f" (row.throughput_bps /. 1000.0);
          (match row.recovery_seconds with
          | Some s -> Printf.sprintf "%.2f" s
          | None -> "never");
          string_of_int row.timeouts;
        ])
      outcome.rows
  in
  Printf.sprintf
    "RR design ablations (Figure 5 scenario, %d losses in a window)\n\n%s"
    outcome.drops
    (Stats.Text_table.render ~header rows)
