type source =
  | Infinite
  | File_bytes of int
  | Mice of Workload.Mice.profile

type built = { agent : Tcp.Agent.t; rr_handle : Core.Rr.handle option }

let build ?rr agent = { agent; rr_handle = rr }

type agent_maker =
  engine:Sim.Engine.t ->
  params:Tcp.Params.t ->
  flow:int ->
  emit:(Net.Packet.t -> unit) ->
  unit ->
  built

type flow_spec = {
  label : string;
  make : agent_maker;
  start : float;
  source : source;
  direction : Net.Dumbbell.direction;
}

let flow ?(start = 0.0) ?(source = Infinite) ?(direction = Net.Dumbbell.Forward)
    variant =
  {
    label = Core.Variant.name variant;
    make =
      (fun ~engine ~params ~flow ~emit () ->
        let agent, rr_handle =
          Core.Variant.create_inspected variant ~engine ~params ~flow ~emit ()
        in
        { agent; rr_handle });
    start;
    source;
    direction;
  }

type cross = {
  cross_label : string;
  rate_bps : float;
  packet_bytes : int;
  cross_start : float;
  cross_until : float option;
  cross_direction : Net.Dumbbell.direction;
}

let cbr ?(label = "cbr") ?(packet_bytes = 1000) ?(start = 0.0) ?until
    ?(direction = Net.Dumbbell.Forward) ~rate_bps () =
  {
    cross_label = label;
    rate_bps;
    packet_bytes;
    cross_start = start;
    cross_until = until;
    cross_direction = direction;
  }

type graph = {
  graph : Net.Topology.spec;
  endpoints : Net.Topology.endpoint array;
  bottleneck : string option;
  loss_link : string option;
  ack_loss_link : string option;
  flap_links : string list;
}

type topology = Dumbbell of Net.Dumbbell.config | Graph of graph

let dumbbell config = Dumbbell config

let graph ?bottleneck ?loss_link ?ack_loss_link ?(flap_links = []) ~spec
    ~endpoints () =
  Graph
    { graph = spec; endpoints; bottleneck; loss_link; ack_loss_link; flap_links }

type spec = {
  topology : topology;
  flows : flow_spec list;
  params : Tcp.Params.t;
  seed : int64;
  duration : float;
  forced_drops : Net.Loss.rule list;
  uniform_loss : float;
  ack_loss : float;
  delayed_ack : bool;
  monitor_queue : float option;
  side_delays : float array option;
  trace_out : out_channel option;
  trace_format : [ `Jsonl | `Binary ];
  faults : Faults.Spec.t;
  link_schedule : Faults.Timeline.t option;
  cross : cross list;
  watch_divergence : bool;
  audit_sample : int;
}

let make ~topology ~flows ?(params = Tcp.Params.default) ?(seed = 7L)
    ?(duration = 30.0) ?(forced_drops = []) ?(uniform_loss = 0.0)
    ?(ack_loss = 0.0) ?(delayed_ack = false) ?monitor_queue ?side_delays
    ?trace_out ?(trace_format = `Jsonl) ?(faults = Faults.Spec.none)
    ?link_schedule ?(cross = [])
    ?(watch_divergence = false) ?(audit_sample = 1) () =
  if audit_sample < 0 then
    invalid_arg "Scenario.make: audit_sample must be >= 0";
  {
    topology;
    flows;
    params;
    seed;
    duration;
    forced_drops;
    uniform_loss;
    ack_loss;
    delayed_ack;
    monitor_queue;
    side_delays;
    trace_out;
    trace_format;
    faults;
    link_schedule;
    cross;
    watch_divergence;
    audit_sample;
  }

type flow_result = {
  spec : flow_spec;
  agent : Tcp.Agent.t;
  rr_handle : Core.Rr.handle option;
  receiver : Tcp.Receiver.t;
  trace : Stats.Flow_trace.t;
  mutable completion : Workload.Ftp.completion option;
  mutable mice : Workload.Mice.t option;
}

type cross_result = {
  cross : cross;
  cross_flow : int;
  source : Workload.Cbr.t;
  mutable received : int;
}

type drop_payload = Data of { seq : int } | Ack

type drop = { time : float; flow : int; payload : drop_payload }

type net = Dumbbell_net of Net.Dumbbell.t | Graph_net of Net.Topology.t * graph

type t = {
  engine : Sim.Engine.t;
  net : net;
  results : flow_result array;
  cross_results : cross_result array;
  drop_log : drop list;
  queue_occupancy : Stats.Series.t option;
  auditor : Audit.Auditor.t;
  divergence : Audit.Divergence.t option;
  injector : Faults.Injector.t option;
}

let rtt_estimate config ~mss ~ack_size =
  let open Net.Dumbbell in
  let tx size bandwidth =
    Sim.Units.transmission_time ~size_bytes:size ~bandwidth_bps:bandwidth
  in
  let one_way size =
    (2.0 *. config.side_delay)
    +. config.bottleneck_delay
    +. (2.0 *. tx size config.side_bandwidth_bps)
    +. tx size config.bottleneck_bandwidth_bps
  in
  one_way mss +. one_way ack_size

let slots = function
  | Dumbbell config -> config.Net.Dumbbell.flows
  | Graph g -> Array.length g.endpoints

let run spec =
  if List.length spec.flows + List.length spec.cross <> slots spec.topology then
    invalid_arg
      "Scenario.run: flow + cross-traffic specs do not match topology width";
  (match spec.topology with
  | Graph g ->
    if spec.side_delays <> None then
      invalid_arg "Scenario.run: side_delays requires a dumbbell topology";
    if
      (spec.uniform_loss > 0.0 || spec.forced_drops <> []
      || not (Faults.Spec.is_none spec.faults))
      && g.loss_link = None
    then
      invalid_arg
        "Scenario.run: graph topology needs a loss_link for loss/fault \
         injection";
    if spec.ack_loss > 0.0 && g.ack_loss_link = None then
      invalid_arg "Scenario.run: graph topology needs an ack_loss_link";
    if spec.monitor_queue <> None && g.bottleneck = None then
      invalid_arg "Scenario.run: graph topology needs a bottleneck to monitor"
  | Dumbbell _ -> ());
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create spec.seed in
  (* Fault streams are split off only when faults are enabled, so a
     fault-free spec draws exactly the same stream sequence as before
     lib/faults existed — existing artifacts stay byte-identical. The
     split order (flap, forward, reverse) is part of the reproducibility
     contract. Link timelines (fade/handover/asym, --link-schedule) are
     pure data and draw no RNG at all, so they add nothing to this
     sequence: a spec whose only extras are timelines consumes exactly
     the same streams as a flap-only spec, and an empty timeline is
     indistinguishable from no timeline. *)
  let fault_streams =
    if Faults.Spec.is_none spec.faults then None
    else
      let flap = Sim.Rng.split rng in
      let forward = Sim.Rng.split rng in
      let reverse = Sim.Rng.split rng in
      Some (flap, forward, reverse)
  in
  let link_schedule =
    match spec.link_schedule with
    | Some timeline when not (Faults.Timeline.is_empty timeline) ->
      Some timeline
    | _ -> None
  in
  let injector =
    if fault_streams <> None || link_schedule <> None then
      Some (Faults.Injector.create ~engine ())
    else None
  in
  let drop_log = ref [] in
  let log_drop packet =
    let payload =
      if Net.Packet.is_data packet then
        Data { seq = Net.Packet.seq_exn packet }
      else Ack
    in
    drop_log :=
      { time = Sim.Engine.now engine; flow = packet.Net.Packet.flow; payload }
      :: !drop_log
  in
  (* The topology is needed inside the loss wrappers for per-flow drop
     accounting, but the wrappers are topology constructor arguments;
     route the callbacks through a cell. *)
  let net_cell = ref None in
  let injected_drop packet =
    (match !net_cell with
    | Some (Dumbbell_net topology) -> Net.Dumbbell.count_drop topology packet
    | Some (Graph_net (topology, _)) -> Net.Topology.count_drop topology packet
    | None -> ());
    log_drop packet
  in
  (* Fault wrappers sit innermost (right at the trunk queue), loss
     wrappers outside them: a packet first survives injected loss, then
     suffers reordering/jitter on its way into the queue. *)
  let wrap_faults ~path ~stream next =
    match (fault_streams, injector) with
    | Some _, Some inj ->
      let next =
        match spec.faults.Faults.Spec.jitter with
        | Some max_jitter ->
          Faults.Injector.jitter inj ~rng:stream ~max_jitter next
        | None -> next
      in
      (match spec.faults.Faults.Spec.reorder with
      | Some { Faults.Spec.prob; max_extra } ->
        Faults.Injector.reorder inj ~path ~rng:stream ~prob ~max_extra next
      | None -> next)
    | _ -> next
  in
  let wrap_bottleneck next =
    let next =
      match fault_streams with
      | Some (_, forward, _) ->
        wrap_faults ~path:"bottleneck" ~stream:forward next
      | None -> next
    in
    let next =
      if spec.uniform_loss > 0.0 then
        Net.Loss.uniform ~rng:(Sim.Rng.split rng) ~rate:spec.uniform_loss
          ~on_drop:injected_drop next
      else next
    in
    if spec.forced_drops <> [] then
      Net.Loss.drop_list ~rules:spec.forced_drops ~on_drop:injected_drop next
    else next
  in
  let wrap_reverse next =
    let next =
      match fault_streams with
      | Some (_, _, reverse) when spec.faults.Faults.Spec.reverse ->
        wrap_faults ~path:"reverse" ~stream:reverse next
      | _ -> next
    in
    if spec.ack_loss > 0.0 then
      Net.Loss.uniform ~rng:(Sim.Rng.split rng) ~rate:spec.ack_loss
        ~data_only:false ~on_drop:injected_drop next
    else next
  in
  let net =
    match spec.topology with
    | Dumbbell config ->
      let directions =
        Array.of_list
          (List.map (fun f -> f.direction) spec.flows
          @ List.map (fun c -> c.cross_direction) spec.cross)
      in
      Dumbbell_net
        (Net.Dumbbell.create ~engine ~config ~rng ~wrap_bottleneck
           ~wrap_reverse ~on_drop:log_drop ?side_delays:spec.side_delays
           ~directions ())
    | Graph g ->
      (* Tap construction order mirrors the dumbbell path — data-path
         wraps before ACK-path wraps — so the loss streams split off
         [rng] in the same sequence either way. *)
      let taps =
        (match g.loss_link with
        | Some link -> [ (link, wrap_bottleneck) ]
        | None -> [])
        @
        match g.ack_loss_link with
        | Some link -> [ (link, wrap_reverse) ]
        | None -> []
      in
      Graph_net
        ( Net.Topology.create ~engine ~spec:g.graph ~rng ~taps
            ~on_drop:log_drop ~flows:g.endpoints (),
          g )
  in
  net_cell := Some net;
  let inject_data ~flow packet =
    match net with
    | Dumbbell_net topology -> Net.Dumbbell.inject_data topology ~flow packet
    | Graph_net (topology, _) -> Net.Topology.inject_data topology ~flow packet
  in
  let inject_ack ~flow packet =
    match net with
    | Dumbbell_net topology -> Net.Dumbbell.inject_ack topology ~flow packet
    | Graph_net (topology, _) -> Net.Topology.inject_ack topology ~flow packet
  in
  let on_data ~flow handler =
    match net with
    | Dumbbell_net topology -> Net.Dumbbell.on_data topology ~flow handler
    | Graph_net (topology, _) -> Net.Topology.on_data topology ~flow handler
  in
  let on_ack ~flow handler =
    match net with
    | Dumbbell_net topology -> Net.Dumbbell.on_ack topology ~flow handler
    | Graph_net (topology, _) -> Net.Topology.on_ack topology ~flow handler
  in
  (* A flap models an outage of the physical trunk: on the dumbbell both
     directions cut together, under the same schedule; on a graph the
     spec names the links that fail as one. *)
  (match (fault_streams, injector) with
  | Some (flap_rng, _, _), Some inj -> (
    match
      Faults.Spec.flap_schedule spec.faults ~rng:flap_rng ~until:spec.duration
    with
    | None -> ()
    | Some schedule -> (
      let policy = spec.faults.Faults.Spec.flap_policy in
      match net with
      | Dumbbell_net topology ->
        Faults.Injector.flap_link inj ~name:"bottleneck" ~policy
          ~on_drop:injected_drop
          (Net.Dumbbell.bottleneck_link topology)
          schedule;
        Faults.Injector.flap_link inj ~name:"reverse" ~policy
          ~on_drop:injected_drop
          (Net.Dumbbell.reverse_trunk_link topology)
          schedule
      | Graph_net (topology, g) ->
        if g.flap_links = [] then
          invalid_arg "Scenario.run: graph topology needs flap_links to flap";
        List.iter
          (fun name ->
            Faults.Injector.flap_link inj ~name ~policy
              ~on_drop:injected_drop
              (Net.Topology.link topology name)
              schedule)
          g.flap_links))
  | _ -> ());
  (* Time-varying link conditions. Targets mirror the flap convention:
     the dumbbell's forward trunk, or the graph spec's [flap_links].
     Each vary_link is applied before any flap_link it composes with
     (handover), so a restore coinciding with a rate step restarts
     service at the new rate. *)
  (match injector with
  | Some inj
    when link_schedule <> None || Faults.Spec.has_timeline spec.faults ->
    let targets =
      match net with
      | Dumbbell_net topology ->
        [ ("bottleneck", Net.Dumbbell.bottleneck_link topology) ]
      | Graph_net (topology, g) ->
        if g.flap_links = [] then
          invalid_arg
            "Scenario.run: graph topology needs flap_links for link \
             timelines";
        List.map
          (fun name -> (name, Net.Topology.link topology name))
          g.flap_links
    in
    Option.iter
      (fun timeline ->
        List.iter
          (fun (name, link) ->
            Faults.Injector.vary_link inj ~name link timeline)
          targets)
      link_schedule;
    (match spec.faults.Faults.Spec.fade with
    | Some { Faults.Spec.fade_period; fade_levels } ->
      List.iter
        (fun (name, link) ->
          Faults.Injector.vary_link inj ~name link
            (Faults.Timeline.fading ~period:fade_period
               ~base_bps:(Net.Link.rate_bps link) ~levels:fade_levels
               ~until:spec.duration ()))
        targets
    | None -> ());
    (match spec.faults.Faults.Spec.handover with
    | Some { Faults.Spec.ho_period; ho_gap; ho_levels } ->
      List.iter
        (fun (name, link) ->
          let timeline, schedule =
            Faults.Timeline.handover ~period:ho_period ~gap:ho_gap
              ~base_bps:(Net.Link.rate_bps link) ~levels:ho_levels
              ~until:spec.duration ()
          in
          Faults.Injector.vary_link inj ~name link timeline;
          (* The down-gap always burst-loses the backlog: a handover is
             a cell change, not a pause — the old cell's queue does not
             follow the mobile. *)
          Faults.Injector.flap_link inj ~name ~policy:`Drop_queued
            ~on_drop:injected_drop link schedule)
        targets
    | None -> ());
    (match spec.faults.Faults.Spec.asym with
    | Some ratio -> (
      match net with
      | Dumbbell_net topology ->
        let forward = Net.Dumbbell.bottleneck_link topology in
        let reverse = Net.Dumbbell.reverse_trunk_link topology in
        (* One step at t = 0 rather than a direct set_rate at setup, so
           the change is evented and traced like any other timeline
           step. *)
        Faults.Injector.vary_link inj ~name:"reverse" reverse
          (Faults.Timeline.of_steps
             [
               {
                 Faults.Timeline.at = 0.0;
                 rate = Some (Net.Link.rate_bps forward /. ratio);
                 delay = None;
               };
             ])
      | Graph_net _ ->
        invalid_arg "Scenario.run: asym requires a dumbbell topology")
    | None -> ())
  | _ -> ());
  (* [audit_sample = 0] turns auditing off entirely — the clean-run
     reference for measuring audit overhead. The auditor object still
     exists (trivially ok, zero checks); it just observes nothing. *)
  let audit_on = spec.audit_sample > 0 in
  let auditor =
    Audit.Auditor.create ~engine ~sample:(max 1 spec.audit_sample) ()
  in
  (* Divergence watching is opt-in: it only attaches observation hooks,
     but keeping it off by default means classic specs build exactly the
     same hook lists as before this monitor existed. *)
  let divergence =
    if spec.watch_divergence then Some (Audit.Divergence.create ~engine ())
    else None
  in
  let tracer =
    Option.map
      (fun out -> Audit.Trace.create ~format:spec.trace_format ~out ())
      spec.trace_out
  in
  let net_queues =
    match net with
    | Dumbbell_net topology -> Net.Dumbbell.queues topology
    | Graph_net (topology, _) -> Net.Topology.queues topology
  in
  List.iter
    (fun (name, queue) ->
      if audit_on then Audit.Auditor.attach_queue auditor ~name queue;
      Option.iter
        (fun tr -> Audit.Trace.attach_queue tr ~engine ~name queue)
        tracer)
    net_queues;
  Option.iter
    (fun tr ->
      Option.iter (fun inj -> Audit.Trace.attach_injector tr inj) injector)
    tracer;
  let make_flow flow_id flow_spec =
    let ({ agent; rr_handle } : built) =
      flow_spec.make ~engine ~params:spec.params ~flow:flow_id
        ~emit:(fun packet -> inject_data ~flow:flow_id packet)
        ()
    in
    let receiver =
      Tcp.Receiver.create ~engine ~flow:flow_id
        ~emit:(fun packet -> inject_ack ~flow:flow_id packet)
        ~sack:agent.Tcp.Agent.wants_sack
        ~ack_size:spec.params.Tcp.Params.ack_size
        ~delayed_ack:spec.delayed_ack ()
    in
    on_data ~flow:flow_id (Tcp.Receiver.deliver receiver);
    on_ack ~flow:flow_id agent.Tcp.Agent.deliver_ack;
    let trace = Stats.Flow_trace.attach agent in
    if audit_on then
      Audit.Auditor.attach_sender auditor ?rr:rr_handle
        ~label:(Printf.sprintf "flow %d (%s)" flow_id flow_spec.label)
        agent;
    Option.iter
      (fun monitor ->
        Audit.Divergence.attach_sender monitor
          ~label:(Printf.sprintf "flow %d (%s)" flow_id flow_spec.label)
          agent)
      divergence;
    Option.iter (fun tr -> Audit.Trace.attach_sender tr agent) tracer;
    let result =
      {
        spec = flow_spec;
        agent;
        rr_handle;
        receiver;
        trace;
        completion = None;
        mice = None;
      }
    in
    (match flow_spec.source with
    | Infinite ->
      Workload.Ftp.persistent ~engine ~agent ~at:flow_spec.start
    | File_bytes bytes ->
      Workload.Ftp.file ~engine ~agent ~at:flow_spec.start ~bytes
        ~on_complete:(fun completion -> result.completion <- Some completion)
    | Mice profile ->
      (* Each mice source gets its own stream, split here in flow order
         — deterministic, and absent entirely from mice-free specs. *)
      let profile =
        if profile.Workload.Mice.until = infinity then
          { profile with Workload.Mice.until = spec.duration }
        else profile
      in
      let profile =
        if profile.Workload.Mice.start = 0.0 then
          { profile with Workload.Mice.start = flow_spec.start }
        else profile
      in
      result.mice <-
        Some
          (Workload.Mice.create ~engine ~agent ~rng:(Sim.Rng.split rng) profile));
    result
  in
  let results = Array.of_list (List.mapi make_flow spec.flows) in
  let tcp_flows = List.length spec.flows in
  let cross_results =
    Array.of_list
      (List.mapi
         (fun i cross ->
           let cross_flow = tcp_flows + i in
           let source =
             Workload.Cbr.create ~engine ~flow:cross_flow
               ~rate_bps:cross.rate_bps ~packet_bytes:cross.packet_bytes
               ~at:cross.cross_start
               ~until:(Option.value cross.cross_until ~default:spec.duration)
               ~emit:(fun packet -> inject_data ~flow:cross_flow packet)
               ()
           in
           let result = { cross; cross_flow; source; received = 0 } in
           on_data ~flow:cross_flow (fun _ ->
               result.received <- result.received + 1);
           result)
         spec.cross)
  in
  let queue_occupancy =
    Option.map
      (fun interval ->
        let queue =
          match net with
          | Dumbbell_net topology -> Net.Dumbbell.bottleneck_queue topology
          | Graph_net (topology, g) ->
            Net.Topology.queue topology (Option.get g.bottleneck)
        in
        Stats.Queue_monitor.sample ~engine
          ~probe:queue.Net.Queue_disc.length ~interval ~until:spec.duration)
      spec.monitor_queue
  in
  (* The tracer stages its JSONL lines in a buffer; drain it on every
     exit path, including a raising run — otherwise the tail of the
     trace is lost exactly when it is most needed. *)
  Fun.protect
    ~finally:(fun () -> Option.iter Audit.Trace.flush tracer)
    (fun () ->
      Sim.Engine.run_until engine ~time:spec.duration;
      Audit.Auditor.finalize auditor);
  if not (Audit.Auditor.ok auditor) then
    prerr_string (Audit.Auditor.report auditor);
  {
    engine;
    net;
    results;
    cross_results;
    drop_log = List.rev !drop_log;
    queue_occupancy;
    auditor;
    divergence;
    injector;
  }

let drops t ~flow =
  match t.net with
  | Dumbbell_net topology -> Net.Dumbbell.drops_of_flow topology flow
  | Graph_net (topology, _) -> Net.Topology.drops_of_flow topology flow

let red_stats t =
  match t.net with
  | Dumbbell_net topology -> Net.Dumbbell.red_stats topology
  | Graph_net (topology, g) -> (
    match g.bottleneck with
    | Some link -> Net.Topology.red_stats topology link
    | None -> None)

let tracefile t =
  (* Merge per-flow send/ack traces and the drop log into time-ordered
     ns-2-style lines. Node 0 stands for the sender side, node 1 for
     the receiver side. *)
  let line event time kind size flow seq =
    Printf.sprintf "%c %.6f 0 1 %s %d ------- %d 0.0 1.0 %d" event time kind
      size flow seq
  in
  let events = ref [] in
  Array.iteri
    (fun flow result ->
      let trace = result.trace in
      List.iter
        (fun (time, seq) ->
          events := (time, line '+' time "tcp" 1000 flow (int_of_float seq)) :: !events)
        (Stats.Series.to_list trace.Stats.Flow_trace.sends);
      List.iter
        (fun (time, ackno) ->
          events := (time, line 'r' time "ack" 40 flow (int_of_float ackno)) :: !events)
        (Stats.Series.to_list trace.Stats.Flow_trace.acks))
    t.results;
  List.iter
    (fun { time; flow; payload } ->
      let kind, size, seq =
        match payload with
        | Data { seq } -> ("tcp", 1000, seq)
        | Ack -> ("ack", 40, 0)
      in
      events := (time, line 'd' time kind size flow seq) :: !events)
    t.drop_log;
  let ordered =
    List.stable_sort (fun (a, _) (b, _) -> compare a b) (List.rev !events)
  in
  String.concat "\n" (List.map snd ordered) ^ "\n"

let first_drop_time t ~flow =
  let rec scan = function
    | [] -> None
    | drop :: rest -> if drop.flow = flow then Some drop.time else scan rest
  in
  scan t.drop_log
