type case = {
  label : string;
  background : Core.Variant.t;
  target : Core.Variant.t;
  transfer_delay : float option;
  loss_rate : float;
  target_bandwidth_bps : float option;
  mean_background_bandwidth_bps : float;
  target_timeouts : int;
}

type outcome = { cases : case list; fair_share_bps : float }

let flows = 20

let target_flow = flows - 1

let file_bytes = 100_000

let target_start = 4.8

let config =
  {
    (Net.Dumbbell.paper_config ~flows) with
    gateway = Net.Dumbbell.Droptail { capacity = 25 };
  }

let params = { Tcp.Params.default with rwnd = 20 }

let cases_spec =
  Core.Variant.
    [
      ("case 1", Reno, Reno);
      ("case 2", Rr, Reno);
      ("case 3", Rr, Rr);
      ("case 4", Reno, Rr);
    ]

(* A drop-tail network of equal-RTT flows is deterministic and strongly
   phase-sensitive: shifting the target's start by tens of milliseconds
   changes its transfer delay several-fold (the bias RED was designed to
   remove, §3.3). Each case is therefore run at several target-start
   phases spread across one RTT and averaged. *)
let phases = [ 0.0; 0.03; 0.06; 0.09; 0.12; 0.15; 0.18; 0.21 ]

let run_instance ~params ~seed ~deadline ~background ~target ~phase =
  let flow_specs =
    List.init flows (fun flow ->
        if flow = target_flow then
          {
            (Scenario.flow target) with
            Scenario.start = target_start +. phase;
            source = Scenario.File_bytes file_bytes;
          }
        else
          {
            (Scenario.flow background) with
            Scenario.start = 0.5 *. float_of_int flow;
          })
  in
  (* Table 5 is the hottest experiment in the suite (8 phases x 4 cases
     x 20 flows); its reported metrics come from flow traces and
     counters, never from the auditor, so the auditor runs sampled here
     — every invariant battery still fires on 1-in-8 events (no false
     positives, see Audit.Auditor) at a fraction of the full-audit
     cost. *)
  let t =
    Scenario.run
      (Scenario.make ~topology:(Scenario.dumbbell config) ~flows:flow_specs
         ~params ~seed ~duration:deadline ~audit_sample:8 ())
  in
  let result = t.Scenario.results.(target_flow) in
  let transfer_delay =
    Option.map
      (fun c -> c.Workload.Ftp.finished -. c.Workload.Ftp.started)
      result.Scenario.completion
  in
  let counters =
    result.Scenario.agent.Tcp.Agent.base.Tcp.Sender_common.counters
  in
  let loss_rate =
    Stats.Metrics.loss_rate
      ~drops:(Scenario.drops t ~flow:target_flow)
      ~transmissions:(Stats.Metrics.transmissions counters)
  in
  (* Background per-flow goodput over the fully-loaded steady window
     (all 19 background flows are running from 9.5 s on). *)
  let steady_t0 = 10.0 in
  let mean_background =
    let sum =
      List.fold_left
        (fun acc flow ->
          acc
          +. Stats.Metrics.effective_throughput_bps
               t.Scenario.results.(flow).Scenario.trace
               ~mss:params.Tcp.Params.mss ~t0:steady_t0 ~t1:deadline)
        0.0
        (List.init (flows - 1) Fun.id)
    in
    sum /. float_of_int (flows - 1)
  in
  (transfer_delay, loss_rate, mean_background, counters.Tcp.Counters.timeouts)

let run_case ~params ~seed ~deadline (label, background, target) =
  let instances =
    List.map
      (fun phase ->
        run_instance ~params ~seed ~deadline ~background ~target ~phase)
      phases
  in
  let n = float_of_int (List.length instances) in
  let mean f = List.fold_left (fun acc i -> acc +. f i) 0.0 instances /. n in
  let finished =
    List.filter_map (fun (delay, _, _, _) -> delay) instances
  in
  let transfer_delay =
    if List.length finished = List.length instances then
      Some (List.fold_left ( +. ) 0.0 finished /. n)
    else None
  in
  {
    label;
    background;
    target;
    transfer_delay;
    loss_rate = mean (fun (_, loss, _, _) -> loss);
    target_bandwidth_bps =
      Option.map
        (fun delay -> float_of_int (8 * file_bytes) /. delay)
        transfer_delay;
    mean_background_bandwidth_bps = mean (fun (_, _, bg, _) -> bg);
    target_timeouts =
      int_of_float (Float.round (mean (fun (_, _, _, t) -> float_of_int t)));
  }

let run ?(seed = 23L) ?(deadline = 160.0) ?(limited_transmit = false)
    ?(cases = cases_spec) () =
  let params = { params with Tcp.Params.limited_transmit } in
  {
    cases = List.map (run_case ~params ~seed ~deadline) cases;
    fair_share_bps =
      config.Net.Dumbbell.bottleneck_bandwidth_bps /. float_of_int flows;
  }

let report outcome =
  let header =
    [
      "case";
      "background";
      "target";
      "transfer delay (s)";
      "target loss rate";
      "target bw (Kbps)";
      "bg per-flow bw (Kbps)";
      "target timeouts";
    ]
  in
  let rows =
    List.map
      (fun c ->
        [
          c.label;
          Core.Variant.name c.background;
          Core.Variant.name c.target;
          (match c.transfer_delay with
          | Some d -> Printf.sprintf "%.1f" d
          | None -> "unfinished");
          Printf.sprintf "%.1f%%" (100.0 *. c.loss_rate);
          (match c.target_bandwidth_bps with
          | Some bw -> Printf.sprintf "%.1f" (bw /. 1000.0)
          | None -> "-");
          Printf.sprintf "%.1f" (c.mean_background_bandwidth_bps /. 1000.0);
          string_of_int c.target_timeouts;
        ])
      outcome.cases
  in
  Printf.sprintf
    "Table 5 (fairness: 100 KB transfer among 19 background flows, drop-tail)\n\
     each case averaged over %d target-start phases (drop-tail phase bias)\n\
     fair share = %.1f Kbps per flow\n\
     paper shape: Reno target improves when background switches Reno->RR\n\
     (case 2 <= case 1 delay and loss); a lone RR among Renos (case 4) gets\n\
     a shorter delay and lower loss without stealing from Reno flows\n\n\
     %s"
    (List.length phases)
    (outcome.fair_share_bps /. 1000.0)
    (Stats.Text_table.render ~header rows)
