type point = {
  loss_rate : float;
  model_window : float;
  model_window_paper_c : float;
  padhye_window : float;
  measured : (Core.Variant.t * float * int) list;
}

type outcome = { rtt : float; c_model : float; points : point list }

let paper_loss_rates =
  [ 0.001; 0.002; 0.005; 0.01; 0.02; 0.03; 0.05; 0.07; 0.1 ]

let paper_variants = Core.Variant.[ Sack; Rr ]

(* Generous buffer so queue overflows do not add to the injected
   uniform losses; the paper's §4 losses are purely artificial. *)
let config =
  {
    (Net.Dumbbell.paper_config ~flows:1) with
    gateway = Net.Dumbbell.Droptail { capacity = 25 };
  }

let params = { Tcp.Params.default with rwnd = 20 }

let warmup = 5.0

let run_one ?(delayed_ack = false) ~seed ~duration ~loss_rate variant =
  let t =
    Scenario.run
      (Scenario.make ~topology:(Scenario.dumbbell config) ~flows:[ Scenario.flow variant ] ~params ~seed
         ~duration ~uniform_loss:loss_rate ~delayed_ack ())
  in
  let result = t.Scenario.results.(0) in
  let bw =
    Stats.Metrics.effective_throughput_bps result.Scenario.trace
      ~mss:params.Tcp.Params.mss ~t0:warmup ~t1:duration
  in
  let timeouts =
    result.Scenario.agent.Tcp.Agent.base.Tcp.Sender_common.counters
      .Tcp.Counters.timeouts
  in
  (bw, timeouts)

let run ?(loss_rates = paper_loss_rates) ?(variants = paper_variants)
    ?(seeds = [ 3L; 17L; 29L; 101L; 2048L ]) ?(duration = 100.0)
    ?(delayed_ack = false) () =
  let c_model =
    if delayed_ack then Model.Mathis.c_delayed_ack
    else Model.Mathis.c_ack_every_packet
  in
  let b_model = if delayed_ack then 2 else 1 in
  let mss = params.Tcp.Params.mss in
  let rtt = Scenario.rtt_estimate config ~mss ~ack_size:params.Tcp.Params.ack_size in
  let mean values =
    List.fold_left ( +. ) 0.0 values /. float_of_int (List.length values)
  in
  let points =
    List.map
      (fun loss_rate ->
        let measured =
          List.map
            (fun variant ->
              let runs =
                List.map
                  (fun seed ->
                    run_one ~delayed_ack ~seed ~duration ~loss_rate variant)
                  seeds
              in
              let bw = mean (List.map fst runs) in
              let timeouts =
                List.fold_left ( + ) 0 (List.map snd runs)
                / List.length seeds
              in
              let window = bw *. rtt /. float_of_int (8 * mss) in
              (variant, window, timeouts))
            variants
        in
        {
          loss_rate;
          model_window = Model.Mathis.window ~c:c_model ~loss_rate;
          model_window_paper_c =
            Model.Mathis.window ~c:Model.Mathis.c_paper ~loss_rate;
          padhye_window =
            Model.Padhye.window ~rtt ~rto:params.Tcp.Params.min_rto ~b:b_model
              ~loss_rate;
          measured;
        })
      loss_rates
  in
  { rtt; c_model; points }

let variant_names outcome =
  match outcome.points with
  | [] -> []
  | point :: _ -> List.map (fun (v, _, _) -> v) point.measured

let report outcome =
  let variants = variant_names outcome in
  let header =
    [
      "loss rate p";
      Printf.sprintf "C/sqrt(p) (C=%.2f)" outcome.c_model;
      "same, C=4";
      "PFTK";
    ]
    @ List.concat_map
        (fun v ->
          [ Core.Variant.name v ^ " window"; Core.Variant.name v ^ " timeouts" ])
        variants
  in
  let rows =
    List.map
      (fun point ->
        [
          Printf.sprintf "%.3f" point.loss_rate;
          Printf.sprintf "%.1f" point.model_window;
          Printf.sprintf "%.1f" point.model_window_paper_c;
          Printf.sprintf "%.1f" point.padhye_window;
        ]
        @ List.concat_map
            (fun (_, window, timeouts) ->
              [ Printf.sprintf "%.1f" window; string_of_int timeouts ])
            point.measured)
      outcome.points
  in
  Printf.sprintf
    "Figure 7 (fitness to the square-root model; RTT=%.3f s, MSS=1000 B)\n\
     paper shape: both variants track C/sqrt(p) at small p (capped by the\n\
     20-segment advertised window) and droop below it at large p as\n\
     timeouts appear; RR fits at least as well as SACK\n\n\
     %s"
    outcome.rtt
    (Stats.Text_table.render ~header rows)

let plot outcome =
  let variants = variant_names outcome in
  let glyphs = [ 's'; 'r'; 'n'; 't'; 'x' ] in
  let model_points =
    List.map
      (fun p ->
        ( 1.0 /. sqrt p.loss_rate,
          Float.min (float_of_int params.Tcp.Params.rwnd) p.model_window ))
      outcome.points
  in
  let measured_specs =
    List.mapi
      (fun i v ->
        let glyph = List.nth glyphs (i mod List.length glyphs) in
        let points =
          List.map
            (fun p ->
              let window =
                List.assoc v
                  (List.map (fun (v, w, _) -> (v, w)) p.measured)
              in
              (1.0 /. sqrt p.loss_rate, window))
            outcome.points
        in
        { Stats.Ascii_plot.label = Core.Variant.name v; glyph; points })
      variants
  in
  Stats.Ascii_plot.render ~width:64 ~height:18 ~x_label:"1/sqrt(p)"
    ~y_label:"window = BW*RTT/MSS"
    ({ Stats.Ascii_plot.label = "model bound (capped at rwnd)"; glyph = '*';
       points = model_points }
    :: measured_specs)
