(** Figure 7 — fitness to the square-root (Mathis) model.

    One TCP connection runs for 100 s over the Table 3 topology while
    uniform random losses at rate [p] are injected at gateway R1; MSS is
    1000 bytes and the no-load RTT ≈ 200 ms. The measured window
    [BW·RTT/MSS] is compared against the model bound [C/√p] for SACK
    and RR across a grid of loss rates. The paper's shape: both track
    the model at small [p] and fall below it at large [p], where
    retransmission losses and tiny windows force timeouts; RR fits at
    least as well as SACK. The Padhye (PFTK) model, which includes
    timeouts, is also printed as the §4-referenced refinement. *)

type point = {
  loss_rate : float;
  model_window : float;  (** C = √(3/2) *)
  model_window_paper_c : float;  (** C = 4, as the paper's text states *)
  padhye_window : float;
  measured : (Core.Variant.t * float * int) list;
      (** variant, measured window, timeouts (averaged over seeds) *)
}

type outcome = {
  rtt : float;
  c_model : float;  (** the Mathis constant used for [model_window] *)
  points : point list;
}

(** [run ()] sweeps the loss-rate grid (default the paper's 0.001–0.1)
    for SACK and RR, averaging over [seeds] runs. With [delayed_ack]
    (an extension — the paper's receivers ACK every packet) receivers
    delay ACKs and the model column uses the delayed-ACK constant
    [C = sqrt(3/4)] and [b = 2]. *)
val run :
  ?loss_rates:float list ->
  ?variants:Core.Variant.t list ->
  ?seeds:int64 list ->
  ?duration:float ->
  ?delayed_ack:bool ->
  unit ->
  outcome

(** [report outcome] renders the comparison table. *)
val report : outcome -> string

(** [plot outcome] draws measured windows and the model curve against
    [1/√p]. *)
val plot : outcome -> string
