type row = {
  variant : Core.Variant.t;
  one_way_goodput_bps : float;
  two_way_goodput_bps : float;
  ack_drops : int;
  forward_timeouts : int;
  backward_goodput_bps : float;
}

type outcome = { duration : float; rows : row list }

let forward_flows = 2

let backward_flows = 2

let params = { Tcp.Params.default with rwnd = 20 }

(* Both trunks get the paper's tight 8-packet gateway; one-way runs
   leave the reverse trunk to ACKs alone, two-way runs contend it. *)
let config ~flows =
  {
    (Net.Dumbbell.paper_config ~flows) with
    gateway = Net.Dumbbell.Droptail { capacity = 8 };
    reverse_capacity = 8;
  }

let goodput ~duration t flow =
  Stats.Metrics.effective_throughput_bps
    t.Scenario.results.(flow).Scenario.trace ~mss:params.Tcp.Params.mss
    ~t0:5.0 ~t1:duration

let mean values = Stats.Metrics.mean values

let run_one_way ~seed ~duration ~variant =
  let t =
    Scenario.run
      (Scenario.make
         ~topology:(Scenario.dumbbell (config ~flows:forward_flows))
         ~flows:
           (List.init forward_flows (fun flow ->
                {
                  (Scenario.flow variant) with
                  Scenario.start = 0.2 *. float_of_int flow;
                }))
         ~params ~seed ~duration ())
  in
  mean (List.init forward_flows (goodput ~duration t))

let run_two_way ~seed ~duration ~variant =
  let flows = forward_flows + backward_flows in
  let flow_specs =
    List.init flows (fun flow ->
        let direction =
          if flow < forward_flows then Net.Dumbbell.Forward
          else Net.Dumbbell.Backward
        in
        {
          (Scenario.flow ~direction variant) with
          Scenario.start = 0.2 *. float_of_int flow;
        })
  in
  let t =
    Scenario.run
      (Scenario.make ~topology:(Scenario.dumbbell (config ~flows)) ~flows:flow_specs ~params ~seed
         ~duration ())
  in
  let forward = List.init forward_flows Fun.id in
  let backward = List.init backward_flows (fun i -> forward_flows + i) in
  let ack_drops =
    List.length
      (List.filter
         (fun { Scenario.payload; _ } -> payload = Scenario.Ack)
         t.Scenario.drop_log)
  in
  let timeouts =
    List.fold_left
      (fun acc flow ->
        acc
        + t.Scenario.results.(flow).Scenario.agent.Tcp.Agent.base
            .Tcp.Sender_common.counters.Tcp.Counters.timeouts)
      0 forward
  in
  ( mean (List.map (goodput ~duration t) forward),
    mean (List.map (goodput ~duration t) backward),
    ack_drops,
    timeouts )

let run ?(variants = Core.Variant.[ Reno; Rr ]) ?(seed = 53L)
    ?(duration = 40.0) () =
  let rows =
    List.map
      (fun variant ->
        let one_way = run_one_way ~seed ~duration ~variant in
        let two_way, backward, ack_drops, forward_timeouts =
          run_two_way ~seed ~duration ~variant
        in
        {
          variant;
          one_way_goodput_bps = one_way;
          two_way_goodput_bps = two_way;
          ack_drops;
          forward_timeouts;
          backward_goodput_bps = backward;
        })
      variants
  in
  { duration; rows }

let report outcome =
  let header =
    [
      "variant";
      "fwd goodput 1-way (Kbps)";
      "fwd goodput 2-way (Kbps)";
      "penalty";
      "ACK drops";
      "fwd timeouts";
      "bwd goodput (Kbps)";
    ]
  in
  let rows =
    List.map
      (fun row ->
        [
          Core.Variant.name row.variant;
          Printf.sprintf "%.1f" (row.one_way_goodput_bps /. 1000.0);
          Printf.sprintf "%.1f" (row.two_way_goodput_bps /. 1000.0);
          Printf.sprintf "%.0f%%"
            (100.0
            *. (1.0 -. (row.two_way_goodput_bps /. row.one_way_goodput_bps)));
          string_of_int row.ack_drops;
          string_of_int row.forward_timeouts;
          Printf.sprintf "%.1f" (row.backward_goodput_bps /. 1000.0);
        ])
      outcome.rows
  in
  Printf.sprintf
    "Two-way traffic (paper reference [22]): %d forward vs %d backward flows\n\
     expected shape: reverse-direction data compresses and drops the\n\
     forward flows' ACKs, cutting their goodput well below the one-way\n\
     baseline even though the forward trunk itself is no more loaded\n\n\
     %s"
    forward_flows backward_flows
    (Stats.Text_table.render ~header rows)
