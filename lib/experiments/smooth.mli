(** Smooth-Start (the paper's reference [21]) — reducing the slow-start
    overshoot that creates multi-loss windows.

    With an unbounded advertised window, slow start doubles straight
    through the path capacity and dumps a burst of losses into the
    gateway — the very event §1 says robust recovery exists for. The
    cited Smooth-Start refinement damps growth to half rate above
    [ssthresh/2]. This experiment runs a single flow with and without
    the refinement and reports losses in the start-up phase, timeouts,
    and longer-horizon goodput, for both RR and New-Reno senders. *)

type row = {
  variant : Core.Variant.t;
  smooth : bool;
  startup_drops : int;  (** drops during the first 5 s *)
  timeouts : int;
  goodput_bps : float;  (** over the whole 20 s run *)
}

type outcome = { rows : row list }

(** [run ()] measures the 2×2 grid (variant × smooth-start). *)
val run : ?variants:Core.Variant.t list -> ?seed:int64 -> unit -> outcome

(** [report outcome] renders the grid. *)
val report : outcome -> string
