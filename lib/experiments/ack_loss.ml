type cell = {
  variant : Core.Variant.t;
  throughput_bps : float;
  timeouts : float;
}

type point = { ack_loss_rate : float; cells : cell list }

type outcome = { points : point list }

let params = { Tcp.Params.default with initial_ssthresh = 16.0; rwnd = 20 }

let burst = List.init 4 (fun i -> { Net.Loss.flow = 0; seq = 33 + i; occurrence = 1 })

let measure_window = 4.0

let run_one ~seed ~ack_loss variant =
  let t =
    Scenario.run
      (Scenario.make
         ~topology:(Scenario.dumbbell (Net.Dumbbell.paper_config ~flows:1))
         ~flows:[ Scenario.flow variant ] ~params ~seed ~forced_drops:burst
         ~ack_loss ())
  in
  let result = t.Scenario.results.(0) in
  let t0 =
    (* The first *data* drop (ACK drops also land in the log). *)
    let rec scan = function
      | [] -> failwith "Ack_loss: burst did not occur"
      | { Scenario.time; flow = 0; payload = Scenario.Data _ } :: _ -> time
      | _ :: rest -> scan rest
    in
    scan t.Scenario.drop_log
  in
  let throughput =
    Stats.Metrics.effective_throughput_bps result.Scenario.trace
      ~mss:params.Tcp.Params.mss ~t0 ~t1:(t0 +. measure_window)
  in
  let timeouts =
    result.Scenario.agent.Tcp.Agent.base.Tcp.Sender_common.counters
      .Tcp.Counters.timeouts
  in
  (throughput, timeouts)

let run ?(rates = [ 0.0; 0.05; 0.1; 0.2; 0.3 ])
    ?(variants = Core.Variant.[ Newreno; Sack; Rr ])
    ?(seeds = [ 2L; 19L; 47L; 83L; 151L ]) () =
  let points =
    List.map
      (fun ack_loss_rate ->
        let cells =
          List.map
            (fun variant ->
              let runs =
                List.map
                  (fun seed -> run_one ~seed ~ack_loss:ack_loss_rate variant)
                  seeds
              in
              {
                variant;
                throughput_bps = Stats.Metrics.mean (List.map fst runs);
                timeouts =
                  Stats.Metrics.mean
                    (List.map (fun (_, t) -> float_of_int t) runs);
              })
            variants
        in
        { ack_loss_rate; cells })
      rates
  in
  { points }

let report outcome =
  let variants =
    match outcome.points with
    | [] -> []
    | point :: _ -> List.map (fun c -> c.variant) point.cells
  in
  let header =
    "ACK loss rate"
    :: List.concat_map
         (fun v ->
           [
             Core.Variant.name v ^ " goodput (Kbps)";
             Core.Variant.name v ^ " timeouts";
           ])
         variants
  in
  let rows =
    List.map
      (fun point ->
        Printf.sprintf "%.0f%%" (100.0 *. point.ack_loss_rate)
        :: List.concat_map
             (fun cell ->
               [
                 Printf.sprintf "%.1f" (cell.throughput_bps /. 1000.0);
                 Printf.sprintf "%.1f" cell.timeouts;
               ])
             point.cells)
      outcome.points
  in
  Printf.sprintf
    "ACK-loss robustness (4-loss burst recovery under reverse-path drops, §2.3)\n\
     paper shape: RR degrades gracefully and stays ahead of New-Reno;\n\
     SACK is the least ACK-sensitive\n\n\
     %s"
    (Stats.Text_table.render ~header rows)
