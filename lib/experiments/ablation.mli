(** Ablation benches for the three RR design decisions DESIGN.md calls
    out, evaluated on the Figure 5 6-loss scenario:

    - retreat pacing: 1 new segment per 2 dup ACKs (paper) vs per 1
      (right-edge style, which §1 argues "adds fuel to the fire");
    - further-loss back-off: [actnum <- ndup] (linear, paper) vs
      halving;
    - exit window: [cwnd <- actnum] (paper, no big-ACK burst) vs
      [cwnd <- ssthresh] (New-Reno style). *)

type row = {
  label : string;
  ablation : Core.Rr.ablation;
  throughput_bps : float;
  recovery_seconds : float option;
  timeouts : int;
}

type outcome = { drops : int; measure_window : float; rows : row list }

(** [run ()] measures the paper design and each single-flag flip on the
    6-drop Figure 5 scenario. *)
val run : ?drops:int -> ?measure_window:float -> unit -> outcome

(** [report outcome] renders the comparison. *)
val report : outcome -> string
