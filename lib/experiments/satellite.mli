(** Long-RTT satellite paths (beyond the paper; ROADMAP item 4,
    PAPERS.md cs/9809066).

    A geostationary hop puts 500+ ms of one-way propagation under the
    paper's 0.8 Mbps trunk: a ~1.2 s RTT and a >100-packet
    bandwidth-delay product. Loss recovery dominates everything at that
    scale — a single timeout idles the pipe for seconds while slow-start
    rebuilds the window one RTT at a time, whereas dupack-clocked
    recovery retransmits within a round trip. This experiment compares
    variants on the paper's terrestrial path and on the satellite path
    (deep gateway and receiver window sized to the BDP) under light
    uniform loss. *)

type cell = {
  variant : Core.Variant.t;
  throughput_bps : float;  (** mean goodput over seeds *)
  utilization : float;  (** goodput / bottleneck rate *)
  timeouts : float;
  retransmits : float;
}

type point = {
  label : string;
  one_way_delay : float;  (** bottleneck one-way propagation, seconds *)
  buffer : int;  (** gateway capacity, packets *)
  rwnd : int;  (** receiver window, segments *)
  cells : cell list;
}

type outcome = { duration : float; loss : float; points : point list }

(** [run ()] measures Tahoe, New-Reno, SACK and RR on the paper's
    96 ms path and a 500 ms satellite path. *)
val run :
  ?variants:Core.Variant.t list -> ?seeds:int64 list -> unit -> outcome

(** [report outcome] renders the comparison. *)
val report : outcome -> string
