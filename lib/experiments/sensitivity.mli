(** Environment-sensitivity sweep: does the paper's headline ordering —
    RR ≥ New-Reno on bursty loss, close to SACK — survive away from the
    single Table 3 operating point?

    The 6-loss Figure 5 scenario is re-run across a grid of gateway
    buffer sizes and bottleneck propagation delays; each cell reports
    the RR/New-Reno and RR/SACK goodput ratios. A reproduction that only
    holds at one parameter point is a coincidence; this sweep is the
    robustness check. *)

type cell = {
  buffer : int;  (** gateway buffer, packets *)
  bottleneck_delay : float;  (** one-way, seconds *)
  rr_bps : float;
  newreno_bps : float;
  sack_bps : float;
}

type outcome = { drops : int; cells : cell list }

(** [run ()] sweeps buffers {4, 8, 16, 25} × one-way delays
    {48, 96, 192} ms on the 6-loss burst scenario. *)
val run :
  ?drops:int -> ?buffers:int list -> ?delays:float list -> unit -> outcome

(** [report outcome] renders the grid with ratio columns. *)
val report : outcome -> string

(** [ordering_holds outcome] is [true] when RR beats New-Reno in every
    cell — the property the scorecard checks. *)
val ordering_holds : outcome -> bool
