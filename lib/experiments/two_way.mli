(** Two-way traffic (Zhang, Shenker & Clark — the paper's reference
    [22], the §3.3 citation for drop-tail pathologies).

    When data flows in both directions, the reverse trunk's queue is
    shared by the forward flows' ACKs and the backward flows' data:
    ACKs are delayed behind 1000-byte data packets and dropped when the
    buffer fills (ACK compression and ACK loss), which bursts and
    starves the forward flows' self-clocking. The experiment compares
    forward-flow performance with and without backward traffic, for
    Reno and RR senders; §2.3's claim that RR tolerates ACK loss
    gracefully gets an ecological test here. *)

type row = {
  variant : Core.Variant.t;
  one_way_goodput_bps : float;  (** mean over forward flows, no reverse data *)
  two_way_goodput_bps : float;  (** same flows against backward traffic *)
  ack_drops : int;  (** ACKs lost in the two-way run *)
  forward_timeouts : int;  (** forward-flow timeouts in the two-way run *)
  backward_goodput_bps : float;  (** mean over backward flows *)
}

type outcome = { duration : float; rows : row list }

(** [run ()] measures both directions for each variant (default Reno
    and RR). *)
val run :
  ?variants:Core.Variant.t list -> ?seed:int64 -> ?duration:float -> unit ->
  outcome

(** [report outcome] renders the comparison. *)
val report : outcome -> string
