(** The experiment registry — one uniform handle per paper artifact.

    Every reproduction artifact (figures, tables, ablations,
    extensions) registers here exactly once as a record with a name, a
    one-line synopsis and a [run] thunk producing the printed report.
    The CLI's [all] and [list] commands and the benchmark harness's
    reproduction pass iterate this list instead of hand-wiring the
    per-figure modules. *)

type t = {
  name : string;  (** stable CLI identifier, e.g. ["fig5"] *)
  synopsis : string;  (** one line, suitable as a banner *)
  run : seed:int64 -> string;
      (** produce the experiment's report. [seed] is forwarded to every
          experiment that takes a single seed; experiments that average
          over their own fixed seed lists (fig7, ackloss) or are fully
          deterministic (ablation, sensitivity) ignore it. *)
}

(** All experiments, in the paper's presentation order followed by the
    extensions. Names are unique. *)
val all : t list

(** [find name] looks an experiment up by {!field-name}. *)
val find : string -> t option

(** [names] lists registered names, registration order. *)
val names : string list
