type result = {
  variant : Core.Variant.t;
  throughput_bps : float;
  mean_throughput_bps : float;
  timeouts : int;
  total_timeouts : int;
  fast_recoveries : int;
  sends : (float * float) list;
  acks : (float * float) list;
  cwnd : (float * float) list;
  red_early_drops : int;
  red_forced_drops : int;
}

type outcome = { duration : float; results : result list }

let flows = 10

(* Five flows at t = 0, then one every 0.5 s (paper §3.3). *)
let start_time flow = if flow < 5 then 0.0 else 0.5 *. float_of_int (flow - 4)

let config =
  {
    (Net.Dumbbell.paper_config ~flows) with
    gateway = Net.Dumbbell.Red { capacity = 25; params = Net.Red.paper_params };
  }

(* ns-2's default advertised window (window_ = 20 packets) is what makes
   the paper's flows see "bursty losses after cwnd reaches 16"; without
   the cap, slow start over-shoots into dozens of drops per window. *)
let params = { Tcp.Params.default with rwnd = 20 }

let paper_variants = Core.Variant.[ Tahoe; Newreno; Sack; Rr ]

let run_variant ~seed ~duration variant =
  let flow_specs =
    List.init flows (fun flow ->
        { (Scenario.flow variant) with Scenario.start = start_time flow })
  in
  Scenario.run (Scenario.make ~topology:(Scenario.dumbbell config) ~flows:flow_specs ~params ~seed ~duration ())

let run ?(variants = paper_variants) ?(seed = 11L) ?(duration = 6.0) () =
  let results =
    List.map
      (fun variant ->
        let t = run_variant ~seed ~duration variant in
        let mss = Tcp.Params.default.Tcp.Params.mss in
        let throughput_of flow =
          Stats.Metrics.effective_throughput_bps
            t.Scenario.results.(flow).Scenario.trace ~mss
            ~t0:(start_time flow) ~t1:duration
        in
        let first = t.Scenario.results.(0) in
        let trace = first.Scenario.trace in
        let counters flow =
          t.Scenario.results.(flow).Scenario.agent.Tcp.Agent.base
            .Tcp.Sender_common.counters
        in
        let sum f = List.fold_left ( + ) 0 (List.init flows f) in
        let early, forced =
          match Scenario.red_stats t with
          | Some stats -> (stats.Net.Red.early, stats.Net.Red.forced)
          | None -> (0, 0)
        in
        {
          variant;
          throughput_bps = throughput_of 0;
          mean_throughput_bps =
            List.fold_left ( +. ) 0.0 (List.init flows throughput_of)
            /. float_of_int flows;
          timeouts = (counters 0).Tcp.Counters.timeouts;
          total_timeouts = sum (fun i -> (counters i).Tcp.Counters.timeouts);
          fast_recoveries = (counters 0).Tcp.Counters.fast_retransmits;
          sends = Stats.Series.to_list trace.Stats.Flow_trace.sends;
          acks = Stats.Series.to_list trace.Stats.Flow_trace.una;
          cwnd = Stats.Series.to_list trace.Stats.Flow_trace.cwnd;
          red_early_drops = early;
          red_forced_drops = forced;
        })
      variants
  in
  { duration; results }

let report outcome =
  let header =
    [
      "variant";
      "flow1 goodput (Kbps)";
      "mean goodput (Kbps)";
      "flow1 timeouts";
      "all timeouts";
      "flow1 recoveries";
      "RED drops (early/forced)";
    ]
  in
  let rows =
    List.map
      (fun r ->
        [
          Core.Variant.name r.variant;
          Printf.sprintf "%.1f" (r.throughput_bps /. 1000.0);
          Printf.sprintf "%.1f" (r.mean_throughput_bps /. 1000.0);
          string_of_int r.timeouts;
          string_of_int r.total_timeouts;
          string_of_int r.fast_recoveries;
          Printf.sprintf "%d/%d" r.red_early_drops r.red_forced_drops;
        ])
      outcome.results
  in
  Printf.sprintf
    "Figure 6 (RED gateway, 10 staggered flows, %.0f s)\n\
     paper shape: RR achieves the highest effective throughput;\n\
     RR > SACK > New-Reno > Tahoe, New-Reno stalling on bursty loss\n\n\
     %s"
    outcome.duration
    (Stats.Text_table.render ~header rows)

let plot result =
  Stats.Ascii_plot.render ~width:72 ~height:20 ~x_label:"time (s)"
    ~y_label:"segment number"
    [
      { Stats.Ascii_plot.label = "transmission"; glyph = '.'; points = result.sends };
      { Stats.Ascii_plot.label = "cumulative ACK"; glyph = 'o'; points = result.acks };
    ]

let plot_cwnd result =
  Stats.Ascii_plot.render ~width:72 ~height:12 ~x_label:"time (s)"
    ~y_label:"cwnd (segments)"
    [ { Stats.Ascii_plot.label = "congestion window"; glyph = '*';
        points = result.cwnd } ]
