(** Competing with unresponsive CBR cross-traffic (beyond the paper).

    The paper's evaluation shares the bottleneck only among TCP flows,
    which all back off together. Real bottlenecks also carry traffic
    that does not respond to loss at all — constant-bit-rate UDP
    ({!Workload.Cbr}). This experiment gives a single TCP flow a
    bottleneck whose bandwidth is partly consumed by a CBR source and
    measures how much of the {e residual} capacity each variant
    actually extracts: an aggressive recovery scheme keeps the pipe
    full despite the permanently loss-inducing competitor, a timid one
    leaves residual bandwidth idle after every episode. *)

type cell = {
  variant : Core.Variant.t;
  throughput_bps : float;  (** mean TCP goodput over seeds *)
  timeouts : float;
  residual_share : float;
      (** goodput as a fraction of the bottleneck capacity the CBR
          leaves over (1.0 = TCP uses everything it could) *)
}

type point = {
  cbr_share : float;  (** CBR offered load / bottleneck capacity *)
  cbr_delivered : float;  (** fraction of CBR packets that got through *)
  cells : cell list;
}

type outcome = { points : point list }

(** [run ()] sweeps CBR shares (default 0, 0.25, 0.5 of the bottleneck)
    for New-Reno, SACK and RR. *)
val run :
  ?shares:float list ->
  ?variants:Core.Variant.t list ->
  ?seeds:int64 list ->
  unit ->
  outcome

(** [report outcome] renders the sweep. *)
val report : outcome -> string
