type cell = {
  variant : Core.Variant.t;
  throughput_bps : float;
  timeouts : float;
  ack_drops : float;
}

type point = { ratio : float; cells : cell list }

type outcome = { duration : float; points : point list }

let duration = 30.0

let flows = 2

let params = { Tcp.Params.default with rwnd = 20 }

(* The reverse trunk keeps the paper's tight 8-packet buffer: as the
   asym ratio grows, ACK serialization slows until the reverse queue
   overflows and the forward window loses its clock. *)
let config =
  {
    (Net.Dumbbell.paper_config ~flows) with
    reverse_capacity = 8;
  }

let faults_of_ratio ratio =
  if ratio <= 1.0 then Faults.Spec.none
  else { Faults.Spec.none with Faults.Spec.asym = Some ratio }

let run_one ~seed ~ratio variant =
  let t =
    Scenario.run
      (Scenario.make
         ~topology:(Scenario.dumbbell config)
         ~flows:
           (List.init flows (fun flow ->
                {
                  (Scenario.flow variant) with
                  Scenario.start = 0.2 *. float_of_int flow;
                }))
         ~params ~seed ~duration ~faults:(faults_of_ratio ratio) ())
  in
  let goodput =
    Stats.Metrics.mean
      (List.init flows (fun flow ->
           Stats.Metrics.effective_throughput_bps
             t.Scenario.results.(flow).Scenario.trace
             ~mss:params.Tcp.Params.mss ~t0:2.0 ~t1:duration))
  in
  let timeouts =
    List.fold_left
      (fun acc result ->
        acc
        + result.Scenario.agent.Tcp.Agent.base.Tcp.Sender_common.counters
            .Tcp.Counters.timeouts)
      0
      (Array.to_list t.Scenario.results)
  in
  let ack_drops =
    List.length
      (List.filter
         (fun d -> d.Scenario.payload = Scenario.Ack)
         t.Scenario.drop_log)
  in
  (goodput, timeouts, ack_drops)

let run ?(ratios = [ 1.0; 5.0; 10.0; 20.0; 50.0; 100.0; 200.0 ])
    ?(variants = Core.Variant.[ Newreno; Sack; Rr ]) ?(seeds = [ 7L; 29L ]) ()
    =
  let points =
    List.map
      (fun ratio ->
        let cells =
          List.map
            (fun variant ->
              let runs =
                List.map (fun seed -> run_one ~seed ~ratio variant) seeds
              in
              {
                variant;
                throughput_bps =
                  Stats.Metrics.mean (List.map (fun (x, _, _) -> x) runs);
                timeouts =
                  Stats.Metrics.mean
                    (List.map (fun (_, t, _) -> float_of_int t) runs);
                ack_drops =
                  Stats.Metrics.mean
                    (List.map (fun (_, _, a) -> float_of_int a) runs);
              })
            variants
        in
        { ratio; cells })
      ratios
  in
  { duration; points }

let report outcome =
  let variants =
    match outcome.points with
    | [] -> []
    | point :: _ -> List.map (fun c -> c.variant) point.cells
  in
  let header =
    "fwd:rev ratio"
    :: List.concat_map
         (fun v ->
           let n = Core.Variant.name v in
           [ n ^ " goodput (Kbps)"; n ^ " timeouts"; n ^ " ACK drops" ])
         variants
  in
  let rows =
    List.map
      (fun point ->
        Printf.sprintf "%.0f:1" point.ratio
        :: List.concat_map
             (fun cell ->
               [
                 Printf.sprintf "%.1f" (cell.throughput_bps /. 1000.0);
                 Printf.sprintf "%.1f" cell.timeouts;
                 Printf.sprintf "%.1f" cell.ack_drops;
               ])
             point.cells)
      outcome.points
  in
  Printf.sprintf
    "Asymmetric ACK channels: reverse trunk at 1/R of the forward rate\n\
     (asym:R spec clause; %d forward flows share the path, per-flow mean \
     goodput)\n\
     ACK congestion starves the self-clock long before the data path is \
     full\n\n\
     %s"
    flows
    (Stats.Text_table.render ~header rows)
