type cell = {
  variant : Core.Variant.t;
  throughput_bps : float;
  timeouts : float;
  fault_drops : float;
}

type point = { label : string; buffer : int; faults : Faults.Spec.t; cells : cell list }

type outcome = { duration : float; points : point list }

let duration = 30.0

(* The hostile conditions, as spec-DSL strings so the experiment
   exercises exactly what `rr-sim run --faults` would: a four-level
   fading cycle (full, half, quarter rates) and a cellular handover
   (400 ms dark gap, alternate full-/half-rate cells) every 5 s. *)
let fade_spec = "fade:2+1+0.5+0.25"

let handover_spec = "handover:5+0.4"

let spec_of s =
  match Faults.Spec.of_string s with
  | Ok spec -> spec
  | Error m -> invalid_arg ("Mobile: bad spec " ^ s ^ ": " ^ m)

let run_one ~seed ~buffer ~faults variant =
  let config =
    {
      (Net.Dumbbell.paper_config ~flows:1) with
      gateway = Net.Dumbbell.Droptail { capacity = buffer };
    }
  in
  let t =
    Scenario.run
      (Scenario.make
         ~topology:(Scenario.dumbbell config)
         ~flows:[ Scenario.flow variant ]
         ~params:{ Tcp.Params.default with rwnd = 64 }
         ~seed ~duration ~faults ())
  in
  let result = t.Scenario.results.(0) in
  let throughput =
    Stats.Metrics.effective_throughput_bps result.Scenario.trace
      ~mss:Tcp.Params.default.Tcp.Params.mss ~t0:2.0 ~t1:duration
  in
  let timeouts =
    result.Scenario.agent.Tcp.Agent.base.Tcp.Sender_common.counters
      .Tcp.Counters.timeouts
  in
  let fault_drops =
    match t.Scenario.injector with
    | Some injector -> Faults.Injector.fault_drops injector
    | None -> 0
  in
  (throughput, timeouts, fault_drops)

let cells ~buffer ~faults ~variants ~seeds =
  List.map
    (fun variant ->
      let runs =
        List.map (fun seed -> run_one ~seed ~buffer ~faults variant) seeds
      in
      {
        variant;
        throughput_bps = Stats.Metrics.mean (List.map (fun (x, _, _) -> x) runs);
        timeouts =
          Stats.Metrics.mean (List.map (fun (_, t, _) -> float_of_int t) runs);
        fault_drops =
          Stats.Metrics.mean (List.map (fun (_, _, d) -> float_of_int d) runs);
      })
    variants

let run ?(variants = Core.Variant.[ Newreno; Sack; Rr ]) ?(seeds = [ 7L; 29L ])
    () =
  let fade = spec_of fade_spec and handover = spec_of handover_spec in
  let points =
    List.map
      (fun (label, buffer, faults) ->
        { label; buffer; faults; cells = cells ~buffer ~faults ~variants ~seeds })
      [
        ("clean, paper buffer", 8, Faults.Spec.none);
        ("fading, paper buffer", 8, fade);
        ("handover, paper buffer", 8, handover);
        ("fading, deep buffer", 64, fade);
        ("handover, deep buffer", 64, handover);
      ]
  in
  { duration; points }

let report outcome =
  let variants =
    match outcome.points with
    | [] -> []
    | point :: _ -> List.map (fun c -> c.variant) point.cells
  in
  let header =
    "Condition (buffer)"
    :: List.concat_map
         (fun v ->
           let n = Core.Variant.name v in
           [ n ^ " goodput (Kbps)"; n ^ " timeouts"; n ^ " fault drops" ])
         variants
  in
  let rows =
    List.map
      (fun point ->
        Printf.sprintf "%s (%d)" point.label point.buffer
        :: List.concat_map
             (fun cell ->
               [
                 Printf.sprintf "%.1f" (cell.throughput_bps /. 1000.0);
                 Printf.sprintf "%.1f" cell.timeouts;
                 Printf.sprintf "%.1f" cell.fault_drops;
               ])
             point.cells)
      outcome.points
  in
  Printf.sprintf
    "Mobile-channel robustness: time-varying trunk rate over the dumbbell\n\
     fading = rate cycle 1x/0.5x/0.25x every 2 s (%s)\n\
     handover = 400 ms dark gap + burst loss + cell-rate step every 5 s (%s)\n\
     deep buffer = 64-packet gateway (bufferbloat regime; paper's is 8)\n\n\
     %s"
    fade_spec handover_spec
    (Stats.Text_table.render ~header rows)
