(** §5's convergence claim — "RR strictly follows the AIMD rule and is
    TCP-friendly. It converges to the optimal point if competing TCP
    connections have same RTTs" — plus the implied converse (AIMD's
    well-known RTT bias when they do not).

    Four same-variant flows share the bottleneck:

    - {b equal RTTs}: all four at the Table 3 delay — Jain's index must
      approach 1 (the convergence claim);
    - {b heterogeneous RTTs}: access delays staggered so the nominal
      RTTs are roughly 0.2/0.28/0.36/0.44 s — shorter-RTT flows win
      bandwidth, quantified by the goodput ratio of the fastest to the
      slowest flow. *)

type row = {
  variant : Core.Variant.t;
  equal_rtt_jain : float;
  hetero_jain : float;
  hetero_bias : float;
      (** goodput of the shortest-RTT flow / longest-RTT flow *)
  goodputs_hetero : float list;  (** per flow, ascending RTT *)
}

type outcome = { duration : float; rows : row list }

(** [run ()] measures RR and Reno (default). *)
val run :
  ?variants:Core.Variant.t list -> ?seed:int64 -> ?duration:float -> unit ->
  outcome

(** [report outcome] renders the comparison. *)
val report : outcome -> string
