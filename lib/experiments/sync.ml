type row = {
  gateway : string;
  variant : Core.Variant.t;
  sync_index : float;
  loss_events : int;
  utilization : float;
  jain : float;
  queue_cov : float;
}

type outcome = { duration : float; rows : row list }

let flows = 10

let params = { Tcp.Params.default with rwnd = 20 }

(* Cluster the drop log into loss events separated by at least one RTT,
   and average the fraction of flows each event touches. *)
let synchronization ~rtt drop_log =
  let data_drops =
    List.filter_map
      (fun { Scenario.time; flow; payload } ->
        match payload with
        | Scenario.Data _ -> Some (time, flow)
        | Scenario.Ack -> None)
      drop_log
  in
  let rec cluster events current last_time = function
    | [] -> List.rev (if current = [] then events else current :: events)
    | (time, flow) :: rest ->
      if current <> [] && time -. last_time > rtt then
        cluster (current :: events) [ flow ] time rest
      else cluster events (flow :: current) time rest
  in
  let events = cluster [] [] 0.0 data_drops in
  let fraction event =
    let distinct = List.sort_uniq compare event in
    float_of_int (List.length distinct) /. float_of_int flows
  in
  match events with
  | [] -> (0.0, 0)
  | _ ->
    (Stats.Metrics.mean (List.map fraction events), List.length events)

let run_gateway ~seed ~duration ~variant gateway_label gateway =
  let config = { (Net.Dumbbell.paper_config ~flows) with gateway } in
  let flow_specs =
    List.init flows (fun flow ->
        {
          (Scenario.flow variant) with
          Scenario.start = 0.2 *. float_of_int flow;
        })
  in
  let t =
    Scenario.run
      (Scenario.make ~topology:(Scenario.dumbbell config) ~flows:flow_specs ~params ~seed ~duration
         ~monitor_queue:0.05 ())
  in
  let mss = params.Tcp.Params.mss in
  let goodputs =
    List.init flows (fun flow ->
        Stats.Metrics.effective_throughput_bps
          t.Scenario.results.(flow).Scenario.trace ~mss ~t0:5.0 ~t1:duration)
  in
  let rtt = Scenario.rtt_estimate config ~mss ~ack_size:params.Tcp.Params.ack_size in
  let sync_index, loss_events = synchronization ~rtt t.Scenario.drop_log in
  let queue_cov =
    match t.Scenario.queue_occupancy with
    | Some series ->
      let steady = Stats.Series.between series ~t0:5.0 ~t1:duration in
      Stats.Metrics.coefficient_of_variation (List.map snd steady)
    | None -> 0.0
  in
  {
    gateway = gateway_label;
    variant;
    sync_index;
    loss_events;
    utilization =
      List.fold_left ( +. ) 0.0 goodputs
      /. config.Net.Dumbbell.bottleneck_bandwidth_bps;
    jain = Stats.Metrics.jain_index goodputs;
    queue_cov;
  }

let run ?(variants = Core.Variant.[ Reno; Rr ]) ?(seed = 31L)
    ?(duration = 30.0) () =
  let rows =
    List.concat_map
      (fun variant ->
        [
          run_gateway ~seed ~duration ~variant "drop-tail"
            (Net.Dumbbell.Droptail { capacity = 25 });
          run_gateway ~seed ~duration ~variant "red"
            (Net.Dumbbell.Red { capacity = 25; params = Net.Red.paper_params });
        ])
      variants
  in
  { duration; rows }

let report outcome =
  let header =
    [
      "gateway";
      "variant";
      "sync index";
      "loss events";
      "utilization";
      "Jain index";
      "queue CoV";
    ]
  in
  let rows =
    List.map
      (fun row ->
        [
          row.gateway;
          Core.Variant.name row.variant;
          Printf.sprintf "%.2f" row.sync_index;
          string_of_int row.loss_events;
          Printf.sprintf "%.1f%%" (100.0 *. row.utilization);
          Printf.sprintf "%.3f" row.jain;
          Printf.sprintf "%.2f" row.queue_cov;
        ])
      outcome.rows
  in
  Printf.sprintf
    "Global synchronization: drop-tail vs RED (10 flows, %.0f s; §3.3)\n\
     expected shape: drop-tail loss events hit a larger fraction of the\n\
     flows at once (higher sync index) than RED's randomized early drops\n\n\
     %s"
    outcome.duration
    (Stats.Text_table.render ~header rows)
