(** §2.3 — effect of ACK losses on congestion recovery.

    RR clocks its recovery off returning duplicate ACKs, so lost ACKs
    look like further data losses and cause (only) a linear [actnum]
    back-off; New-Reno loses a new-data transmission for every two lost
    dup ACKs and stalls sooner; SACK is least sensitive but still times
    out when the ACK of a retransmission is lost. The paper argues RR
    degrades gracefully ("rare ACK losses cause only a slight negative
    effect"); this experiment quantifies that.

    Setup: one flow recovers from a forced 4-loss burst while the
    reverse path drops ACKs uniformly at rate [a]; effective throughput
    around the recovery episode and timeout counts are averaged over
    several seeds per point. *)

type cell = {
  variant : Core.Variant.t;
  throughput_bps : float;  (** mean over seeds *)
  timeouts : float;  (** mean over seeds *)
}

type point = { ack_loss_rate : float; cells : cell list }

type outcome = { points : point list }

(** [run ()] sweeps ACK-loss rates (default 0 … 0.3) for New-Reno, SACK
    and RR. *)
val run :
  ?rates:float list ->
  ?variants:Core.Variant.t list ->
  ?seeds:int64 list ->
  unit ->
  outcome

(** [report outcome] renders the sweep. *)
val report : outcome -> string
