type cell = {
  buffer : int;
  bottleneck_delay : float;
  rr_bps : float;
  newreno_bps : float;
  sack_bps : float;
}

type outcome = { drops : int; cells : cell list }

let params = { Tcp.Params.default with initial_ssthresh = 16.0; rwnd = 20 }

let measure ~drops ~buffer ~bottleneck_delay variant =
  let config =
    {
      (Net.Dumbbell.paper_config ~flows:1) with
      gateway = Net.Dumbbell.Droptail { capacity = buffer };
      bottleneck_delay;
    }
  in
  let rules =
    List.init drops (fun i -> { Net.Loss.flow = 0; seq = 33 + i; occurrence = 1 })
  in
  let t =
    Scenario.run
      (Scenario.make ~topology:(Scenario.dumbbell config) ~flows:[ Scenario.flow variant ] ~params
         ~forced_drops:rules ())
  in
  let t0 =
    match Scenario.first_drop_time t ~flow:0 with
    | Some time -> time
    | None -> failwith "Sensitivity: drops did not occur"
  in
  (* Scale the measurement window with the RTT so slow paths get the
     same number of round trips to recover in. *)
  let rtt =
    Scenario.rtt_estimate config ~mss:params.Tcp.Params.mss
      ~ack_size:params.Tcp.Params.ack_size
  in
  Stats.Metrics.effective_throughput_bps t.Scenario.results.(0).Scenario.trace
    ~mss:params.Tcp.Params.mss ~t0 ~t1:(t0 +. (15.0 *. rtt))

let run ?(drops = 6) ?(buffers = [ 4; 8; 16; 25 ])
    ?(delays = [ Sim.Units.ms 48.0; Sim.Units.ms 96.0; Sim.Units.ms 192.0 ]) () =
  let cells =
    List.concat_map
      (fun buffer ->
        List.map
          (fun bottleneck_delay ->
            let goodput variant =
              measure ~drops ~buffer ~bottleneck_delay variant
            in
            {
              buffer;
              bottleneck_delay;
              rr_bps = goodput Core.Variant.Rr;
              newreno_bps = goodput Core.Variant.Newreno;
              sack_bps = goodput Core.Variant.Sack;
            })
          delays)
      buffers
  in
  { drops; cells }

let ordering_holds outcome =
  List.for_all (fun cell -> cell.rr_bps > cell.newreno_bps) outcome.cells

let report outcome =
  let header =
    [
      "buffer (pkts)";
      "1-way delay (ms)";
      "RR (Kbps)";
      "New-Reno (Kbps)";
      "SACK (Kbps)";
      "RR/NR";
      "RR/SACK";
    ]
  in
  let rows =
    List.map
      (fun cell ->
        [
          string_of_int cell.buffer;
          Printf.sprintf "%.0f" (cell.bottleneck_delay *. 1000.0);
          Printf.sprintf "%.1f" (cell.rr_bps /. 1000.0);
          Printf.sprintf "%.1f" (cell.newreno_bps /. 1000.0);
          Printf.sprintf "%.1f" (cell.sack_bps /. 1000.0);
          Printf.sprintf "%.2f" (cell.rr_bps /. cell.newreno_bps);
          Printf.sprintf "%.2f" (cell.rr_bps /. cell.sack_bps);
        ])
      outcome.cells
  in
  Printf.sprintf
    "Environment sensitivity (%d-loss burst across buffer x delay grid)\n\
     robustness check: RR > New-Reno in every cell, RR ~ SACK throughout\n\
     (ordering holds: %b)\n\n\
     %s"
    outcome.drops (ordering_holds outcome)
    (Stats.Text_table.render ~header rows)
