(** Many-flow scale scenario (beyond the paper).

    Drives a {!Tcp.Flock} — flat-array NewReno-shaped senders and
    receivers — through a six-link aggregate dumbbell built on
    {!Net.Topology}, then summarises the per-flow goodput stream with
    {!Stats.Welford} and a bounded {!Stats.Reservoir}. The whole run is
    O(flows) memory and completes 50k flows x 60 s in seconds, where
    the per-flow {!Scenario} machinery would not. *)

type outcome = {
  flows : int;
  duration : float;  (** seconds *)
  bottleneck_bps : float;
  aggregate_goodput_bps : float;  (** sum of per-flow goodputs *)
  goodput : Stats.Welford.t;  (** streaming per-flow goodput moments *)
  quantiles : (float * float) list;
      (** (quantile, goodput bps) pairs, ascending, from the reservoir
          sample *)
  jain : float;  (** fairness index over every flow, computed streaming *)
  delivered_segments : int;
  retransmits : int;
  timeouts : int;
  drops : int;
}

(** [spec ~bottleneck_bps ~buffer] is the aggregate dumbbell: hosts
    [src], [dst] and gateways [r1], [r2], with every flow sharing the
    [gateway]/[reverse_gateway] trunks. Exposed for tests. *)
val spec : bottleneck_bps:float -> buffer:int -> Net.Topology.spec

(** [run ()] executes the scenario. Defaults: 50 000 flows, 60 s,
    100 Mbps bottleneck, 1024-packet drop-tail buffer, flow starts
    staggered over 1 s, default TCP parameters with [rwnd = 20].

    @raise Invalid_argument when [flows < 1] or [duration <= 0]. *)
val run :
  ?flows:int ->
  ?duration:float ->
  ?seed:int64 ->
  ?bottleneck_bps:float ->
  ?buffer:int ->
  ?stagger:float ->
  ?params:Tcp.Params.t ->
  unit ->
  outcome

val report : outcome -> string
