type cell = {
  variant : Core.Variant.t;
  throughput_bps : float;
  timeouts : float;
  mice_finished : float;
  mice_completion : float;
}

type outcome = { mice_flows : int; cells : cell list }

let duration = 30.0

let run_one ~seed ~mice_flows variant =
  let config = Net.Dumbbell.paper_config ~flows:(1 + mice_flows) in
  let mouse =
    Scenario.flow ~source:(Scenario.Mice Workload.Mice.default)
      Core.Variant.Newreno
  in
  let t =
    Scenario.run
      (Scenario.make ~topology:(Scenario.dumbbell config)
         ~flows:(Scenario.flow variant :: List.init mice_flows (fun _ -> mouse))
         ~seed ~duration ())
  in
  let bulk = t.Scenario.results.(0) in
  let throughput =
    Stats.Metrics.effective_throughput_bps bulk.Scenario.trace
      ~mss:Tcp.Params.default.Tcp.Params.mss ~t0:2.0 ~t1:duration
  in
  let timeouts =
    bulk.Scenario.agent.Tcp.Agent.base.Tcp.Sender_common.counters
      .Tcp.Counters.timeouts
  in
  let finished = ref 0 in
  let completion_sum = ref 0.0 in
  Array.iteri
    (fun i result ->
      if i > 0 then
        match result.Scenario.mice with
        | None -> ()
        | Some mice ->
          finished := !finished + Workload.Mice.finished_bursts mice;
          List.iter
            (fun c ->
              completion_sum :=
                !completion_sum
                +. (c.Workload.Mice.finished -. c.Workload.Mice.started))
            (Workload.Mice.completions mice))
    t.Scenario.results;
  let mean_completion =
    if !finished = 0 then 0.0 else !completion_sum /. float_of_int !finished
  in
  (throughput, timeouts, !finished, mean_completion)

let run ?(mice_flows = 2) ?(variants = Core.Variant.[ Newreno; Sack; Rr ])
    ?(seeds = [ 7L; 31L ]) () =
  let cells =
    List.map
      (fun variant ->
        let runs =
          List.map (fun seed -> run_one ~seed ~mice_flows variant) seeds
        in
        {
          variant;
          throughput_bps =
            Stats.Metrics.mean (List.map (fun (x, _, _, _) -> x) runs);
          timeouts =
            Stats.Metrics.mean
              (List.map (fun (_, t, _, _) -> float_of_int t) runs);
          mice_finished =
            Stats.Metrics.mean
              (List.map (fun (_, _, f, _) -> float_of_int f) runs);
          mice_completion =
            Stats.Metrics.mean (List.map (fun (_, _, _, c) -> c) runs);
        })
      variants
  in
  { mice_flows; cells }

let report outcome =
  let header =
    [
      "Bulk variant";
      "bulk goodput (Kbps)";
      "bulk timeouts";
      "mice bursts done";
      "mice completion (ms)";
    ]
  in
  let rows =
    List.map
      (fun cell ->
        [
          Core.Variant.name cell.variant;
          Printf.sprintf "%.1f" (cell.throughput_bps /. 1000.0);
          Printf.sprintf "%.1f" cell.timeouts;
          Printf.sprintf "%.1f" cell.mice_finished;
          Printf.sprintf "%.0f" (1000.0 *. cell.mice_completion);
        ])
      outcome.cells
  in
  Printf.sprintf
    "Bulk transfer among %d Pareto on/off web-mice sources\n\
     (mice are New-Reno; completion time is per finished burst)\n\n\
     %s"
    outcome.mice_flows
    (Stats.Text_table.render ~header rows)
