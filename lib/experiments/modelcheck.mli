(** Model-vs-measured validation of every modeled variant.

    Runs each variant alone on the clean uniform-loss dumbbell (the
    fig7 setup) and compares the measured steady-state window
    [BW * RTT / MSS] against the variant's own analytical model:

    - Reno / New-Reno / SACK / FACK / RR — {!Model.Mathis} with
      [C = sqrt (3/2)];
    - Relentless — {!Model.Relentless}, the arxiv 1102.3270
      equilibrium [1/p];
    - RRR — {!Model.Rrr} at the configured congestion level.

    All predictions are capped at the advertised window. The [dev]
    column is the signed relative deviation; the tier-1 test suite
    pins Relentless within 15% of its model at the default operating
    point, and [rr-sim modelcheck --check TOL] turns any larger
    deviation into a non-zero exit. *)

type row = {
  variant : Core.Variant.t;
  model : string;  (** which model predicted, e.g. ["1/p"] *)
  predicted_window : float;  (** model window, segments, rwnd-capped *)
  measured_window : float;  (** measured [BW * RTT / MSS], segments *)
  deviation : float;  (** [(measured - predicted) / predicted] *)
  timeouts : int;  (** cross-seed mean, rounded down *)
}

type point = { loss_rate : float; rows : row list }

type outcome = {
  rtt : float;  (** analytic no-queue RTT used for window conversion *)
  rwnd : int;
  rrr_level : float;
  points : point list;  (** one per loss rate, in argument order *)
}

(** The modeled variants: Reno, New-Reno, SACK, RR, Relentless, RRR. *)
val default_variants : Core.Variant.t list

(** [0.002 … 0.1] — spanning both regimes. At small [p] the
    advertised-window cap binds (the §4 "sufficient receiver window"
    never exists on a real path), timeouts are rare, and measurements
    sit within a few percent of the capped models. As [p] grows the
    deviations grow for every variant, Relentless fastest: its
    equilibrium operates at one loss per RTT by construction, so lost
    retransmissions — which the NewReno-style detection can only
    repair by RTO, a path no steady-state model includes — become
    routine. The report deliberately shows both regimes. *)
val default_loss_rates : float list

(** [model_window variant ~rrr_level ~loss_rate ~rwnd] is the
    variant's model name and rwnd-capped window prediction. *)
val model_window :
  Core.Variant.t ->
  rrr_level:float ->
  loss_rate:float ->
  rwnd:int ->
  string * float

(** [run ()] measures every variant × loss rate, averaging windows
    over [seeds]. *)
val run :
  ?variants:Core.Variant.t list ->
  ?loss_rates:float list ->
  ?seeds:int64 list ->
  ?duration:float ->
  ?rwnd:int ->
  ?rrr_level:float ->
  unit ->
  outcome

(** [deviation outcome ~variant ~loss_rate] is the signed relative
    deviation at one grid cell, when present. *)
val deviation :
  outcome -> variant:Core.Variant.t -> loss_rate:float -> float option

val report : outcome -> string
