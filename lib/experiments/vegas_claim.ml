type row = {
  label : string;
  throughput_bps : float;
  recovery_seconds : float option;
  timeouts : int;
}

type outcome = { drops : int; rows : row list }

let params = { Tcp.Params.default with initial_ssthresh = 16.0; rwnd = 20 }

let configurations =
  [
    ("reno", None);
    ("vegas (full)", Some Tcp.Vegas.full);
    ( "vegas recovery only",
      Some
        {
          Tcp.Vegas.fine_retransmit = true;
          rtt_based_avoidance = false;
          cautious_slow_start = false;
        } );
    ( "vegas avoidance only",
      Some
        {
          Tcp.Vegas.fine_retransmit = false;
          rtt_based_avoidance = true;
          cautious_slow_start = true;
        } );
  ]

let make_flow label = function
  | None -> Scenario.flow Core.Variant.Reno
  | Some mechanisms ->
    {
      Scenario.label;
      make =
        (fun ~engine ~params ~flow ~emit () ->
          Scenario.build
            (Tcp.Vegas.create_with ~engine ~params ~flow ~emit ~mechanisms ()));
      start = 0.0;
      source = Scenario.Infinite;
      direction = Net.Dumbbell.Forward;
    }

let run ?(drops = 3) ?(seed = 7L) () =
  let drop_seqs = List.init drops (fun i -> 33 + i) in
  let last_drop = List.fold_left max 0 drop_seqs in
  let rules =
    List.map (fun seq -> { Net.Loss.flow = 0; seq; occurrence = 1 }) drop_seqs
  in
  let rows =
    List.map
      (fun (label, mechanisms) ->
        let t =
          Scenario.run
            (Scenario.make
               ~topology:(Scenario.dumbbell (Net.Dumbbell.paper_config ~flows:1))
               ~flows:[ make_flow label mechanisms ]
               ~params ~seed ~forced_drops:rules ())
        in
        let result = t.Scenario.results.(0) in
        let t0 =
          match Scenario.first_drop_time t ~flow:0 with
          | Some time -> time
          | None -> failwith "Vegas_claim: drops did not occur"
        in
        {
          label;
          throughput_bps =
            Stats.Metrics.effective_throughput_bps result.Scenario.trace
              ~mss:params.Tcp.Params.mss ~t0 ~t1:(t0 +. 3.0);
          recovery_seconds =
            Option.map
              (fun finish -> finish -. t0)
              (Stats.Metrics.recovery_completion_time result.Scenario.trace
                 ~target_seq:last_drop);
          timeouts =
            result.Scenario.agent.Tcp.Agent.base.Tcp.Sender_common.counters
              .Tcp.Counters.timeouts;
        })
      configurations
  in
  { drops; rows }

let report outcome =
  let header =
    [ "configuration"; "goodput (Kbps)"; "recovery time (s)"; "timeouts" ]
  in
  let rows =
    List.map
      (fun row ->
        [
          row.label;
          Printf.sprintf "%.1f" (row.throughput_bps /. 1000.0);
          (match row.recovery_seconds with
          | Some s -> Printf.sprintf "%.2f" s
          | None -> "never");
          string_of_int row.timeouts;
        ])
      outcome.rows
  in
  Printf.sprintf
    "Vegas decomposition (ref [8] of the paper): %d-loss burst recovery\n\
     claim: Vegas' gain over Reno comes from its recovery changes, not\n\
     its RTT-based congestion avoidance\n\n\
     %s"
    outcome.drops
    (Stats.Text_table.render ~header rows)
