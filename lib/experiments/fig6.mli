(** Figure 6 — recovery dynamics under RED gateways.

    Ten flows of the same variant share the 0.8 Mbps bottleneck behind a
    RED gateway (buffer 25, Table 4 parameters). Five start at t = 0 and
    one more every 0.5 s until 2.5 s; all are persistent FTPs; the run
    lasts 6 s. Heavy congestion at the RED gateway produces bursty
    drops; the paper plots flow 1's sequence-number trace per recovery
    mechanism and reports that RR achieves the highest effective
    throughput (RR > SACK > New-Reno, with New-Reno's ACK flow visibly
    stalling). *)

type result = {
  variant : Core.Variant.t;
  throughput_bps : float;  (** flow 0 goodput over the whole run *)
  mean_throughput_bps : float;  (** mean over all flows *)
  timeouts : int;  (** flow 0 *)
  total_timeouts : int;  (** all flows *)
  fast_recoveries : int;  (** flow 0 recovery entries *)
  sends : (float * float) list;  (** flow 0 (time, seq) transmissions *)
  acks : (float * float) list;  (** flow 0 (time, ackno) *)
  cwnd : (float * float) list;
      (** flow 0 (time, cwnd) — the paper's §3.3 narration tracks this
          ("bursty packet losses occur after cwnd reaches 16") *)
  red_early_drops : int;
  red_forced_drops : int;
}

type outcome = { duration : float; results : result list }

(** [run ()] executes the scenario for each variant (default: the
    paper's New-Reno, SACK, RR trio plus Tahoe). *)
val run :
  ?variants:Core.Variant.t list -> ?seed:int64 -> ?duration:float -> unit ->
  outcome

(** [report outcome] renders the throughput table. *)
val report : outcome -> string

(** [plot result] renders the flow-0 sequence-number trace as an ASCII
    scatter plot (sends and cumulative ACKs). *)
val plot : result -> string

(** [plot_cwnd result] renders the flow-0 congestion-window trajectory. *)
val plot_cwnd : result -> string
