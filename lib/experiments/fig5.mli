(** Figure 5 — effective throughput during congestion recovery when 3
    (left) or 6 (right) packets are lost within one window of data,
    under drop-tail gateways.

    The paper engineers the loss pattern with two background flows and
    an 8-packet buffer, noting any setup that yields the same pattern is
    equivalent; here a deterministic drop list at R1 forces exactly the
    requested first-transmission losses inside one window (see
    DESIGN.md). The flow's advertised window is capped at the pipe size
    so no incidental drops pollute the measurement.

    Reported per variant: effective throughput over a fixed window
    starting at the first drop, the time to repair the whole loss
    window (cumulative ACK passing the last dropped segment), and
    timeout/retransmission counts. *)

type row = {
  variant : Core.Variant.t;
  throughput_bps : float;  (** over [first drop, first drop + window] *)
  recovery_seconds : float option;
      (** first drop → cumulative ACK past the loss window *)
  timeouts : int;
  retransmits : int;
}

type outcome = {
  drops : int;
  drop_seqs : int list;
  measure_window : float;
  rows : row list;  (** one per variant, paper order *)
}

(** [run ~drops ()] executes the scenario for every variant.
    [measure_window] defaults to 3 s (≈15 RTTs, covering recovery for
    all variants); [variants] defaults to the paper's four (Tahoe,
    New-Reno, SACK, RR) plus Reno. *)
val run :
  drops:int ->
  ?measure_window:float ->
  ?variants:Core.Variant.t list ->
  ?seed:int64 ->
  unit ->
  outcome

(** [report outcome] renders the comparison table with the paper's
    expected ordering noted. *)
val report : outcome -> string

(** {1 The paper's literal setup}

    §3.2 engineers the loss pattern with two infinite background flows
    behind an 8-packet buffer while the measured first connection sends
    a limited amount of data; its effective throughput is then
    [file size / transfer time]. This mode reproduces that literal
    arrangement (one deterministic run — drop-tail phase effects and
    all); the forced-drop mode above is the controlled version. *)

type background_row = {
  b_variant : Core.Variant.t;
  transfer_seconds : float option;
  effective_throughput_bps : float option;
  target_drops : int;
  b_timeouts : int;
}

type background_outcome = {
  file_bytes : int;
  target_start : float;
  b_rows : background_row list;
}

(** [run_background ()] runs the 3-flow setup per variant (all three
    flows use the same recovery mechanism, as in §3.3's convention). *)
val run_background :
  ?file_bytes:int ->
  ?variants:Core.Variant.t list ->
  ?seed:int64 ->
  unit ->
  background_outcome

(** [report_background outcome] renders the table. *)
val report_background : background_outcome -> string
