type row = {
  variant : Core.Variant.t;
  smooth : bool;
  startup_drops : int;
  timeouts : int;
  goodput_bps : float;
}

type outcome = { rows : row list }

let duration = 20.0

let startup = 5.0

(* ssthresh 28 = the path's pipe capacity (BDP ~21 + 8-packet buffer):
   plain slow start overshoots to 2x that before the loss signal
   returns; smooth-start approaches it at half rate. *)
let params =
  { Tcp.Params.default with initial_ssthresh = 28.0; rwnd = 10_000 }

let run_one ~seed ~smooth variant =
  let t =
    Scenario.run
      (Scenario.make
         ~topology:(Scenario.dumbbell (Net.Dumbbell.paper_config ~flows:1))
         ~flows:[ Scenario.flow variant ]
         ~params:{ params with smooth_start = smooth }
         ~seed ~duration ())
  in
  let result = t.Scenario.results.(0) in
  let startup_drops =
    List.length
      (List.filter
         (fun { Scenario.time; payload; _ } ->
           (match payload with Scenario.Data _ -> true | Scenario.Ack -> false)
           && time <= startup)
         t.Scenario.drop_log)
  in
  {
    variant;
    smooth;
    startup_drops;
    timeouts =
      result.Scenario.agent.Tcp.Agent.base.Tcp.Sender_common.counters
        .Tcp.Counters.timeouts;
    goodput_bps =
      Stats.Metrics.effective_throughput_bps result.Scenario.trace
        ~mss:params.Tcp.Params.mss ~t0:0.0 ~t1:duration;
  }

let run ?(variants = Core.Variant.[ Newreno; Rr ]) ?(seed = 13L) () =
  let rows =
    List.concat_map
      (fun variant ->
        [ run_one ~seed ~smooth:false variant; run_one ~seed ~smooth:true variant ])
      variants
  in
  { rows }

let report outcome =
  let header =
    [ "variant"; "smooth-start"; "startup drops"; "timeouts"; "goodput (Kbps)" ]
  in
  let rows =
    List.map
      (fun row ->
        [
          Core.Variant.name row.variant;
          (if row.smooth then "on" else "off");
          string_of_int row.startup_drops;
          string_of_int row.timeouts;
          Printf.sprintf "%.1f" (row.goodput_bps /. 1000.0);
        ])
      outcome.rows
  in
  Printf.sprintf
    "Smooth-Start extension (paper ref [21]): slow-start overshoot control\n\
     expected shape: smooth-start sheds start-up losses without hurting\n\
     long-run goodput\n\n\
     %s"
    (Stats.Text_table.render ~header rows)
