type cell = {
  variant : Core.Variant.t;
  throughput_bps : float;
  fast_retransmits : float;
  timeouts : float;
}

type point = { prob : float; cells : cell list }

type outcome = { points : point list }

let duration = 20.0

let run_one ~seed ~prob variant =
  let faults =
    if prob = 0.0 then Faults.Spec.none
    else
      {
        Faults.Spec.none with
        Faults.Spec.reorder =
          Some
            {
              Faults.Spec.prob;
              max_extra = Faults.Spec.default_reorder_extra;
            };
      }
  in
  let t =
    Scenario.run
      (Scenario.make
         ~topology:(Scenario.dumbbell (Net.Dumbbell.paper_config ~flows:1))
         ~flows:[ Scenario.flow variant ] ~seed ~duration ~faults ())
  in
  let result = t.Scenario.results.(0) in
  let counters =
    result.Scenario.agent.Tcp.Agent.base.Tcp.Sender_common.counters
  in
  let throughput =
    Stats.Metrics.effective_throughput_bps result.Scenario.trace
      ~mss:Tcp.Params.default.Tcp.Params.mss ~t0:2.0 ~t1:duration
  in
  ( throughput,
    counters.Tcp.Counters.fast_retransmits,
    counters.Tcp.Counters.timeouts )

let run ?(probs = [ 0.0; 0.02; 0.05; 0.1 ])
    ?(variants = Core.Variant.[ Newreno; Sack; Rr ]) ?(seeds = [ 5L; 23L ]) ()
    =
  let points =
    List.map
      (fun prob ->
        let cells =
          List.map
            (fun variant ->
              let runs =
                List.map (fun seed -> run_one ~seed ~prob variant) seeds
              in
              {
                variant;
                throughput_bps =
                  Stats.Metrics.mean (List.map (fun (x, _, _) -> x) runs);
                fast_retransmits =
                  Stats.Metrics.mean
                    (List.map (fun (_, f, _) -> float_of_int f) runs);
                timeouts =
                  Stats.Metrics.mean
                    (List.map (fun (_, _, t) -> float_of_int t) runs);
              })
            variants
        in
        { prob; cells })
      probs
  in
  { points }

let report outcome =
  let variants =
    match outcome.points with
    | [] -> []
    | point :: _ -> List.map (fun c -> c.variant) point.cells
  in
  let header =
    "Reorder prob"
    :: List.concat_map
         (fun v ->
           let n = Core.Variant.name v in
           [ n ^ " goodput (Kbps)"; n ^ " fast rtx"; n ^ " timeouts" ])
         variants
  in
  let rows =
    List.map
      (fun point ->
        Printf.sprintf "%.0f%%" (100.0 *. point.prob)
        :: List.concat_map
             (fun cell ->
               [
                 Printf.sprintf "%.1f" (cell.throughput_bps /. 1000.0);
                 Printf.sprintf "%.1f" cell.fast_retransmits;
                 Printf.sprintf "%.1f" cell.timeouts;
               ])
             point.cells)
      outcome.points
  in
  Printf.sprintf
    "Packet reordering robustness (bounded extra delay at the bottleneck, no \
     injected loss)\n\
     recoveries beyond the 0%% row are spurious: reordered segments arrive \
     within %.0f ms\n\n\
     %s"
    (1000.0 *. Faults.Spec.default_reorder_extra)
    (Stats.Text_table.render ~header rows)
