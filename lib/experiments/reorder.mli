(** Robustness to packet reordering (beyond the paper).

    Fast retransmit infers loss from 3 duplicate ACKs, so a network
    that reorders packets — route flutter, multi-path, link-layer
    retransmission — triggers {e spurious} recoveries: the "lost"
    segment arrives moments later, but the window has already been
    halved. This experiment measures how each variant's throughput and
    spurious-recovery count degrade as the reordering probability
    grows, using {!Faults.Injector.reorder} at the bottleneck entry
    (bounded extra delay, {!Faults.Spec.default_reorder_extra}).

    Setup: one persistent flow on the paper's dumbbell, no injected
    loss — recoveries beyond the prob-0 baseline (whose few episodes
    are genuine buffer-overflow losses) are reordering-induced. *)

type cell = {
  variant : Core.Variant.t;
  throughput_bps : float;  (** mean goodput over seeds *)
  fast_retransmits : float;  (** mean spurious recovery entries *)
  timeouts : float;  (** mean RTO expiries *)
}

type point = { prob : float; cells : cell list }

type outcome = { points : point list }

(** [run ()] sweeps reordering probabilities (default 0 … 0.1) for
    New-Reno, SACK and RR. *)
val run :
  ?probs:float list ->
  ?variants:Core.Variant.t list ->
  ?seeds:int64 list ->
  unit ->
  outcome

(** [report outcome] renders the sweep. *)
val report : outcome -> string
