(** Recovery across link outages (beyond the paper).

    A mobile or multi-homed path does not lose isolated packets — it
    goes {e dark} for hundreds of milliseconds (handoff) and comes back,
    or a route withdrawal empties the bottleneck buffer outright. This
    experiment cuts both trunk directions of the dumbbell on a periodic
    schedule ({!Faults.Schedule.periodic} via {!Faults.Injector}) and
    compares how each variant's goodput and timeout count survive, under
    both down-transition policies:

    - [`Hold_queued] (handoff): the bottleneck buffer survives the
      outage and drains on restore — losses come only from overflow
      while dark;
    - [`Drop_queued] (outage): the buffer is discarded at cut time, so
      every outage costs a whole window and recovery starts from
      scratch. *)

type cell = {
  variant : Core.Variant.t;
  throughput_bps : float;  (** mean goodput over seeds *)
  timeouts : float;  (** mean RTO expiries *)
  fault_drops : float;  (** mean packets discarded by the flaps *)
}

type point = { policy : [ `Drop_queued | `Hold_queued ]; cells : cell list }

type outcome = {
  period : float;
  down_for : float;
  baseline : cell list;  (** same variants with no flaps at all *)
  points : point list;
}

(** [run ()] measures a 300 ms outage every 5 s (default) for New-Reno,
    SACK and RR under both policies. *)
val run :
  ?period:float ->
  ?down_for:float ->
  ?variants:Core.Variant.t list ->
  ?seeds:int64 list ->
  unit ->
  outcome

(** [report outcome] renders the comparison. *)
val report : outcome -> string
