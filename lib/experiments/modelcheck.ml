type row = {
  variant : Core.Variant.t;
  model : string;
  predicted_window : float;
  measured_window : float;
  deviation : float;
  timeouts : int;
}

type point = { loss_rate : float; rows : row list }

type outcome = {
  rtt : float;
  rwnd : int;
  rrr_level : float;
  points : point list;
}

let default_variants =
  Core.Variant.[ Reno; Newreno; Sack; Rr; Relentless; Rrr ]

let default_loss_rates = [ 0.002; 0.005; 0.01; 0.03; 0.1 ]

(* Same clean dumbbell as fig7: a generous buffer so queue overflow
   never adds to the injected uniform loss the models are written
   for. *)
let config =
  {
    (Net.Dumbbell.paper_config ~flows:1) with
    gateway = Net.Dumbbell.Droptail { capacity = 25 };
  }

let warmup = 5.0

let model_window variant ~rrr_level ~loss_rate ~rwnd =
  match variant with
  | Core.Variant.Relentless ->
    ("1/p", Model.Relentless.window_limited ~loss_rate ~rwnd)
  | Core.Variant.Rrr ->
    ( Printf.sprintf "rrr(%g)" rrr_level,
      Model.Rrr.window_limited ~level:rrr_level ~loss_rate ~rwnd )
  | Core.Variant.Tahoe | Core.Variant.Reno | Core.Variant.Newreno
  | Core.Variant.Sack | Core.Variant.Fack | Core.Variant.Vegas
  | Core.Variant.Rr ->
    ( "C/sqrt(p)",
      Model.Mathis.window_limited ~c:Model.Mathis.c_ack_every_packet
        ~loss_rate ~rwnd )

let run_one ~params ~seed ~duration ~loss_rate variant =
  let t =
    Scenario.run
      (Scenario.make
         ~topology:(Scenario.dumbbell config)
         ~flows:[ Scenario.flow variant ]
         ~params ~seed ~duration ~uniform_loss:loss_rate ())
  in
  let result = t.Scenario.results.(0) in
  let bw =
    Stats.Metrics.effective_throughput_bps result.Scenario.trace
      ~mss:params.Tcp.Params.mss ~t0:warmup ~t1:duration
  in
  let timeouts =
    result.Scenario.agent.Tcp.Agent.base.Tcp.Sender_common.counters
      .Tcp.Counters.timeouts
  in
  (bw, timeouts)

let run ?(variants = default_variants) ?(loss_rates = default_loss_rates)
    ?(seeds = [ 3L; 17L; 29L; 101L; 2048L ]) ?(duration = 100.0) ?(rwnd = 20)
    ?(rrr_level = 0.5) () =
  let params = { Tcp.Params.default with rwnd; rrr_level } in
  let mss = params.Tcp.Params.mss in
  let rtt =
    Scenario.rtt_estimate config ~mss ~ack_size:params.Tcp.Params.ack_size
  in
  let mean values =
    List.fold_left ( +. ) 0.0 values /. float_of_int (List.length values)
  in
  let points =
    List.map
      (fun loss_rate ->
        let rows =
          List.map
            (fun variant ->
              let runs =
                List.map
                  (fun seed -> run_one ~params ~seed ~duration ~loss_rate variant)
                  seeds
              in
              let bw = mean (List.map fst runs) in
              let timeouts =
                List.fold_left ( + ) 0 (List.map snd runs) / List.length seeds
              in
              let measured_window = bw *. rtt /. float_of_int (8 * mss) in
              let model, predicted_window =
                model_window variant ~rrr_level ~loss_rate ~rwnd
              in
              {
                variant;
                model;
                predicted_window;
                measured_window;
                deviation =
                  (measured_window -. predicted_window) /. predicted_window;
                timeouts;
              })
            variants
        in
        { loss_rate; rows })
      loss_rates
  in
  { rtt; rwnd; rrr_level; points }

let deviation outcome ~variant ~loss_rate =
  List.find_map
    (fun point ->
      if point.loss_rate = loss_rate then
        List.find_map
          (fun row ->
            if row.variant = variant then Some row.deviation else None)
          point.rows
      else None)
    outcome.points

let report outcome =
  let header =
    [ "loss rate p"; "variant"; "model"; "predicted"; "measured"; "dev"; "timeouts" ]
  in
  let rows =
    List.concat_map
      (fun point ->
        List.map
          (fun row ->
            [
              Printf.sprintf "%.3f" point.loss_rate;
              Core.Variant.name row.variant;
              row.model;
              Printf.sprintf "%.1f" row.predicted_window;
              Printf.sprintf "%.1f" row.measured_window;
              Printf.sprintf "%+.1f%%" (100.0 *. row.deviation);
              string_of_int row.timeouts;
            ])
          point.rows)
      outcome.points
  in
  Printf.sprintf
    "Model validation (clean dumbbell, RTT=%.3f s, MSS=1000 B, rwnd=%d)\n\
     each variant against its own steady-state model, capped at rwnd:\n\
     Reno family vs Mathis C/sqrt(p) (C=%.2f), Relentless vs the\n\
     arxiv 1102.3270 equilibrium 1/p, RRR (level %g) vs the generalised\n\
     AIMD mean sqrt((2-l)/(2*l*p)); deviation = (measured - model)/model\n\n\
     %s"
    outcome.rtt outcome.rwnd Model.Mathis.c_ack_every_packet outcome.rrr_level
    (Stats.Text_table.render ~header rows)
