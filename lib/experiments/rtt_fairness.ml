type row = {
  variant : Core.Variant.t;
  equal_rtt_jain : float;
  hetero_jain : float;
  hetero_bias : float;
  goodputs_hetero : float list;
}

type outcome = { duration : float; rows : row list }

let flows = 4

let params = { Tcp.Params.default with rwnd = 20 }

let config =
  {
    (Net.Dumbbell.paper_config ~flows) with
    gateway = Net.Dumbbell.Droptail { capacity = 25 };
  }

(* Access one-way delays of 1/21/41/61 ms on top of the 96 ms bottleneck
   give nominal RTTs of ~0.2 to ~0.44 s. *)
let hetero_delays =
  [| Sim.Units.ms 1.0; Sim.Units.ms 21.0; Sim.Units.ms 41.0; Sim.Units.ms 61.0 |]

let goodputs ~duration t =
  List.init flows (fun flow ->
      Stats.Metrics.effective_throughput_bps
        t.Scenario.results.(flow).Scenario.trace ~mss:params.Tcp.Params.mss
        ~t0:10.0 ~t1:duration)

let run_case ~seed ~duration ~variant side_delays =
  let flow_specs =
    List.init flows (fun flow ->
        {
          (Scenario.flow variant) with
          Scenario.start = 0.15 *. float_of_int flow;
        })
  in
  let t =
    Scenario.run
      (Scenario.make ~topology:(Scenario.dumbbell config) ~flows:flow_specs ~params ~seed ~duration
         ?side_delays ())
  in
  goodputs ~duration t

let run ?(variants = Core.Variant.[ Rr; Reno ]) ?(seed = 41L)
    ?(duration = 120.0) () =
  let rows =
    List.map
      (fun variant ->
        let equal = run_case ~seed ~duration ~variant None in
        let hetero = run_case ~seed ~duration ~variant (Some hetero_delays) in
        let first = List.nth hetero 0 in
        let last = List.nth hetero (flows - 1) in
        {
          variant;
          equal_rtt_jain = Stats.Metrics.jain_index equal;
          hetero_jain = Stats.Metrics.jain_index hetero;
          hetero_bias = (if last > 0.0 then first /. last else infinity);
          goodputs_hetero = hetero;
        })
      variants
  in
  { duration; rows }

let report outcome =
  let header =
    [
      "variant";
      "Jain (equal RTT)";
      "Jain (hetero RTT)";
      "short/long bias";
      "hetero goodputs (Kbps)";
    ]
  in
  let rows =
    List.map
      (fun row ->
        [
          Core.Variant.name row.variant;
          Printf.sprintf "%.3f" row.equal_rtt_jain;
          Printf.sprintf "%.3f" row.hetero_jain;
          Printf.sprintf "%.1fx" row.hetero_bias;
          String.concat "/"
            (List.map
               (fun g -> Printf.sprintf "%.0f" (g /. 1000.0))
               row.goodputs_hetero);
        ])
      outcome.rows
  in
  Printf.sprintf
    "RTT fairness (4 flows, drop-tail, %.0f s; paper section 5)\n\
     claim: with equal RTTs RR converges to the fair share (Jain -> 1);\n\
     with unequal RTTs the usual AIMD short-RTT bias appears\n\n\
     %s"
    outcome.duration
    (Stats.Text_table.render ~header rows)
