type cell = {
  variant : Core.Variant.t;
  throughput_bps : float;
  timeouts : float;
  fault_drops : float;
}

type point = { policy : [ `Drop_queued | `Hold_queued ]; cells : cell list }

type outcome = {
  period : float;
  down_for : float;
  baseline : cell list;
  points : point list;
}

let duration = 30.0

let run_one ~seed ~faults variant =
  let t =
    Scenario.run
      (Scenario.make
         ~topology:(Scenario.dumbbell (Net.Dumbbell.paper_config ~flows:1))
         ~flows:[ Scenario.flow variant ] ~seed ~duration ~faults ())
  in
  let result = t.Scenario.results.(0) in
  let throughput =
    Stats.Metrics.effective_throughput_bps result.Scenario.trace
      ~mss:Tcp.Params.default.Tcp.Params.mss ~t0:2.0 ~t1:duration
  in
  let timeouts =
    result.Scenario.agent.Tcp.Agent.base.Tcp.Sender_common.counters
      .Tcp.Counters.timeouts
  in
  let fault_drops =
    match t.Scenario.injector with
    | Some injector -> Faults.Injector.fault_drops injector
    | None -> 0
  in
  (throughput, timeouts, fault_drops)

let mean_cells ~faults ~variants ~seeds =
  List.map
    (fun variant ->
      let runs = List.map (fun seed -> run_one ~seed ~faults variant) seeds in
      {
        variant;
        throughput_bps = Stats.Metrics.mean (List.map (fun (x, _, _) -> x) runs);
        timeouts =
          Stats.Metrics.mean (List.map (fun (_, t, _) -> float_of_int t) runs);
        fault_drops =
          Stats.Metrics.mean (List.map (fun (_, _, d) -> float_of_int d) runs);
      })
    variants

let run ?(period = 5.0) ?(down_for = 0.3)
    ?(variants = Core.Variant.[ Newreno; Sack; Rr ]) ?(seeds = [ 7L; 29L ]) ()
    =
  let baseline = mean_cells ~faults:Faults.Spec.none ~variants ~seeds in
  let points =
    List.map
      (fun policy ->
        let faults =
          {
            Faults.Spec.none with
            Faults.Spec.flaps =
              Some (Faults.Spec.Periodic { period; down_for });
            flap_policy = policy;
          }
        in
        { policy; cells = mean_cells ~faults ~variants ~seeds })
      [ `Hold_queued; `Drop_queued ]
  in
  { period; down_for; baseline; points }

let report outcome =
  let variants = List.map (fun c -> c.variant) outcome.baseline in
  let header =
    "Flap policy"
    :: List.concat_map
         (fun v ->
           let n = Core.Variant.name v in
           [ n ^ " goodput (Kbps)"; n ^ " timeouts"; n ^ " fault drops" ])
         variants
  in
  let row label cells =
    label
    :: List.concat_map
         (fun cell ->
           [
             Printf.sprintf "%.1f" (cell.throughput_bps /. 1000.0);
             Printf.sprintf "%.1f" cell.timeouts;
             Printf.sprintf "%.1f" cell.fault_drops;
           ])
         cells
  in
  let rows =
    row "none (baseline)" outcome.baseline
    :: List.map
         (fun point ->
           let label =
             match point.policy with
             | `Hold_queued -> "hold (handoff)"
             | `Drop_queued -> "drop (outage)"
           in
           row label point.cells)
         outcome.points
  in
  Printf.sprintf
    "Link-flap robustness: %.0f ms outage of both trunk directions every \
     %.0f s\n\
     hold keeps the bottleneck buffer across the outage; drop discards it\n\n\
     %s"
    (1000.0 *. outcome.down_for) outcome.period
    (Stats.Text_table.render ~header rows)
