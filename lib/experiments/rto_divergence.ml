type cell = {
  estimator : Tcp.Rto.estimator;
  throughput_bps : float;
  timeouts : float;
  divergences : float;
  sync_bursts : float;
  sample : string option;
}

type outcome = {
  period : float;
  down_for : float;
  min_rto : float;
  cells : cell list;
}

(* The paper's coarse defaults (min 1 s, initial 3 s) clamp every
   estimator to the same floor on the ~200 ms Table 3 path, hiding the
   family's differences entirely; fine timers are where Jain's layered
   comparison actually separates. *)
let params estimator =
  {
    Tcp.Params.default with
    Tcp.Params.rwnd = 20;
    min_rto = 0.2;
    initial_rto = 0.5;
    max_rto = 8.0;
    rto_estimator = estimator;
  }

let run_one ~seed ~faults ~duration estimator =
  let params = params estimator in
  let t =
    Scenario.run
      (Scenario.make
         ~topology:(Scenario.dumbbell (Net.Dumbbell.paper_config ~flows:2))
         ~flows:Core.Variant.[ Scenario.flow Rr; Scenario.flow Rr ]
         ~params ~seed ~duration ~faults ~watch_divergence:true ())
  in
  let throughput =
    Array.to_list t.Scenario.results
    |> List.map (fun r ->
           Stats.Metrics.effective_throughput_bps r.Scenario.trace
             ~mss:params.Tcp.Params.mss ~t0:2.0 ~t1:duration)
    |> List.fold_left ( +. ) 0.0
  in
  let timeouts =
    Array.to_list t.Scenario.results
    |> List.fold_left
         (fun acc r ->
           acc
           + r.Scenario.agent.Tcp.Agent.base.Tcp.Sender_common.counters
               .Tcp.Counters.timeouts)
         0
  in
  let monitor =
    match t.Scenario.divergence with
    | Some monitor -> monitor
    | None -> assert false
  in
  (throughput, timeouts, monitor)

let run ?(period = 6.0) ?(down_for = 2.0) ?(duration = 30.0)
    ?(estimators = Tcp.Rto.estimators) ?(seeds = [ 7L; 29L ]) () =
  let faults =
    {
      Faults.Spec.none with
      Faults.Spec.flaps =
        Some (Faults.Spec.Periodic { period; down_for });
      flap_policy = `Drop_queued;
    }
  in
  let cells =
    List.map
      (fun estimator ->
        let runs =
          List.map (fun seed -> run_one ~seed ~faults ~duration estimator) seeds
        in
        let monitors = List.map (fun (_, _, m) -> m) runs in
        {
          estimator;
          throughput_bps =
            Stats.Metrics.mean (List.map (fun (x, _, _) -> x) runs);
          timeouts =
            Stats.Metrics.mean
              (List.map (fun (_, t, _) -> float_of_int t) runs);
          divergences =
            Stats.Metrics.mean
              (List.map
                 (fun m -> float_of_int (Audit.Divergence.divergence_count m))
                 monitors);
          sync_bursts =
            Stats.Metrics.mean
              (List.map
                 (fun m -> float_of_int (Audit.Divergence.sync_burst_count m))
                 monitors);
          sample =
            (* Prefer an RTO-divergence finding — the rarer, more telling
               of the two rules — over a synchronization burst. *)
            (let render f =
               Printf.sprintf "[%.2fs] %s: %s — %s" f.Audit.Divergence.time
                 f.Audit.Divergence.subject f.Audit.Divergence.rule
                 f.Audit.Divergence.detail
             in
             let all = List.concat_map Audit.Divergence.findings monitors in
             match
               List.find_opt
                 (fun f -> f.Audit.Divergence.rule = "rto-divergence")
                 all
             with
             | Some f -> Some (render f)
             | None -> (
               match all with f :: _ -> Some (render f) | [] -> None));
        })
      estimators
  in
  { period; down_for; min_rto = (params Tcp.Rto.Jacobson).Tcp.Params.min_rto;
    cells }

let findings outcome =
  List.fold_left
    (fun acc c -> acc +. c.divergences +. c.sync_bursts)
    0.0 outcome.cells

let report outcome =
  let header =
    [
      "RTO estimator";
      "goodput (Kbps)";
      "timeouts";
      "divergences";
      "sync bursts";
    ]
  in
  let rows =
    List.map
      (fun c ->
        [
          Tcp.Rto.estimator_name c.estimator;
          Printf.sprintf "%.1f" (c.throughput_bps /. 1000.0);
          Printf.sprintf "%.1f" c.timeouts;
          Printf.sprintf "%.1f" c.divergences;
          Printf.sprintf "%.1f" c.sync_bursts;
        ])
      outcome.cells
  in
  let sample =
    match List.find_map (fun c -> c.sample) outcome.cells with
    | Some s -> "\nexample finding: " ^ s ^ "\n"
    | None -> ""
  in
  Printf.sprintf
    "RTO-estimator divergence (Jain, cs/9809097) under link flaps: %.0f s \
     outage every %.0f s, buffer dropped at cut\n\
     two RR flows, fine timers (min RTO %.0f ms); the divergence audit \
     flags RTO running away from measured RTT and synchronized timeout \
     bursts\n\n\
     %s%s"
    outcome.down_for outcome.period
    (1000.0 *. outcome.min_rto)
    (Stats.Text_table.render ~header rows)
    sample
