type cell = {
  variant : Core.Variant.t;
  throughput_bps : float;
  timeouts : float;
  residual_share : float;
}

type point = {
  cbr_share : float;
  cbr_delivered : float;
  cells : cell list;
}

type outcome = { points : point list }

let duration = 20.0

let run_one ~seed ~share variant =
  let config =
    Net.Dumbbell.paper_config ~flows:(if share > 0.0 then 2 else 1)
  in
  let cross =
    if share > 0.0 then
      [
        Scenario.cbr
          ~rate_bps:(share *. config.Net.Dumbbell.bottleneck_bandwidth_bps)
          ();
      ]
    else []
  in
  let t =
    Scenario.run
      (Scenario.make ~topology:(Scenario.dumbbell config) ~flows:[ Scenario.flow variant ] ~seed ~duration
         ~cross ())
  in
  let result = t.Scenario.results.(0) in
  let throughput =
    Stats.Metrics.effective_throughput_bps result.Scenario.trace
      ~mss:Tcp.Params.default.Tcp.Params.mss ~t0:2.0 ~t1:duration
  in
  let timeouts =
    result.Scenario.agent.Tcp.Agent.base.Tcp.Sender_common.counters
      .Tcp.Counters.timeouts
  in
  let residual =
    (1.0 -. share) *. config.Net.Dumbbell.bottleneck_bandwidth_bps
  in
  let delivered =
    if share > 0.0 then
      let cr = t.Scenario.cross_results.(0) in
      let sent = Workload.Cbr.sent cr.Scenario.source in
      if sent = 0 then 1.0
      else float_of_int cr.Scenario.received /. float_of_int sent
    else 1.0
  in
  (throughput, timeouts, throughput /. residual, delivered)

let run ?(shares = [ 0.0; 0.25; 0.5 ])
    ?(variants = Core.Variant.[ Newreno; Sack; Rr ]) ?(seeds = [ 7L; 41L ]) ()
    =
  let points =
    List.map
      (fun share ->
        let all_runs =
          List.map
            (fun variant ->
              (variant, List.map (fun seed -> run_one ~seed ~share variant) seeds))
            variants
        in
        let cells =
          List.map
            (fun (variant, runs) ->
              {
                variant;
                throughput_bps =
                  Stats.Metrics.mean (List.map (fun (x, _, _, _) -> x) runs);
                timeouts =
                  Stats.Metrics.mean
                    (List.map (fun (_, t, _, _) -> float_of_int t) runs);
                residual_share =
                  Stats.Metrics.mean (List.map (fun (_, _, r, _) -> r) runs);
              })
            all_runs
        in
        let cbr_delivered =
          Stats.Metrics.mean
            (List.concat_map
               (fun (_, runs) -> List.map (fun (_, _, _, d) -> d) runs)
               all_runs)
        in
        { cbr_share = share; cbr_delivered; cells })
      shares
  in
  { points }

let report outcome =
  let variants =
    match outcome.points with
    | [] -> []
    | point :: _ -> List.map (fun c -> c.variant) point.cells
  in
  let header =
    "CBR share" :: "CBR delivered"
    :: List.concat_map
         (fun v ->
           let n = Core.Variant.name v in
           [ n ^ " goodput (Kbps)"; n ^ " residual use"; n ^ " timeouts" ])
         variants
  in
  let rows =
    List.map
      (fun point ->
        Printf.sprintf "%.0f%%" (100.0 *. point.cbr_share)
        :: Printf.sprintf "%.0f%%" (100.0 *. point.cbr_delivered)
        :: List.concat_map
             (fun cell ->
               [
                 Printf.sprintf "%.1f" (cell.throughput_bps /. 1000.0);
                 Printf.sprintf "%.0f%%" (100.0 *. cell.residual_share);
                 Printf.sprintf "%.1f" cell.timeouts;
               ])
             point.cells)
      outcome.points
  in
  Printf.sprintf
    "Unresponsive CBR cross-traffic at the bottleneck\n\
     residual use = TCP goodput / capacity the CBR leaves over\n\n\
     %s"
    (Stats.Text_table.render ~header rows)
