(** Mobile-channel robustness: fading, handover and bufferbloat
    (beyond the paper; ROADMAP item 4).

    A cellular link does not fail cleanly — its rate wanders across
    fading levels, and a handover is a short dark gap that burst-drops
    the queued backlog and resumes at the {e next} cell's rate. This
    experiment drives the dumbbell's trunk with the spec-DSL hostile
    clauses ([fade:...], [handover:...], realized through
    {!Faults.Timeline} and {!Faults.Injector.vary_link}) and compares
    variants under the paper's tight 8-packet gateway and a 64-packet
    deep-buffer (bufferbloat) regime, where rate down-steps translate
    into queueing delay instead of prompt loss. *)

type cell = {
  variant : Core.Variant.t;
  throughput_bps : float;  (** mean goodput over seeds *)
  timeouts : float;  (** mean RTO expiries *)
  fault_drops : float;  (** mean packets burst-lost at handovers *)
}

type point = {
  label : string;
  buffer : int;  (** gateway capacity, packets *)
  faults : Faults.Spec.t;
  cells : cell list;
}

type outcome = { duration : float; points : point list }

(** [run ()] measures New-Reno, SACK and RR across clean / fading /
    handover conditions, each under paper and deep buffers. *)
val run :
  ?variants:Core.Variant.t list -> ?seeds:int64 list -> unit -> outcome

(** [report outcome] renders the comparison. *)
val report : outcome -> string
