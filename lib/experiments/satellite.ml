type cell = {
  variant : Core.Variant.t;
  throughput_bps : float;
  utilization : float;
  timeouts : float;
  retransmits : float;
}

type point = {
  label : string;
  one_way_delay : float;
  buffer : int;
  rwnd : int;
  cells : cell list;
}

type outcome = { duration : float; loss : float; points : point list }

let duration = 120.0

let loss = 0.002

(* 0.8 Mbps at a 1.2 s RTT is a ~120-packet bandwidth-delay product;
   the deep gateway and rwnd let a sender actually fill it, so the
   experiment measures recovery behaviour rather than window caps. *)
let satellite_delay = 0.5

let satellite_buffer = 100

let satellite_rwnd = 150

let run_point ~seed ~one_way_delay ~buffer ~rwnd variant =
  let config =
    {
      (Net.Dumbbell.paper_config ~flows:1) with
      bottleneck_delay = one_way_delay;
      gateway = Net.Dumbbell.Droptail { capacity = buffer };
    }
  in
  let t =
    Scenario.run
      (Scenario.make
         ~topology:(Scenario.dumbbell config)
         ~flows:[ Scenario.flow variant ]
         ~params:{ Tcp.Params.default with rwnd }
         ~seed ~duration ~uniform_loss:loss ())
  in
  let result = t.Scenario.results.(0) in
  let throughput =
    Stats.Metrics.effective_throughput_bps result.Scenario.trace
      ~mss:Tcp.Params.default.Tcp.Params.mss ~t0:5.0 ~t1:duration
  in
  let counters =
    result.Scenario.agent.Tcp.Agent.base.Tcp.Sender_common.counters
  in
  ( throughput,
    counters.Tcp.Counters.timeouts,
    counters.Tcp.Counters.retransmits )

let cells ~one_way_delay ~buffer ~rwnd ~variants ~seeds ~bottleneck_bps =
  List.map
    (fun variant ->
      let runs =
        List.map
          (fun seed -> run_point ~seed ~one_way_delay ~buffer ~rwnd variant)
          seeds
      in
      let throughput =
        Stats.Metrics.mean (List.map (fun (x, _, _) -> x) runs)
      in
      {
        variant;
        throughput_bps = throughput;
        utilization = throughput /. bottleneck_bps;
        timeouts =
          Stats.Metrics.mean (List.map (fun (_, t, _) -> float_of_int t) runs);
        retransmits =
          Stats.Metrics.mean (List.map (fun (_, _, r) -> float_of_int r) runs);
      })
    variants

let run ?(variants = Core.Variant.[ Tahoe; Newreno; Sack; Rr ])
    ?(seeds = [ 7L; 29L ]) () =
  let bottleneck_bps =
    (Net.Dumbbell.paper_config ~flows:1).Net.Dumbbell.bottleneck_bandwidth_bps
  in
  let points =
    List.map
      (fun (label, one_way_delay, buffer, rwnd) ->
        {
          label;
          one_way_delay;
          buffer;
          rwnd;
          cells =
            cells ~one_way_delay ~buffer ~rwnd ~variants ~seeds ~bottleneck_bps;
        })
      [
        ("terrestrial (paper)", 0.096, 8, 20);
        ("satellite", satellite_delay, satellite_buffer, satellite_rwnd);
      ]
  in
  { duration; loss; points }

let report outcome =
  let variants =
    match outcome.points with
    | [] -> []
    | point :: _ -> List.map (fun c -> c.variant) point.cells
  in
  let header =
    "Path (delay/buffer/rwnd)"
    :: List.concat_map
         (fun v ->
           let n = Core.Variant.name v in
           [ n ^ " goodput (Kbps)"; n ^ " util"; n ^ " timeouts"; n ^ " retx" ])
         variants
  in
  let rows =
    List.map
      (fun point ->
        Printf.sprintf "%s (%.0f ms/%d/%d)" point.label
          (1000.0 *. point.one_way_delay)
          point.buffer point.rwnd
        :: List.concat_map
             (fun cell ->
               [
                 Printf.sprintf "%.1f" (cell.throughput_bps /. 1000.0);
                 Printf.sprintf "%.2f" cell.utilization;
                 Printf.sprintf "%.1f" cell.timeouts;
                 Printf.sprintf "%.1f" cell.retransmits;
               ])
             point.cells)
      outcome.points
  in
  Printf.sprintf
    "Satellite paths: long-RTT recovery (%.1f%% uniform loss, %.0f s runs)\n\
     at a ~1.2 s RTT every slow-start or timeout costs seconds of idle pipe;\n\
     dupack-clocked recovery (SACK, RR) keeps the window moving in one RTT\n\n\
     %s"
    (100.0 *. outcome.loss) outcome.duration
    (Stats.Text_table.render ~header rows)
