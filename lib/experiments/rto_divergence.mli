(** RTO-estimator divergence under link flaps (beyond the paper).

    Jain's divergence study (cs/9809097) layers timeout algorithms from
    no adaptation at all up to mean-plus-deviation smoothing and asks
    when each one diverges — the timeout running away from the RTT it
    is supposed to track. This experiment runs the whole
    {!Tcp.Rto.estimator} family through the PR-4 link-flap fault
    schedule (periodic trunk outages, buffer dropped at cut) with the
    {!Audit.Divergence} monitor attached, and tabulates goodput,
    timeout count, and the two audit findings per estimator:
    RTO-divergence episodes and synchronized timeout bursts across the
    two competing flows.

    The run uses fine timers (200 ms floor) instead of the paper's
    coarse 1 s minimum: on the ~200 ms Table 3 path the classic floor
    clamps every estimator to the same value, and the family's
    differences — the whole point of the comparison — disappear. *)

type cell = {
  estimator : Tcp.Rto.estimator;
  throughput_bps : float;  (** mean aggregate goodput over seeds *)
  timeouts : float;  (** mean RTO expiries, both flows *)
  divergences : float;  (** mean RTO-divergence findings *)
  sync_bursts : float;  (** mean synchronized-timeout bursts *)
  sample : string option;  (** one rendered finding, if any run had one *)
}

type outcome = {
  period : float;
  down_for : float;
  min_rto : float;  (** the fine-timer floor the runs used *)
  cells : cell list;
}

(** [run ()] measures a 2 s outage every 6 s (default) for every
    estimator in {!Tcp.Rto.estimators}, two RR flows per run. *)
val run :
  ?period:float ->
  ?down_for:float ->
  ?duration:float ->
  ?estimators:Tcp.Rto.estimator list ->
  ?seeds:int64 list ->
  unit ->
  outcome

(** [findings outcome] is the total mean finding count across all
    cells — the experiment's acceptance signal (positive means the
    audit actually observed divergence or synchronization). *)
val findings : outcome -> float

(** [report outcome] renders the comparison. *)
val report : outcome -> string
