type row = {
  variant : Core.Variant.t;
  throughput_bps : float;
  recovery_seconds : float option;
  timeouts : int;
  retransmits : int;
}

type outcome = {
  drops : int;
  drop_seqs : int list;
  measure_window : float;
  rows : row list;
}

(* The flow slow-starts 1,2,4,8,16 and turns to congestion avoidance at
   ssthresh 16, so segments 31..47 travel in one ~17-segment window; a
   drop list starting at 33 lands k losses inside it while leaving
   enough above-loss segments to generate the three duplicate ACKs fast
   retransmit needs. rwnd 20 = the path's bandwidth-delay product, so
   nothing else is ever dropped. *)
let drop_base = 33

let params =
  { Tcp.Params.default with initial_ssthresh = 16.0; rwnd = 20 }

let drop_seqs ~drops = List.init drops (fun i -> drop_base + i)

let paper_variants =
  Core.Variant.[ Tahoe; Reno; Newreno; Sack; Rr ]

let run_variant ~drops ~seed variant =
  let rules =
    List.map
      (fun seq -> { Net.Loss.flow = 0; seq; occurrence = 1 })
      (drop_seqs ~drops)
  in
  Scenario.run
    (Scenario.make
       ~topology:(Scenario.dumbbell (Net.Dumbbell.paper_config ~flows:1))
       ~flows:[ Scenario.flow variant ] ~params ~seed ~forced_drops:rules ())

let run ~drops ?(measure_window = 3.0) ?(variants = paper_variants)
    ?(seed = 7L) () =
  if drops < 1 then invalid_arg "Fig5.run: drops < 1";
  let seqs = drop_seqs ~drops in
  let last_drop = List.fold_left max 0 seqs in
  let rows =
    List.map
      (fun variant ->
        let t = run_variant ~drops ~seed variant in
        let result = t.Scenario.results.(0) in
        let trace = result.Scenario.trace in
        let t0 =
          match Scenario.first_drop_time t ~flow:0 with
          | Some time -> time
          | None -> failwith "Fig5: forced drops did not occur"
        in
        let throughput_bps =
          Stats.Metrics.effective_throughput_bps trace
            ~mss:params.Tcp.Params.mss ~t0 ~t1:(t0 +. measure_window)
        in
        let recovery_seconds =
          Option.map
            (fun finish -> finish -. t0)
            (Stats.Metrics.recovery_completion_time trace
               ~target_seq:last_drop)
        in
        let counters =
          result.Scenario.agent.Tcp.Agent.base.Tcp.Sender_common.counters
        in
        {
          variant;
          throughput_bps;
          recovery_seconds;
          timeouts = counters.Tcp.Counters.timeouts;
          retransmits = counters.Tcp.Counters.retransmits;
        })
      variants
  in
  { drops; drop_seqs = seqs; measure_window; rows }

type background_row = {
  b_variant : Core.Variant.t;
  transfer_seconds : float option;
  effective_throughput_bps : float option;
  target_drops : int;
  b_timeouts : int;
}

type background_outcome = {
  file_bytes : int;
  target_start : float;
  b_rows : background_row list;
}

let background_target_start = 2.0

let run_background ?(file_bytes = 100_000) ?(variants = paper_variants)
    ?(seed = 7L) () =
  let b_rows =
    List.map
      (fun variant ->
        let flow_specs =
          {
            (Scenario.flow variant) with
            Scenario.start = background_target_start;
            source = Scenario.File_bytes file_bytes;
          }
          :: List.init 2 (fun i ->
                 {
                   (Scenario.flow variant) with
                   Scenario.start = 0.4 *. float_of_int i;
                 })
        in
        let t =
          Scenario.run
            (Scenario.make
               ~topology:(Scenario.dumbbell (Net.Dumbbell.paper_config ~flows:3))
               ~flows:flow_specs
               ~params:{ Tcp.Params.default with rwnd = 20 }
               ~seed ~duration:120.0 ())
        in
        let result = t.Scenario.results.(0) in
        let transfer_seconds =
          Option.map
            (fun c -> c.Workload.Ftp.finished -. c.Workload.Ftp.started)
            result.Scenario.completion
        in
        {
          b_variant = variant;
          transfer_seconds;
          effective_throughput_bps =
            Option.map
              (fun seconds -> float_of_int (8 * file_bytes) /. seconds)
              transfer_seconds;
          target_drops = Scenario.drops t ~flow:0;
          b_timeouts =
            result.Scenario.agent.Tcp.Agent.base.Tcp.Sender_common.counters
              .Tcp.Counters.timeouts;
        })
      variants
  in
  { file_bytes; target_start = background_target_start; b_rows }

let report_background outcome =
  let header =
    [
      "variant";
      "transfer time (s)";
      "eff. throughput (Kbps)";
      "target drops";
      "timeouts";
    ]
  in
  let rows =
    List.map
      (fun row ->
        [
          Core.Variant.name row.b_variant;
          (match row.transfer_seconds with
          | Some s -> Printf.sprintf "%.2f" s
          | None -> "unfinished");
          (match row.effective_throughput_bps with
          | Some bw -> Printf.sprintf "%.1f" (bw /. 1000.0)
          | None -> "-");
          string_of_int row.target_drops;
          string_of_int row.b_timeouts;
        ])
      outcome.b_rows
  in
  Printf.sprintf
    "Figure 5, literal 3-flow setup: %d KB transfer vs 2 background flows\n\
     (drop-tail buffer 8; losses arise from the competition itself)\n\
     caveat: the background runs the same variant, so each row sees a\n\
     DIFFERENT loss pattern (see 'target drops') — drop-tail phase\n\
     effects dominate; the forced-drop mode is the controlled comparison\n\n\
     %s"
    (outcome.file_bytes / 1000)
    (Stats.Text_table.render ~header rows)

let report outcome =
  let header =
    [
      "variant";
      "eff. throughput (Kbps)";
      "recovery time (s)";
      "timeouts";
      "retransmits";
    ]
  in
  let rows =
    List.map
      (fun row ->
        [
          Core.Variant.name row.variant;
          Printf.sprintf "%.1f" (row.throughput_bps /. 1000.0);
          (match row.recovery_seconds with
          | Some s -> Printf.sprintf "%.2f" s
          | None -> "never");
          string_of_int row.timeouts;
          string_of_int row.retransmits;
        ])
      outcome.rows
  in
  Printf.sprintf
    "Figure 5 (%d packet losses within a window, drop-tail gateway)\n\
     losses forced at segments %s; throughput over %.1f s from first drop\n\
     paper shape: RR >= SACK, both > New-Reno; Tahoe > New-Reno at 6 drops\n\n\
     %s"
    outcome.drops
    (String.concat "," (List.map string_of_int outcome.drop_seqs))
    outcome.measure_window
    (Stats.Text_table.render ~header rows)
