type t = { name : string; synopsis : string; run : seed:int64 -> string }

let all =
  [
    {
      name = "fig5";
      synopsis =
        "Figure 5: effective throughput during recovery from 3- and 6-packet \
         loss bursts under drop-tail gateways";
      run =
        (fun ~seed ->
          Fig5.report (Fig5.run ~drops:3 ~seed ())
          ^ "\n"
          ^ Fig5.report (Fig5.run ~drops:6 ~seed ()));
    };
    {
      name = "fig5-background";
      synopsis =
        "Figure 5, literal §3.2 setup: losses from two background flows \
         instead of a forced drop list";
      run = (fun ~seed -> Fig5.report_background (Fig5.run_background ~seed ()));
    };
    {
      name = "fig6";
      synopsis =
        "Figure 6: recovery dynamics and throughput under RED gateways with \
         ten staggered flows";
      run = (fun ~seed -> Fig6.report (Fig6.run ~seed ()));
    };
    {
      name = "fig7";
      synopsis =
        "Figure 7: fitness of RR and SACK to the square-root throughput model \
         under uniform loss";
      run =
        (fun ~seed:_ ->
          let outcome = Fig7.run () in
          Fig7.report outcome ^ "\n" ^ Fig7.plot outcome);
    };
    {
      name = "fig7-delack";
      synopsis =
        "Figure 7 under delayed ACKs (extension; model constant C = sqrt(3/4))";
      run =
        (fun ~seed:_ ->
          Fig7.report
            (Fig7.run
               ~loss_rates:[ 0.005; 0.01; 0.02; 0.05; 0.1 ]
               ~seeds:[ 3L; 17L ] ~delayed_ack:true ()));
    };
    {
      name = "table5";
      synopsis =
        "Table 5: fairness against TCP Reno (transfer delay and loss rate of \
         a 100 KB flow among 19 background flows)";
      run = (fun ~seed -> Table5.report (Table5.run ~seed ()));
    };
    {
      name = "table5-lt";
      synopsis =
        "Table 5 with RFC 3042 limited transmit (extension; restores \
         dupack-based recovery at the tiny per-flow windows 20 flows force)";
      run =
        (fun ~seed -> Table5.report (Table5.run ~seed ~limited_transmit:true ()));
    };
    {
      name = "ablation";
      synopsis =
        "RR design-decision ablations (retreat pacing, further-loss back-off, \
         exit window) on the 6-loss burst";
      run = (fun ~seed:_ -> Ablation.report (Ablation.run ()));
    };
    {
      name = "ackloss";
      synopsis =
        "ACK-loss robustness of recovery (§2.3): burst recovery under \
         reverse-path drops";
      run = (fun ~seed:_ -> Ack_loss.report (Ack_loss.run ()));
    };
    {
      name = "sync";
      synopsis =
        "Global synchronization and fairness: drop-tail vs RED gateways \
         (§3.3 motivation)";
      run = (fun ~seed -> Sync.report (Sync.run ~seed ()));
    };
    {
      name = "smooth";
      synopsis =
        "Smooth-Start (paper reference [21]): slow-start overshoot control";
      run = (fun ~seed -> Smooth.report (Smooth.run ~seed ()));
    };
    {
      name = "fig5-fack";
      synopsis =
        "FACK (paper reference [13]) against SACK and RR on the 6-loss \
         Figure 5 scenario";
      run =
        (fun ~seed ->
          Fig5.report
            (Fig5.run ~drops:6 ~variants:Core.Variant.[ Sack; Fack; Rr ] ~seed ()));
    };
    {
      name = "vegas";
      synopsis =
        "Vegas decomposition (paper reference [8]): recovery vs \
         congestion-avoidance contributions";
      run = (fun ~seed -> Vegas_claim.report (Vegas_claim.run ~seed ()));
    };
    {
      name = "rtt";
      synopsis =
        "RTT fairness: AIMD convergence with equal RTTs and the short-RTT \
         bias with unequal ones (§5)";
      run = (fun ~seed -> Rtt_fairness.report (Rtt_fairness.run ~seed ()));
    };
    {
      name = "twoway";
      synopsis =
        "Two-way traffic (paper reference [22]): ACK compression and loss \
         with data in both directions";
      run = (fun ~seed -> Two_way.report (Two_way.run ~seed ()));
    };
    {
      name = "reorder";
      synopsis =
        "Packet-reordering robustness (beyond the paper): spurious fast \
         retransmits under bounded extra delay";
      run = (fun ~seed:_ -> Reorder.report (Reorder.run ()));
    };
    {
      name = "flaps";
      synopsis =
        "Link-flap robustness (beyond the paper): periodic trunk outages \
         under hold- and drop-buffer policies";
      run = (fun ~seed:_ -> Flaps.report (Flaps.run ()));
    };
    {
      name = "cross";
      synopsis =
        "Unresponsive CBR cross-traffic (beyond the paper): residual \
         bandwidth use against a UDP competitor";
      run = (fun ~seed:_ -> Cross_traffic.report (Cross_traffic.run ()));
    };
    {
      name = "mice";
      synopsis =
        "Web-mice background (beyond the paper): bulk goodput vs short-flow \
         completion times under Pareto on/off load";
      run = (fun ~seed:_ -> Web_mice.report (Web_mice.run ()));
    };
    {
      name = "sensitivity";
      synopsis =
        "Robustness sweep: the Figure 5 ordering across gateway buffer sizes \
         and propagation delays";
      run = (fun ~seed:_ -> Sensitivity.report (Sensitivity.run ()));
    };
    {
      name = "rtodiv";
      synopsis =
        "RTO-estimator divergence (Jain, cs/9809097): the estimator family \
         under link flaps, with the divergence audit attached";
      run = (fun ~seed:_ -> Rto_divergence.report (Rto_divergence.run ()));
    };
    {
      name = "parkinglot";
      synopsis =
        "Parking-lot topology (beyond the paper): long flows across k chained \
         bottlenecks vs per-hop cross traffic, on the general graph engine";
      run = (fun ~seed -> Parking_lot.report (Parking_lot.run ~seed ()));
    };
    {
      name = "manyflow";
      synopsis =
        "Many-flow scale path (beyond the paper): a flat-array TCP flock on \
         an aggregate topology, summarised with streaming statistics";
      run =
        (fun ~seed ->
          Many_flow.report (Many_flow.run ~flows:2_000 ~duration:5.0 ~seed ()));
    };
    (* Recovery-algorithm bench (ROADMAP item 3): the artifacts below
       strictly extend the registry — every pre-existing entry above
       keeps its default variant list and stays byte-identical. *)
    {
      name = "modelcheck";
      synopsis =
        "Model validation: each variant's measured window against its own \
         steady-state model (Mathis sqrt, Relentless 1/p, RRR generalised \
         AIMD)";
      run = (fun ~seed:_ -> Modelcheck.report (Modelcheck.run ()));
    };
    {
      name = "fig5-bench";
      synopsis =
        "Figure 5's 6-loss burst with the bench variants (Relentless, RRR) \
         appended to the paper's five";
      run =
        (fun ~seed ->
          Fig5.report
            (Fig5.run ~drops:6
               ~variants:
                 Core.Variant.
                   [ Tahoe; Reno; Newreno; Sack; Rr; Relentless; Rrr ]
               ~seed ()));
    };
    {
      name = "fig6-bench";
      synopsis =
        "Figure 6's RED recovery dynamics with the bench variants appended";
      run =
        (fun ~seed ->
          Fig6.report
            (Fig6.run
               ~variants:
                 Core.Variant.[ Tahoe; Newreno; Sack; Rr; Relentless; Rrr ]
               ~seed ()));
    };
    {
      name = "fig7-bench";
      synopsis =
        "Figure 7's square-root fit including the bench variants \
         (Relentless's 1/p steady state visibly departs the sqrt model)";
      run =
        (fun ~seed:_ ->
          Fig7.report
            (Fig7.run
               ~variants:Core.Variant.[ Sack; Rr; Relentless; Rrr ]
               ~seeds:[ 3L; 17L ] ()));
    };
    {
      name = "table5-bench";
      synopsis =
        "Table 5's 20-flow fairness machinery for the bench variants: \
         Relentless and RRR each as a lone target among Renos and as the \
         background for a Reno target";
      run =
        (fun ~seed ->
          Table5.report
            (Table5.run ~seed
               ~cases:
                 Core.Variant.
                   [
                     ("relentless among renos", Reno, Relentless);
                     ("reno among relentless", Relentless, Reno);
                     ("rrr among renos", Reno, Rrr);
                     ("reno among rrrs", Rrr, Reno);
                   ]
               ()));
    };
    {
      name = "sync-bench";
      synopsis =
        "Drop-tail vs RED synchronization and Jain fairness with the bench \
         variants appended";
      run =
        (fun ~seed ->
          Sync.report
            (Sync.run
               ~variants:Core.Variant.[ Reno; Rr; Relentless; Rrr ]
               ~seed ()));
    };
    {
      name = "flaps-bench";
      synopsis =
        "Link-flap robustness (PR-4 faults) with the bench variants appended";
      run =
        (fun ~seed:_ ->
          Flaps.report
            (Flaps.run
               ~variants:Core.Variant.[ Newreno; Sack; Rr; Relentless; Rrr ]
               ()));
    };
    {
      name = "cross-bench";
      synopsis =
        "CBR cross-traffic residual-bandwidth use with the bench variants \
         appended";
      run =
        (fun ~seed:_ ->
          Cross_traffic.report
            (Cross_traffic.run
               ~variants:Core.Variant.[ Newreno; Sack; Rr; Relentless; Rrr ]
               ()));
    };
    (* The hostile-network pack (PR 10) and the RRR frontier follow. *)
    {
      name = "mobile";
      synopsis =
        "Mobile-channel robustness: fading and handover rate timelines under \
         paper and deep (bufferbloat) gateways";
      run = (fun ~seed:_ -> Mobile.report (Mobile.run ()));
    };
    {
      name = "satellite";
      synopsis =
        "Long-RTT satellite path (500 ms one-way, BDP-deep buffers): \
         slow-start cost vs dupack-clocked recovery";
      run = (fun ~seed:_ -> Satellite.report (Satellite.run ()));
    };
    {
      name = "asym";
      synopsis =
        "Asymmetric ACK channels: forward:reverse trunk ratios 1:1 to 50:1 \
         starving the ACK clock";
      run = (fun ~seed:_ -> Asym.report (Asym.run ()));
    };
    {
      name = "rrr-levels";
      synopsis =
        "RRR fairness-vs-throughput frontier across the backoff level: pod \
         fairness and the share taken from Renos";
      run = (fun ~seed:_ -> Rrr_frontier.report (Rrr_frontier.run ()));
    };
  ]

let find name = List.find_opt (fun e -> e.name = name) all
let names = List.map (fun e -> e.name) all
