(** Generic scenario runner.

    Every experiment in the paper's evaluation is an instance of: build
    a topology, attach one TCP sender/receiver pair per flow, drive
    them with FTP sources, optionally inject losses at the bottleneck,
    run for a while, and read traces back. This module is that instance
    machinery; the per-figure modules only choose parameters. The
    topology is a first-class field of the spec: the paper's Figure 4
    dumbbell is one constructor ({!dumbbell}), and any
    {!Net.Topology.spec} graph is the other ({!graph}). *)

(** What drives a flow's sender: the paper's persistent FTP, a single
    finite file, or a Pareto on/off "web mice" train
    ({!Workload.Mice}). For [Mice], a profile [until] of [infinity] is
    replaced by the scenario duration, and a profile [start] of [0] by
    the flow's [start]. *)
type source =
  | Infinite
  | File_bytes of int
  | Mice of Workload.Mice.profile

(** What an {!agent_maker} hands back: the agent plus, for
    Robust-Recovery senders, the introspection handle the run's auditor
    uses to check RR invariants. *)
type built = { agent : Tcp.Agent.t; rr_handle : Core.Rr.handle option }

(** [build ?rr agent] packages an agent for a custom {!agent_maker}. *)
val build : ?rr:Core.Rr.handle -> Tcp.Agent.t -> built

type agent_maker =
  engine:Sim.Engine.t ->
  params:Tcp.Params.t ->
  flow:int ->
  emit:(Net.Packet.t -> unit) ->
  unit ->
  built

type flow_spec = {
  label : string;
  make : agent_maker;
  start : float;
  source : source;
  direction : Net.Dumbbell.direction;
      (** [Backward] flows send data over the reverse trunk (two-way
          traffic, the paper's [22]) *)
}

(** [flow ?start ?source ?direction variant] is the spec for a
    standard-variant flow ([start] defaults to 0, [source] to
    [Infinite], [direction] to [Forward]). *)
val flow :
  ?start:float ->
  ?source:source ->
  ?direction:Net.Dumbbell.direction ->
  Core.Variant.t ->
  flow_spec

(** An unresponsive CBR (UDP-like) cross-traffic source occupying one
    topology slot after the TCP flows. *)
type cross = {
  cross_label : string;
  rate_bps : float;
  packet_bytes : int;
  cross_start : float;
  cross_until : float option;  (** default: the scenario duration *)
  cross_direction : Net.Dumbbell.direction;
}

(** [cbr ~rate_bps ()] is a forward CBR source of 1000-byte packets
    running for the whole scenario. *)
val cbr :
  ?label:string ->
  ?packet_bytes:int ->
  ?start:float ->
  ?until:float ->
  ?direction:Net.Dumbbell.direction ->
  rate_bps:float ->
  unit ->
  cross

(** A general-graph scenario topology: the {!Net.Topology.spec} plus
    the link names the runner's knobs act on. *)
type graph = {
  graph : Net.Topology.spec;
  endpoints : Net.Topology.endpoint array;
      (** flow attachments, one per spec flow/cross slot, in order *)
  bottleneck : string option;
      (** the link [monitor_queue] samples and {!red_stats} reads *)
  loss_link : string option;
      (** where [uniform_loss], [forced_drops] and forward fault
          wrappers tap *)
  ack_loss_link : string option;  (** where [ack_loss] taps *)
  flap_links : string list;
      (** links cut together by the fault flap schedule *)
}

(** Which network a spec builds. [Dumbbell] is the paper's Figure 4
    (built through {!Net.Dumbbell}, so the legacy/graph backend toggle
    applies); [Graph] realizes any {!Net.Topology.spec} directly. On a
    [Graph] topology, [flow_spec.direction] is ignored (the endpoints
    already orient each flow) and [side_delays] must be [None]. *)
type topology = Dumbbell of Net.Dumbbell.config | Graph of graph

(** [dumbbell config] is the paper's topology as a spec field. *)
val dumbbell : Net.Dumbbell.config -> topology

(** [graph ~spec ~endpoints ()] wraps a general graph. Omitted link
    names disable the corresponding runner knob; asking for the knob
    anyway ([uniform_loss] without [loss_link], [monitor_queue] without
    [bottleneck], flap faults without [flap_links], ...) makes {!run}
    raise [Invalid_argument] rather than silently not injecting. *)
val graph :
  ?bottleneck:string ->
  ?loss_link:string ->
  ?ack_loss_link:string ->
  ?flap_links:string list ->
  spec:Net.Topology.spec ->
  endpoints:Net.Topology.endpoint array ->
  unit ->
  topology

type spec = {
  topology : topology;
  flows : flow_spec list;  (** one per flow id, in order *)
  params : Tcp.Params.t;
  seed : int64;
  duration : float;
  forced_drops : Net.Loss.rule list;
      (** deterministic drops at R1 (Figure 5) *)
  uniform_loss : float;  (** random data-drop rate at R1, 0 = none (§4) *)
  ack_loss : float;
      (** random ACK-drop rate on the reverse path, 0 = none (§2.3) *)
  delayed_ack : bool;  (** receivers delay ACKs (extension; off = paper) *)
  monitor_queue : float option;
      (** sample the bottleneck queue length every this many seconds *)
  side_delays : float array option;
      (** per-flow access-link delay override (heterogeneous RTTs) *)
  trace_out : out_channel option;
      (** when set, a structured event trace ({!Audit.Trace}) of every
          sender, queue and injected fault is written there during the
          run *)
  trace_format : [ `Jsonl | `Binary ];
      (** trace encoding: JSONL lines (default) or the compact binary
          container that [rr-sim trace export] converts back *)
  faults : Faults.Spec.t;
      (** link flaps / reordering / jitter / time-varying conditions to
          inject ({!Faults.Spec.none} = clean network). Flaps cut both
          trunk directions under one schedule; reordering and jitter
          wrap the forward bottleneck entry, plus the reverse entry when
          the spec says [reverse]. Fade and handover timelines step the
          forward trunk's rate (on a graph: every [flap_links] link);
          [asym] re-rates the dumbbell's reverse trunk to [forward/R] at
          t = 0. *)
  link_schedule : Faults.Timeline.t option;
      (** an explicit value timeline applied verbatim to the same links
          the fade clause would target (the dumbbell trunk, or the graph
          spec's [flap_links]) — the [rr-sim run --link-schedule] path.
          [None] or an empty timeline schedules nothing, byte-identical
          to a clean run. *)
  cross : cross list;
      (** CBR cross-traffic sources; they occupy topology flow slots
          [List.length flows ..] in order, so
          [config.flows = List.length flows + List.length cross] *)
  watch_divergence : bool;
      (** attach an {!Audit.Divergence} monitor to every TCP sender,
          watching for RTO-estimator divergence and synchronized
          timeout bursts (off by default; observation-only) *)
  audit_sample : int;
      (** auditor sampling divisor: check batteries run on 1-in-this
          events (default 1 = full audit; see {!Audit.Auditor}); [0]
          detaches the auditor entirely — the clean-run reference when
          measuring audit overhead (the {!t.auditor} of such a run is
          trivially ok with zero checks) *)
}

(** [make ~topology ~flows ()] builds a spec with the defaults the
    paper's experiments share: default TCP parameters, seed 7, 30 s
    horizon, no injected losses, immediate ACKs. *)
val make :
  topology:topology ->
  flows:flow_spec list ->
  ?params:Tcp.Params.t ->
  ?seed:int64 ->
  ?duration:float ->
  ?forced_drops:Net.Loss.rule list ->
  ?uniform_loss:float ->
  ?ack_loss:float ->
  ?delayed_ack:bool ->
  ?monitor_queue:float ->
  ?side_delays:float array ->
  ?trace_out:out_channel ->
  ?trace_format:[ `Jsonl | `Binary ] ->
  ?faults:Faults.Spec.t ->
  ?link_schedule:Faults.Timeline.t ->
  ?cross:cross list ->
  ?watch_divergence:bool ->
  ?audit_sample:int ->
  unit ->
  spec

type flow_result = {
  spec : flow_spec;
  agent : Tcp.Agent.t;
  rr_handle : Core.Rr.handle option;
  receiver : Tcp.Receiver.t;
  trace : Stats.Flow_trace.t;
  mutable completion : Workload.Ftp.completion option;
  mutable mice : Workload.Mice.t option;
      (** the running mice source, for flows with a [Mice] source *)
}

(** One CBR source and where its packets went. [received] counts
    packets that crossed the topology (sent − received − still-queued =
    dropped). *)
type cross_result = {
  cross : cross;
  cross_flow : int;  (** the topology flow slot it occupies *)
  source : Workload.Cbr.t;
  mutable received : int;
}

(** What kind of packet a gateway dropped: a data segment (with its
    sequence number) or an ACK travelling the reverse path. *)
type drop_payload = Data of { seq : int } | Ack

type drop = { time : float; flow : int; payload : drop_payload }

(** The realized network of a run: the dumbbell handle, or the graph
    paired with its {!graph} description. *)
type net = Dumbbell_net of Net.Dumbbell.t | Graph_net of Net.Topology.t * graph

type t = {
  engine : Sim.Engine.t;
  net : net;
  results : flow_result array;
  cross_results : cross_result array;  (** one per [spec.cross] entry *)
  drop_log : drop list;
      (** every packet dropped anywhere in the topology, oldest first *)
  queue_occupancy : Stats.Series.t option;
      (** bottleneck queue length over time, when monitoring was on *)
  auditor : Audit.Auditor.t;
      (** the run's invariant auditor — always attached to every sender
          and queue; violations are reported on stderr after the run and
          left here for callers to inspect *)
  divergence : Audit.Divergence.t option;
      (** the run's estimator-divergence monitor, when the spec asked
          for [watch_divergence] — findings are observations for the
          caller to read, never printed by the runner *)
  injector : Faults.Injector.t option;
      (** the run's fault injector and its counters, when [spec.faults]
          or [spec.link_schedule] injected anything *)
}

(** [run spec] builds and executes the scenario to [spec.duration].

    Every run carries an {!Audit.Auditor} subscribed to each sender and
    each queue of the topology; if any invariant fails the report is
    printed to [stderr] (the run still completes — use [t.auditor] to
    fail programmatically). *)
val run : spec -> t

(** [drops t ~flow] is that flow's total drop count. *)
val drops : t -> flow:int -> int

(** [red_stats t] classifies RED drops at the bottleneck: the dumbbell
    gateway, or a graph's designated [bottleneck] link. [None] when the
    bottleneck queue is not RED (or a graph named none). *)
val red_stats : t -> Net.Red.drop_stats option

(** [first_drop_time t ~flow] is when the flow first lost a packet. *)
val first_drop_time : t -> flow:int -> float option

(** [rtt_estimate t] is the nominal no-queueing round-trip time of the
    topology for an [mss]-sized data packet and its ACK, including
    transmission times — the paper's "RTT" (~200 ms for the Table 3
    configuration). *)
val rtt_estimate : Net.Dumbbell.config -> mss:int -> ack_size:int -> float

(** [tracefile t] renders the run as an ns-2-style event trace, one
    line per transmission ([+], sender into its access link), ACK
    arrival back at the sender ([r]) and drop ([d]), time-ordered:

    {v + 1.2345 0 1 tcp 1000 ------- 2 0.0 1.0 41 v}

    (event, time, from-node, to-node, type, bytes, flags, flow id,
    src, dst, seqno). Useful for feeding ns-2 post-processing tools. *)
val tracefile : t -> string
