(** §3.3 motivation — global synchronization under drop-tail vs. RED.

    Drop-tail gateways drop bursts of arrivals when the buffer fills,
    hitting many flows within one RTT and synchronizing their back-offs
    (Zhang, Shenker & Clark's observation, the paper's [22]); RED's
    randomized early drops spread losses over flows and time. This
    experiment runs the same ten-flow workload over both gateways and
    reports:

    - a {b synchronization index}: losses are clustered into events
      (gaps < one RTT); the index is the mean fraction of active flows
      hit per event — 1.0 means every loss event hits everybody;
    - bottleneck {b utilization} (may slightly exceed 100% because the
      backlog queued at the measurement-window start also drains);
    - {b Jain's fairness index} over per-flow goodputs. *)

type row = {
  gateway : string;
  variant : Core.Variant.t;
  sync_index : float;
  loss_events : int;
  utilization : float;  (** aggregate goodput / bottleneck rate *)
  jain : float;
  queue_cov : float;
      (** coefficient of variation of the bottleneck queue length —
          synchronized flows make the queue saw-tooth in unison *)
}

type outcome = { duration : float; rows : row list }

(** [run ()] measures drop-tail and RED for the given variants (default
    Reno and RR). *)
val run :
  ?variants:Core.Variant.t list ->
  ?seed:int64 ->
  ?duration:float ->
  unit ->
  outcome

(** [report outcome] renders the comparison. *)
val report : outcome -> string
