let default_level = 0.5

let check_level level =
  if level <= 0.0 || level >= 1.0 then
    invalid_arg "Rrr: level out of (0, 1)"

let window ~level ~loss_rate =
  check_level level;
  if loss_rate <= 0.0 || loss_rate > 1.0 then
    invalid_arg "Rrr.window: loss_rate out of (0, 1]";
  sqrt ((2.0 -. level) /. (2.0 *. level *. loss_rate))

let window_limited ~level ~loss_rate ~rwnd =
  if rwnd < 1 then invalid_arg "Rrr.window_limited: rwnd < 1";
  Float.min (window ~level ~loss_rate) (float_of_int rwnd)

let bandwidth_bps ~level ~mss ~rtt ~loss_rate =
  if mss <= 0 then invalid_arg "Rrr.bandwidth_bps: mss <= 0";
  if rtt <= 0.0 then invalid_arg "Rrr.bandwidth_bps: rtt <= 0";
  window ~level ~loss_rate *. float_of_int (8 * mss) /. rtt
