(** Steady-state model of Relative Rate Reduction (Hága, Tóth, Csabai
    & Vattay, "TCP congestion control with adjustable congestion
    level", arxiv 1707.07218).

    RRR generalises the Reno half-cut: each congestion event reduces
    the window to [b * W] with backoff factor [b = 1 - level], where
    [level] is the configured congestion level ([level = 0.5]
    reproduces Reno). The classic AIMD sawtooth analysis — one loss per
    cycle, +1 segment per RTT between losses — gives a cycle of
    [(1 - b) * Wmax] RTTs carrying [(1 - b^2) / 2 * Wmax^2] segments,
    so [p = 2 / ((1 - b^2) * Wmax^2)] and the mean window is

    {[ W = sqrt ((1 + b) / (2 * p * (1 - b)))
         = sqrt ((2 - level) / (2 * level * p)) ]}

    At [level = 0.5] this is [sqrt (3 / 2) / sqrt p] — exactly
    {!Mathis.c_ack_every_packet}[ / sqrt p], the consistency anchor
    the model tests pin. Smaller levels trade a slower [1 / sqrt
    level] growth of the window for gentler rate cuts. *)

(** [default_level] is [0.5], the Reno-equivalent congestion level. *)
val default_level : float

(** [window ~level ~loss_rate] is the mean steady-state window in
    segments.

    @raise Invalid_argument if [level] is outside [(0, 1)] or
    [loss_rate] outside [(0, 1]]. *)
val window : level:float -> loss_rate:float -> float

(** [window_limited ~level ~loss_rate ~rwnd] caps the model at the
    receiver's advertised window.

    @raise Invalid_argument if [rwnd < 1]. *)
val window_limited : level:float -> loss_rate:float -> rwnd:int -> float

(** [bandwidth_bps ~level ~mss ~rtt ~loss_rate] is the predicted
    throughput in bits per second.

    @raise Invalid_argument on non-positive [mss] or [rtt]. *)
val bandwidth_bps :
  level:float -> mss:int -> rtt:float -> loss_rate:float -> float
