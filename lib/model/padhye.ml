let check ~rtt ~rto ~b ~loss_rate =
  if rtt <= 0.0 then invalid_arg "Padhye: rtt <= 0";
  if rto <= 0.0 then invalid_arg "Padhye: rto <= 0";
  if b < 1 then invalid_arg "Padhye: b < 1";
  if loss_rate <= 0.0 || loss_rate > 1.0 then
    invalid_arg "Padhye: loss_rate out of (0, 1]"

let window ~rtt ~rto ~b ~loss_rate =
  check ~rtt ~rto ~b ~loss_rate;
  let p = loss_rate in
  let bf = float_of_int b in
  let fast_retransmit_term = rtt *. sqrt (2.0 *. bf *. p /. 3.0) in
  let timeout_probability = Float.min 1.0 (3.0 *. sqrt (3.0 *. bf *. p /. 8.0)) in
  let timeout_term =
    rto *. timeout_probability *. p *. (1.0 +. (32.0 *. p *. p))
  in
  rtt /. (fast_retransmit_term +. timeout_term)

let bandwidth_bps ~mss ~rtt ~rto ~b ~loss_rate =
  if mss <= 0 then invalid_arg "Padhye: mss <= 0";
  window ~rtt ~rto ~b ~loss_rate *. float_of_int (8 * mss) /. rtt
