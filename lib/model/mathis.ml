let c_ack_every_packet = sqrt 1.5

let c_delayed_ack = sqrt 0.75

let c_paper = 4.0

let window ~c ~loss_rate =
  if loss_rate <= 0.0 || loss_rate > 1.0 then
    invalid_arg "Mathis.window: loss_rate out of (0, 1]";
  if c <= 0.0 then invalid_arg "Mathis.window: c <= 0";
  c /. sqrt loss_rate

let window_limited ~c ~loss_rate ~rwnd =
  if rwnd < 1 then invalid_arg "Mathis.window_limited: rwnd < 1";
  Float.min (window ~c ~loss_rate) (float_of_int rwnd)

let bandwidth_bps ~c ~mss ~rtt ~loss_rate =
  if mss <= 0 then invalid_arg "Mathis.bandwidth_bps: mss <= 0";
  if rtt <= 0.0 then invalid_arg "Mathis.bandwidth_bps: rtt <= 0";
  window ~c ~loss_rate *. float_of_int (8 * mss) /. rtt
