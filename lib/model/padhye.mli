(** The PFTK throughput model (Padhye, Firoiu, Towsley & Kurose 1998),
    which the paper's §4 cites as the refinement capturing
    retransmission timeouts — the cause of the droop it observes at
    high loss rates:

    {[
      BW ≈ MSS / (RTT*sqrt(2bp/3) + T0*min(1, 3*sqrt(3bp/8))*p*(1+32p²))
    ]}

    with [b] ACKed-packets-per-ACK (1 here — no delayed ACKs) and [T0]
    the base retransmission timeout. *)

(** [bandwidth_bps ~mss ~rtt ~rto ~b ~loss_rate] evaluates the full
    model.

    @raise Invalid_argument on non-positive parameters. *)
val bandwidth_bps :
  mss:int -> rtt:float -> rto:float -> b:int -> loss_rate:float -> float

(** [window ~rtt ~rto ~b ~loss_rate] is the model in window units
    ([BW * RTT / MSS]), comparable with {!Mathis.window}. *)
val window : rtt:float -> rto:float -> b:int -> loss_rate:float -> float
