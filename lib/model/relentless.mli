(** Steady-state model of Relentless Congestion Control (Diana &
    Lochin, "An analytical model of Relentless Congestion Control",
    arxiv 1102.3270).

    Relentless recovery subtracts exactly one segment per lost segment
    instead of halving, so in the fluid steady state the +1 segment per
    RTT of congestion avoidance balances the [p * W] segments lost (and
    subtracted) per RTT:

    {[ 1 = p * W   =>   W = 1 / p ]}

    giving the equilibrium window [W = 1/p] and throughput
    [BW = MSS / (RTT * p)] — a [1 / p] law, in contrast to the Reno
    family's [1 / sqrt p]. There is no multiplicative sawtooth: the
    window sits at the equilibrium and the model has no ACK-strategy
    constant. The {!Experiments.Modelcheck} report validates the
    simulated sender against this prediction. *)

(** [window ~loss_rate] is the equilibrium window in segments,
    [1 / p].

    @raise Invalid_argument if [loss_rate] is outside [(0, 1]]. *)
val window : loss_rate:float -> float

(** [window_limited ~loss_rate ~rwnd] caps the model at the receiver's
    advertised window, the binding constraint at small loss rates
    (at [p = 0.01] the unconstrained model already asks for 100
    segments).

    @raise Invalid_argument if [rwnd < 1]. *)
val window_limited : loss_rate:float -> rwnd:int -> float

(** [bandwidth_bps ~mss ~rtt ~loss_rate] is the model's predicted
    throughput, [8 * MSS / (RTT * p)] bits per second.

    @raise Invalid_argument on non-positive [mss] or [rtt]. *)
val bandwidth_bps : mss:int -> rtt:float -> loss_rate:float -> float
