(** The square-root TCP model (Mathis, Semke, Mahdavi & Ott 1997) the
    paper's §4 fits RR against:

    {[ BW = C * MSS / (RTT * sqrt p) ]}

    where [p] is the random packet-loss rate and [C] lumps constant
    factors including the ACK strategy. With an ACK per packet the
    derivation gives [C = sqrt (3/2) ≈ 1.22]; the paper's text sets
    [C = 4], so both are provided and EXPERIMENTS.md reports both. *)

(** [c_ack_every_packet] is [sqrt (3/2)]. *)
val c_ack_every_packet : float

(** [c_delayed_ack] is [sqrt (3/4)], the delayed-ACK constant. *)
val c_delayed_ack : float

(** [c_paper] is [4.0], the constant §4 states. *)
val c_paper : float

(** [bandwidth_bps ~c ~mss ~rtt ~loss_rate] is the model's upper bound
    on achievable throughput.

    @raise Invalid_argument if [loss_rate <= 0] or parameters are
    non-positive. *)
val bandwidth_bps : c:float -> mss:int -> rtt:float -> loss_rate:float -> float

(** [window ~c ~loss_rate] is the model in window units —
    [BW * RTT / MSS = C / sqrt p] — the y-axis of the paper's
    Figure 7. *)
val window : c:float -> loss_rate:float -> float

(** [window_limited ~c ~loss_rate ~rwnd] additionally caps the model at
    the receiver's advertised window, the binding constraint at small
    loss rates (the paper's §4 assumes "a sufficient receiver window";
    the simulated connection has a concrete one). *)
val window_limited : c:float -> loss_rate:float -> rwnd:int -> float
