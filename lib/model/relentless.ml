let window ~loss_rate =
  if loss_rate <= 0.0 || loss_rate > 1.0 then
    invalid_arg "Relentless.window: loss_rate out of (0, 1]";
  1.0 /. loss_rate

let window_limited ~loss_rate ~rwnd =
  if rwnd < 1 then invalid_arg "Relentless.window_limited: rwnd < 1";
  Float.min (window ~loss_rate) (float_of_int rwnd)

let bandwidth_bps ~mss ~rtt ~loss_rate =
  if mss <= 0 then invalid_arg "Relentless.bandwidth_bps: mss <= 0";
  if rtt <= 0.0 then invalid_arg "Relentless.bandwidth_bps: rtt <= 0";
  window ~loss_rate *. float_of_int (8 * mss) /. rtt
