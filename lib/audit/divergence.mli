(** Timeout-estimator divergence audit.

    Jain's "Divergence of Timeout Algorithms for Packet Retransmissions"
    (cs/9809097) predicts that an RTO estimator caught in a feedback
    loop — timeouts cause retransmissions, retransmissions load the
    path, load raises the RTT the estimator is trying to track — can run
    away instead of converging. This monitor watches attached senders
    for the two observable signatures:

    - {b rto-divergence}: across a window of observations (taken at
      every ACK and at every timeout, before its backoff applies) the
      rto/srtt ratio never falls and ends at least [trend_factor] times
      where it started — the timeout is trending away from the RTT it
      measures;
    - {b timeout-sync}: at least [sync_flows] distinct flows time out
      within [sync_window] seconds of each other — the synchronized
      burst behaviour that turns one fault into a fleet-wide stall.

    Unlike {!Auditor} violations, findings are {e observations}, not
    bugs: the estimator-divergence experiment exists to measure when
    each {!Tcp.Rto.estimator} produces them. The monitor is attached
    only on request (see {!Experiments.Scenario}'s [watch_divergence])
    and never perturbs the run — hooks observe, they do not steer. *)

type finding = {
  time : float;
  subject : string;
  rule : string;  (** ["rto-divergence"] or ["timeout-sync"] *)
  detail : string;
}

type t

(** [create ~engine ()] builds an idle monitor. [trend_window]
    (default 4) and [trend_factor] (default 6.0 — about three
    uninterrupted backoff doublings) tune the divergence rule;
    [sync_window] (default 0.5 s) and [sync_flows] (default 2) the
    synchronization rule. At most [max_recorded] findings keep their
    detail text (counts are always exact). *)
val create :
  ?trend_window:int ->
  ?trend_factor:float ->
  ?sync_window:float ->
  ?sync_flows:int ->
  ?max_recorded:int ->
  engine:Sim.Engine.t ->
  unit ->
  t

(** [attach_sender t ~label agent] subscribes to the sender's ACK and
    timeout hooks. Call once per flow, before the run. *)
val attach_sender : t -> label:string -> Tcp.Agent.t -> unit

(** Recorded findings, oldest first. *)
val findings : t -> finding list

(** Total findings of the ["rto-divergence"] rule. *)
val divergence_count : t -> int

(** Total findings of the ["timeout-sync"] rule. *)
val sync_burst_count : t -> int

(** All findings, both rules. *)
val finding_count : t -> int

(** [quiet t] — no findings at all. *)
val quiet : t -> bool

(** Human-readable summary, one line per recorded finding. *)
val report : t -> string
