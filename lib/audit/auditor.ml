type violation = {
  time : float;
  subject : string;
  rule : string;
  detail : string;
}

type sender_state = {
  agent : Tcp.Agent.t;
  rr : Core.Rr.handle option;
  label : string;
  (* Shadow of the highest segment ever transmitted, maintained
     independently from the sender's own [maxseq] so a bookkeeping bug
     there cannot hide itself. *)
  mutable shadow_maxseq : int;
  mutable last_cumulative : int;  (* highest ackno seen, -1 initially *)
  (* RR episode tracking: the last exit point observed during the
     current recovery episode, [None] between episodes. *)
  mutable episode_exit_point : int option;
}

type queue_state = {
  qname : string;
  disc : Net.Queue_disc.t;
  mutable inside : int;  (* enqueued - dequeued since attach *)
  mutable enq : int;
  mutable deq : int;
  mutable drop : int;
  start : Net.Queue_disc.stats;  (* counter values at attach time *)
  per_flow : (int, int Queue.t) Hashtbl.t;  (* flow -> uids in FIFO order *)
}

type t = {
  engine : Sim.Engine.t;
  max_recorded : int;
  mutable recorded : violation list;  (* newest first, capped *)
  mutable total : int;
  mutable checks : int;
  mutable queues : queue_state list;
  mutable finalized : bool;
}

let create ?(max_recorded = 100) ~engine () =
  {
    engine;
    max_recorded;
    recorded = [];
    total = 0;
    checks = 0;
    queues = [];
    finalized = false;
  }

let violation_count t = t.total

let checks_run t = t.checks

let ok t = t.total = 0

let violations t = List.rev t.recorded

let report_violation t ~subject ~rule ~detail =
  t.total <- t.total + 1;
  if t.total <= t.max_recorded then
    t.recorded <-
      { time = Sim.Engine.now t.engine; subject; rule; detail } :: t.recorded

let check t ~subject ~rule ~detail condition =
  t.checks <- t.checks + 1;
  if not condition then report_violation t ~subject ~rule ~detail:(detail ())

(* -- TCP sender invariants -- *)

let check_sender_core t (s : sender_state) =
  let b = s.agent.Tcp.Agent.base in
  let open Tcp.Sender_common in
  let subject = s.label in
  check t ~subject ~rule:"sender-ordering"
    ~detail:(fun () ->
      Printf.sprintf "una=%d t_seqno=%d maxseq=%d" b.una b.t_seqno b.maxseq)
    (b.una >= -1 && b.t_seqno >= b.una + 1 && b.t_seqno <= b.maxseq + 1);
  check t ~subject ~rule:"sender-outstanding"
    ~detail:(fun () -> Printf.sprintf "outstanding=%d" (outstanding b))
    (outstanding b >= 0);
  check t ~subject ~rule:"sender-window"
    ~detail:(fun () ->
      Printf.sprintf "cwnd=%.3f ssthresh=%.3f" b.cwnd b.ssthresh)
    (b.cwnd >= 1.0 && b.ssthresh >= 2.0);
  check t ~subject ~rule:"sender-dupacks"
    ~detail:(fun () -> Printf.sprintf "dupacks=%d" b.dupacks)
    (b.dupacks >= 0);
  (* Dupack-counter consistency, classic-threshold variants only: once
     the counter has run past the threshold without recovery starting,
     the only legitimate reason is the ns-2 "bugfix" suppression
     ([una <= recover_mark]). Vegas retransmits on its own fine-grained
     timer and may exceed the threshold legitimately. *)
  if s.agent.Tcp.Agent.name <> "vegas" then
    check t ~subject ~rule:"sender-dupacks"
      ~detail:(fun () ->
        Printf.sprintf
          "dupacks=%d passed threshold outside recovery yet fast retransmit \
           is not suppressed (una=%d recover_mark=%d)"
          b.dupacks b.una b.recover_mark)
      (b.phase = Recovery
      || b.dupacks <= b.params.Tcp.Params.dupack_threshold
      || not (may_fast_retransmit b))

(* -- RR recovery invariants -- *)

let check_rr t (s : sender_state) =
  match s.rr with
  | None -> ()
  | Some handle ->
    let subject = s.label in
    (match Core.Rr.inspect handle with
    | None -> ()
    | Some view ->
      let b = s.agent.Tcp.Agent.base in
      check t ~subject ~rule:"rr-counters"
        ~detail:(fun () ->
          Printf.sprintf "actnum=%d ndup=%d further_losses=%d" view.actnum
            view.ndup view.further_losses)
        (view.actnum >= 0 && view.ndup >= 0 && view.further_losses >= 0);
      check t ~subject ~rule:"rr-exit-point"
        ~detail:(fun () ->
          Printf.sprintf "exit_point=%d maxseq=%d" view.exit_point
            b.Tcp.Sender_common.maxseq)
        (view.exit_point <= b.Tcp.Sender_common.maxseq);
      (match s.episode_exit_point with
      | Some previous ->
        check t ~subject ~rule:"rr-exit-point"
          ~detail:(fun () ->
            Printf.sprintf "exit point moved backwards: %d -> %d" previous
              view.exit_point)
          (view.exit_point >= previous)
      | None -> ());
      s.episode_exit_point <- Some view.exit_point)

let rr_probe_boundary_check t (s : sender_state) ~ackno =
  (* A cumulative advance inside recovery that does not reach the exit
     point is a probe-RTT boundary: RR must have reset [ndup] before
     repairing the hole. *)
  match s.rr with
  | None -> ()
  | Some handle -> (
    match Core.Rr.inspect handle with
    | Some view
      when view.stage = Core.Rr.Probe && ackno < view.exit_point
           && ackno > s.last_cumulative ->
      check t ~subject:s.label ~rule:"rr-ndup-reset"
        ~detail:(fun () ->
          Printf.sprintf "ndup=%d not reset at probe RTT boundary (ackno=%d)"
            view.ndup ackno)
        (view.ndup = 0)
    | Some _ | None -> ())

let attach_sender t ?rr ~label agent =
  let s =
    {
      agent;
      rr;
      label;
      shadow_maxseq = agent.Tcp.Agent.base.Tcp.Sender_common.maxseq;
      last_cumulative = agent.Tcp.Agent.base.Tcp.Sender_common.una;
      episode_exit_point = None;
    }
  in
  let base = agent.Tcp.Agent.base in
  Tcp.Sender_common.on_send base (fun ~time:_ ~seq ~retx ->
      let b = base in
      check t ~subject:s.label ~rule:"send-labeling"
        ~detail:(fun () ->
          Printf.sprintf
            "seq=%d retx=%b shadow_maxseq=%d: a send below the transmission \
             frontier must be labelled a retransmission (and vice versa)"
            seq retx s.shadow_maxseq)
        (retx = (seq <= s.shadow_maxseq));
      check t ~subject:s.label ~rule:"send-labeling"
        ~detail:(fun () ->
          Printf.sprintf "sent seq=%d at or below una=%d" seq
            b.Tcp.Sender_common.una)
        (seq >= 0 && seq > b.Tcp.Sender_common.una);
      if seq > s.shadow_maxseq then s.shadow_maxseq <- seq;
      check_sender_core t s;
      check_rr t s);
  Tcp.Sender_common.on_ack base (fun ~time:_ ~ackno ->
      check t ~subject:s.label ~rule:"ack-bounds"
        ~detail:(fun () ->
          Printf.sprintf "ackno=%d beyond highest transmission %d" ackno
            s.shadow_maxseq)
        (ackno <= s.shadow_maxseq + 1);
      check t ~subject:s.label ~rule:"ack-bounds"
        ~detail:(fun () ->
          Printf.sprintf "cumulative ACK moved backwards: %d after %d" ackno
            s.last_cumulative)
        (ackno >= s.last_cumulative);
      rr_probe_boundary_check t s ~ackno;
      if ackno > s.last_cumulative then s.last_cumulative <- ackno;
      check_sender_core t s;
      check_rr t s);
  Tcp.Sender_common.on_recovery_enter base (fun ~time:_ ->
      s.episode_exit_point <- None);
  Tcp.Sender_common.on_recovery_exit base (fun ~time:_ ->
      s.episode_exit_point <- None);
  Tcp.Sender_common.on_timeout base (fun ~time:_ ->
      s.episode_exit_point <- None;
      check_sender_core t s)

(* -- queue-discipline packet conservation -- *)

let flow_fifo q flow =
  match Hashtbl.find_opt q.per_flow flow with
  | Some fifo -> fifo
  | None ->
    let fifo = Queue.create () in
    Hashtbl.add q.per_flow flow fifo;
    fifo

let attach_queue t ~name disc =
  let q =
    {
      qname = name;
      disc;
      inside = 0;
      enq = 0;
      deq = 0;
      drop = 0;
      start =
        {
          Net.Queue_disc.enqueued = disc.Net.Queue_disc.stats.enqueued;
          dropped = disc.Net.Queue_disc.stats.dropped;
          dequeued = disc.Net.Queue_disc.stats.dequeued;
          bytes_dropped = disc.Net.Queue_disc.stats.bytes_dropped;
        };
      per_flow = Hashtbl.create 7;
    }
  in
  t.queues <- q :: t.queues;
  let subject = Printf.sprintf "queue %s" name in
  let occupancy_consistent () =
    check t ~subject ~rule:"queue-conservation"
      ~detail:(fun () ->
        Printf.sprintf "tracked occupancy %d but disc reports %d" q.inside
          (q.disc.Net.Queue_disc.length ()))
      (q.inside = q.disc.Net.Queue_disc.length ())
  in
  Net.Queue_disc.subscribe disc (function
    | Net.Queue_disc.Enqueued packet ->
      q.enq <- q.enq + 1;
      q.inside <- q.inside + 1;
      Queue.push packet.Net.Packet.uid (flow_fifo q packet.Net.Packet.flow);
      occupancy_consistent ()
    | Net.Queue_disc.Dropped _ ->
      q.drop <- q.drop + 1;
      occupancy_consistent ()
    | Net.Queue_disc.Dequeued packet ->
      q.deq <- q.deq + 1;
      q.inside <- q.inside - 1;
      check t ~subject ~rule:"queue-conservation"
        ~detail:(fun () ->
          Printf.sprintf "dequeued uid %d with tracked occupancy %d"
            packet.Net.Packet.uid (q.inside + 1))
        (q.inside >= 0);
      let fifo = flow_fifo q packet.Net.Packet.flow in
      (match Queue.take_opt fifo with
      | None ->
        report_violation t ~subject ~rule:"queue-conservation"
          ~detail:
            (Printf.sprintf "dequeued uid %d (flow %d) never enqueued"
               packet.Net.Packet.uid packet.Net.Packet.flow)
      | Some expected ->
        check t ~subject ~rule:"queue-fifo"
          ~detail:(fun () ->
            Printf.sprintf
              "flow %d reordered: dequeued uid %d while uid %d was in front"
              packet.Net.Packet.flow packet.Net.Packet.uid expected)
          (expected = packet.Net.Packet.uid));
      occupancy_consistent ())

let finalize_queue t q =
  let subject = Printf.sprintf "queue %s" q.qname in
  let stats = q.disc.Net.Queue_disc.stats in
  check t ~subject ~rule:"queue-conservation"
    ~detail:(fun () ->
      Printf.sprintf
        "at end of run: %d enqueued, %d dequeued, %d still queued" q.enq q.deq
        (q.disc.Net.Queue_disc.length ()))
    (q.enq - q.deq = q.disc.Net.Queue_disc.length () && q.inside >= 0);
  check t ~subject ~rule:"queue-stats"
    ~detail:(fun () ->
      Printf.sprintf
        "stats drifted from observed events: enqueued %d<>%d, dropped \
         %d<>%d, dequeued %d<>%d"
        (stats.Net.Queue_disc.enqueued - q.start.Net.Queue_disc.enqueued)
        q.enq
        (stats.Net.Queue_disc.dropped - q.start.Net.Queue_disc.dropped)
        q.drop
        (stats.Net.Queue_disc.dequeued - q.start.Net.Queue_disc.dequeued)
        q.deq)
    (stats.Net.Queue_disc.enqueued - q.start.Net.Queue_disc.enqueued = q.enq
    && stats.Net.Queue_disc.dropped - q.start.Net.Queue_disc.dropped = q.drop
    && stats.Net.Queue_disc.dequeued - q.start.Net.Queue_disc.dequeued = q.deq
    )

let finalize t =
  if not t.finalized then begin
    t.finalized <- true;
    List.iter (finalize_queue t) t.queues
  end

let report t =
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer
    (Printf.sprintf "audit: %d checks, %d violation(s)\n" t.checks t.total);
  List.iter
    (fun v ->
      Buffer.add_string buffer
        (Printf.sprintf "  [%.6f] %s: %s — %s\n" v.time v.subject v.rule
           v.detail))
    (violations t);
  if t.total > t.max_recorded then
    Buffer.add_string buffer
      (Printf.sprintf "  … %d further violation(s) not recorded\n"
         (t.total - t.max_recorded));
  Buffer.contents buffer
