type violation = {
  time : float;
  subject : string;
  rule : string;
  detail : string;
}

type sender_state = {
  agent : Tcp.Agent.t;
  rr : Core.Rr.handle option;
  label : string;
  (* Shadow of the highest segment ever transmitted, maintained
     independently from the sender's own [maxseq] so a bookkeeping bug
     there cannot hide itself. *)
  mutable shadow_maxseq : int;
  mutable last_cumulative : int;  (* highest ackno seen, -1 initially *)
  (* RR episode tracking: the last exit point observed during the
     current recovery episode, [None] between episodes. *)
  mutable episode_exit_point : int option;
}

type queue_state = {
  qname : string;
  disc : Net.Queue_disc.t;
  mutable inside : int;  (* enqueued - dequeued since attach *)
  mutable enq : int;
  mutable deq : int;
  mutable drop : int;
  start : Net.Queue_disc.stats;  (* counter values at attach time *)
  per_flow : (int, int Queue.t) Hashtbl.t;  (* flow -> uids in FIFO order *)
}

type t = {
  engine : Sim.Engine.t;
  max_recorded : int;
  (* 1-in-[sample] events get the invariant batteries; cheap shadow
     state (maxseq, cumulative point, occupancy counters) is updated on
     every event regardless, so sampled checks always evaluate against
     exact state. [countdown] ticks down per observed event. *)
  sample : int;
  mutable countdown : int;
  mutable recorded : violation list;  (* newest first, capped *)
  mutable total : int;
  mutable checks : int;
  mutable queues : queue_state list;
  mutable finalized : bool;
}

let create ?(max_recorded = 100) ?(sample = 1) ~engine () =
  if sample < 1 then invalid_arg "Auditor.create: sample < 1";
  {
    engine;
    max_recorded;
    sample;
    countdown = 1;
    recorded = [];
    total = 0;
    checks = 0;
    queues = [];
    finalized = false;
  }

let sample t = t.sample

let violation_count t = t.total

let checks_run t = t.checks

let ok t = t.total = 0

let violations t = List.rev t.recorded

(* Every event calls [due] exactly once; the check batteries run only
   on the events where it fires. With the default [sample = 1] it fires
   on every event. *)
let[@inline] due t =
  let left = t.countdown - 1 in
  if left = 0 then begin
    t.countdown <- t.sample;
    true
  end
  else begin
    t.countdown <- left;
    false
  end

let report_violation t ~subject ~rule ~detail =
  t.total <- t.total + 1;
  if t.total <= t.max_recorded then
    t.recorded <-
      { time = Sim.Engine.now t.engine; subject; rule; detail } :: t.recorded

(* Check idiom: [tally] counts the evaluation, and the caller renders
   the detail string only on the (cold) failing path. Keeping the
   detail out of a closure matters: a [~detail:(fun () -> ...)] at the
   call site captures its environment and heap-allocates on every
   event, which made full observer fan-out the dominant per-event cost
   of audited runs. *)
let[@inline] tally t = t.checks <- t.checks + 1

(* -- TCP sender invariants -- *)

let check_sender_core t (s : sender_state) =
  let b = s.agent.Tcp.Agent.base in
  let open Tcp.Sender_common in
  let subject = s.label in
  tally t;
  if not (b.una >= -1 && b.t_seqno >= b.una + 1 && b.t_seqno <= b.maxseq + 1)
  then
    report_violation t ~subject ~rule:"sender-ordering"
      ~detail:
        (Printf.sprintf "una=%d t_seqno=%d maxseq=%d" b.una b.t_seqno b.maxseq);
  tally t;
  if not (outstanding b >= 0) then
    report_violation t ~subject ~rule:"sender-outstanding"
      ~detail:(Printf.sprintf "outstanding=%d" (outstanding b));
  tally t;
  if not (cwnd b >= 1.0 && ssthresh b >= 2.0) then
    report_violation t ~subject ~rule:"sender-window"
      ~detail:
        (Printf.sprintf "cwnd=%.3f ssthresh=%.3f" (cwnd b) (ssthresh b));
  tally t;
  if not (b.dupacks >= 0) then
    report_violation t ~subject ~rule:"sender-dupacks"
      ~detail:(Printf.sprintf "dupacks=%d" b.dupacks);
  (* Dupack-counter consistency, classic-threshold variants only: once
     the counter has run past the threshold without recovery starting,
     the only legitimate reason is the ns-2 "bugfix" suppression
     ([una <= recover_mark]). Vegas retransmits on its own fine-grained
     timer and may exceed the threshold legitimately. *)
  if s.agent.Tcp.Agent.name <> "vegas" then begin
    tally t;
    if
      not
        (b.phase = Recovery
        || b.dupacks <= b.params.Tcp.Params.dupack_threshold
        || not (may_fast_retransmit b))
    then
      report_violation t ~subject ~rule:"sender-dupacks"
        ~detail:
          (Printf.sprintf
             "dupacks=%d passed threshold outside recovery yet fast \
              retransmit is not suppressed (una=%d recover_mark=%d)"
             b.dupacks b.una b.recover_mark)
  end

(* -- RR recovery invariants -- *)

let check_rr t (s : sender_state) =
  match s.rr with
  | None -> ()
  | Some handle ->
    let subject = s.label in
    (match Core.Rr.inspect handle with
    | None -> ()
    | Some view ->
      let b = s.agent.Tcp.Agent.base in
      tally t;
      if not (view.actnum >= 0 && view.ndup >= 0 && view.further_losses >= 0)
      then
        report_violation t ~subject ~rule:"rr-counters"
          ~detail:
            (Printf.sprintf "actnum=%d ndup=%d further_losses=%d" view.actnum
               view.ndup view.further_losses);
      tally t;
      if not (view.exit_point <= b.Tcp.Sender_common.maxseq) then
        report_violation t ~subject ~rule:"rr-exit-point"
          ~detail:
            (Printf.sprintf "exit_point=%d maxseq=%d" view.exit_point
               b.Tcp.Sender_common.maxseq);
      (match s.episode_exit_point with
      | Some previous ->
        tally t;
        if not (view.exit_point >= previous) then
          report_violation t ~subject ~rule:"rr-exit-point"
            ~detail:
              (Printf.sprintf "exit point moved backwards: %d -> %d" previous
                 view.exit_point)
      | None -> ());
      s.episode_exit_point <- Some view.exit_point)

let rr_probe_boundary_check t (s : sender_state) ~ackno =
  (* A cumulative advance inside recovery that does not reach the exit
     point is a probe-RTT boundary: RR must have reset [ndup] before
     repairing the hole. *)
  match s.rr with
  | None -> ()
  | Some handle -> (
    match Core.Rr.inspect handle with
    | Some view
      when view.stage = Core.Rr.Probe && ackno < view.exit_point
           && ackno > s.last_cumulative ->
      tally t;
      if not (view.ndup = 0) then
        report_violation t ~subject:s.label ~rule:"rr-ndup-reset"
          ~detail:
            (Printf.sprintf "ndup=%d not reset at probe RTT boundary (ackno=%d)"
               view.ndup ackno)
    | Some _ | None -> ())

let attach_sender t ?rr ~label agent =
  let s =
    {
      agent;
      rr;
      label;
      shadow_maxseq = agent.Tcp.Agent.base.Tcp.Sender_common.maxseq;
      last_cumulative = agent.Tcp.Agent.base.Tcp.Sender_common.una;
      episode_exit_point = None;
    }
  in
  let base = agent.Tcp.Agent.base in
  Tcp.Sender_common.on_send base (fun ~time:_ ~seq ~retx ->
      (if due t then begin
         let b = base in
         tally t;
         if not (retx = (seq <= s.shadow_maxseq)) then
           report_violation t ~subject:s.label ~rule:"send-labeling"
             ~detail:
               (Printf.sprintf
                  "seq=%d retx=%b shadow_maxseq=%d: a send below the \
                   transmission frontier must be labelled a retransmission \
                   (and vice versa)"
                  seq retx s.shadow_maxseq);
         tally t;
         if not (seq >= 0 && seq > b.Tcp.Sender_common.una) then
           report_violation t ~subject:s.label ~rule:"send-labeling"
             ~detail:
               (Printf.sprintf "sent seq=%d at or below una=%d" seq
                  b.Tcp.Sender_common.una);
         if seq > s.shadow_maxseq then s.shadow_maxseq <- seq;
         check_sender_core t s;
         check_rr t s
       end
       else if seq > s.shadow_maxseq then s.shadow_maxseq <- seq));
  Tcp.Sender_common.on_ack base (fun ~time:_ ~ackno ->
      (if due t then begin
         tally t;
         if not (ackno <= s.shadow_maxseq + 1) then
           report_violation t ~subject:s.label ~rule:"ack-bounds"
             ~detail:
               (Printf.sprintf "ackno=%d beyond highest transmission %d" ackno
                  s.shadow_maxseq);
         tally t;
         if not (ackno >= s.last_cumulative) then
           report_violation t ~subject:s.label ~rule:"ack-bounds"
             ~detail:
               (Printf.sprintf "cumulative ACK moved backwards: %d after %d"
                  ackno s.last_cumulative);
         rr_probe_boundary_check t s ~ackno;
         if ackno > s.last_cumulative then s.last_cumulative <- ackno;
         check_sender_core t s;
         check_rr t s
       end
       else if ackno > s.last_cumulative then s.last_cumulative <- ackno));
  Tcp.Sender_common.on_recovery_enter base (fun ~time:_ ->
      s.episode_exit_point <- None);
  Tcp.Sender_common.on_recovery_exit base (fun ~time:_ ->
      s.episode_exit_point <- None);
  Tcp.Sender_common.on_timeout base (fun ~time:_ ->
      s.episode_exit_point <- None;
      if due t then check_sender_core t s)

(* -- queue-discipline packet conservation -- *)

let flow_fifo q flow =
  match Hashtbl.find_opt q.per_flow flow with
  | Some fifo -> fifo
  | None ->
    let fifo = Queue.create () in
    Hashtbl.add q.per_flow flow fifo;
    fifo

let attach_queue t ~name disc =
  let q =
    {
      qname = name;
      disc;
      inside = 0;
      enq = 0;
      deq = 0;
      drop = 0;
      start =
        {
          Net.Queue_disc.enqueued = disc.Net.Queue_disc.stats.enqueued;
          dropped = disc.Net.Queue_disc.stats.dropped;
          dequeued = disc.Net.Queue_disc.stats.dequeued;
          bytes_dropped = disc.Net.Queue_disc.stats.bytes_dropped;
        };
      per_flow = Hashtbl.create 7;
    }
  in
  t.queues <- q :: t.queues;
  let subject = Printf.sprintf "queue %s" name in
  let occupancy_consistent () =
    tally t;
    if not (q.inside = q.disc.Net.Queue_disc.length ()) then
      report_violation t ~subject ~rule:"queue-conservation"
        ~detail:
          (Printf.sprintf "tracked occupancy %d but disc reports %d" q.inside
             (q.disc.Net.Queue_disc.length ()))
  in
  (* The per-flow FIFO rules (every dequeued uid was enqueued, flows
     leave in arrival order) need the full event stream: their uid
     bookkeeping breaks on any skipped event. They are active only at
     [sample = 1]; sampled audits keep the exact occupancy counters and
     the sampled conservation check. *)
  let full_stream = t.sample = 1 in
  Net.Queue_disc.subscribe disc (function
    | Net.Queue_disc.Enqueued packet ->
      q.enq <- q.enq + 1;
      q.inside <- q.inside + 1;
      if full_stream then
        Queue.push packet.Net.Packet.uid (flow_fifo q packet.Net.Packet.flow);
      if due t then occupancy_consistent ()
    | Net.Queue_disc.Dropped _ ->
      q.drop <- q.drop + 1;
      if due t then occupancy_consistent ()
    | Net.Queue_disc.Dequeued packet ->
      q.deq <- q.deq + 1;
      q.inside <- q.inside - 1;
      let sampled = due t in
      if sampled then begin
        tally t;
        if not (q.inside >= 0) then
          report_violation t ~subject ~rule:"queue-conservation"
            ~detail:
              (Printf.sprintf "dequeued uid %d with tracked occupancy %d"
                 packet.Net.Packet.uid (q.inside + 1))
      end;
      if full_stream then begin
        let fifo = flow_fifo q packet.Net.Packet.flow in
        match Queue.take_opt fifo with
        | None ->
          report_violation t ~subject ~rule:"queue-conservation"
            ~detail:
              (Printf.sprintf "dequeued uid %d (flow %d) never enqueued"
                 packet.Net.Packet.uid packet.Net.Packet.flow)
        | Some expected ->
          tally t;
          if not (expected = packet.Net.Packet.uid) then
            report_violation t ~subject ~rule:"queue-fifo"
              ~detail:
                (Printf.sprintf
                   "flow %d reordered: dequeued uid %d while uid %d was in \
                    front"
                   packet.Net.Packet.flow packet.Net.Packet.uid expected)
      end;
      if sampled then occupancy_consistent ())

let finalize_queue t q =
  let subject = Printf.sprintf "queue %s" q.qname in
  let stats = q.disc.Net.Queue_disc.stats in
  tally t;
  if not (q.enq - q.deq = q.disc.Net.Queue_disc.length () && q.inside >= 0)
  then
    report_violation t ~subject ~rule:"queue-conservation"
      ~detail:
        (Printf.sprintf
           "at end of run: %d enqueued, %d dequeued, %d still queued" q.enq
           q.deq
           (q.disc.Net.Queue_disc.length ()));
  tally t;
  if
    not
      (stats.Net.Queue_disc.enqueued - q.start.Net.Queue_disc.enqueued = q.enq
      && stats.Net.Queue_disc.dropped - q.start.Net.Queue_disc.dropped = q.drop
      && stats.Net.Queue_disc.dequeued - q.start.Net.Queue_disc.dequeued
         = q.deq)
  then
    report_violation t ~subject ~rule:"queue-stats"
      ~detail:
        (Printf.sprintf
           "stats drifted from observed events: enqueued %d<>%d, dropped \
            %d<>%d, dequeued %d<>%d"
           (stats.Net.Queue_disc.enqueued - q.start.Net.Queue_disc.enqueued)
           q.enq
           (stats.Net.Queue_disc.dropped - q.start.Net.Queue_disc.dropped)
           q.drop
           (stats.Net.Queue_disc.dequeued - q.start.Net.Queue_disc.dequeued)
           q.deq)

let finalize t =
  if not t.finalized then begin
    t.finalized <- true;
    List.iter (finalize_queue t) t.queues
  end

let report t =
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer
    (Printf.sprintf "audit: %d checks, %d violation(s)\n" t.checks t.total);
  List.iter
    (fun v ->
      Buffer.add_string buffer
        (Printf.sprintf "  [%.6f] %s: %s — %s\n" v.time v.subject v.rule
           v.detail))
    (violations t);
  if t.total > t.max_recorded then
    Buffer.add_string buffer
      (Printf.sprintf "  … %d further violation(s) not recorded\n"
         (t.total - t.max_recorded));
  Buffer.contents buffer
