type finding = {
  time : float;
  subject : string;
  rule : string;
  detail : string;
}

(* One (ratio, srtt, rto) observation, taken at ACK and timeout events.
   Ratio = rto / srtt — the estimator's margin over the path it is
   supposed to track. *)
type obs = { at : float; ratio : float; obs_srtt : float; obs_rto : float }

type flow_state = {
  label : string;
  agent : Tcp.Agent.t;
  mutable recent : obs list;  (* newest first, truncated to the window *)
}

type t = {
  engine : Sim.Engine.t;
  trend_window : int;
  trend_factor : float;
  sync_window : float;
  sync_flows : int;
  max_recorded : int;
  mutable flows : flow_state list;
  mutable timeout_log : (float * string) list;  (* newest first, pruned *)
  mutable last_burst : float;
  mutable recorded : finding list;  (* newest first, capped *)
  mutable divergences : int;
  mutable sync_bursts : int;
}

let create ?(trend_window = 4) ?(trend_factor = 6.0) ?(sync_window = 0.5)
    ?(sync_flows = 2) ?(max_recorded = 100) ~engine () =
  if trend_window < 2 then invalid_arg "Divergence.create: trend_window < 2";
  if trend_factor <= 1.0 then invalid_arg "Divergence.create: trend_factor <= 1";
  if sync_window <= 0.0 then invalid_arg "Divergence.create: sync_window <= 0";
  if sync_flows < 2 then invalid_arg "Divergence.create: sync_flows < 2";
  {
    engine;
    trend_window;
    trend_factor;
    sync_window;
    sync_flows;
    max_recorded;
    flows = [];
    timeout_log = [];
    last_burst = neg_infinity;
    recorded = [];
    divergences = 0;
    sync_bursts = 0;
  }

let record t ~subject ~rule ~detail =
  let total = t.divergences + t.sync_bursts in
  if total < t.max_recorded then
    t.recorded <-
      { time = Sim.Engine.now t.engine; subject; rule; detail } :: t.recorded

let rec take n = function
  | [] -> []
  | _ when n = 0 -> []
  | x :: rest -> x :: take (n - 1) rest

(* The divergence signature Jain predicts for timeout feedback loops:
   across the last [trend_window] observations the rto/srtt ratio never
   falls and ends at least [trend_factor] times where it started — the
   timeout is running away from the path it measures (successive
   backoffs with no successful sample pulling the estimate back). *)
let check_trend t flow =
  if List.length flow.recent >= t.trend_window then begin
    let window = List.rev (take t.trend_window flow.recent) in
    let nondecreasing =
      let rec ok = function
        | a :: (b :: _ as rest) -> a.ratio <= b.ratio && ok rest
        | [ _ ] | [] -> true
      in
      ok window
    in
    let first = List.hd window in
    let last = List.nth window (t.trend_window - 1) in
    if nondecreasing && last.ratio >= t.trend_factor *. first.ratio then begin
      t.divergences <- t.divergences + 1;
      record t ~subject:flow.label ~rule:"rto-divergence"
        ~detail:
          (Printf.sprintf
             "RTO ran from %.3fs to %.3fs (x%.1f) over %d observations while \
              measured srtt held at %.3fs"
             first.obs_rto last.obs_rto
             (last.ratio /. first.ratio)
             t.trend_window last.obs_srtt);
      (* Episode reset: one finding per runaway, not one per further
         doubling. *)
      flow.recent <- []
    end
  end

let observe t flow =
  let rto = flow.agent.Tcp.Agent.base.Tcp.Sender_common.rto in
  match Tcp.Rto.srtt rto with
  | None -> ()
  | Some srtt when srtt <= 0.0 -> ()
  | Some srtt ->
    let value = Tcp.Rto.value rto in
    flow.recent <-
      take (t.trend_window)
        ({ at = Sim.Engine.now t.engine; ratio = value /. srtt;
           obs_srtt = srtt; obs_rto = value }
        :: flow.recent);
    check_trend t flow

let note_timeout t flow =
  let now = Sim.Engine.now t.engine in
  t.timeout_log <-
    (now, flow.label)
    :: List.filter (fun (at, _) -> now -. at <= t.sync_window) t.timeout_log;
  let distinct =
    List.sort_uniq compare (List.map snd t.timeout_log)
  in
  if
    List.length distinct >= t.sync_flows
    && now -. t.last_burst > t.sync_window
  then begin
    t.last_burst <- now;
    t.sync_bursts <- t.sync_bursts + 1;
    record t ~subject:"all flows" ~rule:"timeout-sync"
      ~detail:
        (Printf.sprintf
           "%d flows timed out within %.3fs of each other (%s)"
           (List.length distinct) t.sync_window
           (String.concat ", " distinct))
  end

let attach_sender t ~label agent =
  let flow = { label; agent; recent = [] } in
  t.flows <- flow :: t.flows;
  let base = agent.Tcp.Agent.base in
  Tcp.Sender_common.on_ack base (fun ~time:_ ~ackno:_ -> observe t flow);
  Tcp.Sender_common.on_timeout base (fun ~time:_ ->
      (* The timeout hook fires before the backoff is applied, so the
         observation here is the value that just expired; the next
         timeout (or ACK) sees the doubled one. *)
      observe t flow;
      note_timeout t flow)

let findings t = List.rev t.recorded

let divergence_count t = t.divergences

let sync_burst_count t = t.sync_bursts

let finding_count t = t.divergences + t.sync_bursts

let quiet t = finding_count t = 0

let report t =
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer
    (Printf.sprintf
       "divergence audit: %d finding(s) — %d RTO-divergence, %d \
        synchronized-timeout burst(s)\n"
       (finding_count t) t.divergences t.sync_bursts);
  List.iter
    (fun f ->
      Buffer.add_string buffer
        (Printf.sprintf "  [%.6f] %s: %s — %s\n" f.time f.subject f.rule
           f.detail))
    (findings t);
  if finding_count t > t.max_recorded then
    Buffer.add_string buffer
      (Printf.sprintf "  … %d further finding(s) not recorded\n"
         (finding_count t - t.max_recorded));
  Buffer.contents buffer
