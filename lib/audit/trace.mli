(** Structured JSONL event tracing.

    A tracer subscribes to the same multicast hooks as the auditor and
    writes one JSON object per line to an output channel. Events and
    their fields:

    {v
    {"t":0.102340,"ev":"send","flow":0,"seq":12,"retx":false}
    {"t":0.134200,"ev":"ack","flow":0,"ackno":12,"dup":false}
    {"t":0.150000,"ev":"recovery_enter","flow":0}
    {"t":0.310000,"ev":"recovery_exit","flow":0}
    {"t":1.540000,"ev":"timeout","flow":0}
    {"t":0.104510,"ev":"enqueue","queue":"gateway","flow":0,"kind":"data","seq":13,"uid":44}
    {"t":0.104510,"ev":"drop","queue":"gateway","flow":1,"kind":"data","seq":7,"uid":45}
    {"t":0.112010,"ev":"dequeue","queue":"gateway","flow":0,"kind":"data","seq":13,"uid":44}
    v}

    [t] is the engine time in seconds, [seq]/[ackno] are packet-unit
    sequence numbers, [uid] is the per-simulation packet id and [dup]
    marks ACKs that do not advance the flow's cumulative point. The
    channel is owned by the caller; the tracer only writes and
    {!flush}es. Lines are staged in an internal buffer and written out
    in chunks, so callers must {!flush} before closing the channel.

    {b Binary mode.} A tracer created with [~format:`Binary] records
    the same events as a compact length-prefixed binary stream instead
    of formatting JSON in the event hooks: a ["RRTB"] magic + version
    header, then one LEB128-length-prefixed record per event — tag
    byte, timestamp as the {!Sim.Timebits} int in 8 little-endian
    bytes, then varint/zigzag fields; queue and link names are
    interned and referenced by id after their first occurrence (the
    full layout is documented in [trace.ml] and DESIGN.md). {!export}
    converts such a stream back offline into exactly the JSONL the
    default mode would have written live — byte for byte, including
    the recomputed ACK [dup] flags. *)

type t

(** [create ?flush_at ?format ~out ()] builds a tracer writing to
    [out] — JSONL by default, the binary container with [`Binary]. The
    internal staging buffer is drained to the channel whenever it
    reaches [flush_at] bytes (default 64 KiB) and on {!flush}; its
    initial capacity matches [flush_at], capped at 16 MiB.

    @raise Invalid_argument if [flush_at <= 0]. *)
val create :
  ?flush_at:int -> ?format:[ `Jsonl | `Binary ] -> out:out_channel -> unit -> t

(** [attach_sender t agent] records send/ack/recovery/timeout events of
    [agent]. *)
val attach_sender : t -> Tcp.Agent.t -> unit

(** [attach_queue t ~engine ~name disc] records enqueue/drop/dequeue
    events of [disc], stamped with [engine]'s clock and labelled
    [name]. *)
val attach_queue : t -> engine:Sim.Engine.t -> name:string -> Net.Queue_disc.t -> unit

(** [attach_injector t injector] records fault-injection events:

    {v
    {"t":4.000000,"ev":"link_down","link":"bottleneck"}
    {"t":4.500000,"ev":"link_up","link":"bottleneck"}
    {"t":4.000000,"ev":"fault_drop","link":"bottleneck","flow":0,"kind":"data","seq":41,"uid":230}
    {"t":2.104510,"ev":"reorder","path":"bottleneck","extra":0.013420,"flow":1,"kind":"data","seq":17,"uid":96}
    {"t":6.000000,"ev":"rate_change","link":"bottleneck","bps":400000}
    {"t":6.000000,"ev":"delay_change","link":"bottleneck","delay":0.250000}
    v} *)
val attach_injector : t -> Faults.Injector.t -> unit

(** {1 Journal events}

    The campaign layer reuses the tracer as the buffered JSONL writer
    behind sweep run journals; unlike the simulation events above,
    journal events are wall-clock stamped and carry ad-hoc fields. *)

(** A journal field value; [Str] payloads are JSON-escaped on write. *)
type field = Int of int | Float of float | Str of string | Bool of bool

(** [journal_event t ~time ~ev fields] appends one event line

    {v
    {"t":<time>,"ev":"<ev>","<key>":<value>,...}
    v}

    with the fields in the order given. The line is staged like every
    other trace line — call {!flush} to make it durable. *)
val journal_event : t -> time:float -> ev:string -> (string * field) list -> unit

(** [flush t] drains the staging buffer and flushes the underlying
    channel. *)
val flush : t -> unit

(** {1 Offline export} *)

(** Raised by {!export} on a malformed binary trace; the payload
    describes the first defect found. *)
exception Corrupt of string

(** [export ~input ~output] reads a binary trace (as written by a
    [`Binary] tracer) from [input] and writes the equivalent JSONL to
    [output], byte-identical to what a [`Jsonl] tracer observing the
    same events would have produced. Flushes [output]'s tracer staging
    but leaves closing both channels to the caller.

    @raise Corrupt on bad magic, truncation or undecodable records. *)
val export : input:in_channel -> output:out_channel -> unit
