type t = {
  out : out_channel;
  (* Events are formatted into [buf] and written out in [flush_at]-sized
     chunks, so tracing costs a memory append per event instead of a
     per-event channel write. *)
  buf : Buffer.t;
  flush_at : int;
  last_cumulative : (int, int) Hashtbl.t;  (* flow -> highest ackno seen *)
}

let default_flush_at = 1 lsl 16

let create ?(flush_at = default_flush_at) ~out () =
  if flush_at <= 0 then invalid_arg "Trace.create: flush_at <= 0";
  { out; buf = Buffer.create (min flush_at (1 lsl 16)); flush_at;
    last_cumulative = Hashtbl.create 7 }

let drain t =
  if Buffer.length t.buf > 0 then begin
    Buffer.output_buffer t.out t.buf;
    Buffer.clear t.buf
  end

let line t fmt =
  Printf.kbprintf
    (fun buf ->
      Buffer.add_char buf '\n';
      if Buffer.length buf >= t.flush_at then drain t)
    t.buf fmt

let attach_sender t agent =
  let flow = agent.Tcp.Agent.flow in
  let base = agent.Tcp.Agent.base in
  Tcp.Sender_common.on_send base (fun ~time ~seq ~retx ->
      line t {|{"t":%.6f,"ev":"send","flow":%d,"seq":%d,"retx":%b}|} time flow
        seq retx);
  Tcp.Sender_common.on_ack base (fun ~time ~ackno ->
      let dup =
        match Hashtbl.find_opt t.last_cumulative flow with
        | Some highest -> ackno <= highest
        | None -> false
      in
      if not dup then Hashtbl.replace t.last_cumulative flow ackno;
      line t {|{"t":%.6f,"ev":"ack","flow":%d,"ackno":%d,"dup":%b}|} time flow
        ackno dup);
  Tcp.Sender_common.on_recovery_enter base (fun ~time ->
      line t {|{"t":%.6f,"ev":"recovery_enter","flow":%d}|} time flow);
  Tcp.Sender_common.on_recovery_exit base (fun ~time ->
      line t {|{"t":%.6f,"ev":"recovery_exit","flow":%d}|} time flow);
  Tcp.Sender_common.on_timeout base (fun ~time ->
      line t {|{"t":%.6f,"ev":"timeout","flow":%d}|} time flow)

let packet_fields (packet : Net.Packet.t) =
  match packet.kind with
  | Net.Packet.Data { seq } ->
    Printf.sprintf {|"flow":%d,"kind":"data","seq":%d,"uid":%d|} packet.flow
      seq packet.uid
  | Net.Packet.Ack { ackno; _ } ->
    Printf.sprintf {|"flow":%d,"kind":"ack","ackno":%d,"uid":%d|} packet.flow
      ackno packet.uid

let attach_queue t ~engine ~name disc =
  Net.Queue_disc.subscribe disc (fun event ->
      let ev, packet =
        match event with
        | Net.Queue_disc.Enqueued p -> ("enqueue", p)
        | Net.Queue_disc.Dropped p -> ("drop", p)
        | Net.Queue_disc.Dequeued p -> ("dequeue", p)
      in
      line t {|{"t":%.6f,"ev":"%s","queue":"%s",%s}|} (Sim.Engine.now engine)
        ev name (packet_fields packet))

let attach_injector t injector =
  Faults.Injector.subscribe injector (fun ~time event ->
      match event with
      | Faults.Injector.Link_down { link } ->
        line t {|{"t":%.6f,"ev":"link_down","link":"%s"}|} time link
      | Faults.Injector.Link_up { link } ->
        line t {|{"t":%.6f,"ev":"link_up","link":"%s"}|} time link
      | Faults.Injector.Fault_drop { link; packet } ->
        line t {|{"t":%.6f,"ev":"fault_drop","link":"%s",%s}|} time link
          (packet_fields packet)
      | Faults.Injector.Reordered { path; packet; extra } ->
        line t {|{"t":%.6f,"ev":"reorder","path":"%s","extra":%.6f,%s}|} time
          path extra (packet_fields packet))

(* -- generic journal events --

   The campaign layer reuses the tracer as its buffered JSONL writer
   for run journals; events there carry wall-clock stamps and ad-hoc
   fields, so the rendering has to escape arbitrary strings (exception
   messages, digests) rather than trusting printf literals. *)

type field = Int of int | Float of float | Str of string | Bool of bool

let add_json_string buffer s =
  Buffer.add_char buffer '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\r' -> Buffer.add_string buffer "\\r"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.add_char buffer '"'

let journal_event t ~time ~ev fields =
  let buffer = Buffer.create 96 in
  add_json_string buffer ev;
  List.iter
    (fun (key, value) ->
      Buffer.add_char buffer ',';
      add_json_string buffer key;
      Buffer.add_char buffer ':';
      match value with
      | Int i -> Buffer.add_string buffer (string_of_int i)
      | Float f -> Buffer.add_string buffer (Printf.sprintf "%g" f)
      | Str s -> add_json_string buffer s
      | Bool b -> Buffer.add_string buffer (if b then "true" else "false"))
    fields;
  line t {|{"t":%.6f,"ev":%s}|} time (Buffer.contents buffer)

let flush t =
  drain t;
  flush t.out
