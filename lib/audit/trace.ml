(* Interned-string table and reusable scratch buffer of a binary-mode
   tracer. Queue and link names repeat on every event, so they are
   written once as a definition record and referenced by id after. *)
type binary_state = {
  scratch : Buffer.t;
  interned : (string, int) Hashtbl.t;
  mutable next_id : int;
}

type mode = Jsonl | Binary of binary_state

type t = {
  out : out_channel;
  (* Events are formatted into [buf] and written out in [flush_at]-sized
     chunks, so tracing costs a memory append per event instead of a
     per-event channel write. *)
  buf : Buffer.t;
  flush_at : int;
  last_cumulative : (int, int) Hashtbl.t;  (* flow -> highest ackno seen *)
  mode : mode;
}

let default_flush_at = 1 lsl 16

(* The binary container: magic + version, then length-prefixed records.

     header  := "RRTB" version:u8(=1)
     record  := varint(payload length) payload
     payload := tag:u8 time:i63le rest

   [varint] is LEB128 (7 bits per byte, high bit = continuation) and
   encodes non-negative ints; signed fields go through zigzag first.
   [i63le] is an OCaml 63-bit int written as 8 little-endian bytes
   (two's complement; bit 63 of the wire word duplicates the sign) —
   used for times, which travel in {!Sim.Timebits} encoding so the
   exporter recovers the exact float the JSONL writer would have
   printed. Record payloads by tag:

     0  send            varint flow, zigzag seq, retx:u8
     1  ack             varint flow, zigzag ackno
     2  recovery_enter  varint flow
     3  recovery_exit   varint flow
     4  timeout         varint flow
     5  enqueue         strref queue, packet
     6  drop            strref queue, packet
     7  dequeue         strref queue, packet
     8  link_down       strref link
     9  link_up         strref link
     10 fault_drop      strref link, packet
     11 reorder         strref path, extra:i63le(timebits), packet
     14 rate_change     strref link, bps:f64le bits
     15 delay_change    strref link, delay:i63le(timebits)
     12 journal         str ev, varint nfields,
                          nfields * (str key, vtag:u8, value)
                          vtag 0 = zigzag int, 1 = float as i64le bits,
                          2 = str, 3 = bool:u8
     13 strdef          varint id, str
     packet := varint flow, is_data:u8, zigzag seq_or_ackno, varint uid
     str    := varint length, bytes
     strref := varint id      (defined by a preceding strdef)

   ACK [dup] flags are not stored: the exporter recomputes them with
   the same per-flow cumulative-point table the live JSONL writer
   uses, so the two outputs agree byte for byte. *)
let binary_magic = "RRTB\x01"

let create ?(flush_at = default_flush_at) ?(format = `Jsonl) ~out () =
  if flush_at <= 0 then invalid_arg "Trace.create: flush_at <= 0";
  let mode =
    match format with
    | `Jsonl -> Jsonl
    | `Binary ->
      Binary
        {
          scratch = Buffer.create 64;
          interned = Hashtbl.create 16;
          next_id = 0;
        }
  in
  let t =
    {
      out;
      (* Size the staging buffer to the requested flush threshold (the
         natural high-water mark), capped so a huge [flush_at] cannot
         demand a matching contiguous allocation up front. *)
      buf = Buffer.create (min flush_at (1 lsl 24));
      flush_at;
      last_cumulative = Hashtbl.create 7;
      mode;
    }
  in
  (match t.mode with
  | Jsonl -> ()
  | Binary _ -> Buffer.add_string t.buf binary_magic);
  t

let drain t =
  if Buffer.length t.buf > 0 then begin
    Buffer.output_buffer t.out t.buf;
    Buffer.clear t.buf
  end

let line t fmt =
  Printf.kbprintf
    (fun buf ->
      Buffer.add_char buf '\n';
      if Buffer.length buf >= t.flush_at then drain t)
    t.buf fmt

(* -- binary encoding primitives -- *)

let add_varint buf n =
  let n = ref n in
  while !n >= 0x80 do
    Buffer.add_char buf (Char.unsafe_chr (0x80 lor (!n land 0x7f)));
    n := !n lsr 7
  done;
  Buffer.add_char buf (Char.unsafe_chr !n)

let varint_size n =
  let n = ref n and size = ref 1 in
  while !n >= 0x80 do
    incr size;
    n := !n lsr 7
  done;
  !size

let[@inline] zigzag n = (n lsl 1) lxor (n asr 62)

let add_i63_le buf n =
  for i = 0 to 7 do
    Buffer.add_char buf (Char.unsafe_chr ((n asr (i * 8)) land 0xff))
  done

let add_str buf s =
  add_varint buf (String.length s);
  Buffer.add_string buf s

(* [intern t b name] returns the id of [name], writing its strdef
   record (tag 13) first on a miss. The definition goes straight to
   [t.buf]: [b.scratch] may be mid-event at this point. *)
let intern t b name =
  match Hashtbl.find_opt b.interned name with
  | Some id -> id
  | None ->
    let id = b.next_id in
    b.next_id <- id + 1;
    Hashtbl.add b.interned name id;
    let len = String.length name in
    add_varint t.buf (1 + varint_size id + varint_size len + len);
    Buffer.add_char t.buf '\x0d';
    add_varint t.buf id;
    add_str t.buf name;
    id

(* Every binary emitter encodes its payload into [b.scratch] between
   [bin_begin] and [bin_end]; the latter length-prefixes it into the
   staging buffer. Open-coded rather than taking an encoding callback
   so the hot emitters stay closure-free. *)
let bin_begin b tag ~time =
  Buffer.clear b.scratch;
  Buffer.add_char b.scratch (Char.unsafe_chr tag);
  add_i63_le b.scratch (Sim.Timebits.of_time time)

let bin_end t b =
  add_varint t.buf (Buffer.length b.scratch);
  Buffer.add_buffer t.buf b.scratch;
  if Buffer.length t.buf >= t.flush_at then drain t

let add_packet buf (packet : Net.Packet.t) =
  add_varint buf packet.flow;
  if Net.Packet.is_data packet then begin
    Buffer.add_char buf '\x01';
    add_varint buf (zigzag (Net.Packet.seq_exn packet))
  end
  else begin
    Buffer.add_char buf '\x00';
    add_varint buf (zigzag (Net.Packet.ackno_exn packet))
  end;
  add_varint buf packet.uid

(* -- event emitters, shared by the live hooks and the exporter -- *)

let emit_send t ~time ~flow ~seq ~retx =
  match t.mode with
  | Jsonl ->
    line t {|{"t":%.6f,"ev":"send","flow":%d,"seq":%d,"retx":%b}|} time flow
      seq retx
  | Binary b ->
    bin_begin b 0 ~time;
    add_varint b.scratch flow;
    add_varint b.scratch (zigzag seq);
    Buffer.add_char b.scratch (if retx then '\x01' else '\x00');
    bin_end t b

let emit_ack t ~time ~flow ~ackno =
  match t.mode with
  | Jsonl ->
    let dup =
      match Hashtbl.find_opt t.last_cumulative flow with
      | Some highest -> ackno <= highest
      | None -> false
    in
    if not dup then Hashtbl.replace t.last_cumulative flow ackno;
    line t {|{"t":%.6f,"ev":"ack","flow":%d,"ackno":%d,"dup":%b}|} time flow
      ackno dup
  | Binary b ->
    bin_begin b 1 ~time;
    add_varint b.scratch flow;
    add_varint b.scratch (zigzag ackno);
    bin_end t b

let emit_flow_marker t ~tag ~ev ~time ~flow =
  match t.mode with
  | Jsonl -> line t {|{"t":%.6f,"ev":"%s","flow":%d}|} time ev flow
  | Binary b ->
    bin_begin b tag ~time;
    add_varint b.scratch flow;
    bin_end t b

let packet_fields (packet : Net.Packet.t) =
  if Net.Packet.is_data packet then
    Printf.sprintf {|"flow":%d,"kind":"data","seq":%d,"uid":%d|} packet.flow
      (Net.Packet.seq_exn packet) packet.uid
  else
    Printf.sprintf {|"flow":%d,"kind":"ack","ackno":%d,"uid":%d|} packet.flow
      (Net.Packet.ackno_exn packet) packet.uid

let emit_queue_event t ~tag ~ev ~time ~name packet =
  match t.mode with
  | Jsonl ->
    line t {|{"t":%.6f,"ev":"%s","queue":"%s",%s}|} time ev name
      (packet_fields packet)
  | Binary b ->
    let id = intern t b name in
    bin_begin b tag ~time;
    add_varint b.scratch id;
    add_packet b.scratch packet;
    bin_end t b

let emit_link_marker t ~tag ~ev ~time ~link =
  match t.mode with
  | Jsonl -> line t {|{"t":%.6f,"ev":"%s","link":"%s"}|} time ev link
  | Binary b ->
    let id = intern t b link in
    bin_begin b tag ~time;
    add_varint b.scratch id;
    bin_end t b

let emit_fault_drop t ~time ~link packet =
  match t.mode with
  | Jsonl ->
    line t {|{"t":%.6f,"ev":"fault_drop","link":"%s",%s}|} time link
      (packet_fields packet)
  | Binary b ->
    let id = intern t b link in
    bin_begin b 10 ~time;
    add_varint b.scratch id;
    add_packet b.scratch packet;
    bin_end t b

let emit_rate_change t ~time ~link ~bps =
  match t.mode with
  | Jsonl ->
    line t {|{"t":%.6f,"ev":"rate_change","link":"%s","bps":%g}|} time link bps
  | Binary b ->
    let id = intern t b link in
    bin_begin b 14 ~time;
    add_varint b.scratch id;
    Buffer.add_int64_le b.scratch (Int64.bits_of_float bps);
    bin_end t b

let emit_delay_change t ~time ~link ~delay =
  match t.mode with
  | Jsonl ->
    line t {|{"t":%.6f,"ev":"delay_change","link":"%s","delay":%.6f}|} time
      link delay
  | Binary b ->
    let id = intern t b link in
    bin_begin b 15 ~time;
    add_varint b.scratch id;
    add_i63_le b.scratch (Sim.Timebits.of_time delay);
    bin_end t b

let emit_reorder t ~time ~path ~extra packet =
  match t.mode with
  | Jsonl ->
    line t {|{"t":%.6f,"ev":"reorder","path":"%s","extra":%.6f,%s}|} time path
      extra (packet_fields packet)
  | Binary b ->
    let id = intern t b path in
    bin_begin b 11 ~time;
    add_varint b.scratch id;
    add_i63_le b.scratch (Sim.Timebits.of_time extra);
    add_packet b.scratch packet;
    bin_end t b

(* -- hook subscriptions -- *)

let attach_sender t agent =
  let flow = agent.Tcp.Agent.flow in
  let base = agent.Tcp.Agent.base in
  Tcp.Sender_common.on_send base (fun ~time ~seq ~retx ->
      emit_send t ~time ~flow ~seq ~retx);
  Tcp.Sender_common.on_ack base (fun ~time ~ackno ->
      emit_ack t ~time ~flow ~ackno);
  Tcp.Sender_common.on_recovery_enter base (fun ~time ->
      emit_flow_marker t ~tag:2 ~ev:"recovery_enter" ~time ~flow);
  Tcp.Sender_common.on_recovery_exit base (fun ~time ->
      emit_flow_marker t ~tag:3 ~ev:"recovery_exit" ~time ~flow);
  Tcp.Sender_common.on_timeout base (fun ~time ->
      emit_flow_marker t ~tag:4 ~ev:"timeout" ~time ~flow)

let attach_queue t ~engine ~name disc =
  Net.Queue_disc.subscribe disc (fun event ->
      let time = Sim.Engine.now engine in
      match event with
      | Net.Queue_disc.Enqueued p ->
        emit_queue_event t ~tag:5 ~ev:"enqueue" ~time ~name p
      | Net.Queue_disc.Dropped p ->
        emit_queue_event t ~tag:6 ~ev:"drop" ~time ~name p
      | Net.Queue_disc.Dequeued p ->
        emit_queue_event t ~tag:7 ~ev:"dequeue" ~time ~name p)

let attach_injector t injector =
  Faults.Injector.subscribe injector (fun ~time event ->
      match event with
      | Faults.Injector.Link_down { link } ->
        emit_link_marker t ~tag:8 ~ev:"link_down" ~time ~link
      | Faults.Injector.Link_up { link } ->
        emit_link_marker t ~tag:9 ~ev:"link_up" ~time ~link
      | Faults.Injector.Fault_drop { link; packet } ->
        emit_fault_drop t ~time ~link packet
      | Faults.Injector.Reordered { path; packet; extra } ->
        emit_reorder t ~time ~path ~extra packet
      | Faults.Injector.Rate_change { link; bps } ->
        emit_rate_change t ~time ~link ~bps
      | Faults.Injector.Delay_change { link; delay } ->
        emit_delay_change t ~time ~link ~delay)

(* -- generic journal events --

   The campaign layer reuses the tracer as its buffered JSONL writer
   for run journals; events there carry wall-clock stamps and ad-hoc
   fields, so the rendering has to escape arbitrary strings (exception
   messages, digests) rather than trusting printf literals. *)

type field = Int of int | Float of float | Str of string | Bool of bool

let add_json_string buffer s =
  Buffer.add_char buffer '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\r' -> Buffer.add_string buffer "\\r"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.add_char buffer '"'

let journal_event t ~time ~ev fields =
  match t.mode with
  | Jsonl ->
    let buffer = Buffer.create 96 in
    add_json_string buffer ev;
    List.iter
      (fun (key, value) ->
        Buffer.add_char buffer ',';
        add_json_string buffer key;
        Buffer.add_char buffer ':';
        match value with
        | Int i -> Buffer.add_string buffer (string_of_int i)
        | Float f -> Buffer.add_string buffer (Printf.sprintf "%g" f)
        | Str s -> add_json_string buffer s
        | Bool b -> Buffer.add_string buffer (if b then "true" else "false"))
      fields;
    line t {|{"t":%.6f,"ev":%s}|} time (Buffer.contents buffer)
  | Binary b ->
    bin_begin b 12 ~time;
    add_str b.scratch ev;
    add_varint b.scratch (List.length fields);
    List.iter
      (fun (key, value) ->
        add_str b.scratch key;
        match value with
        | Int i ->
          Buffer.add_char b.scratch '\x00';
          add_varint b.scratch (zigzag i)
        | Float f ->
          Buffer.add_char b.scratch '\x01';
          Buffer.add_int64_le b.scratch (Int64.bits_of_float f)
        | Str s ->
          Buffer.add_char b.scratch '\x02';
          add_str b.scratch s
        | Bool flag ->
          Buffer.add_char b.scratch '\x03';
          Buffer.add_char b.scratch (if flag then '\x01' else '\x00'))
      fields;
    bin_end t b

let flush t =
  drain t;
  flush t.out

(* -- offline export: binary container back to the JSONL the Jsonl
   mode would have written live. Decoded events are replayed through
   the emitters above on a Jsonl tracer, so the formats (and the
   recomputed ACK [dup] flags) cannot drift apart. -- *)

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* Read the next record's length prefix; [None] on a clean EOF at a
   record boundary. EOF anywhere inside the varint is corruption. *)
let read_record_len input =
  match input_char input with
  | exception End_of_file -> None
  | first ->
    let rec go shift acc =
      let b =
        try Char.code (input_char input)
        with End_of_file -> corrupt "truncated varint"
      in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 <> 0 then go (shift + 7) acc else acc
    in
    let b = Char.code first in
    Some
      (if b land 0x80 <> 0 then go 7 (b land 0x7f) else b)

type cursor = { payload : string; mutable pos : int }

let byte cur =
  if cur.pos >= String.length cur.payload then corrupt "truncated record";
  let c = Char.code cur.payload.[cur.pos] in
  cur.pos <- cur.pos + 1;
  c

let cur_varint cur =
  let rec go shift acc =
    let b = byte cur in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 <> 0 then go (shift + 7) acc else acc
  in
  go 0 0

let[@inline] unzigzag n = (n lsr 1) lxor (-(n land 1))

let cur_i63 cur =
  let n = ref 0 in
  for i = 0 to 7 do
    n := !n lor (byte cur lsl (i * 8))
  done;
  (* Bit 63 of the wire word duplicated the sign and fell off the
     63-bit int; bit 62 still carries it. *)
  !n

let cur_time cur = Sim.Timebits.to_time (cur_i63 cur)

let cur_str cur =
  let len = cur_varint cur in
  if cur.pos + len > String.length cur.payload then corrupt "truncated string";
  let s = String.sub cur.payload cur.pos len in
  cur.pos <- cur.pos + len;
  s

let cur_i64 cur =
  let n = ref 0L in
  for i = 0 to 7 do
    n := Int64.logor !n (Int64.shift_left (Int64.of_int (byte cur)) (i * 8))
  done;
  !n

(* Rebuild a traced packet from its wire triple. Only the fields the
   emitters print matter; size and birth time are not traced. *)
let cur_packet cur =
  let flow = cur_varint cur in
  let is_data = byte cur <> 0 in
  let number = unzigzag (cur_varint cur) in
  let uid = cur_varint cur in
  if is_data then
    Net.Packet.data ~uid ~flow ~seq:number ~size_bytes:0 ~born:0.0
  else Net.Packet.ack ~uid ~flow ~ackno:number ~size_bytes:0 ~born:0.0 ()

let export ~input ~output =
  (match really_input_string input (String.length binary_magic) with
  | magic when magic = binary_magic -> ()
  | _ -> corrupt "bad magic (not an rr-sim binary trace)"
  | exception End_of_file -> corrupt "bad magic (not an rr-sim binary trace)");
  let jt = create ~out:output () in
  let strings = Hashtbl.create 16 in
  let strref cur =
    let id = cur_varint cur in
    match Hashtbl.find_opt strings id with
    | Some s -> s
    | None -> corrupt "undefined string reference %d" id
  in
  let rec records () =
    match read_record_len input with
    | None -> ()
    | Some len ->
      let payload =
        try really_input_string input len
        with End_of_file -> corrupt "truncated record"
      in
      let cur = { payload; pos = 0 } in
      (match byte cur with
      | 0 ->
        let time = cur_time cur in
        let flow = cur_varint cur in
        let seq = unzigzag (cur_varint cur) in
        let retx = byte cur <> 0 in
        emit_send jt ~time ~flow ~seq ~retx
      | 1 ->
        let time = cur_time cur in
        let flow = cur_varint cur in
        let ackno = unzigzag (cur_varint cur) in
        emit_ack jt ~time ~flow ~ackno
      | 2 ->
        let time = cur_time cur in
        emit_flow_marker jt ~tag:2 ~ev:"recovery_enter" ~time
          ~flow:(cur_varint cur)
      | 3 ->
        let time = cur_time cur in
        emit_flow_marker jt ~tag:3 ~ev:"recovery_exit" ~time
          ~flow:(cur_varint cur)
      | 4 ->
        let time = cur_time cur in
        emit_flow_marker jt ~tag:4 ~ev:"timeout" ~time ~flow:(cur_varint cur)
      | (5 | 6 | 7) as tag ->
        let time = cur_time cur in
        let name = strref cur in
        let packet = cur_packet cur in
        let ev =
          match tag with 5 -> "enqueue" | 6 -> "drop" | _ -> "dequeue"
        in
        emit_queue_event jt ~tag ~ev ~time ~name packet
      | (8 | 9) as tag ->
        let time = cur_time cur in
        let ev = if tag = 8 then "link_down" else "link_up" in
        emit_link_marker jt ~tag ~ev ~time ~link:(strref cur)
      | 10 ->
        let time = cur_time cur in
        let link = strref cur in
        emit_fault_drop jt ~time ~link (cur_packet cur)
      | 11 ->
        let time = cur_time cur in
        let path = strref cur in
        let extra = cur_time cur in
        emit_reorder jt ~time ~path ~extra (cur_packet cur)
      | 14 ->
        let time = cur_time cur in
        let link = strref cur in
        let bps = Int64.float_of_bits (cur_i64 cur) in
        emit_rate_change jt ~time ~link ~bps
      | 15 ->
        let time = cur_time cur in
        let link = strref cur in
        let delay = cur_time cur in
        emit_delay_change jt ~time ~link ~delay
      | 12 ->
        let time = cur_time cur in
        let ev = cur_str cur in
        let nfields = cur_varint cur in
        let fields =
          List.init nfields (fun _ ->
              let key = cur_str cur in
              let value =
                match byte cur with
                | 0 -> Int (unzigzag (cur_varint cur))
                | 1 -> Float (Int64.float_of_bits (cur_i64 cur))
                | 2 -> Str (cur_str cur)
                | 3 -> Bool (byte cur <> 0)
                | tag -> corrupt "unknown journal value tag %d" tag
              in
              (key, value))
        in
        journal_event jt ~time ~ev fields
      | 13 ->
        let id = cur_varint cur in
        Hashtbl.replace strings id (cur_str cur)
      | tag -> corrupt "unknown record tag %d" tag);
      if cur.pos <> String.length payload then
        corrupt "record length mismatch (tag %d)" (Char.code payload.[0]);
      records ()
  in
  records ();
  flush jt
