(** Runtime invariant auditor.

    An auditor subscribes to the multicast event hooks of TCP senders
    ({!Tcp.Sender_common}) and queue disciplines ({!Net.Queue_disc}) and
    re-checks, on every event, the invariants the simulator is supposed
    to uphold:

    - {b sender ordering}: [una <= t_seqno - 1 <= maxseq], a
      non-negative flight, [cwnd >= 1] and [ssthresh >= 2];
    - {b dupack consistency}: past the duplicate-ACK threshold outside
      recovery, fast retransmit must be suppressed by the [recover_mark]
      rule (skipped for Vegas, whose fine-grained retransmit timer
      legitimately outruns the counter);
    - {b send labelling}: a transmission at or below the highest
      sequence ever sent must be flagged as a retransmission, and vice
      versa — checked against an independently maintained shadow of
      [maxseq];
    - {b ACK sanity}: cumulative ACKs never regress and never
      acknowledge data beyond the shadow [maxseq];
    - {b RR recovery}: [actnum], [ndup] and the further-loss count stay
      non-negative, the exit point is monotone within an episode and
      never beyond [maxseq], and [ndup] is reset at each probe-RTT
      boundary;
    - {b packet conservation}: each queue's observed occupancy matches
      what the discipline reports, every dequeued packet was previously
      enqueued, packets of one flow leave in arrival order, and the
      discipline's statistics agree with the observed event counts.

    Checks run inside the event hooks, i.e. at well-defined points of
    each sender transaction; violations are recorded (with the engine
    time), never raised, so a broken run still completes and reports.

    {b Sampling.} An auditor created with [~sample:n] evaluates the
    check batteries on 1-in-[n] observed events instead of every one.
    The cheap shadow state every rule compares against (shadow
    [maxseq], the cumulative-ACK point, queue occupancy and event
    counters) is still maintained exactly on {e every} event, so a
    sampled check never produces a false positive — sampling only
    trades detection probability of transient violations for audit
    cost. Two rules need the full event stream and are active only at
    [sample = 1]: {b queue-fifo} and the dequeued-but-never-enqueued
    arm of {b queue-conservation}, whose per-uid bookkeeping breaks on
    any skipped event. End-of-run {!finalize} checks use exact
    counters and run at every sampling rate. *)

type violation = {
  time : float;  (** engine time at detection *)
  subject : string;  (** e.g. ["flow 0 (rr)"] or ["queue gateway"] *)
  rule : string;  (** stable rule identifier, e.g. ["queue-fifo"] *)
  detail : string;  (** human-readable specifics *)
}

type t

(** [create ~engine ()] builds an auditor stamping violations with
    [engine]'s clock. At most [max_recorded] violations (default 100)
    are stored verbatim; further ones are only counted. [sample]
    (default 1 = audit every event) enables 1-in-[n] sampling as
    described above.

    @raise Invalid_argument if [sample < 1]. *)
val create :
  ?max_recorded:int -> ?sample:int -> engine:Sim.Engine.t -> unit -> t

(** [sample t] is the sampling divisor [t] was created with. *)
val sample : t -> int

(** [attach_sender t ~label agent] subscribes the sender checks to
    [agent]'s hooks. Pass [?rr] to also check Robust-Recovery
    invariants through the introspection handle. [label] names the
    subject in reports. *)
val attach_sender :
  t -> ?rr:Core.Rr.handle -> label:string -> Tcp.Agent.t -> unit

(** [attach_queue t ~name disc] subscribes the packet-conservation
    checks to [disc]. Occupancy already queued at attach time must be
    zero (attach before the run starts). *)
val attach_queue : t -> name:string -> Net.Queue_disc.t -> unit

(** [finalize t] runs the end-of-run checks (queue-statistics
    consistency, final occupancy). Idempotent. *)
val finalize : t -> unit

(** [ok t] is [true] when no check has failed so far. *)
val ok : t -> bool

(** [violation_count t] counts all failed checks, including those
    beyond the recording cap. *)
val violation_count : t -> int

(** [checks_run t] counts individual invariant evaluations. *)
val checks_run : t -> int

(** [violations t] lists recorded violations, oldest first. *)
val violations : t -> violation list

(** [report t] renders a multi-line summary ending in a newline. *)
val report : t -> string
