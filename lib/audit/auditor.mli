(** Runtime invariant auditor.

    An auditor subscribes to the multicast event hooks of TCP senders
    ({!Tcp.Sender_common}) and queue disciplines ({!Net.Queue_disc}) and
    re-checks, on every event, the invariants the simulator is supposed
    to uphold:

    - {b sender ordering}: [una <= t_seqno - 1 <= maxseq], a
      non-negative flight, [cwnd >= 1] and [ssthresh >= 2];
    - {b dupack consistency}: past the duplicate-ACK threshold outside
      recovery, fast retransmit must be suppressed by the [recover_mark]
      rule (skipped for Vegas, whose fine-grained retransmit timer
      legitimately outruns the counter);
    - {b send labelling}: a transmission at or below the highest
      sequence ever sent must be flagged as a retransmission, and vice
      versa — checked against an independently maintained shadow of
      [maxseq];
    - {b ACK sanity}: cumulative ACKs never regress and never
      acknowledge data beyond the shadow [maxseq];
    - {b RR recovery}: [actnum], [ndup] and the further-loss count stay
      non-negative, the exit point is monotone within an episode and
      never beyond [maxseq], and [ndup] is reset at each probe-RTT
      boundary;
    - {b packet conservation}: each queue's observed occupancy matches
      what the discipline reports, every dequeued packet was previously
      enqueued, packets of one flow leave in arrival order, and the
      discipline's statistics agree with the observed event counts.

    Checks run inside the event hooks, i.e. at well-defined points of
    each sender transaction; violations are recorded (with the engine
    time), never raised, so a broken run still completes and reports. *)

type violation = {
  time : float;  (** engine time at detection *)
  subject : string;  (** e.g. ["flow 0 (rr)"] or ["queue gateway"] *)
  rule : string;  (** stable rule identifier, e.g. ["queue-fifo"] *)
  detail : string;  (** human-readable specifics *)
}

type t

(** [create ~engine ()] builds an auditor stamping violations with
    [engine]'s clock. At most [max_recorded] violations (default 100)
    are stored verbatim; further ones are only counted. *)
val create : ?max_recorded:int -> engine:Sim.Engine.t -> unit -> t

(** [attach_sender t ~label agent] subscribes the sender checks to
    [agent]'s hooks. Pass [?rr] to also check Robust-Recovery
    invariants through the introspection handle. [label] names the
    subject in reports. *)
val attach_sender :
  t -> ?rr:Core.Rr.handle -> label:string -> Tcp.Agent.t -> unit

(** [attach_queue t ~name disc] subscribes the packet-conservation
    checks to [disc]. Occupancy already queued at attach time must be
    zero (attach before the run starts). *)
val attach_queue : t -> name:string -> Net.Queue_disc.t -> unit

(** [finalize t] runs the end-of-run checks (queue-statistics
    consistency, final occupancy). Idempotent. *)
val finalize : t -> unit

(** [ok t] is [true] when no check has failed so far. *)
val ok : t -> bool

(** [violation_count t] counts all failed checks, including those
    beyond the recording cap. *)
val violation_count : t -> int

(** [checks_run t] counts individual invariant evaluations. *)
val checks_run : t -> int

(** [violations t] lists recorded violations, oldest first. *)
val violations : t -> violation list

(** [report t] renders a multi-line summary ending in a newline. *)
val report : t -> string
