(** Constant-bit-rate (UDP-like) cross-traffic.

    A CBR source emits fixed-size packets at a fixed rate into any
    packet consumer — typically a dumbbell access link — with no
    congestion response at all: it models the unresponsive UDP
    cross-traffic that steals bottleneck bandwidth from the TCP flows
    under study. Packets are tagged with the source's flow id, so queue
    traces and drop ledgers attribute them correctly.

    Emission times are purely deterministic (no RNG): the first packet
    leaves at [at] and subsequent ones every
    [packet_bytes * 8 / rate_bps] seconds until [until]. *)

type t

(** [create ~engine ~flow ~rate_bps ~packet_bytes ~at ~until ~emit ()]
    arms the source. [emit] receives each freshly built packet; packet
    uids count up from 0 within this source.

    @raise Invalid_argument unless [rate_bps > 0], [packet_bytes > 0]
    and [at < until]. *)
val create :
  engine:Sim.Engine.t ->
  flow:int ->
  rate_bps:float ->
  packet_bytes:int ->
  at:float ->
  until:float ->
  emit:(Net.Packet.t -> unit) ->
  unit ->
  t

(** [interval t] is the emission period, seconds per packet. *)
val interval : t -> float

(** [sent t] counts packets emitted so far. *)
val sent : t -> int

(** [bytes_sent t] totals the bytes emitted so far. *)
val bytes_sent : t -> int
