type t = {
  engine : Sim.Engine.t;
  flow : int;
  packet_bytes : int;
  interval : float;
  until : float;
  emit : Net.Packet.t -> unit;
  mutable uid : int;
  mutable sent : int;
}

let interval t = t.interval

let sent t = t.sent

let bytes_sent t = t.sent * t.packet_bytes

let rec tick t =
  let now = Sim.Engine.now t.engine in
  let packet =
    (* CBR payloads reuse the data-segment shape; seq is just a packet
       index, never interpreted by a receiver. *)
    Net.Packet.data ~uid:t.uid ~flow:t.flow ~seq:t.sent
      ~size_bytes:t.packet_bytes ~born:now
  in
  t.uid <- t.uid + 1;
  t.sent <- t.sent + 1;
  t.emit packet;
  let next = now +. t.interval in
  if next < t.until then
    Sim.Engine.schedule_unit_at t.engine ~time:next (fun () -> tick t)

let create ~engine ~flow ~rate_bps ~packet_bytes ~at ~until ~emit () =
  if rate_bps <= 0.0 then invalid_arg "Cbr.create: rate_bps <= 0";
  if packet_bytes <= 0 then invalid_arg "Cbr.create: packet_bytes <= 0";
  if not (at < until) then invalid_arg "Cbr.create: need at < until";
  let interval = float_of_int (packet_bytes * 8) /. rate_bps in
  let t =
    { engine; flow; packet_bytes; interval; until; emit; uid = 0; sent = 0 }
  in
  Sim.Engine.schedule_unit_at engine ~time:at (fun () -> tick t);
  t
