(** FTP application model — the paper's traffic source.

    A persistent FTP has an infinite backlog; a file transfer supplies a
    fixed number of bytes and reports completion (used for Table 5's
    transfer-delay measurement). *)

type completion = { started : float; finished : float }

(** [persistent ~engine ~agent ~at] starts an infinite-backlog source on
    [agent] at time [at]. *)
val persistent : engine:Sim.Engine.t -> agent:Tcp.Agent.t -> at:float -> unit

(** [file ~engine ~agent ~at ~bytes ~on_complete] transfers [bytes]
    (rounded up to whole segments) starting at [at]; [on_complete] fires
    when the last byte is cumulatively acknowledged. *)
val file :
  engine:Sim.Engine.t ->
  agent:Tcp.Agent.t ->
  at:float ->
  bytes:int ->
  on_complete:(completion -> unit) ->
  unit

(** [segments_of_bytes ~mss bytes] is the segment count a [bytes]-long
    file occupies. *)
val segments_of_bytes : mss:int -> int -> int
