type completion = { started : float; finished : float }

let segments_of_bytes ~mss bytes =
  if bytes <= 0 then invalid_arg "Ftp.segments_of_bytes: bytes <= 0";
  (bytes + mss - 1) / mss

let persistent ~engine ~agent ~at =
  Sim.Engine.schedule_unit_at engine ~time:at (fun () ->
      Tcp.Agent.supply_infinite agent)

let file ~engine ~agent ~at ~bytes ~on_complete =
  let base = agent.Tcp.Agent.base in
  let mss = base.Tcp.Sender_common.params.Tcp.Params.mss in
  let segments = segments_of_bytes ~mss bytes in
  Sim.Engine.schedule_unit_at engine ~time:at (fun () ->
      base.Tcp.Sender_common.on_complete <-
        (fun () ->
          on_complete { started = at; finished = Sim.Engine.now engine });
      Tcp.Agent.supply_data agent ~segments)
