(** Pareto on/off "web mice" — a short-flow dynamic workload.

    A mice source turns one TCP agent into a train of short transfers:
    it repeatedly supplies a Pareto-distributed burst of data, waits for
    the last segment to be cumulatively acknowledged, then sleeps for a
    Pareto-distributed think time before starting the next burst. The
    heavy-tailed size law reproduces the web-traffic mix the robust
    recovery paper's motivation scenarios assume (many transfers that
    never leave slow start, a few elephants), and the think times make
    the offered load bursty rather than saturating.

    All randomness comes from the explicit {!Sim.Rng.t} handed to
    {!create}, so a mice-driven run is reproducible from its seed.

    The source owns the agent's completion callback
    ([Sender_common.on_complete]); do not combine it with {!Ftp.file}
    on the same agent. *)

(** Burst-size and think-time law. Pareto scales are derived from the
    means, so both shapes must exceed 1 (finite mean). [start] is when
    the first burst begins; no new burst {e starts} at or after
    [until] (a burst in flight at [until] runs to completion). *)
type profile = {
  mean_size_bytes : float;  (** mean transfer size, bytes *)
  size_shape : float;  (** Pareto tail index of sizes, > 1 *)
  mean_think : float;  (** mean off (think) time, seconds *)
  think_shape : float;  (** Pareto tail index of think times, > 1 *)
  start : float;
  until : float;
}

(** [default] is a web-ish mix: 12 kB mean size with tail index 1.3,
    500 ms mean think time with tail index 1.5, starting at 0 and never
    self-terminating (callers set [until]). *)
val default : profile

(** One finished burst: wall-clock bounds and its size in segments. *)
type completion = { started : float; finished : float; segments : int }

type t

(** [create ~engine ~agent ~rng profile] validates [profile], arms the
    first burst at [profile.start], and returns the running source.

    @raise Invalid_argument unless both shapes are > 1, the mean size
    and think time are positive, and [start < until]. *)
val create :
  engine:Sim.Engine.t -> agent:Tcp.Agent.t -> rng:Sim.Rng.t -> profile -> t

(** {1 Statistics} *)

(** [bursts t] counts bursts started so far. *)
val bursts : t -> int

(** [finished_bursts t] counts bursts fully acknowledged so far. *)
val finished_bursts : t -> int

(** [segments_supplied t] totals the segments supplied across all
    bursts. *)
val segments_supplied : t -> int

(** [completions t] lists finished bursts in completion order. *)
val completions : t -> completion list

(** [mean_completion_time t] averages [finished - started] over
    {!completions}; [None] before the first completion. *)
val mean_completion_time : t -> float option
