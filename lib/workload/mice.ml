type profile = {
  mean_size_bytes : float;
  size_shape : float;
  mean_think : float;
  think_shape : float;
  start : float;
  until : float;
}

let default =
  {
    mean_size_bytes = 12_000.0;
    size_shape = 1.3;
    mean_think = 0.5;
    think_shape = 1.5;
    start = 0.0;
    until = infinity;
  }

type completion = { started : float; finished : float; segments : int }

type t = {
  engine : Sim.Engine.t;
  agent : Tcp.Agent.t;
  rng : Sim.Rng.t;
  profile : profile;
  mutable bursts : int;
  mutable finished_bursts : int;
  mutable segments_supplied : int;
  mutable completions : completion list;  (* reversed *)
}

let bursts t = t.bursts

let finished_bursts t = t.finished_bursts

let segments_supplied t = t.segments_supplied

let completions t = List.rev t.completions

let mean_completion_time t =
  match t.completions with
  | [] -> None
  | cs ->
    let sum =
      List.fold_left (fun acc c -> acc +. (c.finished -. c.started)) 0.0 cs
    in
    Some (sum /. float_of_int (List.length cs))

(* Pareto scale (minimum value) giving the requested mean:
   mean = scale * shape / (shape - 1) for shape > 1. *)
let scale_of_mean ~mean ~shape = mean *. (shape -. 1.0) /. shape

let rec start_burst t =
  let p = t.profile in
  let bytes =
    Sim.Rng.pareto t.rng ~shape:p.size_shape
      ~scale:(scale_of_mean ~mean:p.mean_size_bytes ~shape:p.size_shape)
  in
  let base = t.agent.Tcp.Agent.base in
  let mss = base.Tcp.Sender_common.params.Tcp.Params.mss in
  let segments = Ftp.segments_of_bytes ~mss (int_of_float (Float.ceil bytes)) in
  let started = Sim.Engine.now t.engine in
  t.bursts <- t.bursts + 1;
  t.segments_supplied <- t.segments_supplied + segments;
  base.Tcp.Sender_common.completed <- false;
  base.Tcp.Sender_common.on_complete <-
    (fun () -> finish_burst t ~started ~segments);
  Tcp.Agent.supply_data t.agent ~segments

and finish_burst t ~started ~segments =
  let finished = Sim.Engine.now t.engine in
  t.finished_bursts <- t.finished_bursts + 1;
  t.completions <- { started; finished; segments } :: t.completions;
  let p = t.profile in
  let think =
    Sim.Rng.pareto t.rng ~shape:p.think_shape
      ~scale:(scale_of_mean ~mean:p.mean_think ~shape:p.think_shape)
  in
  let next = finished +. think in
  if next < p.until then
    Sim.Engine.schedule_unit_at t.engine ~time:next (fun () -> start_burst t)

let create ~engine ~agent ~rng profile =
  if profile.size_shape <= 1.0 || profile.think_shape <= 1.0 then
    invalid_arg "Mice.create: Pareto shapes must exceed 1";
  if profile.mean_size_bytes <= 0.0 || profile.mean_think <= 0.0 then
    invalid_arg "Mice.create: means must be positive";
  if not (profile.start < profile.until) then
    invalid_arg "Mice.create: need start < until";
  let t =
    {
      engine;
      agent;
      rng;
      profile;
      bursts = 0;
      finished_bursts = 0;
      segments_supplied = 0;
      completions = [];
    }
  in
  Sim.Engine.schedule_unit_at engine ~time:profile.start (fun () ->
      start_burst t);
  t
