(** TCP SACK sender (Fall & Floyd 1996, ns-2 "sack1" style).

    Requires a SACK-generating receiver. The sender keeps a scoreboard
    of selectively-acknowledged segments and a [pipe] estimate of
    packets in flight: during recovery it may transmit whenever
    [pipe < cwnd], preferring the oldest un-SACKed hole and falling back
    to new data. Each duplicate ACK decrements [pipe] by one and a
    partial ACK by two (the original and its retransmission both left
    the path). This is the strongest of the paper's baselines, at the
    cost of receiver cooperation. *)

(** [create ~engine ~params ~flow ~emit ()] builds a SACK sender. Its
    [wants_sack] flag tells the wiring layer to enable SACK generation
    at the peer receiver. *)
val create :
  engine:Sim.Engine.t ->
  params:Params.t ->
  flow:int ->
  emit:(Net.Packet.t -> unit) ->
  unit ->
  Agent.t
