type t = {
  mutable segments_sent : int;
  mutable retransmits : int;
  mutable timeouts : int;
  mutable fast_retransmits : int;
  mutable acks_received : int;
  mutable dupacks_received : int;
}

let create () =
  {
    segments_sent = 0;
    retransmits = 0;
    timeouts = 0;
    fast_retransmits = 0;
    acks_received = 0;
    dupacks_received = 0;
  }

let pp ppf t =
  Format.fprintf ppf
    "sent=%d retx=%d timeouts=%d fast_retx=%d acks=%d dupacks=%d"
    t.segments_sent t.retransmits t.timeouts t.fast_retransmits
    t.acks_received t.dupacks_received
