(** TCP Reno sender: Tahoe plus fast recovery (Jacobson 1990).

    The congestion window is halved once per fast retransmit and
    inflated by one segment per further duplicate ACK; {e any} new ACK —
    including a partial one — deflates the window and exits recovery,
    which is exactly the weakness under bursty loss that motivates the
    paper: each loss in a window costs another halving or a timeout. *)

(** [create ~engine ~params ~flow ~emit ()] builds a Reno sender. *)
val create :
  engine:Sim.Engine.t ->
  params:Params.t ->
  flow:int ->
  emit:(Net.Packet.t -> unit) ->
  unit ->
  Agent.t
