open Sender_common

type state = { mutable recover : int }

(* The window after a relative rate reduction: back off to
   [(1 - level) * W] instead of Reno's hard W/2. *)
let reduce base =
  let level = base.params.Params.rrr_level in
  Float.max ((1.0 -. level) *. window base) 2.0

let enter_recovery base state =
  base.counters.Counters.fast_retransmits <-
    base.counters.Counters.fast_retransmits + 1;
  notify_recovery_enter base;
  state.recover <- base.maxseq;
  base.recover_mark <- base.maxseq;
  set_ssthresh base (reduce base);
  set_cwnd base
    (ssthresh base +. float_of_int base.params.Params.dupack_threshold);
  base.phase <- Recovery;
  base.timed <- None;
  send_segment base ~seq:(base.una + 1) ~retx:true;
  restart_rtx_timer base

let exit_recovery base =
  set_cwnd base (ssthresh base);
  base.phase <- Congestion_avoidance;
  base.dupacks <- 0;
  notify_recovery_exit base

let recv_ack base state ~ackno =
  if ackno > base.una then begin
    if base.phase = Recovery then begin
      if ackno >= state.recover then begin
        exit_recovery base;
        advance_una base ~ackno;
        send_much base
      end
      else begin
        (* Partial ACK: New-Reno mechanics — deflate by the amount
           acknowledged, re-inflate by one, retransmit the next hole,
           stay in recovery. *)
        let acked = ackno - base.una in
        advance_una base ~ackno;
        set_cwnd base (Float.max 1.0 (cwnd base -. float_of_int acked +. 1.0));
        send_segment base ~seq:(base.una + 1) ~retx:true;
        restart_rtx_timer base;
        send_much base
      end
    end
    else begin
      base.dupacks <- 0;
      advance_una base ~ackno;
      open_cwnd base;
      send_much base
    end
  end
  else if ackno = base.una && outstanding base > 0 then begin
    note_dupack base;
    base.dupacks <- base.dupacks + 1;
    if base.phase = Recovery then begin
      set_cwnd base (cwnd base +. 1.0);
      send_much base
    end
    else if
      base.dupacks = base.params.Params.dupack_threshold
      && may_fast_retransmit base
    then enter_recovery base state
    else limited_transmit base
  end

(* Timeouts take the same relative reduction: run the standard
   go-back-N slow-start restart, then overwrite the halved ssthresh
   with [(1 - level) * W] of the pre-timeout window. At the default
   level 0.5 this is the identity. *)
let timeout base =
  let w = window base in
  timeout_common base;
  set_ssthresh base
    (Float.max ((1.0 -. base.params.Params.rrr_level) *. w) 2.0)

let create ~engine ~params ~flow ~emit () =
  let state = { recover = -1 } in
  let base = create ~engine ~params ~flow ~emit ~timeout_action:timeout () in
  let deliver_ack packet =
    if Net.Packet.is_data packet then
      invalid_arg "Rrr: data packet delivered to sender"
    else if not base.completed then
      recv_ack base state ~ackno:(Net.Packet.ackno_exn packet)
  in
  { Agent.name = "rrr"; flow; deliver_ack; base; wants_sack = false }
