(** A flock: tens of thousands of TCP flows in flat arrays.

    The per-flow {!Agent} machinery allocates a closure web per sender —
    fine for the paper's handful of flows, ruinous at 50k. A flock keeps
    every sender's and receiver's state in plain arrays indexed by flow
    slot and drives them all through two shared delivery functions
    (plug {!deliver_data} / {!deliver_ack} into
    {!Net.Topology.set_data_dispatch} / [set_ack_dispatch]), one shared
    periodic timeout scan, and O(1) extra allocation per packet. Memory
    is O(flows), independent of duration.

    The congestion control is New-Reno-shaped AIMD: slow start,
    congestion avoidance, fast retransmit on [dupack_threshold]
    duplicates, fast recovery with partial-ACK retransmission, and an
    exponentially backed-off Jacobson RTO checked by the periodic scan
    (so timeout resolution is the scan interval, not a per-flow timer).
    Receivers ACK every segment cumulatively and hold out-of-order
    segments in a 63-bit window bitmap, which caps the usable window at
    63 segments beyond the cumulative point — far above a fair share
    when flow count is the experiment's point. It is deliberately not
    one of the paper's instrumented variants; scale studies that need
    variant fidelity sample a sub-population with real {!Agent}s. *)

type t

(** [create ~engine ~params ~flows ~inject_data ~inject_ack ()] lays
    out [flows] sender/receiver slots. [inject_data]/[inject_ack] put a
    packet on the network (e.g. {!Net.Topology.inject_data}).
    [params.max_burst], [dupack_threshold], window and RTO fields are
    honoured; SACK, delayed-ACK, limited-transmit and smooth-start
    fields are ignored.

    @raise Invalid_argument when [flows < 1]. *)
val create :
  engine:Sim.Engine.t ->
  params:Params.t ->
  flows:int ->
  inject_data:(flow:int -> Net.Packet.t -> unit) ->
  inject_ack:(flow:int -> Net.Packet.t -> unit) ->
  unit ->
  t

(** [start t ?stagger ?scan_interval ()] opens every flow with an
    unbounded source (the paper's persistent FTP). Flow [i] starts at
    [i * stagger / flows] (default [stagger = 0.]: all at time 0, via a
    single chained event rather than one event per flow), and the
    timeout scan fires every [scan_interval] seconds (default 50 ms). *)
val start : t -> ?stagger:float -> ?scan_interval:float -> unit -> unit

(** [deliver_data t packet] runs the receiver slot of the packet's
    flow: cumulative ACK generation and the reorder bitmap. *)
val deliver_data : t -> Net.Packet.t -> unit

(** [deliver_ack t packet] runs the sender slot of the packet's flow. *)
val deliver_ack : t -> Net.Packet.t -> unit

(** {1 Per-flow observability} *)

val flows : t -> int

(** [acked_segments t flow] is the flow's cumulatively acknowledged
    segment count — the goodput numerator. *)
val acked_segments : t -> int -> int

val retransmits : t -> int -> int

val timeouts : t -> int -> int

val cwnd : t -> int -> float

(** [goodput_bps t flow ~duration] is acked payload bits per second. *)
val goodput_bps : t -> int -> duration:float -> float

(** {1 Aggregates} *)

val total_acked_segments : t -> int

val total_retransmits : t -> int

val total_timeouts : t -> int
