type estimate = { mutable srtt : float; mutable rttvar : float }

type t = {
  min_rto : float;
  max_rto : float;
  initial_rto : float;
  tick : float;
  mutable estimate : estimate option;
  mutable backoff_factor : float;
}

let create ~min_rto ~max_rto ~initial_rto ?(tick = 0.0) () =
  if min_rto <= 0.0 || max_rto < min_rto || initial_rto < min_rto then
    invalid_arg "Rto.create: inconsistent bounds";
  if tick < 0.0 then invalid_arg "Rto.create: negative tick";
  { min_rto; max_rto; initial_rto; tick; estimate = None; backoff_factor = 1.0 }

(* Coarse clock: measurements land on tick boundaries, never below one
   tick. *)
let quantize t rtt =
  if t.tick <= 0.0 then rtt
  else Float.max t.tick (Float.round (rtt /. t.tick) *. t.tick)

let sample t rtt =
  if rtt < 0.0 then invalid_arg "Rto.sample: negative RTT";
  let rtt = quantize t rtt in
  (match t.estimate with
  | None -> t.estimate <- Some { srtt = rtt; rttvar = rtt /. 2.0 }
  | Some e ->
    let error = rtt -. e.srtt in
    e.srtt <- e.srtt +. (error /. 8.0);
    e.rttvar <- e.rttvar +. ((abs_float error -. e.rttvar) /. 4.0));
  t.backoff_factor <- 1.0

let base_value t =
  match t.estimate with
  | None -> t.initial_rto
  | Some e -> e.srtt +. (4.0 *. e.rttvar)

let value t =
  (* Backoff doubles the effective (already clamped) timeout, so a
     1-second floor backs off 1, 2, 4, ... as classic TCP does. *)
  let base = Float.max t.min_rto (base_value t) in
  let v = Float.min t.max_rto (base *. t.backoff_factor) in
  if t.tick <= 0.0 then v
  else
    (* Clamp again after rounding up to the tick: [max_rto] is a hard
       ceiling, even when it does not fall on a tick boundary. *)
    Float.min t.max_rto (ceil (v /. t.tick) *. t.tick)

let backoff t =
  t.backoff_factor <- Float.min (t.backoff_factor *. 2.0) 64.0

let srtt t = Option.map (fun e -> e.srtt) t.estimate

let rttvar t = Option.map (fun e -> e.rttvar) t.estimate
