type estimator = Jacobson | Fixed | Rfc793 | Agile

let estimators = [ Jacobson; Fixed; Rfc793; Agile ]

let estimator_name = function
  | Jacobson -> "jacobson"
  | Fixed -> "fixed"
  | Rfc793 -> "rfc793"
  | Agile -> "agile"

let estimator_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "jacobson" | "jk" -> Ok Jacobson
  | "fixed" -> Ok Fixed
  | "rfc793" | "mean" -> Ok Rfc793
  | "agile" -> Ok Agile
  | other ->
    Error
      (Printf.sprintf "unknown RTO estimator %S (expected %s)" other
         (String.concat ", " (List.map estimator_name estimators)))

type estimate = { mutable srtt : float; mutable rttvar : float }

type t = {
  min_rto : float;
  max_rto : float;
  initial_rto : float;
  tick : float;
  algorithm : estimator;
  mutable estimate : estimate option;
  mutable backoff_factor : float;
}

let create ~min_rto ~max_rto ~initial_rto ?(tick = 0.0)
    ?(estimator = Jacobson) () =
  if
    min_rto <= 0.0 || max_rto < min_rto || initial_rto < min_rto
    || initial_rto > max_rto
  then invalid_arg "Rto.create: inconsistent bounds";
  if tick < 0.0 then invalid_arg "Rto.create: negative tick";
  {
    min_rto;
    max_rto;
    initial_rto;
    tick;
    algorithm = estimator;
    estimate = None;
    backoff_factor = 1.0;
  }

let estimator t = t.algorithm

(* Smoothing gains, as divisors: (mean gain, deviation gain). All the
   mean-tracking estimators share the RTT bookkeeping and differ only in
   how fast they move and how they turn the estimate into a timeout. *)
let gains = function
  | Jacobson | Fixed | Rfc793 -> (8.0, 4.0)
  | Agile -> (4.0, 2.0)

(* Coarse clock: measurements land on tick boundaries, never below one
   tick. *)
let quantize t rtt =
  if t.tick <= 0.0 then rtt
  else Float.max t.tick (Float.round (rtt /. t.tick) *. t.tick)

let sample t rtt =
  if rtt < 0.0 then invalid_arg "Rto.sample: negative RTT";
  let rtt = quantize t rtt in
  (match t.estimate with
  | None -> t.estimate <- Some { srtt = rtt; rttvar = rtt /. 2.0 }
  | Some e ->
    let mean_gain, var_gain = gains t.algorithm in
    let error = rtt -. e.srtt in
    e.srtt <- e.srtt +. (error /. mean_gain);
    e.rttvar <- e.rttvar +. ((abs_float error -. e.rttvar) /. var_gain));
  t.backoff_factor <- 1.0

(* The estimator's timeout prediction from the current estimate, before
   any clamping or backoff — the layered family of Jain's divergence
   study: no adaptation at all, a mean-only exponential average with the
   RFC 793 safety factor, and mean-plus-deviation at two gain settings. *)
let predict t e =
  match t.algorithm with
  | Fixed -> t.initial_rto
  | Rfc793 -> 2.0 *. e.srtt
  | Jacobson | Agile -> e.srtt +. (4.0 *. e.rttvar)

let base_value t =
  match t.estimate with None -> t.initial_rto | Some e -> predict t e

let value t =
  (* Backoff doubles the effective (already clamped) timeout, so a
     1-second floor backs off 1, 2, 4, ... as classic TCP does. *)
  let base = Float.max t.min_rto (base_value t) in
  let v = Float.min t.max_rto (base *. t.backoff_factor) in
  if t.tick <= 0.0 then v
  else
    (* Clamp again after rounding up to the tick: [max_rto] is a hard
       ceiling, even when it does not fall on a tick boundary. *)
    Float.min t.max_rto (ceil (v /. t.tick) *. t.tick)

let fine_timeout t =
  match t.estimate with
  | None -> t.initial_rto
  | Some e ->
    (* The raw prediction, honouring the coarse clock and the hard
       ceiling but not [min_rto] or backoff: fine-grained retransmission
       exists precisely to act before the conservative coarse minimum,
       yet a clamped or ticked configuration must never see a finer
       timeout than its clock can express. *)
    let v = Float.min t.max_rto (predict t e) in
    if t.tick <= 0.0 then v
    else Float.min t.max_rto (Float.max t.tick (ceil (v /. t.tick) *. t.tick))

let backoff t =
  t.backoff_factor <- Float.min (t.backoff_factor *. 2.0) 64.0

let srtt t = Option.map (fun e -> e.srtt) t.estimate

let rttvar t = Option.map (fun e -> e.rttvar) t.estimate
