open Sender_common

let fast_retransmit base =
  base.counters.Counters.fast_retransmits <-
    base.counters.Counters.fast_retransmits + 1;
  base.recover_mark <- base.maxseq;
  ignore (halve_ssthresh base : float);
  set_cwnd base 1.0;
  base.phase <- Slow_start;
  base.timed <- None;
  (* Tahoe goes back to the loss point and slow-starts from there. *)
  let first = base.una + 1 in
  base.t_seqno <- first;
  send_segment base ~seq:first ~retx:true;
  base.t_seqno <- first + 1;
  restart_rtx_timer base

let recv_ack base ~ackno =
  if ackno > base.una then begin
    base.dupacks <- 0;
    advance_una base ~ackno;
    open_cwnd base;
    send_much base
  end
  else if ackno = base.una && outstanding base > 0 then begin
    note_dupack base;
    base.dupacks <- base.dupacks + 1;
    if
      base.dupacks = base.params.Params.dupack_threshold
      && may_fast_retransmit base
    then fast_retransmit base
    else limited_transmit base
  end

let create ~engine ~params ~flow ~emit () =
  let base =
    create ~engine ~params ~flow ~emit ~timeout_action:timeout_common ()
  in
  let deliver_ack packet =
    if Net.Packet.is_data packet then
      invalid_arg "Tahoe: data packet delivered to sender"
    else if not base.completed then
      recv_ack base ~ackno:(Net.Packet.ackno_exn packet)
  in
  { Agent.name = "tahoe"; flow; deliver_ack; base; wants_sack = false }
