(* Disjoint, non-adjacent, ascending inclusive intervals. *)
type t = { mutable intervals : (int * int) list }

let create () = { intervals = [] }

let intervals t = t.intervals

let is_empty t = t.intervals = []

let cardinal t =
  List.fold_left (fun acc (first, last) -> acc + last - first + 1) 0 t.intervals

let mem t seq =
  List.exists (fun (first, last) -> first <= seq && seq <= last) t.intervals

let add_range t ~first ~last =
  if first > last then invalid_arg "Seqset.add_range: first > last";
  (* Split the list around the insertion, merging every interval that
     overlaps or is adjacent to [first - 1, last + 1]. *)
  let rec insert acc lo hi = function
    | [] -> List.rev_append acc [ (lo, hi) ]
    | ((f, l) as iv) :: rest ->
      if l < lo - 1 then insert (iv :: acc) lo hi rest
      else if f > hi + 1 then List.rev_append acc ((lo, hi) :: iv :: rest)
      else insert acc (min f lo) (max l hi) rest
  in
  t.intervals <- insert [] first last t.intervals

let add t seq =
  if mem t seq then false
  else begin
    add_range t ~first:seq ~last:seq;
    true
  end

let remove_below t bound =
  let rec prune = function
    | [] -> []
    | (first, last) :: rest ->
      if last < bound then prune rest
      else if first < bound then (bound, last) :: rest
      else (first, last) :: rest
  in
  t.intervals <- prune t.intervals

let max_elt t =
  let rec last = function
    | [] -> None
    | [ (_, l) ] -> Some l
    | _ :: rest -> last rest
  in
  last t.intervals

let first_gap_above t bound =
  let rec scan candidate = function
    | [] -> candidate
    | (first, last) :: rest ->
      if candidate < first then candidate else scan (max candidate (last + 1)) rest
  in
  scan bound t.intervals

let clear t = t.intervals <- []
