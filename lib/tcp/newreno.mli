(** TCP New-Reno sender (Hoe 1996 / RFC 2582, "slow-but-steady").

    Fast recovery is kept open across partial ACKs: each partial ACK
    retransmits the next hole, deflates the window by the amount newly
    acknowledged plus re-inflates by one, and restarts the
    retransmission timer. Recovery ends only when the ACK reaches the
    [recover] point recorded at entry. One lost segment is repaired per
    RTT, and roughly one new segment is sent per two duplicate ACKs —
    the exponentially-decaying transmission the paper's §1 identifies
    as the cause of self-clocking loss under bursty drops. *)

(** [create ~engine ~params ~flow ~emit ()] builds a New-Reno sender. *)
val create :
  engine:Sim.Engine.t ->
  params:Params.t ->
  flow:int ->
  emit:(Net.Packet.t -> unit) ->
  unit ->
  Agent.t
