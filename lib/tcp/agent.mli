(** Uniform handle over a TCP sender of any congestion-control variant.

    Variants ({!Tahoe}, {!Reno}, {!Newreno}, {!Sack}, {!Fack},
    {!Vegas}, {!Relentless}, {!Rrr}, and [Core.Rr]) return this record
    from their [create] functions; experiment code and applications
    drive senders exclusively through it, plus the exposed
    {!Sender_common.t} for statistics and white-box tests. [Core.Variant]
    is the uniform way to pick one by name. *)

type t = {
  name : string;  (** variant name, e.g. ["newreno"] *)
  flow : int;
  deliver_ack : Net.Packet.t -> unit;
      (** the network delivers returning ACKs here *)
  base : Sender_common.t;  (** shared state, for stats/metrics/tests *)
  wants_sack : bool;  (** whether the peer receiver must generate SACKs *)
}

(** [start t] begins transmitting whatever application data is
    available. *)
val start : t -> unit

(** [supply_data t ~segments] makes [segments] more segments available
    to send (finite source) and tries to transmit. *)
val supply_data : t -> segments:int -> unit

(** [supply_infinite t] switches to an unbounded source (the paper's
    persistent FTP) and tries to transmit. *)
val supply_infinite : t -> unit
