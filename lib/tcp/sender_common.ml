type phase = Slow_start | Congestion_avoidance | Recovery

(* Multicast observer lists, stored in subscription order. Every
   observer sees every event; subscribing never displaces an earlier
   subscriber (the seed's single-slot hooks silently clobbered). *)
type hooks = {
  mutable send_hooks : (time:float -> seq:int -> retx:bool -> unit) list;
  mutable ack_hooks : (time:float -> ackno:int -> unit) list;
  mutable recovery_enter_hooks : (time:float -> unit) list;
  mutable recovery_exit_hooks : (time:float -> unit) list;
  mutable timeout_hooks : (time:float -> unit) list;
}

(* A single-field float record is stored flat, so writing [v] is a
   plain float store. [cwnd]/[ssthresh] live in these dedicated cells
   because the sender record below mixes ints and floats — there every
   float store allocates a fresh box, and these two fields are written
   on every ACK. (A [float ref] would not do: ['a ref] is generic and
   boxes its contents.) *)
type fcell = { mutable v : float }

type t = {
  engine : Sim.Engine.t;
  params : Params.t;
  flow : int;
  emit : Net.Packet.t -> unit;
  cwnd : fcell;
  ssthresh : fcell;
  mutable una : int;
  mutable t_seqno : int;
  mutable maxseq : int;
  mutable dupacks : int;
  mutable phase : phase;
  mutable app_limit : int option;
  rto : Rto.t;
  mutable rtx_timer : Sim.Timer.t option;
  mutable timed : (int * float) option;
  mutable uid_counter : int;
  mutable recover_mark : int;
  counters : Counters.t;
  hooks : hooks;
  mutable completed : bool;
  mutable on_complete : unit -> unit;
}

let no_op_hooks () =
  {
    send_hooks = [];
    ack_hooks = [];
    recovery_enter_hooks = [];
    recovery_exit_hooks = [];
    timeout_hooks = [];
  }

let on_send t f = t.hooks.send_hooks <- t.hooks.send_hooks @ [ f ]
let on_ack t f = t.hooks.ack_hooks <- t.hooks.ack_hooks @ [ f ]

let on_recovery_enter t f =
  t.hooks.recovery_enter_hooks <- t.hooks.recovery_enter_hooks @ [ f ]

let on_recovery_exit t f =
  t.hooks.recovery_exit_hooks <- t.hooks.recovery_exit_hooks @ [ f ]

let on_timeout t f = t.hooks.timeout_hooks <- t.hooks.timeout_hooks @ [ f ]

(* The send/ack hooks fire once per packet; the [List.iter] closure
   would capture the arguments and allocate per event, so the one- and
   two-observer cases (the ones scenarios actually build) are
   dispatched directly. *)
let fire_send t ~time ~seq ~retx =
  match t.hooks.send_hooks with
  | [] -> ()
  | [ f ] -> f ~time ~seq ~retx
  | [ f; g ] ->
    f ~time ~seq ~retx;
    g ~time ~seq ~retx
  | fs -> List.iter (fun f -> f ~time ~seq ~retx) fs

let fire_ack t ~time ~ackno =
  match t.hooks.ack_hooks with
  | [] -> ()
  | [ f ] -> f ~time ~ackno
  | [ f; g ] ->
    f ~time ~ackno;
    g ~time ~ackno
  | fs -> List.iter (fun f -> f ~time ~ackno) fs

let notify_recovery_enter t =
  let time = Sim.Engine.now t.engine in
  List.iter (fun f -> f ~time) t.hooks.recovery_enter_hooks

let notify_recovery_exit t =
  let time = Sim.Engine.now t.engine in
  List.iter (fun f -> f ~time) t.hooks.recovery_exit_hooks

let fire_timeout t ~time =
  List.iter (fun f -> f ~time) t.hooks.timeout_hooks

let create ~engine ~params ~flow ~emit ~timeout_action () =
  Params.validate params;
  let t =
    {
      engine;
      params;
      flow;
      emit;
      cwnd = { v = params.Params.initial_cwnd };
      ssthresh = { v = params.Params.initial_ssthresh };
      una = -1;
      t_seqno = 0;
      maxseq = -1;
      dupacks = 0;
      phase = Slow_start;
      app_limit = Some 0;
      rto =
        Rto.create ~min_rto:params.Params.min_rto
          ~max_rto:params.Params.max_rto
          ~initial_rto:params.Params.initial_rto ~tick:params.Params.tick
          ~estimator:params.Params.rto_estimator ();
      rtx_timer = None;
      timed = None;
      uid_counter = 0;
      recover_mark = -2;
      counters = Counters.create ();
      hooks = no_op_hooks ();
      completed = false;
      on_complete = (fun () -> ());
    }
  in
  t.rtx_timer <-
    Some (Sim.Timer.create engine ~callback:(fun () -> timeout_action t));
  t

let timer_exn t =
  match t.rtx_timer with
  | Some timer -> timer
  | None -> assert false

let[@inline always] cwnd t = t.cwnd.v

let[@inline always] set_cwnd t value = t.cwnd.v <- value

let[@inline always] ssthresh t = t.ssthresh.v

let[@inline always] set_ssthresh t value = t.ssthresh.v <- value

(* Open-coded [Float.min]: a function call would box the freshly
   loaded cwnd, and this runs once per send-window check. Neither
   operand is ever NaN. *)
let[@inline always] window t =
  let c = t.cwnd.v in
  let r = float_of_int t.params.Params.rwnd in
  if r > c then c else r

let outstanding t = t.t_seqno - t.una - 1

let app_has_data t ~seq =
  match t.app_limit with None -> true | Some n -> seq < n

let restart_rtx_timer t =
  Sim.Timer.restart (timer_exn t) ~after:(Rto.value t.rto)

let cancel_rtx_timer t = Sim.Timer.cancel (timer_exn t)

let send_segment t ~seq ~retx =
  let now = Sim.Engine.now t.engine in
  if retx then begin
    t.counters.Counters.retransmits <- t.counters.Counters.retransmits + 1;
    (* Karn's rule: a retransmitted segment yields no RTT sample. *)
    match t.timed with
    | Some (timed_seq, _) when timed_seq = seq -> t.timed <- None
    | Some _ | None -> ()
  end
  else begin
    t.counters.Counters.segments_sent <-
      t.counters.Counters.segments_sent + 1;
    if t.timed = None then t.timed <- Some (seq, now)
  end;
  t.uid_counter <- t.uid_counter + 1;
  let packet =
    Net.Packet.data ~uid:t.uid_counter ~flow:t.flow ~seq
      ~size_bytes:t.params.Params.mss ~born:now
  in
  if seq > t.maxseq then t.maxseq <- seq;
  fire_send t ~time:now ~seq ~retx;
  t.emit packet;
  if not (Sim.Timer.is_armed (timer_exn t)) then restart_rtx_timer t

let send_new_data t ~count =
  let rec loop sent =
    if sent >= count then sent
    else begin
      let seq = t.t_seqno in
      if app_has_data t ~seq then begin
        send_segment t ~seq ~retx:(seq <= t.maxseq);
        t.t_seqno <- seq + 1;
        loop (sent + 1)
      end
      else sent
    end
  in
  loop 0

let send_much t =
  let budget =
    if t.params.Params.max_burst = 0 then max_int else t.params.Params.max_burst
  in
  let rec loop sent =
    if sent >= budget then ()
    else begin
      let seq = t.t_seqno in
      if
        float_of_int (outstanding t) < window t
        && app_has_data t ~seq
      then begin
        send_segment t ~seq ~retx:(seq <= t.maxseq);
        t.t_seqno <- seq + 1;
        loop (sent + 1)
      end
    end
  in
  loop 0

let open_cwnd t =
  match t.phase with
  | Recovery -> ()
  | Slow_start ->
    if cwnd t < ssthresh t then begin
      (* Smooth-Start (the paper's [21]): once past ssthresh/2, grow at
         half the exponential rate so the final doubling does not blast
         a burst into the bottleneck queue. *)
      let increment =
        if t.params.Params.smooth_start && cwnd t >= ssthresh t /. 2.0 then 0.5
        else 1.0
      in
      set_cwnd t (cwnd t +. increment)
    end
    else begin
      t.phase <- Congestion_avoidance;
      set_cwnd t (cwnd t +. (1.0 /. cwnd t))
    end
  | Congestion_avoidance -> set_cwnd t (cwnd t +. (1.0 /. cwnd t))

let halve_ssthresh t =
  set_ssthresh t (Float.max (window t /. 2.0) 2.0);
  ssthresh t

let check_complete t =
  match t.app_limit with
  | Some n when (not t.completed) && t.una >= n - 1 ->
    t.completed <- true;
    cancel_rtx_timer t;
    t.on_complete ()
  | Some _ | None -> ()

let advance_una t ~ackno =
  assert (ackno > t.una);
  let now = Sim.Engine.now t.engine in
  t.counters.Counters.acks_received <- t.counters.Counters.acks_received + 1;
  (match t.timed with
  | Some (seq, sent_at) when ackno >= seq ->
    Rto.sample t.rto (now -. sent_at);
    t.timed <- None
  | Some _ | None -> ());
  t.una <- ackno;
  (* After a go-back-N rollback, a large cumulative ACK can overtake the
     send point; new transmission resumes from the ACK. *)
  if t.t_seqno < t.una + 1 then t.t_seqno <- t.una + 1;
  if outstanding t > 0 then restart_rtx_timer t else cancel_rtx_timer t;
  fire_ack t ~time:now ~ackno;
  check_complete t

let may_fast_retransmit t = t.una > t.recover_mark

let limited_transmit t =
  if
    t.params.Params.limited_transmit
    && t.dupacks >= 1 && t.dupacks <= 2
    && app_has_data t ~seq:t.t_seqno
    && float_of_int (outstanding t) < window t +. 2.0
  then begin
    (* After a go-back-N rollback [t_seqno] can sit below [maxseq];
       labelling such a send as fresh would skew counters and start an
       RTT timing Karn's rule forbids. *)
    send_segment t ~seq:t.t_seqno ~retx:(t.t_seqno <= t.maxseq);
    t.t_seqno <- t.t_seqno + 1
  end

let note_dupack t =
  t.counters.Counters.dupacks_received <-
    t.counters.Counters.dupacks_received + 1;
  let now = Sim.Engine.now t.engine in
  fire_ack t ~time:now ~ackno:t.una

let timeout_common t =
  let now = Sim.Engine.now t.engine in
  t.counters.Counters.timeouts <- t.counters.Counters.timeouts + 1;
  fire_timeout t ~time:now;
  Rto.backoff t.rto;
  set_ssthresh t (Float.max (window t /. 2.0) 2.0);
  set_cwnd t 1.0;
  t.phase <- Slow_start;
  t.dupacks <- 0;
  t.timed <- None;
  t.recover_mark <- t.maxseq;
  (* Go-back-N: roll the send point back and retransmit the first
     outstanding segment; slow start rebuilds the rest. *)
  let first = t.una + 1 in
  t.t_seqno <- first;
  if first <= t.maxseq || app_has_data t ~seq:first then begin
    send_segment t ~seq:first ~retx:(first <= t.maxseq);
    t.t_seqno <- first + 1;
    restart_rtx_timer t
  end

let set_app_limit t limit = t.app_limit <- limit

let start t = send_much t
