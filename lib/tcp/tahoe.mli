(** TCP Tahoe sender: slow start, congestion avoidance and fast
    retransmit, but no fast recovery — after three duplicate ACKs the
    window collapses to one segment and slow start repairs the loss
    (Jacobson 1988). The oldest baseline in the paper's comparison. *)

(** [create ~engine ~params ~flow ~emit ()] builds a Tahoe sender that
    injects packets through [emit]. *)
val create :
  engine:Sim.Engine.t ->
  params:Params.t ->
  flow:int ->
  emit:(Net.Packet.t -> unit) ->
  unit ->
  Agent.t
