(** Set of segment sequence numbers kept as disjoint inclusive intervals.

    Used for the receiver's out-of-order reassembly buffer and the SACK
    sender's scoreboard. Windows are small (tens of segments), so a
    sorted interval list is both simple and fast. *)

type t

(** [create ()] is the empty set. *)
val create : unit -> t

(** [add t seq] inserts one sequence number, merging adjacent
    intervals. Returns [true] when [seq] was not already present. *)
val add : t -> int -> bool

(** [add_range t ~first ~last] inserts the inclusive range. *)
val add_range : t -> first:int -> last:int -> unit

(** [mem t seq] tests membership. *)
val mem : t -> int -> bool

(** [remove_below t bound] deletes every element [< bound] (cumulative
    ACK advancing past them). *)
val remove_below : t -> int -> unit

(** [cardinal t] is the number of sequence numbers stored. *)
val cardinal : t -> int

(** [is_empty t] is [cardinal t = 0]. *)
val is_empty : t -> bool

(** [intervals t] lists the intervals as inclusive [(first, last)]
    pairs, ascending. *)
val intervals : t -> (int * int) list

(** [max_elt t] is the largest element, if any. *)
val max_elt : t -> int option

(** [first_gap_above t bound] is the smallest integer [>= bound] not in
    the set. *)
val first_gap_above : t -> int -> int

(** [clear t] empties the set. *)
val clear : t -> unit
