(** TCP Vegas sender (Brakmo, O'Malley & Peterson 1994 — the paper's
    reference [3]).

    The paper's §1 highlights the finding of Hengartner et al. ([8])
    that Vegas' gain over Reno comes mainly from its loss-recovery and
    slow-start changes, not its celebrated RTT-based congestion
    avoidance; this implementation exposes the three mechanisms
    separately so that claim can be tested (see
    [Experiments.Vegas_claim]):

    - {b fine-grained retransmission}: every segment's transmission time
      is recorded; a duplicate ACK triggers retransmission as soon as
      the oldest outstanding segment's age exceeds the fine-grained
      timeout — no need to wait for three duplicates — and the window is
      reduced by a quarter only once per RTT of losses;
    - {b RTT-based congestion avoidance}: once per RTT, the expected
      ([cwnd/baseRTT]) and actual ([cwnd/RTT]) rates are compared; the
      window grows by one if the backlog estimate is below [alpha],
      shrinks by one if above [beta], and holds otherwise;
    - {b cautious slow start}: the window doubles only every other RTT,
      and slow start ends as soon as the backlog exceeds [gamma].

    Each mechanism can be disabled to fall back to the Reno behaviour. *)

type mechanisms = {
  fine_retransmit : bool;
  rtt_based_avoidance : bool;
  cautious_slow_start : bool;
}

(** All three on — full Vegas. *)
val full : mechanisms

(** Vegas parameters: backlog thresholds in segments. *)
type thresholds = { alpha : float; beta : float; gamma : float }

(** The classic 1/3 (actually α=1, β=3, γ=1) setting. *)
val default_thresholds : thresholds

(** [create ~engine ~params ~flow ~emit ()] builds a full Vegas
    sender. *)
val create :
  engine:Sim.Engine.t ->
  params:Params.t ->
  flow:int ->
  emit:(Net.Packet.t -> unit) ->
  unit ->
  Agent.t

(** [create_with ~mechanisms ~thresholds] selects mechanisms
    individually (for the [8]-style decomposition). *)
val create_with :
  engine:Sim.Engine.t ->
  params:Params.t ->
  flow:int ->
  emit:(Net.Packet.t -> unit) ->
  mechanisms:mechanisms ->
  ?thresholds:thresholds ->
  unit ->
  Agent.t
