(** Per-sender event counters, for metrics and tests. *)

type t = {
  mutable segments_sent : int;  (** first transmissions *)
  mutable retransmits : int;
  mutable timeouts : int;
  mutable fast_retransmits : int;  (** recovery entries via 3 dup ACKs *)
  mutable acks_received : int;  (** cumulative-progress ACKs *)
  mutable dupacks_received : int;
}

(** [create ()] is an all-zero record. *)
val create : unit -> t

(** [pp] renders the counters on one line. *)
val pp : Format.formatter -> t -> unit
