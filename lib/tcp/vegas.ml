open Sender_common

type mechanisms = {
  fine_retransmit : bool;
  rtt_based_avoidance : bool;
  cautious_slow_start : bool;
}

let full =
  { fine_retransmit = true; rtt_based_avoidance = true; cautious_slow_start = true }

type thresholds = { alpha : float; beta : float; gamma : float }

let default_thresholds = { alpha = 1.0; beta = 3.0; gamma = 1.0 }

type state = {
  mechanisms : mechanisms;
  thresholds : thresholds;
  (* Last transmission time of each outstanding segment, for the
     fine-grained timeout check. *)
  send_times : (int, float) Hashtbl.t;
  mutable base_rtt : float;  (* smallest RTT seen = propagation estimate *)
  mutable last_rtt : float;  (* most recent per-segment measurement *)
  mutable epoch_end : int;  (* una passing this marks one RTT *)
  mutable ss_grow : bool;  (* slow start grows only every other RTT *)
  mutable last_cut : float;  (* window reduced at most once per RTT *)
}

let fresh_state ~mechanisms ~thresholds =
  {
    mechanisms;
    thresholds;
    send_times = Hashtbl.create 64;
    base_rtt = infinity;
    last_rtt = 0.0;
    epoch_end = 0;
    ss_grow = true;
    last_cut = neg_infinity;
  }

(* Estimated backlog at the bottleneck, in segments:
   (expected - actual) * baseRTT = cwnd * (rtt - baseRTT) / rtt. *)
let backlog state base =
  if state.last_rtt <= 0.0 || state.base_rtt = infinity then 0.0
  else cwnd base *. (state.last_rtt -. state.base_rtt) /. state.last_rtt

(* The fine-grained timeout comes from the sender's own RTO estimator
   ([Rto.fine_timeout]): no backoff and no [min_rto] floor — acting
   before the conservative coarse minimum is the whole point — but the
   coarse-clock quantization and the [max_rto] ceiling still apply, so a
   ticked or clamped configuration can never hand Vegas a finer timeout
   than the real RTO machinery could express. *)
let fine_timeout base = Rto.fine_timeout base.rto

(* Vegas reduces the window by a quarter on a fine-grained loss signal,
   but at most once per RTT of losses. *)
let cut_window state base =
  let now = Sim.Engine.now base.engine in
  (* Before the first per-segment measurement, rate-limit cuts by the
     estimator's smoothed RTT — or, with no sample at all yet, by the
     configured initial RTO (a deliberately conservative RTT stand-in,
     like the pre-sample timeout itself). *)
  let rtt =
    if state.last_rtt > 0.0 then state.last_rtt
    else
      match Rto.srtt base.rto with
      | Some srtt -> srtt
      | None -> base.params.Params.initial_rto
  in
  if now -. state.last_cut > rtt then begin
    state.last_cut <- now;
    set_cwnd base (Float.max (cwnd base *. 0.75) 2.0);
    set_ssthresh base (Float.max (cwnd base) 2.0);
    if base.phase = Slow_start then base.phase <- Congestion_avoidance
  end

(* Retransmit the oldest outstanding segment if its last transmission
   has outlived the fine-grained timeout. *)
let check_expired state base =
  let oldest = base.una + 1 in
  if oldest <= base.maxseq then begin
    match Hashtbl.find_opt state.send_times oldest with
    | Some sent_at
      when Sim.Engine.now base.engine -. sent_at > fine_timeout base ->
      send_segment base ~seq:oldest ~retx:true;
      restart_rtx_timer base;
      cut_window state base;
      true
    | Some _ | None -> false
  end
  else false

let measure_rtt state base ~ackno =
  match Hashtbl.find_opt state.send_times ackno with
  | Some sent_at ->
    let rtt = Sim.Engine.now base.engine -. sent_at in
    if rtt > 0.0 then begin
      state.last_rtt <- rtt;
      if rtt < state.base_rtt then state.base_rtt <- rtt
    end
  | None -> ()

let forget_acked state ~ackno =
  Hashtbl.iter
    (fun seq _ -> if seq <= ackno then Hashtbl.remove state.send_times seq)
    (Hashtbl.copy state.send_times)

(* Per-RTT window adjustment (congestion avoidance) and the slow-start
   grow/hold toggle. *)
let epoch_actions state base =
  let diff = backlog state base in
  (match base.phase with
  | Congestion_avoidance when state.mechanisms.rtt_based_avoidance ->
    if diff < state.thresholds.alpha then set_cwnd base (cwnd base +. 1.0)
    else if diff > state.thresholds.beta then
      set_cwnd base (Float.max (cwnd base -. 1.0) 2.0)
  | Slow_start when state.mechanisms.cautious_slow_start ->
    if diff > state.thresholds.gamma then begin
      (* The pipe is filling: leave slow start now. *)
      set_ssthresh base (Float.max (cwnd base) 2.0);
      base.phase <- Congestion_avoidance
    end
    else state.ss_grow <- not state.ss_grow
  | Slow_start | Congestion_avoidance | Recovery -> ());
  state.epoch_end <- base.t_seqno

let per_ack_growth state base =
  match base.phase with
  | Slow_start ->
    if (not state.mechanisms.cautious_slow_start) || state.ss_grow then
      open_cwnd base
  | Congestion_avoidance ->
    if not state.mechanisms.rtt_based_avoidance then open_cwnd base
  | Recovery -> ()

let recv_ack state base ~ackno =
  if ackno > base.una then begin
    measure_rtt state base ~ackno;
    forget_acked state ~ackno;
    base.dupacks <- 0;
    let epoch_over = ackno >= state.epoch_end in
    advance_una base ~ackno;
    per_ack_growth state base;
    if epoch_over then epoch_actions state base;
    (* Vegas also checks the (now) oldest segment on the first ACKs
       after a retransmission, catching back-to-back losses without
       further duplicate ACKs. *)
    if state.mechanisms.fine_retransmit then
      ignore (check_expired state base : bool);
    send_much base
  end
  else if ackno = base.una && outstanding base > 0 then begin
    note_dupack base;
    base.dupacks <- base.dupacks + 1;
    let retransmitted =
      state.mechanisms.fine_retransmit && check_expired state base
    in
    if
      (not retransmitted)
      && base.dupacks = base.params.Params.dupack_threshold
      && may_fast_retransmit base
    then begin
      (* Classic three-dupack fallback. *)
      base.counters.Counters.fast_retransmits <-
        base.counters.Counters.fast_retransmits + 1;
      base.recover_mark <- base.maxseq;
      base.timed <- None;
      send_segment base ~seq:(base.una + 1) ~retx:true;
      restart_rtx_timer base;
      cut_window state base
    end
    else if not retransmitted then limited_transmit base
  end

let timeout state base =
  Hashtbl.reset state.send_times;
  state.last_cut <- neg_infinity;
  timeout_common base

let create_with ~engine ~params ~flow ~emit ~mechanisms
    ?(thresholds = default_thresholds) () =
  let state = fresh_state ~mechanisms ~thresholds in
  let emit_recording packet =
    if Net.Packet.is_data packet then
      Hashtbl.replace state.send_times (Net.Packet.seq_exn packet)
        (Sim.Engine.now engine);
    emit packet
  in
  let base =
    create ~engine ~params ~flow ~emit:emit_recording
      ~timeout_action:(timeout state) ()
  in
  let deliver_ack packet =
    if Net.Packet.is_data packet then
      invalid_arg "Vegas: data packet delivered to sender"
    else if not base.completed then
      recv_ack state base ~ackno:(Net.Packet.ackno_exn packet)
  in
  { Agent.name = "vegas"; flow; deliver_ack; base; wants_sack = false }

let create ~engine ~params ~flow ~emit () =
  create_with ~engine ~params ~flow ~emit ~mechanisms:full ()
