open Sender_common

type state = {
  scoreboard : Seqset.t;
  retransmitted : Seqset.t;  (* holes resent this recovery, still unacked *)
  mutable recover : int;
}

let update_scoreboard state ~sack =
  List.iter
    (fun (first, last_plus_one) ->
      if first < last_plus_one then
        Seqset.add_range state.scoreboard ~first ~last:(last_plus_one - 1))
    sack

(* The forward-most data the receiver holds; [una] when nothing is
   SACKed. *)
let fack base state =
  match Seqset.max_elt state.scoreboard with
  | Some highest -> max highest base.una
  | None -> base.una

(* awnd = data sent beyond fack (still plausibly in flight) plus the
   retransmissions we have re-injected. *)
let awnd base state =
  max 0 (base.maxseq - fack base state) + Seqset.cardinal state.retransmitted

let next_hole base state =
  let rec search candidate =
    if candidate > fack base state then None
    else if
      Seqset.mem state.scoreboard candidate
      || Seqset.mem state.retransmitted candidate
    then search (candidate + 1)
    else Some candidate
  in
  search (base.una + 1)

let send_while_awnd_allows base state =
  let budget =
    if base.params.Params.max_burst = 0 then max_int
    else base.params.Params.max_burst
  in
  let rec loop sent =
    if sent >= budget || float_of_int (awnd base state) >= cwnd base then ()
    else
      match next_hole base state with
      | Some seq ->
        ignore (Seqset.add state.retransmitted seq : bool);
        send_segment base ~seq ~retx:true;
        loop (sent + 1)
      | None ->
        if app_has_data base ~seq:base.t_seqno then begin
          send_segment base ~seq:base.t_seqno ~retx:false;
          base.t_seqno <- base.t_seqno + 1;
          loop (sent + 1)
        end
  in
  loop 0

let enter_recovery base state =
  base.counters.Counters.fast_retransmits <-
    base.counters.Counters.fast_retransmits + 1;
  base.recover_mark <- base.maxseq;
  notify_recovery_enter base;
  state.recover <- base.maxseq;
  Seqset.clear state.retransmitted;
  set_cwnd base (halve_ssthresh base);
  base.phase <- Recovery;
  base.timed <- None;
  (* The first hole goes out unconditionally; awnd gates the rest. *)
  (match next_hole base state with
  | Some seq ->
    ignore (Seqset.add state.retransmitted seq : bool);
    send_segment base ~seq ~retx:true
  | None -> ());
  send_while_awnd_allows base state;
  restart_rtx_timer base

let exit_recovery base state =
  set_cwnd base (ssthresh base);
  base.phase <- Congestion_avoidance;
  base.dupacks <- 0;
  Seqset.clear state.retransmitted;
  notify_recovery_exit base

(* FACK's trigger: enough data is known to have left the network,
   whether or not three literal duplicate ACKs arrived. *)
let loss_evident base state =
  fack base state - base.una - 1 > base.params.Params.dupack_threshold
  || base.dupacks = base.params.Params.dupack_threshold

let recv_ack base state ~ackno ~sack =
  update_scoreboard state ~sack;
  if ackno > base.una then begin
    Seqset.remove_below state.scoreboard (ackno + 1);
    Seqset.remove_below state.retransmitted (ackno + 1);
    if base.phase = Recovery then begin
      if ackno >= state.recover then begin
        exit_recovery base state;
        advance_una base ~ackno;
        send_much base
      end
      else begin
        advance_una base ~ackno;
        restart_rtx_timer base;
        send_while_awnd_allows base state
      end
    end
    else begin
      base.dupacks <- 0;
      advance_una base ~ackno;
      open_cwnd base;
      (* A cumulative advance can still reveal a hole below fack. *)
      if loss_evident base state && may_fast_retransmit base then
        enter_recovery base state
      else send_much base
    end
  end
  else if ackno = base.una && outstanding base > 0 then begin
    note_dupack base;
    base.dupacks <- base.dupacks + 1;
    if base.phase = Recovery then send_while_awnd_allows base state
    else if loss_evident base state && may_fast_retransmit base then
      enter_recovery base state
    else limited_transmit base
  end

let timeout state base =
  Seqset.clear state.retransmitted;
  timeout_common base

let create ~engine ~params ~flow ~emit () =
  let state =
    { scoreboard = Seqset.create (); retransmitted = Seqset.create (); recover = -1 }
  in
  let base =
    create ~engine ~params ~flow ~emit ~timeout_action:(timeout state) ()
  in
  let deliver_ack packet =
    if Net.Packet.is_data packet then
      invalid_arg "Fack: data packet delivered to sender"
    else if not base.completed then
      recv_ack base state
        ~ackno:(Net.Packet.ackno_exn packet)
        ~sack:(Net.Packet.sack packet)
  in
  { Agent.name = "fack"; flow; deliver_ack; base; wants_sack = true }
