(** Relative Rate Reduction sender (Hága, Tóth, Csabai & Vattay, arxiv
    1707.07218; steady-state model in {!Model.Rrr}).

    RRR generalises the Reno backoff: every congestion event —
    fast-recovery entry or timeout — multiplies the window by
    [1 - level] where [level] is {!Params.t.rrr_level}, the target
    congestion level. [level = 0.5] reproduces the New-Reno sender
    exactly (the window halves); smaller levels cut less per event and
    so hold a larger mean window ([sqrt ((2 - level) / (2 * level *
    p))] segments under random loss [p]), at the price of draining
    queues more slowly; larger levels are more conservative than Reno.

    Everything except the backoff factor is New-Reno: fast recovery
    held open across partial ACKs, one hole retransmitted per partial
    ACK, dupack inflation for self-clocking, go-back-N slow start after
    a timeout. *)

(** [create ~engine ~params ~flow ~emit ()] builds an RRR sender
    honouring [params.rrr_level]. *)
val create :
  engine:Sim.Engine.t ->
  params:Params.t ->
  flow:int ->
  emit:(Net.Packet.t -> unit) ->
  unit ->
  Agent.t
