(** Shared TCP-sender state and mechanics.

    Every congestion-control variant (Tahoe, Reno, New-Reno, SACK and the
    paper's Robust Recovery) owns one of these records and layers its
    ACK-processing policy on top. The record is deliberately transparent:
    variants mutate it directly, and white-box tests read it.

    Conventions (packet-unit sequence numbers, as in ns-2):
    - [una] is the highest cumulatively acknowledged segment, [-1]
      before any ACK; segment [una + 1] is the lowest outstanding one.
    - [t_seqno] is the next never-yet-sent segment.
    - [maxseq] is the highest segment ever transmitted.
    - [cwnd] and [ssthresh] are in segments; the usable window is
      [min cwnd rwnd]. Both live in dedicated flat float cells
      ({!fcell}) because a float field in this mixed record would be
      boxed on every ACK's store — read and write them through
      {!cwnd}/{!set_cwnd} and {!ssthresh}/{!set_ssthresh}. *)

type phase = Slow_start | Congestion_avoidance | Recovery

(** Multicast observer registry. Subscribe with {!on_send} & friends;
    every subscriber sees every event, in subscription order. *)
type hooks

(** A one-field all-float record is stored flat, so writing [v] is a
    plain float store — no box per update, unlike a float field in the
    mixed sender record below. *)
type fcell = { mutable v : float }

type t = {
  engine : Sim.Engine.t;
  params : Params.t;
  flow : int;
  emit : Net.Packet.t -> unit;
  cwnd : fcell;  (** use the {!cwnd}/{!set_cwnd} accessors *)
  ssthresh : fcell;  (** use the {!ssthresh}/{!set_ssthresh} accessors *)
  mutable una : int;
  mutable t_seqno : int;
  mutable maxseq : int;
  mutable dupacks : int;
  mutable phase : phase;
  mutable app_limit : int option;
      (** [Some n]: segments [0 .. n-1] are available; [None]: infinite
          source *)
  rto : Rto.t;
  mutable rtx_timer : Sim.Timer.t option;  (** set once at construction *)
  mutable timed : (int * float) option;
      (** segment being RTT-timed and its first-transmission time *)
  mutable uid_counter : int;
  mutable recover_mark : int;
      (** [maxseq] at the most recent loss-recovery event; 3 dup ACKs
          re-trigger fast retransmit only once the cumulative ACK has
          passed it (the ns-2 "bugfix": duplicate ACKs caused by
          go-back-N resends must not re-enter recovery) *)
  counters : Counters.t;
  hooks : hooks;
  mutable completed : bool;
  mutable on_complete : unit -> unit;
}

(** [create ~engine ~params ~flow ~emit ~timeout_action ()] builds the
    state with an armed-on-demand retransmission timer firing
    [timeout_action] (the variant's timeout policy — usually
    {!timeout_common} plus variant cleanup). *)
val create :
  engine:Sim.Engine.t ->
  params:Params.t ->
  flow:int ->
  emit:(Net.Packet.t -> unit) ->
  timeout_action:(t -> unit) ->
  unit ->
  t

(** [cwnd t] is the congestion window in segments. *)
val cwnd : t -> float

(** [set_cwnd t v] stores a new congestion window. *)
val set_cwnd : t -> float -> unit

(** [ssthresh t] is the slow-start threshold in segments. *)
val ssthresh : t -> float

(** [set_ssthresh t v] stores a new slow-start threshold. *)
val set_ssthresh : t -> float -> unit

(** [window t] is the usable send window in segments. *)
val window : t -> float

(** [outstanding t] is the number of unacknowledged segments in flight
    from the cumulative-ACK viewpoint: [t_seqno - una - 1]. *)
val outstanding : t -> int

(** [app_has_data t ~seq] reports whether the application has produced
    segment [seq]. *)
val app_has_data : t -> seq:int -> bool

(** [send_segment t ~seq ~retx] transmits segment [seq], stamping
    counters, RTT timing (first transmissions only — Karn's rule:
    retransmitting the timed segment cancels its timing), [maxseq], and
    (re)arming the retransmission timer. *)
val send_segment : t -> seq:int -> retx:bool -> unit

(** [send_new_data t ~count] transmits up to [count] segments beyond
    [maxseq], app-data permitting; used by recovery algorithms that
    clock new data off duplicate ACKs rather than the window. Returns
    how many were sent. *)
val send_new_data : t -> count:int -> int

(** [send_much t] sends new segments while the window allows and app
    data exists, respecting [max_burst] (when non-zero). *)
val send_much : t -> unit

(** [open_cwnd t] applies one ACK's worth of window growth: +1 segment
    in slow start, +1/cwnd in congestion avoidance. No-op in
    {!Recovery}. *)
val open_cwnd : t -> unit

(** [halve_ssthresh t] sets [ssthresh <- max (window /. 2) 2.] — the
    standard multiplicative-decrease target — and returns it. *)
val halve_ssthresh : t -> float

(** [advance_una t ~ackno] moves the cumulative-ACK point forward,
    samples the RTT when the timed segment is covered, restarts the
    retransmission timer (or cancels it when nothing is outstanding),
    fires the completion callback when a finite source finishes, and
    bumps ACK counters + hooks. Call with [ackno > una]. *)
val advance_una : t -> ackno:int -> unit

(** [note_dupack t] bumps duplicate-ACK counters and hooks. *)
val note_dupack : t -> unit

(** [may_fast_retransmit t] reports whether a fresh burst of duplicate
    ACKs is trustworthy evidence of a new loss (see [recover_mark]). *)
val may_fast_retransmit : t -> bool

(** [limited_transmit t] implements RFC 3042 when enabled in params: on
    the first two duplicate ACKs (outside recovery), send one new
    segment, allowing the flight to exceed [cwnd] by up to two. Call it
    from the variant's duplicate-ACK path after bumping [dupacks]. *)
val limited_transmit : t -> unit

(** [timeout_common t] is the variant-independent part of an RTO expiry:
    counters, hook, RTO backoff, [ssthresh <- max (window/2) 2],
    [cwnd <- 1], slow start, go-back-N rollback of [t_seqno], Karn reset
    and retransmission of the first outstanding segment. *)
val timeout_common : t -> unit

(** [restart_rtx_timer t] re-arms the timer for the current RTO. *)
val restart_rtx_timer : t -> unit

(** [cancel_rtx_timer t] disarms the timer. *)
val cancel_rtx_timer : t -> unit

(** [set_app_limit t limit] updates the data horizon ([None] = infinite
    source). Does not by itself trigger sending. *)
val set_app_limit : t -> int option -> unit

(** [start t] begins transmission (initial [send_much]). *)
val start : t -> unit

(** {1 Event observation}

    Multicast subscriptions: any number of observers (flow traces,
    auditors, structured tracers) can attach to one sender; each event
    is delivered to every subscriber in subscription order.
    Subscriptions cannot be removed — observers live as long as the
    sender. *)

(** [on_send t f] calls [f] on every transmission, after the sender's
    own bookkeeping ([maxseq], counters) is updated. *)
val on_send : t -> (time:float -> seq:int -> retx:bool -> unit) -> unit

(** [on_ack t f] calls [f] on every ACK event: cumulative advances
    (from {!advance_una}, after [una] moved) and duplicates (from
    {!note_dupack}, with [ackno = una]). *)
val on_ack : t -> (time:float -> ackno:int -> unit) -> unit

(** [on_recovery_enter t f] calls [f] when a variant announces loss
    recovery (via {!notify_recovery_enter}). *)
val on_recovery_enter : t -> (time:float -> unit) -> unit

(** [on_recovery_exit t f] is the matching exit notification. *)
val on_recovery_exit : t -> (time:float -> unit) -> unit

(** [on_timeout t f] calls [f] at every RTO expiry, before the
    timeout's state changes are applied. *)
val on_timeout : t -> (time:float -> unit) -> unit

(** [notify_recovery_enter t] broadcasts recovery entry at the current
    engine time. For variant implementations ({!Reno}, {!Sack}, RR, …) —
    observers should subscribe instead. *)
val notify_recovery_enter : t -> unit

(** [notify_recovery_exit t] broadcasts recovery exit. *)
val notify_recovery_exit : t -> unit
