(** Relentless Congestion Control sender (Mathis,
    [draft-mathis-iccrg-relentless-tcp]; analytical model in
    {!Model.Relentless}, arxiv 1102.3270).

    Relentless replaces fast recovery's multiplicative decrease with an
    exact one: the window is reduced by precisely the number of
    segments lost — one at recovery entry for the retransmitted hole,
    one more per partial ACK as further holes surface — and is
    otherwise left at its congested size. Steady state therefore sits
    at the equilibrium [W = 1/p] instead of sawtoothing around
    [C / sqrt p]: a deliberately non-TCP-friendly design for
    scavenger-class or fully-provisioned paths.

    Transmission mechanics ride the New-Reno skeleton: recovery is held
    open across partial ACKs, each retransmitting the next hole;
    duplicate ACKs inflate the operational window for self-clocking
    while the exact-decrease arithmetic is tracked un-inflated and
    reinstated when recovery ends. Timeouts fall back to the standard
    go-back-N slow start — Relentless modifies only fast recovery. *)

(** [create ~engine ~params ~flow ~emit ()] builds a Relentless
    sender. *)
val create :
  engine:Sim.Engine.t ->
  params:Params.t ->
  flow:int ->
  emit:(Net.Packet.t -> unit) ->
  unit ->
  Agent.t
