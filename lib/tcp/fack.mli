(** TCP FACK sender (Mathis & Mahdavi, SIGCOMM 1996 — the paper's
    reference [13], cited alongside SACK as the receiver-assisted
    recovery RR competes with).

    Forward ACK keeps the SACK scoreboard but drives recovery from
    [fack], the highest sequence number the receiver is known to hold:

    - recovery triggers as soon as more than [dupack_threshold] segments
      are known to have left the network ([fack - una - 1 > 3]), even
      before three literal duplicate ACKs arrive;
    - the in-flight estimate is exact: [awnd = snd.nxt - fack +
      retransmitted_data], so transmission continues smoothly whenever
      [awnd < cwnd], repairing all holes below [fack] first.

    Requires a SACK-generating receiver, like {!Sack}. *)

(** [create ~engine ~params ~flow ~emit ()] builds a FACK sender. *)
val create :
  engine:Sim.Engine.t ->
  params:Params.t ->
  flow:int ->
  emit:(Net.Packet.t -> unit) ->
  unit ->
  Agent.t
