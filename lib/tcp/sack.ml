open Sender_common

type state = {
  scoreboard : Seqset.t;  (* segments the receiver reported holding *)
  retransmitted : Seqset.t;  (* holes already resent this recovery *)
  mutable recover : int;
  mutable pipe : int;
}

let update_scoreboard state ~sack =
  List.iter
    (fun (first, last_plus_one) ->
      if first < last_plus_one then
        Seqset.add_range state.scoreboard ~first ~last:(last_plus_one - 1))
    sack

(* The oldest segment above [una] that the receiver does not hold and
   that we have not already retransmitted this recovery, provided the
   scoreboard proves data above it arrived. *)
let next_hole base state =
  let rec search candidate =
    match Seqset.max_elt state.scoreboard with
    | None -> None
    | Some highest_sacked ->
      if candidate > highest_sacked then None
      else if
        Seqset.mem state.scoreboard candidate
        || Seqset.mem state.retransmitted candidate
      then search (candidate + 1)
      else Some candidate
  in
  search (base.una + 1)

(* In recovery, transmit while the pipe has room: holes first, then new
   data; every transmission adds one packet to the pipe. *)
let send_while_pipe_allows base state =
  let budget =
    if base.params.Params.max_burst = 0 then max_int
    else base.params.Params.max_burst
  in
  let rec loop sent =
    if sent >= budget || float_of_int state.pipe >= cwnd base then ()
    else
      match next_hole base state with
      | Some seq ->
        ignore (Seqset.add state.retransmitted seq : bool);
        send_segment base ~seq ~retx:true;
        state.pipe <- state.pipe + 1;
        loop (sent + 1)
      | None ->
        if app_has_data base ~seq:base.t_seqno then begin
          send_segment base ~seq:base.t_seqno ~retx:false;
          base.t_seqno <- base.t_seqno + 1;
          state.pipe <- state.pipe + 1;
          loop (sent + 1)
        end
  in
  loop 0

let enter_recovery base state =
  base.counters.Counters.fast_retransmits <-
    base.counters.Counters.fast_retransmits + 1;
  notify_recovery_enter base;
  state.recover <- base.maxseq;
  base.recover_mark <- base.maxseq;
  Seqset.clear state.retransmitted;
  (* ns-2 sack1 (the implementation the paper compares against) seeds
     the pipe from the pre-halving window minus the duplicate ACKs'
     evidence of departures; transmission resumes once enough further
     dup ACKs drain it below the halved cwnd. *)
  state.pipe <-
    max 0
      (int_of_float (window base) - base.params.Params.dupack_threshold);
  set_cwnd base (halve_ssthresh base);
  base.phase <- Recovery;
  base.timed <- None;
  send_segment base ~seq:(base.una + 1) ~retx:true;
  ignore (Seqset.add state.retransmitted (base.una + 1) : bool);
  state.pipe <- state.pipe + 1;
  restart_rtx_timer base

let exit_recovery base state =
  set_cwnd base (ssthresh base);
  base.phase <- Congestion_avoidance;
  base.dupacks <- 0;
  state.pipe <- 0;
  Seqset.clear state.retransmitted;
  notify_recovery_exit base

let recv_ack base state ~ackno ~sack =
  update_scoreboard state ~sack;
  if ackno > base.una then begin
    Seqset.remove_below state.scoreboard (ackno + 1);
    Seqset.remove_below state.retransmitted (ackno + 1);
    if base.phase = Recovery then begin
      if ackno >= state.recover then begin
        (* Full ACK: deflate to ssthresh; growth resumes next ACK. *)
        exit_recovery base state;
        advance_una base ~ackno;
        send_much base
      end
      else begin
        advance_una base ~ackno;
        (* Partial ACK: the original and its retransmission left. *)
        state.pipe <- max 0 (state.pipe - 2);
        restart_rtx_timer base;
        send_while_pipe_allows base state
      end
    end
    else begin
      base.dupacks <- 0;
      advance_una base ~ackno;
      open_cwnd base;
      send_much base
    end
  end
  else if ackno = base.una && outstanding base > 0 then begin
    note_dupack base;
    base.dupacks <- base.dupacks + 1;
    if base.phase = Recovery then begin
      state.pipe <- max 0 (state.pipe - 1);
      send_while_pipe_allows base state
    end
    else if
      base.dupacks = base.params.Params.dupack_threshold
      && may_fast_retransmit base
    then enter_recovery base state
    else limited_transmit base
  end

let timeout state base =
  (* Retransmission timing restarts from scratch: the scoreboard keeps
     receiver knowledge, but per-recovery bookkeeping resets. *)
  state.pipe <- 0;
  Seqset.clear state.retransmitted;
  timeout_common base

let create ~engine ~params ~flow ~emit () =
  let state =
    {
      scoreboard = Seqset.create ();
      retransmitted = Seqset.create ();
      recover = -1;
      pipe = 0;
    }
  in
  let base =
    create ~engine ~params ~flow ~emit ~timeout_action:(timeout state) ()
  in
  let deliver_ack packet =
    if Net.Packet.is_data packet then
      invalid_arg "Sack: data packet delivered to sender"
    else if not base.completed then
      recv_ack base state
        ~ackno:(Net.Packet.ackno_exn packet)
        ~sack:(Net.Packet.sack packet)
  in
  { Agent.name = "sack"; flow; deliver_ack; base; wants_sack = true }
