(** TCP agent parameters.

    Sequence numbers, windows and buffers are counted in fixed-size
    segments (packets), following ns-2's one-way TCP agents and the
    paper's setup: 1000-byte data packets, 40-byte ACKs. *)

type t = {
  mss : int;  (** data segment size in bytes (wire size) *)
  ack_size : int;  (** ACK packet size in bytes *)
  initial_cwnd : float;  (** initial congestion window, segments *)
  initial_ssthresh : float;  (** initial slow-start threshold, segments *)
  rwnd : int;  (** receiver advertised window, segments *)
  max_burst : int;
      (** cap on segments transmitted per incoming-ACK event; [0] means
          unlimited. New-Reno and SACK use the paper's "maxburst". *)
  dupack_threshold : int;  (** duplicate ACKs triggering fast retransmit *)
  min_rto : float;  (** seconds; classic coarse-timer floor *)
  max_rto : float;  (** seconds *)
  initial_rto : float;  (** RTO before the first RTT sample *)
  smooth_start : bool;
      (** the paper's cited Smooth-Start refinement (Wang, Xin, Reeves &
          Shin, ISCC 2000): damp slow-start growth to half rate once
          [cwnd] passes [ssthresh/2], reducing the overshoot burst that
          causes multi-loss windows in the first place. Off by default
          (the paper treats it as orthogonal to recovery). *)
  limited_transmit : bool;
      (** RFC 3042 (contemporary with the paper): send one new segment
          on each of the first two duplicate ACKs, so tiny windows can
          still muster the three dup ACKs fast retransmit needs. Off by
          default (not part of the paper's senders). *)
  tick : float;
      (** timer granularity in seconds (ns-2's [tcpTick_]); 0 = exact
          clocks (default). Non-zero values emulate the classic coarse
          500 ms/100 ms TCP timers. *)
  rto_estimator : Rto.estimator;
      (** the retransmission-timeout prediction algorithm
          ({!Rto.estimator}); {!Rto.Jacobson} — the Jacobson/Karels
          smoother every classic TCP uses — by default. The
          alternatives exist to study estimator divergence (Jain,
          cs/9809097) and are selected per run via the campaign grid
          or [rr-sim --rto]. *)
  rrr_level : float;
      (** the {!Rrr} sender's target congestion level [ℓ ∈ (0, 1)]:
          each congestion event multiplies the window by [1 - ℓ].
          [0.5] (the default) reproduces the Reno half-cut; other
          senders ignore the field. Selected per run via
          [rr-sim --rrr-level] or the campaign [--rrr-levels] axis. *)
}

(** Paper defaults: MSS 1000 B, ACK 40 B, cwnd₀ 1, ssthresh₀ 64,
    rwnd 10000 (i.e. effectively unbounded, as §4 assumes), maxburst 4,
    dupack threshold 3, RTO ∈ [1 s, 64 s], initial RTO 3 s. *)
val default : t

(** [validate t] checks internal consistency.

    @raise Invalid_argument when a field is out of range. *)
val validate : t -> unit
