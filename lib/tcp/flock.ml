type t = {
  engine : Sim.Engine.t;
  params : Params.t;
  n : int;
  inject_data : flow:int -> Net.Packet.t -> unit;
  inject_ack : flow:int -> Net.Packet.t -> unit;
  mutable uid_counter : int;
  (* sender slots *)
  cwnd : float array;
  ssthresh : float array;
  una : int array;  (* lowest unacknowledged segment *)
  next_seq : int array;
  dupacks : int array;
  recover : int array;  (* fast-recovery exit seq; -1 = not recovering *)
  srtt : float array;  (* nan until the first sample *)
  rttvar : float array;
  rto : float array;
  rto_deadline : float array;  (* infinity = no timer pending *)
  timed_seq : int array;  (* Karn: one timed segment per flow; -1 = none *)
  timed_at : float array;
  retrans : int array;
  n_timeouts : int array;
  (* receiver slots *)
  rcv_next : int array;
  (* bit i (1-based) set <=> segment [rcv_next + i] held out of order *)
  window : int64 array;
}

(* The reorder bitmap holds 63 segments past the cumulative point, so
   the sender never usefully opens beyond that. *)
let window_cap = 63

let create ~engine ~params ~flows ~inject_data ~inject_ack () =
  if flows < 1 then invalid_arg "Flock.create: flows < 1";
  Params.validate params;
  {
    engine;
    params;
    n = flows;
    inject_data;
    inject_ack;
    uid_counter = 0;
    cwnd = Array.make flows params.Params.initial_cwnd;
    ssthresh = Array.make flows params.Params.initial_ssthresh;
    una = Array.make flows 0;
    next_seq = Array.make flows 0;
    dupacks = Array.make flows 0;
    recover = Array.make flows (-1);
    srtt = Array.make flows nan;
    rttvar = Array.make flows 0.0;
    rto = Array.make flows params.Params.initial_rto;
    rto_deadline = Array.make flows infinity;
    timed_seq = Array.make flows (-1);
    timed_at = Array.make flows 0.0;
    retrans = Array.make flows 0;
    n_timeouts = Array.make flows 0;
    rcv_next = Array.make flows 0;
    window = Array.make flows 0L;
  }

let flows t = t.n

let fresh_uid t =
  t.uid_counter <- t.uid_counter + 1;
  t.uid_counter

let send_segment t flow seq =
  let now = Sim.Engine.now t.engine in
  let packet =
    Net.Packet.data ~uid:(fresh_uid t) ~flow ~seq
      ~size_bytes:t.params.Params.mss ~born:now
  in
  t.inject_data ~flow packet

let arm_timer t flow =
  if t.rto_deadline.(flow) = infinity then
    t.rto_deadline.(flow) <- Sim.Engine.now t.engine +. t.rto.(flow)

let restart_timer t flow =
  if t.una.(flow) < t.next_seq.(flow) then
    t.rto_deadline.(flow) <- Sim.Engine.now t.engine +. t.rto.(flow)
  else t.rto_deadline.(flow) <- infinity

let effective_window t flow =
  let w = int_of_float t.cwnd.(flow) in
  Stdlib.min (Stdlib.max 1 w) (Stdlib.min t.params.Params.rwnd window_cap)

(* Transmit new segments up to the window, capped per call by
   [max_burst] like the per-flow agents. *)
let send_new t flow =
  let budget =
    if t.params.Params.max_burst = 0 then max_int else t.params.Params.max_burst
  in
  let window = effective_window t flow in
  let sent = ref 0 in
  while
    !sent < budget && t.next_seq.(flow) - t.una.(flow) < window
  do
    let seq = t.next_seq.(flow) in
    if t.timed_seq.(flow) < 0 then begin
      t.timed_seq.(flow) <- seq;
      t.timed_at.(flow) <- Sim.Engine.now t.engine
    end;
    t.next_seq.(flow) <- seq + 1;
    incr sent;
    send_segment t flow seq
  done;
  if !sent > 0 then arm_timer t flow

let retransmit_una t flow =
  t.retrans.(flow) <- t.retrans.(flow) + 1;
  (* Karn: a retransmitted segment never yields an RTT sample. *)
  if t.timed_seq.(flow) >= 0 && t.timed_seq.(flow) <= t.una.(flow) then
    t.timed_seq.(flow) <- -1;
  send_segment t flow t.una.(flow)

let clamp_rto t value =
  Float.max t.params.Params.min_rto (Float.min t.params.Params.max_rto value)

let sample_rtt t flow ackno =
  if t.timed_seq.(flow) >= 0 && ackno >= t.timed_seq.(flow) then begin
    let sample = Sim.Engine.now t.engine -. t.timed_at.(flow) in
    t.timed_seq.(flow) <- -1;
    if Float.is_nan t.srtt.(flow) then begin
      t.srtt.(flow) <- sample;
      t.rttvar.(flow) <- sample /. 2.0
    end
    else begin
      let err = Float.abs (t.srtt.(flow) -. sample) in
      t.rttvar.(flow) <- (0.75 *. t.rttvar.(flow)) +. (0.25 *. err);
      t.srtt.(flow) <- (0.875 *. t.srtt.(flow)) +. (0.125 *. sample)
    end;
    t.rto.(flow) <- clamp_rto t (t.srtt.(flow) +. (4.0 *. t.rttvar.(flow)))
  end

let halve_window t flow =
  let inflight = float_of_int (t.next_seq.(flow) - t.una.(flow)) in
  Float.max 2.0 (inflight /. 2.0)

let enter_fast_recovery t flow =
  t.ssthresh.(flow) <- halve_window t flow;
  t.recover.(flow) <- t.next_seq.(flow) - 1;
  retransmit_una t flow;
  t.cwnd.(flow) <-
    t.ssthresh.(flow) +. float_of_int t.params.Params.dupack_threshold;
  restart_timer t flow

let deliver_ack t packet =
  let flow = packet.Net.Packet.flow in
  if not (Net.Packet.is_data packet) then begin
    let ackno = Net.Packet.ackno_exn packet in
    let new_una = ackno + 1 in
    if new_una > t.una.(flow) then begin
      sample_rtt t flow ackno;
      let newly = new_una - t.una.(flow) in
      if t.recover.(flow) >= 0 then
        if ackno >= t.recover.(flow) then begin
          (* full ACK: deflate to ssthresh and leave recovery *)
          t.cwnd.(flow) <- t.ssthresh.(flow);
          t.recover.(flow) <- -1;
          t.dupacks.(flow) <- 0;
          t.una.(flow) <- new_una
        end
        else begin
          (* partial ACK: the next hole was also lost — retransmit it,
             deflate by the data the partial ACK took out *)
          t.una.(flow) <- new_una;
          t.cwnd.(flow) <-
            Float.max 1.0 (t.cwnd.(flow) -. float_of_int newly +. 1.0);
          retransmit_una t flow
        end
      else begin
        t.dupacks.(flow) <- 0;
        t.una.(flow) <- new_una;
        if t.cwnd.(flow) < t.ssthresh.(flow) then
          t.cwnd.(flow) <- t.cwnd.(flow) +. float_of_int newly
        else t.cwnd.(flow) <- t.cwnd.(flow) +. (1.0 /. t.cwnd.(flow))
      end;
      restart_timer t flow;
      send_new t flow
    end
    else if t.una.(flow) < t.next_seq.(flow) then
      if t.recover.(flow) >= 0 then begin
        (* window inflation while recovering *)
        t.cwnd.(flow) <- t.cwnd.(flow) +. 1.0;
        send_new t flow
      end
      else begin
        t.dupacks.(flow) <- t.dupacks.(flow) + 1;
        if t.dupacks.(flow) = t.params.Params.dupack_threshold then
          enter_fast_recovery t flow
      end
  end

let send_ack t flow =
  let now = Sim.Engine.now t.engine in
  let packet =
    Net.Packet.ack ~uid:(fresh_uid t) ~flow ~ackno:(t.rcv_next.(flow) - 1)
      ~size_bytes:t.params.Params.ack_size ~born:now ()
  in
  t.inject_ack ~flow packet

let deliver_data t packet =
  let flow = packet.Net.Packet.flow in
  if Net.Packet.is_data packet then begin
    let seq = Net.Packet.seq_exn packet in
    let expected = t.rcv_next.(flow) in
    if seq = expected then begin
      t.rcv_next.(flow) <- expected + 1;
      t.window.(flow) <- Int64.shift_right_logical t.window.(flow) 1;
      while Int64.logand t.window.(flow) 1L = 1L do
        t.rcv_next.(flow) <- t.rcv_next.(flow) + 1;
        t.window.(flow) <- Int64.shift_right_logical t.window.(flow) 1
      done
    end
    else if seq > expected && seq - expected <= window_cap then
      t.window.(flow) <-
        Int64.logor t.window.(flow) (Int64.shift_left 1L (seq - expected));
    (* below-window and far-future segments still trigger the
       (duplicate) cumulative ACK, as a real receiver would *)
    send_ack t flow
  end

let timeout t flow =
  t.n_timeouts.(flow) <- t.n_timeouts.(flow) + 1;
  t.ssthresh.(flow) <- halve_window t flow;
  t.cwnd.(flow) <- 1.0;
  t.recover.(flow) <- -1;
  t.dupacks.(flow) <- 0;
  t.rto.(flow) <- Float.min t.params.Params.max_rto (t.rto.(flow) *. 2.0);
  t.timed_seq.(flow) <- -1;
  t.rto_deadline.(flow) <- Sim.Engine.now t.engine +. t.rto.(flow);
  retransmit_una t flow

let scan t =
  let now = Sim.Engine.now t.engine in
  for flow = 0 to t.n - 1 do
    if now >= t.rto_deadline.(flow) && t.una.(flow) < t.next_seq.(flow) then
      timeout t flow
  done

let start_flow t flow = send_new t flow

let start t ?(stagger = 0.0) ?(scan_interval = 0.05) () =
  if stagger <= 0.0 then
    for flow = 0 to t.n - 1 do
      start_flow t flow
    done
  else begin
    (* one chained event, not one event per flow *)
    let gap = stagger /. float_of_int t.n in
    let rec start_next flow =
      if flow < t.n then begin
        start_flow t flow;
        Sim.Engine.schedule_unit t.engine ~delay:gap (fun () ->
            start_next (flow + 1))
      end
    in
    start_next 0
  end;
  let rec tick () =
    scan t;
    Sim.Engine.schedule_unit t.engine ~delay:scan_interval tick
  in
  Sim.Engine.schedule_unit t.engine ~delay:scan_interval tick

(* -- observability --------------------------------------------------- *)

let acked_segments t flow = t.una.(flow)

let retransmits t flow = t.retrans.(flow)

let timeouts t flow = t.n_timeouts.(flow)

let cwnd t flow = t.cwnd.(flow)

let goodput_bps t flow ~duration =
  if duration <= 0.0 then 0.0
  else
    float_of_int (t.una.(flow) * t.params.Params.mss * 8) /. duration

let total_acked_segments t = Array.fold_left ( + ) 0 t.una

let total_retransmits t = Array.fold_left ( + ) 0 t.retrans

let total_timeouts t = Array.fold_left ( + ) 0 t.n_timeouts
