(** TCP receiver (sink).

    As in the paper's setup, the receiver by default acknowledges
    {e every} data packet immediately — the delayed-ACK mechanism is
    off, and an out-of-sequence arrival triggers an immediate duplicate
    ACK (§2.2). With [sack] enabled, ACKs carry up to [max_sack_blocks]
    SACK blocks, the block containing the most recent arrival first.

    With [delayed_ack] enabled (an extension; the §4 model's constant C
    "lumps the ACK strategy"), in-order arrivals are acknowledged every
    second segment or after [delack_timeout], per RFC 1122/5681; gaps,
    duplicates and hole-filling arrivals are still ACKed immediately. *)

type t

(** [create ~engine ~flow ~emit ?sack ?max_sack_blocks ?ack_size
    ?delayed_ack ?delack_timeout ()] returns a sink that sends ACKs
    through [emit]. [delayed_ack] defaults to [false] (the paper's
    setting); [delack_timeout] to 0.1 s. *)
val create :
  engine:Sim.Engine.t ->
  flow:int ->
  emit:(Net.Packet.t -> unit) ->
  ?sack:bool ->
  ?max_sack_blocks:int ->
  ?ack_size:int ->
  ?delayed_ack:bool ->
  ?delack_timeout:float ->
  unit ->
  t

(** [deliver t packet] processes an arriving data packet (ACK packets
    are rejected).

    @raise Invalid_argument if [packet] is an ACK. *)
val deliver : t -> Net.Packet.t -> unit

(** [next_expected t] is the lowest segment not yet received in order —
    the in-order delivery point exposed to the application. *)
val next_expected : t -> int

(** [segments_received t] counts distinct data segments received. *)
val segments_received : t -> int

(** [duplicates_received t] counts arrivals of already-held segments. *)
val duplicates_received : t -> int

(** [acks_sent t] counts ACK packets emitted. *)
val acks_sent : t -> int

(** [buffered t] is the number of out-of-order segments held. *)
val buffered : t -> int
