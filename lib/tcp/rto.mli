(** Retransmission-timeout estimation with a pluggable estimator family,
    exponential backoff and Karn's rule (callers must not feed samples
    from retransmitted segments; the sender base enforces this by
    cancelling the in-progress timing on retransmission).

    The estimators are the layered family of Jain's "Divergence of
    Timeout Algorithms for Packet Retransmissions" (cs/9809097): a
    non-adaptive constant, a mean-only exponential average, and
    mean-plus-deviation tracking at two gain settings. All share the
    same clamping ([min_rto]/[max_rto]), coarse-clock quantization and
    backoff machinery — only the RTT smoothing gains and the
    estimate-to-timeout rule differ. *)

(** The timeout-prediction algorithm:

    - [Jacobson] — the Jacobson/Karels default: smoothed RTT with gain
      1/8, mean deviation with gain 1/4, timeout [srtt + 4*rttvar];
    - [Fixed] — no adaptation: the timeout stays at [initial_rto]
      (samples are still tracked, so [srtt] remains observable, and
      still clear backoff);
    - [Rfc793] — the original TCP specification: mean-only exponential
      average (gain 1/8), timeout [2 * srtt], no deviation term;
    - [Agile] — mean-plus-deviation with aggressive gains (mean 1/4,
      deviation 1/2): tracks change fast, but forgets variance just as
      fast — the under-damped end of the family. *)
type estimator = Jacobson | Fixed | Rfc793 | Agile

(** Every estimator, in a stable presentation order. *)
val estimators : estimator list

(** [estimator_name e] is the stable lower-case name used by the CLI,
    campaign grids and JSON reports: ["jacobson"], ["fixed"],
    ["rfc793"], ["agile"]. *)
val estimator_name : estimator -> string

(** [estimator_of_string s] parses {!estimator_name} spellings
    (case-insensitively; ["jk"] and ["mean"] are accepted aliases for
    ["jacobson"] and ["rfc793"]). *)
val estimator_of_string : string -> (estimator, string) result

type t

(** [create ~min_rto ~max_rto ~initial_rto ?tick ?estimator ()] starts
    with no RTT estimate and an RTO of [initial_rto], which must lie
    within [\[min_rto, max_rto\]]. A non-zero [tick] emulates the
    classic coarse clock (ns-2's [tcpTick_], BSD's 500 ms timer): RTT
    samples are rounded to the nearest tick (at least one) and timeout
    values up to a tick boundary. [tick] defaults to 0 — exact timing.
    [estimator] defaults to {!Jacobson}.

    @raise Invalid_argument unless
      [0 < min_rto <= initial_rto <= max_rto] and [tick >= 0]. *)
val create :
  min_rto:float ->
  max_rto:float ->
  initial_rto:float ->
  ?tick:float ->
  ?estimator:estimator ->
  unit ->
  t

(** [estimator t] is the algorithm [t] was created with. *)
val estimator : t -> estimator

(** [sample t rtt] feeds a round-trip measurement (seconds) and clears
    any backoff. *)
val sample : t -> float -> unit

(** [value t] is the current timeout, backoff included, clamped to
    [\[min_rto, max_rto\]]. *)
val value : t -> float

(** [fine_timeout t] is the estimator's raw timeout prediction for
    fine-grained (sub-RTO) retransmission checks, e.g. Vegas: no
    backoff and no [min_rto] floor, but still quantized up to the
    coarse clock and capped at [max_rto] — a clamped or ticked
    configuration can never obtain a finer timeout than the real RTO
    machinery could express. Before the first sample it is
    [initial_rto]. *)
val fine_timeout : t -> float

(** [backoff t] doubles the timeout (exponential backoff), saturating at
    [max_rto]. *)
val backoff : t -> unit

(** [srtt t] is the smoothed RTT, if at least one sample arrived. *)
val srtt : t -> float option

(** [rttvar t] is the mean RTT deviation, if estimated. *)
val rttvar : t -> float option
