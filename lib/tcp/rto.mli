(** Retransmission-timeout estimation: Jacobson/Karels smoothed RTT with
    exponential backoff and Karn's rule (callers must not feed samples
    from retransmitted segments; the sender base enforces this by
    cancelling the in-progress timing on retransmission). *)

type t

(** [create ~min_rto ~max_rto ~initial_rto ?tick ()] starts with no RTT
    estimate and an RTO of [initial_rto]. A non-zero [tick] emulates the
    classic coarse clock (ns-2's [tcpTick_], BSD's 500 ms timer): RTT
    samples are rounded to the nearest tick (at least one) and timeout
    values up to a tick boundary. [tick] defaults to 0 — exact timing. *)
val create :
  min_rto:float -> max_rto:float -> initial_rto:float -> ?tick:float -> unit -> t

(** [sample t rtt] feeds a round-trip measurement (seconds) and clears
    any backoff. *)
val sample : t -> float -> unit

(** [value t] is the current timeout, backoff included, clamped to
    [\[min_rto, max_rto\]]. *)
val value : t -> float

(** [backoff t] doubles the timeout (exponential backoff), saturating at
    [max_rto]. *)
val backoff : t -> unit

(** [srtt t] is the smoothed RTT, if at least one sample arrived. *)
val srtt : t -> float option

(** [rttvar t] is the mean RTT deviation, if estimated. *)
val rttvar : t -> float option
