type t = {
  mss : int;
  ack_size : int;
  initial_cwnd : float;
  initial_ssthresh : float;
  rwnd : int;
  max_burst : int;
  dupack_threshold : int;
  min_rto : float;
  max_rto : float;
  initial_rto : float;
  smooth_start : bool;
  limited_transmit : bool;
  tick : float;
  rto_estimator : Rto.estimator;
  rrr_level : float;
}

let default =
  {
    mss = 1000;
    ack_size = 40;
    initial_cwnd = 1.0;
    initial_ssthresh = 64.0;
    rwnd = 10_000;
    max_burst = 4;
    dupack_threshold = 3;
    min_rto = 1.0;
    max_rto = 64.0;
    initial_rto = 3.0;
    smooth_start = false;
    limited_transmit = false;
    tick = 0.0;
    rto_estimator = Rto.Jacobson;
    rrr_level = 0.5;
  }

let validate t =
  if t.mss <= 0 then invalid_arg "Params: mss <= 0";
  if t.ack_size <= 0 then invalid_arg "Params: ack_size <= 0";
  if t.initial_cwnd < 1.0 then invalid_arg "Params: initial_cwnd < 1";
  if t.initial_ssthresh < 2.0 then invalid_arg "Params: initial_ssthresh < 2";
  if t.rwnd < 1 then invalid_arg "Params: rwnd < 1";
  if t.max_burst < 0 then invalid_arg "Params: max_burst < 0";
  if t.dupack_threshold < 1 then invalid_arg "Params: dupack_threshold < 1";
  if t.min_rto <= 0.0 || t.max_rto < t.min_rto then
    invalid_arg "Params: need 0 < min_rto <= max_rto";
  if t.initial_rto < t.min_rto then invalid_arg "Params: initial_rto < min_rto";
  if t.initial_rto > t.max_rto then invalid_arg "Params: initial_rto > max_rto";
  if t.tick < 0.0 then invalid_arg "Params: negative tick";
  if t.rrr_level <= 0.0 || t.rrr_level >= 1.0 then
    invalid_arg "Params: rrr_level out of (0, 1)"
