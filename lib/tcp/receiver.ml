type t = {
  engine : Sim.Engine.t;
  flow : int;
  emit : Net.Packet.t -> unit;
  sack : bool;
  max_sack_blocks : int;
  ack_size : int;
  delayed_ack : bool;
  delack_timeout : float;
  mutable next_expected : int;
  out_of_order : Seqset.t;
  mutable last_block : (int * int) option;  (* block of most recent arrival *)
  mutable segments_received : int;
  mutable duplicates_received : int;
  mutable acks_sent : int;
  mutable uid_counter : int;
  mutable delack_pending : bool;  (* one in-order segment awaiting its ACK *)
  mutable delack_timer : Sim.Timer.t option;
}

let next_expected t = t.next_expected

let segments_received t = t.segments_received

let duplicates_received t = t.duplicates_received

let acks_sent t = t.acks_sent

let buffered t = Seqset.cardinal t.out_of_order

let sack_blocks t =
  if not t.sack then []
  else begin
    let all = Seqset.intervals t.out_of_order in
    (* Most recently updated block first, then the others ascending,
       capped at [max_sack_blocks]; reported half-open. *)
    let ordered =
      match t.last_block with
      | Some recent when List.mem recent all ->
        recent :: List.filter (fun block -> block <> recent) all
      | Some _ | None -> all
    in
    let rec take n = function
      | [] -> []
      | block :: rest -> if n = 0 then [] else block :: take (n - 1) rest
    in
    List.map
      (fun (first, last) -> (first, last + 1))
      (take t.max_sack_blocks ordered)
  end

let send_ack t =
  t.uid_counter <- t.uid_counter + 1;
  t.acks_sent <- t.acks_sent + 1;
  t.delack_pending <- false;
  Option.iter Sim.Timer.cancel t.delack_timer;
  let packet =
    Net.Packet.ack ~uid:t.uid_counter ~flow:t.flow ~ackno:(t.next_expected - 1)
      ~sack:(sack_blocks t) ~size_bytes:t.ack_size
      ~born:(Sim.Engine.now t.engine) ()
  in
  t.emit packet

let create ~engine ~flow ~emit ?(sack = false) ?(max_sack_blocks = 3)
    ?(ack_size = 40) ?(delayed_ack = false) ?(delack_timeout = 0.1) () =
  if max_sack_blocks < 1 then invalid_arg "Receiver.create: max_sack_blocks";
  if delack_timeout <= 0.0 then invalid_arg "Receiver.create: delack_timeout";
  let t =
    {
      engine;
      flow;
      emit;
      sack;
      max_sack_blocks;
      ack_size;
      delayed_ack;
      delack_timeout;
      next_expected = 0;
      out_of_order = Seqset.create ();
      last_block = None;
      segments_received = 0;
      duplicates_received = 0;
      acks_sent = 0;
      uid_counter = 0;
      delack_pending = false;
      delack_timer = None;
    }
  in
  if delayed_ack then
    t.delack_timer <-
      Some
        (Sim.Timer.create engine ~callback:(fun () ->
             if t.delack_pending then send_ack t));
  t

(* In-order arrival under delayed ACKs: acknowledge every second
   segment, or after the delack timeout. Duplicates, gaps and hole
   fills are acknowledged immediately by [deliver]. *)
let ack_in_order t =
  match t.delack_timer with
  | None -> send_ack t
  | Some timer ->
    if t.delack_pending then send_ack t
    else begin
      t.delack_pending <- true;
      Sim.Timer.restart timer ~after:t.delack_timeout
    end

let deliver t packet =
  if not (Net.Packet.is_data packet) then
    invalid_arg "Receiver.deliver: ACK packet"
  else begin
    let seq = Net.Packet.seq_exn packet in
    if seq < t.next_expected || Seqset.mem t.out_of_order seq then begin
      (* Duplicate (e.g. go-back-N resend): still acknowledged, at
         once. *)
      t.duplicates_received <- t.duplicates_received + 1;
      send_ack t
    end
    else if seq = t.next_expected then begin
      t.segments_received <- t.segments_received + 1;
      let filled_hole = not (Seqset.is_empty t.out_of_order) in
      (* Advance over any contiguous buffered segments. *)
      t.next_expected <- Seqset.first_gap_above t.out_of_order (seq + 1);
      Seqset.remove_below t.out_of_order t.next_expected;
      if Seqset.is_empty t.out_of_order then t.last_block <- None;
      if filled_hole then send_ack t else ack_in_order t
    end
    else begin
      t.segments_received <- t.segments_received + 1;
      ignore (Seqset.add t.out_of_order seq : bool);
      let block =
        List.find
          (fun (first, last) -> first <= seq && seq <= last)
          (Seqset.intervals t.out_of_order)
      in
      t.last_block <- Some block;
      (* Out-of-sequence: immediate duplicate ACK (§2.2). *)
      send_ack t
    end
  end
