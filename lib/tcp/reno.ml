open Sender_common

let enter_recovery base =
  base.counters.Counters.fast_retransmits <-
    base.counters.Counters.fast_retransmits + 1;
  base.recover_mark <- base.maxseq;
  notify_recovery_enter base;
  let target = halve_ssthresh base in
  set_cwnd base (target +. float_of_int base.params.Params.dupack_threshold);
  base.phase <- Recovery;
  base.timed <- None;
  send_segment base ~seq:(base.una + 1) ~retx:true;
  restart_rtx_timer base

let exit_recovery base =
  set_cwnd base (ssthresh base);
  base.phase <-
    (if cwnd base < ssthresh base then Slow_start else Congestion_avoidance);
  base.dupacks <- 0;
  notify_recovery_exit base

let recv_ack base ~ackno =
  if ackno > base.una then begin
    if base.phase = Recovery then begin
      (* Any new ACK — full or partial — deflates and leaves recovery. *)
      exit_recovery base;
      advance_una base ~ackno;
      send_much base
    end
    else begin
      base.dupacks <- 0;
      advance_una base ~ackno;
      open_cwnd base;
      send_much base
    end
  end
  else if ackno = base.una && outstanding base > 0 then begin
    note_dupack base;
    base.dupacks <- base.dupacks + 1;
    if base.phase = Recovery then begin
      (* Window inflation: each dup ACK signals a departure. *)
      set_cwnd base (cwnd base +. 1.0);
      send_much base
    end
    else if
      base.dupacks = base.params.Params.dupack_threshold
      && may_fast_retransmit base
    then enter_recovery base
    else limited_transmit base
  end

let timeout base =
  base.phase <- Slow_start;
  timeout_common base

let create ~engine ~params ~flow ~emit () =
  let base = create ~engine ~params ~flow ~emit ~timeout_action:timeout () in
  let deliver_ack packet =
    if Net.Packet.is_data packet then
      invalid_arg "Reno: data packet delivered to sender"
    else if not base.completed then
      recv_ack base ~ackno:(Net.Packet.ackno_exn packet)
  in
  { Agent.name = "reno"; flow; deliver_ack; base; wants_sack = false }
