type t = {
  name : string;
  flow : int;
  deliver_ack : Net.Packet.t -> unit;
  base : Sender_common.t;
  wants_sack : bool;
}

let start t = Sender_common.start t.base

let supply_data t ~segments =
  if segments < 0 then invalid_arg "Agent.supply_data: negative";
  let base = t.base in
  let current =
    match base.Sender_common.app_limit with
    | Some n -> n
    | None -> invalid_arg "Agent.supply_data: source already infinite"
  in
  Sender_common.set_app_limit base (Some (current + segments));
  Sender_common.send_much base

let supply_infinite t =
  Sender_common.set_app_limit t.base None;
  Sender_common.send_much t.base
