open Sender_common

type state = {
  mutable recover : int;
  mutable reduced : float;
      (* the un-inflated window: what cwnd will be when recovery ends.
         Dupack inflation (self-clocking) must not contaminate the
         exact decrease-by-losses arithmetic, so losses are subtracted
         here and the operational cwnd is rebuilt from it. *)
}

let enter_recovery base state =
  base.counters.Counters.fast_retransmits <-
    base.counters.Counters.fast_retransmits + 1;
  notify_recovery_enter base;
  state.recover <- base.maxseq;
  base.recover_mark <- base.maxseq;
  (* One hole is known so far; the window comes down by exactly that
     one segment — no half-cut. *)
  state.reduced <- Float.max 1.0 (window base -. 1.0);
  set_ssthresh base (Float.max 2.0 state.reduced);
  set_cwnd base
    (state.reduced +. float_of_int base.params.Params.dupack_threshold);
  base.phase <- Recovery;
  base.timed <- None;
  send_segment base ~seq:(base.una + 1) ~retx:true;
  restart_rtx_timer base

let exit_recovery base state =
  set_cwnd base state.reduced;
  set_ssthresh base (Float.max 2.0 state.reduced);
  base.phase <- Congestion_avoidance;
  base.dupacks <- 0;
  notify_recovery_exit base

let recv_ack base state ~ackno =
  if ackno > base.una then begin
    if base.phase = Recovery then begin
      if ackno >= state.recover then begin
        (* Full ACK: the window lands on cwnd-at-entry minus the exact
           number of segments repaired during this recovery. *)
        exit_recovery base state;
        advance_una base ~ackno;
        send_much base
      end
      else begin
        (* Partial ACK: one more hole, one more segment subtracted.
           Transmission mechanics are New-Reno's — deflate by the
           amount acknowledged, re-inflate by one, retransmit the next
           hole, stay in recovery. *)
        let acked = ackno - base.una in
        advance_una base ~ackno;
        state.reduced <- Float.max 1.0 (state.reduced -. 1.0);
        set_ssthresh base (Float.max 2.0 state.reduced);
        set_cwnd base (Float.max 1.0 (cwnd base -. float_of_int acked +. 1.0));
        send_segment base ~seq:(base.una + 1) ~retx:true;
        restart_rtx_timer base;
        send_much base
      end
    end
    else begin
      base.dupacks <- 0;
      advance_una base ~ackno;
      open_cwnd base;
      send_much base
    end
  end
  else if ackno = base.una && outstanding base > 0 then begin
    note_dupack base;
    base.dupacks <- base.dupacks + 1;
    if base.phase = Recovery then begin
      set_cwnd base (cwnd base +. 1.0);
      send_much base
    end
    else if
      base.dupacks = base.params.Params.dupack_threshold
      && may_fast_retransmit base
    then enter_recovery base state
    else limited_transmit base
  end

let create ~engine ~params ~flow ~emit () =
  let state = { recover = -1; reduced = 1.0 } in
  let base =
    create ~engine ~params ~flow ~emit ~timeout_action:timeout_common ()
  in
  let deliver_ack packet =
    if Net.Packet.is_data packet then
      invalid_arg "Relentless: data packet delivered to sender"
    else if not base.completed then
      recv_ack base state ~ackno:(Net.Packet.ackno_exn packet)
  in
  { Agent.name = "relentless"; flow; deliver_ack; base; wants_sack = false }
