(* For a non-negative IEEE-754 double, the bit pattern read as an
   unsigned 64-bit integer is a monotone function of the value (sign
   bit clear, biased exponent then mantissa in descending
   significance). Subtracting 2^62 recentres the unsigned range
   [0, 2^63) onto the signed native-int range [-2^62, 2^62), which
   [Int64.to_int]'s 63-bit truncation then preserves exactly — without
   the recentring, any time >= 2.0 sets bit 62 and truncation flips
   the sign, breaking the ordering. The [Int64] chains below compile
   allocation-free (unboxed externals). *)

let bias = 0x4000_0000_0000_0000L

let[@inline always] of_time (t : float) =
  Int64.to_int (Int64.sub (Int64.bits_of_float t) bias)

let[@inline always] to_time (bits : int) =
  Int64.float_of_bits (Int64.add (Int64.of_int bits) bias)
