type event = { fire : unit -> unit; mutable cancelled : bool }

type handle = event

type t = {
  mutable clock : float;
  queue : event Heap.t;
  mutable stopped : bool;
  (* Live (non-cancelled) events, so [pending] and the run loop can avoid
     being fooled by lazily-deleted cancellations. *)
  mutable live : int;
}

let create () = { clock = 0.0; queue = Heap.create (); stopped = false; live = 0 }

let now t = t.clock

let schedule_at t ~time fire =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is before now %g" time
         t.clock);
  let event = { fire; cancelled = false } in
  Heap.push t.queue ~priority:time event;
  t.live <- t.live + 1;
  event

let schedule_after t ~delay fire =
  if delay < 0.0 then invalid_arg "Engine.schedule_after: negative delay";
  schedule_at t ~time:(t.clock +. delay) fire

let cancel t handle =
  if not handle.cancelled then begin
    handle.cancelled <- true;
    t.live <- t.live - 1
  end

let pending t = t.live

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (time, event) ->
    if event.cancelled then true
    else begin
      t.live <- t.live - 1;
      t.clock <- time;
      event.fire ();
      true
    end

let run t =
  t.stopped <- false;
  let rec loop () = if (not t.stopped) && step t then loop () in
  loop ()

let run_until t ~time =
  t.stopped <- false;
  let rec loop () =
    if t.stopped then ()
    else
      match Heap.peek t.queue with
      | Some (next, _) when next <= time -> if step t then loop ()
      | Some _ | None -> ()
  in
  loop ();
  (* A stop mid-run leaves the clock at the last fired event; advancing
     it to [time] anyway would fabricate an idle period that never ran. *)
  if (not t.stopped) && time > t.clock then t.clock <- time

let stop t = t.stopped <- true
