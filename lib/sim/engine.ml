type state = Pending | Consumed | Cancelled

type event = {
  mutable fire : unit -> unit;
  mutable state : state;
  (* The scheduled firing time, duplicated here so the run loop can pop
     bare event records through the allocation-free [pop_if_before]
     path and still advance the clock. *)
  mutable time : float;
  (* Events scheduled through the no-handle fast path never escape to a
     caller, so their records can be recycled through the free list the
     moment they fire. Handle-bearing events must not be recycled: the
     caller may still hold the handle. *)
  recyclable : bool;
  mutable next_free : event;
}

type handle = event

type scheduler = [ `Calendar | `Heap ]

type queue = Q_heap of event Heap.t | Q_cal of event Calqueue.t

type t = {
  mutable clock : float;
  queue : queue;
  mutable stopped : bool;
  (* Live (non-cancelled, non-fired) events, so [pending] and the run
     loop can avoid being fooled by lazily-deleted cancellations. *)
  mutable live : int;
  mutable free : event;
}

let nop () = ()

(* Free-list terminator: a self-linked sentinel shared by all engines
   (never enqueued, never mutated). *)
let rec nil =
  { fire = nop; state = Consumed; time = 0.0; recyclable = false; next_free = nil }

let default = ref (`Calendar : scheduler)

let default_scheduler () = !default

let set_default_scheduler s = default := s

let create ?scheduler () =
  let queue =
    match match scheduler with Some s -> s | None -> !default with
    | `Heap -> Q_heap (Heap.create ())
    | `Calendar -> Q_cal (Calqueue.create ())
  in
  { clock = 0.0; queue; stopped = false; live = 0; free = nil }

let scheduler t = match t.queue with Q_heap _ -> `Heap | Q_cal _ -> `Calendar

let now t = t.clock

let qpush t ~time event =
  event.time <- time;
  match t.queue with
  | Q_heap q -> Heap.push q ~priority:time event
  | Q_cal q -> Calqueue.push q ~priority:time event

let check_time t time =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is before now %g" time
         t.clock)

let schedule_at t ~time fire =
  check_time t time;
  let event = { fire; state = Pending; time; recyclable = false; next_free = nil } in
  qpush t ~time event;
  t.live <- t.live + 1;
  event

let schedule_after t ~delay fire =
  if delay < 0.0 then invalid_arg "Engine.schedule_after: negative delay";
  schedule_at t ~time:(t.clock +. delay) fire

let schedule_unit_at t ~time fire =
  check_time t time;
  let event =
    if t.free != nil then begin
      let event = t.free in
      t.free <- event.next_free;
      event.next_free <- nil;
      event.fire <- fire;
      event.state <- Pending;
      event
    end
    else { fire; state = Pending; time; recyclable = true; next_free = nil }
  in
  qpush t ~time event;
  t.live <- t.live + 1

let schedule_unit t ~delay fire =
  if delay < 0.0 then invalid_arg "Engine.schedule_unit: negative delay";
  schedule_unit_at t ~time:(t.clock +. delay) fire

let cancel t handle =
  match handle.state with
  | Pending ->
    handle.state <- Cancelled;
    t.live <- t.live - 1
  | Consumed | Cancelled -> ()

let pending t = t.live

let fire_one t event =
  match event.state with
  | Cancelled | Consumed -> ()
  | Pending ->
    event.state <- Consumed;
    t.live <- t.live - 1;
    t.clock <- event.time;
    let fire = event.fire in
    if event.recyclable then begin
      (* Release before firing so the callback's own schedule_unit
         calls can already reuse this record. *)
      event.fire <- nop;
      event.next_free <- t.free;
      t.free <- event
    end;
    fire ()

(* The drain loops are specialized per scheduler so the hot path is a
   direct allocation-free pop per event, with the queue-representation
   branch hoisted out of the loop. *)
let run t =
  t.stopped <- false;
  match t.queue with
  | Q_heap q ->
    let rec loop () =
      if not t.stopped then begin
        let e = Heap.pop_if_before q ~limit:infinity ~default:nil in
        if e != nil then begin
          fire_one t e;
          loop ()
        end
      end
    in
    loop ()
  | Q_cal q ->
    let rec loop () =
      if not t.stopped then begin
        let e = Calqueue.pop_if_before q ~limit:infinity ~default:nil in
        if e != nil then begin
          fire_one t e;
          loop ()
        end
      end
    in
    loop ()

let run_until t ~time =
  t.stopped <- false;
  (match t.queue with
  | Q_heap q ->
    let rec loop () =
      if not t.stopped then begin
        let e = Heap.pop_if_before q ~limit:time ~default:nil in
        if e != nil then begin
          fire_one t e;
          loop ()
        end
      end
    in
    loop ()
  | Q_cal q ->
    let rec loop () =
      if not t.stopped then begin
        let e = Calqueue.pop_if_before q ~limit:time ~default:nil in
        if e != nil then begin
          fire_one t e;
          loop ()
        end
      end
    in
    loop ());
  (* A stop mid-run leaves the clock at the last fired event; advancing
     it to [time] anyway would fabricate an idle period that never ran. *)
  if (not t.stopped) && time > t.clock then t.clock <- time

let stop t = t.stopped <- true
