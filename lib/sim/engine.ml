(* The event store is the unit of the simulation hot path, so its
   representation is tuned hard. Events are not records: they are slots
   in a struct-of-arrays arena owned by the engine, and every per-event
   word is an immediate int.

   - The firing time is the IEEE-754 bit pattern of the float,
     recentred into the native 63-bit int range ([bits_of_time]). For
     non-negative times the mapping is exact and order-isomorphic, so
     queues compare and store plain ints — no boxed float per event.
   - A handle is an int packing (generation, slot). Slots are recycled
     through a free list the moment an event fires or a cancelled
     event drains; the generation check makes a stale handle's
     [cancel] a no-op instead of a misfire. Unlike the PR-3 engine,
     which could only recycle handle-less unit events, this recycles
     everything — a steady-state run allocates nothing per event, and
     an engine holding 100k pending events costs six flat arrays
     rather than 100k heap records for the GC to trace and promote.
   - Both schedulers are intrusive over the arena: calendar bucket
     chains and the free list thread through the [qnext] array, the
     heap is an int array of slots.

   The generic [Heap] and [Calqueue] modules remain the reference
   implementations (and the oracles the scheduler tests diff against);
   the specialized copies here exist because the generic ones pay an
   entry record, a boxed float and an option cell per event. *)

type handle = int

let no_slot = -1

(* Handle layout: (gen land gen_mask) lsl slot_bits lor slot. *)
let slot_bits = 31

let slot_mask = (1 lsl slot_bits) - 1

let gen_mask = (1 lsl 31) - 1

(* Meta layout: gen lsl 2 lor state; states below. *)
let state_mask = 3

let pending_tag = 0

let cancelled_tag = 2

let nop () = ()

let[@inline always] bits_of_time (t : float) = Timebits.of_time t
let[@inline always] time_of_bits (bits : int) = Timebits.to_time bits

type scheduler = [ `Calendar | `Heap ]

type heap = { mutable hdata : int array; mutable hsize : int }

type cal = {
  mutable buckets : int array;
  mutable tails : int array;
  mutable cmask : int;
  mutable width : float;
  mutable inv_width : float;
  mutable csize : int;
  (* Search position: [last_time_bits] is a lower bound on the minimum
     timestamp present and [cur_vbucket] its bucket year. *)
  mutable cur_vbucket : int;
  mutable last_time_bits : int;
  (* Monotone upper bound on every timestamp ever enqueued; with
     [last_time_bits] it bounds the occupied bucket-year span, which
     caps how far the table is worth growing. *)
  mutable max_time_bits : int;
  (* Size at which the next grow attempt triggers; doubles as a
     backoff when the span cap refuses further growth, so a fill with
     few distinct timestamps does not re-attempt on every push. *)
  mutable grow_at : int;
}

type queue = Q_heap of heap | Q_cal of cal

type t = {
  (* Parallel per-slot arrays; [cap] is their common length and slots
     [0, high) have been handed out at least once. *)
  mutable fire : (unit -> unit) array;
  mutable meta : int array;
  mutable time_bits : int array;
  mutable qseq : int array;
  mutable vbucket : int array;
  (* Calendar chain link, and the free-list link while a slot is
     parked: a slot is never simultaneously queued and free. *)
  mutable qnext : int array;
  mutable cap : int;
  mutable high : int;
  mutable free_head : int;
  queue : queue;
  mutable clock_bits : int;
  mutable stopped : bool;
  (* Live (non-cancelled, non-fired) events, so [pending] and callers
     are not fooled by lazily-deleted cancellations still queued. *)
  mutable live : int;
  mutable next_seq : int;
}

(* Slot [a] fires before slot [b]: strictly earlier time, or same time
   and earlier insertion — the stable-FIFO contract of the generic
   queues. *)
let[@inline always] before t a b =
  let tb = t.time_bits in
  let ta = Array.unsafe_get tb a and tbb = Array.unsafe_get tb b in
  ta < tbb
  || (ta = tbb && Array.unsafe_get t.qseq a < Array.unsafe_get t.qseq b)

(* -- arena -- *)

let initial_cap = 64

let grow_arena t =
  let cap = 2 * t.cap in
  let fire = Array.make cap nop in
  Array.blit t.fire 0 fire 0 t.cap;
  let copy a =
    let fresh = Array.make cap 0 in
    Array.blit a 0 fresh 0 t.cap;
    fresh
  in
  t.fire <- fire;
  t.meta <- copy t.meta;
  t.time_bits <- copy t.time_bits;
  t.qseq <- copy t.qseq;
  t.vbucket <- copy t.vbucket;
  t.qnext <- copy t.qnext;
  t.cap <- cap

let[@inline] alloc_slot t =
  let s = t.free_head in
  if s >= 0 then begin
    t.free_head <- Array.unsafe_get t.qnext s;
    s
  end
  else begin
    if t.high = t.cap then grow_arena t;
    let s = t.high in
    t.high <- s + 1;
    s
  end

(* Bump the generation so stale handles to this slot die, drop the
   closure reference, park on the free list. Setting the low state
   bits before the increment both carries into the generation field
   and leaves the fresh state at zero (= pending). *)
let[@inline] free_slot t s =
  Array.unsafe_set t.fire s nop;
  Array.unsafe_set t.meta s ((Array.unsafe_get t.meta s lor state_mask) + 1);
  Array.unsafe_set t.qnext s t.free_head;
  t.free_head <- s

(* -- specialized binary heap over slots -- *)

let heap_create () = { hdata = Array.make 16 no_slot; hsize = 0 }

let heap_grow h =
  let fresh = Array.make (2 * Array.length h.hdata) no_slot in
  Array.blit h.hdata 0 fresh 0 h.hsize;
  h.hdata <- fresh

let rec heap_sift_up t h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    let d = h.hdata in
    let ei = Array.unsafe_get d i and ep = Array.unsafe_get d parent in
    if before t ei ep then begin
      Array.unsafe_set d i ep;
      Array.unsafe_set d parent ei;
      heap_sift_up t h parent
    end
  end

let rec heap_sift_down t h i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let d = h.hdata in
  let smallest = ref i in
  if
    left < h.hsize
    && before t (Array.unsafe_get d left) (Array.unsafe_get d !smallest)
  then smallest := left;
  if
    right < h.hsize
    && before t (Array.unsafe_get d right) (Array.unsafe_get d !smallest)
  then smallest := right;
  if !smallest <> i then begin
    let tmp = Array.unsafe_get d i in
    Array.unsafe_set d i (Array.unsafe_get d !smallest);
    Array.unsafe_set d !smallest tmp;
    heap_sift_down t h !smallest
  end

let[@inline] heap_push t h s =
  if h.hsize = Array.length h.hdata then heap_grow h;
  h.hdata.(h.hsize) <- s;
  h.hsize <- h.hsize + 1;
  heap_sift_up t h (h.hsize - 1)

(* Pop the minimum if it fires at or before [limit_bits]; [no_slot]
   otherwise. *)
let heap_pop_if_before t h ~limit_bits =
  if h.hsize = 0 then no_slot
  else begin
    let s = Array.unsafe_get h.hdata 0 in
    if Array.unsafe_get t.time_bits s > limit_bits then no_slot
    else begin
      h.hsize <- h.hsize - 1;
      if h.hsize > 0 then begin
        h.hdata.(0) <- h.hdata.(h.hsize);
        heap_sift_down t h 0
      end;
      s
    end
  end

(* -- specialized calendar queue (ns-2 style, see Calqueue for the
   commented generic version) with chains through the arena -- *)

let min_buckets = 8

let cal_create () =
  {
    buckets = Array.make min_buckets no_slot;
    tails = Array.make min_buckets no_slot;
    cmask = min_buckets - 1;
    width = 1.0;
    inv_width = 1.0;
    csize = 0;
    cur_vbucket = 0;
    last_time_bits = bits_of_time 0.0;
    max_time_bits = bits_of_time 0.0;
    grow_at = 2 * min_buckets;
  }

let[@inline always] vbucket_of c time = int_of_float (time *. c.inv_width)

(* Insert into the sorted chain of the slot's bucket; the common case
   is an O(1) tail append. *)
let[@inline] cal_insert t c s =
  let i = Array.unsafe_get t.vbucket s land c.cmask in
  let tail = Array.unsafe_get c.tails i in
  let qnext = t.qnext in
  if tail = no_slot then begin
    Array.unsafe_set qnext s no_slot;
    Array.unsafe_set c.buckets i s;
    Array.unsafe_set c.tails i s
  end
  else if before t tail s then begin
    Array.unsafe_set qnext s no_slot;
    Array.unsafe_set qnext tail s;
    Array.unsafe_set c.tails i s
  end
  else begin
    let head = Array.unsafe_get c.buckets i in
    if before t s head then begin
      Array.unsafe_set qnext s head;
      Array.unsafe_set c.buckets i s
    end
    else begin
      (* s is after head and before tail: lands strictly inside, tail
         pointer untouched. (While-loop, not a local recursive
         function: the non-flambda backend heap-allocates a closure
         per call for the latter, and this is the hot path.) *)
      let prev = ref head in
      let n = ref (Array.unsafe_get qnext head) in
      while !n <> no_slot && before t !n s do
        prev := !n;
        n := Array.unsafe_get qnext !n
      done;
      Array.unsafe_set qnext s !n;
      Array.unsafe_set qnext !prev s
    end
  end

(* Width adaptation: a global average gap, then the observed density
   within ~64 global-gap units of the minimum (same heuristic as
   Calqueue.estimate_width). Unlike the generic version this scans a
   bounded PREFIX of the chain: pop order is fixed by (time, seq)
   regardless of bucket layout, so width only affects speed and a
   sample is plenty — full passes over a 100k-entry chain were the
   dominant rebuild cost. The chain is bucket-ordered, so a prefix
   mixes bucket residues rather than favouring early timestamps. *)
let width_sample = 2048

(* Iterate up to [width_sample] queued slots (bucket by bucket) calling
   [f time]. The traversal order mixes bucket residues, so the sample
   is not biased toward early timestamps. *)
let cal_iter_sample t c f =
  let budget = ref width_sample in
  let b = ref 0 in
  while !budget > 0 && !b <= c.cmask do
    let s = ref c.buckets.(!b) in
    while !budget > 0 && !s <> no_slot do
      f (time_of_bits t.time_bits.(!s));
      decr budget;
      s := t.qnext.(!s)
    done;
    incr b
  done

(* Estimate a bucket width from a bounded sample, and report whether
   the population is duplicate-heavy. Two regimes:

   - Duplicate-heavy (>= 75% of sampled entries repeat an already-seen
     timestamp): chains of same-time events are long, so the quantity
     that matters is distinct timestamps per bucket, not events per
     bucket — two distinct times sharing a bucket turn every push into
     an O(chain) interior insert. Pick half the smallest adjacent
     distinct gap so each timestamp gets its own bucket, and tell the
     caller to cap table growth by the occupied span (more buckets
     than the span just add cache-hostile empty space).
   - Otherwise the classic ns-2 rule: 3x the mean gap over a local
     density window, uncapped. This is the continuous-timestamp case
     the calendar queue was designed for.

   Returns [(width, duplicate_heavy)]. *)
let cal_estimate t c =
  let lo = ref infinity and hi = ref neg_infinity and n = ref 0 in
  let distinct = ref 0 and min_gap = ref infinity in
  let budget = ref width_sample and b = ref 0 in
  (* Same-time events are adjacent in the iteration order (chains are
     sorted by (time, seq) and one timestamp never spans two buckets),
     so a single previous-entry register dedupes and yields adjacent
     distinct gaps. Carried across buckets: negative cross-bucket or
     cross-year jumps are skipped for the gap but still break runs. *)
  let prev = ref neg_infinity in
  while !budget > 0 && !b <= c.cmask do
    let s = ref c.buckets.(!b) in
    while !budget > 0 && !s <> no_slot do
      let time = time_of_bits t.time_bits.(!s) in
      if time < !lo then lo := time;
      if time > !hi then hi := time;
      if time <> !prev then begin
        incr distinct;
        let gap = time -. !prev in
        if !prev > neg_infinity && gap > 0.0 && gap < !min_gap then
          min_gap := gap
      end;
      prev := time;
      incr n;
      decr budget;
      s := t.qnext.(!s)
    done;
    incr b
  done;
  if !n < 2 || !hi <= !lo then (c.width, false)
  else if
    4 * !distinct <= !n
    && !distinct >= 2
    && !min_gap > 0.0
    && !min_gap < infinity
  then (0.5 *. !min_gap, true)
  else begin
    let global_gap = (!hi -. !lo) /. float_of_int (!n - 1) in
    let window = !lo +. (64.0 *. global_gap) in
    let in_window = ref 0 and wide = ref !lo in
    cal_iter_sample t c (fun time ->
        if time <= window then begin
          incr in_window;
          if time > !wide then wide := time
        end);
    let span = !wide -. !lo in
    if span > 0.0 && !in_window >= 2 then
      (3.0 *. span /. float_of_int (!in_window - 1), false)
    else (3.0 *. global_gap, false)
  end

(* Next power of two >= n (n >= 1). *)
let pow2_at_least n =
  let p = ref min_buckets in
  while !p < n do
    p := !p * 2
  done;
  !p

(* Resize to [nbuckets], optionally re-estimating the width first.
   Pop order never depends on bucket layout, so the width policy is
   free to trade estimation fidelity for rebuild cost:

   - If the fresh estimate lands within a small band of the current
     width, keep the current width. Stored [vbucket] values then stay
     valid, and when the table is growing, each old bucket splits into
     disjoint new buckets, so the whole rebuild is a blind tail-append
     pass — no float decode, no comparisons. This is the common case
     once the width has converged, and it is what keeps large grows
     from dominating the push path.
   - Otherwise recompute every slot's virtual bucket and sorted-insert
     (also the shrink-with-merge case, where two old chains can land
     in one new bucket and must interleave). *)
let cal_rebuild t c ~nbuckets ~keep_width =
  let old_buckets = c.buckets in
  let old_n = c.cmask + 1 in
  c.buckets <- Array.make nbuckets no_slot;
  c.tails <- Array.make nbuckets no_slot;
  c.cmask <- nbuckets - 1;
  c.cur_vbucket <- vbucket_of c (time_of_bits c.last_time_bits);
  if keep_width && nbuckets >= old_n then begin
    let buckets = c.buckets and tails = c.tails and qnext = t.qnext in
    let vbucket = t.vbucket in
    for b = 0 to old_n - 1 do
      let cursor = ref old_buckets.(b) in
      while !cursor <> no_slot do
        let s = !cursor in
        cursor := Array.unsafe_get qnext s;
        let i = Array.unsafe_get vbucket s land c.cmask in
        let tail = Array.unsafe_get tails i in
        if tail = no_slot then Array.unsafe_set buckets i s
        else Array.unsafe_set qnext tail s;
        Array.unsafe_set tails i s;
        Array.unsafe_set qnext s no_slot
      done
    done
  end
  else
    for b = 0 to old_n - 1 do
      let cursor = ref old_buckets.(b) in
      while !cursor <> no_slot do
        let s = !cursor in
        cursor := t.qnext.(s);
        if not keep_width then
          t.vbucket.(s) <- vbucket_of c (time_of_bits t.time_bits.(s));
        cal_insert t c s
      done
    done

(* Grow (or, in the duplicate-heavy regime, right-size) the table.
   The width is decided FIRST and the span cap derived from that same
   width — deriving the cap from the old width and then re-estimating
   inside the rebuild lets the span outgrow the capped table, which
   forces distinct timestamps to share buckets and turns pushes into
   O(chain) walks. When the cap refuses growth, back off to the next
   doubling of [csize] so re-attempts stay amortized, not per-push. *)
let cal_grow t c =
  let w, dup_heavy = cal_estimate t c in
  let keep = w >= 0.8 *. c.width && w <= 1.25 *. c.width in
  let old_n = c.cmask + 1 in
  let target =
    if dup_heavy then begin
      let span =
        (time_of_bits c.max_time_bits -. time_of_bits c.last_time_bits) /. w
      in
      if span <= 1e6 then
        min (4 * old_n) (pow2_at_least (2 * (int_of_float span + 1)))
      else 4 * old_n
    end
    else 4 * old_n
  in
  if target > old_n || (dup_heavy && not keep) then begin
    if not keep then begin
      c.width <- w;
      c.inv_width <- 1.0 /. w
    end;
    cal_rebuild t c ~nbuckets:(max min_buckets target) ~keep_width:keep;
    c.grow_at <-
      (if (not dup_heavy) && target = 4 * old_n then 2 * target
       else 2 * c.csize)
  end
  else c.grow_at <- 2 * c.csize

let[@inline] cal_push t c s =
  let bits = Array.unsafe_get t.time_bits s in
  let vb = vbucket_of c (time_of_bits bits) in
  Array.unsafe_set t.vbucket s vb;
  cal_insert t c s;
  c.csize <- c.csize + 1;
  if bits < c.last_time_bits then begin
    c.last_time_bits <- bits;
    c.cur_vbucket <- vb
  end;
  if bits > c.max_time_bits then c.max_time_bits <- bits;
  if c.csize > c.grow_at then cal_grow t c

(* Locate the minimum entry: sweep bucket years from the current
   position; a bucket's head is in year [vb] exactly when its
   precomputed [vbucket] equals [vb]. A fruitless full round means
   everything is far in the future — find the earliest head directly
   and jump the search position there. *)
let[@inline] cal_find_min t c =
  let nbuckets = c.cmask + 1 in
  let buckets = c.buckets and vbucket = t.vbucket in
  let found = ref no_slot in
  let vb = ref c.cur_vbucket in
  let step = ref 0 in
  while !found = no_slot && !step < nbuckets do
    let head = Array.unsafe_get buckets (!vb land c.cmask) in
    if head <> no_slot && Array.unsafe_get vbucket head = !vb then
      found := head
    else begin
      incr step;
      incr vb
    end
  done;
  let h = !found in
  if h <> no_slot then begin
    c.cur_vbucket <- !vb;
    c.last_time_bits <- Array.unsafe_get t.time_bits h;
    h
  end
  else begin
    (* Fruitless full round: everything is far in the future. Find the
       earliest head directly and jump the search position there. *)
    let best = ref no_slot in
    for i = 0 to c.cmask do
      let h = Array.unsafe_get buckets i in
      if h <> no_slot && (!best = no_slot || before t h !best) then best := h
    done;
    let h = !best in
    assert (h <> no_slot);
    c.cur_vbucket <- Array.unsafe_get vbucket h;
    c.last_time_bits <- Array.unsafe_get t.time_bits h;
    h
  end

let[@inline] cal_remove_min t c s =
  let i = Array.unsafe_get t.vbucket s land c.cmask in
  let next = Array.unsafe_get t.qnext s in
  Array.unsafe_set c.buckets i next;
  if next = no_slot then Array.unsafe_set c.tails i no_slot;
  c.csize <- c.csize - 1;
  let nbuckets = c.cmask + 1 in
  if nbuckets > min_buckets && c.csize < nbuckets / 8 then begin
    (* Keep the width: a draining queue thins out, but the spacing of
       what remains was estimated from the same population. *)
    let fresh = pow2_at_least (2 * c.csize) in
    cal_rebuild t c ~nbuckets:fresh ~keep_width:true;
    c.grow_at <- 2 * fresh
  end

let cal_pop_if_before t c ~limit_bits =
  if c.csize = 0 then no_slot
  else begin
    let s = cal_find_min t c in
    if Array.unsafe_get t.time_bits s > limit_bits then no_slot
    else begin
      cal_remove_min t c s;
      s
    end
  end

(* -- the engine proper -- *)

let default = ref (`Calendar : scheduler)

let default_scheduler () = !default

let set_default_scheduler s = default := s

let create ?scheduler () =
  let queue =
    match match scheduler with Some s -> s | None -> !default with
    | `Heap -> Q_heap (heap_create ())
    | `Calendar -> Q_cal (cal_create ())
  in
  {
    fire = Array.make initial_cap nop;
    meta = Array.make initial_cap 0;
    time_bits = Array.make initial_cap 0;
    qseq = Array.make initial_cap 0;
    vbucket = Array.make initial_cap 0;
    qnext = Array.make initial_cap no_slot;
    cap = initial_cap;
    high = 0;
    free_head = no_slot;
    queue;
    clock_bits = bits_of_time 0.0;
    stopped = false;
    live = 0;
    next_seq = 0;
  }

let scheduler t = match t.queue with Q_heap _ -> `Heap | Q_cal _ -> `Calendar

let now t = time_of_bits t.clock_bits

(* Claim a slot, arm it as pending (generation preserved) at the time
   whose encoding is [bits], and enqueue it. Taking the already-encoded
   time keeps the whole schedule path free of float values that would
   otherwise be boxed at each internal call boundary. *)
let[@inline] arm t bits fire =
  let s = alloc_slot t in
  Array.unsafe_set t.fire s fire;
  Array.unsafe_set t.time_bits s bits;
  Array.unsafe_set t.qseq s t.next_seq;
  t.next_seq <- t.next_seq + 1;
  t.live <- t.live + 1;
  (match t.queue with
  | Q_heap q -> heap_push t q s
  | Q_cal q -> cal_push t q s);
  s

(* Validate and encode a firing time. The [time >= 0.0] guard also
   excludes NaN; the bit encoding is only meaningful for non-negative
   times. *)
let[@inline] checked_bits t time =
  let bits = bits_of_time time in
  if not (time >= 0.0) || bits < t.clock_bits then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is before now %g" time
         (now t));
  bits

let[@inline] pack_handle t s =
  ((Array.unsafe_get t.meta s lsr 2) land gen_mask) lsl slot_bits lor s

let schedule_at t ~time fire = pack_handle t (arm t (checked_bits t time) fire)

let schedule_after t ~delay fire =
  if delay < 0.0 then invalid_arg "Engine.schedule_after: negative delay";
  let time = now t +. delay in
  pack_handle t (arm t (checked_bits t time) fire)

let schedule_unit_at t ~time fire =
  ignore (arm t (checked_bits t time) fire : int)

let schedule_unit t ~delay fire =
  if delay < 0.0 then invalid_arg "Engine.schedule_unit: negative delay";
  let time = now t +. delay in
  ignore (arm t (checked_bits t time) fire : int)

let cancel t handle =
  let s = handle land slot_mask in
  if s < t.high then begin
    let meta = Array.unsafe_get t.meta s in
    if
      meta land state_mask = pending_tag
      && (meta lsr 2) land gen_mask = handle lsr slot_bits
    then begin
      (* Lazy delete: mark it dead and let the queue drain it; the
         slot recycles (and the generation bumps) at that point. *)
      Array.unsafe_set t.meta s
        ((meta land lnot state_mask) lor cancelled_tag);
      t.live <- t.live - 1
    end
  end

let pending t = t.live

(* Fire (or silently drain, if cancelled) a slot popped from the
   queue. The slot is released before the callback runs so the
   callback's own scheduling reuses it immediately. *)
let[@inline] fire_slot t s =
  if Array.unsafe_get t.meta s land state_mask = pending_tag then begin
    t.live <- t.live - 1;
    t.clock_bits <- Array.unsafe_get t.time_bits s;
    let fire = Array.unsafe_get t.fire s in
    free_slot t s;
    fire ()
  end
  else free_slot t s

(* The drain loops are specialized per scheduler so the hot path is a
   direct allocation-free pop per event, with the queue-representation
   branch hoisted out of the loop. *)
let drain t ~limit_bits =
  match t.queue with
  | Q_heap q ->
    let rec loop () =
      if not t.stopped then begin
        let s = heap_pop_if_before t q ~limit_bits in
        if s <> no_slot then begin
          fire_slot t s;
          loop ()
        end
      end
    in
    loop ()
  | Q_cal q ->
    let rec loop () =
      if not t.stopped then begin
        let s = cal_pop_if_before t q ~limit_bits in
        if s <> no_slot then begin
          fire_slot t s;
          loop ()
        end
      end
    in
    loop ()

let run t =
  t.stopped <- false;
  drain t ~limit_bits:(bits_of_time infinity)

let run_until t ~time =
  t.stopped <- false;
  let limit_bits = bits_of_time time in
  drain t ~limit_bits;
  (* A stop mid-run leaves the clock at the last fired event; advancing
     it to [time] anyway would fabricate an idle period that never ran. *)
  if (not t.stopped) && limit_bits > t.clock_bits then
    t.clock_bits <- limit_bits

let stop t = t.stopped <- true
