type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

(* SplitMix64 output mixing (Steele, Lea & Flood 2014). *)
let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = bits64 t in
  (* Mix once more so parent and child sequences do not overlap. *)
  { state = mix seed }

let float t =
  (* 53 high-quality bits mapped to [0, 1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let float_range t ~lo ~hi =
  assert (lo < hi);
  lo +. ((hi -. lo) *. float t)

let int t n =
  assert (n > 0);
  (* Rejection sampling to avoid modulo bias. *)
  let n64 = Int64.of_int n in
  let rec draw () =
    let bits = Int64.shift_right_logical (bits64 t) 1 in
    let value = Int64.rem bits n64 in
    if Int64.(sub bits value > sub (sub max_int n64) 1L) then draw ()
    else Int64.to_int value
  in
  draw ()

let bool t = Int64.(logand (bits64 t) 1L) = 1L

let bernoulli t p =
  if p <= 0.0 then false else if p >= 1.0 then true else float t < p

let exponential t ~mean =
  assert (mean > 0.0);
  let u = float t in
  (* u = 0 would give infinity; 1 - u is in (0, 1]. *)
  -.mean *. log (1.0 -. u)

let pareto t ~shape ~scale =
  assert (shape > 0.0);
  assert (scale > 0.0);
  let u = float t in
  (* u = 0 would give infinity; 1 - u is in (0, 1]. *)
  scale /. ((1.0 -. u) ** (1.0 /. shape))
