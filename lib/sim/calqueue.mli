(** Calendar queue (Brown 1988, as in the ns-2 scheduler): bucketed
    event ring with dynamic resizing and bucket-width adaptation.

    Same contract as {!Heap} — elements ordered by a [float] priority
    and, within equal priorities, by insertion order (stable FIFO) —
    but [push]/[pop] are O(1) amortized instead of O(log n), which is
    what makes large event populations (saturated links, wide sweeps)
    scheduler-cheap. The bucket count doubles and halves with the
    population and the bucket width is re-estimated from observed
    inter-event gaps at every resize. *)

type 'a t

(** [create ?width ()] returns an empty queue. [width] seeds the bucket
    width in priority units before the first adaptive resize.

    @raise Invalid_argument if [width <= 0]. *)
val create : ?width:float -> unit -> 'a t

(** [length t] is the number of elements currently stored. *)
val length : 'a t -> int

(** [is_empty t] is [length t = 0]. *)
val is_empty : 'a t -> bool

(** [push t ~priority v] inserts [v]. *)
val push : 'a t -> priority:float -> 'a -> unit

(** [peek t] returns the minimum element without removing it, or [None]
    if the queue is empty. *)
val peek : 'a t -> (float * 'a) option

(** [pop t] removes and returns the minimum element, or [None] if the
    queue is empty. *)
val pop : 'a t -> (float * 'a) option

(** [pop_if_before t ~limit ~default] removes and returns the minimum
    element if its priority is [<= limit]; otherwise leaves the queue
    untouched and returns [default]. Allocation-free: the hot path of
    the event loop, where per-event [option] and tuple cells would be
    pure garbage. *)
val pop_if_before : 'a t -> limit:float -> default:'a -> 'a

(** [clear t] removes all elements and resets the insertion-order
    state, so a reused queue behaves like a fresh one. *)
val clear : 'a t -> unit
