(** Order-preserving integer encoding of non-negative timestamps.

    [of_time] maps every non-negative double (including [+infinity])
    onto a native 63-bit int such that [t1 <= t2] iff
    [of_time t1 <= of_time t2], and [to_time] inverts it exactly. This
    lets hot paths store, compare and sort timestamps as immediate
    ints — no boxing, no float compares — and lets binary record
    formats serialize them as plain integers.

    The encoding is the IEEE-754 bit pattern recentred by [2^62]:
    non-negative doubles order the same as their bit patterns taken as
    unsigned 64-bit ints, and subtracting [2^62] maps that unsigned
    range [0, 2^63) exactly onto the signed native-int range without
    touching relative order. Negative inputs and NaN are not
    meaningful under this encoding; callers validate first. *)

(** [of_time t] encodes a non-negative timestamp. *)
val of_time : float -> int

(** [to_time bits] decodes; exact inverse of {!of_time} on
    non-negative inputs. *)
val to_time : int -> float
