(** Deterministic pseudo-random number generation for simulations.

    Every stochastic component of the simulator draws from an explicit
    [Rng.t] stream so that a run is reproducible from its seed alone and
    independent streams can be split off for independent components
    (e.g. one stream per RED queue). The generator is SplitMix64, which
    has a 64-bit state, passes BigCrush, and supports cheap splitting. *)

type t

(** [create seed] returns a fresh generator stream. Equal seeds produce
    equal streams. *)
val create : int64 -> t

(** [split t] derives a new, statistically independent stream from [t],
    advancing [t]. Use it to give sub-components their own streams. *)
val split : t -> t

(** [bits64 t] returns the next raw 64 random bits. *)
val bits64 : t -> int64

(** [float t] draws uniformly from [\[0, 1)]. *)
val float : t -> float

(** [float_range t ~lo ~hi] draws uniformly from [\[lo, hi)].
    Requires [lo < hi]. *)
val float_range : t -> lo:float -> hi:float -> float

(** [int t n] draws uniformly from [\[0, n)]. Requires [n > 0]. *)
val int : t -> int -> int

(** [bool t] draws a fair coin flip. *)
val bool : t -> bool

(** [bernoulli t p] returns [true] with probability [p] (clamped to
    [\[0, 1\]]). *)
val bernoulli : t -> float -> bool

(** [exponential t ~mean] draws from the exponential distribution with
    the given mean. Requires [mean > 0]. *)
val exponential : t -> mean:float -> float

(** [pareto t ~shape ~scale] draws from the Pareto (type I) distribution
    with tail index [shape] and minimum value [scale] — the heavy-tailed
    law of web-transfer sizes and on/off burst lengths. The mean is
    [scale * shape / (shape - 1)] for [shape > 1] (infinite otherwise).
    Requires [shape > 0] and [scale > 0]. *)
val pareto : t -> shape:float -> scale:float -> float
