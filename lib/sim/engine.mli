(** Discrete-event simulation engine.

    An engine owns virtual time and a queue of pending events. Components
    schedule closures to run at future instants; [run] drains the queue in
    time order (stable for simultaneous events) and advances the clock.
    Engines are ordinary values — no global state — so tests can run many
    independent simulations in one process. *)

type t

(** Cancellation handle for a scheduled event. *)
type handle

(** [create ()] returns an engine with the clock at time 0. *)
val create : unit -> t

(** [now t] is the current virtual time in seconds. *)
val now : t -> float

(** [schedule_at t ~time f] runs [f ()] when the clock reaches [time].
    [time] must not be in the past.

    @raise Invalid_argument if [time < now t]. *)
val schedule_at : t -> time:float -> (unit -> unit) -> handle

(** [schedule_after t ~delay f] runs [f ()] after [delay] seconds.
    [delay] must be non-negative. *)
val schedule_after : t -> delay:float -> (unit -> unit) -> handle

(** [cancel t handle] prevents the event from firing. Cancelling an event
    that already fired or was already cancelled is a no-op. *)
val cancel : t -> handle -> unit

(** [pending t] is the number of events still queued (including cancelled
    ones not yet discarded). *)
val pending : t -> int

(** [run t] processes events until the queue is empty. *)
val run : t -> unit

(** [run_until t ~time] processes events with timestamps [<= time], then
    sets the clock to [time]. If {!stop} was called mid-run, the clock
    stays at the last fired event instead. *)
val run_until : t -> time:float -> unit

(** [stop t] makes the current [run]/[run_until] return after the event
    being processed completes. *)
val stop : t -> unit
