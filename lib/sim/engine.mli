(** Discrete-event simulation engine.

    An engine owns virtual time and a queue of pending events. Components
    schedule closures to run at future instants; [run] drains the queue in
    time order (stable for simultaneous events) and advances the clock.
    Engines are ordinary values — no global state beyond the configurable
    default scheduler — so tests can run many independent simulations in
    one process. *)

type t

(** Cancellation handle for a scheduled event. *)
type handle

(** Event-queue implementation: [`Calendar] is the ns-2-style calendar
    queue (O(1) amortized operations, the default), [`Heap] the binary
    heap. Both fire identical (time, insertion-order) sequences; the
    choice is purely a performance knob. *)
type scheduler = [ `Calendar | `Heap ]

(** [default_scheduler ()] is the scheduler picked by {!create} when
    none is passed explicitly. *)
val default_scheduler : unit -> scheduler

(** [set_default_scheduler s] changes the process-wide default, for
    front ends (e.g. [rr-sim --scheduler]) that build engines deep
    inside experiment code. *)
val set_default_scheduler : scheduler -> unit

(** [create ?scheduler ()] returns an engine with the clock at time 0.
    [scheduler] defaults to {!default_scheduler}[ ()]. *)
val create : ?scheduler:scheduler -> unit -> t

(** [scheduler t] reports which queue implementation [t] runs on. *)
val scheduler : t -> scheduler

(** [now t] is the current virtual time in seconds. *)
val now : t -> float

(** [schedule_at t ~time f] runs [f ()] when the clock reaches [time].
    [time] must not be in the past.

    @raise Invalid_argument if [time < now t]. *)
val schedule_at : t -> time:float -> (unit -> unit) -> handle

(** [schedule_after t ~delay f] runs [f ()] after [delay] seconds.
    [delay] must be non-negative. *)
val schedule_after : t -> delay:float -> (unit -> unit) -> handle

(** [schedule_unit_at t ~time f] is {!schedule_at} for fire-and-forget
    events: no cancellation handle is returned, which lets the engine
    recycle the event record through an internal free list. This is the
    allocation-free fast path for the per-packet events of the hot
    simulation loop.

    @raise Invalid_argument if [time < now t]. *)
val schedule_unit_at : t -> time:float -> (unit -> unit) -> unit

(** [schedule_unit t ~delay f] is {!schedule_after} without a handle;
    see {!schedule_unit_at}. *)
val schedule_unit : t -> delay:float -> (unit -> unit) -> unit

(** [cancel t handle] prevents the event from firing. Cancelling an
    event that already fired or was already cancelled is a no-op (and
    in particular does not disturb {!pending}). *)
val cancel : t -> handle -> unit

(** [pending t] is the number of events still scheduled to fire
    (cancelled and already-fired events are not counted). *)
val pending : t -> int

(** [run t] processes events until the queue is empty. *)
val run : t -> unit

(** [run_until t ~time] processes events with timestamps [<= time], then
    sets the clock to [time]. If {!stop} was called mid-run, the clock
    stays at the last fired event instead. *)
val run_until : t -> time:float -> unit

(** [stop t] makes the current [run]/[run_until] return after the event
    being processed completes. *)
val stop : t -> unit
