(** Unit helpers shared across the simulator.

    The simulator's base units are seconds, bytes and bits per second.
    These helpers keep scenario definitions readable ([Units.mbps 0.8]
    rather than [800_000.0]) and conversions explicit. *)

(** [ms x] is [x] milliseconds in seconds. *)
val ms : float -> float

(** [us x] is [x] microseconds in seconds. *)
val us : float -> float

(** [kbps x] is [x] kilobits per second in bits per second. *)
val kbps : float -> float

(** [mbps x] is [x] megabits per second in bits per second. *)
val mbps : float -> float

(** [kilobytes x] is [x] kB in bytes. *)
val kilobytes : float -> int

(** [transmission_time ~size_bytes ~bandwidth_bps] is the serialization
    delay of a packet of [size_bytes] on a link of [bandwidth_bps]. *)
val transmission_time : size_bytes:int -> bandwidth_bps:float -> float

(** [bits_of_bytes n] is [8 * n] as a float. *)
val bits_of_bytes : int -> float
