let ms x = x /. 1000.0

let us x = x /. 1_000_000.0

let kbps x = x *. 1_000.0

let mbps x = x *. 1_000_000.0

let kilobytes x = int_of_float (x *. 1000.0)

let bits_of_bytes n = 8.0 *. float_of_int n

let transmission_time ~size_bytes ~bandwidth_bps =
  assert (bandwidth_bps > 0.0);
  bits_of_bytes size_bytes /. bandwidth_bps
