(** Growable binary min-heap, the storage backing the event queue.

    Elements are ordered by a user-supplied priority of type [float] and,
    within equal priorities, by insertion order (stable), which is what a
    deterministic discrete-event simulator needs: two events scheduled for
    the same instant fire in the order they were scheduled. *)

type 'a t

(** [create ()] returns an empty heap. *)
val create : unit -> 'a t

(** [length t] is the number of elements currently stored. *)
val length : 'a t -> int

(** [is_empty t] is [length t = 0]. *)
val is_empty : 'a t -> bool

(** [push t ~priority v] inserts [v]. *)
val push : 'a t -> priority:float -> 'a -> unit

(** [peek t] returns the minimum element without removing it, or [None]
    if the heap is empty. *)
val peek : 'a t -> (float * 'a) option

(** [pop t] removes and returns the minimum element, or [None] if the
    heap is empty. *)
val pop : 'a t -> (float * 'a) option

(** [pop_if_before t ~limit ~default] removes and returns the minimum
    element if its priority is [<= limit]; otherwise leaves the heap
    untouched and returns [default]. Allocation-free: the hot path of
    the event loop, where per-event [option] and tuple cells would be
    pure garbage. *)
val pop_if_before : 'a t -> limit:float -> default:'a -> 'a

(** [clear t] removes all elements and resets the insertion-order
    state, so a reused heap behaves like a fresh one. *)
val clear : 'a t -> unit
