type 'a entry = { priority : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }

let length t = t.size

let is_empty t = t.size = 0

(* [a] comes before [b] when it has strictly lower priority, or equal
   priority and earlier insertion: this makes ties stable. *)
let precedes a b =
  a.priority < b.priority || (a.priority = b.priority && a.seq < b.seq)

let grow t =
  let capacity = max 16 (2 * Array.length t.data) in
  let fresh = Array.make capacity t.data.(0) in
  Array.blit t.data 0 fresh 0 t.size;
  t.data <- fresh

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if precedes t.data.(i) t.data.(parent) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = ref i in
  if left < t.size && precedes t.data.(left) t.data.(!smallest) then
    smallest := left;
  if right < t.size && precedes t.data.(right) t.data.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t ~priority value =
  let entry = { priority; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  if t.size = 0 && Array.length t.data = 0 then t.data <- Array.make 16 entry;
  if t.size = Array.length t.data then grow t;
  t.data.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t =
  if t.size = 0 then None
  else
    let entry = t.data.(0) in
    Some (entry.priority, entry.value)

let pop t =
  if t.size = 0 then None
  else begin
    let entry = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some (entry.priority, entry.value)
  end

let pop_if_before t ~limit ~default =
  if t.size = 0 then default
  else begin
    let entry = t.data.(0) in
    if entry.priority > limit then default
    else begin
      t.size <- t.size - 1;
      if t.size > 0 then begin
        t.data.(0) <- t.data.(t.size);
        sift_down t 0
      end;
      entry.value
    end
  end

let clear t =
  t.size <- 0;
  t.data <- [||];
  (* Reset the tie-order state too: a reused heap must behave exactly
     like a fresh one, or cleared-and-reused engines would carry
     insertion-order history across runs. *)
  t.next_seq <- 0
