(* ns-2-style calendar queue (Brown 1988): an array of bucket "days"
   that the virtual clock sweeps cyclically, each bucket holding a
   sorted linked list of the events whose timestamps fall into any
   "year" of that day. With the bucket width adapted to the observed
   inter-event gap, enqueue and dequeue-min are O(1) amortized instead
   of the binary heap's O(log n).

   Tie order: every entry carries an insertion sequence number and all
   comparisons are on (time, seq), so equal-timestamp events pop in
   insertion order — the same stable-FIFO contract as [Heap], which is
   what keeps the two schedulers byte-identical on simulation output.

   Year bookkeeping is done in integers ([vbucket] = trunc(time/width),
   recomputed on every width change), never by accumulating float
   bucket tops, so boundary roundoff cannot reorder events.

   Resizes are the cost to amortize: they thread every entry onto one
   chain through the existing [next] links (no temporary array, no
   sort), estimate the new width with two O(n) passes, and reinsert.
   Growth jumps 4x and shrinking waits for an 8x population drop and
   keeps the current width, so a fill/drain cycle rebuilds the table a
   handful of times instead of at every doubling. *)

type 'a entry = {
  time : float;
  seq : int;
  value : 'a;
  mutable vbucket : int;
  mutable next : 'a entry option;
}

type 'a t = {
  mutable buckets : 'a entry option array;
  mutable tails : 'a entry option array;
  mutable mask : int;
  mutable width : float;
  (* 1/width; bucket mapping multiplies instead of divides. Every
     vbucket in the structure is computed with the same reciprocal, so
     rounding is consistent within a width epoch. *)
  mutable inv_width : float;
  mutable size : int;
  mutable next_seq : int;
  (* Search position: [last_time] is a lower bound on the minimum
     timestamp present and [cur_vbucket] = trunc(last_time/width). *)
  mutable cur_vbucket : int;
  mutable last_time : float;
}

let min_buckets = 8

let create ?(width = 1.0) () =
  if width <= 0.0 then invalid_arg "Calqueue.create: width <= 0";
  {
    buckets = Array.make min_buckets None;
    tails = Array.make min_buckets None;
    mask = min_buckets - 1;
    width;
    inv_width = 1.0 /. width;
    size = 0;
    next_seq = 0;
    cur_vbucket = 0;
    last_time = 0.0;
  }

let length t = t.size

let is_empty t = t.size = 0

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let vbucket_of t time = int_of_float (time *. t.inv_width)

(* Insert into the sorted list of the entry's bucket. The common case —
   an event later than everything already in its bucket — is an O(1)
   tail append, which keeps bursts of equal-timestamp events linear. *)
let insert_entry t e =
  let i = e.vbucket land t.mask in
  match t.tails.(i) with
  | None ->
    e.next <- None;
    let cell = Some e in
    t.buckets.(i) <- cell;
    t.tails.(i) <- cell
  | Some tail when before tail e ->
    e.next <- None;
    let cell = Some e in
    tail.next <- cell;
    t.tails.(i) <- cell
  | Some _ -> (
    match t.buckets.(i) with
    | None -> assert false
    | Some head when before e head ->
      e.next <- Some head;
      t.buckets.(i) <- Some e
    | Some head ->
      (* e is after head and before tail: insertion lands strictly
         inside the list, so the tail pointer is untouched. *)
      let rec ins prev =
        match prev.next with
        | Some n when before n e -> ins n
        | rest ->
          e.next <- rest;
          prev.next <- Some e
      in
      ins head)

(* Thread every entry onto a single chain through the existing [next]
   links (constant extra space) and return its head. *)
let unlink_all t =
  let head = ref None in
  let tail = ref None in
  Array.iteri
    (fun i bucket_head ->
      match bucket_head with
      | None -> ()
      | Some _ ->
        (match !tail with
        | None -> head := bucket_head
        | Some last -> last.next <- bucket_head);
        tail := t.tails.(i))
    t.buckets;
  !head

(* Width adaptation, two O(n) passes over the chain: a global average
   gap first, then the observed density within the next ~64 global-gap
   units of the minimum — events near the head are the ones the sweep
   visits next, and this keeps a dense cluster from being drowned out
   by far-future outliers (pending retransmission timers). A bucket
   should hold a few events per year, hence the conventional 3x. *)
let estimate_width t chain =
  let lo = ref infinity and hi = ref neg_infinity and n = ref 0 in
  let rec scan = function
    | None -> ()
    | Some e ->
      if e.time < !lo then lo := e.time;
      if e.time > !hi then hi := e.time;
      incr n;
      scan e.next
  in
  scan chain;
  if !n < 2 || !hi <= !lo then t.width
  else begin
    let global_gap = (!hi -. !lo) /. float_of_int (!n - 1) in
    let window = !lo +. (64.0 *. global_gap) in
    let in_window = ref 0 and wide = ref !lo in
    let rec count = function
      | None -> ()
      | Some e ->
        if e.time <= window then begin
          incr in_window;
          if e.time > !wide then wide := e.time
        end;
        count e.next
    in
    count chain;
    let span = !wide -. !lo in
    if span > 0.0 && !in_window >= 2 then
      3.0 *. span /. float_of_int (!in_window - 1)
    else 3.0 *. global_gap
  end

let rebuild t ~nbuckets ~fresh_width =
  let chain = unlink_all t in
  if fresh_width then begin
    t.width <- estimate_width t chain;
    t.inv_width <- 1.0 /. t.width
  end;
  t.buckets <- Array.make nbuckets None;
  t.tails <- Array.make nbuckets None;
  t.mask <- nbuckets - 1;
  t.cur_vbucket <- vbucket_of t t.last_time;
  let rec reinsert = function
    | None -> ()
    | Some e ->
      let next = e.next in
      e.vbucket <- vbucket_of t e.time;
      insert_entry t e;
      reinsert next
  in
  reinsert chain

let push t ~priority value =
  let e =
    {
      time = priority;
      seq = t.next_seq;
      value;
      vbucket = vbucket_of t priority;
      next = None;
    }
  in
  t.next_seq <- t.next_seq + 1;
  insert_entry t e;
  t.size <- t.size + 1;
  if priority < t.last_time then begin
    t.last_time <- priority;
    t.cur_vbucket <- e.vbucket
  end;
  if t.size > 2 * (t.mask + 1) then
    rebuild t ~nbuckets:(4 * (t.mask + 1)) ~fresh_width:true

(* Locate the minimum entry: sweep bucket years starting from the
   current position; a bucket's head is in year [vb] exactly when its
   precomputed [vbucket] equals [vb]. If a whole calendar round finds
   nothing, every event is far in the future — find the earliest bucket
   head directly and jump the clock there. *)
let find_min_nonempty t =
  let nbuckets = t.mask + 1 in
  let rec sweep step vb =
    if step = nbuckets then direct ()
    else
      match t.buckets.(vb land t.mask) with
      | Some head when head.vbucket = vb ->
        t.cur_vbucket <- vb;
        t.last_time <- head.time;
        head
      | _ -> sweep (step + 1) (vb + 1)
  and direct () =
    let best = ref None in
    Array.iter
      (fun head ->
        match (head, !best) with
        | None, _ -> ()
        | Some h, None -> best := Some h
        | Some h, Some b -> if before h b then best := Some h)
      t.buckets;
    match !best with
    | None -> assert false
    | Some h ->
      t.cur_vbucket <- h.vbucket;
      t.last_time <- h.time;
      h
  in
  sweep 0 t.cur_vbucket

let peek t =
  if t.size = 0 then None
  else
    let e = find_min_nonempty t in
    Some (e.time, e.value)

(* Next power of two >= n (n >= 1). *)
let pow2_at_least n =
  let rec go p = if p >= n then p else go (p * 2) in
  go min_buckets

(* Unlink a located minimum entry from its bucket. *)
let remove_min t e =
  let i = e.vbucket land t.mask in
  t.buckets.(i) <- e.next;
  if e.next = None then t.tails.(i) <- None;
  e.next <- None;
  t.size <- t.size - 1;
  let nbuckets = t.mask + 1 in
  if nbuckets > min_buckets && t.size < nbuckets / 8 then
    (* Keep the width: a draining queue thins out, but the spacing of
       what remains was estimated from the same population. *)
    rebuild t ~nbuckets:(pow2_at_least (2 * t.size)) ~fresh_width:false

let pop t =
  if t.size = 0 then None
  else begin
    let e = find_min_nonempty t in
    remove_min t e;
    Some (e.time, e.value)
  end

let pop_if_before t ~limit ~default =
  if t.size = 0 then default
  else begin
    let e = find_min_nonempty t in
    if e.time > limit then default
    else begin
      remove_min t e;
      e.value
    end
  end

let clear t =
  t.buckets <- Array.make min_buckets None;
  t.tails <- Array.make min_buckets None;
  t.mask <- min_buckets - 1;
  t.size <- 0;
  t.next_seq <- 0;
  t.cur_vbucket <- 0;
  t.last_time <- 0.0
