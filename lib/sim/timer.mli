(** Restartable one-shot timer, the shape TCP retransmission timers need.

    A timer is created idle with a fixed callback; [start] arms it,
    [restart] re-arms it (cancelling any pending expiry), and [cancel]
    disarms it. The callback runs at most once per arming. *)

type t

(** [create engine ~callback] returns an idle timer on [engine]. *)
val create : Engine.t -> callback:(unit -> unit) -> t

(** [start t ~after] arms the timer to fire in [after] seconds.

    @raise Invalid_argument if the timer is already armed. *)
val start : t -> after:float -> unit

(** [restart t ~after] cancels any pending expiry and arms the timer to
    fire in [after] seconds. *)
val restart : t -> after:float -> unit

(** [cancel t] disarms the timer if armed; otherwise does nothing. *)
val cancel : t -> unit

(** [is_armed t] reports whether an expiry is pending. *)
val is_armed : t -> bool

(** [expiry t] is the absolute expiry time if armed. *)
val expiry : t -> float option
