type t = {
  engine : Engine.t;
  callback : unit -> unit;
  mutable armed : (Engine.handle * float) option;
}

let create engine ~callback = { engine; callback; armed = None }

let is_armed t = t.armed <> None

let expiry t = Option.map snd t.armed

let cancel t =
  match t.armed with
  | None -> ()
  | Some (handle, _) ->
    Engine.cancel t.engine handle;
    t.armed <- None

let start t ~after =
  if is_armed t then invalid_arg "Timer.start: already armed";
  let time = Engine.now t.engine +. after in
  let handle =
    Engine.schedule_at t.engine ~time (fun () ->
        t.armed <- None;
        t.callback ())
  in
  t.armed <- Some (handle, time)

let restart t ~after =
  cancel t;
  start t ~after
