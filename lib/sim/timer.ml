(* Restartable one-shot timer with lazy re-arm.

   RTO timers restart on every ACK and delayed-ACK timers on every data
   packet, so the naive cancel-and-reschedule would push (and later pop
   and skip) one dead far-future queue entry per packet. Instead,
   restarting to a *later* deadline — the overwhelmingly common case,
   since the clock has advanced — only moves the logical [expiry]; the
   queue entry already outstanding fires first, notices the deadline
   moved, and re-queues itself for the remainder. Queue traffic drops
   from one entry per restart to one per expiry interval, and the
   entries that are pushed go through the engine's recyclable no-handle
   path.

   [epoch] identifies the authoritative queue entry: cancel, start and
   an earlier-deadline restart bump it, so any entry still in the queue
   from a previous life of the timer wakes up, sees a stale epoch and
   does nothing. *)

(* Deadlines are stored in {!Timebits} encoding: the record mixes
   pointers and numbers, so [float] fields would box on every store —
   and [restart] runs once per ACK. Timebits ints compare like the
   times they encode, so the lazy-restart test needs no decoding. *)
type t = {
  engine : Engine.t;
  callback : unit -> unit;
  mutable armed : bool;
  (* Logical deadline; meaningful only while [armed]. *)
  mutable expiry_bits : int;
  mutable epoch : int;
  (* Firing time of the authoritative queue entry; [expiry_bits] can
     only run ahead of it (lazy restart), never behind. *)
  mutable queued_bits : int;
}

let create engine ~callback =
  { engine; callback; armed = false; expiry_bits = 0; epoch = 0; queued_bits = 0 }

let is_armed t = t.armed

let expiry t = if t.armed then Some (Timebits.to_time t.expiry_bits) else None

let rec enqueue t =
  let epoch = t.epoch in
  t.queued_bits <- t.expiry_bits;
  Engine.schedule_unit_at t.engine
    ~time:(Timebits.to_time t.expiry_bits)
    (fun () -> fired t epoch)

and fired t epoch =
  if epoch = t.epoch && t.armed then
    if Timebits.to_time t.expiry_bits <= Engine.now t.engine then begin
      t.armed <- false;
      t.epoch <- t.epoch + 1;
      t.callback ()
    end
    else begin
      (* The deadline moved later while this entry was in flight:
         re-arm for the remainder. *)
      t.epoch <- t.epoch + 1;
      enqueue t
    end

let cancel t =
  if t.armed then begin
    t.armed <- false;
    t.epoch <- t.epoch + 1
  end

let start t ~after =
  if t.armed then invalid_arg "Timer.start: already armed";
  t.armed <- true;
  t.expiry_bits <- Timebits.of_time (Engine.now t.engine +. after);
  t.epoch <- t.epoch + 1;
  enqueue t

let restart t ~after =
  if not t.armed then start t ~after
  else begin
    let expiry_bits = Timebits.of_time (Engine.now t.engine +. after) in
    if expiry_bits >= t.queued_bits then
      (* Lazy path: the outstanding entry fires no later than the new
         deadline and will re-queue itself. *)
      t.expiry_bits <- expiry_bits
    else begin
      t.expiry_bits <- expiry_bits;
      t.epoch <- t.epoch + 1;
      enqueue t
    end
  end
