type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape_string buffer s =
  Buffer.add_char buffer '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\r' -> Buffer.add_string buffer "\\r"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.add_char buffer '"'

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else
    (* Shortest representation that round-trips a double. *)
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec write ~indent ~level buffer v =
  let pad n =
    if indent then begin
      Buffer.add_char buffer '\n';
      Buffer.add_string buffer (String.make (2 * n) ' ')
    end
  in
  let sequence open_c close_c items write_item =
    Buffer.add_char buffer open_c;
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buffer ',';
        pad (level + 1);
        write_item item)
      items;
    if items <> [] then pad level;
    Buffer.add_char buffer close_c
  in
  match v with
  | Null -> Buffer.add_string buffer "null"
  | Bool b -> Buffer.add_string buffer (if b then "true" else "false")
  | Num f -> Buffer.add_string buffer (number_to_string f)
  | Str s -> escape_string buffer s
  | List items ->
    sequence '[' ']' items (write ~indent ~level:(level + 1) buffer)
  | Obj fields ->
    sequence '{' '}' fields (fun (key, value) ->
        escape_string buffer key;
        Buffer.add_char buffer ':';
        if indent then Buffer.add_char buffer ' ';
        write ~indent ~level:(level + 1) buffer value)

let render ~indent v =
  let buffer = Buffer.create 256 in
  write ~indent ~level:0 buffer v;
  Buffer.contents buffer

let to_string v = render ~indent:false v
let pretty v = render ~indent:true v

(* -- parser: plain recursive descent over a cursor -- *)

exception Parse_error of string

let of_string input =
  let pos = ref 0 in
  let len = String.length input in
  let fail message = raise (Parse_error message) in
  let peek () = if !pos < len then Some input.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | Some got -> fail (Printf.sprintf "expected '%c', got '%c'" c got)
    | None -> fail (Printf.sprintf "expected '%c', got end of input" c)
  in
  let literal word value =
    if !pos + String.length word <= len
       && String.sub input !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "invalid literal at offset %d" !pos)
  in
  let add_utf8 buffer code =
    if code < 0x80 then Buffer.add_char buffer (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buffer (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buffer (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buffer (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buffer (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buffer (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buffer = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> begin
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char buffer '"'
        | Some '\\' -> Buffer.add_char buffer '\\'
        | Some '/' -> Buffer.add_char buffer '/'
        | Some 'b' -> Buffer.add_char buffer '\b'
        | Some 'f' -> Buffer.add_char buffer '\012'
        | Some 'n' -> Buffer.add_char buffer '\n'
        | Some 'r' -> Buffer.add_char buffer '\r'
        | Some 't' -> Buffer.add_char buffer '\t'
        | Some 'u' ->
          if !pos + 4 >= len then fail "truncated \\u escape";
          let hex = String.sub input (!pos + 1) 4 in
          (match int_of_string_opt ("0x" ^ hex) with
          | Some code ->
            add_utf8 buffer code;
            pos := !pos + 4
          | None -> fail "invalid \\u escape")
        | Some c -> fail (Printf.sprintf "invalid escape '\\%c'" c)
        | None -> fail "unterminated escape");
        advance ();
        loop ()
      end
      | Some c ->
        Buffer.add_char buffer c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents buffer
  in
  let parse_number () =
    let start = !pos in
    let number_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> number_char c | None -> false) do
      advance ()
    done;
    let text = String.sub input start (!pos - start) in
    match float_of_string_opt text with
    | Some f -> Num f
    | None -> fail (Printf.sprintf "invalid number %S" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let item = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (item :: acc)
          | Some ']' ->
            advance ();
            List.rev (item :: acc)
          | _ -> fail "expected ',' or ']' in array"
        in
        List (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          (key, parse_value ())
        in
        let rec fields acc =
          let f = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields (f :: acc)
          | Some '}' ->
            advance ();
            List.rev (f :: acc)
          | _ -> fail "expected ',' or '}' in object"
        in
        Obj (fields [])
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then fail "trailing garbage after document";
    v
  with
  | v -> Ok v
  | exception Parse_error message -> Error message

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_list = function List items -> Some items | _ -> None
let to_obj = function Obj fields -> Some fields | _ -> None
