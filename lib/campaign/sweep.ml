type grid = {
  variants : Core.Variant.t list;
  gateways : Job.gateway list;
  topologies : Job.topology list;
  uniform_losses : float list;
  ack_losses : float list;
  reorders : float list;
  flap_periods : float list;
  cbr_shares : float list;
  estimators : Tcp.Rto.estimator list;
  rrr_levels : float list;
  asym_ratios : float list;
  handover_periods : float list;
  seeds : int64 list;
  duration : float;
  flows : int;
  rwnd : int;
}

let grid ?(variants = Core.Variant.[ Reno; Newreno; Sack; Rr ])
    ?(gateways = [ Job.Droptail 8 ]) ?(topologies = [ Job.Dumbbell ])
    ?(uniform_losses = [ 0.02 ])
    ?(ack_losses = [ 0.0 ]) ?(reorders = [ 0.0 ]) ?(flap_periods = [ 0.0 ])
    ?(cbr_shares = [ 0.0 ]) ?(estimators = [ Tcp.Rto.Jacobson ])
    ?(rrr_levels = [ 0.5 ]) ?(asym_ratios = [ 0.0 ])
    ?(handover_periods = [ 0.0 ]) ?seeds
    ?(seed = 7L) ?(seed_count = 6) ?(duration = 20.0) ?(flows = 2)
    ?(rwnd = 20) () =
  let seeds =
    match seeds with
    | Some seeds -> seeds
    | None -> List.init seed_count (fun i -> Int64.add seed (Int64.of_int i))
  in
  {
    variants;
    gateways;
    topologies;
    uniform_losses;
    ack_losses;
    reorders;
    flap_periods;
    cbr_shares;
    estimators;
    rrr_levels;
    asym_ratios;
    handover_periods;
    seeds;
    duration;
    flows;
    rwnd;
  }

let jobs_of_grid grid =
  List.concat_map
    (fun variant ->
      List.concat_map
        (fun gateway ->
         List.concat_map
          (fun topology ->
          List.concat_map
            (fun uniform_loss ->
              List.concat_map
                (fun ack_loss ->
                  List.concat_map
                    (fun reorder ->
                      List.concat_map
                        (fun flap_period ->
                          List.concat_map
                            (fun cbr_share ->
                              List.concat_map
                                (fun estimator ->
                                  (* The level axis multiplies only the
                                     RRR variant; every other variant
                                     ignores the field, so expanding it
                                     per level would duplicate jobs. *)
                                  let levels =
                                    if variant = Core.Variant.Rrr then
                                      grid.rrr_levels
                                    else [ 0.5 ]
                                  in
                                  List.concat_map
                                    (fun rrr_level ->
                                  List.concat_map
                                    (fun asym_ratio ->
                                  List.concat_map
                                    (fun handover_period ->
                                  List.map
                                    (fun seed ->
                                      {
                                        Job.variant;
                                        gateway;
                                        topology;
                                        uniform_loss;
                                        ack_loss;
                                        reorder;
                                        flap_period;
                                        cbr_share;
                                        estimator;
                                        rrr_level;
                                        asym_ratio;
                                        handover_period;
                                        seed;
                                        duration = grid.duration;
                                        flows = grid.flows;
                                        rwnd = grid.rwnd;
                                      })
                                    grid.seeds)
                                    grid.handover_periods)
                                    grid.asym_ratios)
                                    levels)
                                grid.estimators)
                            grid.cbr_shares)
                        grid.flap_periods)
                    grid.reorders)
                grid.ack_losses)
            grid.uniform_losses)
          grid.topologies)
        grid.gateways)
    grid.variants

let sweep_digest grid =
  Digest.to_hex
    (Digest.string
       (String.concat "\n" (List.map Job.digest (jobs_of_grid grid))))

type point = {
  point_job : Job.t;
  goodput : Stats.Summary.t;
  jain : Stats.Summary.t;
  timeouts : Stats.Summary.t;
  retransmits : Stats.Summary.t;
  drops : Stats.Summary.t;
  violations : int;
}

type quarantined = { q_job : Job.t; q_failure : Pool.failure }

type outcome = {
  grid : grid;
  results : Job.result list;
  points : point list;
  quarantined : quarantined list;
  skipped : int;
  interrupted : bool;
  cache_hits : int;
  jobs_executed : int;
  workers : int;
  elapsed_seconds : float;
}

(* Group results whose jobs differ only in seed, keeping first-occurrence
   order. *)
let group_points results =
  let table = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun result ->
      let key = Job.point_label result.Job.job in
      if not (Hashtbl.mem table key) then order := key :: !order;
      Hashtbl.replace table key
        (result :: (Option.value ~default:[] (Hashtbl.find_opt table key))))
    results;
  List.rev_map
    (fun key ->
      let group = List.rev (Hashtbl.find table key) in
      let totals per_flow =
        List.map
          (fun r ->
            float_of_int
              (List.fold_left (fun acc m -> acc + per_flow m) 0 r.Job.flow_metrics))
          group
      in
      {
        point_job = (List.hd group).Job.job;
        goodput =
          Stats.Summary.of_list
            (List.map (fun r -> r.Job.aggregate_goodput_bps) group);
        jain = Stats.Summary.of_list (List.map (fun r -> r.Job.jain) group);
        timeouts = Stats.Summary.of_list (totals (fun m -> m.Job.timeouts));
        retransmits = Stats.Summary.of_list (totals (fun m -> m.Job.retransmits));
        drops = Stats.Summary.of_list (totals (fun m -> m.Job.drops));
        violations =
          List.fold_left (fun acc r -> acc + r.Job.audit_violations) 0 group;
      })
    !order

let run ?cache ?journal ?(policy = Pool.default_policy)
    ?(stop = fun () -> false) ?jobs ?backend
    ?(on_progress = fun ~completed:_ ~total:_ -> ()) grid =
  let started = Unix.gettimeofday () in
  let workers = match jobs with Some n -> max 1 n | None -> Pool.default_jobs () in
  let all_jobs = jobs_of_grid grid in
  let total = List.length all_jobs in
  let lookup job =
    match cache with
    | None -> (job, None)
    | Some cache -> (job, Cache.find cache job)
  in
  let slots = List.map lookup all_jobs in
  let cache_hits =
    List.length (List.filter (fun (_, hit) -> hit <> None) slots)
  in
  if cache_hits > 0 then on_progress ~completed:cache_hits ~total;
  let misses = List.filter_map (fun (job, hit) ->
      match hit with None -> Some job | Some _ -> None) slots in
  let miss_jobs = Array.of_list misses in
  (* Every terminal outcome is persisted the moment it is collected —
     eager cache stores and journal records — so finished work survives
     an interrupted sweep even without [--resume]. *)
  let on_settled ~index outcome =
    let job = miss_jobs.(index) in
    match outcome with
    | Ok result ->
      Option.iter (fun cache -> Cache.store cache result) cache;
      Option.iter (fun j -> Journal.settled j ~digest:(Job.digest job)) journal
    | Error failure ->
      Option.iter
        (fun j ->
          Journal.failed j ~digest:(Job.digest job)
            ~failure:(Pool.failure_to_string failure))
        journal
  in
  let on_retry ~index ~attempt failure =
    Option.iter
      (fun j ->
        Journal.retry j ~digest:(Job.digest miss_jobs.(index)) ~attempt
          ~failure:(Pool.failure_to_string failure))
      journal
  in
  let outcomes =
    Pool.run ~jobs:workers ?backend ~policy ~stop
      ~on_done:(fun settled -> on_progress ~completed:(cache_hits + settled) ~total)
      ~on_retry ~on_settled Job.run misses
  in
  (* Stitch cached and fresh outcomes back into expansion order:
     successes stay results, failures become quarantined rows, and
     jobs cut short by a stop request are merely skipped. *)
  let outcomes = ref outcomes in
  let results_rev = ref [] in
  let quarantined_rev = ref [] in
  let skipped = ref 0 in
  List.iter
    (fun (job, hit) ->
      match hit with
      | Some result -> results_rev := result :: !results_rev
      | None -> (
        match !outcomes with
        | outcome :: rest -> (
          outcomes := rest;
          match outcome with
          | Pool.Settled result -> results_rev := result :: !results_rev
          | Pool.Failed failure ->
            quarantined_rev := { q_job = job; q_failure = failure } :: !quarantined_rev
          | Pool.Not_run -> incr skipped)
        | [] -> assert false))
    slots;
  let results = List.rev !results_rev in
  let quarantined = List.rev !quarantined_rev in
  let interrupted = stop () in
  Option.iter
    (fun j ->
      Journal.finish j
        ~settled:(List.length results - cache_hits)
        ~failed:(List.length quarantined) ~interrupted)
    journal;
  {
    grid;
    results;
    points = group_points results;
    quarantined;
    skipped = !skipped;
    interrupted;
    cache_hits;
    jobs_executed = List.length misses - !skipped;
    workers;
    elapsed_seconds = Unix.gettimeofday () -. started;
  }

let total_violations outcome =
  List.fold_left (fun acc r -> acc + r.Job.audit_violations) 0 outcome.results

let results_json outcome =
  Json.List (List.map Job.result_to_json outcome.results)

let point_to_json point =
  Json.Obj
    [
      ("point", Json.Str (Job.point_label point.point_job));
      ("variant", Json.Str (Core.Variant.name point.point_job.Job.variant));
      ("gateway", Json.Str (Job.gateway_name point.point_job.Job.gateway));
      ("topology", Json.Str (Job.topology_name point.point_job.Job.topology));
      ("uniform_loss", Json.Num point.point_job.Job.uniform_loss);
      ("ack_loss", Json.Num point.point_job.Job.ack_loss);
      ("reorder", Json.Num point.point_job.Job.reorder);
      ("flap_period", Json.Num point.point_job.Job.flap_period);
      ("cbr_share", Json.Num point.point_job.Job.cbr_share);
      ( "rto",
        Json.Str (Tcp.Rto.estimator_name point.point_job.Job.estimator) );
      ("rrr_level", Json.Num point.point_job.Job.rrr_level);
      ("asym_ratio", Json.Num point.point_job.Job.asym_ratio);
      ("handover_period", Json.Num point.point_job.Job.handover_period);
      ("seeds", Json.Num (float_of_int point.goodput.Stats.Summary.n));
      ("goodput_bps_mean", Json.Num point.goodput.Stats.Summary.mean);
      ("goodput_bps_ci95", Json.Num point.goodput.Stats.Summary.ci95);
      ("goodput_bps_stddev", Json.Num point.goodput.Stats.Summary.stddev);
      ("jain_mean", Json.Num point.jain.Stats.Summary.mean);
      ("timeouts_mean", Json.Num point.timeouts.Stats.Summary.mean);
      ("retransmits_mean", Json.Num point.retransmits.Stats.Summary.mean);
      ("drops_mean", Json.Num point.drops.Stats.Summary.mean);
      ("audit_violations", Json.Num (float_of_int point.violations));
    ]

let failure_json = function
  | Pool.Crashed reason ->
    Json.Obj [ ("kind", Json.Str "crashed"); ("reason", Json.Str reason) ]
  | Pool.Timed_out deadline ->
    Json.Obj
      [ ("kind", Json.Str "timed_out"); ("deadline_seconds", Json.Num deadline) ]
  | Pool.Gave_up attempts ->
    Json.Obj
      [
        ("kind", Json.Str "gave_up");
        ("attempts", Json.Num (float_of_int attempts));
      ]

let quarantined_to_json q =
  Json.Obj
    [
      ("digest", Json.Str (Job.digest q.q_job));
      ("job", Job.to_json q.q_job);
      ("failure", failure_json q.q_failure);
    ]

let total_jobs outcome =
  List.length outcome.results + List.length outcome.quarantined
  + outcome.skipped

let report_json outcome =
  Json.pretty
    (Json.Obj
       [
         ("schema", Json.Str "rr-sim-sweep/5");
         ("jobs", Json.Num (float_of_int (total_jobs outcome)));
         ("cache_hits", Json.Num (float_of_int outcome.cache_hits));
         ("workers", Json.Num (float_of_int outcome.workers));
         ("elapsed_seconds", Json.Num outcome.elapsed_seconds);
         ("interrupted", Json.Bool outcome.interrupted);
         ("skipped", Json.Num (float_of_int outcome.skipped));
         ( "quarantined",
           Json.List (List.map quarantined_to_json outcome.quarantined) );
         ("points", Json.List (List.map point_to_json outcome.points));
         ("results", results_json outcome);
       ])
  ^ "\n"

let report outcome =
  (* Fault/workload columns appear only when some point exercises the
     axis, so classic sweeps render exactly as before. *)
  let any f = List.exists (fun p -> f p.point_job > 0.0) outcome.points in
  let with_reorder = any (fun j -> j.Job.reorder) in
  let with_flaps = any (fun j -> j.Job.flap_period) in
  let with_cbr = any (fun j -> j.Job.cbr_share) in
  let with_asym = any (fun j -> j.Job.asym_ratio) in
  let with_handover = any (fun j -> j.Job.handover_period) in
  let with_rto =
    List.exists
      (fun p -> p.point_job.Job.estimator <> Tcp.Rto.Jacobson)
      outcome.points
  in
  let with_topology =
    List.exists
      (fun p -> p.point_job.Job.topology <> Job.Dumbbell)
      outcome.points
  in
  let with_rrr =
    List.exists
      (fun p ->
        p.point_job.Job.variant = Core.Variant.Rrr
        && p.point_job.Job.rrr_level <> 0.5)
      outcome.points
  in
  let opt_cols triples =
    List.concat_map
      (fun (enabled, cell) -> if enabled then [ cell ] else [])
      triples
  in
  let header =
    [ "variant"; "gateway" ]
    @ opt_cols [ (with_topology, "topology") ]
    @ [ "loss"; "ack loss" ]
    @ opt_cols
        [
          (with_reorder, "reorder");
          (with_flaps, "flap"); (with_cbr, "cbr");
          (with_asym, "asym"); (with_handover, "handover");
          (with_rto, "rto");
          (with_rrr, "rrr");
        ]
    @ [
        "seeds"; "goodput (Kbps)"; "jain"; "timeouts"; "retx"; "drops";
        "violations";
      ]
  in
  let rows =
    List.map
      (fun point ->
        let job = point.point_job in
        [ Core.Variant.name job.Job.variant; Job.gateway_name job.Job.gateway ]
        @ opt_cols [ (with_topology, Job.topology_name job.Job.topology) ]
        @ [
            Printf.sprintf "%g%%" (100.0 *. job.Job.uniform_loss);
            Printf.sprintf "%g%%" (100.0 *. job.Job.ack_loss);
          ]
        @ opt_cols
            [
              ( with_reorder,
                Printf.sprintf "%g%%" (100.0 *. job.Job.reorder) );
              (with_flaps, Printf.sprintf "%gs" job.Job.flap_period);
              (with_cbr, Printf.sprintf "%g%%" (100.0 *. job.Job.cbr_share));
              ( with_asym,
                if job.Job.asym_ratio > 0.0 then
                  Printf.sprintf "%g:1" job.Job.asym_ratio
                else "-" );
              ( with_handover,
                if job.Job.handover_period > 0.0 then
                  Printf.sprintf "%gs" job.Job.handover_period
                else "-" );
              (with_rto, Tcp.Rto.estimator_name job.Job.estimator);
              ( with_rrr,
                if job.Job.variant = Core.Variant.Rrr then
                  Printf.sprintf "%g" job.Job.rrr_level
                else "-" );
            ]
        @ [
            string_of_int point.goodput.Stats.Summary.n;
            Stats.Summary.to_string ~scale:0.001 point.goodput;
            Printf.sprintf "%.3f" point.jain.Stats.Summary.mean;
            Stats.Summary.to_string point.timeouts;
            Stats.Summary.to_string point.retransmits;
            Stats.Summary.to_string point.drops;
            string_of_int point.violations;
          ])
      outcome.points
  in
  let jobs = total_jobs outcome in
  (* Quarantine and interruption render only when present, so clean
     sweeps stay byte-identical to the pre-supervision output. *)
  let quarantine_block =
    if outcome.quarantined = [] then ""
    else
      "\nquarantined job(s):\n"
      ^ Stats.Text_table.render ~header:[ "job"; "seed"; "failure" ]
          (List.map
             (fun q ->
               [
                 Job.point_label q.q_job;
                 Int64.to_string q.q_job.Job.seed;
                 Pool.failure_to_string q.q_failure;
               ])
             outcome.quarantined)
  in
  let quarantine_note =
    if outcome.quarantined = [] then ""
    else Printf.sprintf ", %d quarantined" (List.length outcome.quarantined)
  in
  let interrupted_note =
    if outcome.interrupted then
      Printf.sprintf
        "interrupted: %d job(s) not run; re-run with --resume to finish\n"
        outcome.skipped
    else ""
  in
  Stats.Text_table.render ~header rows
  ^ quarantine_block
  ^ Printf.sprintf
      "\n%d job(s): %d from cache, %d executed on %d worker(s) in %.1f s;  %d \
       audit violation(s)%s\n"
      jobs outcome.cache_hits outcome.jobs_executed outcome.workers
      outcome.elapsed_seconds (total_violations outcome) quarantine_note
  ^ interrupted_note
