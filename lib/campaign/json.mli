(** Minimal JSON tree, printer and parser.

    The campaign cache and reporters need deterministic JSON without an
    external dependency; this covers exactly the subset the repo emits
    (finite numbers, strings, arrays, objects). Printing is canonical —
    no whitespace, fields in the order given — so a value's rendering
    is stable enough to be hashed and compared byte-for-byte. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** [to_string v] renders canonically (no whitespace). Numbers use the
    shortest round-trip representation; integral values print without a
    decimal point. *)
val to_string : t -> string

(** [pretty v] renders with two-space indentation, for files meant to
    be read by people. *)
val pretty : t -> string

(** [of_string s] parses a JSON document (UTF-8, [\uXXXX] escapes
    decoded). *)
val of_string : string -> (t, string) result

(** [member key v] is the field [key] of object [v]. *)
val member : string -> t -> t option

(** Coercions; [None] on a mismatched constructor. [to_int] accepts
    only integral numbers. *)

val to_float : t -> float option
val to_int : t -> int option
val to_str : t -> string option
val to_list : t -> t list option
val to_obj : t -> (string * t) list option
