(** [Unix.fork]-based worker pool.

    Each task runs in its own forked child — full process isolation, so
    the simulator's global state (engine clocks, RNGs, counters) never
    leaks between concurrently-running jobs — and the result value is
    marshalled back to the parent over a pipe. Children that raise
    marshal the exception text instead; the parent re-raises after the
    whole batch settles.

    Simulation jobs are deterministic, so a parallel map returns
    exactly what the serial map would, only sooner. *)

(** [default_jobs ()] is the host's recommended parallelism (core
    count as reported by the runtime). *)
val default_jobs : unit -> int

(** [map ~jobs ?on_done f items] applies [f] to every item, running up
    to [jobs] children concurrently, and returns the results in input
    order. [jobs <= 1] degrades to a plain in-process [List.map] (no
    forking). [on_done] is called in the parent as each item settles
    (with the count settled so far), for progress display.

    @raise Failure if any child failed, after all children settle. *)
val map : jobs:int -> ?on_done:(int -> unit) -> ('a -> 'b) -> 'a list -> 'b list
