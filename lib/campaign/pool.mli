(** Supervised worker pool with pluggable execution backends.

    The {!Forked} backend runs each task in its own forked child — full
    process isolation, so the simulator's global state (engine clocks,
    RNGs, counters) never leaks between concurrently-running jobs — and
    marshals the result value back to the parent over a pipe. The
    {!Domains} backend shards the same tasks across a fixed team of
    [Domain.spawn] workers instead: job specs sit in a shared read-only
    array, results come back through a lock-protected queue, and both
    fork and Marshal drop out of the picture. {!Serial} is the plain
    in-process loop.

    The calling domain is a supervisor, not a bystander: every attempt
    carries an optional wall-clock deadline, failed attempts are
    retried up to a bounded budget with deterministic exponential
    backoff, and a batch {e always} settles — a crashed, hung or torn
    worker becomes a {!Failed} slot in the result list instead of
    aborting its siblings. [Unix.select] and [Unix.waitpid] are retried
    on [EINTR], so signal delivery (expected once the CLI installs
    SIGINT/SIGTERM handlers) cannot abort a collect mid-flight.

    Deadline enforcement differs by backend, because a domain cannot
    be SIGKILLed the way a forked child can. Fork kills and reaps an
    expired worker. Domains {e abandon} the expired attempt: it is
    reported {!Timed_out} at the same moment fork would report it, a
    replacement worker is spawned so a genuinely hung job does not
    shrink the pool, and if the abandoned attempt finishes after all
    its late result is discarded and one surplus worker retires. A
    worker hung forever (e.g. chaos [Hang]) therefore still occupies a
    domain until the process exits — the supervisor just stops waiting
    for it.

    Simulation jobs are deterministic and allocate all run state per
    job (engines, RNG states), so every backend returns exactly what
    the serial run would, only sooner.

    One-way door: the OCaml runtime permanently refuses [Unix.fork]
    once any domain has been spawned in the process — even after every
    domain has been joined — so a process that has used the {!Domains}
    backend can never run {!Forked} afterwards ({!run} then raises
    [Failure]). Anything exercising both backends in one process must
    order the fork-backed work first; the bench harness and the
    backend test suite do. *)

(** [default_jobs ()] is the host's recommended parallelism (core
    count as reported by the runtime). *)
val default_jobs : unit -> int

(** {1 Execution backends} *)

type backend =
  | Serial  (** in-process loop; no parallelism, no deadlines, no chaos *)
  | Forked  (** one forked child per attempt, results marshalled back *)
  | Domains
      (** shared-memory [Domain.spawn] worker team; deadlines abandon
          rather than kill (see above) *)

(** [backend_name backend] is ["serial"], ["fork"] or ["domains"]. *)
val backend_name : backend -> string

(** [backend_of_string s] parses {!backend_name} spellings (plus
    ["forked"]/["domain"]), case-insensitively. *)
val backend_of_string : string -> (backend, string) result

(** {1 Failure taxonomy} *)

(** Why a job failed to settle. *)
type failure =
  | Crashed of string
      (** the worker raised (payload = exception text), died — by
          signal, nonzero exit, or without reporting — or shipped a
          truncated payload (payload = diagnostic) *)
  | Timed_out of float
      (** the worker outlived its wall-clock deadline (payload =
          the configured deadline, seconds) and was SIGKILLed *)
  | Gave_up of int
      (** every attempt of a retry budget failed (payload = total
          attempts made); only produced when [retries > 0] *)

(** [failure_to_string failure] is a one-line human rendering, e.g.
    ["crashed: killed by SIGKILL"] or ["timed out after 5s"]. *)
val failure_to_string : failure -> string

(** One input item's terminal state. *)
type 'b outcome =
  | Settled of 'b  (** the job completed and returned a value *)
  | Failed of failure  (** all attempts failed; the job is quarantined *)
  | Not_run  (** the run was stopped before the job could settle *)

(** {1 Supervision policy} *)

type policy = {
  timeout : float option;
      (** per-attempt wall-clock deadline in seconds; [None] = wait
          forever (the pre-supervision behaviour) *)
  retries : int;  (** extra attempts after the first failure *)
  backoff : float;
      (** delay before retry [n] is [backoff * 2^(n-1)] seconds —
          deterministic, so a chaos-injected schedule reproduces
          exactly *)
}

(** No deadline, no retries, 0.5 s base backoff. *)
val default_policy : policy

(** {1 Deterministic chaos injection}

    For supervision tests and the [@chaos-smoke] alias: a chaos plan
    makes selected workers misbehave on schedule, in the child, after
    the fork — so the parent exercises its real recovery paths against
    real process death, not mocks. *)

type chaos_action =
  | Crash  (** the worker SIGKILLs itself before running the job *)
  | Hang  (** the worker sleeps forever (reaped only by a deadline) *)
  | Truncate
      (** the worker runs the job but writes the marshalled payload
          short by one byte, tearing it *)

(** [plan ~index ~attempt] decides what (if anything) happens to the
    worker running input [index] on its [attempt]-th try (1-based). *)
type chaos_plan = index:int -> attempt:int -> chaos_action option

(** Process-wide chaos hook consulted by {!run}; [None] (the default)
    falls back to parsing {!chaos_env}. Tests set it directly. The
    serial path ignores chaos. Forked workers reproduce each action
    literally; domain workers map [Hang] to a cooperative hang (the
    attempt never reports; only a deadline recovers it) and [Crash] /
    [Truncate] — process death and a torn Marshal payload, neither of
    which exists in-domain — to an immediately failed attempt with a
    distinguishing message. *)
val chaos : chaos_plan option ref

(** Name of the environment variable ["RR_SIM_POOL_CHAOS"] holding a
    chaos spec for CLI runs. *)
val chaos_env : string

(** [chaos_of_string spec] parses the chaos DSL: [;]-separated clauses
    [ACTION:JOB[,JOB...]] with actions [crash], [hang], [trunc] and job
    targets [N] (first attempt only), [N*] (every attempt), [N@A]
    (attempt [A] only). Example: ["crash:1;hang:3*;trunc:0@2"]. *)
val chaos_of_string : string -> (chaos_plan, string) result

(** {1 Running} *)

(** [run ~jobs ?backend ?policy ?stop ?on_done ?on_retry ?on_settled f
    items] applies [f] to every item, running up to [jobs] workers
    concurrently under [policy], and returns one {!outcome} per item in
    input order. [backend] defaults to {!Forked} when [jobs > 1] and
    {!Serial} otherwise — the historical behaviour; passing it
    explicitly pins the execution strategy regardless of [jobs].

    [stop] is polled between collect rounds; once it returns [true],
    running fork workers are SIGKILLed and reaped (domain workers are
    told to exit at their next queue visit), and every job not yet
    settled is reported {!Not_run} — already-settled work is kept.
    [on_done] is called in the supervisor as each item settles (with
    the count settled so far), for progress display. [on_retry] fires
    on each non-final failed attempt, before the backoff; [on_settled]
    fires on each terminal outcome — success or final failure — as it
    happens, so callers can persist results incrementally (eager cache
    stores, run journals). All callbacks run in the calling domain.

    @raise Invalid_argument if {!chaos_env} holds an unparseable spec. *)
val run :
  jobs:int ->
  ?backend:backend ->
  ?policy:policy ->
  ?stop:(unit -> bool) ->
  ?on_done:(int -> unit) ->
  ?on_retry:(index:int -> attempt:int -> failure -> unit) ->
  ?on_settled:(index:int -> ('b, failure) result -> unit) ->
  ('a -> 'b) ->
  'a list ->
  'b outcome list

(** [map ~jobs ?on_done f items] is the legacy all-or-nothing wrapper
    over {!run} with {!default_policy}: results in input order, raising
    after the whole batch settles if any job failed.

    @raise Failure if any child failed. *)
val map : jobs:int -> ?on_done:(int -> unit) -> ('a -> 'b) -> 'a list -> 'b list
