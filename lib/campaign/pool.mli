(** Supervised [Unix.fork]-based worker pool.

    Each task runs in its own forked child — full process isolation, so
    the simulator's global state (engine clocks, RNGs, counters) never
    leaks between concurrently-running jobs — and the result value is
    marshalled back to the parent over a pipe.

    The parent is a supervisor, not a bystander: every attempt carries
    an optional wall-clock deadline (expired workers are SIGKILLed and
    reaped), failed attempts are retried up to a bounded budget with
    deterministic exponential backoff, and a batch {e always} settles —
    a crashed, hung or torn worker becomes a {!Failed} slot in the
    result list instead of aborting its siblings. [Unix.select] and
    [Unix.waitpid] are retried on [EINTR], so signal delivery (expected
    once the CLI installs SIGINT/SIGTERM handlers) cannot abort a
    collect mid-flight.

    Simulation jobs are deterministic, so a parallel run returns
    exactly what the serial run would, only sooner. *)

(** [default_jobs ()] is the host's recommended parallelism (core
    count as reported by the runtime). *)
val default_jobs : unit -> int

(** {1 Failure taxonomy} *)

(** Why a job failed to settle. *)
type failure =
  | Crashed of string
      (** the worker raised (payload = exception text), died — by
          signal, nonzero exit, or without reporting — or shipped a
          truncated payload (payload = diagnostic) *)
  | Timed_out of float
      (** the worker outlived its wall-clock deadline (payload =
          the configured deadline, seconds) and was SIGKILLed *)
  | Gave_up of int
      (** every attempt of a retry budget failed (payload = total
          attempts made); only produced when [retries > 0] *)

(** [failure_to_string failure] is a one-line human rendering, e.g.
    ["crashed: killed by SIGKILL"] or ["timed out after 5s"]. *)
val failure_to_string : failure -> string

(** One input item's terminal state. *)
type 'b outcome =
  | Settled of 'b  (** the job completed and returned a value *)
  | Failed of failure  (** all attempts failed; the job is quarantined *)
  | Not_run  (** the run was stopped before the job could settle *)

(** {1 Supervision policy} *)

type policy = {
  timeout : float option;
      (** per-attempt wall-clock deadline in seconds; [None] = wait
          forever (the pre-supervision behaviour) *)
  retries : int;  (** extra attempts after the first failure *)
  backoff : float;
      (** delay before retry [n] is [backoff * 2^(n-1)] seconds —
          deterministic, so a chaos-injected schedule reproduces
          exactly *)
}

(** No deadline, no retries, 0.5 s base backoff. *)
val default_policy : policy

(** {1 Deterministic chaos injection}

    For supervision tests and the [@chaos-smoke] alias: a chaos plan
    makes selected workers misbehave on schedule, in the child, after
    the fork — so the parent exercises its real recovery paths against
    real process death, not mocks. *)

type chaos_action =
  | Crash  (** the worker SIGKILLs itself before running the job *)
  | Hang  (** the worker sleeps forever (reaped only by a deadline) *)
  | Truncate
      (** the worker runs the job but writes the marshalled payload
          short by one byte, tearing it *)

(** [plan ~index ~attempt] decides what (if anything) happens to the
    worker running input [index] on its [attempt]-th try (1-based). *)
type chaos_plan = index:int -> attempt:int -> chaos_action option

(** Process-wide chaos hook consulted by {!run}; [None] (the default)
    falls back to parsing {!chaos_env}. Tests set it directly. Only
    forked workers obey it — the serial path ignores chaos. *)
val chaos : chaos_plan option ref

(** Name of the environment variable ["RR_SIM_POOL_CHAOS"] holding a
    chaos spec for CLI runs. *)
val chaos_env : string

(** [chaos_of_string spec] parses the chaos DSL: [;]-separated clauses
    [ACTION:JOB[,JOB...]] with actions [crash], [hang], [trunc] and job
    targets [N] (first attempt only), [N*] (every attempt), [N@A]
    (attempt [A] only). Example: ["crash:1;hang:3*;trunc:0@2"]. *)
val chaos_of_string : string -> (chaos_plan, string) result

(** {1 Running} *)

(** [run ~jobs ?policy ?stop ?on_done ?on_retry ?on_settled f items]
    applies [f] to every item, running up to [jobs] children
    concurrently under [policy], and returns one {!outcome} per item in
    input order. [jobs <= 1] degrades to a plain in-process loop (no
    forking, no deadlines, no chaos; retries still apply).

    [stop] is polled between collect rounds; once it returns [true],
    running workers are SIGKILLed and reaped, and every job not yet
    settled is reported {!Not_run} — already-settled work is kept.
    [on_done] is called in the parent as each item settles (with the
    count settled so far), for progress display. [on_retry] fires on
    each non-final failed attempt, before the backoff; [on_settled]
    fires on each terminal outcome — success or final failure — as it
    happens, so callers can persist results incrementally (eager cache
    stores, run journals).

    @raise Invalid_argument if {!chaos_env} holds an unparseable spec. *)
val run :
  jobs:int ->
  ?policy:policy ->
  ?stop:(unit -> bool) ->
  ?on_done:(int -> unit) ->
  ?on_retry:(index:int -> attempt:int -> failure -> unit) ->
  ?on_settled:(index:int -> ('b, failure) result -> unit) ->
  ('a -> 'b) ->
  'a list ->
  'b outcome list

(** [map ~jobs ?on_done f items] is the legacy all-or-nothing wrapper
    over {!run} with {!default_policy}: results in input order, raising
    after the whole batch settles if any job failed.

    @raise Failure if any child failed. *)
val map : jobs:int -> ?on_done:(int -> unit) -> ('a -> 'b) -> 'a list -> 'b list
