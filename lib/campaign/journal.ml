type t = { path : string; out : out_channel; trace : Audit.Trace.t }

let schema = "rr-sim-journal/1"

let path t = t.path

let event t ?(fields = []) ev =
  Audit.Trace.journal_event t.trace ~time:(Unix.gettimeofday ()) ~ev fields;
  (* One flush per event: journal durability is the whole point — a
     record must survive the parent dying right after it is written. *)
  Audit.Trace.flush t.trace

let open_channel ~append path =
  let flags =
    [ Open_wronly; Open_creat; (if append then Open_append else Open_trunc) ]
  in
  let out = open_out_gen flags 0o644 path in
  { path; out; trace = Audit.Trace.create ~out () }

let start ~path ~sweep ~total =
  let t = open_channel ~append:false path in
  event t "sweep_start"
    ~fields:
      [
        ("schema", Audit.Trace.Str schema);
        ("sweep", Audit.Trace.Str sweep);
        ("total", Audit.Trace.Int total);
      ];
  t

let settled t ~digest =
  event t "job_settled" ~fields:[ ("digest", Audit.Trace.Str digest) ]

let failed t ~digest ~failure =
  event t "job_failed"
    ~fields:
      [ ("digest", Audit.Trace.Str digest); ("failure", Audit.Trace.Str failure) ]

let retry t ~digest ~attempt ~failure =
  event t "job_retry"
    ~fields:
      [
        ("digest", Audit.Trace.Str digest);
        ("attempt", Audit.Trace.Int attempt);
        ("failure", Audit.Trace.Str failure);
      ]

let finish t ~settled ~failed ~interrupted =
  event t (if interrupted then "sweep_interrupted" else "sweep_complete")
    ~fields:
      [ ("settled", Audit.Trace.Int settled); ("failed", Audit.Trace.Int failed) ]

let close t =
  Audit.Trace.flush t.trace;
  close_out_noerr t.out

type snapshot = {
  sweep : string;
  settled : string list;
  failed : (string * string) list;
}

let read_lines path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec loop acc =
        match input_line ic with
        | line -> loop (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      loop [])

let load ~path =
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "no journal at %s" path)
  else begin
    let sweep = ref None in
    let entries : (string, (string, string) Stdlib.result) Hashtbl.t =
      Hashtbl.create 64
    in
    let order = ref [] in
    let record digest entry =
      if not (Hashtbl.mem entries digest) then order := digest :: !order;
      Hashtbl.replace entries digest entry
    in
    List.iter
      (fun line ->
        (* A parent killed mid-write can tear its last line; anything
           unparseable is skipped, never fatal. *)
        match Json.of_string line with
        | Error _ -> ()
        | Ok json -> (
          let str name = Option.bind (Json.member name json) Json.to_str in
          match str "ev" with
          | Some "sweep_start" -> (
            match str "sweep" with
            | Some digest -> sweep := Some digest
            | None -> ())
          | Some "job_settled" -> (
            match str "digest" with
            | Some digest -> record digest (Ok digest)
            | None -> ())
          | Some "job_failed" -> (
            match str "digest" with
            | Some digest ->
              record digest
                (Error (Option.value ~default:"unknown" (str "failure")))
            | None -> ())
          | _ -> ()))
      (read_lines path);
    match !sweep with
    | None -> Error (Printf.sprintf "journal %s has no sweep_start record" path)
    | Some sweep ->
      let settled, failed =
        List.fold_left
          (fun (settled, failed) digest ->
            match Hashtbl.find entries digest with
            | Ok _ -> (digest :: settled, failed)
            | Error reason -> (settled, (digest, reason) :: failed))
          ([], []) !order
      in
      Ok { sweep; settled; failed }
  end

let resume ~path ~sweep =
  match load ~path with
  | Error message -> Error message
  | Ok snapshot ->
    if snapshot.sweep <> sweep then
      Error
        (Printf.sprintf
           "journal %s belongs to a different sweep (journal %s, requested %s)"
           path snapshot.sweep sweep)
    else begin
      let t = open_channel ~append:true path in
      event t "sweep_resume"
        ~fields:
          [
            ("sweep", Audit.Trace.Str sweep);
            ("settled", Audit.Trace.Int (List.length snapshot.settled));
            ("failed", Audit.Trace.Int (List.length snapshot.failed));
          ];
      Ok (t, snapshot)
    end
