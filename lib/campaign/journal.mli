(** Incremental JSONL run journal for sweeps.

    The journal lives next to the result cache (by convention
    [_campaign/journal.jsonl]) and records every job's terminal state
    the moment it settles, one {!Audit.Trace.journal_event} line per
    record, flushed eagerly — so an interrupted or crashed campaign
    leaves an exact account of what finished, what failed and why:

    {v
    {"t":<wall>,"ev":"sweep_start","schema":"rr-sim-journal/1","sweep":"<md5>","total":24}
    {"t":<wall>,"ev":"job_settled","digest":"<md5>"}
    {"t":<wall>,"ev":"job_retry","digest":"<md5>","attempt":1,"failure":"crashed: ..."}
    {"t":<wall>,"ev":"job_failed","digest":"<md5>","failure":"timed out after 5s"}
    {"t":<wall>,"ev":"sweep_interrupted","settled":12,"failed":1}
    v}

    [sweep] is {!Sweep.sweep_digest} — the identity of the job set — so
    [--resume] can refuse to graft one campaign's journal onto another.
    Timestamps are wall-clock and informational only: they never enter
    any digest or report, so resumed runs stay byte-identical to
    uninterrupted ones. *)

type t

(** [start ~path ~sweep ~total] truncates [path] and writes the
    [sweep_start] header for a fresh campaign of [total] jobs. *)
val start : path:string -> sweep:string -> total:int -> t

(** The journal's file path. *)
val path : t -> string

(** Per-job records; each call appends one line and flushes it. *)

val settled : t -> digest:string -> unit

val failed : t -> digest:string -> failure:string -> unit

val retry : t -> digest:string -> attempt:int -> failure:string -> unit

(** [finish t ~settled ~failed ~interrupted] writes the terminal
    [sweep_complete] (or [sweep_interrupted]) record. *)
val finish : t -> settled:int -> failed:int -> interrupted:bool -> unit

val close : t -> unit

(** {1 Resuming} *)

(** What a previous run's journal settles: [settled] digests can be
    trusted to sit in the cache, [failed] carries the recorded failure
    renderings. Last record per digest wins, so a job that failed and
    later settled on resume counts as settled. *)
type snapshot = {
  sweep : string;
  settled : string list;
  failed : (string * string) list;
}

(** [load ~path] parses a journal (torn trailing lines are skipped,
    never fatal). *)
val load : path:string -> (snapshot, string) result

(** [resume ~path ~sweep] validates that the journal at [path] belongs
    to the sweep identified by [sweep], reopens it in append mode,
    writes a [sweep_resume] record and returns the handle plus the
    previous run's {!snapshot}. *)
val resume : path:string -> sweep:string -> (t * snapshot, string) result
