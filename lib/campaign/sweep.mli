(** Declarative multi-run sweep engine.

    A {!grid} names the axes of a campaign — variants × gateway
    disciplines × uniform data-loss rates × ACK-loss rates × seeds —
    plus the scalar run parameters they share. {!jobs_of_grid} expands
    it to the cartesian product of fully-resolved {!Job.t}s;
    {!run} executes them on the {!Pool} (consulting the {!Cache}
    first), then collapses each grid {e point} (same everything but
    the seed) into cross-seed summary statistics. *)

type grid = {
  variants : Core.Variant.t list;
  gateways : Job.gateway list;
  uniform_losses : float list;
  ack_losses : float list;
  reorders : float list;  (** {!Job.t.reorder} values; [0.] = off *)
  flap_periods : float list;  (** {!Job.t.flap_period} values; [0.] = off *)
  cbr_shares : float list;  (** {!Job.t.cbr_share} values; [0.] = off *)
  seeds : int64 list;
  duration : float;
  flows : int;
  rwnd : int;
}

(** [grid ()] with the defaults of the §4 uniform-loss studies: Reno /
    New-Reno / SACK / RR under a drop-tail:8 gateway, 2% data loss, no
    ACK loss, no faults or cross-traffic, six seeds derived from [seed]
    (default 7), 2 flows for 20 s with a 20-segment window. *)
val grid :
  ?variants:Core.Variant.t list ->
  ?gateways:Job.gateway list ->
  ?uniform_losses:float list ->
  ?ack_losses:float list ->
  ?reorders:float list ->
  ?flap_periods:float list ->
  ?cbr_shares:float list ->
  ?seeds:int64 list ->
  ?seed:int64 ->
  ?seed_count:int ->
  ?duration:float ->
  ?flows:int ->
  ?rwnd:int ->
  unit ->
  grid

(** [jobs_of_grid grid] is the expansion, ordered variant-major,
    seed-minor. *)
val jobs_of_grid : grid -> Job.t list

(** One grid point's cross-seed aggregate. *)
type point = {
  point_job : Job.t;  (** a representative job (its seed is the first) *)
  goodput : Stats.Summary.t;  (** aggregate goodput, bps, across seeds *)
  jain : Stats.Summary.t;  (** within-run fairness, across seeds *)
  timeouts : Stats.Summary.t;  (** per-run total, across seeds *)
  retransmits : Stats.Summary.t;
  drops : Stats.Summary.t;
  violations : int;  (** auditor violations summed over seeds *)
}

type outcome = {
  grid : grid;
  results : Job.result list;  (** one per job, in expansion order *)
  points : point list;  (** in first-occurrence order *)
  cache_hits : int;
  jobs_executed : int;  (** jobs actually run (misses) *)
  workers : int;  (** pool width used *)
  elapsed_seconds : float;  (** wall clock for the whole sweep *)
}

(** [run grid] executes the campaign. [cache] enables the on-disk
    result cache; [jobs] sets the pool width (default
    {!Pool.default_jobs}); [on_progress] is called after every settled
    job with the completed count and the total. *)
val run :
  ?cache:Cache.t ->
  ?jobs:int ->
  ?on_progress:(completed:int -> total:int -> unit) ->
  grid ->
  outcome

(** [total_violations outcome] sums auditor violations over all jobs. *)
val total_violations : outcome -> int

(** [results_json outcome] is the array of per-job results — the
    deterministic payload (no timings), which a warm-cache re-run
    reproduces byte-for-byte. *)
val results_json : outcome -> Json.t

(** [report outcome] renders the per-point aggregate table plus a
    cache/pool summary line. *)
val report : outcome -> string

(** [report_json outcome] renders the whole campaign (points and
    per-job results) as a JSON document, newline-terminated. *)
val report_json : outcome -> string
