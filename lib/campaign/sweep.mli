(** Declarative multi-run sweep engine.

    A {!grid} names the axes of a campaign — variants × gateway
    disciplines × uniform data-loss rates × ACK-loss rates × seeds —
    plus the scalar run parameters they share. {!jobs_of_grid} expands
    it to the cartesian product of fully-resolved {!Job.t}s;
    {!run} executes them on the {!Pool} (consulting the {!Cache}
    first), then collapses each grid {e point} (same everything but
    the seed) into cross-seed summary statistics. *)

type grid = {
  variants : Core.Variant.t list;
  gateways : Job.gateway list;
  topologies : Job.topology list;
      (** {!Job.t.topology} values; [Dumbbell] alone = classic *)
  uniform_losses : float list;
  ack_losses : float list;
  reorders : float list;  (** {!Job.t.reorder} values; [0.] = off *)
  flap_periods : float list;  (** {!Job.t.flap_period} values; [0.] = off *)
  cbr_shares : float list;  (** {!Job.t.cbr_share} values; [0.] = off *)
  estimators : Tcp.Rto.estimator list;
      (** {!Job.t.estimator} values; [Jacobson] alone = classic *)
  rrr_levels : float list;
      (** {!Job.t.rrr_level} values, expanded only for the
          {!Core.Variant.Rrr} variant (others would yield duplicate
          jobs); [0.5] alone = classic *)
  asym_ratios : float list;
      (** {!Job.t.asym_ratio} values; [0.] = off (dumbbell only) *)
  handover_periods : float list;
      (** {!Job.t.handover_period} values; [0.] = off *)
  seeds : int64 list;
  duration : float;
  flows : int;
  rwnd : int;
}

(** [grid ()] with the defaults of the §4 uniform-loss studies: Reno /
    New-Reno / SACK / RR under a drop-tail:8 gateway, 2% data loss, no
    ACK loss, no faults or cross-traffic, six seeds derived from [seed]
    (default 7), 2 flows for 20 s with a 20-segment window. *)
val grid :
  ?variants:Core.Variant.t list ->
  ?gateways:Job.gateway list ->
  ?topologies:Job.topology list ->
  ?uniform_losses:float list ->
  ?ack_losses:float list ->
  ?reorders:float list ->
  ?flap_periods:float list ->
  ?cbr_shares:float list ->
  ?estimators:Tcp.Rto.estimator list ->
  ?rrr_levels:float list ->
  ?asym_ratios:float list ->
  ?handover_periods:float list ->
  ?seeds:int64 list ->
  ?seed:int64 ->
  ?seed_count:int ->
  ?duration:float ->
  ?flows:int ->
  ?rwnd:int ->
  unit ->
  grid

(** [jobs_of_grid grid] is the expansion, ordered variant-major,
    seed-minor. *)
val jobs_of_grid : grid -> Job.t list

(** [sweep_digest grid] identifies the campaign's job set — the hex MD5
    over every job digest, in expansion order. The run journal records
    it so [--resume] can refuse a journal from a different sweep. *)
val sweep_digest : grid -> string

(** One grid point's cross-seed aggregate. *)
type point = {
  point_job : Job.t;  (** a representative job (its seed is the first) *)
  goodput : Stats.Summary.t;  (** aggregate goodput, bps, across seeds *)
  jain : Stats.Summary.t;  (** within-run fairness, across seeds *)
  timeouts : Stats.Summary.t;  (** per-run total, across seeds *)
  retransmits : Stats.Summary.t;
  drops : Stats.Summary.t;
  violations : int;  (** auditor violations summed over seeds *)
}

(** One job that failed every attempt and was quarantined instead of
    aborting the sweep. *)
type quarantined = { q_job : Job.t; q_failure : Pool.failure }

type outcome = {
  grid : grid;
  results : Job.result list;
      (** one per {e settled} job, in expansion order *)
  points : point list;  (** in first-occurrence order *)
  quarantined : quarantined list;
      (** failed jobs, in expansion order; empty on a clean sweep *)
  skipped : int;  (** jobs not run because the sweep was stopped *)
  interrupted : bool;  (** the [stop] predicate fired *)
  cache_hits : int;
  jobs_executed : int;
      (** misses that reached a terminal state (settled or failed) *)
  workers : int;  (** pool width used *)
  elapsed_seconds : float;  (** wall clock for the whole sweep *)
}

(** [run grid] executes the campaign — and always returns, with partial
    results, whatever the workers do. [cache] enables the on-disk
    result cache; every fresh result is stored the moment it is
    collected, so finished work survives interruption. [journal]
    records each job's terminal state incrementally (see {!Journal});
    the caller owns the handle and closes it. [policy] supervises the
    workers (deadlines, retries, backoff — {!Pool.default_policy} keeps
    the legacy wait-forever behaviour). [stop] is polled between
    collect rounds; once true, in-flight workers are SIGKILLed and the
    remaining jobs are skipped. [jobs] sets the pool width (default
    {!Pool.default_jobs}) and [backend] the execution strategy
    ({!Pool.run}'s default when omitted: fork above one worker);
    backends are interchangeable — the deterministic jobs make the
    report identical across serial, fork and domain pools.
    [on_progress] is called after every settled job with the completed
    count and the total. *)
val run :
  ?cache:Cache.t ->
  ?journal:Journal.t ->
  ?policy:Pool.policy ->
  ?stop:(unit -> bool) ->
  ?jobs:int ->
  ?backend:Pool.backend ->
  ?on_progress:(completed:int -> total:int -> unit) ->
  grid ->
  outcome

(** [total_violations outcome] sums auditor violations over all jobs. *)
val total_violations : outcome -> int

(** [results_json outcome] is the array of per-job results — the
    deterministic payload (no timings), which a warm-cache re-run
    reproduces byte-for-byte. *)
val results_json : outcome -> Json.t

(** [report outcome] renders the per-point aggregate table plus a
    cache/pool summary line. Quarantined jobs render as an extra table
    (job point, seed, failure) and interruption as a trailing note —
    both only when present, so clean sweeps are byte-identical to the
    pre-supervision format. *)
val report : outcome -> string

(** [report_json outcome] renders the whole campaign (quarantined jobs,
    points and per-job results) as a JSON document (schema
    [rr-sim-sweep/5]), newline-terminated. *)
val report_json : outcome -> string
