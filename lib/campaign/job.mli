(** One fully-resolved point of a sweep grid.

    A job is everything needed to run one deterministic
    {!Experiments.Scenario}: the TCP variant, the gateway discipline,
    the injected data/ACK loss rates, the seed, the horizon and the
    flow count. Being a plain value with a canonical JSON form, a job
    can be hashed (the cache key), shipped to a forked worker, and
    stored next to its result. *)

type gateway = Droptail of int | Red of int  (** payload = buffer, packets *)

(** The network the job's flows cross: the paper's dumbbell, or a
    parking lot of k chained bottlenecks ({!Net.Topology.parking_lot})
    with every flow running end to end. *)
type topology = Dumbbell | Parking_lot of int  (** payload = hops *)

type t = {
  variant : Core.Variant.t;
  gateway : gateway;
  topology : topology;
  uniform_loss : float;  (** data-drop rate at R1 *)
  ack_loss : float;  (** ACK-drop rate on the reverse path *)
  reorder : float;
      (** packet-reordering probability at the bottleneck, 0 = off
          (hold-back bound {!Faults.Spec.default_reorder_extra}) *)
  flap_period : float;
      (** trunk-outage period in seconds, 0 = off; each outage lasts
          {!flap_down_for} with the buffer held *)
  cbr_share : float;
      (** CBR cross-traffic load as a fraction of the bottleneck
          capacity, 0 = off (occupies one extra topology slot) *)
  estimator : Tcp.Rto.estimator;
      (** the senders' RTO prediction algorithm
          ({!Tcp.Rto.Jacobson} = classic default) *)
  rrr_level : float;
      (** {!Tcp.Params.t.rrr_level} for {!Core.Variant.Rrr} senders;
          [0.5] = the Reno-equivalent default; other variants ignore
          it (and it never appears in their point labels) *)
  asym_ratio : float;
      (** forward:reverse trunk rate ratio ([asym:R] spec clause),
          0 = off; dumbbell only *)
  handover_period : float;
      (** seconds between cellular handovers ([handover:] spec
          clause), 0 = off; each handover darkens the trunk for
          {!handover_gap} and resumes at the next
          {!Faults.Spec.default_handover_levels} cell rate *)
  seed : int64;
  duration : float;  (** seconds *)
  flows : int;  (** same-variant flows sharing the bottleneck *)
  rwnd : int;  (** receiver advertised window, segments *)
}

(** [flap_down_for] is the fixed outage length of the [flap_period]
    axis: 300 ms. *)
val flap_down_for : float

(** [handover_gap] is the fixed dark-gap length of the
    [handover_period] axis: 400 ms. *)
val handover_gap : float

val gateway_name : gateway -> string

(** [topology_name t] is the sweep-axis spelling: ["dumbbell"] or
    ["parking-lot:<hops>"]. *)
val topology_name : topology -> string

(** [point_label job] names the grid point the job belongs to —
    everything but the seed — e.g. ["rr/droptail:8/loss 2%/ack 0%"].
    Jobs of one point differing only in seed aggregate together. *)
val point_label : t -> string

(** [digest job] is the content-addressed cache key: the hex MD5 of
    the job's canonical JSON (plus a schema tag, so incompatible cache
    entries from older layouts never alias). *)
val digest : t -> string

val to_json : t -> Json.t

(** {1 Execution} *)

type flow_metrics = {
  flow : int;
  goodput_bps : float;  (** cumulative-ACK goodput over the whole run *)
  drops : int;
  timeouts : int;
  retransmits : int;
  fast_retransmits : int;
}

type result = {
  job : t;
  flow_metrics : flow_metrics list;  (** one per flow, in flow order *)
  aggregate_goodput_bps : float;  (** sum over flows *)
  jain : float;  (** fairness index over per-flow goodputs *)
  audit_checks : int;  (** invariant evaluations during the run *)
  audit_violations : int;  (** failed invariant checks (0 = healthy) *)
}

(** [run job] executes the scenario under the runtime auditor and
    reduces it to metrics. Deterministic: equal jobs yield equal
    results, whichever process runs them. *)
val run : t -> result

val result_to_json : result -> Json.t

(** [result_of_json job json] decodes a cached result. The stored
    job is ignored in favour of [job] (the cache key already proved
    they match). *)
val result_of_json : t -> Json.t -> (result, string) Stdlib.result
