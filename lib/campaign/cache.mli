(** Content-addressed on-disk result cache.

    Each completed job's result is stored as pretty-printed JSON at
    [dir/<digest>.json], where the digest is {!Job.digest} — a stable
    hash of the fully-resolved job spec. Re-running a sweep therefore
    only executes the points whose spec actually changed; everything
    else is served from disk, byte-identical to the original run.

    Unreadable or mismatched entries (truncated file, older schema) are
    treated as misses, never as errors: the job simply runs again and
    overwrites the entry. *)

type t

(** [create ~dir ()] opens (and creates, recursively) the cache
    directory. *)
val create : dir:string -> unit -> t

val dir : t -> string

(** [find t job] is the cached result, if a valid entry exists. *)
val find : t -> Job.t -> Job.result option

(** [store t result] persists the entry (atomically: temp file +
    rename, so a crashed run never leaves a torn entry). *)
val store : t -> Job.result -> unit
