type t = { dir : string }

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ~dir () =
  mkdir_p dir;
  { dir }

let dir t = t.dir

let path t job = Filename.concat t.dir (Job.digest job ^ ".json")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let find t job =
  let path = path t job in
  if not (Sys.file_exists path) then None
  else
    match Json.of_string (read_file path) with
    | exception Sys_error _ -> None
    | Error _ -> None
    | Ok json -> (
      match Job.result_of_json job json with
      | Ok result -> Some result
      | Error _ -> None)

let store t result =
  let final = path t result.Job.job in
  let temp =
    Printf.sprintf "%s.%d.tmp" final (Unix.getpid ())
  in
  let oc = open_out_bin temp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Json.pretty (Job.result_to_json result));
      output_char oc '\n');
  Sys.rename temp final
