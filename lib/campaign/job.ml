type gateway = Droptail of int | Red of int

type topology = Dumbbell | Parking_lot of int

type t = {
  variant : Core.Variant.t;
  gateway : gateway;
  topology : topology;
  uniform_loss : float;
  ack_loss : float;
  reorder : float;
  flap_period : float;
  cbr_share : float;
  estimator : Tcp.Rto.estimator;
  rrr_level : float;
  asym_ratio : float;  (* forward:reverse trunk rate ratio; 0 = off *)
  handover_period : float;  (* seconds between handovers; 0 = off *)
  seed : int64;
  duration : float;
  flows : int;
  rwnd : int;
}

let flap_down_for = 0.3

let handover_gap = 0.4

let gateway_name = function
  | Droptail capacity -> Printf.sprintf "droptail:%d" capacity
  | Red capacity -> Printf.sprintf "red:%d" capacity

let topology_name = function
  | Dumbbell -> "dumbbell"
  | Parking_lot hops -> Printf.sprintf "parking-lot:%d" hops

let point_label job =
  let base =
    Printf.sprintf "%s/%s/loss %g%%/ack %g%%"
      (Core.Variant.name job.variant)
      (gateway_name job.gateway)
      (100.0 *. job.uniform_loss)
      (100.0 *. job.ack_loss)
  in
  (* Fault/workload axes appear only when active, so labels (and the
     reports built from them) look unchanged for classic grids. *)
  let base =
    if job.topology <> Dumbbell then base ^ "/" ^ topology_name job.topology
    else base
  in
  let base =
    if job.reorder > 0.0 then
      base ^ Printf.sprintf "/reorder %g%%" (100.0 *. job.reorder)
    else base
  in
  let base =
    if job.flap_period > 0.0 then
      base ^ Printf.sprintf "/flap %gs" job.flap_period
    else base
  in
  let base =
    if job.cbr_share > 0.0 then
      base ^ Printf.sprintf "/cbr %g%%" (100.0 *. job.cbr_share)
    else base
  in
  let base =
    if job.estimator <> Tcp.Rto.Jacobson then
      base ^ Printf.sprintf "/rto %s" (Tcp.Rto.estimator_name job.estimator)
    else base
  in
  let base =
    if job.asym_ratio > 0.0 then
      base ^ Printf.sprintf "/asym %g" job.asym_ratio
    else base
  in
  let base =
    if job.handover_period > 0.0 then
      base ^ Printf.sprintf "/handover %gs" job.handover_period
    else base
  in
  (* The level only matters to (and only labels) the RRR sender. *)
  if job.variant = Core.Variant.Rrr && job.rrr_level <> 0.5 then
    base ^ Printf.sprintf "/rrr %g" job.rrr_level
  else base

(* Bump whenever the job layout or the semantics of a run change, so
   stale cache entries can never be mistaken for current ones. *)
let schema = "rr-sim-campaign/7"

let to_json job =
  Json.Obj
    [
      ("variant", Json.Str (Core.Variant.name job.variant));
      ("gateway", Json.Str (gateway_name job.gateway));
      ("topology", Json.Str (topology_name job.topology));
      ("uniform_loss", Json.Num job.uniform_loss);
      ("ack_loss", Json.Num job.ack_loss);
      ("reorder", Json.Num job.reorder);
      ("flap_period", Json.Num job.flap_period);
      ("cbr_share", Json.Num job.cbr_share);
      ("rto", Json.Str (Tcp.Rto.estimator_name job.estimator));
      ("rrr_level", Json.Num job.rrr_level);
      ("asym_ratio", Json.Num job.asym_ratio);
      ("handover_period", Json.Num job.handover_period);
      ("seed", Json.Str (Int64.to_string job.seed));
      ("duration", Json.Num job.duration);
      ("flows", Json.Num (float_of_int job.flows));
      ("rwnd", Json.Num (float_of_int job.rwnd));
    ]

let digest job =
  Digest.to_hex (Digest.string (schema ^ "\n" ^ Json.to_string (to_json job)))

type flow_metrics = {
  flow : int;
  goodput_bps : float;
  drops : int;
  timeouts : int;
  retransmits : int;
  fast_retransmits : int;
}

type result = {
  job : t;
  flow_metrics : flow_metrics list;
  aggregate_goodput_bps : float;
  jain : float;
  audit_checks : int;
  audit_violations : int;
}

let run job =
  let gateway =
    match job.gateway with
    | Droptail capacity -> Net.Dumbbell.Droptail { capacity }
    | Red capacity -> Net.Dumbbell.Red { capacity; params = Net.Red.paper_params }
  in
  let cross_slots = if job.cbr_share > 0.0 then 1 else 0 in
  let config =
    {
      (Net.Dumbbell.paper_config ~flows:(job.flows + cross_slots)) with
      gateway;
    }
  in
  (* On a parking lot every job flow (and the CBR competitor, when the
     share axis is active) runs end to end across all [hops]
     bottlenecks; the runner's loss/fault knobs attach to the first
     bottleneck pair, as they do to the dumbbell trunks. *)
  let topology =
    match job.topology with
    | Dumbbell -> Experiments.Scenario.dumbbell config
    | Parking_lot hops ->
      let spec, endpoints =
        Net.Topology.parking_lot ~hops
          ~long_flows:(job.flows + cross_slots)
          ~cross_per_hop:0 ~config ()
      in
      Experiments.Scenario.graph ~bottleneck:"bottleneck0"
        ~loss_link:"bottleneck0"
        ~ack_loss_link:(Printf.sprintf "rbottleneck%d" (hops - 1))
        ~flap_links:[ "bottleneck0"; "rbottleneck0" ]
        ~spec ~endpoints ()
  in
  let params =
    {
      Tcp.Params.default with
      rwnd = job.rwnd;
      rto_estimator = job.estimator;
      rrr_level = job.rrr_level;
    }
  in
  let faults =
    let spec = Faults.Spec.none in
    let spec =
      if job.reorder > 0.0 then
        {
          spec with
          Faults.Spec.reorder =
            Some
              {
                Faults.Spec.prob = job.reorder;
                max_extra = Faults.Spec.default_reorder_extra;
              };
        }
      else spec
    in
    let spec =
      if job.flap_period > 0.0 then
        {
          spec with
          Faults.Spec.flaps =
            Some
              (Faults.Spec.Periodic
                 { period = job.flap_period; down_for = flap_down_for });
        }
      else spec
    in
    let spec =
      if job.handover_period > 0.0 then
        {
          spec with
          Faults.Spec.handover =
            Some
              {
                Faults.Spec.ho_period = job.handover_period;
                ho_gap = handover_gap;
                ho_levels = Faults.Spec.default_handover_levels;
              };
        }
      else spec
    in
    if job.asym_ratio > 0.0 then
      { spec with Faults.Spec.asym = Some job.asym_ratio }
    else spec
  in
  let cross =
    if job.cbr_share > 0.0 then
      [
        Experiments.Scenario.cbr
          ~rate_bps:
            (job.cbr_share *. config.Net.Dumbbell.bottleneck_bandwidth_bps)
          ();
      ]
    else []
  in
  let spec =
    Experiments.Scenario.make ~topology
      ~flows:(List.init job.flows (fun _ -> Experiments.Scenario.flow job.variant))
      ~params ~seed:job.seed ~duration:job.duration
      ~uniform_loss:job.uniform_loss ~ack_loss:job.ack_loss ~faults ~cross ()
  in
  let t = Experiments.Scenario.run spec in
  let mss = params.Tcp.Params.mss in
  let flow_metrics =
    List.init job.flows (fun flow ->
        let result = t.Experiments.Scenario.results.(flow) in
        let counters =
          result.Experiments.Scenario.agent.Tcp.Agent.base
            .Tcp.Sender_common.counters
        in
        {
          flow;
          goodput_bps =
            Stats.Metrics.effective_throughput_bps
              result.Experiments.Scenario.trace ~mss ~t0:0.0 ~t1:job.duration;
          drops = Experiments.Scenario.drops t ~flow;
          timeouts = counters.Tcp.Counters.timeouts;
          retransmits = counters.Tcp.Counters.retransmits;
          fast_retransmits = counters.Tcp.Counters.fast_retransmits;
        })
  in
  let goodputs = List.map (fun m -> m.goodput_bps) flow_metrics in
  let auditor = t.Experiments.Scenario.auditor in
  {
    job;
    flow_metrics;
    aggregate_goodput_bps = List.fold_left ( +. ) 0.0 goodputs;
    jain = Stats.Metrics.jain_index goodputs;
    audit_checks = Audit.Auditor.checks_run auditor;
    audit_violations = Audit.Auditor.violation_count auditor;
  }

let flow_metrics_to_json m =
  Json.Obj
    [
      ("flow", Json.Num (float_of_int m.flow));
      ("goodput_bps", Json.Num m.goodput_bps);
      ("drops", Json.Num (float_of_int m.drops));
      ("timeouts", Json.Num (float_of_int m.timeouts));
      ("retransmits", Json.Num (float_of_int m.retransmits));
      ("fast_retransmits", Json.Num (float_of_int m.fast_retransmits));
    ]

let result_to_json result =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("job", to_json result.job);
      ("flows", Json.List (List.map flow_metrics_to_json result.flow_metrics));
      ("aggregate_goodput_bps", Json.Num result.aggregate_goodput_bps);
      ("jain", Json.Num result.jain);
      ("audit_checks", Json.Num (float_of_int result.audit_checks));
      ("audit_violations", Json.Num (float_of_int result.audit_violations));
    ]

let ( let* ) = Result.bind

let field name coerce json =
  match Option.bind (Json.member name json) coerce with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or mistyped field %S" name)

let flow_metrics_of_json json =
  let* flow = field "flow" Json.to_int json in
  let* goodput_bps = field "goodput_bps" Json.to_float json in
  let* drops = field "drops" Json.to_int json in
  let* timeouts = field "timeouts" Json.to_int json in
  let* retransmits = field "retransmits" Json.to_int json in
  let* fast_retransmits = field "fast_retransmits" Json.to_int json in
  Ok { flow; goodput_bps; drops; timeouts; retransmits; fast_retransmits }

let result_of_json job json =
  let* stored_schema = field "schema" Json.to_str json in
  if stored_schema <> schema then
    Error (Printf.sprintf "schema mismatch: %S" stored_schema)
  else
    let* flows = field "flows" Json.to_list json in
    let* flow_metrics =
      List.fold_left
        (fun acc flow_json ->
          let* acc = acc in
          let* m = flow_metrics_of_json flow_json in
          Ok (m :: acc))
        (Ok []) flows
    in
    let* aggregate_goodput_bps = field "aggregate_goodput_bps" Json.to_float json in
    let* jain = field "jain" Json.to_float json in
    let* audit_checks = field "audit_checks" Json.to_int json in
    let* audit_violations = field "audit_violations" Json.to_int json in
    Ok
      {
        job;
        flow_metrics = List.rev flow_metrics;
        aggregate_goodput_bps;
        jain;
        audit_checks;
        audit_violations;
      }
