let default_jobs () = Domain.recommended_domain_count ()

type 'b worker = { pid : int; index : int; channel : in_channel }

let map ~jobs ?(on_done = fun _ -> ()) f items =
  let total = List.length items in
  if jobs <= 1 || total <= 1 then
    List.mapi
      (fun i item ->
        let value = f item in
        on_done (i + 1);
        value)
      items
  else begin
    let items = Array.of_list items in
    let results : ('b, string) result option array = Array.make total None in
    let running : (Unix.file_descr, 'b worker) Hashtbl.t = Hashtbl.create 8 in
    let next = ref 0 in
    let settled = ref 0 in
    let spawn index =
      (* Anything buffered in the parent would otherwise be flushed a
         second time by the child's channels. *)
      flush stdout;
      flush stderr;
      let read_fd, write_fd = Unix.pipe () in
      match Unix.fork () with
      | 0 ->
        (* Child: run the one task, ship the outcome, and leave without
           running at_exit handlers (Unix._exit skips the inherited
           buffer flushes). *)
        Unix.close read_fd;
        let value =
          try Ok (f items.(index))
          with e -> Error (Printexc.to_string e)
        in
        let oc = Unix.out_channel_of_descr write_fd in
        Marshal.to_channel oc value [];
        flush oc;
        Unix._exit 0
      | pid ->
        Unix.close write_fd;
        Hashtbl.replace running read_fd
          { pid; index; channel = Unix.in_channel_of_descr read_fd }
    in
    let collect fd =
      let worker = Hashtbl.find running fd in
      let value =
        match (Marshal.from_channel worker.channel : ('b, string) result) with
        | value -> value
        | exception End_of_file ->
          Error (Printf.sprintf "worker %d died without reporting" worker.pid)
      in
      close_in_noerr worker.channel;
      ignore (Unix.waitpid [] worker.pid);
      Hashtbl.remove running fd;
      results.(worker.index) <- Some value;
      incr settled;
      on_done !settled
    in
    while !next < total || Hashtbl.length running > 0 do
      while !next < total && Hashtbl.length running < jobs do
        spawn !next;
        incr next
      done;
      let fds = Hashtbl.fold (fun fd _ acc -> fd :: acc) running [] in
      let ready, _, _ = Unix.select fds [] [] (-1.0) in
      List.iter collect ready
    done;
    Array.to_list results
    |> List.map (function
         | Some (Ok value) -> value
         | Some (Error message) -> failwith ("campaign worker: " ^ message)
         | None -> assert false)
  end
