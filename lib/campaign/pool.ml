let default_jobs () = Domain.recommended_domain_count ()

(* -- execution backends -- *)

type backend = Serial | Forked | Domains

let backend_name = function
  | Serial -> "serial"
  | Forked -> "fork"
  | Domains -> "domains"

let backend_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "serial" -> Ok Serial
  | "fork" | "forked" -> Ok Forked
  | "domain" | "domains" -> Ok Domains
  | other -> Error (Printf.sprintf "unknown pool backend %S" other)

(* -- failure taxonomy -- *)

type failure =
  | Crashed of string
  | Timed_out of float
  | Gave_up of int

let failure_to_string = function
  | Crashed reason -> Printf.sprintf "crashed: %s" reason
  | Timed_out deadline -> Printf.sprintf "timed out after %gs" deadline
  | Gave_up attempts -> Printf.sprintf "gave up after %d attempts" attempts

type 'b outcome = Settled of 'b | Failed of failure | Not_run

(* -- supervision policy -- *)

type policy = { timeout : float option; retries : int; backoff : float }

let default_policy = { timeout = None; retries = 0; backoff = 0.5 }

(* -- deterministic chaos injection -- *)

type chaos_action = Crash | Hang | Truncate

type chaos_plan = index:int -> attempt:int -> chaos_action option

let chaos : chaos_plan option ref = ref None
let chaos_env = "RR_SIM_POOL_CHAOS"

let chaos_of_string spec =
  let ( let* ) = Result.bind in
  let parse_action name =
    match String.lowercase_ascii (String.trim name) with
    | "crash" -> Ok Crash
    | "hang" -> Ok Hang
    | "trunc" | "truncate" -> Ok Truncate
    | other -> Error (Printf.sprintf "unknown chaos action %S" other)
  in
  let parse_index s =
    match int_of_string_opt s with
    | Some index when index >= 0 -> Ok index
    | _ -> Error (Printf.sprintf "invalid chaos job index %S" s)
  in
  let parse_target action target =
    let target = String.trim target in
    let length = String.length target in
    if length = 0 then Error "empty chaos job index"
    else if target.[length - 1] = '*' then
      let* index = parse_index (String.sub target 0 (length - 1)) in
      Ok (index, `Every, action)
    else
      match String.index_opt target '@' with
      | Some at -> (
        let* index = parse_index (String.sub target 0 at) in
        match int_of_string_opt (String.sub target (at + 1) (length - at - 1)) with
        | Some attempt when attempt >= 1 -> Ok (index, `Only attempt, action)
        | _ -> Error (Printf.sprintf "invalid chaos attempt in %S" target))
      | None ->
        let* index = parse_index target in
        Ok (index, `First, action)
  in
  let parse_clause clause =
    match String.index_opt clause ':' with
    | None ->
      Error
        (Printf.sprintf "invalid chaos clause %S (expected ACTION:JOB[,JOB...])"
           clause)
    | Some colon ->
      let* action = parse_action (String.sub clause 0 colon) in
      let targets =
        String.split_on_char ','
          (String.sub clause (colon + 1) (String.length clause - colon - 1))
      in
      List.fold_left
        (fun acc target ->
          let* acc = acc in
          let* rule = parse_target action target in
          Ok (rule :: acc))
        (Ok []) targets
  in
  let* rules =
    List.fold_left
      (fun acc clause ->
        let* acc = acc in
        if String.trim clause = "" then Ok acc
        else
          let* rules = parse_clause clause in
          Ok (acc @ List.rev rules))
      (Ok [])
      (String.split_on_char ';' spec)
  in
  if rules = [] then Error "empty chaos spec"
  else
    Ok
      (fun ~index ~attempt ->
        List.find_map
          (fun (target, filter, action) ->
            if target <> index then None
            else
              match filter with
              | `First -> if attempt = 1 then Some action else None
              | `Every -> Some action
              | `Only only -> if attempt = only then Some action else None)
          rules)

let resolve_chaos () =
  match !chaos with
  | Some _ as plan -> plan
  | None -> (
    match Sys.getenv_opt chaos_env with
    | None -> None
    | Some spec -> (
      match chaos_of_string spec with
      | Ok plan -> Some plan
      | Error message ->
        invalid_arg (Printf.sprintf "%s: %s" chaos_env message)))

(* -- EINTR-safe primitives: with SIGINT/SIGTERM handlers installed,
   signal delivery during a sweep is expected, and must never abort a
   collect mid-flight. -- *)

let rec reap pid =
  match Unix.waitpid [] pid with
  | _, status -> status
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap pid

(* On EINTR, return no ready descriptors and let the caller's loop
   recompute deadlines (and notice a stop request) before blocking
   again. *)
let select_read fds timeout =
  match Unix.select fds [] [] timeout with
  | ready, _, _ -> ready
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> []

let signal_name signal =
  if signal = Sys.sigkill then "SIGKILL"
  else if signal = Sys.sigterm then "SIGTERM"
  else if signal = Sys.sigint then "SIGINT"
  else if signal = Sys.sigsegv then "SIGSEGV"
  else if signal = Sys.sigabrt then "SIGABRT"
  else Printf.sprintf "signal %d" signal

(* -- the supervised pool -- *)

type 'b worker = {
  pid : int;
  index : int;
  attempt : int;
  channel : in_channel;
  deadline : float option;  (* absolute wall clock, [gettimeofday] basis *)
}

type pending = { p_index : int; p_attempt : int; not_before : float }

let backoff_delay policy attempt =
  policy.backoff *. (2.0 ** float_of_int (attempt - 1))

let run_serial ~policy ~stop ~on_done ~on_retry ~on_settled f items =
  let settled = ref 0 in
  List.mapi
    (fun index item ->
      if stop () then Not_run
      else begin
        let rec attempt n =
          match f item with
          | value -> Settled value
          | exception e ->
            let failure = Crashed (Printexc.to_string e) in
            if n <= policy.retries && not (stop ()) then begin
              on_retry ~index ~attempt:n failure;
              Unix.sleepf (backoff_delay policy n);
              attempt (n + 1)
            end
            else if n = 1 then Failed failure
            else Failed (Gave_up n)
        in
        let outcome = attempt 1 in
        (match outcome with
        | Settled value -> on_settled ~index (Ok value)
        | Failed failure -> on_settled ~index (Error failure)
        | Not_run -> ());
        incr settled;
        on_done !settled;
        outcome
      end)
    items

let run_forked ~jobs ~policy ~stop ~on_done ~on_retry ~on_settled f items =
  let plan = resolve_chaos () in
  let items = Array.of_list items in
  let total = Array.length items in
  let statuses : 'b outcome option array = Array.make total None in
  let running : (Unix.file_descr, 'b worker) Hashtbl.t = Hashtbl.create 16 in
  let pending =
    ref
      (List.init total (fun i ->
           { p_index = i; p_attempt = 1; not_before = neg_infinity }))
  in
  let settled = ref 0 in
  let settle index outcome =
    statuses.(index) <-
      Some (match outcome with Ok v -> Settled v | Error f -> Failed f);
    incr settled;
    on_settled ~index outcome;
    on_done !settled
  in
  let spawn { p_index = index; p_attempt = attempt; _ } =
    (* Anything buffered in the parent would otherwise be flushed a
       second time by the child's channels. *)
    flush stdout;
    flush stderr;
    let action =
      match plan with None -> None | Some plan -> plan ~index ~attempt
    in
    let read_fd, write_fd = Unix.pipe () in
    match Unix.fork () with
    | 0 ->
      (* Child: run the one task, ship the outcome, and leave without
         running at_exit handlers (Unix._exit skips the inherited
         buffer flushes). Chaos actions reproduce the real-world
         failure, not a polite simulation of it: Crash dies by SIGKILL
         mid-job, Hang never reports, Truncate tears the payload. *)
      Unix.close read_fd;
      (match action with
      | Some Crash -> Unix.kill (Unix.getpid ()) Sys.sigkill
      | Some Hang ->
        while true do
          Unix.sleepf 3600.0
        done
      | Some Truncate | None -> ());
      let value =
        try Ok (f items.(index)) with e -> Error (Printexc.to_string e)
      in
      let oc = Unix.out_channel_of_descr write_fd in
      (match action with
      | Some Truncate ->
        let payload = Marshal.to_string value [] in
        output_substring oc payload 0 (String.length payload - 1)
      | _ -> Marshal.to_channel oc value []);
      flush oc;
      Unix._exit 0
    | pid ->
      Unix.close write_fd;
      let deadline =
        Option.map (fun t -> Unix.gettimeofday () +. t) policy.timeout
      in
      Hashtbl.replace running read_fd
        {
          pid;
          index;
          attempt;
          channel = Unix.in_channel_of_descr read_fd;
          deadline;
        }
  in
  let resolve worker = function
    | Ok value -> settle worker.index (Ok value)
    | Error failure ->
      if worker.attempt <= policy.retries then begin
        on_retry ~index:worker.index ~attempt:worker.attempt failure;
        pending :=
          !pending
          @ [
              {
                p_index = worker.index;
                p_attempt = worker.attempt + 1;
                not_before =
                  Unix.gettimeofday () +. backoff_delay policy worker.attempt;
              };
            ]
      end
      else if worker.attempt = 1 then settle worker.index (Error failure)
      else settle worker.index (Error (Gave_up worker.attempt))
  in
  let collect fd =
    match Hashtbl.find_opt running fd with
    | None -> ()
    | Some worker ->
      Hashtbl.remove running fd;
      let payload =
        match (Marshal.from_channel worker.channel : ('b, string) result) with
        | value -> Some value
        | exception End_of_file -> None
        (* A torn payload ("input_value: truncated object") means the
           worker died mid-write: the same crash as an empty pipe. *)
        | exception Failure _ -> None
      in
      close_in_noerr worker.channel;
      let status = reap worker.pid in
      let outcome =
        match (payload, status) with
        | Some (Ok value), _ -> Ok value
        | Some (Error message), _ -> Error (Crashed message)
        | None, Unix.WSIGNALED signal ->
          Error (Crashed (Printf.sprintf "killed by %s" (signal_name signal)))
        | None, Unix.WEXITED 0 -> Error (Crashed "truncated result payload")
        | None, Unix.WEXITED code ->
          Error (Crashed (Printf.sprintf "exited with status %d" code))
        | None, Unix.WSTOPPED signal ->
          Error (Crashed (Printf.sprintf "stopped by %s" (signal_name signal)))
      in
      resolve worker outcome
  in
  let kill_and_reap worker =
    (try Unix.kill worker.pid Sys.sigkill with Unix.Unix_error _ -> ());
    ignore (reap worker.pid);
    close_in_noerr worker.channel
  in
  let expire fd worker =
    (* If the result landed just as the deadline hit, prefer it. *)
    if select_read [ fd ] 0.0 <> [] then collect fd
    else begin
      Hashtbl.remove running fd;
      kill_and_reap worker;
      resolve worker
        (Error (Timed_out (Option.value ~default:0.0 policy.timeout)))
    end
  in
  let abort () =
    let workers = Hashtbl.fold (fun _ w acc -> w :: acc) running [] in
    Hashtbl.reset running;
    List.iter kill_and_reap workers
  in
  Fun.protect ~finally:abort (fun () ->
      while (not (stop ())) && (!pending <> [] || Hashtbl.length running > 0) do
        let now = Unix.gettimeofday () in
        (* Start every mature pending attempt while capacity allows. *)
        let rec start () =
          if Hashtbl.length running < jobs then
            match List.find_opt (fun p -> p.not_before <= now) !pending with
            | Some next ->
              pending := List.filter (fun p -> p != next) !pending;
              spawn next;
              start ()
            | None -> ()
        in
        start ();
        if !pending <> [] || Hashtbl.length running > 0 then begin
          let fds = Hashtbl.fold (fun fd _ acc -> fd :: acc) running [] in
          (* Sleep until a worker reports, the nearest deadline expires,
             or the nearest backed-off retry matures. *)
          let horizon =
            Hashtbl.fold
              (fun _ worker acc ->
                match worker.deadline with
                | Some deadline -> Float.min deadline acc
                | None -> acc)
              running
              (List.fold_left
                 (fun acc p -> Float.min p.not_before acc)
                 infinity !pending)
          in
          let timeout =
            if horizon = infinity then if fds = [] then 0.05 else -1.0
            else Float.max 0.0 (horizon -. Unix.gettimeofday ())
          in
          List.iter collect (select_read fds timeout);
          let now = Unix.gettimeofday () in
          let expired =
            Hashtbl.fold
              (fun fd worker acc ->
                match worker.deadline with
                | Some deadline when deadline <= now -> (fd, worker) :: acc
                | _ -> acc)
              running []
          in
          List.iter (fun (fd, worker) -> expire fd worker) expired
        end
      done);
  Array.to_list
    (Array.map (function Some status -> status | None -> Not_run) statuses)

(* -- the domain-sharded pool --

   A fixed team of [jobs] worker domains takes (index, attempt) tasks
   from a shared ready queue and pushes results onto a shared result
   queue, both guarded by one mutex; job specs live in a shared array
   the workers read in place — no fork, no Marshal. The supervisor
   (the calling domain) still owns all policy: it matures backed-off
   retries into the ready queue, starts each attempt's deadline when a
   worker stamps the task as picked up, and settles outcomes in input
   order. A byte over a pipe accompanies every pushed result so the
   supervisor can block in [select] with the same deadline horizon the
   fork backend uses ([Condition] has no timed wait).

   The semantic difference from fork: a domain cannot be SIGKILLed.
   An attempt that outlives its deadline is {e abandoned} — reported
   [Timed_out] exactly like fork — but its worker keeps running inside
   [f]. The supervisor spawns a replacement domain so pool capacity
   survives a genuinely hung job; if the abandoned attempt later
   finishes after all, its result is discarded and one surplus worker
   retires at its next queue visit. Chaos actions map accordingly:
   [Hang] hangs the worker cooperatively (recoverable only via a
   deadline, as with fork), while [Crash] and [Truncate] — process
   death and a torn Marshal payload, neither of which exists in-domain
   — degrade to an immediately failed attempt with a distinguishing
   message. *)

type 'b domain_result = {
  r_index : int;
  r_attempt : int;
  r_value : ('b, string) result;
}

let rec notify_byte fd =
  match Unix.write_substring fd "!" 0 1 with
  | _ -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> notify_byte fd

let run_domains ~jobs ~policy ~stop ~on_done ~on_retry ~on_settled f items =
  let plan = resolve_chaos () in
  let items = Array.of_list items in
  let total = Array.length items in
  let statuses : 'b outcome option array = Array.make total None in
  let m = Mutex.create () in
  let work_cond = Condition.create () in
  let ready : (int * int) Queue.t = Queue.create () in
  let results : 'b domain_result Queue.t = Queue.create () in
  let started : (int * int, float) Hashtbl.t = Hashtbl.create 16 in
  let shutdown = ref false in
  let retire = ref 0 in
  let notify_rd, notify_wr = Unix.pipe ~cloexec:true () in
  let worker () =
    let rec loop () =
      Mutex.lock m;
      let rec await () =
        if !shutdown then None
        else if !retire > 0 then begin
          decr retire;
          None
        end
        else if Queue.is_empty ready then begin
          Condition.wait work_cond m;
          await ()
        end
        else begin
          let task = Queue.pop ready in
          (* The attempt's deadline starts now, not when it was queued
             behind other work — same basis as fork, which forks (and
             stamps) only when capacity frees up. *)
          Hashtbl.replace started task (Unix.gettimeofday ());
          Some task
        end
      in
      let task = await () in
      Mutex.unlock m;
      match task with
      | None -> ()
      | Some (index, attempt) ->
        let action =
          match plan with None -> None | Some plan -> plan ~index ~attempt
        in
        let value =
          match action with
          | Some Crash -> Error "chaos crash (in-domain: no process to kill)"
          | Some Truncate ->
            Error "chaos truncate (in-domain: no payload to tear)"
          | Some Hang ->
            while true do
              Unix.sleepf 3600.0
            done;
            assert false
          | None -> (
            try Ok (f items.(index)) with e -> Error (Printexc.to_string e))
        in
        Mutex.lock m;
        Queue.push { r_index = index; r_attempt = attempt; r_value = value }
          results;
        Mutex.unlock m;
        (try notify_byte notify_wr with Unix.Unix_error _ -> ());
        loop ()
    in
    loop ()
  in
  let domains = ref [] in
  let spawn_worker () = domains := Domain.spawn worker :: !domains in
  for _ = 1 to min jobs (max total 1) do
    spawn_worker ()
  done;
  let pending =
    ref
      (List.init total (fun i ->
           { p_index = i; p_attempt = 1; not_before = neg_infinity }))
  in
  (* (index, attempt) attempts in flight on some worker, and those
     abandoned at their deadline whose late results must be dropped. *)
  let inflight : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  let abandoned : (int * int, unit) Hashtbl.t = Hashtbl.create 4 in
  let settled = ref 0 in
  let settle index outcome =
    statuses.(index) <-
      Some (match outcome with Ok v -> Settled v | Error f -> Failed f);
    incr settled;
    on_settled ~index outcome;
    on_done !settled
  in
  let resolve_failure ~index ~attempt failure =
    if attempt <= policy.retries then begin
      on_retry ~index ~attempt failure;
      pending :=
        !pending
        @ [
            {
              p_index = index;
              p_attempt = attempt + 1;
              not_before = Unix.gettimeofday () +. backoff_delay policy attempt;
            };
          ]
    end
    else if attempt = 1 then settle index (Error failure)
    else settle index (Error (Gave_up attempt))
  in
  while (not (stop ())) && (!pending <> [] || Hashtbl.length inflight > 0) do
    let now = Unix.gettimeofday () in
    let mature, immature =
      List.partition (fun p -> p.not_before <= now) !pending
    in
    pending := immature;
    if mature <> [] then begin
      Mutex.lock m;
      List.iter
        (fun p ->
          Hashtbl.replace inflight (p.p_index, p.p_attempt) ();
          Queue.push (p.p_index, p.p_attempt) ready;
          Condition.signal work_cond)
        mature;
      Mutex.unlock m
    end;
    (* Sleep until a worker reports, the nearest running attempt's
       deadline expires, or the nearest backed-off retry matures. *)
    let horizon =
      Mutex.lock m;
      let h =
        match policy.timeout with
        | None -> infinity
        | Some timeout ->
          Hashtbl.fold
            (fun key () acc ->
              match Hashtbl.find_opt started key with
              | Some t0 -> Float.min (t0 +. timeout) acc
              | None -> acc)
            inflight infinity
      in
      Mutex.unlock m;
      List.fold_left (fun acc p -> Float.min p.not_before acc) h !pending
    in
    let timeout =
      if horizon = infinity then -1.0
      else Float.max 0.0 (horizon -. Unix.gettimeofday ())
    in
    (match select_read [ notify_rd ] timeout with
    | [] -> ()
    | _ :: _ -> (
      let scratch = Bytes.create 256 in
      match Unix.read notify_rd scratch 0 256 with
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()));
    let fresh =
      Mutex.lock m;
      let batch = List.of_seq (Queue.to_seq results) in
      Queue.clear results;
      List.iter (fun r -> Hashtbl.remove started (r.r_index, r.r_attempt)) batch;
      Mutex.unlock m;
      batch
    in
    List.iter
      (fun { r_index = index; r_attempt = attempt; r_value = value } ->
        let key = (index, attempt) in
        if Hashtbl.mem abandoned key then begin
          (* The attempt was already reported Timed_out and replaced;
             drop the late result and shrink the pool back. *)
          Hashtbl.remove abandoned key;
          Mutex.lock m;
          incr retire;
          Condition.signal work_cond;
          Mutex.unlock m
        end
        else begin
          Hashtbl.remove inflight key;
          match value with
          | Ok v -> settle index (Ok v)
          | Error message -> resolve_failure ~index ~attempt (Crashed message)
        end)
      fresh;
    (match policy.timeout with
    | None -> ()
    | Some timeout ->
      let now = Unix.gettimeofday () in
      let expired =
        Mutex.lock m;
        let e =
          Hashtbl.fold
            (fun key () acc ->
              match Hashtbl.find_opt started key with
              | Some t0 when t0 +. timeout <= now -> key :: acc
              | _ -> acc)
            inflight []
        in
        Mutex.unlock m;
        e
      in
      List.iter
        (fun ((index, attempt) as key) ->
          Hashtbl.remove inflight key;
          Hashtbl.replace abandoned key ();
          (* The stuck worker cannot be reclaimed; keep the pool at
             strength for the remaining jobs. *)
          spawn_worker ();
          resolve_failure ~index ~attempt (Timed_out timeout))
        expired)
  done;
  let stopped = stop () in
  Mutex.lock m;
  shutdown := true;
  Condition.broadcast work_cond;
  Mutex.unlock m;
  (* Workers exit at their next queue visit. Joining is safe only when
     none is (possibly forever) inside [f]: skip it after a stop
     request or with abandoned attempts outstanding — those domains
     (and the notify pipe they may still poke) are left to process
     exit. *)
  if (not stopped) && Hashtbl.length abandoned = 0 then begin
    List.iter Domain.join !domains;
    (try Unix.close notify_rd with Unix.Unix_error _ -> ());
    try Unix.close notify_wr with Unix.Unix_error _ -> ()
  end;
  Array.to_list
    (Array.map (function Some status -> status | None -> Not_run) statuses)

let run ~jobs ?backend ?(policy = default_policy) ?(stop = fun () -> false)
    ?(on_done = fun _ -> ()) ?(on_retry = fun ~index:_ ~attempt:_ _ -> ())
    ?(on_settled = fun ~index:_ _ -> ()) f items =
  let backend =
    match backend with
    | Some backend -> backend
    | None -> if jobs <= 1 then Serial else Forked
  in
  match backend with
  | Serial -> run_serial ~policy ~stop ~on_done ~on_retry ~on_settled f items
  | Forked ->
    run_forked ~jobs:(max 1 jobs) ~policy ~stop ~on_done ~on_retry ~on_settled
      f items
  | Domains ->
    run_domains ~jobs:(max 1 jobs) ~policy ~stop ~on_done ~on_retry
      ~on_settled f items

let map ~jobs ?on_done f items =
  run ~jobs ?on_done f items
  |> List.map (function
       | Settled value -> value
       | Failed (Crashed message) -> failwith ("campaign worker: " ^ message)
       | Failed failure -> failwith ("campaign worker: " ^ failure_to_string failure)
       | Not_run -> assert false)
