(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (the printed reports are the reproduction artifacts), then
   times each experiment with Bechamel — one Test.make per paper
   artifact plus the RR design ablations and two micro-benchmarks of the
   simulator core.

     dune exec bench/main.exe             # full reproduction + timings
     dune exec bench/main.exe -- --fast   # skip the Bechamel pass *)

open Bechamel
open Toolkit

let banner title =
  Printf.printf "\n%s\n%s\n%s\n\n" (String.make 72 '=') title (String.make 72 '=')

(* -- the reproduction itself: print the paper-vs-measured reports -- *)

let reproduce () =
  banner "Figure 5 -- recovery throughput under bursty loss (drop-tail)";
  print_string (Experiments.Fig5.report (Experiments.Fig5.run ~drops:3 ()));
  print_newline ();
  print_string (Experiments.Fig5.report (Experiments.Fig5.run ~drops:6 ()));
  print_newline ();
  print_string
    (Experiments.Fig5.report_background (Experiments.Fig5.run_background ()));
  banner "Figure 6 -- recovery dynamics under RED gateways";
  let fig6 = Experiments.Fig6.run () in
  print_string (Experiments.Fig6.report fig6);
  List.iter
    (fun result ->
      Printf.printf "\nflow 1 sequence trace, %s:\n%s"
        (Core.Variant.name result.Experiments.Fig6.variant)
        (Experiments.Fig6.plot result))
    fig6.Experiments.Fig6.results;
  banner "Figure 7 -- fitness to the square-root model";
  let fig7 = Experiments.Fig7.run () in
  print_string (Experiments.Fig7.report fig7);
  print_newline ();
  print_string (Experiments.Fig7.plot fig7);
  banner "Table 5 -- fairness against TCP Reno";
  print_string (Experiments.Table5.report (Experiments.Table5.run ()));
  banner "RR design ablations";
  print_string (Experiments.Ablation.report (Experiments.Ablation.run ()));
  banner "Extension: Table 5 with limited transmit (RFC 3042)";
  Printf.printf
    "At 20 flows the fair window is ~2 segments, too small for three dup\n\
     ACKs, so every variant above is timeout-bound. RFC 3042 restores\n\
     dupack-based recovery - and with it the paper's case-4 ordering:\n\n";
  print_string
    (Experiments.Table5.report (Experiments.Table5.run ~limited_transmit:true ()));
  banner "Extension: ACK-loss robustness (paper section 2.3)";
  print_string (Experiments.Ack_loss.report (Experiments.Ack_loss.run ()));
  banner "Extension: global synchronization, drop-tail vs RED (section 3.3)";
  print_string (Experiments.Sync.report (Experiments.Sync.run ()));
  banner "Extension: Smooth-Start (paper reference [21])";
  print_string (Experiments.Smooth.report (Experiments.Smooth.run ()));
  banner "Extension: FACK (paper reference [13]) on the Figure 5 scenario";
  print_string
    (Experiments.Fig5.report
       (Experiments.Fig5.run ~drops:6
          ~variants:Core.Variant.[ Sack; Fack; Rr ] ()));
  banner "Extension: Vegas decomposition (paper reference [8])";
  print_string (Experiments.Vegas_claim.report (Experiments.Vegas_claim.run ()));
  banner "Extension: RTT fairness and AIMD convergence (section 5)";
  print_string (Experiments.Rtt_fairness.report (Experiments.Rtt_fairness.run ()));
  banner "Extension: two-way traffic and ACK compression (reference [22])";
  print_string (Experiments.Two_way.report (Experiments.Two_way.run ()));
  banner "Extension: environment-sensitivity sweep (buffer x delay grid)";
  print_string (Experiments.Sensitivity.report (Experiments.Sensitivity.run ()));
  banner "Extension: Figure 7 under delayed ACKs (C = sqrt(3/4))";
  print_string
    (Experiments.Fig7.report
       (Experiments.Fig7.run
          ~loss_rates:[ 0.005; 0.01; 0.02; 0.05; 0.1 ]
          ~seeds:[ 3L; 17L ] ~delayed_ack:true ()))

(* -- Bechamel timing: one test per artifact -- *)

let stage_unit f = Staged.stage (fun () -> ignore (f ()))

let tests =
  Test.make_grouped ~name:"rr-repro"
    [
      Test.make ~name:"fig5/3drops"
        (stage_unit (fun () -> Experiments.Fig5.run ~drops:3 ()));
      Test.make ~name:"fig5/6drops"
        (stage_unit (fun () -> Experiments.Fig5.run ~drops:6 ()));
      Test.make ~name:"fig6/red"
        (stage_unit (fun () ->
             Experiments.Fig6.run
               ~variants:Core.Variant.[ Newreno; Sack; Rr ] ()));
      Test.make ~name:"fig7/point"
        (stage_unit (fun () ->
             (* One representative sweep point; the full figure is 9 of
                these per variant pair. *)
             Experiments.Fig7.run ~loss_rates:[ 0.02 ] ~seeds:[ 3L ]
               ~duration:100.0 ()));
      Test.make ~name:"table5/all-cases"
        (stage_unit (fun () -> Experiments.Table5.run ~deadline:60.0 ()));
      Test.make ~name:"ablation/6drops"
        (stage_unit (fun () -> Experiments.Ablation.run ()));
      Test.make ~name:"ackloss/point"
        (stage_unit (fun () ->
             Experiments.Ack_loss.run ~rates:[ 0.1 ] ~seeds:[ 2L ] ()));
      Test.make ~name:"sync/droptail-vs-red"
        (stage_unit (fun () ->
             Experiments.Sync.run ~variants:[ Core.Variant.Rr ] ~duration:10.0 ()));
      Test.make ~name:"smooth/grid"
        (stage_unit (fun () -> Experiments.Smooth.run ()));
      Test.make ~name:"vegas/decomposition"
        (stage_unit (fun () -> Experiments.Vegas_claim.run ()));
      Test.make ~name:"two-way/ack-compression"
        (stage_unit (fun () ->
             Experiments.Two_way.run ~variants:[ Core.Variant.Rr ]
               ~duration:20.0 ()));
      Test.make ~name:"sensitivity/grid"
        (stage_unit (fun () ->
             Experiments.Sensitivity.run ~buffers:[ 8 ]
               ~delays:[ Sim.Units.ms 96.0 ] ()));
      Test.make ~name:"rtt-fairness/grid"
        (stage_unit (fun () ->
             Experiments.Rtt_fairness.run ~variants:[ Core.Variant.Rr ]
               ~duration:40.0 ()));
      Test.make ~name:"micro/engine-100k-events"
        (Staged.stage (fun () ->
             let engine = Sim.Engine.create () in
             for i = 1 to 100_000 do
               ignore
                 (Sim.Engine.schedule_after engine
                    ~delay:(float_of_int (i mod 97))
                    (fun () -> ()))
             done;
             Sim.Engine.run engine));
      Test.make ~name:"micro/rr-20s-lossy-flow"
        (stage_unit (fun () ->
             Experiments.Scenario.run
               (Experiments.Scenario.make
                  ~config:(Net.Dumbbell.paper_config ~flows:1)
                  ~flows:[ Experiments.Scenario.flow Core.Variant.Rr ]
                  ~params:{ Tcp.Params.default with rwnd = 20 }
                  ~seed:1L ~duration:20.0 ~uniform_loss:0.01 ())));
    ]

let measure () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 1.0) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        match Analyze.OLS.estimates ols_result with
        | Some [ nanoseconds ] -> (name, nanoseconds) :: acc
        | Some _ | None -> acc)
      results []
  in
  List.sort (fun (a, _) (b, _) -> compare a b) rows

let benchmark () =
  banner "Bechamel timings (wall-clock per experiment run)";
  List.iter
    (fun (name, nanoseconds) ->
      Printf.printf "  %-44s %10.3f ms/run\n" name (nanoseconds /. 1e6))
    (measure ())

(* Machine-readable timings for regression tracking; the checked-in
   bench/baseline.json is a snapshot of this output. *)
let benchmark_json () =
  let rows = measure () in
  print_string "{\"schema\":\"rr-sim-bench/1\",\"unit\":\"ms\",\"results\":{";
  List.iteri
    (fun i (name, nanoseconds) ->
      Printf.printf "%s\n  \"%s\": %.3f"
        (if i = 0 then "" else ",")
        name (nanoseconds /. 1e6))
    rows;
  print_string "\n}}\n"

let () =
  let has flag = Array.exists (fun a -> a = flag) Sys.argv in
  if has "--json" then benchmark_json ()
  else begin
    reproduce ();
    if not (has "--fast") then benchmark ()
  end
