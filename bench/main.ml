(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (the printed reports are the reproduction artifacts), then
   times each experiment with Bechamel — one Test.make per paper
   artifact plus the RR design ablations and micro-benchmarks of the
   simulator core.

     dune exec bench/main.exe               # full reproduction + timings
     dune exec bench/main.exe -- --fast     # skip the Bechamel pass
     dune exec bench/main.exe -- --json     # machine-readable timings
     dune exec bench/main.exe -- --check    # diff timings vs baseline.json
     dune exec bench/main.exe -- --only sched,link --check
                                            # restrict to benchmark-name
                                            # prefixes (perf-smoke uses this) *)

open Bechamel
open Toolkit

let banner title =
  Printf.printf "\n%s\n%s\n%s\n\n" (String.make 72 '=') title (String.make 72 '=')

(* -- the reproduction itself: every registered experiment's report -- *)

let reproduce () =
  List.iter
    (fun e ->
      banner
        (Printf.sprintf "%s -- %s" e.Experiments.Registry.name
           e.Experiments.Registry.synopsis);
      print_string (e.Experiments.Registry.run ~seed:7L))
    Experiments.Registry.all;
  banner "campaign -- cross-seed uniform-loss sweep (lib/campaign)";
  let outcome =
    Campaign.Sweep.run ~jobs:1
      (Campaign.Sweep.grid
         ~variants:Core.Variant.[ Newreno; Sack; Rr ]
         ~uniform_losses:[ 0.01; 0.05 ] ~seed_count:3 ~duration:10.0 ())
  in
  print_string (Campaign.Sweep.report outcome)

(* -- scheduler and link micro-benchmark bodies -- *)

let nop () = ()

(* 50k fire-and-forget events at scattered pseudo-random delays: the
   push/pop pattern of the simulation hot path, per scheduler. *)
let sched_push_pop scheduler () =
  let engine = Sim.Engine.create ~scheduler () in
  for round = 0 to 4 do
    for i = 1 to 10_000 do
      Sim.Engine.schedule_unit engine
        ~delay:(float_of_int (((i * 7919) + round) mod 1009) *. 0.001)
        nop
    done;
    Sim.Engine.run engine
  done

(* Same population through the handle path, cancelling every other
   event before the run drains the rest past the lazy deletions. *)
let sched_cancel scheduler () =
  let engine = Sim.Engine.create ~scheduler () in
  let handles = Array.make 10_000 None in
  for round = 0 to 4 do
    for i = 0 to 9_999 do
      handles.(i) <-
        Some
          (Sim.Engine.schedule_after engine
             ~delay:(float_of_int (((i * 7919) + round) mod 1009) *. 0.001)
             nop)
    done;
    for i = 0 to 9_999 do
      if i land 1 = 0 then
        match handles.(i) with
        | Some handle -> Sim.Engine.cancel engine handle
        | None -> ()
    done;
    Sim.Engine.run engine
  done

(* A link kept saturated by a 20k-packet backlog: every packet costs a
   serialization event plus a propagation event, all on the fused
   delivery-record path. *)
let link_saturated () =
  let engine = Sim.Engine.create () in
  let queue = Net.Droptail.create ~capacity:20_000 () in
  let delivered = ref 0 in
  let link =
    Net.Link.create ~engine ~bandwidth_bps:(Sim.Units.mbps 100.0) ~delay:0.001
      ~queue
      ~dst:(fun _ -> incr delivered)
      ()
  in
  for i = 1 to 20_000 do
    Net.Link.send link
      (Net.Packet.data ~uid:i ~flow:0 ~seq:i ~size_bytes:1000 ~born:0.0)
  done;
  Sim.Engine.run engine;
  assert (!delivered = 20_000)

(* The same 12-job sweep under each supervised backend, one worker
   each, so the fork/domains comparison isolates per-attempt dispatch
   cost (fork+Marshal vs shared-memory hand-off) from machine-dependent
   parallel speedup. A backend that quietly quarantined its jobs would
   "win" every timing, so a clean sweep is asserted. (The GC counters
   are per-process: the fork entry's words exclude allocation done in
   the children, the domain entry's include every worker.) *)
let campaign_sweep backend =
  let outcome =
    Campaign.Sweep.run ~jobs:1 ~backend
      (Campaign.Sweep.grid
         ~variants:Core.Variant.[ Newreno; Rr ]
         ~uniform_losses:[ 0.01; 0.05 ] ~seed_count:3 ~duration:5.0 ())
  in
  assert (outcome.Campaign.Sweep.quarantined = [] && outcome.skipped = 0)

(* -- Bechamel timing: one test per artifact -- *)

(* Kept as a plain (name, thunk) list so --only can restrict a run to
   name prefixes without paying for the rest. *)
let all_benchmarks : (string * (unit -> unit)) list =
  [
    ("fig5/3drops", fun () -> ignore (Experiments.Fig5.run ~drops:3 ()));
    ("fig5/6drops", fun () -> ignore (Experiments.Fig5.run ~drops:6 ()));
    ( "fig6/red",
      fun () ->
        ignore
          (Experiments.Fig6.run ~variants:Core.Variant.[ Newreno; Sack; Rr ] ())
    );
    ( "fig7/point",
      fun () ->
        (* One representative sweep point; the full figure is 9 of
           these per variant pair. *)
        ignore
          (Experiments.Fig7.run ~loss_rates:[ 0.02 ] ~seeds:[ 3L ]
             ~duration:100.0 ()) );
    ( "table5/all-cases",
      fun () -> ignore (Experiments.Table5.run ~deadline:60.0 ()) );
    ("ablation/6drops", fun () -> ignore (Experiments.Ablation.run ()));
    ( "ackloss/point",
      fun () -> ignore (Experiments.Ack_loss.run ~rates:[ 0.1 ] ~seeds:[ 2L ] ())
    );
    ( "sync/droptail-vs-red",
      fun () ->
        ignore (Experiments.Sync.run ~variants:[ Core.Variant.Rr ] ~duration:10.0 ())
    );
    ("smooth/grid", fun () -> ignore (Experiments.Smooth.run ()));
    ("vegas/decomposition", fun () -> ignore (Experiments.Vegas_claim.run ()));
    ( "two-way/ack-compression",
      fun () ->
        ignore
          (Experiments.Two_way.run ~variants:[ Core.Variant.Rr ] ~duration:20.0 ())
    );
    ( "sensitivity/grid",
      fun () ->
        ignore
          (Experiments.Sensitivity.run ~buffers:[ 8 ]
             ~delays:[ Sim.Units.ms 96.0 ] ()) );
    ( "rtt-fairness/grid",
      fun () ->
        ignore
          (Experiments.Rtt_fairness.run ~variants:[ Core.Variant.Rr ]
             ~duration:40.0 ()) );
    (* The same 12-job sweep under each supervised backend, one worker
       each so the comparison isolates per-attempt dispatch cost
       (fork+Marshal vs shared-memory hand-off) from machine-dependent
       parallel speedup. Registration order matters: the OCaml runtime
       refuses [Unix.fork] forever once any domain has been spawned in
       the process, so the fork entry must run first. *)
    ("campaign/12-job-fork", fun () -> campaign_sweep Campaign.Pool.Forked);
    ("campaign/12-job-domains", fun () -> campaign_sweep Campaign.Pool.Domains);
    ( "micro/engine-100k-events",
      fun () ->
        let engine = Sim.Engine.create () in
        for i = 1 to 100_000 do
          ignore
            (Sim.Engine.schedule_after engine
               ~delay:(float_of_int (i mod 97))
               nop)
        done;
        Sim.Engine.run engine );
    ( "micro/rr-20s-lossy-flow",
      fun () ->
        ignore
          (Experiments.Scenario.run
             (Experiments.Scenario.make
                ~topology:(Experiments.Scenario.dumbbell (Net.Dumbbell.paper_config ~flows:1))
                ~flows:[ Experiments.Scenario.flow Core.Variant.Rr ]
                ~params:{ Tcp.Params.default with rwnd = 20 }
                ~seed:1L ~duration:20.0 ~uniform_loss:0.01 ())) );
    ( "topology/parking-lot-3hop",
      fun () ->
        ignore
          (Experiments.Parking_lot.run ~variants:[ Core.Variant.Rr ]
             ~hop_counts:[ 3 ] ~duration:10.0 ()) );
    ( "many-flow/2k-flows-5s",
      fun () -> ignore (Experiments.Many_flow.run ~flows:2_000 ~duration:5.0 ())
    );
    (* The scale acceptance point: 50k flows for 60 simulated seconds
       must stay in single-digit wall-clock seconds and O(flows)
       memory. *)
    ( "many-flow/50k-flows-60s",
      fun () ->
        ignore (Experiments.Many_flow.run ~flows:50_000 ~duration:60.0 ()) );
    ("sched/push-pop", sched_push_pop `Calendar);
    ("sched/push-pop-heap", sched_push_pop `Heap);
    ("sched/cancel", sched_cancel `Calendar);
    ("sched/cancel-heap", sched_cancel `Heap);
    ("link/saturated", link_saturated);
  ]

let matches_only only name =
  only = []
  || List.exists (fun prefix -> String.starts_with ~prefix name) only

let tests ~only =
  Test.make_grouped ~name:"rr-repro"
    (List.filter_map
       (fun (name, f) ->
         if matches_only only name then
           Some (Test.make ~name (Staged.stage f))
         else None)
       all_benchmarks)

(* One benchmark's per-run estimates: wall clock plus the GC
   allocation counters, all OLS slopes over the same measurement run
   (Bechamel samples Gc minor/major words alongside the clock, so the
   counters cost no extra benchmark executions). *)
type row = { ms : float; minor_words : float; major_words : float }

let measure ~only () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances =
    Instance.[ monotonic_clock; minor_allocated; major_allocated ]
  in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 1.0) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances (tests ~only) in
  let estimates instance =
    let results = Analyze.all ols instance raw in
    Hashtbl.fold
      (fun name ols_result acc ->
        match Analyze.OLS.estimates ols_result with
        | Some [ value ] -> (name, value) :: acc
        | Some _ | None -> acc)
      results []
  in
  let times = estimates Instance.monotonic_clock in
  let minor = estimates Instance.minor_allocated in
  let major = estimates Instance.major_allocated in
  let words table name =
    Option.value ~default:0.0 (List.assoc_opt name table)
  in
  List.sort (fun (a, _) (b, _) -> compare a b) times
  |> List.map (fun (name, nanoseconds) ->
         ( name,
           {
             ms = nanoseconds /. 1e6;
             minor_words = words minor name;
             major_words = words major name;
           } ))

let benchmark ~only () =
  banner "Bechamel timings (wall-clock and GC words per experiment run)";
  List.iter
    (fun (name, row) ->
      Printf.printf "  %-44s %10.3f ms/run %14.0f minor-w %10.0f major-w\n"
        name row.ms row.minor_words row.major_words)
    (measure ~only ())

(* Machine-readable timings for regression tracking; the checked-in
   bench/baseline.json is a snapshot of this output. Schema 2 widened
   each entry from a bare ms number to {ms, minor_words, major_words}. *)
let benchmark_json ~only () =
  let rows = measure ~only () in
  print_string "{\"schema\":\"rr-sim-bench/2\",\"unit\":\"ms\",\"results\":{";
  List.iteri
    (fun i (name, row) ->
      Printf.printf
        "%s\n  \"%s\": {\"ms\": %.3f, \"minor_words\": %.0f, \"major_words\": \
         %.0f}"
        (if i = 0 then "" else ",")
        name row.ms row.minor_words row.major_words)
    rows;
  print_string "\n}}\n"

(* -- --check: diff fresh timings against the recorded baseline.
   Wall-clock comparisons across machines are only meaningful within a
   generous tolerance; the default factor 10 catches algorithmic
   regressions (and vanished benchmarks), not noise. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Baseline keys carry the Bechamel group prefix ("rr-repro/..."); the
   --only prefixes are written against the bare benchmark names. *)
let strip_group key =
  let prefix = "rr-repro/" in
  if String.starts_with ~prefix key then
    String.sub key (String.length prefix) (String.length key - String.length prefix)
  else key

let benchmark_check ~only ~baseline ~tolerance =
  let doc =
    match Campaign.Json.of_string (read_file baseline) with
    | Ok doc -> doc
    | Error message ->
      Printf.eprintf "cannot parse %s: %s\n" baseline message;
      exit 2
  in
  let recorded =
    match Option.bind (Campaign.Json.member "results" doc) Campaign.Json.to_obj with
    | Some fields ->
      List.filter_map
        (fun (name, v) ->
          (* Schema 2 entries are {ms, minor_words, major_words}
             objects; schema 1 baselines were bare numbers. *)
          let ms =
            match Option.bind (Campaign.Json.member "ms" v) Campaign.Json.to_float with
            | Some ms -> Some ms
            | None -> Campaign.Json.to_float v
          in
          Option.map (fun ms -> (name, ms)) ms)
        fields
    | None ->
      Printf.eprintf "%s has no results object\n" baseline;
      exit 2
  in
  let recorded =
    List.filter (fun (name, _) -> matches_only only (strip_group name)) recorded
  in
  let current = measure ~only () in
  let failures = ref 0 in
  let rows =
    List.map
      (fun (name, base_ms) ->
        match List.assoc_opt name current with
        | None ->
          incr failures;
          [ name; Printf.sprintf "%.3f" base_ms; "-"; "-"; "MISSING" ]
        | Some row ->
          let cur_ms = row.ms in
          let ratio = cur_ms /. base_ms in
          let ok = ratio <= tolerance in
          if not ok then incr failures;
          [
            name;
            Printf.sprintf "%.3f" base_ms;
            Printf.sprintf "%.3f" cur_ms;
            Printf.sprintf "%.2fx" ratio;
            (if ok then "ok" else "SLOW");
          ])
      recorded
  in
  let extra =
    List.filter (fun (name, _) -> List.assoc_opt name recorded = None) current
  in
  print_string
    (Stats.Text_table.render
       ~header:[ "benchmark"; "baseline (ms)"; "current (ms)"; "ratio"; "" ]
       rows);
  List.iter
    (fun (name, row) ->
      Printf.printf "new (not in baseline): %s  %.3f ms\n" name row.ms)
    extra;
  Printf.printf "\n%d benchmark(s) against %s, tolerance %.1fx: %d failure(s)\n"
    (List.length recorded) baseline tolerance !failures;
  if !failures > 0 then exit 1

let () =
  let argv = Array.to_list Sys.argv in
  let has flag = List.mem flag argv in
  let value_of flag default =
    let rec scan = function
      | f :: v :: _ when f = flag -> v
      | _ :: rest -> scan rest
      | [] -> default
    in
    scan argv
  in
  let only =
    match value_of "--only" "" with
    | "" -> []
    | prefixes -> String.split_on_char ',' prefixes
  in
  if has "--check" then
    benchmark_check ~only
      ~baseline:(value_of "--baseline" "bench/baseline.json")
      ~tolerance:(float_of_string (value_of "--tolerance" "10.0"))
  else if has "--json" then benchmark_json ~only ()
  else begin
    reproduce ();
    if not (has "--fast") then benchmark ~only ()
  end
