(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (the printed reports are the reproduction artifacts), then
   times each experiment with Bechamel — one Test.make per paper
   artifact plus the RR design ablations and micro-benchmarks of the
   simulator core.

     dune exec bench/main.exe               # full reproduction + timings
     dune exec bench/main.exe -- --fast     # skip the Bechamel pass
     dune exec bench/main.exe -- --json     # machine-readable timings
     dune exec bench/main.exe -- --check    # diff timings vs baseline.json *)

open Bechamel
open Toolkit

let banner title =
  Printf.printf "\n%s\n%s\n%s\n\n" (String.make 72 '=') title (String.make 72 '=')

(* -- the reproduction itself: every registered experiment's report -- *)

let reproduce () =
  List.iter
    (fun e ->
      banner
        (Printf.sprintf "%s -- %s" e.Experiments.Registry.name
           e.Experiments.Registry.synopsis);
      print_string (e.Experiments.Registry.run ~seed:7L))
    Experiments.Registry.all;
  banner "campaign -- cross-seed uniform-loss sweep (lib/campaign)";
  let outcome =
    Campaign.Sweep.run ~jobs:1
      (Campaign.Sweep.grid
         ~variants:Core.Variant.[ Newreno; Sack; Rr ]
         ~uniform_losses:[ 0.01; 0.05 ] ~seed_count:3 ~duration:10.0 ())
  in
  print_string (Campaign.Sweep.report outcome)

(* -- Bechamel timing: one test per artifact -- *)

let stage_unit f = Staged.stage (fun () -> ignore (f ()))

let tests =
  Test.make_grouped ~name:"rr-repro"
    [
      Test.make ~name:"fig5/3drops"
        (stage_unit (fun () -> Experiments.Fig5.run ~drops:3 ()));
      Test.make ~name:"fig5/6drops"
        (stage_unit (fun () -> Experiments.Fig5.run ~drops:6 ()));
      Test.make ~name:"fig6/red"
        (stage_unit (fun () ->
             Experiments.Fig6.run
               ~variants:Core.Variant.[ Newreno; Sack; Rr ] ()));
      Test.make ~name:"fig7/point"
        (stage_unit (fun () ->
             (* One representative sweep point; the full figure is 9 of
                these per variant pair. *)
             Experiments.Fig7.run ~loss_rates:[ 0.02 ] ~seeds:[ 3L ]
               ~duration:100.0 ()));
      Test.make ~name:"table5/all-cases"
        (stage_unit (fun () -> Experiments.Table5.run ~deadline:60.0 ()));
      Test.make ~name:"ablation/6drops"
        (stage_unit (fun () -> Experiments.Ablation.run ()));
      Test.make ~name:"ackloss/point"
        (stage_unit (fun () ->
             Experiments.Ack_loss.run ~rates:[ 0.1 ] ~seeds:[ 2L ] ()));
      Test.make ~name:"sync/droptail-vs-red"
        (stage_unit (fun () ->
             Experiments.Sync.run ~variants:[ Core.Variant.Rr ] ~duration:10.0 ()));
      Test.make ~name:"smooth/grid"
        (stage_unit (fun () -> Experiments.Smooth.run ()));
      Test.make ~name:"vegas/decomposition"
        (stage_unit (fun () -> Experiments.Vegas_claim.run ()));
      Test.make ~name:"two-way/ack-compression"
        (stage_unit (fun () ->
             Experiments.Two_way.run ~variants:[ Core.Variant.Rr ]
               ~duration:20.0 ()));
      Test.make ~name:"sensitivity/grid"
        (stage_unit (fun () ->
             Experiments.Sensitivity.run ~buffers:[ 8 ]
               ~delays:[ Sim.Units.ms 96.0 ] ()));
      Test.make ~name:"rtt-fairness/grid"
        (stage_unit (fun () ->
             Experiments.Rtt_fairness.run ~variants:[ Core.Variant.Rr ]
               ~duration:40.0 ()));
      Test.make ~name:"campaign/12-job-sweep"
        (stage_unit (fun () ->
             Campaign.Sweep.run ~jobs:1
               (Campaign.Sweep.grid
                  ~variants:Core.Variant.[ Newreno; Rr ]
                  ~uniform_losses:[ 0.01; 0.05 ] ~seed_count:3 ~duration:5.0 ())));
      Test.make ~name:"micro/engine-100k-events"
        (Staged.stage (fun () ->
             let engine = Sim.Engine.create () in
             for i = 1 to 100_000 do
               ignore
                 (Sim.Engine.schedule_after engine
                    ~delay:(float_of_int (i mod 97))
                    (fun () -> ()))
             done;
             Sim.Engine.run engine));
      Test.make ~name:"micro/rr-20s-lossy-flow"
        (stage_unit (fun () ->
             Experiments.Scenario.run
               (Experiments.Scenario.make
                  ~config:(Net.Dumbbell.paper_config ~flows:1)
                  ~flows:[ Experiments.Scenario.flow Core.Variant.Rr ]
                  ~params:{ Tcp.Params.default with rwnd = 20 }
                  ~seed:1L ~duration:20.0 ~uniform_loss:0.01 ())));
    ]

let measure () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 1.0) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        match Analyze.OLS.estimates ols_result with
        | Some [ nanoseconds ] -> (name, nanoseconds) :: acc
        | Some _ | None -> acc)
      results []
  in
  List.sort (fun (a, _) (b, _) -> compare a b) rows

let benchmark () =
  banner "Bechamel timings (wall-clock per experiment run)";
  List.iter
    (fun (name, nanoseconds) ->
      Printf.printf "  %-44s %10.3f ms/run\n" name (nanoseconds /. 1e6))
    (measure ())

(* Machine-readable timings for regression tracking; the checked-in
   bench/baseline.json is a snapshot of this output. *)
let benchmark_json () =
  let rows = measure () in
  print_string "{\"schema\":\"rr-sim-bench/1\",\"unit\":\"ms\",\"results\":{";
  List.iteri
    (fun i (name, nanoseconds) ->
      Printf.printf "%s\n  \"%s\": %.3f"
        (if i = 0 then "" else ",")
        name (nanoseconds /. 1e6))
    rows;
  print_string "\n}}\n"

(* -- --check: diff fresh timings against the recorded baseline.
   Wall-clock comparisons across machines are only meaningful within a
   generous tolerance; the default factor 10 catches algorithmic
   regressions (and vanished benchmarks), not noise. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let benchmark_check ~baseline ~tolerance =
  let doc =
    match Campaign.Json.of_string (read_file baseline) with
    | Ok doc -> doc
    | Error message ->
      Printf.eprintf "cannot parse %s: %s\n" baseline message;
      exit 2
  in
  let recorded =
    match Option.bind (Campaign.Json.member "results" doc) Campaign.Json.to_obj with
    | Some fields ->
      List.filter_map
        (fun (name, v) ->
          Option.map (fun ms -> (name, ms)) (Campaign.Json.to_float v))
        fields
    | None ->
      Printf.eprintf "%s has no results object\n" baseline;
      exit 2
  in
  let current = measure () in
  let failures = ref 0 in
  let rows =
    List.map
      (fun (name, base_ms) ->
        match List.assoc_opt name current with
        | None ->
          incr failures;
          [ name; Printf.sprintf "%.3f" base_ms; "-"; "-"; "MISSING" ]
        | Some nanoseconds ->
          let cur_ms = nanoseconds /. 1e6 in
          let ratio = cur_ms /. base_ms in
          let ok = ratio <= tolerance in
          if not ok then incr failures;
          [
            name;
            Printf.sprintf "%.3f" base_ms;
            Printf.sprintf "%.3f" cur_ms;
            Printf.sprintf "%.2fx" ratio;
            (if ok then "ok" else "SLOW");
          ])
      recorded
  in
  let extra =
    List.filter (fun (name, _) -> List.assoc_opt name recorded = None) current
  in
  print_string
    (Stats.Text_table.render
       ~header:[ "benchmark"; "baseline (ms)"; "current (ms)"; "ratio"; "" ]
       rows);
  List.iter
    (fun (name, nanoseconds) ->
      Printf.printf "new (not in baseline): %s  %.3f ms\n" name
        (nanoseconds /. 1e6))
    extra;
  Printf.printf "\n%d benchmark(s) against %s, tolerance %.1fx: %d failure(s)\n"
    (List.length recorded) baseline tolerance !failures;
  if !failures > 0 then exit 1

let () =
  let argv = Array.to_list Sys.argv in
  let has flag = List.mem flag argv in
  let value_of flag default =
    let rec scan = function
      | f :: v :: _ when f = flag -> v
      | _ :: rest -> scan rest
      | [] -> default
    in
    scan argv
  in
  if has "--check" then
    benchmark_check
      ~baseline:(value_of "--baseline" "bench/baseline.json")
      ~tolerance:(float_of_string (value_of "--tolerance" "10.0"))
  else if has "--json" then benchmark_json ()
  else begin
    reproduce ();
    if not (has "--fast") then benchmark ()
  end
