(* White-box tests for the baseline congestion-control variants, driven
   through the scripted harness: each test scripts a window, a loss and
   the returning ACK stream, then checks the variant's documented
   reaction. *)

open Tcp.Sender_common

(* Common preamble: grow the window to 20 sent segments (una = 12 after
   open_window acks everything below t_seqno), then pretend segment
   una+1 was lost and deliver three dup ACKs. *)
let with_loss create =
  let h = Harness.make create in
  Harness.open_window h ~target:20;
  ignore (Harness.sent h);
  h

(* -- Tahoe -- *)

let test_tahoe_fast_retransmit () =
  let h = with_loss Tcp.Tahoe.create in
  let b = Harness.base h in
  let window_before = window b in
  let una = b.una in
  Harness.dupacks h 3;
  let resent = Harness.sent h in
  (match resent with
  | { seq; retx = true; _ } :: _ ->
    Alcotest.(check int) "retransmits the hole" (una + 1) seq
  | _ -> Alcotest.fail "no fast retransmit");
  Alcotest.(check (float 1e-9)) "cwnd collapses to 1" 1.0 (cwnd b);
  Alcotest.(check bool) "ssthresh = win/2" true
    (Float.abs ((ssthresh b) -. Float.max (window_before /. 2.0) 2.0) < 1e-9);
  Alcotest.(check int) "no timeout involved" 0 b.counters.Tcp.Counters.timeouts

let test_tahoe_slow_start_after_loss () =
  let h = with_loss Tcp.Tahoe.create in
  let b = Harness.base h in
  let una = b.una in
  Harness.dupacks h 3;
  ignore (Harness.sent h);
  (* The retransmission fills the hole; receiver had buffered the rest. *)
  Harness.deliver_ack h (una + 1);
  Alcotest.(check (float 1e-9)) "slow start growth" 2.0 (cwnd b)

let test_tahoe_two_dupacks_no_action () =
  let h = with_loss Tcp.Tahoe.create in
  let b = Harness.base h in
  let cwnd_before = cwnd b in
  Harness.dupacks h 2;
  Alcotest.(check (list int)) "nothing sent" [] (Harness.sent_seqs h);
  Alcotest.(check (float 1e-9)) "cwnd unchanged" cwnd_before (cwnd b)

let test_tahoe_bugfix_guard () =
  let h = with_loss Tcp.Tahoe.create in
  let b = Harness.base h in
  Harness.dupacks h 3;
  ignore (Harness.sent h);
  let fast_retx = b.counters.Tcp.Counters.fast_retransmits in
  (* More dupacks at the same una: no second fast retransmit. *)
  Harness.dupacks h 5;
  Alcotest.(check int) "no re-trigger" fast_retx
    b.counters.Tcp.Counters.fast_retransmits

(* -- Reno -- *)

let test_reno_fast_recovery_inflation () =
  let h = with_loss Tcp.Reno.create in
  let b = Harness.base h in
  let window_before = window b in
  Harness.dupacks h 3;
  ignore (Harness.sent h);
  let halved = Float.max (window_before /. 2.0) 2.0 in
  Alcotest.(check (float 1e-9)) "cwnd = ssthresh + 3" (halved +. 3.0) (cwnd b);
  Alcotest.(check bool) "in recovery" true (b.phase = Recovery);
  (* Each further dup ACK inflates by one. *)
  Harness.dupack h;
  Alcotest.(check (float 1e-9)) "inflated" (halved +. 4.0) (cwnd b)

let test_reno_partial_ack_exits () =
  let h = with_loss Tcp.Reno.create in
  let b = Harness.base h in
  let una = b.una in
  Harness.dupacks h 3;
  (* A partial ACK (one hole filled, more remain) already deflates and
     leaves recovery: Reno's multi-loss weakness. *)
  Harness.deliver_ack h (una + 2);
  Alcotest.(check bool) "left recovery" true (b.phase <> Recovery);
  Alcotest.(check (float 1e-9)) "deflated to ssthresh+growth" (cwnd b) (cwnd b);
  Alcotest.(check bool) "cwnd near ssthresh" true
    ((cwnd b) <= (ssthresh b) +. 1.0 +. 1e-9)

(* -- New-Reno -- *)

let newreno_entered h =
  let b = Harness.base h in
  Harness.dupacks h 3;
  let sent = Harness.sent h in
  (b, sent)

let test_newreno_stays_in_recovery () =
  let h = with_loss Tcp.Newreno.create in
  let b, _ = newreno_entered h in
  let una = b.una in
  (* Partial ACK: still in recovery, and the next hole goes out at once. *)
  Harness.deliver_ack h (una + 2);
  Alcotest.(check bool) "still recovering" true (b.phase = Recovery);
  (match Harness.sent h with
  | { seq; retx = true; _ } :: _ ->
    Alcotest.(check int) "next hole retransmitted" (una + 3) seq
  | _ -> Alcotest.fail "expected hole retransmission")

let test_newreno_full_ack_exits () =
  let h = with_loss Tcp.Newreno.create in
  let b, _ = newreno_entered h in
  let recover = b.maxseq in
  Harness.deliver_ack h recover;
  Alcotest.(check bool) "recovery over" true (b.phase <> Recovery);
  Alcotest.(check (float 1e-9)) "cwnd = ssthresh" (ssthresh b) (cwnd b)

let test_newreno_sends_on_dupacks_in_recovery () =
  let h = with_loss Tcp.Newreno.create in
  let b, _ = newreno_entered h in
  (* Enough inflation lets new data out roughly one per two dupacks. *)
  Harness.dupacks h 8;
  let fresh = List.filter (fun s -> not s.Harness.retx) (Harness.sent h) in
  Alcotest.(check bool)
    (Printf.sprintf "%d new segments for 8 dupacks" (List.length fresh))
    true
    (List.length fresh >= 1 && List.length fresh <= 5);
  Alcotest.(check bool) "still in recovery" true (b.phase = Recovery)

(* -- SACK -- *)

let test_sack_wants_sack () =
  let h = Harness.make Tcp.Sack.create in
  Alcotest.(check bool) "receiver must generate sacks" true
    h.Harness.agent.Tcp.Agent.wants_sack

let test_sack_retransmits_holes_first () =
  let h = with_loss Tcp.Sack.create in
  let b = Harness.base h in
  let una = b.una in
  (* Receiver holds everything except una+1 and una+4. *)
  let blocks = [ (una + 2, una + 4); (una + 5, b.maxseq + 1) ] in
  Harness.dupacks ~sack:blocks h 3;
  let resent = List.filter (fun s -> s.Harness.retx) (Harness.sent h) in
  (match resent with
  | { seq; _ } :: _ -> Alcotest.(check int) "first hole" (una + 1) seq
  | [] -> Alcotest.fail "no retransmission");
  (* Drain the pipe with dupacks until the second hole goes out; it must
     go out before any new data. *)
  Harness.dupacks ~sack:blocks h 10;
  let sends = Harness.sent h in
  let hole2_sent = List.exists (fun s -> s.Harness.seq = una + 4) sends in
  Alcotest.(check bool) "second hole retransmitted" true hole2_sent;
  List.iter
    (fun s ->
      if not s.Harness.retx then
        Alcotest.(check bool) "new data only beyond maxseq" true
          (s.Harness.seq > una + 4))
    sends

let test_sack_no_rtx_of_sacked_data () =
  let h = with_loss Tcp.Sack.create in
  let b = Harness.base h in
  let una = b.una in
  let blocks = [ (una + 2, b.maxseq + 1) ] in
  Harness.dupacks ~sack:blocks h 13;
  let resent = List.filter (fun s -> s.Harness.retx) (Harness.sent h) in
  Alcotest.(check (list int)) "only the hole" [ una + 1 ]
    (List.map (fun s -> s.Harness.seq) resent)

let test_sack_exit_at_recover () =
  let h = with_loss Tcp.Sack.create in
  let b = Harness.base h in
  let una = b.una in
  let recover = b.maxseq in
  Harness.dupacks ~sack:[ (una + 2, recover + 1) ] h 3;
  Harness.deliver_ack h recover;
  Alcotest.(check bool) "recovery over" true (b.phase <> Recovery);
  Alcotest.(check (float 1e-9)) "cwnd = ssthresh" (ssthresh b) (cwnd b)

let test_sack_pipe_decrement_on_partial () =
  let h = with_loss Tcp.Sack.create in
  let b = Harness.base h in
  let una = b.una in
  (* Two holes: una+1 and una+3. *)
  let blocks = [ (una + 2, una + 3); (una + 4, b.maxseq + 1) ] in
  Harness.dupacks ~sack:blocks h 3;
  ignore (Harness.sent h);
  (* Partial ACK for the first hole keeps recovery open. *)
  Harness.deliver_ack ~sack:[ (una + 4, b.maxseq + 1) ] h (una + 2);
  Alcotest.(check bool) "still recovering" true (b.phase = Recovery)

(* -- FACK -- *)

let test_fack_triggers_on_forward_evidence () =
  let h = with_loss Tcp.Fack.create in
  let b = Harness.base h in
  let una = b.una in
  (* One duplicate ACK whose SACK block shows 8 segments beyond the
     hole already arrived: FACK enters recovery at once, without
     waiting for three duplicates. *)
  Harness.dupack ~sack:[ (una + 2, una + 10) ] h;
  Alcotest.(check bool) "recovery entered" true (b.phase = Recovery);
  let resent = List.filter (fun s -> s.Harness.retx) (Harness.sent h) in
  (match resent with
  | { seq; _ } :: _ -> Alcotest.(check int) "hole resent" (una + 1) seq
  | [] -> Alcotest.fail "no retransmission")

let test_fack_no_trigger_below_threshold () =
  let h = with_loss Tcp.Fack.create in
  let b = Harness.base h in
  let una = b.una in
  (* Only 2 segments beyond the hole: neither trigger condition met. *)
  Harness.dupack ~sack:[ (una + 2, una + 4) ] h;
  Alcotest.(check bool) "no recovery yet" true (b.phase <> Recovery)

let test_fack_holes_before_new_data () =
  let h = with_loss Tcp.Fack.create in
  let b = Harness.base h in
  let una = b.una in
  (* Two holes: una+1 and una+5; everything else up to maxseq held. *)
  let blocks = [ (una + 2, una + 5); (una + 6, b.maxseq + 1) ] in
  Harness.dupack ~sack:blocks h;
  let sends = Harness.sent h in
  let resent = List.filter (fun s -> s.Harness.retx) sends in
  Alcotest.(check (list int)) "both holes, in order" [ una + 1; una + 5 ]
    (List.map (fun s -> s.Harness.seq) resent);
  List.iter
    (fun s ->
      if not s.Harness.retx then
        Alcotest.(check bool) "new data beyond maxseq only" true
          (s.Harness.seq > b.una + 5))
    sends

let test_fack_exit_at_recover () =
  let h = with_loss Tcp.Fack.create in
  let b = Harness.base h in
  let una = b.una in
  let recover = b.maxseq in
  Harness.dupack ~sack:[ (una + 2, recover + 1) ] h;
  Alcotest.(check bool) "in recovery" true (b.phase = Recovery);
  Harness.deliver_ack h recover;
  Alcotest.(check bool) "out of recovery" true (b.phase <> Recovery);
  Alcotest.(check (float 1e-9)) "cwnd = ssthresh" (ssthresh b) (cwnd b)

(* -- timeout during recovery (all recovery-capable variants) -- *)

let test_timeout_during_recovery_resets create name =
  let h = with_loss create in
  let b = Harness.base h in
  Harness.dupacks h 3;
  ignore (Harness.sent h);
  (* No ACKs come back at all: the RTO must clear the recovery state
     and restart in slow start. *)
  Harness.advance h ~by:4.0;
  Alcotest.(check bool) (name ^ " left recovery") true (b.phase = Slow_start);
  Alcotest.(check (float 1e-9)) (name ^ " cwnd reset") 1.0 (cwnd b);
  Alcotest.(check bool) (name ^ " timeout counted") true
    (b.counters.Tcp.Counters.timeouts >= 1);
  (* Recovery must work again afterwards: deliver everything, lose one
     more segment, and watch fast retransmit re-trigger. *)
  Harness.deliver_ack h b.maxseq;
  ignore (Harness.sent h);
  let fast_before = b.counters.Tcp.Counters.fast_retransmits in
  ignore (Harness.sent h);
  Harness.dupacks h 3;
  Alcotest.(check bool) (name ^ " recovery re-arms") true
    (b.counters.Tcp.Counters.fast_retransmits >= fast_before)

let test_newreno_timeout_during_recovery () =
  test_timeout_during_recovery_resets Tcp.Newreno.create "newreno"

let test_sack_timeout_during_recovery () =
  test_timeout_during_recovery_resets Tcp.Sack.create "sack"

let test_reno_timeout_during_recovery () =
  test_timeout_during_recovery_resets Tcp.Reno.create "reno"

(* -- Relentless -- *)

let test_relentless_exact_decrease () =
  let h = with_loss Tcp.Relentless.create in
  let b = Harness.base h in
  let window_before = window b in
  let una = b.una in
  Harness.dupacks h 3;
  (match Harness.sent h with
  | { seq; retx = true; _ } :: _ ->
    Alcotest.(check int) "retransmits the hole" (una + 1) seq
  | _ -> Alcotest.fail "no fast retransmit");
  (* One loss known so far: the window comes down by exactly one
     segment, not by half. *)
  Alcotest.(check (float 1e-9)) "ssthresh = W - 1" (window_before -. 1.0)
    (ssthresh b);
  Alcotest.(check (float 1e-9)) "cwnd = W - 1, inflated by 3"
    (window_before +. 2.0) (cwnd b);
  Harness.dupack h;
  Alcotest.(check (float 1e-9)) "further dupacks inflate"
    (window_before +. 3.0) (cwnd b)

let test_relentless_full_ack_exit_window () =
  let h = with_loss Tcp.Relentless.create in
  let b = Harness.base h in
  let window_before = window b in
  Harness.dupacks h 3;
  Harness.deliver_ack h b.maxseq;
  Alcotest.(check bool) "recovery over" true (b.phase <> Recovery);
  Alcotest.(check (float 1e-9)) "exit at W - 1 after a single loss"
    (window_before -. 1.0) (cwnd b)

let test_relentless_partial_acks_subtract () =
  let h = with_loss Tcp.Relentless.create in
  let b = Harness.base h in
  let window_before = window b in
  let una = b.una in
  Harness.dupacks h 3;
  ignore (Harness.sent h);
  (* Each partial ACK reveals one more repaired hole; each subtracts
     exactly one more segment from the eventual exit window. *)
  Harness.deliver_ack h (una + 2);
  Alcotest.(check bool) "still recovering" true (b.phase = Recovery);
  (match Harness.sent h with
  | { seq; retx = true; _ } :: _ ->
    Alcotest.(check int) "next hole retransmitted" (una + 3) seq
  | _ -> Alcotest.fail "expected hole retransmission");
  Harness.deliver_ack h (una + 4);
  Alcotest.(check bool) "still recovering after 2nd partial" true
    (b.phase = Recovery);
  Harness.deliver_ack h b.maxseq;
  Alcotest.(check bool) "full ACK exits" true (b.phase <> Recovery);
  Alcotest.(check (float 1e-9)) "exit at W - 3 after three losses"
    (window_before -. 3.0) (cwnd b)

(* -- RRR -- *)

let test_rrr_half_level_matches_newreno () =
  (* At the default level 0.5 the relative reduction (1 - l) * W is
     exactly New-Reno's half-cut, so the two senders must be
     observationally identical on any script. *)
  let trace create =
    let h = with_loss create in
    let b = Harness.base h in
    let una = b.una in
    let log = ref [] in
    let snap () = log := ((cwnd b), (ssthresh b), Harness.sent_seqs h) :: !log in
    Harness.dupacks h 3;
    snap ();
    Harness.deliver_ack h (una + 2);
    snap ();
    Harness.dupacks h 2;
    snap ();
    Harness.deliver_ack h b.maxseq;
    snap ();
    List.rev !log
  in
  List.iter2
    (fun (c1, s1, q1) (c2, s2, q2) ->
      Alcotest.(check (float 1e-9)) "cwnd matches newreno" c1 c2;
      Alcotest.(check (float 1e-9)) "ssthresh matches newreno" s1 s2;
      Alcotest.(check (list int)) "sends match newreno" q1 q2)
    (trace Tcp.Newreno.create) (trace Tcp.Rrr.create)

let test_rrr_custom_level_backoff () =
  let params = { Harness.params with Tcp.Params.rrr_level = 0.2 } in
  let h = Harness.make ~params Tcp.Rrr.create in
  Harness.open_window h ~target:20;
  ignore (Harness.sent h);
  let b = Harness.base h in
  let w = window b in
  Harness.dupacks h 3;
  Alcotest.(check (float 1e-9)) "ssthresh = (1 - 0.2) W" (0.8 *. w) (ssthresh b);
  Alcotest.(check (float 1e-9)) "cwnd = (1 - 0.2) W, inflated by 3"
    ((0.8 *. w) +. 3.0) (cwnd b);
  Harness.deliver_ack h b.maxseq;
  Alcotest.(check bool) "recovery over" true (b.phase <> Recovery);
  Alcotest.(check (float 1e-9)) "exit at (1 - 0.2) W" (0.8 *. w) (cwnd b)

let test_rrr_timeout_takes_level () =
  let params = { Harness.params with Tcp.Params.rrr_level = 0.2 } in
  let h = Harness.make ~params Tcp.Rrr.create in
  Harness.open_window h ~target:20;
  ignore (Harness.sent h);
  let b = Harness.base h in
  let w = window b in
  (* No ACKs at all: the RTO fires, and ssthresh takes the same
     relative reduction instead of the standard half-cut. *)
  Harness.advance h ~by:4.0;
  Alcotest.(check bool) "timeout fired" true
    (b.counters.Tcp.Counters.timeouts >= 1);
  Alcotest.(check (float 1e-9)) "ssthresh = (1 - 0.2) W after RTO"
    (Float.max (0.8 *. w) 2.0) (ssthresh b);
  Alcotest.(check (float 1e-9)) "cwnd reset to 1" 1.0 (cwnd b);
  Alcotest.(check bool) "slow start restart" true (b.phase = Slow_start)

(* -- Karn's rule / RTO interaction (both new variants) -- *)

let test_karn_rto_interaction create name =
  let h = with_loss create in
  let b = Harness.base h in
  let una = b.una in
  Harness.dupacks h 3;
  ignore (Harness.sent h);
  (* Karn's rule: the fast retransmission of una+1 must not be timed —
     if anything is being timed now, it is fresh data beyond it. *)
  (match b.timed with
  | Some (seq, _) ->
    Alcotest.(check bool) (name ^ " retransmit not timed") true (seq > una + 1)
  | None -> ());
  (* An RTO inside recovery backs the timer off (no sample arrived to
     reset it) and restarts in slow start. *)
  let rto_before = Tcp.Rto.value b.rto in
  Harness.advance h ~by:8.0;
  Alcotest.(check bool) (name ^ " rto backed off") true
    (Tcp.Rto.value b.rto >= rto_before *. 2.0 -. 1e-9);
  Alcotest.(check bool) (name ^ " left recovery") true (b.phase = Slow_start);
  (* A clean ACK of fresh (never-retransmitted) data yields a sample
     again, which resets the backoff. *)
  Harness.deliver_ack h b.maxseq;
  ignore (Harness.sent h);
  Harness.advance h ~by:0.05;
  Harness.deliver_ack h b.maxseq;
  Alcotest.(check bool) (name ^ " sample resets backoff") true
    (Tcp.Rto.value b.rto < rto_before *. 2.0)

(* Cross-variant invariants under arbitrary ACK scripts: no sender may
   transmit beyond the application's data horizon, leave the window in
   an inconsistent state, or crash — whatever the (plausible) ACK
   pattern. *)
type script_op = Advance of int | Dup | Dup_with_sack | Pass of float

let script_gen =
  QCheck2.Gen.(
    list_size (int_range 1 60)
      (frequency
         [
           (3, map (fun n -> Advance n) (int_range 1 4));
           (4, return Dup);
           (2, return Dup_with_sack);
           (2, map (fun dt -> Pass dt) (float_range 0.01 0.5));
         ]))

let variant_makers =
  [
    ("tahoe", Tcp.Tahoe.create);
    ("reno", Tcp.Reno.create);
    ("newreno", Tcp.Newreno.create);
    ("sack", Tcp.Sack.create);
    ("fack", Tcp.Fack.create);
    ("vegas", Tcp.Vegas.create);
    ("rr", Core.Rr.create);
    ("relentless", Tcp.Relentless.create);
    ("rrr", Tcp.Rrr.create);
  ]

let prop_sender_invariants =
  QCheck2.Test.make ~name:"all variants keep sender invariants" ~count:200
    QCheck2.Gen.(pair (int_range 0 8) script_gen)
    (fun (variant_index, ops) ->
      let _, create = List.nth variant_makers variant_index in
      let h = Harness.make create in
      let limit = 50 in
      Tcp.Agent.supply_data h.Harness.agent ~segments:limit;
      Tcp.Agent.start h.Harness.agent;
      let b = Harness.base h in
      let ok = ref true in
      let check () =
        if
          not
            ((cwnd b) >= 1.0 && (ssthresh b) >= 2.0
            && b.t_seqno >= b.una + 1
            && b.una <= b.maxseq
            && b.maxseq < limit)
        then ok := false
      in
      List.iter
        (fun op ->
          (match op with
          | Advance n ->
            let target = min (b.una + n) b.maxseq in
            if target > b.una && not b.completed then
              Harness.deliver_ack h target
          | Dup ->
            if outstanding b > 0 && not b.completed then Harness.dupack h
          | Dup_with_sack ->
            if outstanding b > 0 && not b.completed then
              Harness.dupack
                ~sack:[ (b.una + 2, min (b.una + 6) (b.maxseq + 1)) ]
                h
          | Pass dt -> Harness.advance h ~by:dt);
          check ())
        ops;
      !ok)

let suite =
  [
    ( "tahoe",
      [
        Alcotest.test_case "fast retransmit" `Quick test_tahoe_fast_retransmit;
        Alcotest.test_case "slow start after loss" `Quick
          test_tahoe_slow_start_after_loss;
        Alcotest.test_case "2 dupacks no action" `Quick
          test_tahoe_two_dupacks_no_action;
        Alcotest.test_case "bugfix guard" `Quick test_tahoe_bugfix_guard;
      ] );
    ( "reno",
      [
        Alcotest.test_case "fast recovery inflation" `Quick
          test_reno_fast_recovery_inflation;
        Alcotest.test_case "partial ack exits" `Quick test_reno_partial_ack_exits;
        Alcotest.test_case "timeout during recovery" `Quick
          test_reno_timeout_during_recovery;
      ] );
    ( "newreno",
      [
        Alcotest.test_case "stays in recovery" `Quick test_newreno_stays_in_recovery;
        Alcotest.test_case "full ack exits" `Quick test_newreno_full_ack_exits;
        Alcotest.test_case "dupack-clocked sends" `Quick
          test_newreno_sends_on_dupacks_in_recovery;
        Alcotest.test_case "timeout during recovery" `Quick
          test_newreno_timeout_during_recovery;
      ] );
    ( "sack",
      [
        Alcotest.test_case "wants sack" `Quick test_sack_wants_sack;
        Alcotest.test_case "holes first" `Quick test_sack_retransmits_holes_first;
        Alcotest.test_case "no rtx of sacked" `Quick test_sack_no_rtx_of_sacked_data;
        Alcotest.test_case "exit at recover" `Quick test_sack_exit_at_recover;
        Alcotest.test_case "partial ack keeps recovery" `Quick
          test_sack_pipe_decrement_on_partial;
        Alcotest.test_case "timeout during recovery" `Quick
          test_sack_timeout_during_recovery;
      ] );
    ( "fack",
      [
        Alcotest.test_case "forward-evidence trigger" `Quick
          test_fack_triggers_on_forward_evidence;
        Alcotest.test_case "no premature trigger" `Quick
          test_fack_no_trigger_below_threshold;
        Alcotest.test_case "holes before new data" `Quick
          test_fack_holes_before_new_data;
        Alcotest.test_case "exit at recover" `Quick test_fack_exit_at_recover;
        Alcotest.test_case "timeout during recovery" `Quick (fun () ->
            test_timeout_during_recovery_resets Tcp.Fack.create "fack");
      ] );
    ( "relentless",
      [
        Alcotest.test_case "exact decrease on entry" `Quick
          test_relentless_exact_decrease;
        Alcotest.test_case "full ack exit window" `Quick
          test_relentless_full_ack_exit_window;
        Alcotest.test_case "partial acks subtract" `Quick
          test_relentless_partial_acks_subtract;
        Alcotest.test_case "timeout during recovery" `Quick (fun () ->
            test_timeout_during_recovery_resets Tcp.Relentless.create
              "relentless");
        Alcotest.test_case "karn/rto interaction" `Quick (fun () ->
            test_karn_rto_interaction Tcp.Relentless.create "relentless");
      ] );
    ( "rrr",
      [
        Alcotest.test_case "level 0.5 matches newreno" `Quick
          test_rrr_half_level_matches_newreno;
        Alcotest.test_case "custom level backoff" `Quick
          test_rrr_custom_level_backoff;
        Alcotest.test_case "timeout takes level" `Quick
          test_rrr_timeout_takes_level;
        Alcotest.test_case "timeout during recovery" `Quick (fun () ->
            test_timeout_during_recovery_resets Tcp.Rrr.create "rrr");
        Alcotest.test_case "karn/rto interaction" `Quick (fun () ->
            test_karn_rto_interaction Tcp.Rrr.create "rrr");
      ] );
    ( "variant invariants",
      [ QCheck_alcotest.to_alcotest prop_sender_invariants ] );
  ]
