(* TCP receiver tests: cumulative ACK generation, immediate duplicate
   ACKs on reordering, reassembly, SACK block generation, plus a qcheck
   property over random arrival orders. *)

type sent_ack = { ackno : int; sack : (int * int) list }

let make ?(sack = false) ?max_sack_blocks () =
  let engine = Sim.Engine.create () in
  let acks = ref [] in
  let receiver =
    Tcp.Receiver.create ~engine ~flow:0
      ~emit:(fun p ->
        match Net.Packet.kind p with
        | Net.Packet.Ack { ackno; sack } -> acks := { ackno; sack } :: !acks
        | Net.Packet.Data _ -> Alcotest.fail "receiver emitted data")
      ~sack ?max_sack_blocks ()
  in
  (receiver, acks)

let data seq = Net.Packet.data ~uid:seq ~flow:0 ~seq ~size_bytes:1000 ~born:0.0

let deliver receiver seqs = List.iter (fun s -> Tcp.Receiver.deliver receiver (data s)) seqs

let acknos acks = List.rev_map (fun a -> a.ackno) !acks

let test_in_order () =
  let receiver, acks = make () in
  deliver receiver [ 0; 1; 2 ];
  Alcotest.(check (list int)) "cumulative" [ 0; 1; 2 ] (acknos acks);
  Alcotest.(check int) "next expected" 3 (Tcp.Receiver.next_expected receiver);
  Alcotest.(check int) "received" 3 (Tcp.Receiver.segments_received receiver);
  Alcotest.(check int) "acks sent" 3 (Tcp.Receiver.acks_sent receiver)

let test_gap_generates_dupacks () =
  let receiver, acks = make () in
  deliver receiver [ 0; 2; 3; 4 ];
  (* Out-of-sequence arrivals each trigger an immediate dup ACK with the
     unchanged cumulative number (the paper's §2.2 requirement). *)
  Alcotest.(check (list int)) "dupacks" [ 0; 0; 0; 0 ] (acknos acks);
  Alcotest.(check int) "buffered" 3 (Tcp.Receiver.buffered receiver)

let test_hole_fill_jumps () =
  let receiver, acks = make () in
  deliver receiver [ 0; 2; 3; 1 ];
  Alcotest.(check (list int)) "jump to 3" [ 0; 0; 0; 3 ] (acknos acks);
  Alcotest.(check int) "nothing buffered" 0 (Tcp.Receiver.buffered receiver)

let test_duplicate_data_still_acked () =
  let receiver, acks = make () in
  deliver receiver [ 0; 1; 1; 0 ];
  Alcotest.(check (list int)) "every packet acked" [ 0; 1; 1; 1 ] (acknos acks);
  Alcotest.(check int) "duplicates counted" 2
    (Tcp.Receiver.duplicates_received receiver);
  Alcotest.(check int) "segments counted once" 2
    (Tcp.Receiver.segments_received receiver)

let test_sack_blocks () =
  let receiver, acks = make ~sack:true () in
  deliver receiver [ 0; 2; 4; 5 ];
  (match !acks with
  | { ackno = 0; sack } :: _ ->
    (* Most recent block (4-5, half-open 4-6) first. *)
    Alcotest.(check (list (pair int int))) "blocks" [ (4, 6); (2, 3) ] sack
  | _ -> Alcotest.fail "expected dup ack with sack");
  deliver receiver [ 1 ];
  match !acks with
  | { ackno = 2; sack } :: _ ->
    Alcotest.(check (list (pair int int))) "above-ack block remains" [ (4, 6) ] sack
  | _ -> Alcotest.fail "expected cumulative jump"

let test_sack_block_cap () =
  let receiver, acks = make ~sack:true ~max_sack_blocks:2 () in
  deliver receiver [ 2; 4; 6; 8 ];
  match !acks with
  | { sack; _ } :: _ -> Alcotest.(check int) "capped" 2 (List.length sack)
  | [] -> Alcotest.fail "no ack"

let test_no_sack_by_default () =
  let receiver, acks = make () in
  deliver receiver [ 0; 5 ];
  match !acks with
  | { sack; _ } :: _ -> Alcotest.(check (list (pair int int))) "empty" [] sack
  | [] -> Alcotest.fail "no ack"

let make_delack () =
  let engine = Sim.Engine.create () in
  let acks = ref [] in
  let receiver =
    Tcp.Receiver.create ~engine ~flow:0
      ~emit:(fun p ->
        match Net.Packet.kind p with
        | Net.Packet.Ack { ackno; sack } -> acks := { ackno; sack } :: !acks
        | Net.Packet.Data _ -> Alcotest.fail "data")
      ~delayed_ack:true ~delack_timeout:0.1 ()
  in
  (engine, receiver, acks)

let test_delack_every_second_segment () =
  let _, receiver, acks = make_delack () in
  deliver receiver [ 0 ];
  Alcotest.(check int) "first segment held" 0 (List.length !acks);
  deliver receiver [ 1 ];
  Alcotest.(check (list int)) "acked on the second" [ 1 ] (acknos acks);
  deliver receiver [ 2; 3 ];
  Alcotest.(check (list int)) "again every second" [ 1; 3 ] (acknos acks)

let test_delack_timeout_flushes () =
  let engine, receiver, acks = make_delack () in
  deliver receiver [ 0 ];
  Alcotest.(check int) "held" 0 (List.length !acks);
  Sim.Engine.run_until engine ~time:0.2;
  Alcotest.(check (list int)) "timer flushed the ack" [ 0 ] (acknos acks)

let test_delack_gap_acks_immediately () =
  let _, receiver, acks = make_delack () in
  deliver receiver [ 0 ];
  (* Out-of-order arrival: the held ACK situation must not delay the
     duplicate ACK the sender's loss detection needs. *)
  deliver receiver [ 5 ];
  Alcotest.(check bool) "dup ack sent at once" true
    (List.exists (fun a -> a.ackno = 0) !acks)

let test_delack_hole_fill_acks_immediately () =
  let _, receiver, acks = make_delack () in
  deliver receiver [ 0; 1 ];
  deliver receiver [ 3 ];
  let before = List.length !acks in
  deliver receiver [ 2 ];
  Alcotest.(check int) "immediate ack on hole fill" (before + 1)
    (List.length !acks);
  Alcotest.(check int) "cumulative over the buffer" 3
    (match !acks with a :: _ -> a.ackno | [] -> -2)

let test_rejects_acks () =
  let receiver, _ = make () in
  Alcotest.check_raises "ack" (Invalid_argument "Receiver.deliver: ACK packet")
    (fun () ->
      Tcp.Receiver.deliver receiver
        (Net.Packet.ack ~uid:1 ~flow:0 ~ackno:0 ~size_bytes:40 ~born:0.0 ()))

(* SACK blocks must always be well-formed: non-empty half-open ranges,
   entirely above the cumulative ACK, mutually disjoint, at most 3. *)
let prop_sack_blocks_well_formed =
  QCheck2.Test.make ~name:"sack blocks well-formed under any arrivals"
    ~count:300
    QCheck2.Gen.(list_size (int_range 1 40) (int_range 0 30))
    (fun seqs ->
      let receiver, acks = make ~sack:true () in
      deliver receiver seqs;
      List.for_all
        (fun { ackno; sack } ->
          List.length sack <= 3
          && List.for_all
               (fun (first, last_plus_one) ->
                 first < last_plus_one && first > ackno)
               sack
          &&
          let sorted =
            List.sort compare (List.map (fun (a, b) -> (a, b)) sack)
          in
          let rec disjoint = function
            | [] | [ _ ] -> true
            | (_, b1) :: ((a2, _) :: _ as rest) -> b1 <= a2 && disjoint rest
          in
          disjoint sorted)
        !acks)

(* Any permutation of 0..n-1, possibly with duplicates, ends with
   next_expected = n and one ACK per delivery. *)
let prop_any_order_reassembles =
  QCheck2.Test.make ~name:"receiver reassembles any arrival order" ~count:300
    QCheck2.Gen.(int_range 1 30 >>= fun n ->
                 map (fun shuffled -> (n, shuffled)) (shuffle_l (List.init n Fun.id)))
    (fun (n, order) ->
      let receiver, acks = make ~sack:true () in
      deliver receiver order;
      Tcp.Receiver.next_expected receiver = n
      && List.length !acks = List.length order
      && Tcp.Receiver.buffered receiver = 0)

let suite =
  [
    ( "receiver",
      [
        Alcotest.test_case "in order" `Quick test_in_order;
        Alcotest.test_case "gap dupacks" `Quick test_gap_generates_dupacks;
        Alcotest.test_case "hole fill jumps" `Quick test_hole_fill_jumps;
        Alcotest.test_case "duplicates acked" `Quick test_duplicate_data_still_acked;
        Alcotest.test_case "sack blocks" `Quick test_sack_blocks;
        Alcotest.test_case "sack cap" `Quick test_sack_block_cap;
        Alcotest.test_case "no sack by default" `Quick test_no_sack_by_default;
        Alcotest.test_case "delack every 2nd" `Quick test_delack_every_second_segment;
        Alcotest.test_case "delack timeout" `Quick test_delack_timeout_flushes;
        Alcotest.test_case "delack gap immediate" `Quick
          test_delack_gap_acks_immediately;
        Alcotest.test_case "delack hole fill immediate" `Quick
          test_delack_hole_fill_acks_immediately;
        Alcotest.test_case "rejects acks" `Quick test_rejects_acks;
        QCheck_alcotest.to_alcotest prop_any_order_reassembles;
        QCheck_alcotest.to_alcotest prop_sack_blocks_well_formed;
      ] );
  ]
