(* White-box TCP Vegas tests: fine-grained retransmission, the
   quarter-window cut, RTT-based congestion avoidance and cautious slow
   start — each mechanism in isolation where possible. *)

open Tcp.Sender_common

let make ?(mechanisms = Tcp.Vegas.full) () =
  Harness.make (fun ~engine ~params ~flow ~emit () ->
      Tcp.Vegas.create_with ~engine ~params ~flow ~emit ~mechanisms ())

(* Establish an RTT estimate of [rtt] with a couple of clean exchanges,
   then load a full window. *)
let warm_up h ~rtt =
  Harness.start ~segments:1_000_000 h;
  ignore (Harness.sent h);
  for ackno = 0 to 3 do
    Harness.advance h ~by:rtt;
    Harness.deliver_ack h ackno;
    ignore (Harness.sent h)
  done

let test_fine_retransmit_on_first_dupack () =
  let h = make () in
  warm_up h ~rtt:0.2;
  let b = Harness.base h in
  (* Age the oldest outstanding segment beyond srtt + 4*rttvar, then a
     single duplicate ACK triggers the retransmission — no need for
     three (the Vegas change §1 credits for the recovery gain). *)
  Harness.advance h ~by:0.8;
  let hole = b.una + 1 in
  Harness.dupack h;
  match List.filter (fun s -> s.Harness.retx) (Harness.sent h) with
  | [ { seq; _ } ] -> Alcotest.(check int) "oldest segment resent" hole seq
  | _ -> Alcotest.fail "expected exactly one fine-grained retransmission"

let test_fine_retransmit_quarter_cut () =
  let h = make () in
  warm_up h ~rtt:0.2;
  let b = Harness.base h in
  let cwnd_before = (cwnd b) in
  Harness.advance h ~by:0.8;
  Harness.dupack h;
  Alcotest.(check (float 1e-9)) "cwnd cut to 3/4" (cwnd_before *. 0.75) (cwnd b);
  (* A second loss signal within the same RTT must not cut again. *)
  Harness.dupack h;
  Alcotest.(check (float 1e-9)) "single cut per RTT" (cwnd_before *. 0.75) (cwnd b)

let test_no_fine_retransmit_when_fresh () =
  let h = make () in
  warm_up h ~rtt:0.2;
  (* Segments are fresh: one or two dupacks must not retransmit. *)
  Harness.dupack h;
  Harness.dupack h;
  Alcotest.(check (list int)) "nothing resent" []
    (List.filter_map
       (fun s -> if s.Harness.retx then Some s.Harness.seq else None)
       (Harness.sent h))

let test_three_dupack_fallback () =
  let h =
    make ~mechanisms:{ Tcp.Vegas.full with fine_retransmit = false } ()
  in
  warm_up h ~rtt:0.2;
  let b = Harness.base h in
  let hole = b.una + 1 in
  Harness.dupacks h 3;
  match List.filter (fun s -> s.Harness.retx) (Harness.sent h) with
  | [ { seq; _ } ] -> Alcotest.(check int) "classic fast retransmit" hole seq
  | _ -> Alcotest.fail "expected the three-dupack retransmission"

let test_rtt_based_avoidance_holds_when_backlogged () =
  let h = make () in
  let b = Harness.base h in
  b.phase <- Congestion_avoidance;
  set_cwnd b 10.0;
  Harness.start ~segments:1_000_000 h;
  ignore (Harness.sent h);
  (* baseRTT 0.2 established, then RTTs inflate to 0.4: backlog
     estimate = cwnd * 0.5 = big > beta: the window must shrink. *)
  Harness.advance h ~by:0.2;
  Harness.deliver_ack h 0;
  ignore (Harness.sent h);
  let before = (cwnd b) in
  Harness.advance h ~by:0.4;
  Harness.deliver_ack h (b.t_seqno - 1);
  Alcotest.(check bool)
    (Printf.sprintf "window shrinks under queueing (%.1f -> %.1f)" before (cwnd b))
    true ((cwnd b) < before)

let test_rtt_based_avoidance_grows_when_clear () =
  let h = make () in
  let b = Harness.base h in
  b.phase <- Congestion_avoidance;
  set_cwnd b 5.0;
  Harness.start ~segments:1_000_000 h;
  ignore (Harness.sent h);
  (* RTT stays at baseRTT: backlog 0 < alpha: grow one per epoch. *)
  Harness.advance h ~by:0.2;
  Harness.deliver_ack h 0;
  let before = (cwnd b) in
  Harness.advance h ~by:0.2;
  Harness.deliver_ack h (b.t_seqno - 1);
  Alcotest.(check (float 1e-9)) "plus one per RTT" (before +. 1.0) (cwnd b)

let test_cautious_slow_start_every_other_rtt () =
  let h = make () in
  let b = Harness.base h in
  Harness.start ~segments:1_000_000 h;
  ignore (Harness.sent h);
  (* Epoch 1 grows, epoch 2 holds (or vice versa): over two clean RTT
     epochs the window must grow strictly less than plain doubling
     twice would. *)
  let cwnd0 = (cwnd b) in
  Harness.advance h ~by:0.2;
  Harness.deliver_ack h 0;
  Harness.advance h ~by:0.2;
  Harness.deliver_ack h (b.t_seqno - 1);
  Alcotest.(check bool)
    (Printf.sprintf "damped slow start (%.1f -> %.1f)" cwnd0 (cwnd b))
    true
    ((cwnd b) < cwnd0 *. 4.0)

let test_fine_timeout_follows_estimator () =
  (* The fine-grained timer is routed through the sender's RTO
     estimator, not a hard-coded Jacobson formula. Under the fixed
     estimator the prediction never adapts from [initial_rto] = 3 s, so
     the 0.8 s aging that triggers a fine retransmission under Jacobson
     (see the first test) must leave the segment untouched here. *)
  let params =
    { Harness.params with Tcp.Params.rto_estimator = Tcp.Rto.Fixed }
  in
  let h =
    Harness.make ~params (fun ~engine ~params ~flow ~emit () ->
        Tcp.Vegas.create_with ~engine ~params ~flow ~emit
          ~mechanisms:Tcp.Vegas.full ())
  in
  warm_up h ~rtt:0.2;
  Harness.advance h ~by:0.8;
  Harness.dupack h;
  Alcotest.(check (list int)) "fixed estimator: nothing resent" []
    (List.filter_map
       (fun s -> if s.Harness.retx then Some s.Harness.seq else None)
       (Harness.sent h))

let test_cut_window_before_first_measurement () =
  (* A loss signal can arrive before Vegas has any per-segment RTT
     measurement (and before the estimator has a sample). The quarter
     cut must still happen, rate-limited by the conservative
     [initial_rto] stand-in rather than a zero RTT. *)
  let h =
    make ~mechanisms:{ Tcp.Vegas.full with fine_retransmit = false } ()
  in
  Harness.open_window h ~target:8;
  ignore (Harness.sent h);
  let b = Harness.base h in
  Alcotest.(check bool) "no estimator sample yet" true
    (Tcp.Rto.srtt b.rto = None);
  Harness.dupacks h 3;
  Alcotest.(check (float 1e-9)) "quarter cut from the fallback clock" 6.0
    (cwnd b);
  (* Further dupacks in the same burst must not cut again. *)
  Harness.dupacks h 2;
  Alcotest.(check (float 1e-9)) "still one cut" 6.0 (cwnd b)

let test_vegas_name_and_registry () =
  let h = make () in
  Alcotest.(check string) "agent name" "vegas" h.Harness.agent.Tcp.Agent.name;
  Alcotest.(check bool) "registry" true
    (Core.Variant.of_string "vegas" = Ok Core.Variant.Vegas)

let suite =
  [
    ( "vegas",
      [
        Alcotest.test_case "fine retransmit on 1st dupack" `Quick
          test_fine_retransmit_on_first_dupack;
        Alcotest.test_case "quarter cut, once per RTT" `Quick
          test_fine_retransmit_quarter_cut;
        Alcotest.test_case "fresh segments not resent" `Quick
          test_no_fine_retransmit_when_fresh;
        Alcotest.test_case "3-dupack fallback" `Quick test_three_dupack_fallback;
        Alcotest.test_case "avoidance shrinks on queueing" `Quick
          test_rtt_based_avoidance_holds_when_backlogged;
        Alcotest.test_case "avoidance grows when clear" `Quick
          test_rtt_based_avoidance_grows_when_clear;
        Alcotest.test_case "cautious slow start" `Quick
          test_cautious_slow_start_every_other_rtt;
        Alcotest.test_case "fine timeout follows estimator" `Quick
          test_fine_timeout_follows_estimator;
        Alcotest.test_case "cut before first measurement" `Quick
          test_cut_window_before_first_measurement;
        Alcotest.test_case "name and registry" `Quick test_vegas_name_and_registry;
      ] );
  ]
