(* FTP application model tests. *)

let test_segments_of_bytes () =
  Alcotest.(check int) "exact" 100 (Workload.Ftp.segments_of_bytes ~mss:1000 100_000);
  Alcotest.(check int) "round up" 101 (Workload.Ftp.segments_of_bytes ~mss:1000 100_001);
  Alcotest.(check int) "tiny" 1 (Workload.Ftp.segments_of_bytes ~mss:1000 1);
  Alcotest.check_raises "zero" (Invalid_argument "Ftp.segments_of_bytes: bytes <= 0")
    (fun () -> ignore (Workload.Ftp.segments_of_bytes ~mss:1000 0))

let loopback_agent engine =
  (* Sender and receiver glued back-to-back with no network: data is
     delivered (and acked) instantly via the engine queue. *)
  let agent_cell = ref None in
  let receiver_cell = ref None in
  let agent =
    Tcp.Newreno.create ~engine ~params:Tcp.Params.default ~flow:0
      ~emit:(fun packet ->
        ignore
          (Sim.Engine.schedule_after engine ~delay:0.01 (fun () ->
               match !receiver_cell with
               | Some receiver -> Tcp.Receiver.deliver receiver packet
               | None -> ())))
      ()
  in
  let receiver =
    Tcp.Receiver.create ~engine ~flow:0
      ~emit:(fun packet ->
        ignore
          (Sim.Engine.schedule_after engine ~delay:0.01 (fun () ->
               match !agent_cell with
               | Some agent -> agent.Tcp.Agent.deliver_ack packet
               | None -> ())))
      ()
  in
  agent_cell := Some agent;
  receiver_cell := Some receiver;
  (agent, receiver)

let test_persistent_starts_at () =
  let engine = Sim.Engine.create () in
  let agent, _ = loopback_agent engine in
  Workload.Ftp.persistent ~engine ~agent ~at:2.0;
  Sim.Engine.run_until engine ~time:1.9;
  Alcotest.(check int) "nothing before start" 0
    (Harness.params |> fun _ ->
     agent.Tcp.Agent.base.Tcp.Sender_common.counters.Tcp.Counters.segments_sent);
  Sim.Engine.run_until engine ~time:3.0;
  Alcotest.(check bool) "flowing after start" true
    (agent.Tcp.Agent.base.Tcp.Sender_common.counters.Tcp.Counters.segments_sent > 0)

let test_file_completion () =
  let engine = Sim.Engine.create () in
  let agent, receiver = loopback_agent engine in
  let completion = ref None in
  Workload.Ftp.file ~engine ~agent ~at:1.0 ~bytes:10_000
    ~on_complete:(fun c -> completion := Some c);
  Sim.Engine.run_until engine ~time:60.0;
  (match !completion with
  | Some c ->
    Alcotest.(check (float 1e-9)) "started" 1.0 c.Workload.Ftp.started;
    Alcotest.(check bool) "finished after start" true
      (c.Workload.Ftp.finished > 1.0)
  | None -> Alcotest.fail "transfer never completed");
  Alcotest.(check int) "receiver got everything" 10
    (Tcp.Receiver.next_expected receiver)

let test_supply_data_accumulates () =
  let engine = Sim.Engine.create () in
  let agent, receiver = loopback_agent engine in
  Tcp.Agent.start agent;
  Tcp.Agent.supply_data agent ~segments:3;
  Sim.Engine.run_until engine ~time:5.0;
  Alcotest.(check int) "first batch delivered" 3
    (Tcp.Receiver.next_expected receiver);
  (* A second batch extends the horizon; transfer resumes. *)
  Tcp.Agent.supply_data agent ~segments:2;
  Sim.Engine.run_until engine ~time:10.0;
  Alcotest.(check int) "second batch delivered" 5
    (Tcp.Receiver.next_expected receiver)

let test_supply_data_after_infinite_rejected () =
  let engine = Sim.Engine.create () in
  let agent, _ = loopback_agent engine in
  Tcp.Agent.supply_infinite agent;
  Alcotest.check_raises "mixing sources"
    (Invalid_argument "Agent.supply_data: source already infinite") (fun () ->
      Tcp.Agent.supply_data agent ~segments:5)

let suite =
  [
    ( "workload",
      [
        Alcotest.test_case "segments_of_bytes" `Quick test_segments_of_bytes;
        Alcotest.test_case "persistent start time" `Quick test_persistent_starts_at;
        Alcotest.test_case "file completion" `Quick test_file_completion;
        Alcotest.test_case "supply accumulates" `Quick test_supply_data_accumulates;
        Alcotest.test_case "source mixing rejected" `Quick
          test_supply_data_after_infinite_rejected;
      ] );
  ]
