(* FTP application model tests. *)

let test_segments_of_bytes () =
  Alcotest.(check int) "exact" 100 (Workload.Ftp.segments_of_bytes ~mss:1000 100_000);
  Alcotest.(check int) "round up" 101 (Workload.Ftp.segments_of_bytes ~mss:1000 100_001);
  Alcotest.(check int) "tiny" 1 (Workload.Ftp.segments_of_bytes ~mss:1000 1);
  Alcotest.check_raises "zero" (Invalid_argument "Ftp.segments_of_bytes: bytes <= 0")
    (fun () -> ignore (Workload.Ftp.segments_of_bytes ~mss:1000 0))

let loopback_agent engine =
  (* Sender and receiver glued back-to-back with no network: data is
     delivered (and acked) instantly via the engine queue. *)
  let agent_cell = ref None in
  let receiver_cell = ref None in
  let agent =
    Tcp.Newreno.create ~engine ~params:Tcp.Params.default ~flow:0
      ~emit:(fun packet ->
        ignore
          (Sim.Engine.schedule_after engine ~delay:0.01 (fun () ->
               match !receiver_cell with
               | Some receiver -> Tcp.Receiver.deliver receiver packet
               | None -> ())))
      ()
  in
  let receiver =
    Tcp.Receiver.create ~engine ~flow:0
      ~emit:(fun packet ->
        ignore
          (Sim.Engine.schedule_after engine ~delay:0.01 (fun () ->
               match !agent_cell with
               | Some agent -> agent.Tcp.Agent.deliver_ack packet
               | None -> ())))
      ()
  in
  agent_cell := Some agent;
  receiver_cell := Some receiver;
  (agent, receiver)

let test_persistent_starts_at () =
  let engine = Sim.Engine.create () in
  let agent, _ = loopback_agent engine in
  Workload.Ftp.persistent ~engine ~agent ~at:2.0;
  Sim.Engine.run_until engine ~time:1.9;
  Alcotest.(check int) "nothing before start" 0
    (Harness.params |> fun _ ->
     agent.Tcp.Agent.base.Tcp.Sender_common.counters.Tcp.Counters.segments_sent);
  Sim.Engine.run_until engine ~time:3.0;
  Alcotest.(check bool) "flowing after start" true
    (agent.Tcp.Agent.base.Tcp.Sender_common.counters.Tcp.Counters.segments_sent > 0)

let test_file_completion () =
  let engine = Sim.Engine.create () in
  let agent, receiver = loopback_agent engine in
  let completion = ref None in
  Workload.Ftp.file ~engine ~agent ~at:1.0 ~bytes:10_000
    ~on_complete:(fun c -> completion := Some c);
  Sim.Engine.run_until engine ~time:60.0;
  (match !completion with
  | Some c ->
    Alcotest.(check (float 1e-9)) "started" 1.0 c.Workload.Ftp.started;
    Alcotest.(check bool) "finished after start" true
      (c.Workload.Ftp.finished > 1.0)
  | None -> Alcotest.fail "transfer never completed");
  Alcotest.(check int) "receiver got everything" 10
    (Tcp.Receiver.next_expected receiver)

let test_supply_data_accumulates () =
  let engine = Sim.Engine.create () in
  let agent, receiver = loopback_agent engine in
  Tcp.Agent.start agent;
  Tcp.Agent.supply_data agent ~segments:3;
  Sim.Engine.run_until engine ~time:5.0;
  Alcotest.(check int) "first batch delivered" 3
    (Tcp.Receiver.next_expected receiver);
  (* A second batch extends the horizon; transfer resumes. *)
  Tcp.Agent.supply_data agent ~segments:2;
  Sim.Engine.run_until engine ~time:10.0;
  Alcotest.(check int) "second batch delivered" 5
    (Tcp.Receiver.next_expected receiver)

let test_supply_data_after_infinite_rejected () =
  let engine = Sim.Engine.create () in
  let agent, _ = loopback_agent engine in
  Tcp.Agent.supply_infinite agent;
  Alcotest.check_raises "mixing sources"
    (Invalid_argument "Agent.supply_data: source already infinite") (fun () ->
      Tcp.Agent.supply_data agent ~segments:5)

(* -- CBR cross-traffic -- *)

let test_cbr_rate_and_window () =
  let engine = Sim.Engine.create () in
  let emissions = ref [] in
  let cbr =
    Workload.Cbr.create ~engine ~flow:3 ~rate_bps:80_000.0 ~packet_bytes:1000
      ~at:1.0 ~until:2.0
      ~emit:(fun p ->
        emissions := (Sim.Engine.now engine, p) :: !emissions)
      ()
  in
  Sim.Engine.run engine;
  (* 80 kbps at 1000 B/packet = 10 packets/s over [1, 2): emissions at
     1.0, 1.1, ..., 1.9. *)
  Alcotest.(check (float 1e-9)) "interval" 0.1 (Workload.Cbr.interval cbr);
  Alcotest.(check int) "ten packets in the window" 10 (Workload.Cbr.sent cbr);
  Alcotest.(check int) "bytes total" 10_000 (Workload.Cbr.bytes_sent cbr);
  let emissions = List.rev !emissions in
  (match emissions with
  | (t0, p0) :: _ ->
    Alcotest.(check (float 1e-9)) "first at start" 1.0 t0;
    Alcotest.(check int) "tagged with the flow id" 3 p0.Net.Packet.flow
  | [] -> Alcotest.fail "no emissions");
  match List.rev emissions with
  | (t_last, _) :: _ ->
    Alcotest.(check bool) "nothing at or after until" true (t_last < 2.0)
  | [] -> assert false

let test_cbr_validation () =
  let engine = Sim.Engine.create () in
  Alcotest.check_raises "rate" (Invalid_argument "Cbr.create: rate_bps <= 0")
    (fun () ->
      ignore
        (Workload.Cbr.create ~engine ~flow:0 ~rate_bps:0.0 ~packet_bytes:1000
           ~at:0.0 ~until:1.0 ~emit:ignore ()))

(* -- Pareto on/off mice -- *)

let mice_fixture ~seed ~profile =
  let engine = Sim.Engine.create () in
  let agent, receiver = loopback_agent engine in
  let mice =
    Workload.Mice.create ~engine ~agent ~rng:(Sim.Rng.create seed) profile
  in
  Sim.Engine.run_until engine ~time:(profile.Workload.Mice.until +. 30.0);
  (mice, agent, receiver)

let short_mice until =
  { Workload.Mice.default with mean_size_bytes = 4_000.0; until }

let test_mice_bursts_and_completions () =
  let mice, _, receiver = mice_fixture ~seed:7L ~profile:(short_mice 20.0) in
  Alcotest.(check bool) "several bursts ran" true (Workload.Mice.bursts mice > 3);
  Alcotest.(check bool) "in-flight burst at until finishes" true
    (Workload.Mice.finished_bursts mice = Workload.Mice.bursts mice);
  Alcotest.(check int) "receiver got every supplied segment"
    (Workload.Mice.segments_supplied mice)
    (Tcp.Receiver.next_expected receiver);
  let completions = Workload.Mice.completions mice in
  Alcotest.(check int) "one completion per finished burst"
    (Workload.Mice.finished_bursts mice)
    (List.length completions);
  List.iter
    (fun c ->
      Alcotest.(check bool) "finished after started" true
        (c.Workload.Mice.finished > c.Workload.Mice.started);
      Alcotest.(check bool) "burst non-empty" true (c.Workload.Mice.segments > 0))
    completions;
  match Workload.Mice.mean_completion_time mice with
  | Some mean -> Alcotest.(check bool) "positive mean" true (mean > 0.0)
  | None -> Alcotest.fail "expected completions"

let test_mice_deterministic () =
  let timeline mice =
    List.map
      (fun c ->
        (c.Workload.Mice.started, c.Workload.Mice.finished,
         c.Workload.Mice.segments))
      (Workload.Mice.completions mice)
  in
  let a, _, _ = mice_fixture ~seed:11L ~profile:(short_mice 15.0) in
  let b, _, _ = mice_fixture ~seed:11L ~profile:(short_mice 15.0) in
  let c, _, _ = mice_fixture ~seed:12L ~profile:(short_mice 15.0) in
  Alcotest.(check bool) "same seed, same burst train" true
    (timeline a = timeline b);
  Alcotest.(check bool) "different seed differs" true (timeline a <> timeline c)

let test_mice_validation () =
  let engine = Sim.Engine.create () in
  let agent, _ = loopback_agent engine in
  let rng = Sim.Rng.create 1L in
  Alcotest.check_raises "shape must give a finite mean"
    (Invalid_argument "Mice.create: Pareto shapes must exceed 1") (fun () ->
      ignore
        (Workload.Mice.create ~engine ~agent ~rng
           { Workload.Mice.default with size_shape = 1.0; until = 10.0 }))

let suite =
  [
    ( "workload",
      [
        Alcotest.test_case "segments_of_bytes" `Quick test_segments_of_bytes;
        Alcotest.test_case "persistent start time" `Quick test_persistent_starts_at;
        Alcotest.test_case "file completion" `Quick test_file_completion;
        Alcotest.test_case "supply accumulates" `Quick test_supply_data_accumulates;
        Alcotest.test_case "source mixing rejected" `Quick
          test_supply_data_after_infinite_rejected;
        Alcotest.test_case "cbr rate and window" `Quick test_cbr_rate_and_window;
        Alcotest.test_case "cbr validation" `Quick test_cbr_validation;
        Alcotest.test_case "mice bursts and completions" `Quick
          test_mice_bursts_and_completions;
        Alcotest.test_case "mice deterministic" `Quick test_mice_deterministic;
        Alcotest.test_case "mice validation" `Quick test_mice_validation;
      ] );
  ]
