(* Differential determinism across event schedulers: every registered
   experiment must produce a byte-identical report whether its engines
   run on the binary heap or the calendar queue. This is the proof that
   the calendar queue preserves the stable-FIFO (time, insertion-order)
   contract end to end — any ordering divergence anywhere in the event
   path shows up here as a report diff. *)

let with_scheduler scheduler f =
  let saved = Sim.Engine.default_scheduler () in
  Sim.Engine.set_default_scheduler scheduler;
  Fun.protect ~finally:(fun () -> Sim.Engine.set_default_scheduler saved) f

let test_registry_reports_identical () =
  List.iter
    (fun e ->
      let run scheduler =
        with_scheduler scheduler (fun () -> e.Experiments.Registry.run ~seed:7L)
      in
      let heap = run `Heap in
      let calendar = run `Calendar in
      Alcotest.(check string)
        (e.Experiments.Registry.name ^ " report byte-identical")
        heap calendar)
    Experiments.Registry.all

(* The same guarantee for the raw event stream of a traced scenario:
   the JSONL traces (every send, ACK, recovery transition and queue
   event, timestamped) must match line for line. *)
let test_traced_scenario_identical () =
  let trace scheduler =
    with_scheduler scheduler (fun () ->
        let path = Filename.temp_file "rr-sched" ".jsonl" in
        let out = open_out path in
        let spec =
          Experiments.Scenario.make
            ~topology:(Experiments.Scenario.dumbbell (Net.Dumbbell.paper_config ~flows:2))
            ~flows:
              [
                Experiments.Scenario.flow Core.Variant.Rr;
                Experiments.Scenario.flow Core.Variant.Sack;
              ]
            ~params:{ Tcp.Params.default with rwnd = 20 }
            ~seed:11L ~duration:10.0 ~uniform_loss:0.02 ~ack_loss:0.01
            ~trace_out:out ()
        in
        ignore (Experiments.Scenario.run spec : Experiments.Scenario.t);
        close_out out;
        let ic = open_in_bin path in
        let contents =
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        Sys.remove path;
        contents)
  in
  let heap = trace `Heap in
  let calendar = trace `Calendar in
  Alcotest.(check bool) "trace non-trivial" true (String.length heap > 10_000);
  Alcotest.(check string) "event stream byte-identical" heap calendar

let suite =
  [
    ( "scheduler-diff",
      [
        Alcotest.test_case "registry reports byte-identical" `Slow
          test_registry_reports_identical;
        Alcotest.test_case "traced scenario byte-identical" `Quick
          test_traced_scenario_identical;
      ] );
  ]
