(* Unit-conversion helpers. *)

let close = Alcotest.(check (float 1e-12))

let test_time () =
  close "ms" 0.005 (Sim.Units.ms 5.0);
  close "us" 0.000002 (Sim.Units.us 2.0)

let test_rates () =
  close "kbps" 800_000.0 (Sim.Units.kbps 800.0);
  close "mbps" 800_000.0 (Sim.Units.mbps 0.8)

let test_sizes () =
  Alcotest.(check int) "kilobytes" 100_000 (Sim.Units.kilobytes 100.0);
  close "bits of bytes" 8000.0 (Sim.Units.bits_of_bytes 1000)

let test_transmission_time () =
  (* 1000 B at 0.8 Mbps = 10 ms, the paper's bottleneck serialization. *)
  close "1000B @ 0.8Mbps" 0.01
    (Sim.Units.transmission_time ~size_bytes:1000
       ~bandwidth_bps:(Sim.Units.mbps 0.8));
  close "40B ack @ 10Mbps" 0.000032
    (Sim.Units.transmission_time ~size_bytes:40
       ~bandwidth_bps:(Sim.Units.mbps 10.0))

let suite =
  [
    ( "units",
      [
        Alcotest.test_case "time" `Quick test_time;
        Alcotest.test_case "rates" `Quick test_rates;
        Alcotest.test_case "sizes" `Quick test_sizes;
        Alcotest.test_case "transmission time" `Quick test_transmission_time;
      ] );
  ]
