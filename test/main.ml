let () =
  Alcotest.run "rr-repro"
    (Test_heap.suite @ Test_calqueue.suite @ Test_rng.suite @ Test_engine.suite
   @ Test_units.suite
   @ Test_packet.suite @ Test_seqset.suite @ Test_queues.suite
   @ Test_link.suite @ Test_loss.suite @ Test_dumbbell.suite @ Test_rto.suite
   @ Test_receiver.suite @ Test_sender_common.suite @ Test_variants.suite
   @ Test_rr.suite @ Test_vegas.suite @ Test_stats.suite @ Test_model.suite
   @ Test_workload.suite @ Test_faults.suite @ Test_variant_registry.suite
   @ Test_integration.suite @ Test_two_way.suite @ Test_experiments.suite
   @ Test_audit.suite @ Test_campaign.suite @ Test_scheduler_diff.suite
   @ Test_topology.suite @ Test_flock.suite @ Test_topology_diff.suite)
