(* Pool-backend equivalence and domain-pool semantics.

   This suite lives in its own test executable on purpose: the OCaml
   runtime permanently refuses [Unix.fork] once any domain has been
   spawned in the process — even after every domain is joined — so all
   fork-backed work must happen before the first [Domains]-backed run.
   Keeping the whole ordering inside this one file, in its own
   process, makes it impossible for a reshuffle of the main suite to
   break it: the first test below exercises serial, then fork, then
   domains, and everything after it is domain-only (plus the test that
   pins down the fork poisoning itself). *)

let tiny_grid ?(seed_count = 2) () =
  Campaign.Sweep.grid
    ~variants:Core.Variant.[ Newreno; Rr ]
    ~uniform_losses:[ 0.01 ] ~seed:11L ~seed_count ~duration:3.0 ~flows:2 ()

let temp_path suffix =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "rr-backends-%d-%d%s" (Unix.getpid ()) (Random.bits ())
       suffix)

let with_chaos plan f =
  Campaign.Pool.chaos := Some plan;
  Fun.protect ~finally:(fun () -> Campaign.Pool.chaos := None) f

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec loop i =
    i + n <= h && (String.sub haystack i n = needle || loop (i + 1))
  in
  loop 0

let check_contains what needle haystack =
  if not (contains ~needle haystack) then
    Alcotest.failf "%s: %S not found in %S" what needle haystack

(* Journal lines across backends differ only in their wall-clock
   stamps and settle order; zero the stamp and sort to compare. *)
let canonical_journal path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       let line = input_line ic in
       let line =
         if String.starts_with ~prefix:{|{"t":|} line then
           match String.index_opt line ',' with
           | Some comma ->
             {|{"t":0|}
             ^ String.sub line comma (String.length line - comma)
           | None -> line
         else line
       in
       lines := line :: !lines
     done
   with End_of_file -> close_in ic);
  List.sort compare !lines

(* -- the ordering-critical test: serial, fork, then domains -- *)

let test_backends_byte_identical () =
  let grid = tiny_grid () in
  let sweep = Campaign.Sweep.sweep_digest grid in
  let total = List.length (Campaign.Sweep.jobs_of_grid grid) in
  let run backend =
    let path = temp_path ".journal.jsonl" in
    let journal = Campaign.Journal.start ~path ~sweep ~total in
    let outcome = Campaign.Sweep.run ~journal ~jobs:2 ~backend grid in
    Campaign.Journal.close journal;
    let canon = canonical_journal path in
    Sys.remove path;
    Alcotest.(check int)
      (Campaign.Pool.backend_name backend ^ ": all jobs settled")
      total
      (List.length outcome.Campaign.Sweep.results);
    (outcome, canon)
  in
  let serial, serial_journal = run Campaign.Pool.Serial in
  let forked, forked_journal = run Campaign.Pool.Forked in
  let domains, domains_journal = run Campaign.Pool.Domains in
  let text outcome =
    (* Only the wall-clock "in N s" differs across backends. *)
    Campaign.Sweep.report { outcome with Campaign.Sweep.elapsed_seconds = 0.0 }
  in
  let json outcome =
    Campaign.Sweep.report_json
      { outcome with Campaign.Sweep.elapsed_seconds = 0.0 }
  in
  Alcotest.(check string)
    "fork report is byte-identical to serial" (text serial) (text forked);
  Alcotest.(check string)
    "domain report is byte-identical to serial" (text serial) (text domains);
  Alcotest.(check string)
    "fork JSON report is byte-identical to serial" (json serial) (json forked);
  Alcotest.(check string)
    "domain JSON report is byte-identical to serial" (json serial)
    (json domains);
  Alcotest.(check string)
    "fork results payload is byte-identical to serial"
    (Campaign.Json.to_string (Campaign.Sweep.results_json serial))
    (Campaign.Json.to_string (Campaign.Sweep.results_json forked));
  Alcotest.(check string)
    "domain results payload is byte-identical to serial"
    (Campaign.Json.to_string (Campaign.Sweep.results_json serial))
    (Campaign.Json.to_string (Campaign.Sweep.results_json domains));
  Alcotest.(check (list string))
    "fork journal records the same terminal states" serial_journal
    forked_journal;
  Alcotest.(check (list string))
    "domain journal records the same terminal states" serial_journal
    domains_journal

(* -- everything below runs with fork already poisoned -- *)

let test_fork_unavailable_after_domains () =
  (* The preceding test spawned domains, so this documents (and pins)
     the runtime constraint the backends must be ordered around. *)
  match
    Campaign.Pool.run ~jobs:2 ~backend:Campaign.Pool.Forked
      (fun x -> x + 1)
      [ 1; 2 ]
  with
  | exception Failure message ->
    check_contains "the runtime names the constraint" "fork" message
  | _ -> Alcotest.fail "Unix.fork worked after Domain.spawn?"

let test_domain_pool_order_and_failures () =
  let inputs = List.init 17 Fun.id in
  let outcomes =
    Campaign.Pool.run ~jobs:4 ~backend:Campaign.Pool.Domains
      (fun x -> if x = 5 then failwith "boom" else x * x)
      inputs
  in
  List.iteri
    (fun i outcome ->
      match outcome with
      | Campaign.Pool.Settled value ->
        Alcotest.(check int) "results stay in input order" (i * i) value
      | Failed (Crashed reason) when i = 5 ->
        check_contains "worker exception text survives" "boom" reason
      | _ -> Alcotest.failf "unexpected outcome for input %d" i)
    outcomes

let test_domain_chaos_mapping () =
  (* Crash and Truncate have no process to kill or payload to tear
     in-domain; both map to an immediately failed attempt with a
     distinguishing diagnostic. *)
  with_chaos
    (fun ~index ~attempt:_ ->
      match index with
      | 0 -> Some Campaign.Pool.Crash
      | 1 -> Some Campaign.Pool.Truncate
      | _ -> None)
  @@ fun () ->
  match
    Campaign.Pool.run ~jobs:2 ~backend:Campaign.Pool.Domains
      (fun x -> x + 1)
      [ 10; 20; 30 ]
  with
  | [
   Campaign.Pool.Failed (Crashed crash);
   Failed (Crashed truncate);
   Settled 31;
  ] ->
    check_contains "crash maps to a named in-domain failure" "chaos crash"
      crash;
    check_contains "truncate maps to a named in-domain failure"
      "chaos truncate" truncate
  | _ ->
    Alcotest.fail "expected [Failed crash; Failed truncate; Settled 31]"

let test_domain_hang_times_out_and_is_abandoned () =
  (* A hung domain cannot be SIGKILLed; the deadline must abandon the
     attempt — same Timed_out report as fork — while a replacement
     worker keeps the rest of the batch moving. *)
  with_chaos
    (fun ~index ~attempt:_ -> if index = 0 then Some Campaign.Pool.Hang else None)
  @@ fun () ->
  let policy = { Campaign.Pool.default_policy with timeout = Some 0.4 } in
  let started = Unix.gettimeofday () in
  (match
     Campaign.Pool.run ~jobs:2 ~backend:Campaign.Pool.Domains ~policy
       (fun x -> x * 2)
       [ 1; 2; 3 ]
   with
  | [ Campaign.Pool.Failed (Timed_out deadline); Settled 4; Settled 6 ] ->
    Alcotest.(check (float 1e-9)) "reports the configured deadline" 0.4
      deadline
  | _ -> Alcotest.fail "expected [Failed (Timed_out _); Settled 4; Settled 6]");
  Alcotest.(check bool) "the supervisor stopped waiting at the deadline" true
    (Unix.gettimeofday () -. started < 5.0)

let test_domain_slow_attempt_late_result_discarded () =
  (* Unlike chaos Hang, a merely slow job finishes after its deadline;
     its late result must be discarded, not grafted onto the batch. *)
  let policy = { Campaign.Pool.default_policy with timeout = Some 0.3 } in
  (match
     Campaign.Pool.run ~jobs:2 ~backend:Campaign.Pool.Domains ~policy
       (fun x ->
         if x = 0 then Unix.sleepf 1.0;
         x + 100)
       [ 0; 1 ]
   with
  | [ Campaign.Pool.Failed (Timed_out _); Settled 101 ] -> ()
  | _ -> Alcotest.fail "expected [Failed (Timed_out _); Settled 101]");
  (* Give the abandoned attempt time to finish and retire, then run
     another batch on the same backend: the stale result must not
     surface. *)
  Unix.sleepf 1.0;
  match
    Campaign.Pool.run ~jobs:2 ~backend:Campaign.Pool.Domains ~policy
      (fun x -> x + 1)
      [ 1; 2 ]
  with
  | [ Campaign.Pool.Settled 2; Settled 3 ] -> ()
  | _ -> Alcotest.fail "late result leaked into a later batch"

let test_domain_retry_then_succeed () =
  let retries = ref [] in
  let policy =
    { Campaign.Pool.timeout = Some 5.0; retries = 2; backoff = 0.01 }
  in
  with_chaos
    (fun ~index ~attempt ->
      if index = 1 && attempt = 1 then Some Campaign.Pool.Crash else None)
  @@ fun () ->
  let outcomes =
    Campaign.Pool.run ~jobs:2 ~backend:Campaign.Pool.Domains ~policy
      ~on_retry:(fun ~index ~attempt _ -> retries := (index, attempt) :: !retries)
      (fun x -> x * 10)
      [ 1; 2; 3 ]
  in
  Alcotest.(check bool)
    "every job settles despite the first-attempt chaos" true
    (outcomes = [ Campaign.Pool.Settled 10; Settled 20; Settled 30 ]);
  Alcotest.(check (list (pair int int)))
    "exactly one retry, of job 1's first attempt" [ (1, 1) ] !retries

let test_domain_stop_reports_not_run () =
  let stop = ref false in
  let outcomes =
    Campaign.Pool.run ~jobs:1 ~backend:Campaign.Pool.Domains
      ~stop:(fun () -> !stop)
      ~on_done:(fun _ -> stop := true)
      (fun x ->
        Unix.sleepf 0.05;
        x)
      (List.init 8 Fun.id)
  in
  Alcotest.(check int) "one outcome per input" 8 (List.length outcomes);
  let settled =
    List.length
      (List.filter (function Campaign.Pool.Settled _ -> true | _ -> false)
         outcomes)
  in
  let not_run =
    List.length
      (List.filter (function Campaign.Pool.Not_run -> true | _ -> false)
         outcomes)
  in
  Alcotest.(check bool) "the first job settled before the stop" true
    (settled >= 1);
  Alcotest.(check bool) "stopping skipped the tail of the batch" true
    (not_run >= 4);
  Alcotest.(check int) "settled + skipped covers the batch" 8
    (settled + not_run)

let test_domain_sweep_with_chaos_quarantines () =
  (* The CLI-level semantics: a sweep on the domain backend quarantines
     a hung job at its deadline and still settles the rest. *)
  with_chaos
    (fun ~index ~attempt:_ -> if index = 1 then Some Campaign.Pool.Hang else None)
  @@ fun () ->
  let policy = { Campaign.Pool.default_policy with timeout = Some 1.0 } in
  let outcome =
    Campaign.Sweep.run ~jobs:2 ~backend:Campaign.Pool.Domains ~policy
      (tiny_grid ())
  in
  Alcotest.(check int) "one job quarantined" 1
    (List.length outcome.Campaign.Sweep.quarantined);
  Alcotest.(check int) "the rest settled" 3
    (List.length outcome.Campaign.Sweep.results);
  match outcome.Campaign.Sweep.quarantined with
  | [ { q_failure = Campaign.Pool.Timed_out _; _ } ] -> ()
  | _ -> Alcotest.fail "expected a single Timed_out quarantine"

let () =
  Random.self_init ();
  Alcotest.run "rr-backends"
    [
      ( "backend-equivalence",
        [
          Alcotest.test_case "serial/fork/domain sweeps are byte-identical"
            `Quick test_backends_byte_identical;
        ] );
      ( "domain-pool",
        [
          Alcotest.test_case "fork is unavailable after domains" `Quick
            test_fork_unavailable_after_domains;
          Alcotest.test_case "order and worker failures" `Quick
            test_domain_pool_order_and_failures;
          Alcotest.test_case "chaos crash/truncate mapping" `Quick
            test_domain_chaos_mapping;
          Alcotest.test_case "hang is abandoned at the deadline" `Quick
            test_domain_hang_times_out_and_is_abandoned;
          Alcotest.test_case "late result of a slow attempt is discarded"
            `Quick test_domain_slow_attempt_late_result_discarded;
          Alcotest.test_case "retry after a chaos-failed attempt" `Quick
            test_domain_retry_then_succeed;
          Alcotest.test_case "stop reports the tail Not_run" `Quick
            test_domain_stop_reports_not_run;
          Alcotest.test_case "sweep quarantines a hung domain job" `Quick
            test_domain_sweep_with_chaos_quarantines;
        ] );
    ]
