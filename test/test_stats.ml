(* Stats library: series, metrics, flow traces, tables, plots. *)

let test_series_basic () =
  let s = Stats.Series.create () in
  Alcotest.(check bool) "empty" true (Stats.Series.is_empty s);
  Stats.Series.add s ~time:1.0 ~value:10.0;
  Stats.Series.add s ~time:2.0 ~value:20.0;
  Stats.Series.add s ~time:2.0 ~value:25.0;
  Alcotest.(check int) "length" 3 (Stats.Series.length s);
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "to_list"
    [ (1.0, 10.0); (2.0, 20.0); (2.0, 25.0) ]
    (Stats.Series.to_list s)

let test_series_monotone_time () =
  let s = Stats.Series.create () in
  Stats.Series.add s ~time:5.0 ~value:1.0;
  Alcotest.check_raises "backwards" (Invalid_argument "Series.add: time going backwards")
    (fun () -> Stats.Series.add s ~time:4.0 ~value:2.0)

let test_series_value_at () =
  let s = Stats.Series.create () in
  List.iter
    (fun (t, v) -> Stats.Series.add s ~time:t ~value:v)
    [ (1.0, 10.0); (3.0, 30.0); (5.0, 50.0) ];
  Alcotest.(check bool) "before first" true (Stats.Series.value_at s ~time:0.5 = None);
  Alcotest.(check bool) "exact" true (Stats.Series.value_at s ~time:3.0 = Some 30.0);
  Alcotest.(check bool) "between" true (Stats.Series.value_at s ~time:4.0 = Some 30.0);
  Alcotest.(check bool) "after last" true (Stats.Series.value_at s ~time:9.0 = Some 50.0)

let test_series_first_time_at_or_above () =
  let s = Stats.Series.create () in
  List.iter
    (fun (t, v) -> Stats.Series.add s ~time:t ~value:v)
    [ (1.0, 10.0); (2.0, 30.0); (3.0, 20.0) ];
  Alcotest.(check bool) "found" true
    (Stats.Series.first_time_at_or_above s ~value:25.0 = Some 2.0);
  Alcotest.(check bool) "not reached" true
    (Stats.Series.first_time_at_or_above s ~value:99.0 = None)

let test_series_between () =
  let s = Stats.Series.create () in
  List.iter
    (fun t -> Stats.Series.add s ~time:t ~value:t)
    [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  Alcotest.(check int) "window" 3 (List.length (Stats.Series.between s ~t0:2.0 ~t1:4.0))

let test_series_csv () =
  let s = Stats.Series.create () in
  Stats.Series.add s ~time:1.0 ~value:2.0;
  let csv = Stats.Series.to_csv s in
  Alcotest.(check bool) "header" true (String.length csv > 10);
  Alcotest.(check bool) "row" true
    (String.split_on_char '\n' csv |> List.exists (fun l -> l = "1.000000,2"))

let prop_value_at_matches_scan =
  QCheck2.Test.make ~name:"series value_at matches linear scan" ~count:300
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 40) (float_bound_inclusive 100.0))
        (float_bound_inclusive 120.0))
    (fun (times, query) ->
      let sorted = List.sort compare times in
      let s = Stats.Series.create () in
      List.iteri
        (fun i t -> Stats.Series.add s ~time:t ~value:(float_of_int i))
        sorted;
      let reference =
        let rec scan best = function
          | [] -> best
          | (t, v) :: rest -> if t <= query then scan (Some v) rest else best
        in
        scan None (List.mapi (fun i t -> (t, float_of_int i)) sorted)
      in
      Stats.Series.value_at s ~time:query = reference)

let make_trace_via_agent () =
  (* Use a harness sender so hooks fire exactly as in production. *)
  let h = Harness.make Tcp.Newreno.create in
  let trace = Stats.Flow_trace.attach h.Harness.agent in
  (h, trace)

let test_flow_trace_records () =
  let h, trace = make_trace_via_agent () in
  Harness.start ~segments:5 h;
  Harness.deliver_ack h 0;
  Harness.deliver_ack h 1;
  Alcotest.(check bool) "sends recorded" true
    (Stats.Series.length trace.Stats.Flow_trace.sends >= 3);
  Alcotest.(check int) "una steps" 2 (Stats.Series.length trace.Stats.Flow_trace.una);
  Alcotest.(check int) "acks" 2 (Stats.Series.length trace.Stats.Flow_trace.acks);
  Alcotest.(check int) "cwnd sampled per ack" 2
    (Stats.Series.length trace.Stats.Flow_trace.cwnd);
  (* The hook fires before that ACK's growth is applied, so the second
     sample shows the window after the first ACK's increment. *)
  (match Stats.Series.last trace.Stats.Flow_trace.cwnd with
  | Some (_, cwnd) -> Alcotest.(check (float 1e-9)) "cwnd after 1st growth" 2.0 cwnd
  | None -> Alcotest.fail "cwnd series")

let test_flow_trace_una_monotone () =
  let h, trace = make_trace_via_agent () in
  Harness.open_window h ~target:10;
  Harness.dupacks h 3;
  (* dupacks do not move the una series *)
  let values = List.map snd (Stats.Series.to_list trace.Stats.Flow_trace.una) in
  let rec increasing = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> a < b && increasing rest
  in
  Alcotest.(check bool) "strictly increasing" true (increasing values)

let test_recovery_episodes_pairing () =
  let t =
    {
      Stats.Flow_trace.sends = Stats.Series.create ();
      retransmissions = Stats.Series.create ();
      acks = Stats.Series.create ();
      una = Stats.Series.create ();
      cwnd = Stats.Series.create ();
      last_una = min_int;
      recovery_entries = [ 5.0; 1.0 ];
      recovery_exits = [ 6.0; 2.0 ];
      timeouts = [];
    }
  in
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "paired" [ (1.0, 2.0); (5.0, 6.0) ]
    (Stats.Flow_trace.recovery_episodes t)

let test_throughput () =
  let h, trace = make_trace_via_agent () in
  Harness.start ~segments:100 h;
  (* Ack 10 segments at t=1. *)
  Harness.advance h ~by:1.0;
  Harness.deliver_ack h 9;
  let bw =
    Stats.Metrics.effective_throughput_bps trace ~mss:1000 ~t0:0.0 ~t1:1.0
  in
  (* (9 - (-1)) segments... una went from -1 (no sample => -1 default)
     to 9: 10 segments * 8000 bits over 1 s. *)
  Alcotest.(check (float 1e-6)) "throughput" 80_000.0 bw

let test_loss_rate () =
  Alcotest.(check (float 1e-9)) "zero txs" 0.0
    (Stats.Metrics.loss_rate ~drops:5 ~transmissions:0);
  Alcotest.(check (float 1e-9)) "ratio" 0.1
    (Stats.Metrics.loss_rate ~drops:10 ~transmissions:100)

let test_jain_index () =
  Alcotest.(check (float 1e-9)) "equal shares" 1.0
    (Stats.Metrics.jain_index [ 5.0; 5.0; 5.0; 5.0 ]);
  Alcotest.(check (float 1e-9)) "one taker" 0.25
    (Stats.Metrics.jain_index [ 8.0; 0.0; 0.0; 0.0 ]);
  Alcotest.(check (float 1e-9)) "empty" 1.0 (Stats.Metrics.jain_index []);
  Alcotest.(check (float 1e-9)) "all zero" 1.0
    (Stats.Metrics.jain_index [ 0.0; 0.0 ])

let test_mean_and_cov () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.Metrics.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check bool) "mean of empty is nan" true
    (Float.is_nan (Stats.Metrics.mean []));
  Alcotest.(check (float 1e-9)) "constant series" 0.0
    (Stats.Metrics.coefficient_of_variation [ 4.0; 4.0; 4.0 ]);
  Alcotest.(check bool) "spread raises cov" true
    (Stats.Metrics.coefficient_of_variation [ 1.0; 7.0 ]
    > Stats.Metrics.coefficient_of_variation [ 3.0; 5.0 ])

let test_queue_monitor () =
  let engine = Sim.Engine.create () in
  let level = ref 0 in
  ignore (Sim.Engine.schedule_at engine ~time:0.45 (fun () -> level := 7));
  let series =
    Stats.Queue_monitor.sample ~engine ~probe:(fun () -> !level) ~interval:0.1
      ~until:1.0
  in
  Sim.Engine.run engine;
  Alcotest.(check int) "11 samples over [0,1]" 11 (Stats.Series.length series);
  Alcotest.(check bool) "before change" true
    (Stats.Series.value_at series ~time:0.4 = Some 0.0);
  Alcotest.(check bool) "after change" true
    (Stats.Series.value_at series ~time:0.5 = Some 7.0)

let test_queue_monitor_invalid () =
  let engine = Sim.Engine.create () in
  Alcotest.check_raises "interval"
    (Invalid_argument "Queue_monitor.sample: interval <= 0") (fun () ->
      ignore
        (Stats.Queue_monitor.sample ~engine ~probe:(fun () -> 0) ~interval:0.0
           ~until:1.0))

let test_text_table () =
  let rendered =
    Stats.Text_table.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333" ] ]
  in
  let lines = String.split_on_char '\n' rendered in
  Alcotest.(check int) "line count" 5 (List.length lines);
  (* header, separator, 2 rows, trailing newline -> 5 splits *)
  match lines with
  | header :: separator :: _ ->
    Alcotest.(check bool) "aligned" true
      (String.length header = String.length separator)
  | _ -> Alcotest.fail "structure"

let test_ascii_plot () =
  let plot =
    Stats.Ascii_plot.render ~width:20 ~height:5 ~x_label:"x" ~y_label:"y"
      [ { Stats.Ascii_plot.label = "s"; glyph = '*'; points = [ (0.0, 0.0); (1.0, 1.0) ] } ]
  in
  Alcotest.(check bool) "has glyph" true (String.contains plot '*');
  Alcotest.(check bool) "has legend" true (String.contains plot 's');
  Alcotest.(check string) "empty input" "(no data to plot)\n"
    (Stats.Ascii_plot.render ~width:20 ~height:5 ~x_label:"x" ~y_label:"y" [])

let suite =
  [
    ( "series",
      [
        Alcotest.test_case "basic" `Quick test_series_basic;
        Alcotest.test_case "monotone time" `Quick test_series_monotone_time;
        Alcotest.test_case "value_at" `Quick test_series_value_at;
        Alcotest.test_case "first_time_at_or_above" `Quick
          test_series_first_time_at_or_above;
        Alcotest.test_case "between" `Quick test_series_between;
        Alcotest.test_case "csv" `Quick test_series_csv;
        QCheck_alcotest.to_alcotest prop_value_at_matches_scan;
      ] );
    ( "flow_trace",
      [
        Alcotest.test_case "records" `Quick test_flow_trace_records;
        Alcotest.test_case "una monotone" `Quick test_flow_trace_una_monotone;
        Alcotest.test_case "episode pairing" `Quick test_recovery_episodes_pairing;
      ] );
    ( "metrics",
      [
        Alcotest.test_case "throughput" `Quick test_throughput;
        Alcotest.test_case "loss rate" `Quick test_loss_rate;
        Alcotest.test_case "jain index" `Quick test_jain_index;
        Alcotest.test_case "mean and cov" `Quick test_mean_and_cov;
      ] );
    ( "queue_monitor",
      [
        Alcotest.test_case "sampling" `Quick test_queue_monitor;
        Alcotest.test_case "invalid interval" `Quick test_queue_monitor_invalid;
      ] );
    ( "rendering",
      [
        Alcotest.test_case "text table" `Quick test_text_table;
        Alcotest.test_case "ascii plot" `Quick test_ascii_plot;
      ] );
  ]
