(* Analytic model tests: Mathis square-root model, Padhye (PFTK),
   Relentless (1/p) and RRR (generalised AIMD). *)

let close = Alcotest.(check (float 1e-9))

let test_mathis_window () =
  close "C/sqrt(p)" 12.2 (Model.Mathis.window ~c:1.22 ~loss_rate:0.01);
  close "paper C" 40.0 (Model.Mathis.window ~c:4.0 ~loss_rate:0.01)

let test_mathis_bandwidth () =
  (* window * 8*mss / rtt *)
  close "bandwidth" (12.2 *. 8000.0 /. 0.2)
    (Model.Mathis.bandwidth_bps ~c:1.22 ~mss:1000 ~rtt:0.2 ~loss_rate:0.01)

let test_mathis_constants () =
  close "ack-every-packet" (sqrt 1.5) Model.Mathis.c_ack_every_packet;
  close "delayed ack" (sqrt 0.75) Model.Mathis.c_delayed_ack;
  close "paper" 4.0 Model.Mathis.c_paper

let test_mathis_monotone () =
  let w p = Model.Mathis.window ~c:1.22 ~loss_rate:p in
  Alcotest.(check bool) "decreasing in p" true (w 0.01 > w 0.02 && w 0.02 > w 0.1)

let test_mathis_invalid () =
  Alcotest.check_raises "p=0" (Invalid_argument "Mathis.window: loss_rate out of (0, 1]")
    (fun () -> ignore (Model.Mathis.window ~c:1.22 ~loss_rate:0.0));
  Alcotest.check_raises "c" (Invalid_argument "Mathis.window: c <= 0") (fun () ->
      ignore (Model.Mathis.window ~c:0.0 ~loss_rate:0.1))

let test_mathis_window_limited () =
  close "model below cap" (Model.Mathis.window ~c:1.22 ~loss_rate:0.04)
    (Model.Mathis.window_limited ~c:1.22 ~loss_rate:0.04 ~rwnd:20);
  close "cap binds at small p" 20.0
    (Model.Mathis.window_limited ~c:1.22 ~loss_rate:0.001 ~rwnd:20);
  Alcotest.check_raises "rwnd" (Invalid_argument "Mathis.window_limited: rwnd < 1")
    (fun () ->
      ignore (Model.Mathis.window_limited ~c:1.22 ~loss_rate:0.01 ~rwnd:0))

let test_padhye_below_mathis () =
  (* With timeouts accounted, PFTK predicts no more than the
     square-root bound, and the gap widens with p. *)
  List.iter
    (fun p ->
      let mathis = Model.Mathis.window ~c:Model.Mathis.c_ack_every_packet ~loss_rate:p in
      let padhye = Model.Padhye.window ~rtt:0.2 ~rto:1.0 ~b:1 ~loss_rate:p in
      Alcotest.(check bool)
        (Printf.sprintf "padhye %.2f <= mathis %.2f at p=%.3f" padhye mathis p)
        true (padhye <= mathis +. 1e-9))
    [ 0.001; 0.01; 0.05; 0.1 ]

let test_padhye_rto_sensitivity () =
  let w rto = Model.Padhye.window ~rtt:0.2 ~rto ~b:1 ~loss_rate:0.05 in
  Alcotest.(check bool) "longer rto hurts" true (w 2.0 < w 1.0)

let test_padhye_bandwidth () =
  let window = Model.Padhye.window ~rtt:0.2 ~rto:1.0 ~b:1 ~loss_rate:0.01 in
  close "bandwidth consistent" (window *. 8000.0 /. 0.2)
    (Model.Padhye.bandwidth_bps ~mss:1000 ~rtt:0.2 ~rto:1.0 ~b:1 ~loss_rate:0.01)

let test_padhye_invalid () =
  Alcotest.check_raises "b" (Invalid_argument "Padhye: b < 1") (fun () ->
      ignore (Model.Padhye.window ~rtt:0.2 ~rto:1.0 ~b:0 ~loss_rate:0.1))

let prop_padhye_decreasing =
  QCheck2.Test.make ~name:"padhye window decreases with loss"
    QCheck2.Gen.(pair (float_range 0.001 0.4) (float_range 0.001 0.4))
    (fun (p1, p2) ->
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      lo = hi
      || Model.Padhye.window ~rtt:0.2 ~rto:1.0 ~b:1 ~loss_rate:lo
         >= Model.Padhye.window ~rtt:0.2 ~rto:1.0 ~b:1 ~loss_rate:hi)

let test_relentless_window () =
  (* arxiv 1102.3270 equilibrium: one loss per RTT balances the
     one-per-loss decrease, so W = 1/p. *)
  close "1/p" 100.0 (Model.Relentless.window ~loss_rate:0.01);
  close "1/p at p=0.1" 10.0 (Model.Relentless.window ~loss_rate:0.1)

let test_relentless_window_limited () =
  close "model below cap" 10.0
    (Model.Relentless.window_limited ~loss_rate:0.1 ~rwnd:20);
  close "cap binds at small p" 20.0
    (Model.Relentless.window_limited ~loss_rate:0.001 ~rwnd:20)

let test_relentless_bandwidth () =
  close "bandwidth = W * 8 mss / rtt" (100.0 *. 8000.0 /. 0.2)
    (Model.Relentless.bandwidth_bps ~mss:1000 ~rtt:0.2 ~loss_rate:0.01)

let test_relentless_invalid () =
  Alcotest.check_raises "p=0"
    (Invalid_argument "Relentless.window: loss_rate out of (0, 1]") (fun () ->
      ignore (Model.Relentless.window ~loss_rate:0.0))

let test_relentless_above_mathis () =
  (* 1/p > sqrt(3/2)/sqrt(p) whenever p < 2/3: the Relentless
     equilibrium dominates the Reno-family square-root model over the
     whole practical loss range. *)
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "1/p above C/sqrt(p) at p=%.3f" p)
        true
        (Model.Relentless.window ~loss_rate:p
        > Model.Mathis.window ~c:Model.Mathis.c_ack_every_packet ~loss_rate:p))
    [ 0.001; 0.01; 0.1; 0.5 ]

let test_rrr_window_formula () =
  close "sqrt((2 - l) / (2 l p))"
    (sqrt (1.8 /. (2.0 *. 0.2 *. 0.01)))
    (Model.Rrr.window ~level:0.2 ~loss_rate:0.01)

let test_rrr_half_level_is_mathis () =
  (* l = 0.5 collapses the generalised AIMD mean to the Mathis model:
     sqrt((2 - 0.5) / (2 * 0.5 * p)) = sqrt(1.5) / sqrt(p). *)
  List.iter
    (fun p ->
      close
        (Printf.sprintf "anchor at p=%.3f" p)
        (Model.Mathis.window ~c:Model.Mathis.c_ack_every_packet ~loss_rate:p)
        (Model.Rrr.window ~level:0.5 ~loss_rate:p))
    [ 0.001; 0.01; 0.05; 0.1 ]

let test_rrr_window_limited () =
  close "cap binds at small p" 20.0
    (Model.Rrr.window_limited ~level:0.5 ~loss_rate:0.001 ~rwnd:20)

let test_rrr_bandwidth () =
  let window = Model.Rrr.window ~level:0.3 ~loss_rate:0.02 in
  close "bandwidth consistent" (window *. 8000.0 /. 0.2)
    (Model.Rrr.bandwidth_bps ~level:0.3 ~mss:1000 ~rtt:0.2 ~loss_rate:0.02)

let test_rrr_invalid () =
  Alcotest.check_raises "level 0"
    (Invalid_argument "Rrr: level out of (0, 1)") (fun () ->
      ignore (Model.Rrr.window ~level:0.0 ~loss_rate:0.01));
  Alcotest.check_raises "level 1"
    (Invalid_argument "Rrr: level out of (0, 1)") (fun () ->
      ignore (Model.Rrr.window ~level:1.0 ~loss_rate:0.01));
  Alcotest.check_raises "p=0"
    (Invalid_argument "Rrr.window: loss_rate out of (0, 1]") (fun () ->
      ignore (Model.Rrr.window ~level:0.5 ~loss_rate:0.0))

let prop_rrr_gentler_level_larger_window =
  QCheck2.Test.make ~name:"rrr window decreases with level and loss"
    QCheck2.Gen.(
      triple (float_range 0.05 0.95) (float_range 0.05 0.95)
        (float_range 0.001 0.4))
    (fun (l1, l2, p) ->
      let lo = Float.min l1 l2 and hi = Float.max l1 l2 in
      lo = hi
      || Model.Rrr.window ~level:lo ~loss_rate:p
         >= Model.Rrr.window ~level:hi ~loss_rate:p)

let suite =
  [
    ( "model",
      [
        Alcotest.test_case "mathis window" `Quick test_mathis_window;
        Alcotest.test_case "mathis bandwidth" `Quick test_mathis_bandwidth;
        Alcotest.test_case "mathis constants" `Quick test_mathis_constants;
        Alcotest.test_case "mathis monotone" `Quick test_mathis_monotone;
        Alcotest.test_case "mathis invalid" `Quick test_mathis_invalid;
        Alcotest.test_case "mathis window limited" `Quick test_mathis_window_limited;
        Alcotest.test_case "padhye below mathis" `Quick test_padhye_below_mathis;
        Alcotest.test_case "padhye rto sensitivity" `Quick test_padhye_rto_sensitivity;
        Alcotest.test_case "padhye bandwidth" `Quick test_padhye_bandwidth;
        Alcotest.test_case "padhye invalid" `Quick test_padhye_invalid;
        QCheck_alcotest.to_alcotest prop_padhye_decreasing;
        Alcotest.test_case "relentless window" `Quick test_relentless_window;
        Alcotest.test_case "relentless window limited" `Quick
          test_relentless_window_limited;
        Alcotest.test_case "relentless bandwidth" `Quick
          test_relentless_bandwidth;
        Alcotest.test_case "relentless invalid" `Quick test_relentless_invalid;
        Alcotest.test_case "relentless above mathis" `Quick
          test_relentless_above_mathis;
        Alcotest.test_case "rrr window formula" `Quick test_rrr_window_formula;
        Alcotest.test_case "rrr half level is mathis" `Quick
          test_rrr_half_level_is_mathis;
        Alcotest.test_case "rrr window limited" `Quick test_rrr_window_limited;
        Alcotest.test_case "rrr bandwidth" `Quick test_rrr_bandwidth;
        Alcotest.test_case "rrr invalid" `Quick test_rrr_invalid;
        QCheck_alcotest.to_alcotest prop_rrr_gentler_level_larger_window;
      ] );
  ]
