(* Analytic model tests: Mathis square-root model and Padhye (PFTK). *)

let close = Alcotest.(check (float 1e-9))

let test_mathis_window () =
  close "C/sqrt(p)" 12.2 (Model.Mathis.window ~c:1.22 ~loss_rate:0.01);
  close "paper C" 40.0 (Model.Mathis.window ~c:4.0 ~loss_rate:0.01)

let test_mathis_bandwidth () =
  (* window * 8*mss / rtt *)
  close "bandwidth" (12.2 *. 8000.0 /. 0.2)
    (Model.Mathis.bandwidth_bps ~c:1.22 ~mss:1000 ~rtt:0.2 ~loss_rate:0.01)

let test_mathis_constants () =
  close "ack-every-packet" (sqrt 1.5) Model.Mathis.c_ack_every_packet;
  close "delayed ack" (sqrt 0.75) Model.Mathis.c_delayed_ack;
  close "paper" 4.0 Model.Mathis.c_paper

let test_mathis_monotone () =
  let w p = Model.Mathis.window ~c:1.22 ~loss_rate:p in
  Alcotest.(check bool) "decreasing in p" true (w 0.01 > w 0.02 && w 0.02 > w 0.1)

let test_mathis_invalid () =
  Alcotest.check_raises "p=0" (Invalid_argument "Mathis.window: loss_rate out of (0, 1]")
    (fun () -> ignore (Model.Mathis.window ~c:1.22 ~loss_rate:0.0));
  Alcotest.check_raises "c" (Invalid_argument "Mathis.window: c <= 0") (fun () ->
      ignore (Model.Mathis.window ~c:0.0 ~loss_rate:0.1))

let test_mathis_window_limited () =
  close "model below cap" (Model.Mathis.window ~c:1.22 ~loss_rate:0.04)
    (Model.Mathis.window_limited ~c:1.22 ~loss_rate:0.04 ~rwnd:20);
  close "cap binds at small p" 20.0
    (Model.Mathis.window_limited ~c:1.22 ~loss_rate:0.001 ~rwnd:20);
  Alcotest.check_raises "rwnd" (Invalid_argument "Mathis.window_limited: rwnd < 1")
    (fun () ->
      ignore (Model.Mathis.window_limited ~c:1.22 ~loss_rate:0.01 ~rwnd:0))

let test_padhye_below_mathis () =
  (* With timeouts accounted, PFTK predicts no more than the
     square-root bound, and the gap widens with p. *)
  List.iter
    (fun p ->
      let mathis = Model.Mathis.window ~c:Model.Mathis.c_ack_every_packet ~loss_rate:p in
      let padhye = Model.Padhye.window ~rtt:0.2 ~rto:1.0 ~b:1 ~loss_rate:p in
      Alcotest.(check bool)
        (Printf.sprintf "padhye %.2f <= mathis %.2f at p=%.3f" padhye mathis p)
        true (padhye <= mathis +. 1e-9))
    [ 0.001; 0.01; 0.05; 0.1 ]

let test_padhye_rto_sensitivity () =
  let w rto = Model.Padhye.window ~rtt:0.2 ~rto ~b:1 ~loss_rate:0.05 in
  Alcotest.(check bool) "longer rto hurts" true (w 2.0 < w 1.0)

let test_padhye_bandwidth () =
  let window = Model.Padhye.window ~rtt:0.2 ~rto:1.0 ~b:1 ~loss_rate:0.01 in
  close "bandwidth consistent" (window *. 8000.0 /. 0.2)
    (Model.Padhye.bandwidth_bps ~mss:1000 ~rtt:0.2 ~rto:1.0 ~b:1 ~loss_rate:0.01)

let test_padhye_invalid () =
  Alcotest.check_raises "b" (Invalid_argument "Padhye: b < 1") (fun () ->
      ignore (Model.Padhye.window ~rtt:0.2 ~rto:1.0 ~b:0 ~loss_rate:0.1))

let prop_padhye_decreasing =
  QCheck2.Test.make ~name:"padhye window decreases with loss"
    QCheck2.Gen.(pair (float_range 0.001 0.4) (float_range 0.001 0.4))
    (fun (p1, p2) ->
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      lo = hi
      || Model.Padhye.window ~rtt:0.2 ~rto:1.0 ~b:1 ~loss_rate:lo
         >= Model.Padhye.window ~rtt:0.2 ~rto:1.0 ~b:1 ~loss_rate:hi)

let suite =
  [
    ( "model",
      [
        Alcotest.test_case "mathis window" `Quick test_mathis_window;
        Alcotest.test_case "mathis bandwidth" `Quick test_mathis_bandwidth;
        Alcotest.test_case "mathis constants" `Quick test_mathis_constants;
        Alcotest.test_case "mathis monotone" `Quick test_mathis_monotone;
        Alcotest.test_case "mathis invalid" `Quick test_mathis_invalid;
        Alcotest.test_case "mathis window limited" `Quick test_mathis_window_limited;
        Alcotest.test_case "padhye below mathis" `Quick test_padhye_below_mathis;
        Alcotest.test_case "padhye rto sensitivity" `Quick test_padhye_rto_sensitivity;
        Alcotest.test_case "padhye bandwidth" `Quick test_padhye_bandwidth;
        Alcotest.test_case "padhye invalid" `Quick test_padhye_invalid;
        QCheck_alcotest.to_alcotest prop_padhye_decreasing;
      ] );
  ]
