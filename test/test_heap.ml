(* Binary-heap unit and property tests: min ordering, FIFO stability on
   equal priorities, growth across many elements. *)

let check = Alcotest.(check int)

let pop_all heap =
  let rec drain acc =
    match Sim.Heap.pop heap with
    | None -> List.rev acc
    | Some (priority, value) -> drain ((priority, value) :: acc)
  in
  drain []

let test_empty () =
  let heap : int Sim.Heap.t = Sim.Heap.create () in
  Alcotest.(check bool) "is_empty" true (Sim.Heap.is_empty heap);
  check "length" 0 (Sim.Heap.length heap);
  Alcotest.(check bool) "peek none" true (Sim.Heap.peek heap = None);
  Alcotest.(check bool) "pop none" true (Sim.Heap.pop heap = None)

let test_ordering () =
  let heap = Sim.Heap.create () in
  List.iter
    (fun priority -> Sim.Heap.push heap ~priority (int_of_float priority))
    [ 5.0; 1.0; 4.0; 2.0; 3.0 ];
  let order = List.map snd (pop_all heap) in
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 4; 5 ] order

let test_stability () =
  let heap = Sim.Heap.create () in
  (* All equal priorities: values must come out in insertion order. *)
  List.iter (fun v -> Sim.Heap.push heap ~priority:1.0 v) [ 10; 20; 30; 40 ];
  Alcotest.(check (list int))
    "fifo on ties" [ 10; 20; 30; 40 ]
    (List.map snd (pop_all heap))

let test_mixed_stability () =
  let heap = Sim.Heap.create () in
  Sim.Heap.push heap ~priority:2.0 1;
  Sim.Heap.push heap ~priority:1.0 2;
  Sim.Heap.push heap ~priority:2.0 3;
  Sim.Heap.push heap ~priority:1.0 4;
  Alcotest.(check (list int))
    "ties stay fifo among equals" [ 2; 4; 1; 3 ]
    (List.map snd (pop_all heap))

let test_peek_does_not_remove () =
  let heap = Sim.Heap.create () in
  Sim.Heap.push heap ~priority:1.0 7;
  (match Sim.Heap.peek heap with
  | Some (_, 7) -> ()
  | Some _ | None -> Alcotest.fail "peek");
  check "still there" 1 (Sim.Heap.length heap)

let test_clear () =
  let heap = Sim.Heap.create () in
  List.iter (fun v -> Sim.Heap.push heap ~priority:(float_of_int v) v) [ 1; 2; 3 ];
  Sim.Heap.clear heap;
  check "cleared" 0 (Sim.Heap.length heap);
  Sim.Heap.push heap ~priority:9.0 9;
  check "usable after clear" 1 (Sim.Heap.length heap)

let test_clear_resets_tie_state () =
  (* Regression: [clear] must reset the insertion-sequence counter too,
     so a reused heap orders ties exactly like a fresh one. *)
  let fresh = Sim.Heap.create () in
  let reused = Sim.Heap.create () in
  List.iter (fun v -> Sim.Heap.push reused ~priority:3.0 v) [ 1; 2; 3 ];
  ignore (Sim.Heap.pop reused);
  Sim.Heap.clear reused;
  List.iter
    (fun heap ->
      Sim.Heap.push heap ~priority:1.0 10;
      Sim.Heap.push heap ~priority:1.0 20;
      Sim.Heap.push heap ~priority:0.5 30)
    [ fresh; reused ];
  Alcotest.(check (list (pair (float 1e-9) int)))
    "same as fresh" (pop_all fresh) (pop_all reused)

let test_interleaved () =
  let heap = Sim.Heap.create () in
  Sim.Heap.push heap ~priority:3.0 3;
  Sim.Heap.push heap ~priority:1.0 1;
  (match Sim.Heap.pop heap with
  | Some (_, 1) -> ()
  | Some _ | None -> Alcotest.fail "pop 1");
  Sim.Heap.push heap ~priority:2.0 2;
  Alcotest.(check (list int)) "rest" [ 2; 3 ] (List.map snd (pop_all heap))

let prop_sorted_output =
  QCheck2.Test.make ~name:"heap pops in priority order"
    QCheck2.Gen.(list (float_bound_inclusive 1000.0))
    (fun priorities ->
      let heap = Sim.Heap.create () in
      List.iteri (fun i priority -> Sim.Heap.push heap ~priority i) priorities;
      let out = List.map fst (pop_all heap) in
      out = List.sort compare priorities)

let prop_length =
  QCheck2.Test.make ~name:"heap length tracks pushes"
    QCheck2.Gen.(list (float_bound_inclusive 10.0))
    (fun priorities ->
      let heap = Sim.Heap.create () in
      List.iteri (fun i priority -> Sim.Heap.push heap ~priority i) priorities;
      Sim.Heap.length heap = List.length priorities)

let suite =
  [
    ( "heap",
      [
        Alcotest.test_case "empty" `Quick test_empty;
        Alcotest.test_case "ordering" `Quick test_ordering;
        Alcotest.test_case "stability" `Quick test_stability;
        Alcotest.test_case "mixed stability" `Quick test_mixed_stability;
        Alcotest.test_case "peek" `Quick test_peek_does_not_remove;
        Alcotest.test_case "clear" `Quick test_clear;
        Alcotest.test_case "clear resets tie state" `Quick
          test_clear_resets_tie_state;
        Alcotest.test_case "interleaved" `Quick test_interleaved;
        QCheck_alcotest.to_alcotest prop_sorted_output;
        QCheck_alcotest.to_alcotest prop_length;
      ] );
  ]
