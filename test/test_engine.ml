(* Discrete-event engine and timer tests: time ordering, simultaneity,
   cancellation, run_until semantics, stop, and the restartable timer. *)

let test_runs_in_time_order () =
  let engine = Sim.Engine.create () in
  let log = ref [] in
  let note tag () = log := (tag, Sim.Engine.now engine) :: !log in
  ignore (Sim.Engine.schedule_at engine ~time:3.0 (note "c"));
  ignore (Sim.Engine.schedule_at engine ~time:1.0 (note "a"));
  ignore (Sim.Engine.schedule_at engine ~time:2.0 (note "b"));
  Sim.Engine.run engine;
  Alcotest.(check (list (pair string (float 1e-9))))
    "order and clock"
    [ ("a", 1.0); ("b", 2.0); ("c", 3.0) ]
    (List.rev !log)

let test_simultaneous_fifo () =
  let engine = Sim.Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Sim.Engine.schedule_at engine ~time:1.0 (fun () -> log := i :: !log))
  done;
  Sim.Engine.run engine;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_schedule_during_run () =
  let engine = Sim.Engine.create () in
  let log = ref [] in
  ignore
    (Sim.Engine.schedule_at engine ~time:1.0 (fun () ->
         log := "first" :: !log;
         ignore
           (Sim.Engine.schedule_after engine ~delay:0.5 (fun () ->
                log := "nested" :: !log))));
  Sim.Engine.run engine;
  Alcotest.(check (list string)) "nested" [ "first"; "nested" ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock" 1.5 (Sim.Engine.now engine)

let test_cancel () =
  let engine = Sim.Engine.create () in
  let fired = ref false in
  let handle = Sim.Engine.schedule_at engine ~time:1.0 (fun () -> fired := true) in
  Sim.Engine.cancel engine handle;
  Sim.Engine.run engine;
  Alcotest.(check bool) "cancelled" false !fired;
  Alcotest.(check int) "no pending" 0 (Sim.Engine.pending engine)

let test_cancel_idempotent () =
  let engine = Sim.Engine.create () in
  let handle = Sim.Engine.schedule_at engine ~time:1.0 (fun () -> ()) in
  Sim.Engine.cancel engine handle;
  Sim.Engine.cancel engine handle;
  Alcotest.(check int) "pending not negative" 0 (Sim.Engine.pending engine)

let test_past_scheduling_rejected () =
  let engine = Sim.Engine.create () in
  ignore (Sim.Engine.schedule_at engine ~time:2.0 (fun () -> ()));
  Sim.Engine.run engine;
  Alcotest.check_raises "past" (Invalid_argument
    "Engine.schedule_at: time 1 is before now 2")
    (fun () -> ignore (Sim.Engine.schedule_at engine ~time:1.0 (fun () -> ())))

let test_negative_delay_rejected () =
  let engine = Sim.Engine.create () in
  Alcotest.check_raises "negative"
    (Invalid_argument "Engine.schedule_after: negative delay") (fun () ->
      ignore (Sim.Engine.schedule_after engine ~delay:(-1.0) (fun () -> ())))

let test_run_until () =
  let engine = Sim.Engine.create () in
  let fired = ref [] in
  List.iter
    (fun t ->
      ignore
        (Sim.Engine.schedule_at engine ~time:t (fun () -> fired := t :: !fired)))
    [ 1.0; 2.0; 3.0 ];
  Sim.Engine.run_until engine ~time:2.5;
  Alcotest.(check (list (float 1e-9))) "only early" [ 1.0; 2.0 ] (List.rev !fired);
  Alcotest.(check (float 1e-9)) "clock advanced to bound" 2.5 (Sim.Engine.now engine);
  Sim.Engine.run_until engine ~time:5.0;
  Alcotest.(check (list (float 1e-9))) "rest" [ 1.0; 2.0; 3.0 ] (List.rev !fired)

let test_stop () =
  let engine = Sim.Engine.create () in
  let count = ref 0 in
  for _ = 1 to 5 do
    ignore
      (Sim.Engine.schedule_after engine ~delay:1.0 (fun () ->
           incr count;
           if !count = 2 then Sim.Engine.stop engine))
  done;
  Sim.Engine.run engine;
  Alcotest.(check int) "stopped after 2" 2 !count

let test_stop_during_run_until () =
  (* A stop mid-run must leave the clock at the last fired event; the
     old behaviour jumped it to the requested bound, fabricating an
     idle period that never executed. *)
  let engine = Sim.Engine.create () in
  ignore (Sim.Engine.schedule_at engine ~time:1.0 (fun () -> Sim.Engine.stop engine));
  let late = ref false in
  ignore (Sim.Engine.schedule_at engine ~time:2.0 (fun () -> late := true));
  Sim.Engine.run_until engine ~time:10.0;
  Alcotest.(check bool) "later event not fired" false !late;
  Alcotest.(check (float 1e-9)) "clock at stop point" 1.0 (Sim.Engine.now engine)

let test_cancel_after_fire () =
  (* Regression: cancelling a handle whose event already fired used to
     decrement the live count again, driving [pending] negative. *)
  let engine = Sim.Engine.create () in
  let handle = Sim.Engine.schedule_at engine ~time:1.0 (fun () -> ()) in
  Sim.Engine.run engine;
  Sim.Engine.cancel engine handle;
  Alcotest.(check int) "pending not negative" 0 (Sim.Engine.pending engine);
  ignore (Sim.Engine.schedule_at engine ~time:2.0 (fun () -> ()));
  Sim.Engine.cancel engine handle;
  Alcotest.(check int) "later events unaffected" 1 (Sim.Engine.pending engine)

let test_schedule_unit () =
  (* Fire-and-forget events interleave with handle events in the same
     (time, insertion) order, and record recycling across many
     generations does not disturb it. *)
  let engine = Sim.Engine.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  Sim.Engine.schedule_unit engine ~delay:1.0 (note "u1");
  ignore (Sim.Engine.schedule_after engine ~delay:1.0 (note "h1"));
  Sim.Engine.schedule_unit engine ~delay:1.0 (note "u2");
  Alcotest.(check int) "all pending" 3 (Sim.Engine.pending engine);
  Sim.Engine.run engine;
  Alcotest.(check (list string)) "fifo" [ "u1"; "h1"; "u2" ] (List.rev !log);
  Alcotest.(check int) "drained" 0 (Sim.Engine.pending engine);
  let count = ref 0 in
  let rec chain () =
    incr count;
    if !count < 1000 then Sim.Engine.schedule_unit engine ~delay:0.5 chain
  in
  Sim.Engine.schedule_unit engine ~delay:0.5 chain;
  Sim.Engine.run engine;
  Alcotest.(check int) "recycled chain" 1000 !count

let test_schedule_unit_rejects_past () =
  let engine = Sim.Engine.create () in
  ignore (Sim.Engine.schedule_at engine ~time:2.0 (fun () -> ()));
  Sim.Engine.run engine;
  Alcotest.check_raises "past" (Invalid_argument
    "Engine.schedule_at: time 1 is before now 2")
    (fun () -> Sim.Engine.schedule_unit_at engine ~time:1.0 (fun () -> ()));
  Alcotest.check_raises "negative"
    (Invalid_argument "Engine.schedule_unit: negative delay") (fun () ->
      Sim.Engine.schedule_unit engine ~delay:(-1.0) (fun () -> ()))

let test_scheduler_selection () =
  Alcotest.(check bool) "default is calendar" true
    (Sim.Engine.scheduler (Sim.Engine.create ()) = `Calendar);
  Alcotest.(check bool) "explicit heap" true
    (Sim.Engine.scheduler (Sim.Engine.create ~scheduler:`Heap ()) = `Heap);
  let saved = Sim.Engine.default_scheduler () in
  Fun.protect
    ~finally:(fun () -> Sim.Engine.set_default_scheduler saved)
    (fun () ->
      Sim.Engine.set_default_scheduler `Heap;
      Alcotest.(check bool) "default override" true
        (Sim.Engine.scheduler (Sim.Engine.create ()) = `Heap))

(* Differential property: a random schedule/cancel/fire workload —
   handle events, fire-and-forget events, events scheduled from inside
   running events, and cancellations — fires the identical (time, id)
   sequence under both schedulers, equal-timestamp ties included
   (times are quantized to quarter-seconds to force many ties). *)
let prop_schedulers_agree =
  let open QCheck2.Gen in
  let time = map (fun k -> float_of_int k /. 4.0) (int_range 0 40) in
  let op =
    oneof
      [
        map (fun t -> `Schedule t) time;
        map (fun t -> `Schedule_unit t) time;
        map2 (fun t d -> `Nested (t, d)) time time;
        map (fun k -> `Cancel k) (int_range 0 1000);
      ]
  in
  QCheck2.Test.make ~name:"heap and calendar schedulers fire identically"
    ~count:300
    (list_size (int_range 1 80) op)
    (fun ops ->
      let run scheduler =
        let engine = Sim.Engine.create ~scheduler () in
        let fired = ref [] in
        let note id () = fired := (Sim.Engine.now engine, id) :: !fired in
        let handles = ref [||] in
        let register handle =
          handles := Array.append !handles [| handle |]
        in
        List.iteri
          (fun id op ->
            match op with
            | `Schedule t -> register (Sim.Engine.schedule_at engine ~time:t (note id))
            | `Schedule_unit t ->
              Sim.Engine.schedule_unit_at engine ~time:t (note id)
            | `Nested (t, d) ->
              Sim.Engine.schedule_unit_at engine ~time:t (fun () ->
                  note id ();
                  Sim.Engine.schedule_unit engine ~delay:d (note (1000 + id)))
            | `Cancel k ->
              let n = Array.length !handles in
              if n > 0 then Sim.Engine.cancel engine !handles.(k mod n))
          ops;
        Sim.Engine.run engine;
        (List.rev !fired, Sim.Engine.pending engine)
      in
      run `Heap = run `Calendar)

let prop_random_schedule_fires_in_order =
  QCheck2.Test.make ~name:"random schedules fire in time order" ~count:300
    QCheck2.Gen.(list_size (int_range 1 60) (float_bound_inclusive 100.0))
    (fun times ->
      let engine = Sim.Engine.create () in
      let fired = ref [] in
      List.iter
        (fun time ->
          ignore
            (Sim.Engine.schedule_at engine ~time (fun () ->
                 fired := Sim.Engine.now engine :: !fired)))
        times;
      Sim.Engine.run engine;
      List.rev !fired = List.sort compare times)

let test_timer_basic () =
  let engine = Sim.Engine.create () in
  let fired = ref 0.0 in
  let timer =
    Sim.Timer.create engine ~callback:(fun () -> fired := Sim.Engine.now engine)
  in
  Sim.Timer.start timer ~after:2.0;
  Alcotest.(check bool) "armed" true (Sim.Timer.is_armed timer);
  Sim.Engine.run engine;
  Alcotest.(check (float 1e-9)) "fired at 2" 2.0 !fired;
  Alcotest.(check bool) "disarmed after fire" false (Sim.Timer.is_armed timer)

let test_timer_restart () =
  let engine = Sim.Engine.create () in
  let fired = ref [] in
  let timer =
    Sim.Timer.create engine ~callback:(fun () ->
        fired := Sim.Engine.now engine :: !fired)
  in
  Sim.Timer.start timer ~after:2.0;
  ignore
    (Sim.Engine.schedule_at engine ~time:1.0 (fun () ->
         Sim.Timer.restart timer ~after:2.0));
  Sim.Engine.run engine;
  Alcotest.(check (list (float 1e-9))) "only the restarted expiry" [ 3.0 ] !fired

let test_timer_cancel () =
  let engine = Sim.Engine.create () in
  let fired = ref false in
  let timer = Sim.Timer.create engine ~callback:(fun () -> fired := true) in
  Sim.Timer.start timer ~after:1.0;
  Sim.Timer.cancel timer;
  Sim.Engine.run engine;
  Alcotest.(check bool) "cancelled" false !fired;
  (* Cancelling when idle is a no-op. *)
  Sim.Timer.cancel timer

let test_timer_double_start_rejected () =
  let engine = Sim.Engine.create () in
  let timer = Sim.Timer.create engine ~callback:(fun () -> ()) in
  Sim.Timer.start timer ~after:1.0;
  Alcotest.check_raises "double start"
    (Invalid_argument "Timer.start: already armed") (fun () ->
      Sim.Timer.start timer ~after:2.0)

let test_timer_expiry () =
  let engine = Sim.Engine.create () in
  let timer = Sim.Timer.create engine ~callback:(fun () -> ()) in
  Alcotest.(check bool) "no expiry when idle" true (Sim.Timer.expiry timer = None);
  Sim.Timer.start timer ~after:4.0;
  Alcotest.(check bool) "expiry time" true (Sim.Timer.expiry timer = Some 4.0)

let suite =
  [
    ( "engine",
      [
        Alcotest.test_case "time order" `Quick test_runs_in_time_order;
        Alcotest.test_case "simultaneous fifo" `Quick test_simultaneous_fifo;
        Alcotest.test_case "schedule during run" `Quick test_schedule_during_run;
        Alcotest.test_case "cancel" `Quick test_cancel;
        Alcotest.test_case "cancel idempotent" `Quick test_cancel_idempotent;
        Alcotest.test_case "past rejected" `Quick test_past_scheduling_rejected;
        Alcotest.test_case "negative delay rejected" `Quick
          test_negative_delay_rejected;
        Alcotest.test_case "run_until" `Quick test_run_until;
        Alcotest.test_case "stop" `Quick test_stop;
        Alcotest.test_case "stop during run_until" `Quick
          test_stop_during_run_until;
        Alcotest.test_case "cancel after fire" `Quick test_cancel_after_fire;
        Alcotest.test_case "schedule_unit" `Quick test_schedule_unit;
        Alcotest.test_case "schedule_unit rejects past" `Quick
          test_schedule_unit_rejects_past;
        Alcotest.test_case "scheduler selection" `Quick test_scheduler_selection;
        QCheck_alcotest.to_alcotest prop_schedulers_agree;
        QCheck_alcotest.to_alcotest prop_random_schedule_fires_in_order;
      ] );
    ( "timer",
      [
        Alcotest.test_case "basic" `Quick test_timer_basic;
        Alcotest.test_case "restart" `Quick test_timer_restart;
        Alcotest.test_case "cancel" `Quick test_timer_cancel;
        Alcotest.test_case "double start" `Quick test_timer_double_start_rejected;
        Alcotest.test_case "expiry" `Quick test_timer_expiry;
      ] );
  ]
