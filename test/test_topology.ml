(* Net.Topology: spec validation, routing, taps, the drop ledger, the
   builders, and QCheck conservation properties (every injected packet
   is delivered or in the ledger). *)

let droptail capacity = Net.Topology.Droptail { capacity }

let link ?(bandwidth_bps = 1e6) ?(delay = 0.001) ?(capacity = 100) from_node
    to_node =
  {
    Net.Topology.from_node;
    to_node;
    bandwidth_bps;
    delay;
    queue = droptail capacity;
  }

let node ?(routes = []) ?default_route name =
  { Net.Topology.node = name; routes; default_route }

(* a <-> b over one link pair *)
let pair_spec ?(ab = link "a" "b") ?(ba = link "b" "a") () =
  {
    Net.Topology.nodes =
      [ node "a" ~default_route:"ab"; node "b" ~default_route:"ba" ];
    links = [ ("ab", ab); ("ba", ba) ];
  }

let endpoints_ab = [| { Net.Topology.src = "a"; dst = "b" } |]

let check_invalid message f =
  Alcotest.check_raises message (Invalid_argument message) (fun () ->
      ignore (f ()))

let test_validation_rejects () =
  let validate spec = Net.Topology.validate spec ~flows:endpoints_ab in
  check_invalid "Topology: link \"ab\" bandwidth <= 0" (fun () ->
      validate (pair_spec ~ab:(link ~bandwidth_bps:0.0 "a" "b") ()));
  check_invalid "Topology: link \"ab\" negative delay" (fun () ->
      validate (pair_spec ~ab:(link ~delay:(-0.1) "a" "b") ()));
  check_invalid "Topology: link \"ab\" capacity < 1" (fun () ->
      validate (pair_spec ~ab:(link ~capacity:0 "a" "b") ()));
  check_invalid "Topology: duplicate link \"ab\"" (fun () ->
      let spec = pair_spec () in
      validate { spec with Net.Topology.links = spec.Net.Topology.links @ [ ("ab", link "a" "b") ] });
  check_invalid "Topology: undeclared node \"c\"" (fun () ->
      validate (pair_spec ~ab:(link "a" "c") ()));
  check_invalid "Topology: flow endpoint at undeclared node \"z\"" (fun () ->
      Net.Topology.validate (pair_spec ())
        ~flows:[| { Net.Topology.src = "z"; dst = "b" } |]);
  check_invalid "Topology: flow source and destination coincide at \"a\""
    (fun () ->
      Net.Topology.validate (pair_spec ())
        ~flows:[| { Net.Topology.src = "a"; dst = "a" } |])

let test_validation_rejects_bad_routes () =
  (* c is attached but a's data for c bounces between a and b forever *)
  let looping =
    {
      Net.Topology.nodes =
        [
          node "a" ~default_route:"ab";
          node "b" ~default_route:"ba";
          node "c" ~default_route:"ca";
        ];
      links =
        [ ("ab", link "a" "b"); ("ba", link "b" "a"); ("ca", link "c" "a") ];
    }
  in
  check_invalid "Topology: route from \"a\" to \"c\" loops" (fun () ->
      Net.Topology.validate looping
        ~flows:[| { Net.Topology.src = "a"; dst = "c" } |]);
  (* b has no default and no route entry for a: ACKs cannot get home *)
  let dead_end =
    {
      Net.Topology.nodes = [ node "a" ~default_route:"ab"; node "b" ];
      links = [ ("ab", link "a" "b"); ("ba", link "b" "a") ];
    }
  in
  check_invalid "Topology: no route toward \"a\" at \"b\"" (fun () ->
      Net.Topology.validate dead_end ~flows:endpoints_ab)

let test_delivery_and_introspection () =
  let engine = Sim.Engine.create () in
  let t =
    Net.Topology.create ~engine ~spec:(pair_spec ()) ~rng:(Sim.Rng.create 1L)
      ~flows:endpoints_ab ()
  in
  let data_seen = ref [] and acks_seen = ref [] in
  Net.Topology.on_data t ~flow:0 (fun p ->
      data_seen := p.Net.Packet.uid :: !data_seen);
  Net.Topology.on_ack t ~flow:0 (fun p ->
      acks_seen := p.Net.Packet.uid :: !acks_seen);
  Net.Topology.inject_data t ~flow:0
    (Net.Packet.data ~uid:1 ~flow:0 ~seq:0 ~size_bytes:1000 ~born:0.0);
  Net.Topology.inject_ack t ~flow:0
    (Net.Packet.ack ~uid:2 ~flow:0 ~ackno:0 ~size_bytes:40 ~born:0.0 ());
  Sim.Engine.run engine;
  Alcotest.(check (list int)) "data delivered at b" [ 1 ] !data_seen;
  Alcotest.(check (list int)) "ack delivered at a" [ 2 ] !acks_seen;
  Alcotest.(check int) "two flows... one" 1 (Net.Topology.flows t);
  Alcotest.(check (list string))
    "link names in realization order" [ "ab"; "ba" ]
    (Net.Topology.link_names t);
  Alcotest.(check int) "no drops" 0 (Net.Topology.total_drops t)

let test_taps_intercept () =
  let engine = Sim.Engine.create () in
  let swallowed = ref 0 in
  let t =
    Net.Topology.create ~engine ~spec:(pair_spec ()) ~rng:(Sim.Rng.create 1L)
      ~taps:[ ("ab", fun _continue _packet -> incr swallowed) ]
      ~flows:endpoints_ab ()
  in
  let delivered = ref 0 in
  Net.Topology.on_data t ~flow:0 (fun _ -> incr delivered);
  Net.Topology.inject_data t ~flow:0
    (Net.Packet.data ~uid:1 ~flow:0 ~seq:0 ~size_bytes:1000 ~born:0.0);
  Sim.Engine.run engine;
  Alcotest.(check int) "tap swallowed the packet" 1 !swallowed;
  Alcotest.(check int) "nothing delivered" 0 !delivered;
  check_invalid "Topology: duplicate tap on \"ab\"" (fun () ->
      Net.Topology.create ~engine ~spec:(pair_spec ()) ~rng:(Sim.Rng.create 1L)
        ~taps:[ ("ab", (fun k p -> k p)); ("ab", fun k p -> k p) ]
        ~flows:endpoints_ab ());
  check_invalid "Topology: tap on undeclared link \"nope\"" (fun () ->
      Net.Topology.create ~engine ~spec:(pair_spec ()) ~rng:(Sim.Rng.create 1L)
        ~taps:[ ("nope", fun k p -> k p) ]
        ~flows:endpoints_ab ())

let test_drop_ledger () =
  let engine = Sim.Engine.create () in
  let t =
    Net.Topology.create ~engine
      ~spec:(pair_spec ~ab:(link ~capacity:1 ~bandwidth_bps:1e4 "a" "b") ())
      ~rng:(Sim.Rng.create 1L) ~flows:endpoints_ab ()
  in
  Net.Topology.set_data_dispatch t (fun _ -> ());
  for uid = 1 to 10 do
    Net.Topology.inject_data t ~flow:0
      (Net.Packet.data ~uid ~flow:0 ~seq:uid ~size_bytes:1000 ~born:0.0)
  done;
  Sim.Engine.run engine;
  (* one in service + one queued survive; the other eight are dropped *)
  Alcotest.(check int) "ledger counts the drops" 8
    (Net.Topology.drops_of_flow t 0);
  Alcotest.(check int) "total equals per-flow sum" 8 (Net.Topology.total_drops t)

let test_builders_validate () =
  Alcotest.check_raises "flows < 1"
    (Invalid_argument "Dumbbell.create: flows < 1") (fun () ->
      ignore
        (Net.Topology.dumbbell ~config:(Net.Dumbbell.paper_config ~flows:0) ()));
  Alcotest.check_raises "side_delays mismatch"
    (Invalid_argument "Dumbbell.create: side_delays length mismatch") (fun () ->
      ignore
        (Net.Topology.dumbbell ~config:(Net.Dumbbell.paper_config ~flows:2)
           ~side_delays:[| 0.01 |] ()));
  check_invalid "Topology.parking_lot: hops < 1" (fun () ->
      Net.Topology.parking_lot ~hops:0 ~long_flows:1 ~cross_per_hop:0
        ~config:(Net.Dumbbell.paper_config ~flows:1) ());
  check_invalid "Topology.fat_tree: pods < 2" (fun () ->
      Net.Topology.fat_tree ~pods:1 ~hosts_per_pod:1
        ~config:(Net.Dumbbell.paper_config ~flows:1) ());
  let spec, endpoints =
    Net.Topology.parking_lot ~hops:3 ~long_flows:2 ~cross_per_hop:2
      ~config:(Net.Dumbbell.paper_config ~flows:8) ()
  in
  Alcotest.(check int) "parking-lot endpoint count" 8 (Array.length endpoints);
  Net.Topology.validate spec ~flows:endpoints;
  let spec, endpoints =
    Net.Topology.fat_tree ~pods:3 ~hosts_per_pod:2
      ~config:(Net.Dumbbell.paper_config ~flows:6) ()
  in
  Alcotest.(check int) "fat-tree endpoint count" 6 (Array.length endpoints);
  Net.Topology.validate spec ~flows:endpoints

let test_dumbbell_builder_names () =
  let spec, endpoints =
    Net.Topology.dumbbell ~config:(Net.Dumbbell.paper_config ~flows:2) ()
  in
  Net.Topology.validate spec ~flows:endpoints;
  let names = List.map fst spec.Net.Topology.links in
  List.iter
    (fun legacy ->
      Alcotest.(check bool) (legacy ^ " present") true (List.mem legacy names))
    [
      "gateway"; "reverse_gateway"; "access_fwd0"; "access_rev1"; "exit_fwd1";
      "exit_rev0";
    ]

(* Conservation: whatever parking lot we build and whatever mixture of
   data and ACK packets we inject, after the engine drains every packet
   was either delivered at its flow's endpoint or recorded in the drop
   ledger. *)
let prop_conservation =
  QCheck2.Test.make ~count:60
    ~name:"Topology: injected packets are delivered or in the drop ledger"
    QCheck2.Gen.(
      quad (int_range 1 3) (int_range 1 3) (int_range 0 2)
        (list_size (int_range 1 40) (pair bool (int_range 0 1000))))
    (fun (hops, long_flows, cross_per_hop, injections) ->
      let config =
        {
          (Net.Dumbbell.paper_config
             ~flows:(long_flows + (hops * cross_per_hop))) with
          Net.Dumbbell.gateway = Net.Dumbbell.Droptail { capacity = 2 };
          reverse_capacity = 2;
        }
      in
      let spec, endpoints =
        Net.Topology.parking_lot ~hops ~long_flows ~cross_per_hop ~config ()
      in
      let engine = Sim.Engine.create () in
      let t =
        Net.Topology.create ~engine ~spec ~rng:(Sim.Rng.create 99L)
          ~flows:endpoints ()
      in
      let delivered = ref 0 in
      Net.Topology.set_data_dispatch t (fun _ -> incr delivered);
      Net.Topology.set_ack_dispatch t (fun _ -> incr delivered);
      let n = Array.length endpoints in
      List.iteri
        (fun uid (is_data, flow_pick) ->
          let flow = flow_pick mod n in
          if is_data then
            Net.Topology.inject_data t ~flow
              (Net.Packet.data ~uid ~flow ~seq:uid ~size_bytes:1000 ~born:0.0)
          else
            Net.Topology.inject_ack t ~flow
              (Net.Packet.ack ~uid ~flow ~ackno:uid ~size_bytes:40 ~born:0.0 ()))
        injections;
      Sim.Engine.run engine;
      !delivered + Net.Topology.total_drops t = List.length injections)

(* The same conservation through the fat tree, with queues too generous
   to drop: everything must be delivered. *)
let prop_fat_tree_delivers =
  QCheck2.Test.make ~count:40
    ~name:"Topology: fat tree delivers every packet when queues never fill"
    QCheck2.Gen.(
      triple (int_range 2 4) (int_range 1 3)
        (list_size (int_range 1 30) (int_range 0 1000)))
    (fun (pods, hosts_per_pod, picks) ->
      let config =
        {
          (Net.Dumbbell.paper_config ~flows:(pods * hosts_per_pod)) with
          Net.Dumbbell.gateway = Net.Dumbbell.Droptail { capacity = 10_000 };
          access_capacity = 10_000;
        }
      in
      let spec, endpoints =
        Net.Topology.fat_tree ~pods ~hosts_per_pod ~config ()
      in
      let engine = Sim.Engine.create () in
      let t =
        Net.Topology.create ~engine ~spec ~rng:(Sim.Rng.create 5L)
          ~flows:endpoints ()
      in
      let delivered = ref 0 in
      Net.Topology.set_data_dispatch t (fun _ -> incr delivered);
      let n = Array.length endpoints in
      List.iteri
        (fun uid pick ->
          Net.Topology.inject_data t ~flow:(pick mod n)
            (Net.Packet.data ~uid ~flow:(pick mod n) ~seq:uid ~size_bytes:1000
               ~born:0.0))
        picks;
      Sim.Engine.run engine;
      !delivered = List.length picks && Net.Topology.total_drops t = 0)

let suite =
  [
    ( "topology",
      [
        Alcotest.test_case "validation rejects malformed specs" `Quick
          test_validation_rejects;
        Alcotest.test_case "validation rejects bad routes" `Quick
          test_validation_rejects_bad_routes;
        Alcotest.test_case "delivery and introspection" `Quick
          test_delivery_and_introspection;
        Alcotest.test_case "taps intercept" `Quick test_taps_intercept;
        Alcotest.test_case "drop ledger" `Quick test_drop_ledger;
        Alcotest.test_case "builders validate" `Quick test_builders_validate;
        Alcotest.test_case "dumbbell builder keeps legacy names" `Quick
          test_dumbbell_builder_names;
        QCheck_alcotest.to_alcotest prop_conservation;
        QCheck_alcotest.to_alcotest prop_fat_tree_delivers;
      ] );
  ]
