(* Sender-base tests: windowing, send pacing, cwnd growth, RTT
   sampling, go-back-N timeout behaviour, completion. *)

open Tcp.Sender_common

let make ?params () = Harness.make ?params Tcp.Newreno.create

let test_initial_send () =
  let h = make () in
  Harness.start h;
  (* initial cwnd 1: exactly one segment goes out. *)
  Alcotest.(check (list int)) "one segment" [ 0 ] (Harness.sent_seqs h);
  Alcotest.(check int) "t_seqno" 1 (Harness.base h).t_seqno

let test_slow_start_growth () =
  let h = make () in
  Harness.start h;
  ignore (Harness.sent h);
  Harness.deliver_ack h 0;
  Alcotest.(check (list int)) "cwnd 2 sends 2" [ 1; 2 ] (Harness.sent_seqs h);
  Harness.deliver_ack h 1;
  Harness.deliver_ack h 2;
  (* Two ACKs: cwnd 4: two new per ack. *)
  Alcotest.(check (list int)) "cwnd 4" [ 3; 4; 5; 6 ] (Harness.sent_seqs h)

let test_congestion_avoidance_growth () =
  let params = { Harness.params with Tcp.Params.initial_ssthresh = 2.0 } in
  let h = make ~params () in
  Harness.start h;
  ignore (Harness.sent h);
  Harness.deliver_ack h 0;
  let cwnd_before = cwnd (Harness.base h) in
  Harness.deliver_ack h 1;
  let cwnd_after = cwnd (Harness.base h) in
  Alcotest.(check bool)
    (Printf.sprintf "linear growth %.3f -> %.3f" cwnd_before cwnd_after)
    true
    (cwnd_after -. cwnd_before < 1.0 /. cwnd_before +. 1e-9)

let test_rwnd_caps_window () =
  let params = { Harness.params with Tcp.Params.rwnd = 4 } in
  let h = make ~params () in
  Harness.open_window h ~target:20;
  Alcotest.(check bool) "window capped" true (window (Harness.base h) <= 4.0)

let test_max_burst () =
  let params = { Harness.params with Tcp.Params.max_burst = 2 } in
  let h = make ~params () in
  Harness.start h;
  ignore (Harness.sent h);
  (* Grow cwnd big, then watch a single ACK release at most 2. *)
  for ackno = 0 to 5 do
    Harness.deliver_ack h ackno
  done;
  ignore (Harness.sent h);
  Harness.deliver_ack h 6;
  Alcotest.(check bool) "burst capped at 2" true
    (List.length (Harness.sent_seqs h) <= 2)

let test_app_limited () =
  let h = make () in
  Harness.start ~segments:2 h;
  Alcotest.(check (list int)) "first" [ 0 ] (Harness.sent_seqs h);
  Harness.deliver_ack h 0;
  Alcotest.(check (list int)) "second and stop" [ 1 ] (Harness.sent_seqs h);
  Harness.deliver_ack h 1;
  Alcotest.(check (list int)) "no data left" [] (Harness.sent_seqs h)

let test_completion_callback () =
  let h = make () in
  let completed = ref false in
  (Harness.base h).on_complete <- (fun () -> completed := true);
  Harness.start ~segments:2 h;
  Harness.deliver_ack h 0;
  Alcotest.(check bool) "not yet" false !completed;
  Harness.deliver_ack h 1;
  Alcotest.(check bool) "fired" true !completed

let test_rtt_sampling () =
  let h = make () in
  Harness.start h;
  Harness.advance h ~by:0.25;
  Harness.deliver_ack h 0;
  match Tcp.Rto.srtt (Harness.base h).rto with
  | Some srtt -> Alcotest.(check (float 1e-9)) "srtt = delay" 0.25 srtt
  | None -> Alcotest.fail "no sample"

let test_timeout_go_back_n () =
  let h = make () in
  Harness.open_window h ~target:10;
  ignore (Harness.sent h);
  let before = cwnd (Harness.base h) in
  Alcotest.(check bool) "window grew" true (before > 1.0);
  (* Nothing comes back: the initial 3 s RTO fires exactly once within
     4 s (the backed-off second expiry would be at 9 s). *)
  Harness.advance h ~by:4.0;
  let b = Harness.base h in
  Alcotest.(check int) "timeout counted" 1 b.counters.Tcp.Counters.timeouts;
  Alcotest.(check (float 1e-9)) "cwnd collapsed" 1.0 (cwnd b);
  Alcotest.(check bool) "ssthresh halved" true ((ssthresh b) <= before /. 2.0 +. 1e-9);
  (match Harness.sent h with
  | { seq; retx = true; _ } :: _ -> Alcotest.(check int) "resends una+1" (b.una + 1) seq
  | _ -> Alcotest.fail "expected retransmission");
  Alcotest.(check int) "recover_mark set" b.maxseq b.recover_mark

let test_timeout_backoff_doubles () =
  let h = make () in
  Harness.start h;
  ignore (Harness.sent h);
  Harness.advance h ~by:100.0;
  let b = Harness.base h in
  Alcotest.(check bool)
    (Printf.sprintf "%d repeated timeouts back off" b.counters.Tcp.Counters.timeouts)
    true
    (b.counters.Tcp.Counters.timeouts >= 3
    && b.counters.Tcp.Counters.timeouts <= 8)

let test_una_overtake_clamps_t_seqno () =
  let h = make () in
  Harness.open_window h ~target:10;
  ignore (Harness.sent h);
  let b = Harness.base h in
  (* Roll back as a timeout would, then deliver a big cumulative ACK. *)
  b.t_seqno <- b.una + 1;
  Harness.deliver_ack h (b.maxseq - 1);
  Alcotest.(check bool) "t_seqno >= una+1" true (b.t_seqno >= b.una + 1)

let test_limited_transmit () =
  let params = { Harness.params with Tcp.Params.limited_transmit = true } in
  let h = make ~params () in
  Harness.open_window h ~target:10;
  ignore (Harness.sent h);
  (* First two dupacks each release one new segment; the third triggers
     fast retransmit instead. *)
  Harness.dupack h;
  (match Harness.sent h with
  | [ { seq = 10; retx = false; _ } ] -> ()
  | _ -> Alcotest.fail "expected one new segment on 1st dupack");
  Harness.dupack h;
  (match Harness.sent h with
  | [ { seq = 11; retx = false; _ } ] -> ()
  | _ -> Alcotest.fail "expected one new segment on 2nd dupack");
  Harness.dupack h;
  match Harness.sent h with
  | { retx = true; _ } :: _ -> ()
  | _ -> Alcotest.fail "expected fast retransmit on 3rd dupack"

let test_limited_transmit_off_by_default () =
  let h = make () in
  Harness.open_window h ~target:10;
  ignore (Harness.sent h);
  Harness.dupack h;
  Harness.dupack h;
  Alcotest.(check (list int)) "nothing sent" [] (Harness.sent_seqs h)

let test_smooth_start () =
  let params =
    {
      Harness.params with
      Tcp.Params.initial_ssthresh = 8.0;
      smooth_start = true;
    }
  in
  let h = make ~params () in
  Harness.start h;
  ignore (Harness.sent h);
  let b = Harness.base h in
  (* Below ssthresh/2: full exponential growth. *)
  Harness.deliver_ack h 0;
  Alcotest.(check (float 1e-9)) "full growth below half" 2.0 (cwnd b);
  Harness.deliver_ack h 1;
  Harness.deliver_ack h 2;
  Alcotest.(check (float 1e-9)) "at half" 4.0 (cwnd b);
  (* From ssthresh/2 = 4 onward: half-rate growth. *)
  Harness.deliver_ack h 3;
  Alcotest.(check (float 1e-9)) "damped growth" 4.5 (cwnd b)

let test_karn_rule () =
  let h = make () in
  Harness.start h;
  ignore (Harness.sent h);
  let b = Harness.base h in
  Alcotest.(check bool) "segment timed" true (b.timed <> None);
  (* Retransmit the timed segment: the timing must be cancelled. *)
  send_segment b ~seq:0 ~retx:true;
  Alcotest.(check bool) "timing cancelled" true (b.timed = None);
  (* The crux of Karn's rule: the ACK of that retransmitted segment must
     NOT become an RTT sample — it is ambiguous which transmission it
     acknowledges, and timing it would poison every estimator the RTO
     can run. *)
  Harness.advance h ~by:0.5;
  Harness.deliver_ack h 0;
  Alcotest.(check bool) "ambiguous ACK yields no sample" true
    (Tcp.Rto.srtt b.rto = None)

let test_karn_rule_unrelated_retransmit () =
  (* Retransmitting a segment other than the timed one must leave the
     timing armed: Karn's rule only disqualifies the ambiguous
     measurement, not the whole window. *)
  let h = make () in
  Harness.open_window h ~target:4;
  ignore (Harness.sent h);
  let b = Harness.base h in
  (match b.timed with
  | Some (seq, _) -> Alcotest.(check int) "segment 0 is the timed one" 0 seq
  | None -> Alcotest.fail "expected a timed segment");
  send_segment b ~seq:2 ~retx:true;
  Alcotest.(check bool) "timing survives" true (b.timed <> None);
  Harness.advance h ~by:0.25;
  Harness.deliver_ack h 0;
  match Tcp.Rto.srtt b.rto with
  | Some srtt -> Alcotest.(check (float 1e-9)) "clean sample taken" 0.25 srtt
  | None -> Alcotest.fail "expected an RTT sample"

let test_multicast_hooks () =
  (* Several observers on one sender: all of them see every event. The
     old single-slot hooks silently dropped all but the last subscriber
     (the harness already takes one slot here). *)
  let h = make () in
  let sends_a = ref 0 and sends_b = ref 0 and acks = ref 0 in
  let base = Harness.base h in
  Tcp.Sender_common.on_send base (fun ~time:_ ~seq:_ ~retx:_ -> incr sends_a);
  Tcp.Sender_common.on_send base (fun ~time:_ ~seq:_ ~retx:_ -> incr sends_b);
  Tcp.Sender_common.on_ack base (fun ~time:_ ~ackno:_ -> incr acks);
  Harness.start h;
  Harness.deliver_ack h 0;
  let harness_seen = List.length (Harness.sent_seqs h) in
  Alcotest.(check bool) "harness subscriber still live" true (harness_seen > 0);
  Alcotest.(check int) "first subscriber" harness_seen !sends_a;
  Alcotest.(check int) "second subscriber" harness_seen !sends_b;
  Alcotest.(check int) "ack subscriber" 1 !acks

let suite =
  [
    ( "sender_common",
      [
        Alcotest.test_case "initial send" `Quick test_initial_send;
        Alcotest.test_case "slow start" `Quick test_slow_start_growth;
        Alcotest.test_case "congestion avoidance" `Quick
          test_congestion_avoidance_growth;
        Alcotest.test_case "rwnd cap" `Quick test_rwnd_caps_window;
        Alcotest.test_case "max burst" `Quick test_max_burst;
        Alcotest.test_case "app limited" `Quick test_app_limited;
        Alcotest.test_case "completion" `Quick test_completion_callback;
        Alcotest.test_case "rtt sampling" `Quick test_rtt_sampling;
        Alcotest.test_case "timeout go-back-n" `Quick test_timeout_go_back_n;
        Alcotest.test_case "timeout backoff" `Quick test_timeout_backoff_doubles;
        Alcotest.test_case "t_seqno clamp" `Quick test_una_overtake_clamps_t_seqno;
        Alcotest.test_case "limited transmit" `Quick test_limited_transmit;
        Alcotest.test_case "limited transmit default off" `Quick
          test_limited_transmit_off_by_default;
        Alcotest.test_case "smooth start" `Quick test_smooth_start;
        Alcotest.test_case "karn rule" `Quick test_karn_rule;
        Alcotest.test_case "karn rule: unrelated retransmit" `Quick
          test_karn_rule_unrelated_retransmit;
        Alcotest.test_case "multicast hooks" `Quick test_multicast_hooks;
      ] );
  ]
