(* Scripted-network harness for white-box TCP sender tests.

   Instead of a simulated network, the test holds the wire: packets the
   sender emits are logged, and the test hand-crafts the ACKs it
   delivers back. Time only advances when the test says so, which makes
   RTO behaviour scriptable too. *)

type send = { at : float; seq : int; retx : bool }

type t = {
  engine : Sim.Engine.t;
  agent : Tcp.Agent.t;
  log : send list ref;  (* newest first *)
  mutable ack_uid : int;
}

let params = { Tcp.Params.default with max_burst = 0 }

let make ?(params = params) create =
  let engine = Sim.Engine.create () in
  let log = ref [] in
  let agent =
    create ~engine ~params ~flow:0 ~emit:(fun (_ : Net.Packet.t) -> ()) ()
  in
  Tcp.Sender_common.on_send agent.Tcp.Agent.base (fun ~time ~seq ~retx ->
      log := { at = time; seq; retx } :: !log);
  { engine; agent; log; ack_uid = 0 }

let base t = t.agent.Tcp.Agent.base

(* Drain the send log since the last call, oldest first. *)
let sent t =
  let out = List.rev !(t.log) in
  t.log := [];
  out

let sent_seqs t = List.map (fun s -> s.seq) (sent t)

let deliver_ack ?(sack = []) t ackno =
  t.ack_uid <- t.ack_uid + 1;
  t.agent.Tcp.Agent.deliver_ack
    (Net.Packet.ack ~uid:t.ack_uid ~flow:0 ~ackno ~sack ~size_bytes:40
       ~born:(Sim.Engine.now t.engine) ())

(* A duplicate ACK repeats the current cumulative point. *)
let dupack ?sack t = deliver_ack ?sack t (base t).Tcp.Sender_common.una

let dupacks ?sack t n =
  for _ = 1 to n do
    dupack ?sack t
  done

let advance t ~by =
  Sim.Engine.run_until t.engine ~time:(Sim.Engine.now t.engine +. by)

let start ?(segments = 1000) t =
  Tcp.Agent.supply_data t.agent ~segments;
  Tcp.Agent.start t.agent

(* Put the sender in a clean, fully-loaded steady state: cwnd = [target]
   and exactly [target] segments (0 .. target-1) outstanding, none yet
   acknowledged. White-box tests then script losses against a full
   window, the situation every recovery algorithm is specified in. *)
let open_window t ~target =
  Tcp.Sender_common.set_cwnd (base t) (float_of_int target);
  start ~segments:1_000_000 t
