(* Drop-tail and RED queue-discipline tests. *)

let packet ?(flow = 0) ?(size = 1000) seq =
  Net.Packet.data ~uid:seq ~flow ~seq ~size_bytes:size ~born:0.0

let test_droptail_fifo () =
  let q = Net.Droptail.create ~capacity:10 () in
  List.iter (fun s -> ignore (q.Net.Queue_disc.enqueue (packet s) : bool)) [ 1; 2; 3 ];
  let seqs =
    List.init 3 (fun _ ->
        match q.Net.Queue_disc.dequeue () with
        | Some p -> Net.Packet.seq_exn p
        | None -> -1)
  in
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] seqs;
  Alcotest.(check bool) "drained" true (q.Net.Queue_disc.dequeue () = None)

let test_droptail_capacity () =
  let dropped = ref [] in
  let q =
    Net.Droptail.create ~capacity:2
      ~on_drop:(fun p -> dropped := Net.Packet.seq_exn p :: !dropped)
      ()
  in
  let accepted =
    List.map (fun s -> q.Net.Queue_disc.enqueue (packet s)) [ 1; 2; 3; 4 ]
  in
  Alcotest.(check (list bool)) "two accepted" [ true; true; false; false ] accepted;
  Alcotest.(check (list int)) "drop callback" [ 4; 3 ] !dropped;
  Alcotest.(check int) "stats enq" 2 q.Net.Queue_disc.stats.Net.Queue_disc.enqueued;
  Alcotest.(check int) "stats drop" 2 q.Net.Queue_disc.stats.Net.Queue_disc.dropped;
  (* Draining makes room again. *)
  ignore (q.Net.Queue_disc.dequeue ());
  Alcotest.(check bool) "room again" true (q.Net.Queue_disc.enqueue (packet 5))

let test_droptail_byte_length () =
  let q = Net.Droptail.create ~capacity:5 () in
  ignore (q.Net.Queue_disc.enqueue (packet ~size:700 1) : bool);
  ignore (q.Net.Queue_disc.enqueue (packet ~size:300 2) : bool);
  Alcotest.(check int) "bytes" 1000 (q.Net.Queue_disc.byte_length ());
  ignore (q.Net.Queue_disc.dequeue ());
  Alcotest.(check int) "bytes after deq" 300 (q.Net.Queue_disc.byte_length ())

let test_droptail_invalid () =
  Alcotest.check_raises "capacity" (Invalid_argument "Droptail.create: capacity < 1")
    (fun () -> ignore (Net.Droptail.create ~capacity:0 ()))

let make_red ?(capacity = 25) ?(params = Net.Red.paper_params) () =
  let engine = Sim.Engine.create () in
  let disc, stats, probe =
    Net.Red.create_with_probe ~engine ~capacity ~params
      ~rng:(Sim.Rng.create 9L) ~bandwidth_bps:(Sim.Units.mbps 0.8) ()
  in
  (engine, disc, stats, probe)

let test_red_no_drops_below_min () =
  let _, q, stats, _ = make_red () in
  (* Keep the instantaneous queue at <= 2: the average stays below
     min_th = 5, so nothing may drop. *)
  for i = 1 to 200 do
    ignore (q.Net.Queue_disc.enqueue (packet i) : bool);
    while q.Net.Queue_disc.length () > 2 do
      ignore (q.Net.Queue_disc.dequeue ())
    done
  done;
  Alcotest.(check int) "no early" 0 stats.Net.Red.early;
  Alcotest.(check int) "no forced" 0 stats.Net.Red.forced;
  Alcotest.(check int) "no overflow" 0 stats.Net.Red.buffer_full

let test_red_average_tracks_queue () =
  let _, q, _, probe = make_red () in
  for i = 1 to 2000 do
    ignore (q.Net.Queue_disc.enqueue (packet i) : bool);
    if q.Net.Queue_disc.length () > 10 then ignore (q.Net.Queue_disc.dequeue ())
  done;
  let avg = probe () in
  Alcotest.(check bool)
    (Printf.sprintf "avg %.2f approaches queue ~10" avg)
    true
    (avg > 6.0 && avg < 12.0)

let test_red_forced_drops_above_max () =
  let _, q, stats, probe = make_red ~capacity:100 () in
  (* Fill without draining: the average eventually crosses max_th = 20
     and every arrival is dropped. *)
  for i = 1 to 4000 do
    ignore (q.Net.Queue_disc.enqueue (packet i) : bool)
  done;
  Alcotest.(check bool) "avg above max_th" true (probe () >= 20.0);
  Alcotest.(check bool) "forced drops happened" true (stats.Net.Red.forced > 0)

let test_red_early_drops_in_band () =
  let _, q, stats, _ = make_red ~capacity:100 () in
  (* Hold the queue around 12 — inside [min_th, max_th): early drops
     must appear with probability ~max_p. *)
  for i = 1 to 5000 do
    ignore (q.Net.Queue_disc.enqueue (packet i) : bool);
    if q.Net.Queue_disc.length () > 12 then ignore (q.Net.Queue_disc.dequeue ())
  done;
  Alcotest.(check bool)
    (Printf.sprintf "early drops %d > 0" stats.Net.Red.early)
    true (stats.Net.Red.early > 0);
  Alcotest.(check int) "no forced" 0 stats.Net.Red.forced

let test_red_idle_decay () =
  let engine, q, _, probe = make_red () in
  for i = 1 to 40 do
    ignore (q.Net.Queue_disc.enqueue (packet i) : bool);
    if q.Net.Queue_disc.length () > 8 then ignore (q.Net.Queue_disc.dequeue ())
  done;
  (* Drain completely, idle for a long time, then enqueue once: the
     average must have decayed toward zero. *)
  while q.Net.Queue_disc.dequeue () <> None do () done;
  let before = probe () in
  Sim.Engine.run_until engine ~time:60.0;
  ignore (q.Net.Queue_disc.enqueue (packet 999) : bool);
  let after = probe () in
  Alcotest.(check bool)
    (Printf.sprintf "decayed %.3f -> %.3f" before after)
    true
    (after < before /. 2.0)

let test_red_validation () =
  let engine = Sim.Engine.create () in
  let bad params =
    Alcotest.check_raises "invalid params"
      (Invalid_argument "Red.create: need 0 < min_th < max_th") (fun () ->
        ignore
          (Net.Red.create ~engine ~capacity:10 ~params ~rng:(Sim.Rng.create 1L)
             ~bandwidth_bps:1e6 ()))
  in
  bad { Net.Red.paper_params with min_th = 10.0; max_th = 5.0 }

let suite =
  [
    ( "droptail",
      [
        Alcotest.test_case "fifo" `Quick test_droptail_fifo;
        Alcotest.test_case "capacity" `Quick test_droptail_capacity;
        Alcotest.test_case "byte length" `Quick test_droptail_byte_length;
        Alcotest.test_case "invalid" `Quick test_droptail_invalid;
      ] );
    ( "red",
      [
        Alcotest.test_case "no drops below min_th" `Quick test_red_no_drops_below_min;
        Alcotest.test_case "average tracks queue" `Quick test_red_average_tracks_queue;
        Alcotest.test_case "forced above max_th" `Quick test_red_forced_drops_above_max;
        Alcotest.test_case "early drops in band" `Quick test_red_early_drops_in_band;
        Alcotest.test_case "idle decay" `Quick test_red_idle_decay;
        Alcotest.test_case "parameter validation" `Quick test_red_validation;
      ] );
  ]
