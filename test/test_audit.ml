(* Auditor tests, in two directions:

   - detection power: deliberately broken components (a LIFO queue, a
     corrupted cwnd) must be flagged;
   - soundness sweeps: seeded runs of the real stack — five variants,
     drop-tail and RED gateways, burst and random drop patterns — must
     produce zero violations while running plenty of checks. *)

let packet ~uid ~seq = Net.Packet.data ~uid ~flow:0 ~seq ~size_bytes:1000 ~born:0.0

let rules auditor =
  List.map (fun v -> v.Audit.Auditor.rule) (Audit.Auditor.violations auditor)

let test_detects_reordering () =
  let engine = Sim.Engine.create () in
  let auditor = Audit.Auditor.create ~engine () in
  (* A LIFO "queue" with honest statistics: only the same-flow ordering
     invariant is broken. *)
  let stack = ref [] in
  let stats = Net.Queue_disc.fresh_stats () in
  let disc =
    Net.Queue_disc.make ~name:"lifo"
      ~enqueue:(fun p ->
        stack := p :: !stack;
        stats.Net.Queue_disc.enqueued <- stats.Net.Queue_disc.enqueued + 1;
        true)
      ~dequeue:(fun () ->
        match !stack with
        | [] -> None
        | p :: rest ->
          stack := rest;
          stats.Net.Queue_disc.dequeued <- stats.Net.Queue_disc.dequeued + 1;
          Some p)
      ~length:(fun () -> List.length !stack)
      ~byte_length:(fun () -> 1000 * List.length !stack)
      ~stats ()
  in
  Audit.Auditor.attach_queue auditor ~name:"lifo" disc;
  ignore (disc.Net.Queue_disc.enqueue (packet ~uid:1 ~seq:0) : bool);
  ignore (disc.Net.Queue_disc.enqueue (packet ~uid:2 ~seq:1) : bool);
  ignore (disc.Net.Queue_disc.dequeue () : Net.Packet.t option);
  Alcotest.(check bool) "caught" false (Audit.Auditor.ok auditor);
  Alcotest.(check bool) "as a fifo violation" true
    (List.mem "queue-fifo" (rules auditor))

let test_detects_occupancy_leak () =
  let engine = Sim.Engine.create () in
  let auditor = Audit.Auditor.create ~engine () in
  (* A queue that loses every other packet: accepted (and counted) but
     never dequeueable. *)
  let fifo : Net.Packet.t Queue.t = Queue.create () in
  let stats = Net.Queue_disc.fresh_stats () in
  let counter = ref 0 in
  let disc =
    Net.Queue_disc.make ~name:"leaky"
      ~enqueue:(fun p ->
        incr counter;
        if !counter mod 2 = 0 then Queue.push p fifo;
        stats.Net.Queue_disc.enqueued <- stats.Net.Queue_disc.enqueued + 1;
        true)
      ~dequeue:(fun () -> Queue.take_opt fifo)
      ~length:(fun () -> Queue.length fifo)
      ~byte_length:(fun () -> 1000 * Queue.length fifo)
      ~stats ()
  in
  Audit.Auditor.attach_queue auditor ~name:"leaky" disc;
  ignore (disc.Net.Queue_disc.enqueue (packet ~uid:1 ~seq:0) : bool);
  Alcotest.(check bool) "leak caught" false (Audit.Auditor.ok auditor);
  Alcotest.(check bool) "as conservation" true
    (List.mem "queue-conservation" (rules auditor))

let test_detects_corrupt_cwnd () =
  let h = Harness.make Tcp.Reno.create in
  let engine = Sim.Engine.create () in
  let auditor = Audit.Auditor.create ~engine () in
  Audit.Auditor.attach_sender auditor ~label:"flow 0 (reno)" h.Harness.agent;
  Harness.start h;
  Harness.deliver_ack h 0;
  Alcotest.(check bool) "healthy so far" true (Audit.Auditor.ok auditor);
  (* Corrupt the window below the floor; the next event must trip the
     sender-window rule. *)
  Tcp.Sender_common.set_cwnd (Harness.base h) 0.25;
  Harness.deliver_ack h 2;
  Alcotest.(check bool) "corruption caught" false (Audit.Auditor.ok auditor);
  Alcotest.(check bool) "as sender-window" true
    (List.mem "sender-window" (rules auditor))

let test_finalize_flags_stats_drift () =
  let engine = Sim.Engine.create () in
  let auditor = Audit.Auditor.create ~engine () in
  let fifo : Net.Packet.t Queue.t = Queue.create () in
  let stats = Net.Queue_disc.fresh_stats () in
  let disc =
    Net.Queue_disc.make ~name:"overcounting"
      ~enqueue:(fun p ->
        Queue.push p fifo;
        (* Double-counts accepted packets. *)
        stats.Net.Queue_disc.enqueued <- stats.Net.Queue_disc.enqueued + 2;
        true)
      ~dequeue:(fun () -> Queue.take_opt fifo)
      ~length:(fun () -> Queue.length fifo)
      ~byte_length:(fun () -> 1000 * Queue.length fifo)
      ~stats ()
  in
  Audit.Auditor.attach_queue auditor ~name:"overcounting" disc;
  ignore (disc.Net.Queue_disc.enqueue (packet ~uid:1 ~seq:0) : bool);
  Audit.Auditor.finalize auditor;
  Alcotest.(check bool) "drift caught at finalize" true
    (List.mem "queue-stats" (rules auditor))

(* -- divergence monitor (observational, Jain cs/9809097) -- *)

let fine_params =
  {
    Tcp.Params.default with
    min_rto = 0.2;
    initial_rto = 0.5;
    max_rto = 8.0;
  }

let test_divergence_trend_rule () =
  (* One clean sample pins srtt at 0.2 s, then the wire goes silent:
     repeated timeouts back the RTO off 0.6 -> 1.2 -> 2.4 -> 4.8 while
     the measured RTT never moves. The observation window must catch the
     ratio running away. *)
  let h = Harness.make ~params:fine_params Tcp.Newreno.create in
  let monitor = Audit.Divergence.create ~engine:h.Harness.engine () in
  Audit.Divergence.attach_sender monitor ~label:"flow 0 (newreno)"
    h.Harness.agent;
  Harness.start h;
  Harness.advance h ~by:0.2;
  Harness.deliver_ack h 0;
  Alcotest.(check bool) "quiet while healthy" true
    (Audit.Divergence.quiet monitor);
  Harness.advance h ~by:20.0;
  Alcotest.(check bool) "divergence caught" true
    (Audit.Divergence.divergence_count monitor >= 1);
  let rules =
    List.map (fun f -> f.Audit.Divergence.rule) (Audit.Divergence.findings monitor)
  in
  Alcotest.(check bool) "rule name" true (List.mem "rto-divergence" rules)

let test_divergence_sync_rule () =
  (* Two flows started together on a dead wire expire their initial RTO
     at the same instant: a synchronized-timeout burst, no RTT estimate
     required. *)
  let engine = Sim.Engine.create () in
  let monitor = Audit.Divergence.create ~engine () in
  let spawn flow =
    let agent =
      Tcp.Newreno.create ~engine ~params:Tcp.Params.default ~flow
        ~emit:(fun (_ : Net.Packet.t) -> ())
        ()
    in
    Audit.Divergence.attach_sender monitor
      ~label:(Printf.sprintf "flow %d" flow)
      agent;
    Tcp.Agent.supply_data agent ~segments:10;
    Tcp.Agent.start agent
  in
  spawn 0;
  spawn 1;
  Sim.Engine.run_until engine ~time:4.0;
  Alcotest.(check bool) "sync burst caught" true
    (Audit.Divergence.sync_burst_count monitor >= 1);
  Alcotest.(check int) "no divergence without an RTT estimate" 0
    (Audit.Divergence.divergence_count monitor)

let test_scenario_divergence_plumbing () =
  let run watch_divergence =
    let config = Net.Dumbbell.paper_config ~flows:1 in
    Experiments.Scenario.run
      (Experiments.Scenario.make ~topology:(Experiments.Scenario.dumbbell config)
         ~flows:[ Experiments.Scenario.flow Core.Variant.Rr ]
         ~params:{ Tcp.Params.default with rwnd = 20 }
         ~seed:7L ~duration:2.0 ~watch_divergence ())
  in
  (match (run false).Experiments.Scenario.divergence with
  | None -> ()
  | Some _ -> Alcotest.fail "monitor attached without watch_divergence");
  match (run true).Experiments.Scenario.divergence with
  | Some monitor ->
    Alcotest.(check bool) "clean short run stays quiet" true
      (Audit.Divergence.quiet monitor)
  | None -> Alcotest.fail "watch_divergence did not attach a monitor"

let test_divergence_under_flaps () =
  (* The acceptance path of the rtodiv experiment: the default Jacobson
     estimator on fine timers, run through the PR-4 link-flap schedule,
     must produce at least one measured finding. *)
  let outcome =
    Experiments.Rto_divergence.run ~estimators:[ Tcp.Rto.Jacobson ]
      ~seeds:[ 7L; 29L ] ()
  in
  Alcotest.(check bool) "flap schedule yields findings" true
    (Experiments.Rto_divergence.findings outcome > 0.0)

(* -- soundness sweeps over the healthy stack -- *)

let sweep_variants =
  Core.Variant.[ Tahoe; Reno; Newreno; Sack; Rr ]

let gateway_of red =
  if red then Net.Dumbbell.Red { capacity = 25; params = Net.Red.paper_params }
  else Net.Dumbbell.Droptail { capacity = 8 }

let run_scenario ~variant ~red ~seed ~forced_drops ~uniform_loss ~ack_loss =
  let config =
    { (Net.Dumbbell.paper_config ~flows:2) with gateway = gateway_of red }
  in
  Experiments.Scenario.run
    (Experiments.Scenario.make ~topology:(Experiments.Scenario.dumbbell config)
       ~flows:[ Experiments.Scenario.flow variant; Experiments.Scenario.flow variant ]
       ~params:{ Tcp.Params.default with rwnd = 20; initial_ssthresh = 16.0 }
       ~seed ~duration:10.0 ~forced_drops ~uniform_loss ~ack_loss ())

let check_clean label t =
  let auditor = t.Experiments.Scenario.auditor in
  Alcotest.(check bool)
    (label ^ ": checks actually ran")
    true
    (Audit.Auditor.checks_run auditor > 1000);
  if not (Audit.Auditor.ok auditor) then
    Alcotest.failf "%s:\n%s" label (Audit.Auditor.report auditor)

let test_sweep_bursts () =
  List.iter
    (fun variant ->
      List.iter
        (fun red ->
          List.iter
            (fun drops ->
              let forced_drops =
                List.init drops (fun i ->
                    { Net.Loss.flow = 0; seq = 33 + i; occurrence = 1 })
              in
              let label =
                Printf.sprintf "%s/%s/burst%d"
                  (Core.Variant.name variant)
                  (if red then "red" else "droptail")
                  drops
              in
              check_clean label
                (run_scenario ~variant ~red ~seed:7L ~forced_drops
                   ~uniform_loss:0.0 ~ack_loss:0.0))
            [ 1; 3; 6 ])
        [ false; true ])
    sweep_variants

let test_sweep_random_loss () =
  List.iter
    (fun variant ->
      List.iter
        (fun red ->
          List.iter
            (fun seed ->
              let label =
                Printf.sprintf "%s/%s/seed%Ld"
                  (Core.Variant.name variant)
                  (if red then "red" else "droptail")
                  seed
              in
              check_clean label
                (run_scenario ~variant ~red ~seed ~forced_drops:[]
                   ~uniform_loss:0.03 ~ack_loss:0.02))
            [ 1L; 2L; 3L ])
        [ false; true ])
    sweep_variants

(* Property form: any drop pattern the generator can dream up, still
   zero violations. *)
let prop_sweep_arbitrary_drops =
  QCheck2.Test.make ~name:"auditor finds no violations on random scenarios"
    ~count:20
    QCheck2.Gen.(
      tup5 (int_range 0 4) bool (int_range 1 10_000)
        (list_size (int_range 0 8) (int_range 10 80))
        (oneofl [ 0.0; 0.01; 0.05 ]))
    (fun (variant_index, red, seed, drop_seqs, uniform_loss) ->
      let variant = List.nth sweep_variants variant_index in
      let forced_drops =
        List.map
          (fun seq -> { Net.Loss.flow = 0; seq; occurrence = 1 })
          drop_seqs
      in
      let t =
        run_scenario ~variant ~red ~seed:(Int64.of_int seed) ~forced_drops
          ~uniform_loss ~ack_loss:0.0
      in
      Audit.Auditor.ok t.Experiments.Scenario.auditor)

let test_trace_shape () =
  let path = Filename.temp_file "rr_trace" ".jsonl" in
  let out = open_out path in
  let config = { (Net.Dumbbell.paper_config ~flows:2) with gateway = gateway_of false } in
  let t =
    Experiments.Scenario.run
      (Experiments.Scenario.make ~topology:(Experiments.Scenario.dumbbell config)
         ~flows:
           [
             Experiments.Scenario.flow Core.Variant.Rr;
             Experiments.Scenario.flow Core.Variant.Rr;
           ]
         ~params:{ Tcp.Params.default with rwnd = 20 }
         ~seed:7L ~duration:5.0 ~uniform_loss:0.02 ~trace_out:out ())
  in
  close_out out;
  Alcotest.(check bool) "run clean" true
    (Audit.Auditor.ok t.Experiments.Scenario.auditor);
  let ic = open_in path in
  let lines = ref 0 in
  let kinds = Hashtbl.create 7 in
  let last_time = ref 0.0 in
  (try
     while true do
       let line = input_line ic in
       incr lines;
       Alcotest.(check bool) "object shape" true
         (String.length line > 2
         && String.get line 0 = '{'
         && String.get line (String.length line - 1) = '}');
       Scanf.sscanf line {|{"t":%f,"ev":"%[a-z_]"|} (fun time ev ->
           Alcotest.(check bool) "time monotone" true (time >= !last_time);
           last_time := time;
           Hashtbl.replace kinds ev ())
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "nonempty" true (!lines > 100);
  List.iter
    (fun kind ->
      Alcotest.(check bool) ("has " ^ kind) true (Hashtbl.mem kinds kind))
    [ "send"; "ack"; "enqueue"; "dequeue"; "drop"; "recovery_enter" ]

(* -- binary trace container: round-trip through the offline exporter -- *)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec loop i =
    i + n <= h && (String.sub haystack i n = needle || loop (i + 1))
  in
  loop 0

let check_contains what needle haystack =
  if not (contains ~needle haystack) then
    Alcotest.failf "%s: %S not found in trace" what needle

let with_scheduler scheduler f =
  let saved = Sim.Engine.default_scheduler () in
  Sim.Engine.set_default_scheduler scheduler;
  Fun.protect ~finally:(fun () -> Sim.Engine.set_default_scheduler saved) f

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* A faulted, audited scenario that puts every record kind in the
   stream: link flaps (link_down/link_up/fault_drop with the queued
   backlog dropped), reordering, random data loss and two flows of
   ordinary traffic. *)
let run_traced ~format ~out () =
  let config =
    { (Net.Dumbbell.paper_config ~flows:2) with gateway = gateway_of false }
  in
  let faults =
    match Faults.Spec.of_string "flap:2+0.3,drop,reorder:0.05" with
    | Ok spec -> spec
    | Error message -> Alcotest.failf "faults spec: %s" message
  in
  Experiments.Scenario.run
    (Experiments.Scenario.make
       ~topology:(Experiments.Scenario.dumbbell config)
       ~flows:
         [
           Experiments.Scenario.flow Core.Variant.Rr;
           Experiments.Scenario.flow Core.Variant.Sack;
         ]
       ~params:{ Tcp.Params.default with rwnd = 20 }
       ~seed:7L ~duration:5.0 ~uniform_loss:0.02 ~faults ~trace_out:out
       ~trace_format:format ())

let test_binary_trace_roundtrip () =
  List.iter
    (fun scheduler ->
      with_scheduler scheduler @@ fun () ->
      let jsonl_path = Filename.temp_file "rr_trace" ".jsonl" in
      let binary_path = Filename.temp_file "rr_trace" ".rrtb" in
      let run ~format path =
        let out = open_out_bin path in
        let t = run_traced ~format ~out () in
        close_out out;
        Alcotest.(check bool) "faulted run is audited clean" true
          (Audit.Auditor.ok t.Experiments.Scenario.auditor)
      in
      run ~format:`Jsonl jsonl_path;
      run ~format:`Binary binary_path;
      let exported_path = Filename.temp_file "rr_trace" ".export.jsonl" in
      In_channel.with_open_bin binary_path (fun input ->
          Out_channel.with_open_bin exported_path (fun output ->
              Audit.Trace.export ~input ~output));
      let live = read_file jsonl_path in
      let exported = read_file exported_path in
      let binary = read_file binary_path in
      Alcotest.(check bool)
        "exported JSONL is byte-identical to the live stream" true
        (String.equal live exported);
      Alcotest.(check bool) "binary stream is smaller than the JSONL" true
        (String.length binary < String.length live);
      List.iter
        (fun needle -> check_contains "fault event present" needle live)
        [
          "\"ev\":\"link_down\"";
          "\"ev\":\"link_up\"";
          "\"ev\":\"fault_drop\"";
          "\"ev\":\"reorder\"";
          "\"dup\":true";
        ];
      List.iter Sys.remove [ jsonl_path; binary_path; exported_path ])
    [ `Calendar; `Heap ]

let test_binary_trace_corruption () =
  let binary_path = Filename.temp_file "rr_trace" ".rrtb" in
  let out = open_out_bin binary_path in
  ignore (run_traced ~format:`Binary ~out () : Experiments.Scenario.t);
  close_out out;
  let data = read_file binary_path in
  Sys.remove binary_path;
  let export_string s =
    let tmp = Filename.temp_file "rr_trace" ".bad" in
    let oc = open_out_bin tmp in
    output_string oc s;
    close_out oc;
    Fun.protect
      ~finally:(fun () -> Sys.remove tmp)
      (fun () ->
        In_channel.with_open_bin tmp (fun input ->
            Out_channel.with_open_bin "/dev/null" (fun output ->
                Audit.Trace.export ~input ~output)))
  in
  let check_corrupt what s =
    match export_string s with
    | () -> Alcotest.failf "%s: export accepted a corrupt stream" what
    | exception Audit.Trace.Corrupt _ -> ()
  in
  check_corrupt "bad magic" ("JUNK" ^ data);
  check_corrupt "truncated record" (String.sub data 0 (String.length data - 1));
  check_corrupt "empty file" "";
  (* A healthy stream through the same harness still exports. *)
  export_string data

(* -- auditor sampling: cheaper checks, still zero false positives -- *)

let test_audit_sampling () =
  let run sample =
    let config =
      { (Net.Dumbbell.paper_config ~flows:2) with gateway = gateway_of false }
    in
    Experiments.Scenario.run
      (Experiments.Scenario.make
         ~topology:(Experiments.Scenario.dumbbell config)
         ~flows:
           [
             Experiments.Scenario.flow Core.Variant.Rr;
             Experiments.Scenario.flow Core.Variant.Rr;
           ]
         ~params:{ Tcp.Params.default with rwnd = 20 }
         ~seed:7L ~duration:10.0 ~uniform_loss:0.03 ~audit_sample:sample ())
  in
  let full = (run 1).Experiments.Scenario.auditor in
  let sampled = (run 8).Experiments.Scenario.auditor in
  Alcotest.(check int) "sampling divisor is recorded" 8
    (Audit.Auditor.sample sampled);
  Alcotest.(check bool) "full stream is clean" true (Audit.Auditor.ok full);
  Alcotest.(check bool) "sampled stream is clean (no false positives)" true
    (Audit.Auditor.ok sampled);
  Alcotest.(check bool) "sampling runs fewer checks" true
    (Audit.Auditor.checks_run sampled < Audit.Auditor.checks_run full);
  Alcotest.(check bool) "sampled checks still ran" true
    (Audit.Auditor.checks_run sampled > 0)

(* -- tracer staging-buffer sizing -- *)

let test_trace_flush_sizing () =
  (match Audit.Trace.create ~flush_at:0 ~out:stdout () with
  | _ -> Alcotest.fail "flush_at 0 must be rejected"
  | exception Invalid_argument _ -> ());
  let emit tracer n =
    for i = 1 to n do
      Audit.Trace.journal_event tracer ~time:(float_of_int i) ~ev:"probe"
        [ ("i", Audit.Trace.Int i) ]
    done
  in
  (* A tiny threshold drains to the channel mid-stream, without an
     explicit flush; the 64 KiB default keeps everything staged. *)
  let tiny_path = Filename.temp_file "rr_flush" ".jsonl" in
  let tiny_out = open_out tiny_path in
  let tiny = Audit.Trace.create ~flush_at:64 ~out:tiny_out () in
  emit tiny 20;
  Alcotest.(check bool) "flush_at=64 drains before an explicit flush" true
    (pos_out tiny_out > 0);
  Audit.Trace.flush tiny;
  close_out tiny_out;
  let default_path = Filename.temp_file "rr_flush" ".jsonl" in
  let default_out = open_out default_path in
  let default_tracer = Audit.Trace.create ~out:default_out () in
  emit default_tracer 20;
  Alcotest.(check int) "default threshold stages everything" 0
    (pos_out default_out);
  Audit.Trace.flush default_tracer;
  close_out default_out;
  Alcotest.(check string) "both thresholds write the same bytes"
    (read_file tiny_path) (read_file default_path);
  List.iter Sys.remove [ tiny_path; default_path ]

let suite =
  [
    ( "audit",
      [
        Alcotest.test_case "detects reordering" `Quick test_detects_reordering;
        Alcotest.test_case "detects occupancy leak" `Quick
          test_detects_occupancy_leak;
        Alcotest.test_case "detects corrupt cwnd" `Quick test_detects_corrupt_cwnd;
        Alcotest.test_case "finalize flags stats drift" `Quick
          test_finalize_flags_stats_drift;
        Alcotest.test_case "divergence: trend rule" `Quick
          test_divergence_trend_rule;
        Alcotest.test_case "divergence: sync rule" `Quick
          test_divergence_sync_rule;
        Alcotest.test_case "divergence: scenario plumbing" `Quick
          test_scenario_divergence_plumbing;
        Alcotest.test_case "divergence: findings under flaps" `Quick
          test_divergence_under_flaps;
        Alcotest.test_case "burst sweep clean" `Slow test_sweep_bursts;
        Alcotest.test_case "random-loss sweep clean" `Slow test_sweep_random_loss;
        QCheck_alcotest.to_alcotest prop_sweep_arbitrary_drops;
        Alcotest.test_case "trace shape" `Quick test_trace_shape;
        Alcotest.test_case "binary trace round-trips byte-identically" `Quick
          test_binary_trace_roundtrip;
        Alcotest.test_case "binary trace export rejects corruption" `Quick
          test_binary_trace_corruption;
        Alcotest.test_case "auditor sampling" `Quick test_audit_sampling;
        Alcotest.test_case "tracer flush_at sizing" `Quick
          test_trace_flush_sizing;
      ] );
  ]
