(* Tcp.Flock: the flat-array many-flow sender/receiver path. Clean-path
   delivery, loss recovery through a dropping tap, the receiver's
   reorder bitmap, and the O(flows) aggregates Many_flow reports. *)

let params = { Tcp.Params.default with Tcp.Params.rwnd = 20 }

(* a <-> b, generous queues: a clean network *)
let clean_spec ?(capacity = 1_000) () =
  let link from_node to_node =
    {
      Net.Topology.from_node;
      to_node;
      bandwidth_bps = 10e6;
      delay = 0.005;
      queue = Net.Topology.Droptail { capacity };
    }
  in
  {
    Net.Topology.nodes =
      [
        { Net.Topology.node = "a"; routes = []; default_route = Some "ab" };
        { Net.Topology.node = "b"; routes = []; default_route = Some "ba" };
      ];
    links = [ ("ab", link "a" "b"); ("ba", link "b" "a") ];
  }

let flock_on ?taps ~flows ~duration spec =
  let engine = Sim.Engine.create () in
  let topo =
    Net.Topology.create ~engine ~spec
      ~rng:(Sim.Rng.create 1L) ?taps
      ~flows:(Array.make flows { Net.Topology.src = "a"; dst = "b" })
      ()
  in
  let flock = ref None in
  let the_flock () = Option.get !flock in
  let t =
    Tcp.Flock.create ~engine ~params ~flows
      ~inject_data:(fun ~flow p -> Net.Topology.inject_data topo ~flow p)
      ~inject_ack:(fun ~flow p -> Net.Topology.inject_ack topo ~flow p)
      ()
  in
  flock := Some t;
  Net.Topology.set_data_dispatch topo (fun p ->
      Tcp.Flock.deliver_data (the_flock ()) p);
  Net.Topology.set_ack_dispatch topo (fun p ->
      Tcp.Flock.deliver_ack (the_flock ()) p);
  Tcp.Flock.start t ();
  Sim.Engine.run_until engine ~time:duration;
  t

let test_create_rejects () =
  Alcotest.check_raises "flows < 1"
    (Invalid_argument "Flock.create: flows < 1") (fun () ->
      ignore
        (Tcp.Flock.create ~engine:(Sim.Engine.create ()) ~params ~flows:0
           ~inject_data:(fun ~flow:_ _ -> ())
           ~inject_ack:(fun ~flow:_ _ -> ())
           ()))

let test_clean_path () =
  let t = flock_on ~flows:1 ~duration:5.0 (clean_spec ()) in
  Alcotest.(check int) "flows" 1 (Tcp.Flock.flows t);
  Alcotest.(check bool)
    "substantial delivery" true
    (Tcp.Flock.acked_segments t 0 > 1_000);
  Alcotest.(check int) "no retransmits" 0 (Tcp.Flock.total_retransmits t);
  Alcotest.(check int) "no timeouts" 0 (Tcp.Flock.total_timeouts t);
  Alcotest.(check bool)
    "goodput positive" true
    (Tcp.Flock.goodput_bps t 0 ~duration:5.0 > 0.0)

let test_recovers_from_loss () =
  (* a tap that drops every 50th data packet on the forward link *)
  let seen = ref 0 in
  let tap forward packet =
    incr seen;
    if !seen mod 50 <> 0 then forward packet
  in
  let t =
    flock_on ~taps:[ ("ab", tap) ] ~flows:1 ~duration:10.0 (clean_spec ())
  in
  Alcotest.(check bool)
    "recovery happened" true
    (Tcp.Flock.retransmits t 0 > 0);
  Alcotest.(check bool)
    "delivery continued past the losses" true
    (Tcp.Flock.acked_segments t 0 > 300);
  Alcotest.(check bool) "cwnd sane" true (Tcp.Flock.cwnd t 0 >= 1.0)

let test_many_flows_share () =
  let flows = 50 in
  let t = flock_on ~flows ~duration:5.0 (clean_spec ~capacity:64 ()) in
  Alcotest.(check int)
    "aggregate equals per-flow sum"
    (Tcp.Flock.total_acked_segments t)
    (List.init flows (Tcp.Flock.acked_segments t)
    |> List.fold_left ( + ) 0);
  List.iter
    (fun flow ->
      Alcotest.(check bool)
        (Printf.sprintf "flow %d made progress" flow)
        true
        (Tcp.Flock.acked_segments t flow > 0))
    (List.init flows Fun.id)

(* Drive the receiver directly: out-of-order arrival is held in the
   bitmap and ACKed below the hole, then released by the late segment. *)
let test_receiver_reorder_bitmap () =
  let engine = Sim.Engine.create () in
  let acks = ref [] in
  let t =
    Tcp.Flock.create ~engine ~params ~flows:1
      ~inject_data:(fun ~flow:_ _ -> ())
      ~inject_ack:(fun ~flow:_ p ->
        match Net.Packet.kind p with
        | Net.Packet.Ack { ackno; _ } -> acks := ackno :: !acks
        | _ -> ())
      ()
  in
  let data seq =
    Net.Packet.data ~uid:seq ~flow:0 ~seq ~size_bytes:1000 ~born:0.0
  in
  Tcp.Flock.deliver_data t (data 1);
  Tcp.Flock.deliver_data t (data 2);
  Tcp.Flock.deliver_data t (data 0);
  match List.rev !acks with
  | [ a; b; c ] ->
      Alcotest.(check bool) "holes ACK below the gap" true (a < 0 && b < 0);
      Alcotest.(check int) "late segment releases the window" 2 c
  | other ->
      Alcotest.failf "expected 3 ACKs, got %d" (List.length other)

let suite =
  [
    ( "flock",
      [
        Alcotest.test_case "create rejects flows < 1" `Quick test_create_rejects;
        Alcotest.test_case "clean path delivers without recovery" `Quick
          test_clean_path;
        Alcotest.test_case "recovers from tap-injected loss" `Quick
          test_recovers_from_loss;
        Alcotest.test_case "fifty flows all make progress" `Quick
          test_many_flows_share;
        Alcotest.test_case "receiver reorder bitmap" `Quick
          test_receiver_reorder_bitmap;
      ] );
  ]
