(* Interval-set tests, including a qcheck equivalence check against a
   naive list-of-integers reference implementation. *)

let test_empty () =
  let s = Tcp.Seqset.create () in
  Alcotest.(check bool) "empty" true (Tcp.Seqset.is_empty s);
  Alcotest.(check int) "cardinal" 0 (Tcp.Seqset.cardinal s);
  Alcotest.(check bool) "mem" false (Tcp.Seqset.mem s 3);
  Alcotest.(check bool) "max" true (Tcp.Seqset.max_elt s = None);
  Alcotest.(check int) "gap" 5 (Tcp.Seqset.first_gap_above s 5)

let test_add_and_merge () =
  let s = Tcp.Seqset.create () in
  Alcotest.(check bool) "fresh add" true (Tcp.Seqset.add s 5);
  Alcotest.(check bool) "duplicate add" false (Tcp.Seqset.add s 5);
  ignore (Tcp.Seqset.add s 7);
  Alcotest.(check (list (pair int int)))
    "separate" [ (5, 5); (7, 7) ] (Tcp.Seqset.intervals s);
  ignore (Tcp.Seqset.add s 6);
  Alcotest.(check (list (pair int int)))
    "merged" [ (5, 7) ] (Tcp.Seqset.intervals s);
  Alcotest.(check int) "cardinal" 3 (Tcp.Seqset.cardinal s)

let test_adjacent_merge () =
  let s = Tcp.Seqset.create () in
  ignore (Tcp.Seqset.add s 4);
  ignore (Tcp.Seqset.add s 5);
  Alcotest.(check (list (pair int int))) "adjacent" [ (4, 5) ] (Tcp.Seqset.intervals s)

let test_add_range () =
  let s = Tcp.Seqset.create () in
  Tcp.Seqset.add_range s ~first:10 ~last:20;
  Tcp.Seqset.add_range s ~first:15 ~last:25;
  Alcotest.(check (list (pair int int))) "overlap" [ (10, 25) ] (Tcp.Seqset.intervals s);
  Tcp.Seqset.add_range s ~first:0 ~last:3;
  Alcotest.(check (list (pair int int)))
    "disjoint below" [ (0, 3); (10, 25) ] (Tcp.Seqset.intervals s)

let test_remove_below () =
  let s = Tcp.Seqset.create () in
  Tcp.Seqset.add_range s ~first:1 ~last:5;
  Tcp.Seqset.add_range s ~first:8 ~last:10;
  Tcp.Seqset.remove_below s 4;
  Alcotest.(check (list (pair int int)))
    "truncated" [ (4, 5); (8, 10) ] (Tcp.Seqset.intervals s);
  Tcp.Seqset.remove_below s 7;
  Alcotest.(check (list (pair int int))) "dropped" [ (8, 10) ] (Tcp.Seqset.intervals s)

let test_first_gap () =
  let s = Tcp.Seqset.create () in
  Tcp.Seqset.add_range s ~first:5 ~last:7;
  Tcp.Seqset.add_range s ~first:9 ~last:10;
  Alcotest.(check int) "below" 3 (Tcp.Seqset.first_gap_above s 3);
  Alcotest.(check int) "inside first" 8 (Tcp.Seqset.first_gap_above s 5);
  Alcotest.(check int) "inside gap" 8 (Tcp.Seqset.first_gap_above s 8);
  Alcotest.(check int) "inside second" 11 (Tcp.Seqset.first_gap_above s 9);
  Alcotest.(check int) "above" 42 (Tcp.Seqset.first_gap_above s 42)

let test_max_and_clear () =
  let s = Tcp.Seqset.create () in
  Tcp.Seqset.add_range s ~first:2 ~last:4;
  Tcp.Seqset.add_range s ~first:9 ~last:12;
  Alcotest.(check bool) "max" true (Tcp.Seqset.max_elt s = Some 12);
  Tcp.Seqset.clear s;
  Alcotest.(check bool) "cleared" true (Tcp.Seqset.is_empty s)

(* Reference model: a plain sorted de-duplicated integer list. *)
module Reference = struct
  type t = int list ref

  let create () = ref []

  let add t x = t := List.sort_uniq compare (x :: !t)

  let mem t x = List.mem x !t

  let remove_below t bound = t := List.filter (fun x -> x >= bound) !t

  let cardinal t = List.length !t

  let first_gap_above t bound =
    let rec scan candidate =
      if mem t candidate then scan (candidate + 1) else candidate
    in
    scan bound
end

type op = Add of int | Remove_below of int

let op_gen =
  QCheck2.Gen.(
    oneof
      [
        map (fun x -> Add x) (int_range 0 60);
        map (fun x -> Remove_below x) (int_range 0 60);
      ])

let prop_matches_reference =
  QCheck2.Test.make ~name:"seqset matches naive reference" ~count:500
    QCheck2.Gen.(list_size (int_range 0 60) op_gen)
    (fun ops ->
      let s = Tcp.Seqset.create () in
      let r = Reference.create () in
      List.iter
        (function
          | Add x ->
            ignore (Tcp.Seqset.add s x : bool);
            Reference.add r x
          | Remove_below bound ->
            Tcp.Seqset.remove_below s bound;
            Reference.remove_below r bound)
        ops;
      Tcp.Seqset.cardinal s = Reference.cardinal r
      && List.for_all (fun x -> Tcp.Seqset.mem s x = Reference.mem r x)
           (List.init 70 Fun.id)
      && List.for_all
           (fun b -> Tcp.Seqset.first_gap_above s b = Reference.first_gap_above r b)
           (List.init 70 Fun.id))

let prop_intervals_disjoint_sorted =
  QCheck2.Test.make ~name:"seqset intervals stay disjoint and sorted" ~count:500
    QCheck2.Gen.(list_size (int_range 0 40) (int_range 0 50))
    (fun adds ->
      let s = Tcp.Seqset.create () in
      List.iter (fun x -> ignore (Tcp.Seqset.add s x : bool)) adds;
      let rec well_formed = function
        | [] | [ _ ] -> true
        | (_, l1) :: ((f2, _) :: _ as rest) ->
          (* Gap of at least one (otherwise they should have merged). *)
          f2 > l1 + 1 && well_formed rest
      in
      let intervals = Tcp.Seqset.intervals s in
      List.for_all (fun (f, l) -> f <= l) intervals && well_formed intervals)

let suite =
  [
    ( "seqset",
      [
        Alcotest.test_case "empty" `Quick test_empty;
        Alcotest.test_case "add and merge" `Quick test_add_and_merge;
        Alcotest.test_case "adjacent merge" `Quick test_adjacent_merge;
        Alcotest.test_case "add_range" `Quick test_add_range;
        Alcotest.test_case "remove_below" `Quick test_remove_below;
        Alcotest.test_case "first_gap_above" `Quick test_first_gap;
        Alcotest.test_case "max and clear" `Quick test_max_and_clear;
        QCheck_alcotest.to_alcotest prop_matches_reference;
        QCheck_alcotest.to_alcotest prop_intervals_disjoint_sorted;
      ] );
  ]
