(* Link tests: serialization + propagation timing, FIFO delivery,
   back-to-back spacing, and queue interaction. *)

let packet ?(flow = 0) ?(size = 1000) seq =
  Net.Packet.data ~uid:seq ~flow ~seq ~size_bytes:size ~born:0.0

(* 1000-byte packet on 0.8 Mbps: tx = 10 ms; delay 96 ms. *)
let make ?(bandwidth = Sim.Units.mbps 0.8) ?(delay = 0.096) ?(capacity = 8) () =
  let engine = Sim.Engine.create () in
  let arrivals = ref [] in
  let queue = Net.Droptail.create ~capacity () in
  let link =
    Net.Link.create ~engine ~bandwidth_bps:bandwidth ~delay ~queue
      ~dst:(fun p ->
        arrivals := (Sim.Engine.now engine, Net.Packet.seq_exn p) :: !arrivals)
      ()
  in
  (engine, link, arrivals)

let test_single_packet_latency () =
  let engine, link, arrivals = make () in
  Net.Link.send link (packet 1);
  Sim.Engine.run engine;
  match !arrivals with
  | [ (t, 1) ] -> Alcotest.(check (float 1e-9)) "tx + prop" 0.106 t
  | _ -> Alcotest.fail "expected exactly one arrival"

let test_back_to_back_spacing () =
  let engine, link, arrivals = make () in
  Net.Link.send link (packet 1);
  Net.Link.send link (packet 2);
  Net.Link.send link (packet 3);
  Sim.Engine.run engine;
  match List.rev !arrivals with
  | [ (t1, 1); (t2, 2); (t3, 3) ] ->
    (* Pipelined: arrivals are one serialization time apart. *)
    Alcotest.(check (float 1e-9)) "first" 0.106 t1;
    Alcotest.(check (float 1e-9)) "spacing" 0.01 (t2 -. t1);
    Alcotest.(check (float 1e-9)) "spacing" 0.01 (t3 -. t2)
  | _ -> Alcotest.fail "expected three arrivals in order"

let test_size_dependent_tx () =
  let engine, link, arrivals = make ~bandwidth:(Sim.Units.mbps 10.0) ~delay:0.001 () in
  Net.Link.send link (packet ~size:40 1);
  Sim.Engine.run engine;
  match !arrivals with
  | [ (t, 1) ] -> Alcotest.(check (float 1e-9)) "40B ack timing" 0.001032 t
  | _ -> Alcotest.fail "one arrival"

let test_busy_and_idle () =
  let engine, link, _ = make () in
  Alcotest.(check bool) "idle" false (Net.Link.busy link);
  Net.Link.send link (packet 1);
  Alcotest.(check bool) "busy" true (Net.Link.busy link);
  Sim.Engine.run engine;
  Alcotest.(check bool) "idle again" false (Net.Link.busy link);
  Alcotest.(check int) "delivered" 1 (Net.Link.delivered link)

let test_overload_drops () =
  let engine, link, arrivals = make ~capacity:3 () in
  (* Burst of 10 into a 3-packet queue while the first serializes. *)
  for i = 1 to 10 do
    Net.Link.send link (packet i)
  done;
  Sim.Engine.run engine;
  (* 1 in service + 3 queued survive. *)
  Alcotest.(check int) "survivors" 4 (List.length !arrivals);
  Alcotest.(check int) "drops" 6
    (Net.Link.queue link).Net.Queue_disc.stats.Net.Queue_disc.dropped

let test_work_conserving_after_idle () =
  let engine, link, arrivals = make () in
  Net.Link.send link (packet 1);
  Sim.Engine.run engine;
  ignore (Sim.Engine.schedule_at engine ~time:1.0 (fun () -> Net.Link.send link (packet 2)));
  Sim.Engine.run engine;
  match List.rev !arrivals with
  | [ (_, 1); (t2, 2) ] -> Alcotest.(check (float 1e-9)) "restart timing" 1.106 t2
  | _ -> Alcotest.fail "two arrivals"

(* Conservation: every packet offered to a link is eventually delivered,
   dropped by the queue, or still queued/in service — never duplicated
   or lost silently. *)
let prop_conservation =
  QCheck2.Test.make ~name:"link conserves packets" ~count:200
    QCheck2.Gen.(
      pair (int_range 1 40)
        (list_size (int_range 1 30) (float_range 0.0 0.05)))
    (fun (capacity, send_gaps) ->
      let engine = Sim.Engine.create () in
      let delivered = ref 0 in
      let queue = Net.Droptail.create ~capacity () in
      let link =
        Net.Link.create ~engine ~bandwidth_bps:(Sim.Units.mbps 0.8) ~delay:0.05
          ~queue
          ~dst:(fun _ -> incr delivered)
          ()
      in
      let time = ref 0.0 in
      List.iteri
        (fun i gap ->
          time := !time +. gap;
          ignore
            (Sim.Engine.schedule_at engine ~time:!time (fun () ->
                 Net.Link.send link (packet i))))
        send_gaps;
      Sim.Engine.run engine;
      let dropped = queue.Net.Queue_disc.stats.Net.Queue_disc.dropped in
      !delivered + dropped = List.length send_gaps
      && queue.Net.Queue_disc.length () = 0)

let test_invalid_args () =
  let engine = Sim.Engine.create () in
  let queue = Net.Droptail.create ~capacity:1 () in
  Alcotest.check_raises "bandwidth" (Invalid_argument "Link.create: bandwidth <= 0")
    (fun () ->
      ignore
        (Net.Link.create ~engine ~bandwidth_bps:0.0 ~delay:0.1 ~queue
           ~dst:(fun _ -> ())
           ()));
  Alcotest.check_raises "delay" (Invalid_argument "Link.create: negative delay")
    (fun () ->
      ignore
        (Net.Link.create ~engine ~bandwidth_bps:1e6 ~delay:(-0.1) ~queue
           ~dst:(fun _ -> ())
           ()))

let suite =
  [
    ( "link",
      [
        Alcotest.test_case "single packet latency" `Quick test_single_packet_latency;
        Alcotest.test_case "back-to-back spacing" `Quick test_back_to_back_spacing;
        Alcotest.test_case "size-dependent tx" `Quick test_size_dependent_tx;
        Alcotest.test_case "busy/idle" `Quick test_busy_and_idle;
        Alcotest.test_case "overload drops" `Quick test_overload_drops;
        Alcotest.test_case "work conserving" `Quick test_work_conserving_after_idle;
        Alcotest.test_case "invalid args" `Quick test_invalid_args;
        QCheck_alcotest.to_alcotest prop_conservation;
      ] );
  ]
