(* Calendar-queue tests: the Heap contract (min ordering, FIFO ties,
   clear) plus resize/width-adaptation stress and a randomized oracle
   check that Calqueue and Heap agree operation-for-operation. *)

let check = Alcotest.(check int)

let pop_all queue =
  let rec drain acc =
    match Sim.Calqueue.pop queue with
    | None -> List.rev acc
    | Some (priority, value) -> drain ((priority, value) :: acc)
  in
  drain []

let test_empty () =
  let queue : int Sim.Calqueue.t = Sim.Calqueue.create () in
  Alcotest.(check bool) "is_empty" true (Sim.Calqueue.is_empty queue);
  check "length" 0 (Sim.Calqueue.length queue);
  Alcotest.(check bool) "peek none" true (Sim.Calqueue.peek queue = None);
  Alcotest.(check bool) "pop none" true (Sim.Calqueue.pop queue = None)

let test_ordering () =
  let queue = Sim.Calqueue.create () in
  List.iter
    (fun priority -> Sim.Calqueue.push queue ~priority (int_of_float priority))
    [ 5.0; 1.0; 4.0; 2.0; 3.0 ];
  let order = List.map snd (pop_all queue) in
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 4; 5 ] order

let test_stability () =
  let queue = Sim.Calqueue.create () in
  List.iter (fun v -> Sim.Calqueue.push queue ~priority:1.0 v) [ 10; 20; 30; 40 ];
  Alcotest.(check (list int))
    "fifo on ties" [ 10; 20; 30; 40 ]
    (List.map snd (pop_all queue))

let test_mixed_stability () =
  let queue = Sim.Calqueue.create () in
  Sim.Calqueue.push queue ~priority:2.0 1;
  Sim.Calqueue.push queue ~priority:1.0 2;
  Sim.Calqueue.push queue ~priority:2.0 3;
  Sim.Calqueue.push queue ~priority:1.0 4;
  Alcotest.(check (list int))
    "ties stay fifo among equals" [ 2; 4; 1; 3 ]
    (List.map snd (pop_all queue))

let test_peek_does_not_remove () =
  let queue = Sim.Calqueue.create () in
  Sim.Calqueue.push queue ~priority:1.0 7;
  (match Sim.Calqueue.peek queue with
  | Some (_, 7) -> ()
  | Some _ | None -> Alcotest.fail "peek");
  check "still there" 1 (Sim.Calqueue.length queue)

let test_clear_resets_tie_state () =
  (* A cleared queue must order ties exactly like a fresh one. *)
  let fresh = Sim.Calqueue.create () in
  let reused = Sim.Calqueue.create () in
  List.iter (fun v -> Sim.Calqueue.push reused ~priority:3.0 v) [ 1; 2; 3 ];
  ignore (Sim.Calqueue.pop reused);
  Sim.Calqueue.clear reused;
  check "cleared" 0 (Sim.Calqueue.length reused);
  List.iter
    (fun queue ->
      Sim.Calqueue.push queue ~priority:1.0 10;
      Sim.Calqueue.push queue ~priority:1.0 20;
      Sim.Calqueue.push queue ~priority:0.5 30)
    [ fresh; reused ];
  Alcotest.(check (list (pair (float 1e-9) int)))
    "same as fresh" (pop_all fresh) (pop_all reused)

(* Push enough to force several grow resizes (and width re-estimation),
   then drain through the shrink path. *)
let test_resize_stress () =
  let queue = Sim.Calqueue.create () in
  let n = 2000 in
  for i = 0 to n - 1 do
    Sim.Calqueue.push queue ~priority:(float_of_int ((i * 7919) mod n) /. 100.0) i
  done;
  check "all stored" n (Sim.Calqueue.length queue);
  let out = List.map fst (pop_all queue) in
  Alcotest.(check bool) "sorted drain" true (out = List.sort compare out);
  check "drained" 0 (Sim.Calqueue.length queue)

(* A dense cluster plus far-future outliers exercises the direct-search
   fallback (a full calendar round finds no event in the current year). *)
let test_sparse_far_future () =
  let queue = Sim.Calqueue.create () in
  Sim.Calqueue.push queue ~priority:1e6 1;
  Sim.Calqueue.push queue ~priority:2e6 2;
  for i = 0 to 63 do
    Sim.Calqueue.push queue ~priority:(float_of_int i *. 0.001) (100 + i)
  done;
  let out = pop_all queue in
  Alcotest.(check int) "count" 66 (List.length out);
  let times = List.map fst out in
  Alcotest.(check bool) "sorted" true (times = List.sort compare times);
  Alcotest.(check (list int))
    "outliers last" [ 1; 2 ]
    (List.filteri (fun i _ -> i >= 64) (List.map snd out))

let test_invalid_width () =
  Alcotest.check_raises "width" (Invalid_argument "Calqueue.create: width <= 0")
    (fun () -> ignore (Sim.Calqueue.create ~width:0.0 () : int Sim.Calqueue.t))

(* Oracle property: an arbitrary interleaving of pushes and pops gives
   exactly the Heap's answers, ties included (times quantized to force
   plenty of collisions). *)
let prop_matches_heap =
  QCheck2.Test.make ~name:"calqueue matches heap on random workloads" ~count:300
    QCheck2.Gen.(
      list_size (int_range 1 400)
        (oneof
           [
             map (fun k -> `Push (float_of_int k /. 8.0)) (int_range 0 200);
             return `Pop;
           ]))
    (fun ops ->
      let heap = Sim.Heap.create () in
      let cal = Sim.Calqueue.create () in
      let i = ref 0 in
      List.for_all
        (fun op ->
          match op with
          | `Push priority ->
            Sim.Heap.push heap ~priority !i;
            Sim.Calqueue.push cal ~priority !i;
            incr i;
            Sim.Heap.length heap = Sim.Calqueue.length cal
          | `Pop -> Sim.Heap.pop heap = Sim.Calqueue.pop cal)
        ops
      && pop_all cal
         = (let rec drain acc =
              match Sim.Heap.pop heap with
              | None -> List.rev acc
              | Some entry -> drain (entry :: acc)
            in
            drain []))

let suite =
  [
    ( "calqueue",
      [
        Alcotest.test_case "empty" `Quick test_empty;
        Alcotest.test_case "ordering" `Quick test_ordering;
        Alcotest.test_case "stability" `Quick test_stability;
        Alcotest.test_case "mixed stability" `Quick test_mixed_stability;
        Alcotest.test_case "peek" `Quick test_peek_does_not_remove;
        Alcotest.test_case "clear resets tie state" `Quick
          test_clear_resets_tie_state;
        Alcotest.test_case "resize stress" `Quick test_resize_stress;
        Alcotest.test_case "sparse far future" `Quick test_sparse_far_future;
        Alcotest.test_case "invalid width" `Quick test_invalid_width;
        QCheck_alcotest.to_alcotest prop_matches_heap;
      ] );
  ]
